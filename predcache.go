// Package predcache is a single-node analytical database engine with
// predicate caching: a query-driven secondary index that remembers, per scan
// expression, which row ranges qualified — so repeating scans touch only the
// data that mattered last time (Schmidt et al., "Predicate Caching:
// Query-Driven Secondary Indexing for Cloud Data Warehouses", SIGMOD 2024).
//
// The engine stores tables in compressed columnar blocks with zone maps,
// executes SQL with vectorized scans, hash joins with semi-join-filter
// pushdown, and hash aggregation, and keeps the predicate cache online
// across inserts, deletes and updates.
//
// Quick start:
//
//	db := predcache.Open()
//	db.CreateTable("t", predcache.Schema{{Name: "x", Type: predcache.Int64}})
//	// load data with db.Insert, then:
//	res, err := db.Query("select count(*) from t where x > 42")
package predcache

import (
	"context"
	"fmt"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/predcache/predcache/internal/core"
	"github.com/predcache/predcache/internal/engine"
	"github.com/predcache/predcache/internal/expr"
	"github.com/predcache/predcache/internal/obs"
	"github.com/predcache/predcache/internal/sql"
	"github.com/predcache/predcache/internal/storage"
	"github.com/predcache/predcache/internal/systab"
)

// Re-exported storage types: the public surface of table definitions.
type (
	// Schema describes a table's columns.
	Schema = storage.Schema
	// ColumnDef is one column definition.
	ColumnDef = storage.ColumnDef
	// ColumnType enumerates column types.
	ColumnType = storage.ColumnType
	// Batch is a columnar batch of rows for loading.
	Batch = storage.Batch
	// Result is a materialized query result.
	Result = engine.Relation
	// CacheConfig configures the predicate cache.
	CacheConfig = core.Config
	// CacheStats reports predicate-cache counters.
	CacheStats = core.Stats
	// QueryStats reports per-query scan counters.
	QueryStats = storage.ScanStatsSnapshot
	// ExecCtx is the execution context accepted by RunCtx.
	ExecCtx = engine.ExecCtx
	// Metrics is the counter/gauge/histogram registry fed by EnableMetrics.
	Metrics = obs.Metrics
	// Pred is a filter predicate (for DeleteWhere / UpdateWhere).
	Pred = expr.Pred
)

// Column type constants.
const (
	Int64   = storage.Int64
	Float64 = storage.Float64
	Date    = storage.Date
	String  = storage.String
	Bool    = storage.Bool
)

// Predicate-cache entry kinds.
const (
	RangeIndex  = core.RangeIndex
	BitmapIndex = core.BitmapIndex
)

// NewBatch allocates an empty batch shaped like schema.
func NewBatch(schema Schema) *Batch { return storage.NewBatch(schema) }

// DB is an embedded analytical database with a predicate cache.
type DB struct {
	mu sync.Mutex
	// cat, cache, slices, parallel and maxWorkers are immutable after Open.
	cat        *storage.Catalog
	cache      *core.Cache
	slices     int
	parallel   bool
	maxWorkers int
	last     storage.ScanStatsSnapshot // guarded by mu

	// metrics is nil until EnableMetrics installs the registered instruments;
	// queries load it once per execution.
	metrics atomic.Pointer[queryMetrics]

	// metricsReg remembers the registry EnableMetrics was called with so
	// pc.metrics can snapshot it.
	metricsReg atomic.Pointer[obs.Metrics]

	// sysTables resolves pc.* references; qlog is the always-on query
	// history behind pc.query_log (nil when disabled). Both are immutable
	// after Open; qlogCap and slowQuery only carry option values into Open.
	sysTables *systab.Registry
	qlog      *systab.QueryRecorder
	qlogCap   int
	slowQuery time.Duration

	// traces tail-samples completed query traces (pc.traces, pc.trace_spans)
	// and slo aggregates latency histograms per query class (pc.slo). Both
	// immutable after Open; traces is nil when WithoutTraces disabled it.
	// traceCfg and tracesOff only carry option values into Open.
	traces    *obs.TraceStore
	slo       *obs.SLOSet
	traceCfg  obs.TraceStoreConfig
	tracesOff bool

	// shapes is the per-shape resource ledger behind pc.query_shapes and
	// alerts the leak-sentinel transition ring behind pc.alerts. Both are
	// immutable after Open; shapeCap and sentinelCfg only carry option values
	// into Open (sentinelCfg is also read by StartRuntimeSampler).
	shapes      *obs.ShapeStats
	alerts      *obs.AlertLog
	shapeCap    int
	sentinelCfg obs.SentinelConfig

	// captor writes rate-limited CPU profiles on slow queries when
	// WithProfileCapture configured a directory; nil otherwise. profileDir
	// only carries the option value into Open.
	captor     *obs.ProfileCaptor
	profileDir string

	// logger receives structured slow-query, error and lifecycle lines; nil
	// drops everything. Swappable at runtime via SetLogger.
	logger atomic.Pointer[obs.Logger]

	// runtime is the optional health sampler behind pc.runtime, installed by
	// StartRuntimeSampler.
	runtime atomic.Pointer[obs.RuntimeCollector]

	// plans caches parsed-and-planned SELECT templates keyed on normalized
	// SQL (nil when disabled); immutable after Open. planCacheCap and
	// planCacheOff only carry option values into Open.
	plans        *sql.PlanCache
	planCacheCap int
	planCacheOff bool

	// ddlGen counts schema changes; cached plans record the generation they
	// were planned under and are dropped wholesale after any CREATE TABLE
	// (new tables can change name resolution and join choices).
	ddlGen atomic.Uint64
}

// Option configures Open.
type Option func(*DB)

// WithCacheConfig selects the predicate-cache configuration (entry kind,
// ranges per entry, bitmap granularity, memory budget).
func WithCacheConfig(cfg CacheConfig) Option {
	return func(db *DB) { db.cache = core.NewCache(cfg) }
}

// WithoutPredicateCache disables the predicate cache entirely.
func WithoutPredicateCache() Option {
	return func(db *DB) { db.cache = nil }
}

// WithSlices sets the number of data slices per table (default 4).
func WithSlices(n int) Option {
	return func(db *DB) { db.slices = n }
}

// WithParallelScans toggles per-slice scan goroutines and morsel-parallel
// join/aggregation execution (default on).
func WithParallelScans(v bool) Option {
	return func(db *DB) { db.parallel = v }
}

// WithMaxWorkers caps the worker goroutines a morsel-parallel operator
// (join build/probe, aggregation) may use per query. Zero — the default —
// means GOMAXPROCS.
func WithMaxWorkers(n int) Option {
	return func(db *DB) { db.maxWorkers = n }
}

// WithMetrics registers the database's instruments on m at Open (see
// EnableMetrics). Pass it after any cache-configuration options so the cache
// counters bind to the cache the database actually uses.
func WithMetrics(m *obs.Metrics) Option {
	return func(db *DB) { db.EnableMetrics(m) }
}

// TraceRetentionConfig bounds the trace tail-sampler: total span budget,
// per-shape head-sample quota, and the slow threshold at which traces are
// always kept (defaulting to the slow-query threshold).
type TraceRetentionConfig = obs.TraceStoreConfig

// WithTraceRetention overrides the trace store's retention bounds (zero
// fields keep their defaults).
func WithTraceRetention(cfg TraceRetentionConfig) Option {
	return func(db *DB) { db.traceCfg = cfg }
}

// WithoutTraces disables trace collection and retention: Query skips span
// recording entirely and pc.traces / pc.trace_spans stay empty. pc.slo keeps
// aggregating (histograms are allocation-free) but carries no exemplars.
func WithoutTraces() Option {
	return func(db *DB) { db.tracesOff = true }
}

// WithLogger installs a structured logger at Open (see SetLogger).
func WithLogger(l *obs.Logger) Option {
	return func(db *DB) { db.SetLogger(l) }
}

// WithPlanCacheCapacity bounds the normalized-SQL plan cache to n templates
// (0 keeps the default, sql.DefaultPlanCacheCapacity).
func WithPlanCacheCapacity(n int) Option {
	return func(db *DB) { db.planCacheCap = n }
}

// WithoutPlanCache disables the normalized-SQL plan cache: every Query
// parses and plans from scratch (ablation and debugging).
func WithoutPlanCache() Option {
	return func(db *DB) { db.planCacheOff = true }
}

// Open creates an empty in-memory database.
func Open(opts ...Option) *DB {
	db := &DB{
		cat:       storage.NewCatalog(),
		cache:     core.NewCache(core.DefaultConfig()),
		slices:    4,
		parallel:  true,
		qlogCap:   DefaultQueryLogCapacity,
		slowQuery: DefaultSlowQueryThreshold,
	}
	for _, o := range opts {
		o(db)
	}
	// The system schema binds to whatever cache/recorder configuration the
	// options settled on, so it is built last.
	db.qlog = systab.NewQueryRecorder(db.qlogCap, db.slowQuery)
	if !db.tracesOff {
		if db.traceCfg.Slow <= 0 {
			// The trace store's "always keep" criterion defaults to the query
			// log's slow flag, so the two telemetry layers agree on slow.
			db.traceCfg.Slow = db.slowQuery
		}
		db.traces = obs.NewTraceStore(db.traceCfg)
	}
	db.slo = obs.NewSLOSet()
	if m := db.metricsReg.Load(); m != nil {
		// WithMetrics ran before the observability layer existed; register
		// its instruments now (the sampler gauges were registered already —
		// they read through db.runtime and need no catch-up).
		db.slo.RegisterMetrics(m)
		db.traces.RegisterMetrics(m)
	}
	if !db.planCacheOff {
		db.plans = sql.NewPlanCache(db.planCacheCap)
	}
	db.shapes = obs.NewShapeStats(db.shapeCap)
	db.alerts = obs.NewAlertLog(0)
	if db.profileDir != "" {
		captor, err := obs.NewProfileCaptor(obs.ProfileCaptorConfig{
			Dir:    db.profileDir,
			Logger: db.logger.Load,
		})
		if err != nil {
			// Capture is best-effort telemetry: an unwritable directory
			// disables it rather than failing Open.
			db.logger.Load().Error("profile capture disabled", "error", err.Error())
		} else {
			db.captor = captor
		}
	}
	db.sysTables = systab.NewRegistry()
	for _, vt := range []engine.VirtualTable{
		systab.QueryLogTable(db.qlog),
		systab.PlanCacheTable(db.plans),
		systab.CacheEntriesTable(db.cache),
		systab.CacheStatsTable(db.cache),
		systab.TableStorageTable(db.cat),
		systab.MetricsTable(db.metricsReg.Load),
		systab.TracesTable(db.traces),
		systab.TraceSpansTable(db.traces),
		systab.SLOTable(db.slo),
		systab.RuntimeTable(db.runtime.Load, func() obs.RuntimeSample {
			return obs.ReadRuntimeSample(engine.ScratchPoolStats)
		}),
		systab.QueryShapesTable(db.shapes),
		systab.AlertsTable(db.alerts),
	} {
		if err := db.sysTables.Register(vt); err != nil {
			// Names are compile-time constants; a clash is a programming error.
			panic(err)
		}
	}
	return db
}

// Catalog exposes the underlying catalog (used by the benchmark harness and
// workload generators inside this module).
func (db *DB) Catalog() *storage.Catalog { return db.cat }

// PredicateCache exposes the cache for stats and configuration; nil when
// disabled.
func (db *DB) PredicateCache() *core.Cache { return db.cache }

// CreateTable registers a new table. sortKey columns (optional) define the
// physical sort order maintained by Vacuum. Names under the reserved system
// schema ("pc.") are rejected.
func (db *DB) CreateTable(name string, schema Schema, sortKey ...string) error {
	if strings.HasPrefix(name, systab.SchemaPrefix) {
		return fmt.Errorf("predcache: %q is reserved for system tables", systab.SchemaPrefix)
	}
	_, err := db.cat.CreateTable(name, schema, db.slices, sortKey...)
	if err == nil {
		// DDL invalidates every cached plan: a new table can change name
		// resolution and the planner's join choices.
		db.ddlGen.Add(1)
	}
	return err
}

// RegisterSystemTable adds a virtual table under the reserved pc schema
// (the network server registers pc.sessions through this). The name must
// carry the "pc." prefix and not clash with a registered table.
func (db *DB) RegisterSystemTable(vt engine.VirtualTable) error {
	return db.sysTables.Register(vt)
}

// Insert appends a batch of rows.
func (db *DB) Insert(table string, batch *Batch) error {
	tbl, ok := db.cat.Table(table)
	if !ok {
		return fmt.Errorf("predcache: unknown table %s", table)
	}
	return tbl.Append(batch, db.cat.NextXID())
}

// Load sorts the batch by the table's sort key (if any) and appends it; the
// table must be empty. Use for initial bulk loads.
func (db *DB) Load(table string, batch *Batch) error {
	tbl, ok := db.cat.Table(table)
	if !ok {
		return fmt.Errorf("predcache: unknown table %s", table)
	}
	return tbl.SortedLoad(batch, db.cat.NextXID())
}

// dmlEpochRetries bounds how often DeleteWhere/UpdateWhere re-match rows
// after a concurrent Vacuum renumbered the table between match and mutate.
// After that many lost races the statement takes the table's layout gate
// (blocking further vacuums) and finishes pessimistically, so DML always
// makes progress even against a back-to-back vacuum loop.
const dmlEpochRetries = 4

// DeleteWhere marks all rows matching pred as deleted (out-of-place MVCC
// delete; row numbers do not change, so predicate-cache entries stay valid).
// It returns the number of rows this statement deleted (rows a concurrent
// statement deleted first are not counted twice).
func (db *DB) DeleteWhere(table string, pred Pred) (n int, err error) {
	start := time.Now()
	defer func() {
		if err == nil {
			db.observeDML(start)
		}
	}()
	tbl, ok := db.cat.Table(table)
	if !ok {
		return 0, fmt.Errorf("predcache: unknown table %s", table)
	}
	for attempt := 0; attempt < dmlEpochRetries; attempt++ {
		n, ok, err := db.tryDeleteWhere(tbl, table, pred)
		if err != nil {
			return 0, err
		}
		if ok {
			return n, nil
		}
		// A vacuum renumbered the rows between match and mutate: re-match.
	}
	unlock := tbl.LockLayout() // exclude vacuums: the epoch cannot change now
	defer unlock()
	n, ok, err = db.tryDeleteWhere(tbl, table, pred)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("predcache: delete from %s: table layout changed while the layout gate was held", table)
	}
	return n, nil
}

// tryDeleteWhere runs one optimistic match/mutate attempt. ok reports
// whether the attempt committed; false means a concurrent vacuum renumbered
// the rows in between and the caller should retry.
func (db *DB) tryDeleteWhere(tbl *storage.Table, table string, pred Pred) (int, bool, error) {
	rows, epoch, err := db.matchRows(tbl, pred)
	if err != nil {
		return 0, false, fmt.Errorf("predcache: delete from %s: %w", table, err)
	}
	total := 0
	for _, rs := range rows {
		total += len(rs)
	}
	if total == 0 {
		tbl.BumpVersion() // the statement still invalidates result caches
		return 0, true, nil
	}
	n, ok := tbl.DeleteRowsAtEpoch(rows, db.cat.NextXID(), epoch)
	return n, ok, nil
}

// UpdateWhere implements out-of-place updates (§4.3.3): matching rows are
// deleted and re-inserted with apply() mutating a columnar copy. The delete
// and append commit atomically — a failed append (e.g. apply produced
// mismatched column lengths) leaves the table unchanged. apply may run more
// than once if a concurrent Vacuum forces a re-match; it always receives a
// freshly materialized batch. Returns the number of updated rows.
func (db *DB) UpdateWhere(table string, pred Pred, apply func(b *Batch)) (n int, err error) {
	start := time.Now()
	defer func() {
		if err == nil {
			db.observeDML(start)
		}
	}()
	tbl, ok := db.cat.Table(table)
	if !ok {
		return 0, fmt.Errorf("predcache: unknown table %s", table)
	}
	for attempt := 0; attempt < dmlEpochRetries; attempt++ {
		n, ok, err := db.tryUpdateWhere(tbl, table, pred, apply)
		if err != nil {
			return 0, err
		}
		if ok {
			return n, nil
		}
		// Vacuumed between match and materialize/mutate: re-match.
	}
	unlock := tbl.LockLayout() // exclude vacuums: the epoch cannot change now
	defer unlock()
	n, ok, err = db.tryUpdateWhere(tbl, table, pred, apply)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("predcache: update %s: table layout changed while the layout gate was held", table)
	}
	return n, nil
}

// tryUpdateWhere runs one optimistic match/materialize/mutate attempt. ok
// reports whether the attempt committed; false means a concurrent vacuum
// invalidated the captured row numbers and the caller should retry. A
// non-nil error is terminal (the table is unchanged).
func (db *DB) tryUpdateWhere(tbl *storage.Table, table string, pred Pred, apply func(b *Batch)) (int, bool, error) {
	rows, epoch, err := db.matchRows(tbl, pred)
	if err != nil {
		return 0, false, fmt.Errorf("predcache: update %s: %w", table, err)
	}
	nb, ok := db.materializeRows(tbl, rows, epoch)
	if !ok {
		return 0, false, nil
	}
	if nb.N == 0 {
		tbl.BumpVersion()
		return 0, true, nil
	}
	apply(nb)
	ok, err = tbl.UpdateRowsAtEpoch(rows, nb, db.cat.NextXID(), epoch)
	if err != nil {
		return 0, false, fmt.Errorf("predcache: update %s: %w", table, err)
	}
	return nb.N, ok, nil
}

// materializeRows copies the captured rows into a columnar batch. It
// re-checks the layout epoch under the same read lock as the copy: the row
// numbers in rows are only meaningful at that epoch, and reading them after
// a vacuum would materialize arbitrary other rows' values.
func (db *DB) materializeRows(tbl *storage.Table, rows [][]int, epoch uint64) (*storage.Batch, bool) {
	schema := tbl.Schema()
	nb := storage.NewBatch(schema)
	unlock, cur := tbl.RLockScanEpoch()
	defer unlock()
	if cur != epoch {
		return nil, false
	}
	iScratch := make([]int64, storage.BlockSize)
	fScratch := make([]float64, storage.BlockSize)
	for slice, rs := range rows {
		s := tbl.Slice(slice)
		for _, row := range rs {
			for ci, def := range schema {
				col := s.Column(ci)
				switch def.Type {
				case storage.Float64:
					nb.Cols[ci].Floats = append(nb.Cols[ci].Floats, col.FloatAt(row, fScratch))
				case storage.String:
					nb.Cols[ci].Strings = append(nb.Cols[ci].Strings, tbl.Dict(ci).Value(col.IntAt(row, iScratch)))
				default:
					nb.Cols[ci].Ints = append(nb.Cols[ci].Ints, col.IntAt(row, iScratch))
				}
			}
			nb.N++
		}
	}
	return nb, true
}

// matchRows evaluates pred per slice and returns visible matching physical
// row numbers plus the layout epoch they were captured at. The row numbers
// are only valid while the table's layout epoch still equals the returned
// one; mutate through the AtEpoch table methods.
func (db *DB) matchRows(tbl *storage.Table, pred Pred) ([][]int, uint64, error) {
	if pred == nil {
		pred = expr.TruePred{}
	}
	snapshot := db.cat.Snapshot()
	unlock, epoch := tbl.RLockScanEpoch()
	defer unlock()
	bound, err := expr.Bind(pred, tbl)
	if err != nil {
		return nil, 0, err
	}
	numCols := len(tbl.Schema())
	dicts := make([]*storage.Dict, numCols)
	for i := range dicts {
		dicts[i] = tbl.Dict(i)
	}
	out := make([][]int, tbl.NumSlices())
	needCols := map[int]bool{}
	for _, name := range pred.Columns(nil) {
		needCols[tbl.ColumnIndex(name)] = true
	}
	for si := 0; si < tbl.NumSlices(); si++ {
		s := tbl.Slice(si)
		ctx := expr.NewBlockCtx(numCols, dicts)
		ints := make(map[int][]int64)
		floats := make(map[int][]float64)
		sel := make([]int, storage.BlockSize)
		for blk := 0; blk*storage.BlockSize < s.NumRows(); blk++ {
			base := blk * storage.BlockSize
			n := s.NumRows() - base
			if n > storage.BlockSize {
				n = storage.BlockSize
			}
			ctx.N = n
			for ci := range needCols {
				if tbl.ColumnType(ci) == storage.Float64 {
					if floats[ci] == nil {
						floats[ci] = make([]float64, storage.BlockSize)
					}
					s.Column(ci).ReadFloatBlock(blk, floats[ci])
					ctx.SetFloat(ci, floats[ci])
				} else {
					if ints[ci] == nil {
						ints[ci] = make([]int64, storage.BlockSize)
					}
					s.Column(ci).ReadIntBlock(blk, ints[ci])
					ctx.SetInt(ci, ints[ci])
				}
			}
			sel = sel[:n]
			for i := 0; i < n; i++ {
				sel[i] = i
			}
			matched := bound.Eval(ctx, sel)
			for _, r := range matched {
				row := base + r
				if s.Visible(row, snapshot) {
					out[si] = append(out[si], row)
				}
			}
			sel = sel[:cap(sel)]
		}
	}
	return out, epoch, nil
}

// Vacuum reclaims deleted rows and re-sorts the table; this changes physical
// row numbers and therefore invalidates the table's predicate-cache entries.
func (db *DB) Vacuum(table string) error {
	start := time.Now()
	tbl, ok := db.cat.Table(table)
	if !ok {
		return fmt.Errorf("predcache: unknown table %s", table)
	}
	tbl.Vacuum(db.cat.Snapshot())
	db.observeDML(start)
	db.logger.Load().Info("vacuum",
		"table", table, "wall_us", time.Since(start).Microseconds(),
		"rows", tbl.NumRows())
	return nil
}

// observeDML records one successful mutation statement's wall time under the
// dml SLO class. Error paths (unknown table, bad predicate) deliberately do
// not observe: their sub-microsecond no-op samples would skew the dml
// histograms toward zero. DML statements are not traced (they have no plan
// tree), so the observation carries no retained-trace exemplar.
func (db *DB) observeDML(start time.Time) {
	db.slo.Observe(obs.ClassDML, false, time.Since(start), -1, false)
}

// Query parses, plans and executes a SELECT statement. Statements prefixed
// with EXPLAIN return the plan as a one-column text result; EXPLAIN ANALYZE
// additionally executes the statement and annotates the plan with wall
// times, cardinalities and per-scan cache outcomes.
func (db *DB) Query(query string) (*Result, error) {
	return db.QueryCtx(context.Background(), query)
}

// QueryCtx is Query with cooperative cancellation: when ctx is cancelled the
// executing plan stops at its next check point (every scan block and every
// cancelCheckRows rows inside join/aggregation loops) and the query returns
// ctx's error. Cancelled executions are recorded in pc.query_log like any
// other failure, and never install partial predicate-cache entries. A ctx
// that can never be cancelled (context.Background) costs nothing: the
// execution context carries no ctx at all and the per-row checks reduce to a
// nil test.
func (db *DB) QueryCtx(ctx context.Context, query string) (*Result, error) {
	if explain, analyze, rest := sql.StripExplain(query); explain {
		var text string
		var err error
		if analyze {
			text, err = db.explainAnalyze(ctx, query, rest)
		} else {
			text, err = db.explainRecorded(query, rest)
		}
		if err != nil {
			return nil, err
		}
		return engine.TextRelation("plan", strings.Split(strings.TrimRight(text, "\n"), "\n")), nil
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			// Already cancelled before any work: nothing to record.
			return nil, err
		}
	}
	meta := queryMeta{sql: query, start: time.Now(), session: sessionFromCtx(ctx)}
	if db.traces != nil {
		meta.tr = obs.NewTrace()
	}
	node, err := db.parseAndPlan(&meta, query)
	if err != nil {
		db.recordFailed(meta, err)
		return nil, err
	}
	ec := db.execCtx()
	ec.Trace = meta.tr
	if ctx != nil && ctx.Done() != nil {
		ec.Ctx = ctx
	}
	return db.runInternal(node, ec, meta)
}

// parseAndPlan produces an executable plan for a SELECT, consulting the
// normalized-SQL plan cache first. A hit skips lexing, parsing and planning:
// meta.plan stays zero and meta.parse absorbs only the normalize+clone cost
// (microseconds), which is how plan-cache hits are identified in
// pc.query_log. On a miss the statement is parsed with slot tags so the
// freshly planned tree can be cached as a bind template.
func (db *DB) parseAndPlan(meta *queryMeta, query string) (engine.Node, error) {
	var nq *sql.NormalizedQuery
	var ddlGen uint64
	if db.plans != nil {
		// Load the DDL generation before the lookup: if a CREATE TABLE lands
		// between here and Put, the entry is stored under the old generation
		// and the next lookup discards it.
		ddlGen = db.ddlGen.Load()
		if n, ok := sql.Normalize(query); ok {
			nq = n
			// The normalized key doubles as the query's shape: the same string
			// the plan cache indexes on keys pc.query_shapes and the shape
			// pprof label, so all three layers agree on what "one shape" is.
			meta.shapeKey = n.Key
			csp := meta.tr.Begin(obs.KindPhase, "plan-cache")
			node, hit := db.plans.Get(nq, db.cat, ddlGen)
			csp.End()
			if hit {
				meta.parse = time.Since(meta.start)
				return node, nil
			}
		}
	}
	psp := meta.tr.Begin(obs.KindPhase, "parse")
	var stmt *sql.SelectStmt
	var err error
	if nq != nil {
		stmt, err = sql.ParseNormalized(query, nq.Slots())
	} else {
		stmt, err = sql.Parse(query)
	}
	psp.End()
	meta.parse = time.Since(meta.start)
	if err != nil {
		return nil, err
	}
	planStart := time.Now()
	lsp := meta.tr.Begin(obs.KindPhase, "plan")
	node, err := sql.PlanWith(stmt, db.cat, db.sysTables)
	lsp.End()
	meta.plan = time.Since(planStart)
	if err != nil {
		return nil, err
	}
	if nq != nil {
		db.plans.Put(nq, node, db.cat, ddlGen)
	}
	return node, nil
}

// queryMeta carries front-end context (query text, phase timings, the trace
// being recorded) into the shared execution tail; the zero value describes a
// hand-built plan: no text, no trace, no retention.
type queryMeta struct {
	sql         string
	start       time.Time
	parse, plan time.Duration
	// tr is the query's trace, nil when tracing is off or the plan was
	// hand-built. keepSpans makes the retention handoff copy the spans
	// instead of detaching them (ExplainAnalyze renders the trace afterwards).
	tr        *obs.Trace
	keepSpans bool
	// shapeKey is the normalized-SQL shape (set by parseAndPlan; runInternal
	// falls back to the raw SQL when normalization declined the statement) and
	// session the connection label QueryCtx extracted from the context. seq is
	// the query's pre-reserved pc.query_log sequence number when reserved is
	// set — reserved before execution so the pprof query_id label matches the
	// log row the query will eventually occupy.
	shapeKey string
	session  string
	seq      int64
	reserved bool
}

// recordFailed logs a query that never reached execution (parse or plan
// error) and retains its partial trace: the spans recorded up to the failure
// point are finalized and offered to the store, which always admits errors.
func (db *DB) recordFailed(meta queryMeta, err error) {
	wall := time.Since(meta.start)
	rec := systab.QueryRecord{
		StartMicros: meta.start.UnixMicro(),
		SQL:         meta.sql,
		Error:       err.Error(),
		WallMicros:  wall.Microseconds(),
		ParseMicros: meta.parse.Microseconds(),
		PlanMicros:  meta.plan.Microseconds(),
	}
	seq := db.qlog.Record(rec)
	if meta.tr != nil {
		db.retainTrace(meta, seq, wall, "", "", false, err)
	}
	db.logger.Load().WithQuery(seq).Error("query failed",
		"sql", meta.sql, "wall_us", wall.Microseconds(), "error", err.Error())
}

// execCtx builds the default execution context Run and Query share.
func (db *DB) execCtx() *engine.ExecCtx {
	return &engine.ExecCtx{
		Catalog:    db.cat,
		Cache:      db.cache,
		Snapshot:   db.cat.Snapshot(),
		Stats:      &storage.ScanStats{},
		Parallel:   db.parallel,
		MaxWorkers: db.maxWorkers,
	}
}

// runInternal is the shared execution tail of Query, Run, RunCtx and
// ExplainAnalyze: it times the execution, feeds the registered metrics and
// the query log, saves the stats snapshot behind LastQueryStats, and hands
// back a shallow copy of the result with the per-query counters attached —
// concurrent callers each see their own Result.Stats instead of racing on
// the DB-wide accessor.
func (db *DB) runInternal(node engine.Node, ec *engine.ExecCtx, meta queryMeta) (*Result, error) {
	if meta.start.IsZero() {
		meta.start = time.Now()
	}
	// SQL-originated queries get full resource attribution: pprof labels on
	// the executing goroutines, allocation deltas, and a shape identity.
	// Hand-built plans (Run/RunCtx) skip it — they have no query text to
	// shape-key and the warm-scan allocation budget holds them to the bare
	// execution path (label sets and snapshots both allocate).
	attributed := meta.sql != ""
	var shapeID string
	var before obs.ResourceSnapshot
	if attributed {
		if meta.shapeKey == "" {
			// Normalization declined the statement (or the plan cache is
			// off): the raw SQL is its own shape.
			meta.shapeKey = meta.sql
		}
		shapeID = obs.ShapeID(meta.shapeKey)
		if !meta.reserved {
			// Reserve the query's log sequence number before execution so the
			// pprof query_id label names the pc.query_log row the query will
			// occupy when it completes (-1, never recorded, when logging is
			// disabled).
			meta.seq = db.qlog.Reserve()
			meta.reserved = meta.seq >= 0
		}
		before = obs.TakeResourceSnapshot()
	}
	execStart := time.Now()
	esp := meta.tr.Begin(obs.KindPhase, "execute")
	var rel *engine.Relation
	var err error
	if attributed {
		labelCtx := context.Background()
		if ec.Ctx != nil {
			labelCtx = ec.Ctx
		}
		// pprof.Do tags this goroutine — and, by inheritance, every morsel
		// worker the plan spawns — for the duration of the execution, so CPU
		// samples anywhere in the plan carry the query's identity.
		pprof.Do(labelCtx, pprof.Labels(
			"query_id", queryIDLabel(meta.seq),
			"shape", shapeID,
			"session", meta.session,
		), func(context.Context) {
			rel, err = node.Execute(ec)
		})
	} else {
		rel, err = node.Execute(ec)
	}
	esp.End()
	exec := time.Since(execStart)
	var allocObjects, allocBytes int64
	if attributed {
		allocObjects, allocBytes = obs.TakeResourceSnapshot().Sub(before)
	}
	snap := ec.Stats.Snapshot()
	// Attributed CPU: the coordinator's exec wall already contains every
	// serial phase and its own share of parallel ones; workers add only the
	// busy time beyond the coordinator's wait (see ScanStats.WorkerExtraNanos).
	cpu := exec + time.Duration(snap.WorkerExtraNanos)
	db.metrics.Load().record(exec, snap, err)
	wall := time.Since(meta.start)
	var rows int64
	if err == nil {
		rows = int64(rel.NumRows())
	}
	seq := int64(-1)
	if db.qlog != nil {
		rec := systab.QueryRecord{
			StartMicros:  meta.start.UnixMicro(),
			SQL:          meta.sql,
			WallMicros:   wall.Microseconds(),
			ParseMicros:  meta.parse.Microseconds(),
			PlanMicros:   meta.plan.Microseconds(),
			ExecMicros:   exec.Microseconds(),
			CPUMicros:    cpu.Microseconds(),
			AllocObjects: allocObjects,
			AllocBytes:   allocBytes,
			ShapeID:      shapeID,
			Rows:         rows,
		}
		rec.FillStats(snap)
		if err != nil {
			rec.Error = err.Error()
		}
		if meta.reserved {
			rec.Seq = meta.seq
			seq = db.qlog.RecordReserved(rec)
		} else {
			seq = db.qlog.Record(rec)
		}
	}
	if attributed {
		// SQL-originated queries feed the observability tail: classify, offer
		// the trace for retention, observe the SLO histograms and the shape
		// ledger, log anomalies, capture profiles on slow queries.
		db.observe(node, meta, seq, wall, snap, err, shapeID, cpu, allocObjects, allocBytes, rows)
	}
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	db.last = snap
	db.mu.Unlock()
	// Shallow copy: node results can be shared (Materialized plans), so the
	// per-query fields must never be written onto the node's relation.
	out := *rel
	out.Stats = snap
	out.Wall = time.Since(meta.start)
	return &out, nil
}

// observe is the post-completion observability tail shared by every
// SQL-originated execution: the query's class and cache outcome update the
// SLO histograms, the finished trace is offered for retention (errored and
// slow queries are always admitted), and anomalies emit one structured log
// line stamped with the query/trace ID.
func (db *DB) observe(node engine.Node, meta queryMeta, seq int64, wall time.Duration, snap storage.ScanStatsSnapshot, execErr error, shapeID string, cpu time.Duration, allocObjects, allocBytes, rows int64) {
	class := engine.Classify(node)
	hit := snap.CacheHits > 0
	retained := false
	if meta.tr != nil {
		retained = db.retainTrace(meta, seq, wall, class, engine.Shape(node), hit, execErr)
	}
	db.slo.Observe(class, hit, wall, seq, retained)
	// The shape ledger receives the same CPUMicros pc.query_log records, so
	// summing cpu_us over pc.query_log by shape_id reproduces
	// pc.query_shapes.cpu_us exactly (while both fit the log's window).
	db.shapes.Observe(obs.ShapeObservation{
		Key:          meta.shapeKey,
		ID:           shapeID,
		Class:        class,
		CPUMicros:    cpu.Microseconds(),
		WallMicros:   wall.Microseconds(),
		AllocObjects: allocObjects,
		AllocBytes:   allocBytes,
		Rows:         rows,
		Hit:          hit,
		Err:          execErr != nil,
		TraceID:      seq,
		Retained:     retained,
	})
	switch {
	case execErr != nil:
		db.logger.Load().WithQuery(seq).Error("query failed",
			"sql", meta.sql, "class", class, "wall_us", wall.Microseconds(),
			"error", execErr.Error())
	case db.slowQuery > 0 && wall >= db.slowQuery:
		db.logger.Load().WithQuery(seq).Warn("slow query",
			"sql", meta.sql, "class", class, "wall_us", wall.Microseconds(),
			"cpu_us", cpu.Microseconds(), "shape_id", shapeID,
			"rows_scanned", snap.RowsScanned, "cache_hits", snap.CacheHits,
			"trace_retained", retained)
		db.captor.MaybeCapture("slow_query", seq)
	}
}

// retainTrace finalizes the query's trace — ending any spans an error path
// left open and stamping the failure message — and offers it to the store,
// reporting whether it was kept. The spans move by pointer (Trace.TakeSpans,
// the O(1) handoff) unless meta.keepSpans asks for a copy because the caller
// still renders the live trace afterwards.
func (db *DB) retainTrace(meta queryMeta, seq int64, wall time.Duration, class, shape string, hit bool, execErr error) bool {
	errMsg := ""
	if execErr != nil {
		errMsg = execErr.Error()
	}
	meta.tr.FinishOpen(errMsg)
	var spans []obs.Span
	if meta.keepSpans {
		spans = meta.tr.Spans()
	} else {
		spans = meta.tr.TakeSpans()
	}
	return db.traces.Offer(&obs.RetainedTrace{
		TraceID:     seq,
		StartMicros: meta.start.UnixMicro(),
		Wall:        wall,
		SQL:         meta.sql,
		Error:       errMsg,
		Class:       class,
		Shape:       shape,
		CacheHit:    hit,
		Spans:       spans,
	})
}

// Run executes a prepared plan.
func (db *DB) Run(node engine.Node) (*Result, error) {
	return db.runInternal(node, db.execCtx(), queryMeta{})
}

// RunCtx executes a plan with a caller-provided execution context (the
// benchmark harness uses this for ablation switches). Zero-valued fields are
// defaulted from the database: catalog, snapshot, stats, and — matching Run —
// scan parallelism. Callers that need a serial scan set ec.Serial rather
// than relying on the Parallel zero value.
func (db *DB) RunCtx(node engine.Node, ec *engine.ExecCtx) (*Result, error) {
	if ec.Catalog == nil {
		ec.Catalog = db.cat
	}
	if ec.Snapshot == 0 {
		ec.Snapshot = db.cat.Snapshot()
	}
	if ec.Stats == nil {
		ec.Stats = &storage.ScanStats{}
	}
	if !ec.Parallel && !ec.Serial {
		ec.Parallel = db.parallel
	}
	if ec.MaxWorkers == 0 {
		ec.MaxWorkers = db.maxWorkers
	}
	return db.runInternal(node, ec, queryMeta{})
}

// ExplainAnalyze executes query with tracing enabled and renders the span
// tree: parse/plan/execute phases, every plan operator with its wall time
// and cardinalities, scans with their block-elimination breakdown (zone maps
// vs predicate cache) and cache outcome, and cache/slice events beneath the
// scans that produced them. A totals line mirrors LastQueryStats.
func (db *DB) ExplainAnalyze(query string) (string, error) {
	return db.explainAnalyze(context.Background(), query, query)
}

// explainRecorded is EXPLAIN's path through Query: plan only, never execute.
// Parse and plan failures are recorded in pc.query_log under displaySQL —
// the full statement the client sent, EXPLAIN prefix included — exactly like
// any other failed query; successful EXPLAINs execute nothing and are not
// recorded (matching the non-recording Explain accessor pcsh uses).
func (db *DB) explainRecorded(displaySQL, rest string) (string, error) {
	meta := queryMeta{sql: displaySQL, start: time.Now()}
	stmt, err := sql.Parse(rest)
	meta.parse = time.Since(meta.start)
	if err != nil {
		db.recordFailed(meta, err)
		return "", err
	}
	planStart := time.Now()
	node, err := sql.PlanWith(stmt, db.cat, db.sysTables)
	meta.plan = time.Since(planStart)
	if err != nil {
		db.recordFailed(meta, err)
		return "", err
	}
	return engine.Explain(node), nil
}

// explainAnalyze is the shared tail of ExplainAnalyze and Query's EXPLAIN
// ANALYZE prefix: rest is parsed and executed, displaySQL (the full
// statement, prefix included when it came through Query) is what the query
// log and trace store record, and ctx cancels the execution like QueryCtx.
func (db *DB) explainAnalyze(ctx context.Context, displaySQL, rest string) (string, error) {
	tr := obs.NewTrace()
	// keepSpans: the retention handoff copies the spans instead of detaching
	// them, because the live trace is rendered below after runInternal.
	meta := queryMeta{sql: displaySQL, start: time.Now(), tr: tr, keepSpans: true}
	psp := tr.Begin(obs.KindPhase, "parse")
	stmt, err := sql.Parse(rest)
	psp.End()
	meta.parse = time.Since(meta.start)
	if err != nil {
		db.recordFailed(meta, err)
		return "", err
	}
	planStart := time.Now()
	lsp := tr.Begin(obs.KindPhase, "plan")
	node, err := sql.PlanWith(stmt, db.cat, db.sysTables)
	lsp.End()
	meta.plan = time.Since(planStart)
	if err != nil {
		db.recordFailed(meta, err)
		return "", err
	}
	ec := db.execCtx()
	ec.Trace = tr
	if ctx != nil && ctx.Done() != nil {
		ec.Ctx = ctx
	}
	rel, err := db.runInternal(node, ec, meta)
	if err != nil {
		return "", err
	}
	snap := ec.Stats.Snapshot()
	var b strings.Builder
	b.WriteString(engine.RenderAnalyze(tr))
	fmt.Fprintf(&b, "result: %d rows\n", rel.NumRows())
	fmt.Fprintf(&b, "totals: rows scanned=%d qualified=%d decoded=%d; blocks accessed=%d decoded=%d kernel(encoded)=%d pruned(zonemap)=%d pruned(cache)=%d; cache hits=%d misses=%d\n",
		snap.RowsScanned, snap.RowsQualified, snap.RowsDecoded,
		snap.BlocksAccessed, snap.BlocksDecoded, snap.BlocksKernel,
		snap.BlocksSkipped, snap.BlocksPrunedCache, snap.CacheHits, snap.CacheMisses)
	return b.String(), nil
}

// Plan parses and plans a SELECT without executing it. System tables (pc.*)
// resolve the same way they do in Query.
func (db *DB) Plan(query string) (engine.Node, error) {
	return sql.PlanSQLWith(query, db.cat, db.sysTables)
}

// LastQueryStats returns the scan counters of the most recent Query/Run.
func (db *DB) LastQueryStats() QueryStats {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.last
}

// CacheStats returns predicate-cache counters (zero value when disabled).
func (db *DB) CacheStats() CacheStats {
	if db.cache == nil {
		return CacheStats{}
	}
	return db.cache.Stats()
}

// TableRows returns a table's physical row count.
func (db *DB) TableRows(table string) int {
	tbl, ok := db.cat.Table(table)
	if !ok {
		return 0
	}
	return tbl.NumRows()
}

// ParseWhere parses a standalone filter condition (the text that would
// follow WHERE) into a predicate usable with DeleteWhere and UpdateWhere.
func ParseWhere(cond string) (Pred, error) { return sql.ParsePredicate(cond) }

// Explain renders the plan for a query as indented text.
func (db *DB) Explain(query string) (string, error) {
	node, err := sql.PlanSQLWith(query, db.cat, db.sysTables)
	if err != nil {
		return "", err
	}
	return engine.Explain(node), nil
}

// CacheEntries lists the predicate-cache entries, most recently used first.
func (db *DB) CacheEntries() []core.EntrySummary {
	if db.cache == nil {
		return nil
	}
	return db.cache.Entries()
}

// Plan-cache introspection types (see PlanCacheStats / PlanCacheEntries).
type (
	// PlanCacheStats reports normalized-SQL plan-cache counters.
	PlanCacheStats = sql.PlanCacheStats
	// PlanCacheEntry describes one cached plan template.
	PlanCacheEntry = sql.PlanCacheEntry
)

// PlanCacheStats returns plan-cache counters (zero value when the cache is
// disabled via WithoutPlanCache).
func (db *DB) PlanCacheStats() PlanCacheStats {
	return db.plans.Stats()
}

// PlanCacheEntries lists the cached plan templates, most recently used first
// (nil when the cache is disabled). Also queryable as pc.plan_cache.
func (db *DB) PlanCacheEntries() []PlanCacheEntry {
	return db.plans.Entries()
}
