// Package predcache is a single-node analytical database engine with
// predicate caching: a query-driven secondary index that remembers, per scan
// expression, which row ranges qualified — so repeating scans touch only the
// data that mattered last time (Schmidt et al., "Predicate Caching:
// Query-Driven Secondary Indexing for Cloud Data Warehouses", SIGMOD 2024).
//
// The engine stores tables in compressed columnar blocks with zone maps,
// executes SQL with vectorized scans, hash joins with semi-join-filter
// pushdown, and hash aggregation, and keeps the predicate cache online
// across inserts, deletes and updates.
//
// Quick start:
//
//	db := predcache.Open()
//	db.CreateTable("t", predcache.Schema{{Name: "x", Type: predcache.Int64}})
//	// load data with db.Insert, then:
//	res, err := db.Query("select count(*) from t where x > 42")
package predcache

import (
	"fmt"
	"sync"

	"github.com/predcache/predcache/internal/core"
	"github.com/predcache/predcache/internal/engine"
	"github.com/predcache/predcache/internal/expr"
	"github.com/predcache/predcache/internal/sql"
	"github.com/predcache/predcache/internal/storage"
)

// Re-exported storage types: the public surface of table definitions.
type (
	// Schema describes a table's columns.
	Schema = storage.Schema
	// ColumnDef is one column definition.
	ColumnDef = storage.ColumnDef
	// ColumnType enumerates column types.
	ColumnType = storage.ColumnType
	// Batch is a columnar batch of rows for loading.
	Batch = storage.Batch
	// Result is a materialized query result.
	Result = engine.Relation
	// CacheConfig configures the predicate cache.
	CacheConfig = core.Config
	// CacheStats reports predicate-cache counters.
	CacheStats = core.Stats
	// QueryStats reports per-query scan counters.
	QueryStats = storage.ScanStatsSnapshot
	// Pred is a filter predicate (for DeleteWhere / UpdateWhere).
	Pred = expr.Pred
)

// Column type constants.
const (
	Int64   = storage.Int64
	Float64 = storage.Float64
	Date    = storage.Date
	String  = storage.String
	Bool    = storage.Bool
)

// Predicate-cache entry kinds.
const (
	RangeIndex  = core.RangeIndex
	BitmapIndex = core.BitmapIndex
)

// NewBatch allocates an empty batch shaped like schema.
func NewBatch(schema Schema) *Batch { return storage.NewBatch(schema) }

// DB is an embedded analytical database with a predicate cache.
type DB struct {
	mu sync.Mutex
	// cat, cache, slices and parallel are immutable after Open.
	cat      *storage.Catalog
	cache    *core.Cache
	slices   int
	parallel bool
	last     storage.ScanStatsSnapshot // guarded by mu
}

// Option configures Open.
type Option func(*DB)

// WithCacheConfig selects the predicate-cache configuration (entry kind,
// ranges per entry, bitmap granularity, memory budget).
func WithCacheConfig(cfg CacheConfig) Option {
	return func(db *DB) { db.cache = core.NewCache(cfg) }
}

// WithoutPredicateCache disables the predicate cache entirely.
func WithoutPredicateCache() Option {
	return func(db *DB) { db.cache = nil }
}

// WithSlices sets the number of data slices per table (default 4).
func WithSlices(n int) Option {
	return func(db *DB) { db.slices = n }
}

// WithParallelScans toggles per-slice scan goroutines (default on).
func WithParallelScans(v bool) Option {
	return func(db *DB) { db.parallel = v }
}

// Open creates an empty in-memory database.
func Open(opts ...Option) *DB {
	db := &DB{
		cat:      storage.NewCatalog(),
		cache:    core.NewCache(core.DefaultConfig()),
		slices:   4,
		parallel: true,
	}
	for _, o := range opts {
		o(db)
	}
	return db
}

// Catalog exposes the underlying catalog (used by the benchmark harness and
// workload generators inside this module).
func (db *DB) Catalog() *storage.Catalog { return db.cat }

// PredicateCache exposes the cache for stats and configuration; nil when
// disabled.
func (db *DB) PredicateCache() *core.Cache { return db.cache }

// CreateTable registers a new table. sortKey columns (optional) define the
// physical sort order maintained by Vacuum.
func (db *DB) CreateTable(name string, schema Schema, sortKey ...string) error {
	_, err := db.cat.CreateTable(name, schema, db.slices, sortKey...)
	return err
}

// Insert appends a batch of rows.
func (db *DB) Insert(table string, batch *Batch) error {
	tbl, ok := db.cat.Table(table)
	if !ok {
		return fmt.Errorf("predcache: unknown table %s", table)
	}
	return tbl.Append(batch, db.cat.NextXID())
}

// Load sorts the batch by the table's sort key (if any) and appends it; the
// table must be empty. Use for initial bulk loads.
func (db *DB) Load(table string, batch *Batch) error {
	tbl, ok := db.cat.Table(table)
	if !ok {
		return fmt.Errorf("predcache: unknown table %s", table)
	}
	return tbl.SortedLoad(batch, db.cat.NextXID())
}

// DeleteWhere marks all rows matching pred as deleted (out-of-place MVCC
// delete; row numbers do not change, so predicate-cache entries stay valid).
// It returns the number of deleted rows.
func (db *DB) DeleteWhere(table string, pred Pred) (int, error) {
	tbl, ok := db.cat.Table(table)
	if !ok {
		return 0, fmt.Errorf("predcache: unknown table %s", table)
	}
	rows, err := db.matchRows(tbl, pred)
	if err != nil {
		return 0, err
	}
	xid := db.cat.NextXID()
	total := 0
	for slice, rs := range rows {
		if len(rs) > 0 {
			tbl.DeleteRows(slice, rs, xid)
			total += len(rs)
		}
	}
	if total == 0 {
		tbl.BumpVersion() // the statement still invalidates result caches
	}
	return total, nil
}

// UpdateWhere implements out-of-place updates (§4.3.3): matching rows are
// deleted and re-inserted with apply() mutating a columnar copy. Returns the
// number of updated rows.
func (db *DB) UpdateWhere(table string, pred Pred, apply func(b *Batch)) (int, error) {
	tbl, ok := db.cat.Table(table)
	if !ok {
		return 0, fmt.Errorf("predcache: unknown table %s", table)
	}
	rows, err := db.matchRows(tbl, pred)
	if err != nil {
		return 0, err
	}
	// Materialize the matching rows columnar.
	schema := tbl.Schema()
	nb := storage.NewBatch(schema)
	unlock := tbl.RLockScan()
	iScratch := make([]int64, storage.BlockSize)
	fScratch := make([]float64, storage.BlockSize)
	for slice, rs := range rows {
		s := tbl.Slice(slice)
		for _, row := range rs {
			for ci, def := range schema {
				col := s.Column(ci)
				switch def.Type {
				case storage.Float64:
					nb.Cols[ci].Floats = append(nb.Cols[ci].Floats, col.FloatAt(row, fScratch))
				case storage.String:
					nb.Cols[ci].Strings = append(nb.Cols[ci].Strings, tbl.Dict(ci).Value(col.IntAt(row, iScratch)))
				default:
					nb.Cols[ci].Ints = append(nb.Cols[ci].Ints, col.IntAt(row, iScratch))
				}
			}
			nb.N++
		}
	}
	unlock()
	if nb.N == 0 {
		tbl.BumpVersion()
		return 0, nil
	}
	apply(nb)
	xid := db.cat.NextXID()
	for slice, rs := range rows {
		if len(rs) > 0 {
			tbl.DeleteRows(slice, rs, xid)
		}
	}
	if err := tbl.Append(nb, xid); err != nil {
		return 0, err
	}
	return nb.N, nil
}

// matchRows evaluates pred per slice and returns visible matching row
// numbers.
func (db *DB) matchRows(tbl *storage.Table, pred Pred) ([][]int, error) {
	if pred == nil {
		pred = expr.TruePred{}
	}
	snapshot := db.cat.Snapshot()
	unlock := tbl.RLockScan()
	defer unlock()
	bound, err := expr.Bind(pred, tbl)
	if err != nil {
		return nil, err
	}
	numCols := len(tbl.Schema())
	dicts := make([]*storage.Dict, numCols)
	for i := range dicts {
		dicts[i] = tbl.Dict(i)
	}
	out := make([][]int, tbl.NumSlices())
	needCols := map[int]bool{}
	for _, name := range pred.Columns(nil) {
		needCols[tbl.ColumnIndex(name)] = true
	}
	for si := 0; si < tbl.NumSlices(); si++ {
		s := tbl.Slice(si)
		ctx := expr.NewBlockCtx(numCols, dicts)
		ints := make(map[int][]int64)
		floats := make(map[int][]float64)
		sel := make([]int, storage.BlockSize)
		for blk := 0; blk*storage.BlockSize < s.NumRows(); blk++ {
			base := blk * storage.BlockSize
			n := s.NumRows() - base
			if n > storage.BlockSize {
				n = storage.BlockSize
			}
			ctx.N = n
			for ci := range needCols {
				if tbl.ColumnType(ci) == storage.Float64 {
					if floats[ci] == nil {
						floats[ci] = make([]float64, storage.BlockSize)
					}
					s.Column(ci).ReadFloatBlock(blk, floats[ci])
					ctx.SetFloat(ci, floats[ci])
				} else {
					if ints[ci] == nil {
						ints[ci] = make([]int64, storage.BlockSize)
					}
					s.Column(ci).ReadIntBlock(blk, ints[ci])
					ctx.SetInt(ci, ints[ci])
				}
			}
			sel = sel[:n]
			for i := 0; i < n; i++ {
				sel[i] = i
			}
			matched := bound.Eval(ctx, sel)
			for _, r := range matched {
				row := base + r
				if s.Visible(row, snapshot) {
					out[si] = append(out[si], row)
				}
			}
			sel = sel[:cap(sel)]
		}
	}
	return out, nil
}

// Vacuum reclaims deleted rows and re-sorts the table; this changes physical
// row numbers and therefore invalidates the table's predicate-cache entries.
func (db *DB) Vacuum(table string) error {
	tbl, ok := db.cat.Table(table)
	if !ok {
		return fmt.Errorf("predcache: unknown table %s", table)
	}
	tbl.Vacuum(db.cat.Snapshot())
	return nil
}

// Query parses, plans and executes a SELECT statement.
func (db *DB) Query(query string) (*Result, error) {
	node, err := sql.PlanSQL(query, db.cat)
	if err != nil {
		return nil, err
	}
	return db.Run(node)
}

// Run executes a prepared plan.
func (db *DB) Run(node engine.Node) (*Result, error) {
	stats := &storage.ScanStats{}
	ec := &engine.ExecCtx{
		Catalog:  db.cat,
		Cache:    db.cache,
		Snapshot: db.cat.Snapshot(),
		Stats:    stats,
		Parallel: db.parallel,
	}
	rel, err := node.Execute(ec)
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	db.last = stats.Snapshot()
	db.mu.Unlock()
	return rel, nil
}

// RunCtx executes a plan with a caller-provided execution context (the
// benchmark harness uses this for ablation switches).
func (db *DB) RunCtx(node engine.Node, ec *engine.ExecCtx) (*Result, error) {
	if ec.Catalog == nil {
		ec.Catalog = db.cat
	}
	if ec.Snapshot == 0 {
		ec.Snapshot = db.cat.Snapshot()
	}
	if ec.Stats == nil {
		ec.Stats = &storage.ScanStats{}
	}
	rel, err := node.Execute(ec)
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	db.last = ec.Stats.Snapshot()
	db.mu.Unlock()
	return rel, nil
}

// Plan parses and plans a SELECT without executing it.
func (db *DB) Plan(query string) (engine.Node, error) {
	return sql.PlanSQL(query, db.cat)
}

// LastQueryStats returns the scan counters of the most recent Query/Run.
func (db *DB) LastQueryStats() QueryStats {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.last
}

// CacheStats returns predicate-cache counters (zero value when disabled).
func (db *DB) CacheStats() CacheStats {
	if db.cache == nil {
		return CacheStats{}
	}
	return db.cache.Stats()
}

// TableRows returns a table's physical row count.
func (db *DB) TableRows(table string) int {
	tbl, ok := db.cat.Table(table)
	if !ok {
		return 0
	}
	return tbl.NumRows()
}

// ParseWhere parses a standalone filter condition (the text that would
// follow WHERE) into a predicate usable with DeleteWhere and UpdateWhere.
func ParseWhere(cond string) (Pred, error) { return sql.ParsePredicate(cond) }

// Explain renders the plan for a query as indented text.
func (db *DB) Explain(query string) (string, error) {
	node, err := sql.PlanSQL(query, db.cat)
	if err != nil {
		return "", err
	}
	return engine.Explain(node), nil
}

// CacheEntries lists the predicate-cache entries, most recently used first.
func (db *DB) CacheEntries() []core.EntrySummary {
	if db.cache == nil {
		return nil
	}
	return db.cache.Entries()
}
