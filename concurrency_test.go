package predcache_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	predcache "github.com/predcache/predcache"
)

// TestConcurrentQueriesAndDML hammers one database with parallel readers
// and writers. Run with -race: it exercises the scan-lock ordering (cache
// bookkeeping must never nest inside the table read lock) and dictionary
// snapshotting during bind.
func TestConcurrentQueriesAndDML(t *testing.T) {
	db := openWithData(t, 20000)
	queries := []string{
		"select count(*) from t where val >= 90",
		"select grp, sum(val) from t where day between 20050 and 20100 group by grp",
		"select count(*) from t where grp = 'b' and val < 10",
		"select max(val) from t where grp like '%a%'",
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 64)

	// Readers.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				if _, err := db.Query(queries[(w+i)%len(queries)]); err != nil {
					errCh <- fmt.Errorf("reader %d: %w", w, err)
					return
				}
			}
		}(w)
	}

	// Writer: inserts batches with fresh dictionary values (grows dicts
	// concurrently with binding readers).
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := rand.New(rand.NewSource(99))
		for i := 0; i < 20; i++ {
			batch := predcache.NewBatch(predcache.Schema{
				{Name: "id", Type: predcache.Int64},
				{Name: "grp", Type: predcache.String},
				{Name: "val", Type: predcache.Float64},
				{Name: "day", Type: predcache.Date},
			})
			for j := 0; j < 500; j++ {
				batch.Cols[0].Ints = append(batch.Cols[0].Ints, int64(100000+i*500+j))
				batch.Cols[1].Strings = append(batch.Cols[1].Strings, fmt.Sprintf("g-%d-%d", i, r.Intn(3)))
				batch.Cols[2].Floats = append(batch.Cols[2].Floats, float64(r.Intn(100)))
				batch.Cols[3].Ints = append(batch.Cols[3].Ints, int64(20000+r.Intn(365)))
			}
			batch.N = 500
			if err := db.Insert("t", batch); err != nil {
				errCh <- err
				return
			}
		}
	}()

	// Deleter + vacuumer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			pred, err := predcache.ParseWhere(fmt.Sprintf("val = %d", i))
			if err != nil {
				errCh <- err
				return
			}
			if _, err := db.DeleteWhere("t", pred); err != nil {
				errCh <- err
				return
			}
			if i%4 == 3 {
				if err := db.Vacuum("t"); err != nil {
					errCh <- err
					return
				}
			}
		}
	}()

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// The database must still answer correctly after the storm.
	res, err := db.Query("select count(*) from t")
	if err != nil {
		t.Fatal(err)
	}
	if res.Col(0).Ints[0] == 0 {
		t.Fatal("all rows vanished")
	}
}

// TestRaceStressParallelOperators hammers the morsel-parallel join and
// aggregation paths under -race: multiple worker goroutines per query share
// bound predicate trees, column vectors and the morsel-scratch pool while
// writers append fresh dictionary values, delete rows and vacuum. Run with
// -race.
func TestRaceStressParallelOperators(t *testing.T) {
	db := predcache.Open(
		predcache.WithSlices(2),
		predcache.WithMaxWorkers(4),
	)
	factSchema := predcache.Schema{
		{Name: "id", Type: predcache.Int64},
		{Name: "dim_id", Type: predcache.Int64},
		{Name: "grp", Type: predcache.String},
		{Name: "val", Type: predcache.Float64},
	}
	dimSchema := predcache.Schema{
		{Name: "d_id", Type: predcache.Int64},
		{Name: "d_cat", Type: predcache.String},
	}
	if err := db.CreateTable("fact", factSchema); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("dim", dimSchema); err != nil {
		t.Fatal(err)
	}
	const rows, dims = 20000, 64
	fb := predcache.NewBatch(factSchema)
	for i := 0; i < rows; i++ {
		fb.Cols[0].Ints = append(fb.Cols[0].Ints, int64(i))
		fb.Cols[1].Ints = append(fb.Cols[1].Ints, int64(i%dims))
		fb.Cols[2].Strings = append(fb.Cols[2].Strings, []string{"a", "b", "c", "d"}[i%4])
		fb.Cols[3].Floats = append(fb.Cols[3].Floats, float64(i%1000)/10)
	}
	fb.N = rows
	if err := db.Insert("fact", fb); err != nil {
		t.Fatal(err)
	}
	dbch := predcache.NewBatch(dimSchema)
	for i := 0; i < dims; i++ {
		dbch.Cols[0].Ints = append(dbch.Cols[0].Ints, int64(i))
		dbch.Cols[1].Strings = append(dbch.Cols[1].Strings, []string{"X", "Y", "Z"}[i%3])
	}
	dbch.N = dims
	if err := db.Insert("dim", dbch); err != nil {
		t.Fatal(err)
	}

	queries := []string{
		"select d_cat, count(*), sum(val) from fact, dim where dim_id = d_id group by d_cat",
		"select grp, count(*), min(val), max(val) from fact where val >= 20 group by grp",
		"select count(*), sum(val), avg(val) from fact, dim where dim_id = d_id and val < 80",
		"select grp, count(*) from fact where val >= 10 and val < 90 group by grp",
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				if _, err := db.Query(queries[(w+i)%len(queries)]); err != nil {
					errCh <- fmt.Errorf("reader %d: %w", w, err)
					return
				}
			}
		}(w)
	}
	// Writer: appends fact rows with fresh dictionary values.
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := rand.New(rand.NewSource(5))
		for i := 0; i < 12; i++ {
			b := predcache.NewBatch(factSchema)
			for j := 0; j < 500; j++ {
				b.Cols[0].Ints = append(b.Cols[0].Ints, int64(rows+i*500+j))
				b.Cols[1].Ints = append(b.Cols[1].Ints, int64(r.Intn(dims)))
				b.Cols[2].Strings = append(b.Cols[2].Strings, fmt.Sprintf("g-%d", r.Intn(6)))
				b.Cols[3].Floats = append(b.Cols[3].Floats, float64(r.Intn(1000))/10)
			}
			b.N = 500
			if err := db.Insert("fact", b); err != nil {
				errCh <- fmt.Errorf("writer: %w", err)
				return
			}
		}
	}()
	// Deleter + vacuumer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			pred, err := predcache.ParseWhere(fmt.Sprintf("val = %d", i*9))
			if err != nil {
				errCh <- err
				return
			}
			if _, err := db.DeleteWhere("fact", pred); err != nil {
				errCh <- fmt.Errorf("deleter: %w", err)
				return
			}
			if i%3 == 2 {
				if err := db.Vacuum("fact"); err != nil {
					errCh <- fmt.Errorf("vacuum: %w", err)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	res, err := db.Query("select count(*) from fact, dim where dim_id = d_id")
	if err != nil {
		t.Fatal(err)
	}
	if res.Col(0).Ints[0] == 0 {
		t.Fatal("join returned no rows after the storm")
	}
}

// TestRaceStressParallelScans drives the full concurrent surface at once with
// parallel per-slice scans enabled: distinct predicates churn cache inserts, a
// tiny memory budget forces evictions, appends advance watermarks (Extend),
// deletes and vacuums invalidate layouts, and introspection walks the LRU —
// all while per-slice scan goroutines read the slices. Run with -race; the
// workload is sized to stay well under 30s even with the race detector's
// slowdown.
func TestRaceStressParallelScans(t *testing.T) {
	db := predcache.Open(
		predcache.WithSlices(4),
		predcache.WithParallelScans(true),
		predcache.WithCacheConfig(predcache.CacheConfig{
			Kind:      predcache.RangeIndex,
			MaxRanges: 128,
			MemBudget: 16 << 10, // a few entries at most: constant evictions
		}),
	)
	schema := predcache.Schema{
		{Name: "id", Type: predcache.Int64},
		{Name: "grp", Type: predcache.String},
		{Name: "val", Type: predcache.Float64},
		{Name: "day", Type: predcache.Date},
	}
	if err := db.CreateTable("t", schema); err != nil {
		t.Fatal(err)
	}
	seed := predcache.NewBatch(schema)
	const rows = 12000
	for i := 0; i < rows; i++ {
		seed.Cols[0].Ints = append(seed.Cols[0].Ints, int64(i))
		seed.Cols[1].Strings = append(seed.Cols[1].Strings, []string{"a", "b", "c"}[i%3])
		seed.Cols[2].Floats = append(seed.Cols[2].Floats, float64(i%100))
		seed.Cols[3].Ints = append(seed.Cols[3].Ints, int64(20000+i%365))
	}
	seed.N = rows
	if err := db.Insert("t", seed); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 64)

	// Scanners: every iteration uses a different predicate, so each one is a
	// cache miss + insert, and the small budget evicts the tail immediately.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				q := fmt.Sprintf("select count(*) from t where val >= %d", (w*40+i)%100)
				if _, err := db.Query(q); err != nil {
					errCh <- fmt.Errorf("scanner %d: %w", w, err)
					return
				}
			}
		}(w)
	}

	// Repeater: hammers one fixed predicate so appends exercise the Extend
	// path (hit below the new watermark, tail scan, merge back).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 80; i++ {
			if _, err := db.Query("select count(*) from t where val >= 90"); err != nil {
				errCh <- fmt.Errorf("repeater: %w", err)
				return
			}
		}
	}()

	// Appender: grows the table (and the dictionaries) under the scans.
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := rand.New(rand.NewSource(7))
		for i := 0; i < 15; i++ {
			b := predcache.NewBatch(schema)
			for j := 0; j < 400; j++ {
				b.Cols[0].Ints = append(b.Cols[0].Ints, int64(rows+i*400+j))
				b.Cols[1].Strings = append(b.Cols[1].Strings, fmt.Sprintf("n-%d", r.Intn(8)))
				b.Cols[2].Floats = append(b.Cols[2].Floats, float64(r.Intn(100)))
				b.Cols[3].Ints = append(b.Cols[3].Ints, int64(20000+r.Intn(365)))
			}
			b.N = 400
			if err := db.Insert("t", b); err != nil {
				errCh <- fmt.Errorf("appender: %w", err)
				return
			}
		}
	}()

	// Deleter + vacuumer: shrinks visibility and periodically rewrites the
	// physical layout, invalidating every cached entry for the table.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			pred, err := predcache.ParseWhere(fmt.Sprintf("val = %d", i*7))
			if err != nil {
				errCh <- err
				return
			}
			if _, err := db.DeleteWhere("t", pred); err != nil {
				errCh <- fmt.Errorf("deleter: %w", err)
				return
			}
			if i%3 == 2 {
				if err := db.Vacuum("t"); err != nil {
					errCh <- fmt.Errorf("vacuum: %w", err)
					return
				}
			}
		}
	}()

	// Introspector: walks the cache LRU and counters while everything churns.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 60; i++ {
			_ = db.CacheEntries()
			_ = db.CacheStats()
			_ = db.LastQueryStats()
		}
	}()

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	res, err := db.Query("select count(*) from t")
	if err != nil {
		t.Fatal(err)
	}
	if res.Col(0).Ints[0] == 0 {
		t.Fatal("all rows vanished")
	}
	if s := db.CacheStats(); s.Inserts == 0 || s.Evictions == 0 {
		t.Fatalf("stress did not exercise the cache: %+v", s)
	}
}
