package predcache_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	predcache "github.com/predcache/predcache"
)

// TestConcurrentQueriesAndDML hammers one database with parallel readers
// and writers. Run with -race: it exercises the scan-lock ordering (cache
// bookkeeping must never nest inside the table read lock) and dictionary
// snapshotting during bind.
func TestConcurrentQueriesAndDML(t *testing.T) {
	db := openWithData(t, 20000)
	queries := []string{
		"select count(*) from t where val >= 90",
		"select grp, sum(val) from t where day between 20050 and 20100 group by grp",
		"select count(*) from t where grp = 'b' and val < 10",
		"select max(val) from t where grp like '%a%'",
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 64)

	// Readers.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				if _, err := db.Query(queries[(w+i)%len(queries)]); err != nil {
					errCh <- fmt.Errorf("reader %d: %w", w, err)
					return
				}
			}
		}(w)
	}

	// Writer: inserts batches with fresh dictionary values (grows dicts
	// concurrently with binding readers).
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := rand.New(rand.NewSource(99))
		for i := 0; i < 20; i++ {
			batch := predcache.NewBatch(predcache.Schema{
				{Name: "id", Type: predcache.Int64},
				{Name: "grp", Type: predcache.String},
				{Name: "val", Type: predcache.Float64},
				{Name: "day", Type: predcache.Date},
			})
			for j := 0; j < 500; j++ {
				batch.Cols[0].Ints = append(batch.Cols[0].Ints, int64(100000+i*500+j))
				batch.Cols[1].Strings = append(batch.Cols[1].Strings, fmt.Sprintf("g-%d-%d", i, r.Intn(3)))
				batch.Cols[2].Floats = append(batch.Cols[2].Floats, float64(r.Intn(100)))
				batch.Cols[3].Ints = append(batch.Cols[3].Ints, int64(20000+r.Intn(365)))
			}
			batch.N = 500
			if err := db.Insert("t", batch); err != nil {
				errCh <- err
				return
			}
		}
	}()

	// Deleter + vacuumer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			pred, err := predcache.ParseWhere(fmt.Sprintf("val = %d", i))
			if err != nil {
				errCh <- err
				return
			}
			if _, err := db.DeleteWhere("t", pred); err != nil {
				errCh <- err
				return
			}
			if i%4 == 3 {
				if err := db.Vacuum("t"); err != nil {
					errCh <- err
					return
				}
			}
		}
	}()

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// The database must still answer correctly after the storm.
	res, err := db.Query("select count(*) from t")
	if err != nil {
		t.Fatal(err)
	}
	if res.Col(0).Ints[0] == 0 {
		t.Fatal("all rows vanished")
	}
}
