package predcache_test

import (
	"strings"
	"testing"

	predcache "github.com/predcache/predcache"
)

func openWithData(t *testing.T, rows int) *predcache.DB {
	t.Helper()
	db := predcache.Open(predcache.WithSlices(2))
	schema := predcache.Schema{
		{Name: "id", Type: predcache.Int64},
		{Name: "grp", Type: predcache.String},
		{Name: "val", Type: predcache.Float64},
		{Name: "day", Type: predcache.Date},
	}
	if err := db.CreateTable("t", schema); err != nil {
		t.Fatal(err)
	}
	batch := predcache.NewBatch(schema)
	for i := 0; i < rows; i++ {
		batch.Cols[0].Ints = append(batch.Cols[0].Ints, int64(i))
		batch.Cols[1].Strings = append(batch.Cols[1].Strings, []string{"a", "b", "c"}[i%3])
		batch.Cols[2].Floats = append(batch.Cols[2].Floats, float64(i%100))
		batch.Cols[3].Ints = append(batch.Cols[3].Ints, int64(20000+i%365))
	}
	batch.N = rows
	if err := db.Insert("t", batch); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestOpenOptions(t *testing.T) {
	db := predcache.Open(
		predcache.WithSlices(3),
		predcache.WithParallelScans(false),
		predcache.WithCacheConfig(predcache.CacheConfig{Kind: predcache.RangeIndex, MaxRanges: 64}),
	)
	if db.PredicateCache() == nil {
		t.Fatal("cache missing")
	}
	off := predcache.Open(predcache.WithoutPredicateCache())
	if off.PredicateCache() != nil {
		t.Fatal("cache not disabled")
	}
	if off.CacheStats() != (predcache.CacheStats{}) {
		t.Fatal("disabled cache stats nonzero")
	}
}

func TestQueryAndStats(t *testing.T) {
	db := openWithData(t, 9000)
	res, err := db.Query("select grp, count(*) as n from t where val >= 50 group by grp order by grp")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 3 {
		t.Fatalf("groups %d", res.NumRows())
	}
	total := int64(0)
	for i := 0; i < 3; i++ {
		total += res.ColByName("n").Ints[i]
	}
	if total != 4500 {
		t.Fatalf("total %d want 4500", total)
	}
	if db.LastQueryStats().RowsScanned == 0 {
		t.Fatal("no stats recorded")
	}
	if db.TableRows("t") != 9000 || db.TableRows("missing") != 0 {
		t.Fatal("TableRows")
	}
}

func TestQueryErrors(t *testing.T) {
	db := openWithData(t, 10)
	if _, err := db.Query("select zzz from t"); err == nil {
		t.Fatal("bad column accepted")
	}
	if _, err := db.Query("not sql"); err == nil {
		t.Fatal("bad sql accepted")
	}
	if err := db.CreateTable("t", predcache.Schema{{Name: "x", Type: predcache.Int64}}); err == nil {
		t.Fatal("duplicate table accepted")
	}
	if err := db.Insert("missing", predcache.NewBatch(nil)); err == nil {
		t.Fatal("insert into missing table accepted")
	}
	if err := db.Load("missing", predcache.NewBatch(nil)); err == nil {
		t.Fatal("load into missing table accepted")
	}
	if err := db.Vacuum("missing"); err == nil {
		t.Fatal("vacuum of missing table accepted")
	}
	if _, err := db.DeleteWhere("missing", nil); err == nil {
		t.Fatal("delete on missing table accepted")
	}
	if _, err := db.UpdateWhere("missing", nil, nil); err == nil {
		t.Fatal("update on missing table accepted")
	}
}

func TestParseWhere(t *testing.T) {
	db := openWithData(t, 3000)
	pred, err := predcache.ParseWhere("grp = 'a' and val < 10")
	if err != nil {
		t.Fatal(err)
	}
	n, err := db.DeleteWhere("t", pred)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("nothing deleted")
	}
	res, err := db.Query("select count(*) from t where grp = 'a' and val < 10")
	if err != nil {
		t.Fatal(err)
	}
	if res.Col(0).Ints[0] != 0 {
		t.Fatal("deleted rows still visible")
	}
	if _, err := predcache.ParseWhere("not valid ((("); err == nil {
		t.Fatal("bad predicate accepted")
	}
	if _, err := predcache.ParseWhere("a = 1 trailing"); err == nil {
		t.Fatal("trailing input accepted")
	}
}

func TestUpdateWhereRoundTrip(t *testing.T) {
	db := openWithData(t, 2000)
	pred, _ := predcache.ParseWhere("val = 99")
	n, err := db.UpdateWhere("t", pred, func(b *predcache.Batch) {
		for i := range b.Cols[2].Floats {
			b.Cols[2].Floats[i] = 0
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 20 {
		t.Fatalf("updated %d want 20", n)
	}
	res, _ := db.Query("select count(*) from t where val = 99")
	if res.Col(0).Ints[0] != 0 {
		t.Fatal("updated rows still match old value")
	}
	res, _ = db.Query("select count(*) from t")
	if res.Col(0).Ints[0] != 2000 {
		t.Fatalf("row count changed: %d", res.Col(0).Ints[0])
	}
	// Zero-match update still bumps versions (result caches must notice).
	zero, _ := predcache.ParseWhere("val = 12345")
	if n, err := db.UpdateWhere("t", zero, func(*predcache.Batch) {}); err != nil || n != 0 {
		t.Fatalf("zero update: %d %v", n, err)
	}
}

func TestSortKeyAndLoad(t *testing.T) {
	db := predcache.Open()
	schema := predcache.Schema{{Name: "k", Type: predcache.Int64}, {Name: "v", Type: predcache.Float64}}
	if err := db.CreateTable("s", schema, "k"); err != nil {
		t.Fatal(err)
	}
	batch := predcache.NewBatch(schema)
	for i := 5000; i > 0; i-- {
		batch.Cols[0].Ints = append(batch.Cols[0].Ints, int64(i))
		batch.Cols[1].Floats = append(batch.Cols[1].Floats, float64(i))
	}
	batch.N = 5000
	if err := db.Load("s", batch); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("select k from s where k <= 3 order by k")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 3 || res.Col(0).Ints[0] != 1 {
		t.Fatalf("sorted load wrong: %v", res.Format(5))
	}
}

func TestRepeatedQueryUsesCache(t *testing.T) {
	db := openWithData(t, 30000)
	q := "select count(*) from t where day between 20100 and 20110 and grp = 'b'"
	r1, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Col(0).Ints[0] != r2.Col(0).Ints[0] {
		t.Fatal("results differ")
	}
	if db.CacheStats().Hits == 0 {
		t.Fatal("no cache hit")
	}
	if db.LastQueryStats().CacheHits != 1 {
		t.Fatal("per-query stats missing the hit")
	}
}

func TestResultFormatting(t *testing.T) {
	db := openWithData(t, 100)
	res, err := db.Query("select id, grp, val, day from t limit 2")
	if err != nil {
		t.Fatal(err)
	}
	out := res.Format(10)
	if !strings.Contains(out, "grp") || !strings.Contains(out, "2024-") {
		t.Fatalf("format output:\n%s", out)
	}
	names := res.ColumnNames()
	if len(names) != 4 || names[3] != "day" {
		t.Fatalf("names %v", names)
	}
}

func TestExplainAndCacheEntries(t *testing.T) {
	db := openWithData(t, 2000)
	out, err := db.Explain("select grp, count(*) from t where val > 50 group by grp order by grp limit 2")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Scan t", "Aggregate", "Sort", "Limit 2", "filter=(> val 50)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("explain missing %q:\n%s", want, out)
		}
	}
	if _, err := db.Explain("select nope from t"); err == nil {
		t.Fatal("bad explain accepted")
	}
	// Entries appear after executing.
	if len(db.CacheEntries()) != 0 {
		t.Fatal("entries before any query")
	}
	if _, err := db.Query("select count(*) from t where val > 50"); err != nil {
		t.Fatal(err)
	}
	entries := db.CacheEntries()
	if len(entries) != 1 || entries[0].Table != "t" || entries[0].MemBytes <= 0 {
		t.Fatalf("entries %+v", entries)
	}
	if !strings.Contains(entries[0].Key, "(> val 50)") {
		t.Fatalf("entry key %q", entries[0].Key)
	}
	off := predcache.Open(predcache.WithoutPredicateCache())
	if off.CacheEntries() != nil {
		t.Fatal("entries with cache disabled")
	}
}

func TestLakeAPI(t *testing.T) {
	schema := predcache.Schema{
		{Name: "k", Type: predcache.Int64},
		{Name: "v", Type: predcache.Float64},
	}
	tbl := predcache.NewLakeTable("lt", schema)
	cache := predcache.NewLakeCache(64)
	b := predcache.NewBatch(schema)
	for i := 0; i < 1000; i++ {
		b.Cols[0].Ints = append(b.Cols[0].Ints, int64(i))
		b.Cols[1].Floats = append(b.Cols[1].Floats, float64(i%100))
	}
	b.N = 1000
	id, err := tbl.AddFile(b)
	if err != nil {
		t.Fatal(err)
	}
	matches, stats, err := predcache.LakeScan(tbl, "v >= 95", cache)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 50 || stats.CacheHit {
		t.Fatalf("cold: %d matches, hit=%v", len(matches), stats.CacheHit)
	}
	matches, stats, err = predcache.LakeScan(tbl, "v >= 95", cache)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 50 || !stats.CacheHit || stats.RowsScanned > 60 {
		t.Fatalf("warm: %d matches, hit=%v, scanned=%d", len(matches), stats.CacheHit, stats.RowsScanned)
	}
	tbl.RemoveFiles(id)
	matches, _, err = predcache.LakeScan(tbl, "v >= 95", cache)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Fatal("matches from removed file")
	}
	if _, _, err := predcache.LakeScan(tbl, "not valid (((", cache); err == nil {
		t.Fatal("bad predicate accepted")
	}
}
