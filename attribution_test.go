package predcache_test

import (
	"context"
	"strings"
	"testing"

	predcache "github.com/predcache/predcache"
)

// TestQueryShapesMatchesQueryLogGroundTruth cross-checks the pc.query_shapes
// ledger against a SQL GROUP BY over pc.query_log: both record the same
// attributed cpu_us/allocs per query, so the per-shape sums must agree
// exactly — not approximately — for every workload shape.
func TestQueryShapesMatchesQueryLogGroundTruth(t *testing.T) {
	db := openWithData(t, 4000)

	// Three shapes with distinct repetition counts.
	workload := []struct {
		sql   string
		times int
	}{
		{"select count(*) from t where id < 500", 3},
		{"select grp, sum(val) as s from t group by grp", 2},
		{"select id, val from t where id = 77", 1},
	}
	total := 0
	for _, w := range workload {
		for i := 0; i < w.times; i++ {
			one(t, db, w.sql)
			total++
		}
	}

	// Go-side view before any meta query pollutes the ledger.
	shapes := db.QueryShapes()
	if len(shapes) != len(workload) {
		t.Fatalf("QueryShapes retained %d shapes, want %d: %+v", len(shapes), len(workload), shapes)
	}
	for i := 1; i < len(shapes); i++ {
		if shapes[i-1].CPUMicros < shapes[i].CPUMicros {
			t.Fatalf("shapes not ranked by CPU desc: %+v", shapes)
		}
	}
	byID := make(map[string]predcache.ShapeRow, len(shapes))
	for _, s := range shapes {
		if s.ID == "" || s.Key == "" {
			t.Fatalf("shape missing identity: %+v", s)
		}
		byID[s.ID] = s
	}

	// Every workload record must carry attribution columns.
	log := db.QueryLog()
	if len(log) != total {
		t.Fatalf("query log has %d records, want %d", len(log), total)
	}
	for _, rec := range log {
		if rec.ShapeID == "" {
			t.Fatalf("record missing shape_id: %+v", rec)
		}
		// Attributed CPU = exec wall + worker extra, so it can never fall
		// below the exec phase alone.
		if rec.CPUMicros < rec.ExecMicros {
			t.Fatalf("attributed CPU below exec time: %+v", rec)
		}
	}

	// SQL ground truth: aggregate the raw per-query log by shape. Recording
	// happens after execution, so this query sees exactly the workload.
	res := one(t, db, `select shape_id, count(*) as calls, sum(cpu_us) as cpu,
		sum(allocs) as allocs, sum(alloc_bytes) as bytes, sum(result_rows) as rows
		from pc.query_log group by shape_id`)
	if res.NumRows() != len(workload) {
		t.Fatalf("ground truth has %d shapes, want %d\n%s", res.NumRows(), len(workload), res.Format(10))
	}
	seen := 0
	for row := 0; row < res.NumRows(); row++ {
		id := strCell(t, res, row, "shape_id")
		s, ok := byID[id]
		if !ok {
			t.Fatalf("ground-truth shape %q not in QueryShapes: %+v", id, shapes)
		}
		seen++
		if got, want := intCell(t, res, row, "calls"), s.Calls; got != want {
			t.Errorf("shape %s calls: log says %d, ledger says %d", id, got, want)
		}
		if got, want := intCell(t, res, row, "cpu"), s.CPUMicros; got != want {
			t.Errorf("shape %s cpu_us: log says %d, ledger says %d", id, got, want)
		}
		if got, want := intCell(t, res, row, "allocs"), s.AllocObjects; got != want {
			t.Errorf("shape %s allocs: log says %d, ledger says %d", id, got, want)
		}
		if got, want := intCell(t, res, row, "bytes"), s.AllocBytes; got != want {
			t.Errorf("shape %s alloc_bytes: log says %d, ledger says %d", id, got, want)
		}
		if got, want := intCell(t, res, row, "rows"), s.Rows; got != want {
			t.Errorf("shape %s rows: log says %d, ledger says %d", id, got, want)
		}
	}
	if seen != len(workload) {
		t.Fatalf("matched %d shapes, want %d", seen, len(workload))
	}

	// The SQL view of the ledger must agree with the Go accessor for the
	// workload shapes (the meta queries above have their own shapes by now).
	res = one(t, db, "select shape_id, calls, cpu_us from pc.query_shapes order by cpu_us desc")
	matched := 0
	for row := 0; row < res.NumRows(); row++ {
		s, ok := byID[strCell(t, res, row, "shape_id")]
		if !ok {
			continue // a meta query's shape
		}
		matched++
		if got := intCell(t, res, row, "calls"); got != s.Calls {
			t.Errorf("pc.query_shapes calls = %d, ledger %d", got, s.Calls)
		}
		if got := intCell(t, res, row, "cpu_us"); got != s.CPUMicros {
			t.Errorf("pc.query_shapes cpu_us = %d, ledger %d", got, s.CPUMicros)
		}
	}
	if matched != len(workload) {
		t.Fatalf("pc.query_shapes matched %d workload shapes, want %d\n%s", matched, len(workload), res.Format(10))
	}
}

// TestShapeNormalizationFoldsLiterals asserts the shape key is the
// normalized SQL: the same query with different literals lands in one shape.
func TestShapeNormalizationFoldsLiterals(t *testing.T) {
	db := openWithData(t, 2000)
	one(t, db, "select count(*) from t where id < 100")
	one(t, db, "select count(*) from t where id < 900")
	shapes := db.QueryShapes()
	if len(shapes) != 1 {
		t.Fatalf("literal variants produced %d shapes, want 1: %+v", len(shapes), shapes)
	}
	if shapes[0].Calls != 2 {
		t.Fatalf("calls = %d, want 2", shapes[0].Calls)
	}
	if strings.Contains(shapes[0].Key, "100") || strings.Contains(shapes[0].Key, "900") {
		t.Fatalf("shape key kept literals: %q", shapes[0].Key)
	}
}

// TestShapeCapacityOption verifies WithQueryShapeCapacity bounds the ledger.
func TestShapeCapacityOption(t *testing.T) {
	db := predcache.Open(predcache.WithQueryShapeCapacity(2))
	// Four distinct shapes against the system tables; the ledger must hold
	// only the configured two.
	queries := []string{
		"select count(*) from pc.query_log",
		"select count(*) from pc.alerts",
		"select count(*) from pc.metrics",
		"select count(*) from pc.cache_stats",
	}
	for _, q := range queries {
		one(t, db, q)
	}
	if got := len(db.QueryShapes()); got != 2 {
		t.Fatalf("shapes = %d, want 2 (capacity)", got)
	}
}

// TestAlertsTableEmpty checks pc.alerts exists and is empty in a healthy
// process (no sampler running, nothing fired).
func TestAlertsTableEmpty(t *testing.T) {
	db := openWithData(t, 100)
	res := one(t, db, "select count(*) as n from pc.alerts")
	if got := intCell(t, res, 0, "n"); got != 0 {
		t.Fatalf("pc.alerts has %d rows in a healthy process", got)
	}
	if db.Alerts() != nil && len(db.Alerts()) != 0 {
		t.Fatalf("Alerts() = %+v, want empty", db.Alerts())
	}
}

// TestRunPlanSkipsAttribution pins the invariant the alloc budgets rely on:
// hand-built plans through db.Run keep the bare execution path — no shape
// ledger entry, no pprof labels, no allocation snapshots. The query log still
// gets its usual (unattributed) row.
func TestRunPlanSkipsAttribution(t *testing.T) {
	db := openWithData(t, 1000)
	plan, err := db.Plan("select count(*) from t where id < 100")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Run(plan); err != nil {
		t.Fatal(err)
	}
	if n := len(db.QueryShapes()); n != 0 {
		t.Fatalf("db.Run recorded %d shapes, want 0", n)
	}
	log := db.QueryLog()
	if len(log) != 1 {
		t.Fatalf("db.Run recorded %d log rows, want 1", len(log))
	}
	if log[0].ShapeID != "" || log[0].AllocObjects != 0 || log[0].AllocBytes != 0 {
		t.Fatalf("db.Run row carries attribution it must not pay for: %+v", log[0])
	}
}

// TestSessionLabelFromContext checks ContextWithSession round-trips through
// QueryCtx without affecting results.
func TestSessionLabelFromContext(t *testing.T) {
	db := openWithData(t, 1000)
	ctx := predcache.ContextWithSession(context.Background(), "s42")
	res, err := db.QueryCtx(ctx, "select count(*) as n from t where id < 100")
	if err != nil {
		t.Fatal(err)
	}
	if intCell(t, res, 0, "n") != 100 {
		t.Fatalf("unexpected result\n%s", res.Format(5))
	}
}
