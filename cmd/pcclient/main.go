// Command pcclient is a minimal line-protocol client for pcserver: it reads
// statements from stdin (one per line), sends each to the server, and prints
// the framed response — the "ok <nrows> <ncols>" header, TSV rows, and "."
// terminator for result sets, or the single-line "ok"/"pong"/"err ..."
// acknowledgements. Blank lines and lines starting with "--" are skipped, so
// a SQL script with comments pipes straight through:
//
//	pcclient -addr 127.0.0.1:5433 < workload.sql
//
// Exit status is 0 when every statement got a response and the connection
// closed cleanly; transport errors and response timeouts exit 1. Statement
// errors ("err ..." responses) do NOT fail the client — they are part of the
// protocol and are printed for the caller to inspect.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:5433", "pcserver address")
	timeout := flag.Duration("timeout", 30*time.Second, "per-response read deadline")
	flag.Parse()

	conn, err := net.DialTimeout("tcp", *addr, *timeout)
	if err != nil {
		fatal(err)
	}
	defer conn.Close()

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 64*1024), 1<<20)
	r := bufio.NewReader(conn)
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()

	for in.Scan() {
		line := strings.TrimSpace(in.Text())
		if line == "" || strings.HasPrefix(line, "--") {
			continue
		}
		if err := conn.SetDeadline(time.Now().Add(*timeout)); err != nil {
			fatal(err)
		}
		if _, err := fmt.Fprintf(conn, "%s\n", line); err != nil {
			fatal(err)
		}
		resp, err := readLine(r)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", line, err))
		}
		fmt.Fprintln(out, resp)
		if resp == "bye" {
			return
		}
		// A result set follows its "ok <nrows> <ncols>" header; relay it
		// through the terminating "." line. Bare "ok" acks have no body.
		var nrows, ncols int
		if n, _ := fmt.Sscanf(resp, "ok %d %d", &nrows, &ncols); n == 2 {
			for {
				row, err := readLine(r)
				if err != nil {
					fatal(fmt.Errorf("%s: result body: %w", line, err))
				}
				fmt.Fprintln(out, row)
				if row == "." {
					break
				}
			}
		}
	}
	if err := in.Err(); err != nil {
		fatal(err)
	}
}

func readLine(r *bufio.Reader) (string, error) {
	s, err := r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(s, "\r\n"), nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "pcclient: %v\n", err)
	os.Exit(1)
}
