// Command pcsh is an interactive SQL shell over a predcache database
// preloaded with a benchmark dataset.
//
// Usage:
//
//	pcsh [-dataset tpch|tpch-skewed|ssb|tpcds] [-sf 0.01] [-cache range|bitmap|off]
//	     [-metrics addr] [-slow 1s] [-log file]
//
// With -metrics, an HTTP endpoint serves Prometheus text at /metrics, JSON
// at /metrics.json and pprof under /debug/pprof/. -slow sets the slow-query
// threshold (flagged in pc.query_log; traces at or over it are always
// retained). -log writes structured JSON log lines (slow queries, failures,
// vacuums) carrying query_id/trace_id to the given file ("-" for stderr).
//
// Queries prefixed with EXPLAIN print the plan; EXPLAIN ANALYZE executes it
// and annotates each operator with wall time, cardinalities and per-scan
// cache outcomes.
//
// Meta commands inside the shell:
//
//	\stats          scan counters of the last query
//	\cache          predicate-cache counters
//	\entries        list predicate-cache entries
//	\log            recent queries from pc.query_log (newest first)
//	\storage        per-column storage breakdown from pc.table_storage
//	\trace [id]     list retained traces from pc.traces, or render trace id's span tree
//	\slo            latency percentiles per query class from pc.slo
//	\top            heaviest query shapes by attributed CPU from pc.query_shapes
//	\explain <sql>  show the plan without executing
//	\tables         list tables
//	\q              quit
//
// The same telemetry is SQL-queryable as system tables under the reserved
// pc schema: pc.query_log, pc.cache_entries, pc.cache_stats,
// pc.table_storage, pc.metrics, pc.traces, pc.trace_spans, pc.slo,
// pc.runtime, pc.query_shapes and pc.alerts all join against user tables —
// e.g. find the slowest retained trace's spans with
//
//	SELECT s.name, s.dur_us FROM pc.trace_spans s, pc.traces t
//	WHERE s.trace_id = t.trace_id AND t.reason = 'slow'
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strconv"
	"strings"
	"time"

	predcache "github.com/predcache/predcache"
	"github.com/predcache/predcache/internal/obs"
	"github.com/predcache/predcache/internal/ssb"
	"github.com/predcache/predcache/internal/tpcds"
	"github.com/predcache/predcache/internal/tpch"
)

func main() {
	dataset := flag.String("dataset", "tpch-skewed", "dataset: tpch, tpch-skewed, ssb, tpcds")
	sf := flag.Float64("sf", 0.01, "scale factor")
	cacheKind := flag.String("cache", "bitmap", "predicate cache: range, bitmap, off")
	seed := flag.Int64("seed", 1, "generator seed")
	metricsAddr := flag.String("metrics", "", "serve metrics/pprof on this address (e.g. :8080); empty disables")
	slow := flag.Duration("slow", 0, "slow-query threshold (0 keeps the default; traces at or over it are always retained)")
	logPath := flag.String("log", "", `write structured JSON log lines to this file ("-" for stderr); empty disables`)
	flag.Parse()

	var opts []predcache.Option
	if *slow > 0 {
		opts = append(opts, predcache.WithSlowQueryThreshold(*slow))
	}
	if *logPath != "" {
		w := os.Stderr
		if *logPath != "-" {
			f, err := os.Create(*logPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pcsh: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		opts = append(opts, predcache.WithLogger(predcache.NewJSONLogger(w, slog.LevelInfo)))
	}
	switch *cacheKind {
	case "off":
		opts = append(opts, predcache.WithoutPredicateCache())
	case "range":
		opts = append(opts, predcache.WithCacheConfig(predcache.CacheConfig{Kind: predcache.RangeIndex}))
	case "bitmap":
		opts = append(opts, predcache.WithCacheConfig(predcache.CacheConfig{Kind: predcache.BitmapIndex}))
	default:
		fmt.Fprintf(os.Stderr, "pcsh: unknown cache kind %q\n", *cacheKind)
		os.Exit(2)
	}
	db := predcache.Open(opts...)

	if *metricsAddr != "" {
		m := obs.NewMetrics()
		db.EnableMetrics(m)
		// The go_* gauges read the runtime sampler's retained sample, so a
		// scrape never pays a ReadMemStats; the sampler also feeds pc.runtime,
		// pc.alerts (leak sentinels) and the shell's uptime telemetry.
		db.StartRuntimeSampler(time.Second)
		obs.RegisterRuntimeMetrics(m, db.LastRuntimeSample)
		srv, err := obs.StartServer(*metricsAddr, m)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcsh: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("metrics on http://%s/metrics\n", srv.Addr())
	}

	fmt.Printf("loading %s at SF %.3f...\n", *dataset, *sf)
	if err := load(db, *dataset, *sf, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "pcsh: %v\n", err)
		os.Exit(1)
	}
	for _, name := range db.Catalog().TableNames() {
		fmt.Printf("  %-12s %d rows\n", name, db.TableRows(name))
	}
	fmt.Println(`type SQL terminated by ';', or \q to quit`)

	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	prompt := func() { fmt.Print("pc> ") }
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		switch trimmed {
		case `\q`, "exit", "quit":
			return
		case `\stats`:
			s := db.LastQueryStats()
			fmt.Printf("rows scanned %d | qualified %d | blocks accessed %d | pruned: zonemap %d cache %d | cache hits %d misses %d\n",
				s.RowsScanned, s.RowsQualified, s.BlocksAccessed, s.BlocksSkipped, s.BlocksPrunedCache, s.CacheHits, s.CacheMisses)
			prompt()
			continue
		case `\cache`:
			s := db.CacheStats()
			fmt.Printf("entries %d | mem %d B | hits %d | misses %d | inserts %d | extends %d | invalidations %d | evictions %d\n",
				s.Entries, s.MemBytes, s.Hits, s.Misses, s.Inserts, s.Extends, s.Invalidations, s.Evictions)
			prompt()
			continue
		case `\tables`:
			for _, name := range db.Catalog().TableNames() {
				fmt.Printf("%-12s %d rows\n", name, db.TableRows(name))
			}
			prompt()
			continue
		case `\entries`:
			for _, e := range db.CacheEntries() {
				kind := e.Kind.String()
				if e.SemiJoin {
					kind += "+sj"
				}
				fmt.Printf("%-10s %8d rows %8d B  %s\n", kind, e.EstRows, e.MemBytes, truncate(e.Key, 100))
			}
			prompt()
			continue
		case `\log`:
			runMeta(db, "select seq, query_text, wall_us, result_rows, cache_hits, cache_misses, slow from pc.query_log order by seq desc limit 20")
			prompt()
			continue
		case `\storage`:
			runMeta(db, "select table_name, column_name, column_type, result_rows, blocks, payload_bytes, zonemap_bytes, dict_bytes from pc.table_storage order by table_name")
			prompt()
			continue
		case `\trace`:
			runMeta(db, "select trace_id, query_class, cache_hit, reason, wall_us, spans, error, query_text from pc.traces order by trace_id desc limit 20")
			prompt()
			continue
		case `\slo`:
			runMeta(db, "select query_class, cache_outcome, sample_count, p50_us, p99_us, p999_us, max_us, exemplar_trace_id from pc.slo")
			prompt()
			continue
		case `\top`:
			runMeta(db, "select shape_id, calls, cpu_us, p99_cpu_us, allocs, cache_hit_rate, shape_text from pc.query_shapes order by cpu_us desc limit 20")
			prompt()
			continue
		}
		if rest, ok := strings.CutPrefix(trimmed, `\trace `); ok {
			id, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
			if err != nil {
				fmt.Printf("error: \\trace wants a trace id: %v\n", err)
			} else if rt := db.TraceByID(id); rt == nil {
				fmt.Printf("trace %d is not retained (never kept, or evicted)\n", id)
			} else {
				fmt.Printf("trace %d: class=%s shape=%s reason=%s wall=%v cache_hit=%v\n",
					rt.TraceID, rt.Class, rt.Shape, rt.Reason, rt.Wall, rt.CacheHit)
				if rt.Error != "" {
					fmt.Printf("error: %s\n", rt.Error)
				}
				fmt.Print(predcache.RenderTrace(rt))
			}
			prompt()
			continue
		}
		if strings.HasPrefix(trimmed, `\explain `) {
			out, err := db.Explain(strings.TrimSuffix(strings.TrimPrefix(trimmed, `\explain `), ";"))
			if err != nil {
				fmt.Printf("error: %v\n", err)
			} else {
				fmt.Print(out)
			}
			prompt()
			continue
		}
		pending.WriteString(line)
		pending.WriteByte('\n')
		if !strings.Contains(line, ";") {
			fmt.Print("  > ")
			continue
		}
		query := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(pending.String()), ";"))
		pending.Reset()
		if query != "" {
			start := time.Now()
			res, err := db.Query(query)
			elapsed := time.Since(start)
			if err != nil {
				fmt.Printf("error: %v\n", err)
			} else {
				fmt.Print(res.Format(40))
				fmt.Printf("(%d rows, %v)\n", res.NumRows(), elapsed.Round(time.Microsecond))
			}
		}
		prompt()
	}
}

// runMeta executes a canned system-table query for a meta command. The query
// itself runs through the normal path and therefore also lands in
// pc.query_log.
func runMeta(db *predcache.DB, query string) {
	res, err := db.Query(query)
	if err != nil {
		fmt.Printf("error: %v\n", err)
		return
	}
	fmt.Print(res.Format(40))
	fmt.Printf("(%d rows)\n", res.NumRows())
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

func load(db *predcache.DB, dataset string, sf float64, seed int64) error {
	cat := db.Catalog()
	switch dataset {
	case "tpch":
		return tpch.Generate(tpch.Config{SF: sf, Seed: seed}).Load(cat, 4)
	case "tpch-skewed":
		return tpch.Generate(tpch.Config{SF: sf, Skewed: true, Seed: seed}).Load(cat, 4)
	case "ssb":
		return ssb.Generate(ssb.Config{SF: sf, Skewed: true, Seed: seed}).Load(cat, 4)
	case "tpcds":
		return tpcds.Generate(tpcds.Config{SF: sf, Skewed: true, Seed: seed}).Load(cat, 4)
	}
	return fmt.Errorf("unknown dataset %q", dataset)
}
