package main

import (
	"testing"

	predcache "github.com/predcache/predcache"
)

func TestLoadDatasets(t *testing.T) {
	for _, ds := range []string{"tpch", "tpch-skewed", "ssb", "tpcds"} {
		db := predcache.Open()
		if err := load(db, ds, 0.001, 1); err != nil {
			t.Fatalf("%s: %v", ds, err)
		}
		if len(db.Catalog().TableNames()) == 0 {
			t.Fatalf("%s: no tables", ds)
		}
	}
	if err := load(predcache.Open(), "nope", 0.001, 1); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestTruncate(t *testing.T) {
	if truncate("abcdef", 3) != "abc..." || truncate("ab", 3) != "ab" {
		t.Fatal("truncate")
	}
}
