// Command pcsmoke probes a running metrics endpoint and fails loudly when
// the exposition is malformed: CI starts pcsh with -metrics, runs a query,
// and points pcsmoke at the /metrics URL.
//
// Usage:
//
//	pcsmoke [-retries 20] [-delay 500ms] [-require predcache_queries_total] <url>
//
// Exit status is 0 only when the endpoint answers 200, the body parses as
// Prometheus text exposition format, and every -require metric (comma
// separated) appears in it.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/predcache/predcache/internal/obs"
)

func main() {
	retries := flag.Int("retries", 20, "fetch attempts before giving up")
	delay := flag.Duration("delay", 500*time.Millisecond, "pause between attempts")
	require := flag.String("require", "predcache_queries_total", "comma-separated metric names that must appear")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pcsmoke [flags] <metrics-url>")
		os.Exit(2)
	}
	url := flag.Arg(0)

	body, err := fetch(url, *retries, *delay)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcsmoke: %v\n", err)
		os.Exit(1)
	}
	if err := obs.ValidateExposition(body); err != nil {
		fmt.Fprintf(os.Stderr, "pcsmoke: malformed exposition from %s: %v\n", url, err)
		os.Exit(1)
	}
	for _, name := range strings.Split(*require, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if !hasMetric(body, name) {
			fmt.Fprintf(os.Stderr, "pcsmoke: metric %q missing from %s\n", name, url)
			os.Exit(1)
		}
	}
	fmt.Printf("pcsmoke: %s ok (%d bytes)\n", url, len(body))
}

// fetch GETs url, retrying while the server is still starting up.
func fetch(url string, retries int, delay time.Duration) ([]byte, error) {
	var lastErr error
	for i := 0; i < retries; i++ {
		if i > 0 {
			time.Sleep(delay)
		}
		resp, err := http.Get(url)
		if err != nil {
			lastErr = err
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			lastErr = fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
			continue
		}
		return body, nil
	}
	return nil, fmt.Errorf("after %d attempts: %w", retries, lastErr)
}

// hasMetric reports whether a sample or TYPE line for name exists.
func hasMetric(body []byte, name string) bool {
	for _, line := range strings.Split(string(body), "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "# TYPE "+name+" ") {
			return true
		}
		if strings.HasPrefix(line, name) {
			rest := line[len(name):]
			if len(rest) > 0 && (rest[0] == ' ' || rest[0] == '{') {
				return true
			}
		}
	}
	return false
}
