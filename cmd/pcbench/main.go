// Command pcbench regenerates the paper's tables and figures.
//
// Usage:
//
//	pcbench [flags] <experiment>...
//	pcbench [flags] all
//
// Experiments: table1 table2 table3 table4 fig1-fig7 fig13-fig18
// (see DESIGN.md §3 for the experiment index).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/predcache/predcache/internal/bench"
	"github.com/predcache/predcache/internal/obs"
)

func main() {
	cfg := bench.DefaultConfig()
	fast := flag.Bool("fast", false, "run at the small test scale")
	jsonPath := flag.String("json", "", "run the scan micro-benchmarks and write per-benchmark ns/op, allocs/op and rows-scanned as JSON to this path")
	comparePaths := flag.String("compare", "", "old.json,new.json: diff two recordings produced by -json and print the per-benchmark deltas")
	metricsAddr := flag.String("metrics", "", "serve runtime metrics/pprof on this address while experiments run; empty disables")
	flag.Float64Var(&cfg.TpchSF, "tpch-sf", cfg.TpchSF, "TPC-H scale factor")
	flag.Float64Var(&cfg.SSBSF, "ssb-sf", cfg.SSBSF, "SSB scale factor")
	flag.Float64Var(&cfg.TpcdsSF, "tpcds-sf", cfg.TpcdsSF, "TPC-DS scale factor")
	flag.IntVar(&cfg.Slices, "slices", cfg.Slices, "data slices per table")
	flag.IntVar(&cfg.Reps, "reps", cfg.Reps, "timing repetitions per query")
	flag.IntVar(&cfg.FleetSize, "clusters", cfg.FleetSize, "simulated fleet size")
	flag.IntVar(&cfg.WorkloadAQueries, "wa-queries", cfg.WorkloadAQueries, "workload A stream length")
	flag.Int64Var(&cfg.Seed, "seed", cfg.Seed, "generator seed")
	flag.IntVar(&cfg.MaxWorkers, "workers", cfg.MaxWorkers, "max morsel-parallel workers per query (0 = GOMAXPROCS)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pcbench [flags] <experiment>...|all\nexperiments: %v\nflags:\n", bench.Experiments())
		flag.PrintDefaults()
	}
	flag.Parse()
	if *fast {
		cfg = bench.FastConfig()
	}
	if *comparePaths != "" {
		if err := compareRecordings(*comparePaths); err != nil {
			fmt.Fprintf(os.Stderr, "pcbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *jsonPath != "" {
		if err := recordMicro(*jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "pcbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if *metricsAddr != "" {
		m := obs.NewMetrics()
		// Runtime gauges read a sampler's retained sample (never ReadMemStats
		// at scrape time); pcbench runs its own collector since experiments
		// cycle through many short-lived databases.
		rc := obs.StartRuntimeCollector(0, nil)
		defer rc.Stop()
		obs.RegisterRuntimeMetrics(m, rc.Last)
		srv, err := obs.StartServer(*metricsAddr, m)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcbench: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics\n", srv.Addr())
	}
	runner := bench.NewRunner(cfg, os.Stdout)
	for _, id := range args {
		var err error
		if id == "all" {
			err = runner.All()
		} else {
			err = runner.Run(id)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcbench: %v\n", err)
			os.Exit(1)
		}
	}
}

// recordMicro runs the scan micro-benchmarks and writes the recording.
func recordMicro(path string) error {
	results, err := bench.RunMicro(os.Stderr)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := bench.WriteMicroJSON(f, results); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

// compareRecordings diffs two -json recordings given as "old.json,new.json".
func compareRecordings(spec string) error {
	parts := strings.SplitN(spec, ",", 2)
	if len(parts) != 2 {
		return fmt.Errorf("-compare wants old.json,new.json, got %q", spec)
	}
	oldData, err := os.ReadFile(parts[0])
	if err != nil {
		return err
	}
	newData, err := os.ReadFile(parts[1])
	if err != nil {
		return err
	}
	report, err := bench.CompareMicroJSON(oldData, newData)
	// A regression still comes with a rendered report: print it first so the
	// failing run shows which benchmark moved, then exit non-zero.
	fmt.Print(report)
	return err
}
