// Command pcserver serves a predcache database over TCP to many concurrent
// clients, preloaded with a benchmark dataset.
//
// Usage:
//
//	pcserver [-addr :5433] [-admin :8080] [-dataset tpch|tpch-skewed|ssb|tpcds]
//	         [-sf 0.01] [-seed 1] [-cache range|bitmap|off]
//	         [-max-concurrent N] [-max-queue N] [-slow 1s] [-log file]
//
// The wire protocol is newline-delimited text: send a SELECT (or EXPLAIN)
// statement per line, read back "ok <nrows> <ncols>", a TSV header, the
// rows, and a "." terminator — or "err <message>". Session commands:
// \prepare <name> <sql>, \exec <name>, \cancel (aborts the in-flight
// statement), \ping, \quit. Try it interactively:
//
//	nc localhost 5433
//	select count(*) from lineitem where l_quantity < 10
//
// -admin serves /metrics (Prometheus), /metrics.json, /debug/pprof/,
// /profile/cpu, /profile/heap, /sessions and /stats. Live sessions are also
// SQL-queryable by any client as pc.sessions, the plan cache as
// pc.plan_cache, and per-shape resource attribution as pc.query_shapes.
// -profile-dir additionally captures rate-limited CPU profiles whenever a
// query crosses the slow threshold.
//
// SIGINT/SIGTERM drain gracefully: in-flight statements finish (up to the
// drain timeout), new ones are refused.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	predcache "github.com/predcache/predcache"
	"github.com/predcache/predcache/internal/obs"
	"github.com/predcache/predcache/internal/server"
	"github.com/predcache/predcache/internal/ssb"
	"github.com/predcache/predcache/internal/tpcds"
	"github.com/predcache/predcache/internal/tpch"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:5433", "SQL listen address")
	admin := flag.String("admin", "", "admin HTTP address (metrics, sessions, pprof); empty disables")
	dataset := flag.String("dataset", "tpch-skewed", "dataset: tpch, tpch-skewed, ssb, tpcds")
	sf := flag.Float64("sf", 0.01, "scale factor")
	seed := flag.Int64("seed", 1, "generator seed")
	cacheKind := flag.String("cache", "bitmap", "predicate cache: range, bitmap, off")
	maxConcurrent := flag.Int("max-concurrent", 0, "statements executing at once (0 = 2x GOMAXPROCS)")
	maxQueue := flag.Int("max-queue", 0, "statements waiting for a slot before fast rejection (0 = 64x max-concurrent)")
	drain := flag.Duration("drain", 5*time.Second, "graceful shutdown drain timeout")
	slow := flag.Duration("slow", 0, "slow-query threshold (0 keeps the default)")
	logPath := flag.String("log", "", `write structured JSON log lines to this file ("-" for stderr); empty disables`)
	workers := flag.Int("workers", 0, "max morsel-parallel workers per query (0 = GOMAXPROCS)")
	profileDir := flag.String("profile-dir", "", "capture rate-limited CPU profiles of slow queries into this directory; empty disables")
	flag.Parse()

	var opts []predcache.Option
	var logger *obs.Logger
	if *slow > 0 {
		opts = append(opts, predcache.WithSlowQueryThreshold(*slow))
	}
	if *profileDir != "" {
		opts = append(opts, predcache.WithProfileCapture(*profileDir))
	}
	if *workers > 0 {
		opts = append(opts, predcache.WithMaxWorkers(*workers))
	}
	if *logPath != "" {
		w := os.Stderr
		if *logPath != "-" {
			f, err := os.Create(*logPath)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		logger = predcache.NewJSONLogger(w, slog.LevelInfo)
		opts = append(opts, predcache.WithLogger(logger))
	}
	switch *cacheKind {
	case "off":
		opts = append(opts, predcache.WithoutPredicateCache())
	case "range":
		opts = append(opts, predcache.WithCacheConfig(predcache.CacheConfig{Kind: predcache.RangeIndex}))
	case "bitmap":
		opts = append(opts, predcache.WithCacheConfig(predcache.CacheConfig{Kind: predcache.BitmapIndex}))
	default:
		fmt.Fprintf(os.Stderr, "pcserver: unknown cache kind %q\n", *cacheKind)
		os.Exit(2)
	}
	db := predcache.Open(opts...)
	// Health sampling feeds pc.runtime, the leak sentinels (pc.alerts) and
	// the admin endpoint's go_* gauges for the life of the server.
	db.StartRuntimeSampler(time.Second)

	fmt.Printf("loading %s at SF %.3f...\n", *dataset, *sf)
	if err := load(db, *dataset, *sf, *seed); err != nil {
		fatal(err)
	}
	for _, name := range db.Catalog().TableNames() {
		fmt.Printf("  %-12s %d rows\n", name, db.TableRows(name))
	}

	srv, err := server.New(db, server.Config{
		Addr:          *addr,
		AdminAddr:     *admin,
		MaxConcurrent: *maxConcurrent,
		MaxQueue:      *maxQueue,
		DrainTimeout:  *drain,
		Logger:        logger,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("listening on %s\n", srv.Addr())
	if a := srv.AdminAddr(); a != "" {
		fmt.Printf("admin on http://%s/stats\n", a)
	}

	done := make(chan error, 1)
	// pclint:allow goroutinectx: server-lifetime goroutine; main exits with the process
	go func() { done <- srv.Serve() }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		if err != nil {
			fatal(err)
		}
	case s := <-sig:
		fmt.Printf("%v: draining...\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), *drain+time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}
	st := srv.StatsNow()
	fmt.Printf("served %d statements over %d sessions (%d rejected, %d cancelled)\n",
		st.Statements, st.Accepted, st.Rejected, st.Cancelled)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "pcserver: %v\n", err)
	os.Exit(1)
}

func load(db *predcache.DB, dataset string, sf float64, seed int64) error {
	cat := db.Catalog()
	switch dataset {
	case "tpch":
		return tpch.Generate(tpch.Config{SF: sf, Seed: seed}).Load(cat, 4)
	case "tpch-skewed":
		return tpch.Generate(tpch.Config{SF: sf, Skewed: true, Seed: seed}).Load(cat, 4)
	case "ssb":
		return ssb.Generate(ssb.Config{SF: sf, Skewed: true, Seed: seed}).Load(cat, 4)
	case "tpcds":
		return tpcds.Generate(tpcds.Config{SF: sf, Skewed: true, Seed: seed}).Load(cat, 4)
	}
	return fmt.Errorf("unknown dataset %q", dataset)
}
