// Command pclint runs the project's static-analysis suite (internal/lint)
// over the module: lockcheck, errwrap, bufalias, goroutinectx, lockorder,
// noalloc and poolcheck. It is built exclusively on the standard library.
//
// Usage:
//
//	go run ./cmd/pclint ./...                  # whole module, default tags
//	go run ./cmd/pclint -matrix=';pcdebug' ./... # default AND pcdebug configs
//	go run ./cmd/pclint -analyzers=errwrap -tests ./...
//	go run ./cmd/pclint -format=sarif ./... > pclint.sarif
//	go run ./cmd/pclint -write-baseline ./...  # freeze current findings
//
// -matrix runs several build-tag configurations in one process (each entry is
// a comma-separated tag set; entries are separated by semicolons; the empty
// entry is the default tag set). Findings are merged and deduplicated, so a
// diagnostic in tag-shared code is reported once.
//
// Findings matching the baseline file (default .pclint-baseline.json at the
// module root, override with -baseline) are suppressed; baseline entries that
// no longer match anything are reported as stale and fail the run, so the
// baseline shrinks monotonically.
//
// Exit status: 0 when clean, 1 when findings (or stale baseline entries) were
// reported, 2 on load or type-check failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/predcache/predcache/internal/lint"
)

func main() {
	var (
		analyzerList  = flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
		includeTests  = flag.Bool("tests", false, "also lint _test.go files (same-package tests)")
		tags          = flag.String("tags", "", "comma-separated extra build tags (e.g. pcdebug)")
		matrix        = flag.String("matrix", "", "semicolon-separated tag sets to lint in one process (e.g. ';pcdebug'); overrides -tags")
		format        = flag.String("format", "text", "output format: text, json, or sarif")
		sarifOut      = flag.String("sarif", "", "also write a SARIF 2.1.0 report to this file")
		baselinePath  = flag.String("baseline", "", "baseline file (default <module root>/.pclint-baseline.json)")
		writeBaseline = flag.Bool("write-baseline", false, "write current findings to the baseline file and exit")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "pclint:", err)
		os.Exit(2)
	}

	analyzers, err := selectAnalyzers(*analyzerList)
	if err != nil {
		fail(err)
	}

	// Each matrix entry is one build-tag configuration; the whole module is
	// loaded and analyzed once per entry, all inside this process.
	tagSets := [][]string{nil}
	switch {
	case *matrix != "":
		tagSets = tagSets[:0]
		for _, entry := range strings.Split(*matrix, ";") {
			var set []string
			for _, t := range strings.Split(entry, ",") {
				if t = strings.TrimSpace(t); t != "" {
					set = append(set, t)
				}
			}
			tagSets = append(tagSets, set)
		}
	case *tags != "":
		tagSets = [][]string{strings.Split(*tags, ",")}
	}

	moduleRoot := ""
	var all []lint.Finding
	for _, set := range tagSets {
		loader, err := lint.NewLoader(".")
		if err != nil {
			fail(err)
		}
		loader.IncludeTests = *includeTests
		loader.BuildTags = set
		moduleRoot = loader.ModuleRoot

		pkgs, err := loadPatterns(loader, args)
		if err != nil {
			fail(err)
		}
		prog := lint.NewProgram(loader.Fset(), pkgs)
		all = append(all, prog.Run(analyzers)...)
	}
	findings := dedupe(all)

	bpath := *baselinePath
	if bpath == "" {
		bpath = filepath.Join(moduleRoot, ".pclint-baseline.json")
	}

	if *writeBaseline {
		b := lint.NewBaseline(moduleRoot, findings)
		if err := b.Save(bpath); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "pclint: wrote %d finding(s) to %s\n", len(findings), bpath)
		return
	}

	baseline, err := lint.LoadBaseline(bpath)
	if err != nil {
		fail(err)
	}
	fresh, stale := baseline.Filter(moduleRoot, findings)

	if *sarifOut != "" {
		f, err := os.Create(*sarifOut)
		if err != nil {
			fail(err)
		}
		if err := lint.WriteSARIF(f, moduleRoot, fresh); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}

	switch *format {
	case "text":
		for _, f := range fresh {
			rel := f
			rel.Pos.Filename = relToRoot(moduleRoot, f.Pos.Filename)
			fmt.Println(rel)
		}
	case "json":
		if err := lint.WriteJSON(os.Stdout, moduleRoot, fresh); err != nil {
			fail(err)
		}
	case "sarif":
		if err := lint.WriteSARIF(os.Stdout, moduleRoot, fresh); err != nil {
			fail(err)
		}
	default:
		fail(fmt.Errorf("unknown -format %q (want text, json, or sarif)", *format))
	}

	for _, e := range stale {
		fmt.Fprintf(os.Stderr, "pclint: stale baseline entry (no matching finding, remove it): %s\n", e)
	}
	if len(fresh) > 0 {
		fmt.Fprintf(os.Stderr, "pclint: %d finding(s)\n", len(fresh))
	}
	if len(fresh) > 0 || len(stale) > 0 {
		os.Exit(1)
	}
}

// dedupe sorts merged multi-configuration findings and removes exact
// duplicates (tag-shared code is analyzed once per tag set).
func dedupe(findings []lint.Finding) []lint.Finding {
	lint.SortFindings(findings)
	out := findings[:0]
	for i, f := range findings {
		if i > 0 && f == findings[i-1] {
			continue
		}
		out = append(out, f)
	}
	return out
}

func relToRoot(root, filename string) string {
	if r, err := filepath.Rel(root, filename); err == nil && !strings.HasPrefix(r, "..") {
		return r
	}
	return filename
}

// loadPatterns resolves command-line package patterns: "./..." loads the
// whole module; other arguments are directories relative to the working
// directory.
func loadPatterns(loader *lint.Loader, patterns []string) ([]*lint.Package, error) {
	var pkgs []*lint.Package
	seen := make(map[string]bool)
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			all, err := loader.LoadAll()
			if err != nil {
				return nil, err
			}
			for _, p := range all {
				if !seen[p.PkgPath] {
					seen[p.PkgPath] = true
					pkgs = append(pkgs, p)
				}
			}
		default:
			dir, err := filepath.Abs(strings.TrimSuffix(pat, "/..."))
			if err != nil {
				return nil, err
			}
			if strings.HasSuffix(pat, "/...") {
				all, err := loader.LoadAll()
				if err != nil {
					return nil, err
				}
				for _, p := range all {
					if (p.Dir == dir || strings.HasPrefix(p.Dir, dir+string(filepath.Separator))) && !seen[p.PkgPath] {
						seen[p.PkgPath] = true
						pkgs = append(pkgs, p)
					}
				}
				continue
			}
			p, err := loader.LoadDir(dir)
			if err != nil {
				return nil, err
			}
			if p != nil && !seen[p.PkgPath] {
				seen[p.PkgPath] = true
				pkgs = append(pkgs, p)
			}
		}
	}
	return pkgs, nil
}

func selectAnalyzers(list string) ([]lint.Analyzer, error) {
	all := lint.Analyzers()
	if list == "" {
		return all, nil
	}
	byName := make(map[string]lint.Analyzer, len(all))
	var names []string
	for _, a := range all {
		byName[a.Name()] = a
		names = append(names, a.Name())
	}
	var out []lint.Analyzer
	for _, name := range strings.Split(list, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have: %s)", name, strings.Join(names, ", "))
		}
		out = append(out, a)
	}
	return out, nil
}
