// Command pclint runs the project's static-analysis suite (internal/lint)
// over the module: lockcheck, errwrap, bufalias and goroutinectx. It is
// built exclusively on the standard library.
//
// Usage:
//
//	go run ./cmd/pclint ./...          # whole module
//	go run ./cmd/pclint ./internal/core
//	go run ./cmd/pclint -analyzers=errwrap -tests ./...
//
// Exit status: 0 when clean, 1 when findings were reported, 2 on load or
// type-check failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/predcache/predcache/internal/lint"
)

func main() {
	var (
		analyzerList = flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
		includeTests = flag.Bool("tests", false, "also lint _test.go files (same-package tests)")
		tags         = flag.String("tags", "", "comma-separated extra build tags (e.g. pcdebug)")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "pclint:", err)
		os.Exit(2)
	}
	loader.IncludeTests = *includeTests
	if *tags != "" {
		loader.BuildTags = strings.Split(*tags, ",")
	}

	pkgs, err := loadPatterns(loader, args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pclint:", err)
		os.Exit(2)
	}

	analyzers, err := selectAnalyzers(*analyzerList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pclint:", err)
		os.Exit(2)
	}

	prog := lint.NewProgram(loader.Fset(), pkgs)
	findings := prog.Run(analyzers)
	for _, f := range findings {
		rel := f
		if r, err := filepath.Rel(loader.ModuleRoot, f.Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
			rel.Pos.Filename = r
		}
		fmt.Println(rel)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "pclint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		os.Exit(1)
	}
}

// loadPatterns resolves command-line package patterns: "./..." loads the
// whole module; other arguments are directories relative to the working
// directory.
func loadPatterns(loader *lint.Loader, patterns []string) ([]*lint.Package, error) {
	var pkgs []*lint.Package
	seen := make(map[string]bool)
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			all, err := loader.LoadAll()
			if err != nil {
				return nil, err
			}
			for _, p := range all {
				if !seen[p.PkgPath] {
					seen[p.PkgPath] = true
					pkgs = append(pkgs, p)
				}
			}
		default:
			dir, err := filepath.Abs(strings.TrimSuffix(pat, "/..."))
			if err != nil {
				return nil, err
			}
			if strings.HasSuffix(pat, "/...") {
				all, err := loader.LoadAll()
				if err != nil {
					return nil, err
				}
				for _, p := range all {
					if (p.Dir == dir || strings.HasPrefix(p.Dir, dir+string(filepath.Separator))) && !seen[p.PkgPath] {
						seen[p.PkgPath] = true
						pkgs = append(pkgs, p)
					}
				}
				continue
			}
			p, err := loader.LoadDir(dir)
			if err != nil {
				return nil, err
			}
			if p != nil && !seen[p.PkgPath] {
				seen[p.PkgPath] = true
				pkgs = append(pkgs, p)
			}
		}
	}
	return pkgs, nil
}

func selectAnalyzers(list string) ([]lint.Analyzer, error) {
	all := lint.Analyzers()
	if list == "" {
		return all, nil
	}
	byName := make(map[string]lint.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name()] = a
	}
	var out []lint.Analyzer
	for _, name := range strings.Split(list, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have: lockcheck, errwrap, bufalias, goroutinectx)", name)
		}
		out = append(out, a)
	}
	return out, nil
}
