package predcache_test

import (
	"fmt"
	"math/rand"
	"testing"

	predcache "github.com/predcache/predcache"
	"github.com/predcache/predcache/internal/engine"
)

// kernelEquivDB builds a table whose columns hit every block encoding: a
// sorted key (FOR), a low-cardinality group (RLE-coded dictionary), a float
// measure (raw), a skewed run-heavy int (RLE) and a wide random int (raw).
func kernelEquivDB(t *testing.T, rows int, seed int64) *predcache.DB {
	t.Helper()
	db := predcache.Open(predcache.WithSlices(3))
	schema := predcache.Schema{
		{Name: "id", Type: predcache.Int64},
		{Name: "grp", Type: predcache.String},
		{Name: "val", Type: predcache.Float64},
		{Name: "runs", Type: predcache.Int64},
		{Name: "wide", Type: predcache.Int64},
	}
	if err := db.CreateTable("t", schema); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(seed))
	batch := predcache.NewBatch(schema)
	for i := 0; i < rows; i++ {
		batch.Cols[0].Ints = append(batch.Cols[0].Ints, int64(i))
		batch.Cols[1].Strings = append(batch.Cols[1].Strings, fmt.Sprintf("g%02d", i%5))
		batch.Cols[2].Floats = append(batch.Cols[2].Floats, float64(i%250)/3)
		batch.Cols[3].Ints = append(batch.Cols[3].Ints, int64((i/400)%9)*1e12)
		batch.Cols[4].Ints = append(batch.Cols[4].Ints, int64(r.Uint64()))
	}
	batch.N = rows
	if err := db.Insert("t", batch); err != nil {
		t.Fatal(err)
	}
	return db
}

// relEqual compares two result relations cell by cell.
func relEqual(a, b *predcache.Result) error {
	if a.NumRows() != b.NumRows() || a.NumCols() != b.NumCols() {
		return fmt.Errorf("shape %dx%d vs %dx%d", a.NumRows(), a.NumCols(), b.NumRows(), b.NumCols())
	}
	for row := 0; row < a.NumRows(); row++ {
		for col := 0; col < a.NumCols(); col++ {
			if av, bv := a.StringValue(row, col), b.StringValue(row, col); av != bv {
				return fmt.Errorf("cell (%d,%d): %q vs %q", row, col, av, bv)
			}
		}
	}
	return nil
}

// TestKernelScanEquivalence runs a mix of kernel-eligible and residual
// queries twice — encoded kernels on versus the forced decode-then-filter
// path — over cold and cache-warm scans, and requires identical results.
// This is the end-to-end counterpart of the storage-level range oracles.
func TestKernelScanEquivalence(t *testing.T) {
	db := kernelEquivDB(t, 7300, 11)
	queries := []string{
		"select count(*) as n from t where id between 900 and 5200",
		"select count(*) as n from t where runs = 2000000000000",
		"select sum(val) as s from t where grp = 'g03' and id >= 1500",
		"select count(*) as n from t where wide > 0",
		"select id, val from t where id between 4090 and 4110",
		"select grp, count(*) as n from t where runs in (0, 3000000000000) group by grp order by grp",
		"select count(*) as n from t where val > 40 and id < 6000",
		"select count(*) as n from t where id != 3000 and grp != 'g01'",
	}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 30; i++ {
		lo := r.Intn(7300)
		queries = append(queries, fmt.Sprintf(
			"select count(*) as n from t where id between %d and %d and runs >= %d",
			lo, lo+r.Intn(3000), int64(r.Intn(9))*1e12))
	}
	for _, q := range queries {
		// Two passes: the first populates the predicate cache, the second
		// exercises the cache-hit re-filter path through the kernels.
		for pass := 0; pass < 2; pass++ {
			node, err := db.Plan(q)
			if err != nil {
				t.Fatalf("%s: %v", q, err)
			}
			on, err := db.Run(node)
			if err != nil {
				t.Fatalf("%s (kernels on): %v", q, err)
			}
			node, err = db.Plan(q)
			if err != nil {
				t.Fatalf("%s: %v", q, err)
			}
			off, err := db.RunCtx(node, &engine.ExecCtx{DisableEncodedKernels: true})
			if err != nil {
				t.Fatalf("%s (kernels off): %v", q, err)
			}
			if err := relEqual(on, off); err != nil {
				t.Fatalf("%s (pass %d): kernel path diverges from decode path: %v", q, pass, err)
			}
		}
	}
}

// TestKernelWarmScanAllocs is the allocation-regression guard for the pooled
// scan scratch: a warm cache-hit point query on a serial-scan database must
// stay within a small constant allocation budget — if a per-row or per-block
// allocation sneaks back into the hot path this fails loudly.
func TestKernelWarmScanAllocs(t *testing.T) {
	db := predcache.Open(predcache.WithSlices(2), predcache.WithParallelScans(false))
	schema := predcache.Schema{
		{Name: "id", Type: predcache.Int64},
		{Name: "val", Type: predcache.Int64},
	}
	if err := db.CreateTable("t", schema); err != nil {
		t.Fatal(err)
	}
	batch := predcache.NewBatch(schema)
	for i := 0; i < 40000; i++ {
		batch.Cols[0].Ints = append(batch.Cols[0].Ints, int64(i))
		batch.Cols[1].Ints = append(batch.Cols[1].Ints, int64(i%97))
	}
	batch.N = 40000
	if err := db.Insert("t", batch); err != nil {
		t.Fatal(err)
	}
	const q = "select id, val from t where id = 31234"
	node, err := db.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the cache and the scratch pool.
	for i := 0; i < 3; i++ {
		if _, err := db.Run(node); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(50, func() {
		res, err := db.Run(node)
		if err != nil {
			t.Fatal(err)
		}
		if res.NumRows() != 1 {
			t.Fatalf("rows = %d, want 1", res.NumRows())
		}
	})
	t.Logf("warm point query: %.1f allocs/op", avg)
	// Measured ~37 allocs on a warm run (plan-node bookkeeping, the result
	// relation, stats snapshot); the bound leaves headroom without letting a
	// per-block regression (40 blocks/slice here) through.
	if avg > 60 {
		t.Fatalf("warm point query allocates %.1f allocs/op, budget 60", avg)
	}
	st := db.LastQueryStats()
	if st.CacheHits == 0 {
		t.Fatalf("alloc guard did not exercise the cache-hit path: %+v", st)
	}
}
