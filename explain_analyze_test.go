package predcache_test

import (
	"fmt"
	"strings"
	"testing"

	predcache "github.com/predcache/predcache"
)

// planText runs an EXPLAIN/EXPLAIN ANALYZE statement through the normal
// Query path and joins the one-column text result back into a string.
func planText(t *testing.T, db *predcache.DB, query string) string {
	t.Helper()
	res, err := db.Query(query)
	if err != nil {
		t.Fatalf("%s: %v", query, err)
	}
	var b strings.Builder
	for i := 0; i < res.NumRows(); i++ {
		b.WriteString(res.StringValue(i, 0))
		b.WriteByte('\n')
	}
	return b.String()
}

// assertTotalsMatch rebuilds the totals line from LastQueryStats — which
// ExplainAnalyze snapshots from the same execution — and requires it
// verbatim in the rendered output.
func assertTotalsMatch(t *testing.T, db *predcache.DB, out string) {
	t.Helper()
	st := db.LastQueryStats()
	want := fmt.Sprintf("totals: rows scanned=%d qualified=%d decoded=%d; blocks accessed=%d decoded=%d kernel(encoded)=%d pruned(zonemap)=%d pruned(cache)=%d; cache hits=%d misses=%d",
		st.RowsScanned, st.RowsQualified, st.RowsDecoded,
		st.BlocksAccessed, st.BlocksDecoded, st.BlocksKernel,
		st.BlocksSkipped, st.BlocksPrunedCache, st.CacheHits, st.CacheMisses)
	if !strings.Contains(out, want) {
		t.Fatalf("totals line does not match LastQueryStats\nwant: %s\ngot:\n%s", want, out)
	}
}

// TestExplainAnalyzeConsistency checks the acceptance criterion that the
// rendered EXPLAIN ANALYZE output is consistent with LastQueryStats: the
// totals line is built from the same counters, the cold run reports a cache
// miss and the warm run a hit, and every executed node carries a wall time.
func TestExplainAnalyzeConsistency(t *testing.T) {
	db := openWithData(t, 4000)
	const q = "select count(*) as c from t where val >= 50"

	cold := planText(t, db, "explain analyze "+q)
	if !strings.Contains(cold, "time=") {
		t.Fatalf("no node wall times in output:\n%s", cold)
	}
	if !strings.Contains(cold, "cache=miss") {
		t.Fatalf("cold run did not report a cache miss:\n%s", cold)
	}
	assertTotalsMatch(t, db, cold)

	// Same predicate again: the scan must now be served from the cache, and
	// case-insensitive EXPLAIN ANALYZE must route the same way.
	warm := planText(t, db, "EXPLAIN ANALYZE "+q)
	if !strings.Contains(warm, "cache=hit") {
		t.Fatalf("warm run did not report a cache hit:\n%s", warm)
	}
	assertTotalsMatch(t, db, warm)
	if st := db.LastQueryStats(); st.CacheHits == 0 {
		t.Fatalf("warm EXPLAIN ANALYZE recorded no cache hit: %+v", st)
	}

	// Plain EXPLAIN must not execute the statement: no timings, and the
	// previous stats snapshot stays in place.
	before := db.LastQueryStats()
	plain := planText(t, db, "explain "+q)
	if strings.Contains(plain, "time=") {
		t.Fatalf("plain EXPLAIN carries wall times (was it executed?):\n%s", plain)
	}
	if after := db.LastQueryStats(); after != before {
		t.Fatalf("plain EXPLAIN changed LastQueryStats: %+v -> %+v", before, after)
	}
}

// TestExplainAnalyzeKernelBreakdown checks that a warm query over an int
// predicate reports the encoded-kernel split: the scan line carries the
// kernels(decoded=… encoded=…) annotation, the kernel counter is non-zero
// (the filter ran on compressed blocks), and decoded blocks stay below
// accessed blocks (partial decode skipped full materialization).
func TestExplainAnalyzeKernelBreakdown(t *testing.T) {
	db := openWithData(t, 4000)
	// sum(val) projects a different column than the filter touches, so the
	// id blocks are kernel-only (never decompressed) while val is partially
	// decoded for the qualifying rows.
	const q = "select sum(val) as s from t where id between 1200 and 1800"

	planText(t, db, "explain analyze "+q) // cold: populate the cache
	warm := planText(t, db, "EXPLAIN ANALYZE "+q)
	if !strings.Contains(warm, "cache=hit") {
		t.Fatalf("warm run did not report a cache hit:\n%s", warm)
	}
	if !strings.Contains(warm, "kernels(decoded=") {
		t.Fatalf("warm run missing the kernel breakdown annotation:\n%s", warm)
	}
	assertTotalsMatch(t, db, warm)
	st := db.LastQueryStats()
	if st.BlocksKernel == 0 {
		t.Fatalf("warm int-predicate scan evaluated no encoded kernels: %+v", st)
	}
	if st.BlocksDecoded >= st.BlocksAccessed {
		t.Fatalf("partial decode saved nothing: decoded=%d accessed=%d", st.BlocksDecoded, st.BlocksAccessed)
	}
	if st.RowsDecoded == 0 || st.RowsDecoded > st.RowsScanned {
		t.Fatalf("rows.decoded should be positive and at most rows.scanned: %+v", st)
	}
}
