module github.com/predcache/predcache

go 1.22
