package predcache

import (
	"io"
	"time"

	"github.com/predcache/predcache/internal/systab"
)

// QueryRecord is one row of the always-on query history (pc.query_log).
type QueryRecord = systab.QueryRecord

// DefaultQueryLogCapacity is the number of recent queries the history
// retains unless WithQueryLogCapacity overrides it. At ~200 bytes per
// record the default costs a fixed ~200 KiB per database.
const DefaultQueryLogCapacity = 1024

// DefaultSlowQueryThreshold flags queries at or above this wall time as
// slow in pc.query_log.
const DefaultSlowQueryThreshold = time.Second

// WithQueryLogCapacity sets how many recent queries pc.query_log retains
// (default DefaultQueryLogCapacity). n <= 0 disables query recording
// entirely: pc.query_log stays empty and queries skip the recording step.
func WithQueryLogCapacity(n int) Option {
	return func(db *DB) { db.qlogCap = n }
}

// WithSlowQueryThreshold sets the wall time at which a query is flagged
// slow (default DefaultSlowQueryThreshold; d <= 0 flags none).
func WithSlowQueryThreshold(d time.Duration) Option {
	return func(db *DB) { db.slowQuery = d }
}

// QueryLog returns the retained query history, oldest first (nil when
// recording is disabled). The same rows are queryable as pc.query_log.
func (db *DB) QueryLog() []QueryRecord {
	return db.qlog.Records()
}

// DumpQueryLog streams the retained query history to w as JSON lines,
// oldest first (a no-op when recording is disabled).
func (db *DB) DumpQueryLog(w io.Writer) error {
	return db.qlog.WriteJSONL(w)
}

// SystemTableNames lists the registered pc.* system tables, sorted.
func (db *DB) SystemTableNames() []string {
	return db.sysTables.Names()
}
