package predcache_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	predcache "github.com/predcache/predcache"
)

// mustPred parses a WHERE condition or fails the test.
func mustPred(t *testing.T, cond string) predcache.Pred {
	t.Helper()
	p, err := predcache.ParseWhere(cond)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestUpdateWhereFailedAppendKeepsRows is the regression test for the lost-
// rows bug: UpdateWhere used to delete the matched rows before appending the
// updated copies, so an apply callback that corrupted the batch (mismatched
// column lengths) returned an error with the original rows already gone.
// The update must be all-or-nothing.
func TestUpdateWhereFailedAppendKeepsRows(t *testing.T) {
	db := openWithData(t, 3000)
	count := func() int64 {
		res, err := db.Query("select count(*) as n from t where val >= 50")
		if err != nil {
			t.Fatal(err)
		}
		return res.Col(0).Ints[0]
	}
	before := count()
	if before == 0 {
		t.Fatal("no matching rows to start with")
	}
	_, err := db.UpdateWhere("t", mustPred(t, "val >= 50"), func(b *predcache.Batch) {
		// Corrupt the batch: drop one value from the id column.
		b.Cols[0].Ints = b.Cols[0].Ints[:len(b.Cols[0].Ints)-1]
	})
	if err == nil {
		t.Fatal("corrupted batch did not fail the update")
	}
	if after := count(); after != before {
		t.Fatalf("failed update lost rows: %d matching before, %d after", before, after)
	}
}

// TestRunCtxDefaultsParallel: RunCtx used to leave ec.Parallel at its zero
// value, silently running every caller-provided context serially even though
// the database was opened with parallel scans (the default). It must default
// from the database configuration, with ec.Serial as the explicit opt-out.
func TestRunCtxDefaultsParallel(t *testing.T) {
	db := openWithData(t, 1000)
	node, err := db.Plan("select count(*) from t where val > 10")
	if err != nil {
		t.Fatal(err)
	}
	ec := &predcache.ExecCtx{}
	if _, err := db.RunCtx(node, ec); err != nil {
		t.Fatal(err)
	}
	if !ec.Parallel {
		t.Fatal("RunCtx did not default Parallel from the database configuration")
	}
	serial := &predcache.ExecCtx{Serial: true}
	if _, err := db.RunCtx(node, serial); err != nil {
		t.Fatal(err)
	}
	if serial.Parallel {
		t.Fatal("RunCtx overrode an explicit Serial request")
	}

	off := predcache.Open(predcache.WithParallelScans(false))
	if err := off.CreateTable("u", predcache.Schema{{Name: "x", Type: predcache.Int64}}); err != nil {
		t.Fatal(err)
	}
	b := predcache.NewBatch(predcache.Schema{{Name: "x", Type: predcache.Int64}})
	b.Cols[0].Ints = []int64{1, 2, 3}
	b.N = 3
	if err := off.Insert("u", b); err != nil {
		t.Fatal(err)
	}
	nodeOff, err := off.Plan("select count(*) from u")
	if err != nil {
		t.Fatal(err)
	}
	ecOff := &predcache.ExecCtx{}
	if _, err := off.RunCtx(nodeOff, ecOff); err != nil {
		t.Fatal(err)
	}
	if ecOff.Parallel {
		t.Fatal("RunCtx enabled parallelism on a serial-configured database")
	}
}

// TestDMLVacuumRace interleaves UpdateWhere/DeleteWhere with Vacuum and
// parallel cached scans on a sort-keyed table. Vacuum renumbers physical
// rows, so without the epoch re-verification the DML statements would delete
// or update arbitrary rows captured under the old numbering. Invariants:
// readers never miss a row that was never touched (no false negatives from
// the predicate cache), every deleted id disappears exactly once, and the
// final row count is exact. Run with -race.
func TestDMLVacuumRace(t *testing.T) {
	const n = 12000
	schema := predcache.Schema{
		{Name: "id", Type: predcache.Int64},
		{Name: "bucket", Type: predcache.Int64},
		{Name: "val", Type: predcache.Int64},
	}
	db := predcache.Open(predcache.WithSlices(4))
	if err := db.CreateTable("t", schema, "bucket"); err != nil {
		t.Fatal(err)
	}
	batch := predcache.NewBatch(schema)
	for i := 0; i < n; i++ {
		batch.Cols[0].Ints = append(batch.Cols[0].Ints, int64(i))
		batch.Cols[1].Ints = append(batch.Cols[1].Ints, int64(i%64))
		batch.Cols[2].Ints = append(batch.Cols[2].Ints, 0)
	}
	batch.N = n
	if err := db.Load("t", batch); err != nil {
		t.Fatal(err)
	}

	// Disjoint id sets: updaters touch ids ≡ 1 (mod 4), deleters ids ≡ 2
	// (mod 4); ids ≡ 0 (mod 4) are never touched and must stay visible.
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	var deleted atomic.Int64

	// pred parses a condition without touching t (goroutine-safe).
	pred := func(cond string) (predcache.Pred, error) { return predcache.ParseWhere(cond) }

	wg.Add(1)
	go func() { // updater
		defer wg.Done()
		for i := 0; i < 40; i++ {
			id := int64(4*(i%(n/4)) + 1)
			p, err := pred(fmt.Sprintf("id = %d", id))
			if err != nil {
				errCh <- err
				return
			}
			_, err = db.UpdateWhere("t", p, func(b *predcache.Batch) {
				for j := range b.Cols[2].Ints {
					b.Cols[2].Ints[j]++
				}
			})
			if err != nil {
				errCh <- fmt.Errorf("update id %d: %w", id, err)
				return
			}
		}
	}()

	wg.Add(1)
	go func() { // deleter: each id deleted exactly once
		defer wg.Done()
		for i := 0; i < 40; i++ {
			id := int64(4*i + 2)
			p, err := pred(fmt.Sprintf("id = %d", id))
			if err != nil {
				errCh <- err
				return
			}
			cnt, err := db.DeleteWhere("t", p)
			if err != nil {
				errCh <- fmt.Errorf("delete id %d: %w", id, err)
				return
			}
			if cnt > 1 {
				errCh <- fmt.Errorf("delete id %d removed %d rows", id, cnt)
				return
			}
			deleted.Add(int64(cnt))
		}
	}()

	wg.Add(1)
	go func() { // vacuum loop: renumbers rows under the writers' feet
		defer wg.Done()
		for i := 0; i < 25; i++ {
			if err := db.Vacuum("t"); err != nil {
				errCh <- fmt.Errorf("vacuum: %w", err)
				return
			}
		}
	}()

	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) { // readers: cached scans over untouched ids
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := 4 * ((w*50 + i) % (n / 4))
				res, err := db.Query(fmt.Sprintf("select count(*) as c from t where id = %d", id))
				if err != nil {
					errCh <- fmt.Errorf("reader %d: %w", w, err)
					return
				}
				if got := res.Col(0).Ints[0]; got != 1 {
					errCh <- fmt.Errorf("reader %d: id %d visible %d times, want 1", w, id, got)
					return
				}
			}
		}(w)
	}

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Final invariants on the quiesced table.
	res, err := db.Query("select count(*) as c from t")
	if err != nil {
		t.Fatal(err)
	}
	want := int64(n) - deleted.Load()
	if got := res.Col(0).Ints[0]; got != want {
		t.Fatalf("final count %d, want %d (deleted %d)", got, want, deleted.Load())
	}
	res, err = db.Query("select id from t")
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int64]bool, res.NumRows())
	for _, id := range res.Col(0).Ints {
		if seen[id] {
			t.Fatalf("id %d appears more than once after concurrent updates", id)
		}
		seen[id] = true
	}
}
