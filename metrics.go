package predcache

import (
	"time"

	"github.com/predcache/predcache/internal/obs"
	"github.com/predcache/predcache/internal/storage"
)

// NewMetrics creates an empty metrics registry to pass to EnableMetrics;
// serve it with obs.Handler/StartServer (cmd/pcsh shows the wiring) or dump
// it with WritePrometheus/WriteJSON.
func NewMetrics() *Metrics { return obs.NewMetrics() }

// queryMetrics holds the push-style instruments fed after every query; it is
// nil until EnableMetrics installs one, and the nil receiver records nothing.
type queryMetrics struct {
	queries        *obs.Counter
	errors         *obs.Counter
	seconds        *obs.Histogram
	rowsScanned    *obs.Counter
	rowsQualified  *obs.Counter
	rowsDecoded    *obs.Counter
	blocksAccessed *obs.Counter
	blocksDecoded  *obs.Counter
	blocksKernel   *obs.Counter
	blocksZone     *obs.Counter
	blocksCache    *obs.Counter
	cacheHits      *obs.Counter
	cacheMisses    *obs.Counter
	morsels        *obs.Counter
	workerMicros   *obs.Counter
}

// EnableMetrics registers the database's instruments on m and starts feeding
// them: query counters and a latency histogram (pushed per query), table
// gauges and predicate-cache counters (pulled at scrape time). Call once per
// registry, before serving it; WithMetrics does the same at Open.
func (db *DB) EnableMetrics(m *obs.Metrics) {
	qm := &queryMetrics{
		queries:        m.NewCounter("predcache_queries_total", "Queries executed (including failed ones)."),
		errors:         m.NewCounter("predcache_query_errors_total", "Queries that returned an error."),
		seconds:        m.NewHistogram("predcache_query_seconds", "Query wall time.", obs.DefBuckets),
		rowsScanned:    m.NewCounter("predcache_rows_scanned_total", "Rows the vectorized filter evaluated."),
		rowsQualified:  m.NewCounter("predcache_rows_qualified_total", "Rows passing filters and visibility."),
		rowsDecoded:    m.NewCounter("predcache_rows_decoded_total", "Values the partial decoder materialized."),
		blocksAccessed: m.NewCounter("predcache_blocks_accessed_total", "Column blocks touched (kernel or decode)."),
		blocksDecoded:  m.NewCounter("predcache_blocks_decoded_total", "Column blocks decompressed."),
		blocksKernel:   m.NewCounter("predcache_blocks_kernel_encoded_total", "Kernel evaluations directly on encoded blocks."),
		blocksZone:     m.NewCounter("predcache_blocks_pruned_zonemap_total", "Row blocks eliminated by zone maps."),
		blocksCache:    m.NewCounter("predcache_blocks_pruned_cache_total", "Row blocks excluded by predicate-cache hits."),
		cacheHits:      m.NewCounter("predcache_scan_cache_hits_total", "Scans served from a predicate-cache entry."),
		cacheMisses:    m.NewCounter("predcache_scan_cache_misses_total", "Scans that missed the predicate cache."),
		morsels:        m.NewCounter("predcache_morsels_total", "Morsels claimed by parallel join/aggregation workers."),
		workerMicros:   m.NewCounter("predcache_parallel_worker_micros_total", "Summed busy time of morsel-parallel workers in microseconds."),
	}
	m.NewGauge("predcache_tables", "Tables in the catalog.", func() float64 {
		return float64(len(db.cat.TableNames()))
	})
	m.NewGauge("predcache_table_rows", "Physical rows across all tables.", func() float64 {
		n := 0
		for _, name := range db.cat.TableNames() {
			if tbl, ok := db.cat.Table(name); ok {
				n += tbl.NumRows()
			}
		}
		return float64(n)
	})
	m.NewGauge("predcache_table_mem_bytes", "Memory held by table data.", func() float64 {
		n := 0
		for _, name := range db.cat.TableNames() {
			if tbl, ok := db.cat.Table(name); ok {
				n += tbl.MemBytes()
			}
		}
		return float64(n)
	})
	if db.cache != nil {
		db.cache.RegisterMetrics(m)
	}
	// The observability layer is built at the end of Open; when EnableMetrics
	// runs earlier (the WithMetrics option), these are nil no-ops and Open
	// registers them once the layer exists.
	db.slo.RegisterMetrics(m)
	db.traces.RegisterMetrics(m)
	obs.RegisterSamplerMetrics(m, db.runtime.Load)
	db.metrics.Store(qm)
	db.metricsReg.Store(m)
}

// record feeds one query execution into the instruments.
func (qm *queryMetrics) record(d time.Duration, snap storage.ScanStatsSnapshot, err error) {
	if qm == nil {
		return
	}
	qm.queries.Inc()
	if err != nil {
		qm.errors.Inc()
		return
	}
	qm.seconds.Observe(d.Seconds())
	qm.rowsScanned.Add(snap.RowsScanned)
	qm.rowsQualified.Add(snap.RowsQualified)
	qm.rowsDecoded.Add(snap.RowsDecoded)
	qm.blocksAccessed.Add(snap.BlocksAccessed)
	qm.blocksDecoded.Add(snap.BlocksDecoded)
	qm.blocksKernel.Add(snap.BlocksKernel)
	qm.blocksZone.Add(snap.BlocksSkipped)
	qm.blocksCache.Add(snap.BlocksPrunedCache)
	qm.cacheHits.Add(snap.CacheHits)
	qm.cacheMisses.Add(snap.CacheMisses)
	qm.morsels.Add(snap.Morsels)
	qm.workerMicros.Add(snap.WorkerNanos / 1e3)
}
