package predcache_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	predcache "github.com/predcache/predcache"
)

func TestPlanCacheHitOnRepeat(t *testing.T) {
	db := openWithData(t, 3000)
	q := "select count(*) as n from t where id < 500"
	for i := 0; i < 3; i++ {
		res := one(t, db, q)
		if got := intCell(t, res, 0, "n"); got != 500 {
			t.Fatalf("run %d: count = %d", i, got)
		}
	}
	st := db.PlanCacheStats()
	if st.Hits < 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 2 hits / 1 miss", st)
	}
	entries := db.PlanCacheEntries()
	if len(entries) != 1 || entries[0].Hits < 2 {
		t.Fatalf("entries = %+v", entries)
	}
	if !strings.Contains(entries[0].Key, "?") {
		t.Fatalf("template not normalized: %q", entries[0].Key)
	}
}

// The defining property of normalized caching: a repeat with different
// literals reuses the template AND computes the right answer for the new
// literals.
func TestPlanCacheNormalizedHitCorrectResults(t *testing.T) {
	db := openWithData(t, 3000)
	for _, want := range []int64{500, 100, 2999, 1} {
		q := fmt.Sprintf("select count(*) as n from t where id < %d", want)
		res := one(t, db, q)
		if got := intCell(t, res, 0, "n"); got != want {
			t.Fatalf("id < %d: count = %d", want, got)
		}
	}
	st := db.PlanCacheStats()
	if st.Hits != 3 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 3 hits / 1 miss", st)
	}

	// String and IN-list literals rebind too.
	a := intCell(t, one(t, db, "select count(*) as n from t where grp = 'a'"), 0, "n")
	b := intCell(t, one(t, db, "select count(*) as n from t where grp = 'b'"), 0, "n")
	if a != 1000 || b != 1000 {
		t.Fatalf("grp counts: a=%d b=%d", a, b)
	}
	ab := intCell(t, one(t, db, "select count(*) as n from t where grp in ('a', 'b')"), 0, "n")
	bc := intCell(t, one(t, db, "select count(*) as n from t where grp in ('b', 'c')"), 0, "n")
	if ab != 2000 || bc != 2000 {
		t.Fatalf("in-list counts: ab=%d bc=%d", ab, bc)
	}
}

func TestPlanCacheInvalidation(t *testing.T) {
	db := openWithData(t, 3000)
	q := "select count(*) as n from t where id < 500"
	one(t, db, q)
	one(t, db, q)
	base := db.PlanCacheStats()
	if base.Hits != 1 {
		t.Fatalf("warmup stats = %+v", base)
	}

	// DML on the referenced table drops the entry (table statistics feed the
	// planner, and the cached plan must never serve stale row counts).
	schema := predcache.Schema{
		{Name: "id", Type: predcache.Int64},
		{Name: "grp", Type: predcache.String},
		{Name: "val", Type: predcache.Float64},
		{Name: "day", Type: predcache.Date},
	}
	batch := predcache.NewBatch(schema)
	batch.Cols[0].Ints = []int64{100000}
	batch.Cols[1].Strings = []string{"a"}
	batch.Cols[2].Floats = []float64{1}
	batch.Cols[3].Ints = []int64{20000}
	batch.N = 1
	if err := db.Insert("t", batch); err != nil {
		t.Fatal(err)
	}
	one(t, db, q)
	st := db.PlanCacheStats()
	if st.Invalidations != base.Invalidations+1 {
		t.Fatalf("after insert: %+v", st)
	}

	// DDL anywhere drops entries wholesale (ddl generation).
	if err := db.CreateTable("u", predcache.Schema{{Name: "x", Type: predcache.Int64}}); err != nil {
		t.Fatal(err)
	}
	one(t, db, q)
	st = db.PlanCacheStats()
	if st.Invalidations != base.Invalidations+2 {
		t.Fatalf("after create table: %+v", st)
	}

	// Vacuum changes the physical layout (row renumbering).
	if _, err := db.DeleteWhere("t", mustPred(t, "id < 10")); err != nil {
		t.Fatal(err)
	}
	one(t, db, q) // re-plans after the delete...
	if err := db.Vacuum("t"); err != nil {
		t.Fatal(err)
	}
	before := db.PlanCacheStats().Invalidations
	one(t, db, q)
	if got := db.PlanCacheStats().Invalidations; got != before+1 {
		t.Fatalf("after vacuum: invalidations %d, want %d", got, before+1)
	}

	// The re-planned entry serves hits again, with correct post-DML results.
	res := one(t, db, q)
	if got := intCell(t, res, 0, "n"); got != 490 {
		t.Fatalf("post-vacuum count = %d, want 490", got)
	}
}

// A plan-cache hit skips parsing and planning entirely: pc.query_log shows
// plan_us = 0 for the hit (the plan phase never runs).
func TestPlanCacheHitSkipsPlanningInQueryLog(t *testing.T) {
	db := openWithData(t, 3000)
	q := "select count(*) as n from t where id < 500"
	one(t, db, q)
	one(t, db, q)
	recs := db.QueryLog()
	if len(recs) != 2 {
		t.Fatalf("%d records", len(recs))
	}
	hit := recs[1]
	if hit.SQL != q || hit.Error != "" {
		t.Fatalf("unexpected record %+v", hit)
	}
	if hit.PlanMicros != 0 {
		t.Fatalf("cache hit ran the planner: plan_us = %d", hit.PlanMicros)
	}
	if db.PlanCacheStats().Hits != 1 {
		t.Fatalf("stats = %+v", db.PlanCacheStats())
	}
}

func TestPlanCacheDisabled(t *testing.T) {
	db := predcache.Open(predcache.WithoutPlanCache())
	if err := db.CreateTable("t", predcache.Schema{{Name: "x", Type: predcache.Int64}}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("select count(*) as n from t where x = 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("select count(*) as n from t where x = 1"); err != nil {
		t.Fatal(err)
	}
	if st := db.PlanCacheStats(); st != (predcache.PlanCacheStats{}) {
		t.Fatalf("disabled cache has stats %+v", st)
	}
	if db.PlanCacheEntries() != nil {
		t.Fatal("disabled cache has entries")
	}
	// pc.plan_cache stays queryable, just empty.
	res := one(t, db, "select count(*) as n from pc.plan_cache")
	if got := intCell(t, res, 0, "n"); got != 0 {
		t.Fatalf("pc.plan_cache rows = %d", got)
	}
}

func TestPlanCacheSystemTable(t *testing.T) {
	db := openWithData(t, 1000)
	q := "select count(*) as n from t where id < 100"
	one(t, db, q)
	one(t, db, q)
	res := one(t, db, "select query_template, slots, tables, hits from pc.plan_cache")
	if res.NumRows() != 1 {
		t.Fatalf("pc.plan_cache rows = %d", res.NumRows())
	}
	if got := res.StringValue(0, 0); !strings.Contains(got, "?") {
		t.Fatalf("template = %q", got)
	}
	if got := intCell(t, res, 0, "slots"); got != 1 {
		t.Fatalf("slots = %d", got)
	}
	if got := res.StringValue(0, 2); got != "t" {
		t.Fatalf("tables = %q", got)
	}
}

// Concurrent sessions hammering the same template with different literals
// must neither race (the template is cloned per execution) nor cross results.
func TestPlanCacheConcurrent(t *testing.T) {
	db := openWithData(t, 3000)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				want := int64(1 + (g*25+i)%2999)
				q := fmt.Sprintf("select count(*) as n from t where id < %d", want)
				res, err := db.Query(q)
				if err != nil {
					errs <- err
					return
				}
				if got := intCell(t, res, 0, "n"); got != want {
					errs <- fmt.Errorf("id < %d: got %d", want, got)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := db.PlanCacheStats()
	if st.Hits == 0 {
		t.Fatalf("no hits under concurrency: %+v", st)
	}
}

func TestQueryCtxPreCancelled(t *testing.T) {
	db := openWithData(t, 100)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.QueryCtx(ctx, "select count(*) from t"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if n := len(db.QueryLog()); n != 0 {
		t.Fatalf("pre-cancelled query was recorded (%d records)", n)
	}
}

func TestQueryCtxCancelMidQuery(t *testing.T) {
	db := openWithData(t, 200000)
	// A self-join big enough that execution takes tens of milliseconds;
	// cancel almost immediately and require a prompt abort. Retried a few
	// times so a scheduler hiccup finishing the query early cannot flake the
	// test.
	q := "select count(*) as n from t a, t b where a.id = b.id"
	for attempt := 0; attempt < 5; attempt++ {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(2 * time.Millisecond)
			cancel()
		}()
		start := time.Now()
		_, err := db.QueryCtx(ctx, q)
		elapsed := time.Since(start)
		cancel()
		if err == nil {
			continue // finished before the cancel landed; try again
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v", err)
		}
		if elapsed > 2*time.Second {
			t.Fatalf("cancelled query ran %v", elapsed)
		}
		// The cancelled run must be recorded as a failure.
		recs := db.QueryLog()
		last := recs[len(recs)-1]
		if last.SQL != q || !strings.Contains(last.Error, "cancel") {
			t.Fatalf("cancelled query record = %+v", last)
		}
		return
	}
	t.Skip("query always completed before cancellation; machine too fast for this workload")
}

// A cancelled scan must not leave a partial entry in the predicate cache:
// the next uncancelled run would serve wrong results from it.
func TestCancelDoesNotPoisonPredicateCache(t *testing.T) {
	db := openWithData(t, 200000)
	q := "select count(*) as n from t where val < 50"
	for attempt := 0; attempt < 20; attempt++ {
		ctx, cancel := context.WithCancel(context.Background())
		go cancel()
		_, _ = db.QueryCtx(ctx, q)
		cancel()
	}
	res := one(t, db, q)
	if got := intCell(t, res, 0, "n"); got != 100000 {
		t.Fatalf("count after cancelled runs = %d, want 100000", got)
	}
}
