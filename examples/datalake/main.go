// Datalake: §4.5 of the paper — predicate caching over an open table
// format. In an Iceberg/Delta-style lake the warehouse does not own the
// physical layout: other writers append data files, and compaction jobs
// rewrite them. The predicate cache needs none of that ownership; it only
// requires (a) stable row identity between changes, (b) infrequent layout
// changes, and (c) detectable layout changes. This example models the lake
// as a sequence of committed data files: file appends extend cache entries
// via watermarks, and a compaction (layout rewrite) is detected through the
// layout epoch and invalidates them.
package main

import (
	"fmt"
	"log"
	"math/rand"

	predcache "github.com/predcache/predcache"
)

var schema = predcache.Schema{
	{Name: "trip_id", Type: predcache.Int64},
	{Name: "city", Type: predcache.String},
	{Name: "distance_km", Type: predcache.Float64},
	{Name: "day", Type: predcache.Date},
}

// dataFile builds one committed data file: lake writers partition output by
// city, so each file covers a single city (clustered layout, as produced by
// Glue/Spark jobs writing partitioned Parquet).
func dataFile(id int, rows int, r *rand.Rand) *predcache.Batch {
	cities := []string{"berlin", "munich", "hamburg", "cologne"}
	city := cities[id%len(cities)]
	b := predcache.NewBatch(schema)
	for i := 0; i < rows; i++ {
		b.Cols[0].Ints = append(b.Cols[0].Ints, int64(id*rows+i))
		b.Cols[1].Strings = append(b.Cols[1].Strings, city)
		b.Cols[2].Floats = append(b.Cols[2].Floats, float64(r.Intn(4000))/100)
		b.Cols[3].Ints = append(b.Cols[3].Ints, int64(20200+id))
	}
	b.N = rows
	return b
}

func main() {
	// Range entries keep per-row precision: partition pruning (zone maps on
	// the clustered city column) already skips other cities' files; the
	// predicate cache then refines to the qualifying rows *within* the
	// matching files — the part min/max file statistics cannot do.
	db := predcache.Open(predcache.WithCacheConfig(
		predcache.CacheConfig{Kind: predcache.RangeIndex, MaxRanges: 16384}))
	if err := db.CreateTable("trips", schema); err != nil {
		log.Fatal(err)
	}
	r := rand.New(rand.NewSource(9))

	query := `select count(*) as n, avg(distance_km) as avg_km
	          from trips where city = 'munich' and distance_km > 39`
	report := func(label string) {
		res, err := db.Query(query)
		if err != nil {
			log.Fatal(err)
		}
		st := db.LastQueryStats()
		cs := db.CacheStats()
		fmt.Printf("%-30s rows=%7d | scanned %8d | hits %2d | invalidations %d\n",
			label, res.ColByName("n").Ints[0], st.RowsScanned, cs.Hits, cs.Invalidations)
	}

	// Initial snapshot: 16 committed files.
	fileID := 0
	for ; fileID < 16; fileID++ {
		if err := db.Insert("trips", dataFile(fileID, 50_000, r)); err != nil {
			log.Fatal(err)
		}
	}
	report("initial snapshot (16 files)")
	report("repeat (cache warm)")

	// Another engine appends four more files to the lake; the cache entry
	// stays valid — only the new tail is scanned and merged in.
	for ; fileID < 20; fileID++ {
		if err := db.Insert("trips", dataFile(fileID, 50_000, r)); err != nil {
			log.Fatal(err)
		}
	}
	report("after 4 appended files")
	report("repeat")

	// A compaction job rewrites the files: row identity changes, which the
	// cache detects via the layout epoch and drops its entries.
	if err := db.Vacuum("trips"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("-- compaction rewrote the data files (layout epoch bumped) --")
	report("after compaction (must rescan)")
	report("re-warmed on the new layout")
}
