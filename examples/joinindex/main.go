// Joinindex: §4.4 of the paper — the predicate cache as a join index. The
// probe-side scan of a star join caches the rows surviving the semi-join
// filter, keyed on the join predicate plus the build side. Repeats of the
// same join scan only the rows with a join partner; DML on the dimension
// (build) side invalidates the join entry while plain filter entries stay.
package main

import (
	"fmt"
	"log"
	"math/rand"

	predcache "github.com/predcache/predcache"
)

func main() {
	// The range-index cache keeps per-row precision, showing the full
	// selectivity the semi-join key buys.
	db := predcache.Open(predcache.WithCacheConfig(
		predcache.CacheConfig{Kind: predcache.RangeIndex, MaxRanges: 16384}))

	factSchema := predcache.Schema{
		{Name: "f_id", Type: predcache.Int64},
		{Name: "f_product", Type: predcache.Int64},
		{Name: "f_amount", Type: predcache.Float64},
	}
	dimSchema := predcache.Schema{
		{Name: "p_id", Type: predcache.Int64},
		{Name: "p_category", Type: predcache.String},
		{Name: "p_price", Type: predcache.Float64},
	}
	if err := db.CreateTable("facts", factSchema); err != nil {
		log.Fatal(err)
	}
	if err := db.CreateTable("products", dimSchema); err != nil {
		log.Fatal(err)
	}

	r := rand.New(rand.NewSource(3))
	const products = 10000
	pb := predcache.NewBatch(dimSchema)
	cats := []string{"tools", "garden", "toys", "books", "games", "audio", "video", "pets", "food", "rare"}
	for i := 0; i < products; i++ {
		pb.Cols[0].Ints = append(pb.Cols[0].Ints, int64(i))
		cat := cats[r.Intn(9)]
		if i%500 == 0 {
			cat = "rare" // ~0.2% of products
		}
		pb.Cols[1].Strings = append(pb.Cols[1].Strings, cat)
		pb.Cols[2].Floats = append(pb.Cols[2].Floats, float64(r.Intn(10000))/100)
	}
	pb.N = products
	if err := db.Insert("products", pb); err != nil {
		log.Fatal(err)
	}

	const facts = 1_000_000
	fb := predcache.NewBatch(factSchema)
	for i := 0; i < facts; i++ {
		fb.Cols[0].Ints = append(fb.Cols[0].Ints, int64(i))
		fb.Cols[1].Ints = append(fb.Cols[1].Ints, int64(r.Intn(products)))
		fb.Cols[2].Floats = append(fb.Cols[2].Floats, float64(r.Intn(50000))/100)
	}
	fb.N = facts
	if err := db.Insert("facts", fb); err != nil {
		log.Fatal(err)
	}

	// A star join: only ~0.2% of products are 'rare', so the semi-join
	// filter eliminates ~99.8% of fact rows during the probe scan.
	query := `select count(*) as n, sum(f_amount) as revenue
	          from facts, products
	          where f_product = p_id and p_category = 'rare'`

	show := func(label string) {
		res, err := db.Query(query)
		if err != nil {
			log.Fatal(err)
		}
		st := db.LastQueryStats()
		fmt.Printf("%-28s n=%6d | fact rows scanned %8d | cache hits %d misses %d\n",
			label, res.ColByName("n").Ints[0], st.RowsScanned, st.CacheHits, st.CacheMisses)
	}

	show("cold run")
	show("warm run (join index)")
	show("warm again")

	// DML on the BUILD side invalidates the semi-join entry: the set of
	// qualifying join partners changed.
	pred, err := predcache.ParseWhere("p_id = 0")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := db.DeleteWhere("products", pred); err != nil {
		log.Fatal(err)
	}
	fmt.Println("-- deleted product 0 (a 'rare' product, build side) --")
	show("after build-side delete")
	show("re-warmed")

	cs := db.CacheStats()
	fmt.Printf("\ncache: %d entries, %d invalidations (the stale join entry), %d hits total\n",
		cs.Entries, cs.Invalidations, cs.Hits)
}
