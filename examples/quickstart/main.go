// Quickstart: create a table, repeat a filtered query, and watch the
// predicate cache cut the scan work on the second run.
package main

import (
	"fmt"
	"log"
	"math/rand"

	predcache "github.com/predcache/predcache"
)

func main() {
	db := predcache.Open()

	schema := predcache.Schema{
		{Name: "id", Type: predcache.Int64},
		{Name: "category", Type: predcache.String},
		{Name: "amount", Type: predcache.Float64},
		{Name: "sold", Type: predcache.Date},
	}
	if err := db.CreateTable("sales", schema); err != nil {
		log.Fatal(err)
	}

	// Load one million rows; categories arrive in bursts so qualifying rows
	// cluster into blocks (the situation predicate caching exploits).
	r := rand.New(rand.NewSource(7))
	batch := predcache.NewBatch(schema)
	const rows = 1_000_000
	for i := 0; i < rows; i++ {
		batch.Cols[0].Ints = append(batch.Cols[0].Ints, int64(i))
		burst := (i / 5000) % 20
		batch.Cols[1].Strings = append(batch.Cols[1].Strings, fmt.Sprintf("cat-%02d", burst))
		batch.Cols[2].Floats = append(batch.Cols[2].Floats, float64(r.Intn(100000))/100)
		batch.Cols[3].Ints = append(batch.Cols[3].Ints, int64(20000+i/2800))
	}
	batch.N = rows
	if err := db.Insert("sales", batch); err != nil {
		log.Fatal(err)
	}

	query := `select count(*) as n, sum(amount) as total
	          from sales where category = 'cat-07' and amount > 500`

	for run := 1; run <= 3; run++ {
		res, err := db.Query(query)
		if err != nil {
			log.Fatal(err)
		}
		st := db.LastQueryStats()
		fmt.Printf("run %d: n=%d total=%.2f | rows scanned %8d | blocks accessed %6d | cache hits %d\n",
			run, res.ColByName("n").Ints[0], res.ColByName("total").Floats[0],
			st.RowsScanned, st.BlocksAccessed, st.CacheHits)
	}

	cs := db.CacheStats()
	fmt.Printf("\npredicate cache: %d entries, %d bytes, %d hits / %d misses\n",
		cs.Entries, cs.MemBytes, cs.Hits, cs.Misses)
	fmt.Println("the second and third runs scan only the cached qualifying ranges")
}
