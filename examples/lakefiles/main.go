// Lakefiles: the file-granularity predicate cache of §4.5, driven through
// the lake API directly. A warehouse reads an Iceberg-style table that
// other engines write: ingest jobs commit data files, retention jobs drop
// old ones. The cache indexes qualifying files and the row ranges inside
// them; commits never invalidate it — additions are scanned once and merged
// in, removals simply disappear from the manifest.
package main

import (
	"fmt"
	"log"
	"math/rand"

	predcache "github.com/predcache/predcache"
)

var schema = predcache.Schema{
	{Name: "sensor", Type: predcache.String},
	{Name: "reading", Type: predcache.Float64},
	{Name: "hour", Type: predcache.Int64},
}

// commitFile models one ingest job's output: a file of readings for one
// hour across all sensors.
func commitFile(t *predcache.LakeTable, hour int, r *rand.Rand) uint64 {
	b := predcache.NewBatch(schema)
	for i := 0; i < 20000; i++ {
		sensor := fmt.Sprintf("s-%03d", r.Intn(200))
		reading := r.Float64() * 100
		if r.Intn(5000) == 0 {
			reading += 1000 // rare anomaly
		}
		b.Cols[0].Strings = append(b.Cols[0].Strings, sensor)
		b.Cols[1].Floats = append(b.Cols[1].Floats, reading)
		b.Cols[2].Ints = append(b.Cols[2].Ints, int64(hour))
	}
	b.N = 20000
	id, err := t.AddFile(b)
	if err != nil {
		log.Fatal(err)
	}
	return id
}

func main() {
	tbl := predcache.NewLakeTable("readings", schema)
	cache := predcache.NewLakeCache(1024)
	r := rand.New(rand.NewSource(4))

	var fileIDs []uint64
	for hour := 0; hour < 24; hour++ {
		fileIDs = append(fileIDs, commitFile(tbl, hour, r))
	}

	const anomalies = "reading > 1000"
	report := func(label string) {
		matches, stats, err := predcache.LakeScan(tbl, anomalies, cache)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s anomalies=%3d | files visited %2d skipped %2d | rows scanned %7d\n",
			label, len(matches), stats.FilesVisited, stats.FilesSkipped, stats.RowsScanned)
	}

	report("cold scan (24 files)")
	report("warm scan")

	// Ingest keeps committing; only new files are scanned.
	for hour := 24; hour < 28; hour++ {
		fileIDs = append(fileIDs, commitFile(tbl, hour, r))
	}
	report("after 4 new commits")
	report("warm again")

	// Retention drops the oldest 6 files; nothing to invalidate.
	tbl.RemoveFiles(fileIDs[:6]...)
	report("after retention dropped 6 files")

	hits, misses, _ := cache.Stats()
	fmt.Printf("\ncache: %d entries, %d hits, %d misses across the session\n",
		cache.Entries(), hits, misses)
}
