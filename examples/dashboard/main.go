// Dashboard: the paper's motivating scenario (§1-§2). A dashboard re-issues
// the same parameterized reports while the table keeps ingesting new events
// and occasionally deletes old ones. A result cache would be invalidated by
// every ingest; the predicate cache stays online: inserts extend entries via
// per-slice watermarks (§4.3.1) and deletes are filtered by MVCC visibility
// (§4.3.2).
package main

import (
	"fmt"
	"log"
	"math/rand"

	predcache "github.com/predcache/predcache"
)

var schema = predcache.Schema{
	{Name: "id", Type: predcache.Int64},
	{Name: "region", Type: predcache.String},
	{Name: "status", Type: predcache.String},
	{Name: "amount", Type: predcache.Float64},
	{Name: "day", Type: predcache.Date},
}

// batchOf models one ingest job: events arrive region by region (each
// regional collector ships its own batch), so rows for one region are
// physically clustered — the layout real ingest pipelines produce and the
// one block-granular caching exploits.
func batchOf(start, n int, day int64, r *rand.Rand) *predcache.Batch {
	b := predcache.NewBatch(schema)
	regions := []string{"us-east", "us-west", "eu", "apac"}
	per := n / len(regions)
	for i := 0; i < n; i++ {
		region := regions[min(i/per, len(regions)-1)]
		status := "ok"
		// Failures come in incident bursts, not uniformly.
		if (start+i)/2000%25 == 0 && r.Intn(3) == 0 {
			status = "failed"
		}
		b.Cols[0].Ints = append(b.Cols[0].Ints, int64(start+i))
		b.Cols[1].Strings = append(b.Cols[1].Strings, region)
		b.Cols[2].Strings = append(b.Cols[2].Strings, status)
		b.Cols[3].Floats = append(b.Cols[3].Floats, float64(r.Intn(50000))/100)
		b.Cols[4].Ints = append(b.Cols[4].Ints, day)
	}
	b.N = n
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func main() {
	db := predcache.Open()
	if err := db.CreateTable("events", schema); err != nil {
		log.Fatal(err)
	}
	r := rand.New(rand.NewSource(42))

	// Historical load.
	next := 0
	day := int64(20000)
	if err := db.Insert("events", batchOf(next, 400_000, day, r)); err != nil {
		log.Fatal(err)
	}
	next += 400_000

	reports := []string{
		"select count(*) as failures from events where status = 'failed' and region = 'eu'",
		"select sum(amount) as rev from events where region = 'us-east' and amount > 400",
		"select region, count(*) as n from events where status = 'failed' group by region order by n desc",
	}

	fmt.Println("tick | ingest | report scans (rows)          | cache hits/misses")
	for tick := 1; tick <= 8; tick++ {
		// Continuous ingestion: a fresh batch of events every tick.
		day++
		if err := db.Insert("events", batchOf(next, 50_000, day, r)); err != nil {
			log.Fatal(err)
		}
		next += 50_000

		// Occasionally purge failed events older than a week (delete) —
		// entries stay valid, the visibility check hides the rows.
		if tick == 5 {
			pred, err := predcache.ParseWhere(fmt.Sprintf("status = 'failed' and day < %d", day-3))
			if err != nil {
				log.Fatal(err)
			}
			n, err := db.DeleteWhere("events", pred)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("      (purged %d failed events — cache entries remain valid)\n", n)
		}

		var scans []int64
		for _, q := range reports {
			if _, err := db.Query(q); err != nil {
				log.Fatal(err)
			}
			scans = append(scans, db.LastQueryStats().RowsScanned)
		}
		cs := db.CacheStats()
		fmt.Printf("%4d | +50k   | %9d %9d %9d | %d/%d\n",
			tick, scans[0], scans[1], scans[2], cs.Hits, cs.Misses)
	}

	fmt.Println("\nafter warmup each report scans only its cached ranges plus the")
	fmt.Println("newly ingested tail; Extend advances the watermark every tick:")
	cs := db.CacheStats()
	fmt.Printf("cache: %d entries, %d extends, %d invalidations\n", cs.Entries, cs.Extends, cs.Invalidations)
}
