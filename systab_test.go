package predcache_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	predcache "github.com/predcache/predcache"
)

// one runs a query that must succeed and returns its result.
func one(t *testing.T, db *predcache.DB, q string) *predcache.Result {
	t.Helper()
	res, err := db.Query(q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	return res
}

// intCell reads an integer cell by column name.
func intCell(t *testing.T, res *predcache.Result, row int, col string) int64 {
	t.Helper()
	c := res.ColByName(col)
	if c == nil {
		t.Fatalf("no column %q in %v", col, res.ColumnNames())
	}
	if len(c.Ints) > row {
		return c.Ints[row]
	}
	return int64(c.Floats[row]) // aggregates may widen to float
}

func TestQueryLogCountsQueries(t *testing.T) {
	db := openWithData(t, 4000)
	queries := []string{
		"select count(*) from t where id < 100",
		"select count(*) from t where id < 100", // repeat: cache hit
		"select grp, sum(val) as s from t group by grp",
	}
	for _, q := range queries {
		one(t, db, q)
	}
	// Recording happens after execution, so the count query sees exactly the
	// prior queries, not itself.
	res := one(t, db, "select count(*) from pc.query_log")
	if got := res.Col(0).Ints[0]; got != int64(len(queries)) {
		t.Fatalf("pc.query_log count = %d, want %d", got, len(queries))
	}
	log := db.QueryLog()
	if len(log) != len(queries)+1 {
		t.Fatalf("QueryLog len = %d", len(log))
	}
	for i, q := range queries {
		if log[i].SQL != q {
			t.Errorf("log[%d].SQL = %q, want %q", i, log[i].SQL, q)
		}
		if log[i].Error != "" || log[i].Seq != int64(i) {
			t.Errorf("log[%d] = %+v", i, log[i])
		}
	}
	if log[1].CacheHits == 0 {
		t.Errorf("repeated query recorded no cache hit: %+v", log[1])
	}
	if log[0].RowsScanned == 0 || log[0].WallMicros < 0 {
		t.Errorf("first query missing counters: %+v", log[0])
	}
}

func TestQueryLogProjectionFilterAggregate(t *testing.T) {
	db := openWithData(t, 4000)
	one(t, db, "select count(*) from t where id < 50")
	one(t, db, "select count(*) from t where id < 50")
	one(t, db, "select count(*) from t where id < 75")

	// Projection + filter with an alias.
	res := one(t, db, "select q.query_text, q.cache_hits from pc.query_log q where q.cache_hits > 0")
	if res.NumRows() != 1 {
		t.Fatalf("cache-hit queries = %d, want 1\n%s", res.NumRows(), res.Format(10))
	}
	qt := res.ColByName("q.query_text")
	if got := qt.Dict.Value(qt.Ints[0]); !strings.Contains(got, "id < 50") {
		t.Errorf("hit query text = %q", got)
	}

	// Aggregate over the log.
	res = one(t, db, "select count(*) as n, sum(result_rows) as r from pc.query_log where error = ''")
	if intCell(t, res, 0, "n") != 4 { // 3 workload queries + the projection query above
		t.Fatalf("aggregate n = %d\n%s", intCell(t, res, 0, "n"), res.Format(10))
	}

	// ORDER BY + LIMIT over the log.
	res = one(t, db, "select seq from pc.query_log order by seq desc limit 2")
	if res.NumRows() != 2 || intCell(t, res, 0, "seq") <= intCell(t, res, 1, "seq") {
		t.Fatalf("order by seq desc wrong:\n%s", res.Format(10))
	}
}

func TestQueryLogJoinAgainstUserTable(t *testing.T) {
	db := openWithData(t, 2000)
	one(t, db, "select count(*) from t where id < 10")
	one(t, db, "select count(*) from t where id < 20")

	labels := predcache.Schema{
		{Name: "qseq", Type: predcache.Int64},
		{Name: "label", Type: predcache.String},
	}
	if err := db.CreateTable("qlabels", labels); err != nil {
		t.Fatal(err)
	}
	batch := predcache.NewBatch(labels)
	batch.Cols[0].Ints = []int64{0, 1}
	batch.Cols[1].Strings = []string{"first", "second"}
	batch.N = 2
	if err := db.Insert("qlabels", batch); err != nil {
		t.Fatal(err)
	}

	res := one(t, db, `select q.seq, l.label, q.result_rows from pc.query_log q, qlabels l where q.seq = l.qseq order by q.seq`)
	if res.NumRows() != 2 {
		t.Fatalf("join rows = %d\n%s", res.NumRows(), res.Format(10))
	}
	lbl := res.ColByName("l.label")
	if lbl.Dict.Value(lbl.Ints[0]) != "first" || lbl.Dict.Value(lbl.Ints[1]) != "second" {
		t.Fatalf("join labels wrong:\n%s", res.Format(10))
	}
}

func TestCacheSystemTables(t *testing.T) {
	db := openWithData(t, 4000)
	one(t, db, "select count(*) from t where id between 100 and 400")
	one(t, db, "select count(*) from t where id between 100 and 400")

	res := one(t, db, "select table_name, hits, mem_bytes, last_hit_micros from pc.cache_entries")
	if res.NumRows() < 1 {
		t.Fatal("pc.cache_entries empty after cached scan")
	}
	if got := res.ColByName("table_name").Dict.Value(res.ColByName("table_name").Ints[0]); got != "t" {
		t.Errorf("entry table = %q", got)
	}
	if intCell(t, res, 0, "hits") < 1 || intCell(t, res, 0, "mem_bytes") <= 0 || intCell(t, res, 0, "last_hit_micros") <= 0 {
		t.Errorf("entry counters wrong:\n%s", res.Format(10))
	}

	res = one(t, db, "select * from pc.cache_stats")
	if res.NumRows() != 1 || intCell(t, res, 0, "hits") < 1 || intCell(t, res, 0, "inserts") < 1 {
		t.Fatalf("pc.cache_stats wrong:\n%s", res.Format(5))
	}
	if intCell(t, res, 0, "enabled") != 1 {
		t.Errorf("cache not reported enabled")
	}
	// mem_bytes must agree with the entry sum (the satellite invariant,
	// observed through SQL).
	sum := one(t, db, "select sum(mem_bytes) as s from pc.cache_entries")
	stats := one(t, db, "select mem_bytes from pc.cache_stats")
	if intCell(t, sum, 0, "s") != intCell(t, stats, 0, "mem_bytes") {
		t.Errorf("cache_stats.mem_bytes %d != sum(cache_entries.mem_bytes) %d",
			intCell(t, stats, 0, "mem_bytes"), intCell(t, sum, 0, "s"))
	}
}

func TestTableStorageSystemTable(t *testing.T) {
	db := openWithData(t, 3000)
	res := one(t, db, "select column_name, blocks, payload_bytes from pc.table_storage where table_name = 't' order by column_name")
	if res.NumRows() != 4 {
		t.Fatalf("pc.table_storage rows = %d, want 4 columns of t\n%s", res.NumRows(), res.Format(10))
	}
	for i := 0; i < res.NumRows(); i++ {
		if intCell(t, res, i, "blocks") <= 0 || intCell(t, res, i, "payload_bytes") <= 0 {
			t.Errorf("row %d has empty storage:\n%s", i, res.Format(10))
		}
	}
}

func TestMetricsSystemTable(t *testing.T) {
	m := predcache.NewMetrics()
	db := predcache.Open(predcache.WithSlices(2), predcache.WithMetrics(m))
	if err := db.CreateTable("t", predcache.Schema{{Name: "x", Type: predcache.Int64}}); err != nil {
		t.Fatal(err)
	}
	b := predcache.NewBatch(predcache.Schema{{Name: "x", Type: predcache.Int64}})
	b.Cols[0].Ints = []int64{1, 2, 3}
	b.N = 3
	if err := db.Insert("t", b); err != nil {
		t.Fatal(err)
	}
	one(t, db, "select count(*) from t where x > 1")
	res := one(t, db, "select value from pc.metrics where name = 'predcache_queries_total'")
	if res.NumRows() != 1 || res.Col(0).Floats[0] < 1 {
		t.Fatalf("queries_total missing:\n%s", res.Format(10))
	}
	// Without EnableMetrics the table is empty, not an error.
	db2 := predcache.Open()
	res = one(t, db2, "select count(*) from pc.metrics")
	if res.Col(0).Ints[0] != 0 {
		t.Fatalf("pc.metrics non-empty without a registry")
	}
}

func TestQueryLogRecordsErrors(t *testing.T) {
	db := openWithData(t, 100)
	if _, err := db.Query("select nonexistent from t"); err == nil {
		t.Fatal("expected plan error")
	}
	if _, err := db.Query("selec broken"); err == nil {
		t.Fatal("expected parse error")
	}
	log := db.QueryLog()
	if len(log) != 2 {
		t.Fatalf("log len = %d", len(log))
	}
	for i, rec := range log {
		if rec.Error == "" {
			t.Errorf("log[%d] lost the error: %+v", i, rec)
		}
	}
	res := one(t, db, "select count(*) as n from pc.query_log where error = ''")
	if intCell(t, res, 0, "n") != 0 {
		t.Fatal("failed queries recorded as successes")
	}
}

func TestQueryLogCapacityAndDisable(t *testing.T) {
	small := predcache.Open(predcache.WithQueryLogCapacity(3), predcache.WithSlices(1))
	if err := small.CreateTable("u", predcache.Schema{{Name: "x", Type: predcache.Int64}}); err != nil {
		t.Fatal(err)
	}
	b := predcache.NewBatch(predcache.Schema{{Name: "x", Type: predcache.Int64}})
	b.Cols[0].Ints = []int64{1}
	b.N = 1
	if err := small.Insert("u", b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		one(t, small, "select count(*) from u")
	}
	log := small.QueryLog()
	if len(log) != 3 {
		t.Fatalf("bounded log len = %d, want 3", len(log))
	}
	if log[0].Seq != 4 {
		t.Fatalf("oldest retained seq = %d, want 4", log[0].Seq)
	}

	off := predcache.Open(predcache.WithQueryLogCapacity(0), predcache.WithSlices(1))
	if err := off.CreateTable("u", predcache.Schema{{Name: "x", Type: predcache.Int64}}); err != nil {
		t.Fatal(err)
	}
	if err := off.Insert("u", b); err != nil {
		t.Fatal(err)
	}
	one(t, off, "select count(*) from u")
	if got := off.QueryLog(); got != nil {
		t.Fatalf("disabled log returned %d records", len(got))
	}
	res := one(t, off, "select count(*) from pc.query_log")
	if res.Col(0).Ints[0] != 0 {
		t.Fatal("pc.query_log non-empty with recording disabled")
	}
}

func TestDumpQueryLog(t *testing.T) {
	db := openWithData(t, 100)
	one(t, db, "select count(*) from t")
	one(t, db, "select count(*) from t where id < 10")
	var buf bytes.Buffer
	if err := db.DumpQueryLog(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	n := 0
	for sc.Scan() {
		var rec predcache.QueryRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d: %v", n, err)
		}
		if rec.Seq != int64(n) {
			t.Errorf("line %d: seq %d", n, rec.Seq)
		}
		n++
	}
	if n != 2 {
		t.Fatalf("dumped %d lines", n)
	}
}

func TestCreateTableRejectsSystemSchema(t *testing.T) {
	db := predcache.Open()
	err := db.CreateTable("pc.mine", predcache.Schema{{Name: "x", Type: predcache.Int64}})
	if err == nil || !strings.Contains(err.Error(), "reserved") {
		t.Fatalf("pc. table creation: %v", err)
	}
	if names := db.SystemTableNames(); len(names) != 12 {
		t.Fatalf("system tables: %v", names)
	}
}

func TestExplainVirtualScan(t *testing.T) {
	db := openWithData(t, 100)
	res := one(t, db, "explain select count(*) from pc.query_log where cache_hits > 0")
	text := res.Format(50)
	if !strings.Contains(text, "VirtualScan pc.query_log") {
		t.Fatalf("explain missing VirtualScan:\n%s", text)
	}
	if _, err := db.ExplainAnalyze("select count(*) from pc.cache_stats"); err != nil {
		t.Fatalf("explain analyze over system table: %v", err)
	}
}

func TestResultStatsAttached(t *testing.T) {
	db := openWithData(t, 4000)
	res := one(t, db, "select count(*) from t where id < 500")
	if res.Stats.RowsQualified != 500 {
		t.Fatalf("Result.Stats.RowsQualified = %d, want 500", res.Stats.RowsQualified)
	}
	if res.Stats != db.LastQueryStats() {
		t.Fatalf("Result.Stats diverges from LastQueryStats")
	}
	if res.Wall <= 0 {
		t.Fatalf("Result.Wall = %v", res.Wall)
	}
}

// TestResultStatsRace is the satellite regression for the LastQueryStats
// race: two goroutines with different filters must each see their own
// counters on their own Result, regardless of interleaving. Run with -race.
func TestResultStatsRace(t *testing.T) {
	db := openWithData(t, 4000)
	// Disable the predicate cache so RowsQualified is deterministic per
	// filter on every iteration.
	db.PredicateCache().SetEnabled(false)
	var wg sync.WaitGroup
	run := func(query string, wantQualified int64) {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			res, err := db.Query(query)
			if err != nil {
				t.Errorf("%s: %v", query, err)
				return
			}
			if res.Stats.RowsQualified != wantQualified {
				t.Errorf("%s: RowsQualified = %d, want %d", query, res.Stats.RowsQualified, wantQualified)
				return
			}
		}
	}
	wg.Add(2)
	go run("select count(*) from t where id < 100", 100)
	go run("select count(*) from t where id < 2000", 2000)
	wg.Wait()
}
