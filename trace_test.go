package predcache_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	predcache "github.com/predcache/predcache"
)

// strCell reads a string cell by column name.
func strCell(t *testing.T, res *predcache.Result, row int, col string) string {
	t.Helper()
	c := res.ColByName(col)
	if c == nil {
		t.Fatalf("no column %q in %v", col, res.ColumnNames())
	}
	return c.Dict.Value(c.Ints[row])
}

// TestErrorTraceRetained is the error-path acceptance check: a query that
// fails during execution must land in BOTH pc.query_log and pc.traces, with
// its partial spans finalized and the error recorded.
func TestErrorTraceRetained(t *testing.T) {
	db := openWithData(t, 1000)
	one(t, db, "select count(*) from t where id < 10")

	// Plan-time failure: unknown table.
	if _, err := db.Query("select * from nosuch"); err == nil {
		t.Fatal("expected an error")
	}
	// Execution would never start for the above; also provoke a parse error.
	if _, err := db.Query("select from from from"); err == nil {
		t.Fatal("expected a parse error")
	}

	// Both failures are in the query log...
	res := one(t, db, "select count(*) as n from pc.query_log where error <> ''")
	if n := intCell(t, res, 0, "n"); n != 2 {
		t.Fatalf("failed queries in pc.query_log = %d, want 2", n)
	}
	// ...and both partial traces were retained with reason 'error'.
	res = one(t, db, "select count(*) as n from pc.traces where reason = 'error'")
	if n := intCell(t, res, 0, "n"); n != 2 {
		t.Fatalf("error traces in pc.traces = %d, want 2", n)
	}
	// The retained error trace joins pc.query_log by ID and its spans are
	// all finalized (no zero durations).
	res = one(t, db, `select s.trace_id, s.name, s.dur_us from pc.trace_spans s, pc.query_log q
		where s.trace_id = q.seq and q.error <> ''`)
	if res.NumRows() == 0 {
		t.Fatal("no spans for failed queries via pc.trace_spans JOIN pc.query_log")
	}
	for i := 0; i < res.NumRows(); i++ {
		if d := intCell(t, res, i, "s.dur_us"); d < 0 {
			t.Fatalf("span %d has negative duration", i)
		}
	}
	// Go-side drill-down agrees and carries the error attribute.
	var errTrace *predcache.RetainedTrace
	for _, rt := range db.RetainedTraces() {
		if rt.Reason == "error" && strings.Contains(rt.SQL, "nosuch") {
			errTrace = rt
		}
	}
	if errTrace == nil {
		t.Fatal("plan-failure trace not retained")
	}
	if errTrace.Error == "" || len(errTrace.Spans) == 0 {
		t.Fatalf("error trace incomplete: %+v", errTrace)
	}
	if rendered := predcache.RenderTrace(errTrace); !strings.Contains(rendered, "error=") {
		t.Fatalf("rendered error trace missing error attr:\n%s", rendered)
	}
}

// TestSlowTraceRetained drives a query over a tiny slow threshold and
// retrieves its span tree through the SQL surface.
func TestSlowTraceRetained(t *testing.T) {
	// Everything is "slow" at 1ns, so every trace is retained as slow.
	db2 := predcache.Open(predcache.WithSlowQueryThreshold(time.Nanosecond))
	schema := predcache.Schema{
		{Name: "id", Type: predcache.Int64},
		{Name: "val", Type: predcache.Int64},
	}
	if err := db2.CreateTable("t", schema); err != nil {
		t.Fatal(err)
	}
	b := predcache.NewBatch(schema)
	for i := 0; i < 1000; i++ {
		b.Cols[0].Ints = append(b.Cols[0].Ints, int64(i))
		b.Cols[1].Ints = append(b.Cols[1].Ints, int64(i%7))
	}
	b.N = 1000
	if err := db2.Insert("t", b); err != nil {
		t.Fatal(err)
	}
	one(t, db2, "select count(*) from t where id < 500")

	res := one(t, db2, `select s.name, s.dur_us, q.wall_us from pc.trace_spans s, pc.query_log q
		where s.trace_id = q.seq and q.slow = 1`)
	if res.NumRows() == 0 {
		t.Fatal("slow query's spans not retrievable via pc.trace_spans JOIN pc.query_log")
	}
	names := map[string]bool{}
	for i := 0; i < res.NumRows(); i++ {
		names[strCell(t, res, i, "s.name")] = true
	}
	for _, phase := range []string{"parse", "plan", "execute"} {
		if !names[phase] {
			t.Errorf("slow trace missing %q phase span (got %v)", phase, names)
		}
	}
	res = one(t, db2, "select trace_id, reason from pc.traces order by trace_id limit 1")
	if got := strCell(t, res, 0, "reason"); got != "slow" {
		t.Fatalf("retention reason = %q, want slow", got)
	}
}

// TestTraceRetentionBounded is the 100k-query stress acceptance check:
// retained spans never exceed the configured budget.
func TestTraceRetentionBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-query stress")
	}
	const budget = 64
	db := predcache.Open(
		predcache.WithSlices(1),
		predcache.WithParallelScans(false),
		predcache.WithTraceRetention(predcache.TraceRetentionConfig{
			SpanBudget: budget,
			ShapeQuota: 2,
			Slow:       50 * time.Millisecond,
		}),
	)
	schema := predcache.Schema{{Name: "id", Type: predcache.Int64}}
	if err := db.CreateTable("t", schema); err != nil {
		t.Fatal(err)
	}
	b := predcache.NewBatch(schema)
	for i := 0; i < 64; i++ {
		b.Cols[0].Ints = append(b.Cols[0].Ints, int64(i))
	}
	b.N = 64
	if err := db.Insert("t", b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100_000; i++ {
		q := fmt.Sprintf("select count(*) from t where id = %d", i%64)
		if i%1000 == 999 {
			// Sprinkle failures so the always-admit path churns too.
			_, _ = db.Query("select count(*) from t where bogus = 1")
			continue
		}
		if _, err := db.Query(q); err != nil {
			t.Fatal(err)
		}
		if i%10_000 == 0 {
			if st := db.TraceStats(); st.SpanCount > st.SpanBudget {
				t.Fatalf("iteration %d: %d spans retained, budget %d", i, st.SpanCount, st.SpanBudget)
			}
		}
	}
	st := db.TraceStats()
	if st.SpanCount > budget {
		t.Fatalf("final span count %d exceeds budget %d", st.SpanCount, budget)
	}
	if st.Offered < 99_000 || st.Kept == 0 || st.Evicted == 0 {
		t.Fatalf("stress stats implausible: %+v", st)
	}
	// The SQL surface agrees with the Go accessor.
	res := one(t, db, "select sum(spans) as s from pc.traces")
	if got := intCell(t, res, 0, "s"); got > budget {
		t.Fatalf("pc.traces reports %d spans, budget %d", got, budget)
	}
}

// TestSLOTableAndCheck exercises pc.slo and the CheckSLO API end to end,
// including the exemplar join back to pc.traces.
func TestSLOTableAndCheck(t *testing.T) {
	db := openWithData(t, 4000)
	one(t, db, "select count(*) from t where id = 17") // agg (count)
	one(t, db, "select id from t where id = 17")       // point
	one(t, db, "select id from t where id < 25")       // range
	if _, err := db.UpdateWhere("t", mustPred(t, "id = 3"), func(b *predcache.Batch) {}); err != nil {
		t.Fatal(err)
	}

	res := one(t, db, "select query_class, cache_outcome, sample_count from pc.slo where sample_count > 0")
	classes := map[string]bool{}
	for i := 0; i < res.NumRows(); i++ {
		classes[strCell(t, res, i, "query_class")] = true
	}
	for _, want := range []string{"point", "range", "agg", "dml"} {
		if !classes[want] {
			t.Errorf("pc.slo missing populated class %q (got %v)", want, classes)
		}
	}

	// Every populated non-DML class carries an exemplar that joins a
	// retained trace.
	res = one(t, db, `select s.query_class, tr.query_text from pc.slo s, pc.traces tr
		where s.exemplar_trace_id = tr.trace_id and s.sample_count > 0`)
	if res.NumRows() == 0 {
		t.Fatal("no pc.slo exemplar joins a retained trace")
	}

	// CheckSLO: an absurdly tight objective must be violated and carry the
	// exemplar; a loose one must hold.
	if v := db.CheckSLO([]predcache.SLOTarget{{Class: "*", P99: time.Nanosecond}}); len(v) == 0 {
		t.Fatal("1ns p99 objective should be violated")
	}
	if v := db.CheckSLO([]predcache.SLOTarget{{Class: "*", P99: time.Hour}}); len(v) != 0 {
		t.Fatalf("1h p99 objective should hold, got %+v", v)
	}
	reports := db.SLOReports()
	if len(reports) != 8 {
		t.Fatalf("SLOReports rows = %d, want 8", len(reports))
	}
}

// TestRuntimeTable exercises the sampler lifecycle and pc.runtime.
func TestRuntimeTable(t *testing.T) {
	db := openWithData(t, 100)
	// Touch the scratch pool so the sample's pool counters are non-zero.
	one(t, db, "select count(*) from t where id < 50")
	// Without a sampler the table answers with a single live sample.
	res := one(t, db, "select count(*) as n from pc.runtime")
	if n := intCell(t, res, 0, "n"); n != 1 {
		t.Fatalf("pc.runtime without a sampler = %d rows, want 1 live sample", n)
	}
	db.StartRuntimeSampler(time.Hour) // samples once immediately
	defer db.StopRuntimeSampler()
	res = one(t, db, "select goroutines, heap_alloc_bytes, pool_gets from pc.runtime")
	if res.NumRows() != 1 {
		t.Fatalf("pc.runtime rows = %d, want 1", res.NumRows())
	}
	if g := intCell(t, res, 0, "goroutines"); g <= 0 {
		t.Fatalf("goroutines = %d", g)
	}
	if pg := intCell(t, res, 0, "pool_gets"); pg <= 0 {
		t.Fatalf("pool_gets = %d: scratch-pool counters not wired", pg)
	}
	samples := db.RuntimeSamples()
	if len(samples) != 1 {
		t.Fatalf("RuntimeSamples = %d", len(samples))
	}
	db.StopRuntimeSampler()
	// Stopping twice and sampling without a collector must be safe.
	db.StopRuntimeSampler()
	if s := db.SampleRuntime(); s.Goroutines <= 0 {
		t.Fatalf("standalone sample implausible: %+v", s)
	}
}

// TestQueryLogging asserts the slog lines carry query/trace correlation.
func TestQueryLogging(t *testing.T) {
	var buf bytes.Buffer
	db := predcache.Open(
		predcache.WithSlowQueryThreshold(time.Nanosecond),
		predcache.WithLogger(predcache.NewJSONLogger(&buf, 0)),
	)
	schema := predcache.Schema{{Name: "id", Type: predcache.Int64}}
	if err := db.CreateTable("t", schema); err != nil {
		t.Fatal(err)
	}
	b := predcache.NewBatch(schema)
	b.Cols[0].Ints = append(b.Cols[0].Ints, 1)
	b.N = 1
	if err := db.Insert("t", b); err != nil {
		t.Fatal(err)
	}
	one(t, db, "select count(*) from t")                        // slow at 1ns: warn line
	if _, err := db.Query("select * from nosuch"); err == nil { // error line
		t.Fatal("expected error")
	}
	if err := db.Vacuum("t"); err != nil { // lifecycle line
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"msg":"slow query"`, `"msg":"query failed"`, `"msg":"vacuum"`, `"trace_id"`, `"query_id"`} {
		if !strings.Contains(out, want) {
			t.Errorf("log output missing %s:\n%s", want, out)
		}
	}
	// The trace_id in the failure line resolves against the retained trace.
	var failed *predcache.RetainedTrace
	for _, rt := range db.RetainedTraces() {
		if rt.Error != "" {
			failed = rt
		}
	}
	if failed == nil {
		t.Fatal("failed query's trace not retained")
	}
	if !strings.Contains(out, fmt.Sprintf(`"trace_id":%d`, failed.TraceID)) {
		t.Errorf("log lines never mention the failed trace id %d:\n%s", failed.TraceID, out)
	}
}
