package systab

import (
	"fmt"
	"time"

	"github.com/predcache/predcache/internal/engine"
	"github.com/predcache/predcache/internal/storage"
)

// builder accumulates rows for a snapshot relation, one typed column per
// schema entry. System-table snapshots are cold paths (they materialize on
// every reference), so the builder favors clarity over allocation economy.
type builder struct {
	schema storage.Schema
	cols   []engine.RelCol
}

func newBuilder(schema storage.Schema) *builder {
	b := &builder{schema: schema, cols: make([]engine.RelCol, len(schema))}
	for i, def := range schema {
		b.cols[i] = engine.RelCol{Name: def.Name, Type: def.Type}
		if def.Type == storage.String {
			b.cols[i].Dict = storage.NewDict()
		}
	}
	return b
}

// row appends one row; vals must match the schema in order. Accepted value
// kinds per column type: Int64 takes int64/int/uint64, Float64 takes
// float64, String takes string, Bool takes bool, Date takes int64 day
// numbers. A mismatch is a provider bug and panics.
func (b *builder) row(vals ...any) {
	if len(vals) != len(b.schema) {
		panic(fmt.Sprintf("systab: row has %d values, schema has %d columns", len(vals), len(b.schema)))
	}
	for i, v := range vals {
		col := &b.cols[i]
		switch b.schema[i].Type {
		case storage.Float64:
			col.Floats = append(col.Floats, v.(float64))
		case storage.String:
			col.Ints = append(col.Ints, col.Dict.Code(v.(string)))
		case storage.Bool:
			n := int64(0)
			if v.(bool) {
				n = 1
			}
			col.Ints = append(col.Ints, n)
		default: // Int64, Date
			switch t := v.(type) {
			case int64:
				col.Ints = append(col.Ints, t)
			case int:
				col.Ints = append(col.Ints, int64(t))
			case uint64:
				col.Ints = append(col.Ints, int64(t))
			default:
				panic(fmt.Sprintf("systab: column %s: unsupported value %T", b.schema[i].Name, v))
			}
		}
	}
}

func (b *builder) relation() (*engine.Relation, error) {
	return engine.NewRelation(b.cols)
}

// micros renders a timestamp as microseconds since the Unix epoch; the zero
// time maps to 0 ("never").
func micros(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixMicro()
}
