package systab

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/predcache/predcache/internal/storage"
)

// QueryRecord is one row of pc.query_log: everything the engine knows about
// a finished query. Durations are microseconds (analytic queries at this
// scale run 10µs–10s; microseconds keep the integers human-readable while
// never rounding a kernel invocation to zero).
type QueryRecord struct {
	// Seq is a process-wide monotone sequence number assigned at record
	// time; queries appear in the log in completion order.
	Seq int64 `json:"seq"`
	// StartMicros is the query's wall-clock start, microseconds since the
	// Unix epoch.
	StartMicros int64 `json:"start_micros"`
	// SQL is the query text; empty for hand-built plans run through
	// DB.Run/RunCtx (the recorder never re-renders plan trees — keeping the
	// hot path allocation-free matters more than naming them).
	SQL string `json:"query_text,omitempty"`
	// Error is the failure message, empty on success. Parse and plan
	// failures are recorded too: a query history that silently drops the
	// queries that went wrong is useless for debugging.
	Error string `json:"error,omitempty"`

	WallMicros  int64 `json:"wall_us"`
	ParseMicros int64 `json:"parse_us"`
	PlanMicros  int64 `json:"plan_us"`
	ExecMicros  int64 `json:"exec_us"`

	// Rows is the result cardinality (0 on error).
	Rows int64 `json:"result_rows"`

	// Scan-level counters, aggregated over every scan in the plan.
	RowsScanned         int64 `json:"rows_scanned"`
	RowsQualified       int64 `json:"rows_qualified"`
	RowsDecoded         int64 `json:"rows_decoded"`
	BlocksAccessed      int64 `json:"blocks_accessed"`
	BlocksDecoded       int64 `json:"blocks_decoded"`
	BlocksKernel        int64 `json:"blocks_kernel"`
	BlocksPrunedZoneMap int64 `json:"blocks_pruned_zonemap"`
	BlocksPrunedCache   int64 `json:"blocks_pruned_cache"`
	CacheHits           int64 `json:"cache_hits"`
	CacheMisses         int64 `json:"cache_misses"`

	// Resource attribution (PR 9). CPUMicros is the query's attributed CPU:
	// exec wall time plus the busy time morsel workers contributed beyond the
	// coordinator's wait. AllocObjects/AllocBytes are runtime/metrics
	// allocation deltas taken around execution — exact under a serial
	// workload, an upper bound under concurrency (the counters are
	// process-wide).
	CPUMicros    int64 `json:"cpu_us"`
	AllocObjects int64 `json:"allocs"`
	AllocBytes   int64 `json:"alloc_bytes"`

	// ShapeID is the normalized-SQL shape identifier (obs.ShapeID); it joins
	// pc.query_shapes.shape_id and matches the query's shape pprof label.
	// Empty for hand-built plans run through DB.Run/RunCtx.
	ShapeID string `json:"shape_id,omitempty"`

	// Slow marks queries at or above the recorder's slow-query threshold.
	Slow bool `json:"slow,omitempty"`
}

// FillStats copies the scan counters out of a stats snapshot.
func (r *QueryRecord) FillStats(s storage.ScanStatsSnapshot) {
	r.RowsScanned = s.RowsScanned
	r.RowsQualified = s.RowsQualified
	r.RowsDecoded = s.RowsDecoded
	r.BlocksAccessed = s.BlocksAccessed
	r.BlocksDecoded = s.BlocksDecoded
	r.BlocksKernel = s.BlocksKernel
	r.BlocksPrunedZoneMap = s.BlocksSkipped
	r.BlocksPrunedCache = s.BlocksPrunedCache
	r.CacheHits = s.CacheHits
	r.CacheMisses = s.CacheMisses
}

// QueryRecorder is a bounded, always-on query history: a preallocated ring
// buffer of QueryRecords. Recording one query is a mutex acquire plus a
// struct copy — no allocation — so it stays on for every query, matching
// the paper's premise that the workload telemetry the cache learns from
// (§2) is collected continuously, not sampled.
//
// A nil *QueryRecorder is valid and drops every record (recording
// disabled).
type QueryRecorder struct {
	mu   sync.Mutex
	buf  []QueryRecord // ring storage, len == capacity
	next int           // guarded by mu; next write position
	n    int           // guarded by mu; number of valid records (≤ len(buf))
	seq  int64         // guarded by mu; total records ever, next Seq value
	slow time.Duration // immutable after NewQueryRecorder
}

// NewQueryRecorder creates a recorder holding the most recent capacity
// records. Queries with wall time ≥ slowThreshold are flagged slow
// (slowThreshold ≤ 0 flags none).
func NewQueryRecorder(capacity int, slowThreshold time.Duration) *QueryRecorder {
	if capacity <= 0 {
		return nil
	}
	return &QueryRecorder{buf: make([]QueryRecord, capacity), slow: slowThreshold}
}

// Record appends one query record, overwriting the oldest when full. It
// assigns rec.Seq and the Slow flag, and returns the assigned sequence
// number — the query's process-wide ID, which trace retention reuses as the
// trace ID so pc.traces joins pc.query_log on it. A nil recorder returns -1.
func (q *QueryRecorder) Record(rec QueryRecord) int64 {
	if q == nil {
		return -1
	}
	q.mu.Lock()
	rec.Seq = q.seq
	q.seq++
	rec.Slow = q.slow > 0 && time.Duration(rec.WallMicros)*time.Microsecond >= q.slow
	q.buf[q.next] = rec
	q.next = (q.next + 1) % len(q.buf)
	if q.n < len(q.buf) {
		q.n++
	}
	q.mu.Unlock()
	return rec.Seq
}

// Reserve allocates the next sequence number without writing a record. The
// attribution path reserves the query's ID up front so its pprof labels can
// carry the same query_id that pc.query_log will eventually show; the record
// itself lands later via RecordReserved. Reservations and completions both
// take q.mu, so under a serial workload seq order still equals log order. A
// nil recorder returns -1.
func (q *QueryRecorder) Reserve() int64 {
	if q == nil {
		return -1
	}
	q.mu.Lock()
	seq := q.seq
	q.seq++
	q.mu.Unlock()
	return seq
}

// RecordReserved appends a record whose Seq was pre-assigned by Reserve. It
// applies the Slow flag but leaves rec.Seq untouched, and returns it.
func (q *QueryRecorder) RecordReserved(rec QueryRecord) int64 {
	if q == nil {
		return -1
	}
	q.mu.Lock()
	rec.Slow = q.slow > 0 && time.Duration(rec.WallMicros)*time.Microsecond >= q.slow
	q.buf[q.next] = rec
	q.next = (q.next + 1) % len(q.buf)
	if q.n < len(q.buf) {
		q.n++
	}
	q.mu.Unlock()
	return rec.Seq
}

// SlowThreshold returns the recorder's slow-query threshold.
func (q *QueryRecorder) SlowThreshold() time.Duration {
	if q == nil {
		return 0
	}
	return q.slow
}

// Records returns the retained history, oldest first.
func (q *QueryRecorder) Records() []QueryRecord {
	if q == nil {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]QueryRecord, 0, q.n)
	start := q.next - q.n
	if start < 0 {
		start += len(q.buf)
	}
	for i := 0; i < q.n; i++ {
		out = append(out, q.buf[(start+i)%len(q.buf)])
	}
	return out
}

// Len returns the number of retained records.
func (q *QueryRecorder) Len() int {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// Total returns the number of records ever made (retained or overwritten);
// it is also the next sequence number.
func (q *QueryRecorder) Total() int64 {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.seq
}

// Capacity returns the ring size (0 for a nil recorder).
func (q *QueryRecorder) Capacity() int {
	if q == nil {
		return 0
	}
	return len(q.buf)
}

// WriteJSONL streams the retained history, oldest first, one JSON object
// per line.
func (q *QueryRecorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, rec := range q.Records() {
		if err := enc.Encode(&rec); err != nil {
			return fmt.Errorf("systab: write query log: %w", err)
		}
	}
	return nil
}
