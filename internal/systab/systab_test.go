package systab

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"github.com/predcache/predcache/internal/engine"
	"github.com/predcache/predcache/internal/obs"
	"github.com/predcache/predcache/internal/storage"
)

func TestRecorderRingSemantics(t *testing.T) {
	q := NewQueryRecorder(3, 0)
	if q.Capacity() != 3 || q.Len() != 0 || q.Total() != 0 {
		t.Fatalf("fresh recorder: cap=%d len=%d total=%d", q.Capacity(), q.Len(), q.Total())
	}
	for i := 0; i < 5; i++ {
		q.Record(QueryRecord{SQL: strings.Repeat("x", i+1)})
	}
	if q.Len() != 3 || q.Total() != 5 {
		t.Fatalf("after 5 records: len=%d total=%d", q.Len(), q.Total())
	}
	recs := q.Records()
	if len(recs) != 3 {
		t.Fatalf("got %d records", len(recs))
	}
	// Oldest-first, and the two oldest were overwritten.
	for i, want := range []int64{2, 3, 4} {
		if recs[i].Seq != want {
			t.Errorf("record %d: seq=%d want %d", i, recs[i].Seq, want)
		}
		if len(recs[i].SQL) != int(want)+1 {
			t.Errorf("record %d: sql=%q, want %d chars", i, recs[i].SQL, want+1)
		}
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var q *QueryRecorder // also what NewQueryRecorder(0, ...) returns
	if got := NewQueryRecorder(0, time.Second); got != nil {
		t.Fatalf("capacity 0 should disable recording")
	}
	q.Record(QueryRecord{SQL: "dropped"})
	if q.Records() != nil || q.Len() != 0 || q.Capacity() != 0 || q.Total() != 0 {
		t.Fatalf("nil recorder must be empty")
	}
	if err := q.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil WriteJSONL: %v", err)
	}
}

func TestRecorderSlowFlag(t *testing.T) {
	q := NewQueryRecorder(4, 5*time.Millisecond)
	q.Record(QueryRecord{WallMicros: 4_000})
	q.Record(QueryRecord{WallMicros: 5_000})
	recs := q.Records()
	if recs[0].Slow {
		t.Errorf("4ms flagged slow at 5ms threshold")
	}
	if !recs[1].Slow {
		t.Errorf("5ms not flagged slow at 5ms threshold")
	}
}

func TestRecorderWriteJSONL(t *testing.T) {
	q := NewQueryRecorder(8, 0)
	q.Record(QueryRecord{SQL: "select 1", Rows: 1, CacheHits: 2})
	q.Record(QueryRecord{Error: "boom"})
	var buf bytes.Buffer
	if err := q.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines []QueryRecord
	for sc.Scan() {
		var rec QueryRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d: %v", len(lines), err)
		}
		lines = append(lines, rec)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d lines", len(lines))
	}
	if lines[0].SQL != "select 1" || lines[0].Rows != 1 || lines[0].CacheHits != 2 {
		t.Errorf("first line mangled: %+v", lines[0])
	}
	if lines[1].Error != "boom" || lines[1].Seq != 1 {
		t.Errorf("second line mangled: %+v", lines[1])
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	vt := QueryLogTable(NewQueryRecorder(4, 0))
	if err := r.Register(vt); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(vt); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := r.Register(badName{}); err == nil {
		t.Fatal("non-pc name accepted")
	}
	got, ok := r.VirtualTable("pc.query_log")
	if !ok || got != vt {
		t.Fatalf("resolve failed: %v %v", got, ok)
	}
	if _, ok := r.VirtualTable("pc.nope"); ok {
		t.Fatal("resolved unknown table")
	}
	if names := r.Names(); len(names) != 1 || names[0] != "pc.query_log" {
		t.Fatalf("names = %v", names)
	}
}

// badName is a provider outside the pc schema, for Register validation.
type badName struct{ engine.VirtualTable }

func (badName) Name() string { return "not_system" }

func TestQueryLogTableSnapshot(t *testing.T) {
	rec := NewQueryRecorder(8, 0)
	rec.Record(QueryRecord{SQL: "select 1", Rows: 7, RowsScanned: 100, CacheMisses: 1})
	rec.Record(QueryRecord{SQL: "select 2", Error: "nope"})
	vt := QueryLogTable(rec)
	if vt.NumRows() != 2 {
		t.Fatalf("NumRows = %d", vt.NumRows())
	}
	rel, err := vt.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumRows() != 2 || rel.NumCols() != len(queryLogSchema) {
		t.Fatalf("snapshot %dx%d", rel.NumRows(), rel.NumCols())
	}
	if got := rel.ColByName("query_text").Dict.Value(rel.ColByName("query_text").Ints[0]); got != "select 1" {
		t.Errorf("query_text[0] = %q", got)
	}
	if got := rel.ColByName("result_rows").Ints[0]; got != 7 {
		t.Errorf("result_rows[0] = %d", got)
	}
	if got := rel.ColByName("error").Dict.Value(rel.ColByName("error").Ints[1]); got != "nope" {
		t.Errorf("error[1] = %q", got)
	}
	// Empty and nil recorders snapshot to zero rows with the full schema.
	for _, r := range []*QueryRecorder{NewQueryRecorder(2, 0), nil} {
		rel, err := QueryLogTable(r).Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if rel.NumRows() != 0 || rel.NumCols() != len(queryLogSchema) {
			t.Fatalf("empty snapshot %dx%d", rel.NumRows(), rel.NumCols())
		}
	}
}

func TestCacheTablesNilCache(t *testing.T) {
	rel, err := CacheEntriesTable(nil).Snapshot()
	if err != nil || rel.NumRows() != 0 {
		t.Fatalf("nil cache entries: %v rows=%d", err, rel.NumRows())
	}
	rel, err = CacheStatsTable(nil).Snapshot()
	if err != nil || rel.NumRows() != 1 {
		t.Fatalf("nil cache stats: %v rows=%d", err, rel.NumRows())
	}
	if rel.ColByName("enabled").Ints[0] != 0 {
		t.Fatal("nil cache reported enabled")
	}
}

func TestTableStorageSnapshot(t *testing.T) {
	cat := storage.NewCatalog()
	schema := storage.Schema{
		{Name: "id", Type: storage.Int64},
		{Name: "tag", Type: storage.String},
	}
	tbl, err := cat.CreateTable("t", schema, 2)
	if err != nil {
		t.Fatal(err)
	}
	batch := storage.NewBatch(schema)
	for i := 0; i < 2500; i++ {
		batch.Cols[0].Ints = append(batch.Cols[0].Ints, int64(i))
		batch.Cols[1].Strings = append(batch.Cols[1].Strings, "v")
		batch.N++
	}
	if err := tbl.Append(batch, cat.NextXID()); err != nil {
		t.Fatal(err)
	}
	vt := TableStorageTable(cat)
	if vt.NumRows() != 2 {
		t.Fatalf("NumRows = %d, want one per column", vt.NumRows())
	}
	rel, err := vt.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	rows := int64(0)
	for i := 0; i < rel.NumRows(); i++ {
		rows += rel.ColByName("result_rows").Ints[i]
		if name := rel.ColByName("table_name").Dict.Value(rel.ColByName("table_name").Ints[i]); name != "t" {
			t.Errorf("table_name[%d] = %q", i, name)
		}
	}
	if rows != 5000 { // 2500 values in each of 2 columns
		t.Errorf("total column values = %d, want 5000", rows)
	}
	// The string column carries dictionary bytes, the int column none.
	for i := 0; i < rel.NumRows(); i++ {
		cn := rel.ColByName("column_name").Dict.Value(rel.ColByName("column_name").Ints[i])
		dict := rel.ColByName("dict_bytes").Ints[i]
		if cn == "tag" && dict == 0 {
			t.Errorf("string column reports no dict bytes")
		}
		if cn == "id" && dict != 0 {
			t.Errorf("int column reports dict bytes")
		}
	}
}

func TestMetricsTableSnapshot(t *testing.T) {
	// Nil source and nil registry both snapshot empty.
	for _, src := range []func() *obs.Metrics{nil, func() *obs.Metrics { return nil }} {
		rel, err := MetricsTable(src).Snapshot()
		if err != nil || rel.NumRows() != 0 {
			t.Fatalf("empty metrics: %v rows=%d", err, rel.NumRows())
		}
	}
	m := obs.NewMetrics()
	m.NewCounter("test_total", "A counter.").Add(42)
	m.NewGauge("test_gauge", "A gauge.", func() float64 { return 1.5 })
	m.NewHistogram("test_seconds", "A histogram.", []float64{1}).Observe(0.5)
	vt := MetricsTable(func() *obs.Metrics { return m })
	// counter + gauge + histogram _count/_sum
	if vt.NumRows() != 4 {
		t.Fatalf("NumRows = %d", vt.NumRows())
	}
	rel, err := vt.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for i := 0; i < rel.NumRows(); i++ {
		name := rel.ColByName("name").Dict.Value(rel.ColByName("name").Ints[i])
		byName[name] = rel.ColByName("value").Floats[i]
	}
	if byName["test_total"] != 42 || byName["test_gauge"] != 1.5 ||
		byName["test_seconds_count"] != 1 || byName["test_seconds_sum"] != 0.5 {
		t.Fatalf("samples = %v", byName)
	}
}

func TestBuilderRejectsShape(t *testing.T) {
	b := newBuilder(storage.Schema{{Name: "a", Type: storage.Int64}})
	defer func() {
		if recover() == nil {
			t.Fatal("short row did not panic")
		}
	}()
	b.row()
}
