package systab

import (
	"github.com/predcache/predcache/internal/core"
	"github.com/predcache/predcache/internal/engine"
	"github.com/predcache/predcache/internal/obs"
	"github.com/predcache/predcache/internal/storage"
)

// Column names below avoid SQL reserved words (sql → query_text, rows →
// result_rows, table → table_name) so every pc.* column is directly
// referenceable without quoting, which the parser does not support.

var queryLogSchema = storage.Schema{
	{Name: "seq", Type: storage.Int64},
	{Name: "start_micros", Type: storage.Int64},
	{Name: "query_text", Type: storage.String},
	{Name: "error", Type: storage.String},
	{Name: "wall_us", Type: storage.Int64},
	{Name: "parse_us", Type: storage.Int64},
	{Name: "plan_us", Type: storage.Int64},
	{Name: "exec_us", Type: storage.Int64},
	{Name: "result_rows", Type: storage.Int64},
	{Name: "rows_scanned", Type: storage.Int64},
	{Name: "rows_qualified", Type: storage.Int64},
	{Name: "rows_decoded", Type: storage.Int64},
	{Name: "blocks_accessed", Type: storage.Int64},
	{Name: "blocks_decoded", Type: storage.Int64},
	{Name: "blocks_kernel", Type: storage.Int64},
	{Name: "blocks_pruned_zonemap", Type: storage.Int64},
	{Name: "blocks_pruned_cache", Type: storage.Int64},
	{Name: "cache_hits", Type: storage.Int64},
	{Name: "cache_misses", Type: storage.Int64},
	{Name: "cpu_us", Type: storage.Int64},
	{Name: "allocs", Type: storage.Int64},
	{Name: "alloc_bytes", Type: storage.Int64},
	{Name: "shape_id", Type: storage.String},
	{Name: "slow", Type: storage.Bool},
}

// queryLogTable exposes a QueryRecorder as pc.query_log.
type queryLogTable struct {
	rec *QueryRecorder
}

// QueryLogTable builds the pc.query_log provider over rec (which may be
// nil: the table then always snapshots empty).
func QueryLogTable(rec *QueryRecorder) engine.VirtualTable {
	return &queryLogTable{rec: rec}
}

func (t *queryLogTable) Name() string           { return "pc.query_log" }
func (t *queryLogTable) Schema() storage.Schema { return queryLogSchema }
func (t *queryLogTable) NumRows() int           { return t.rec.Len() }

func (t *queryLogTable) Snapshot() (*engine.Relation, error) {
	b := newBuilder(queryLogSchema)
	for _, r := range t.rec.Records() {
		b.row(r.Seq, r.StartMicros, r.SQL, r.Error,
			r.WallMicros, r.ParseMicros, r.PlanMicros, r.ExecMicros,
			r.Rows, r.RowsScanned, r.RowsQualified, r.RowsDecoded,
			r.BlocksAccessed, r.BlocksDecoded, r.BlocksKernel,
			r.BlocksPrunedZoneMap, r.BlocksPrunedCache,
			r.CacheHits, r.CacheMisses,
			r.CPUMicros, r.AllocObjects, r.AllocBytes, r.ShapeID, r.Slow)
	}
	return b.relation()
}

var cacheEntriesSchema = storage.Schema{
	{Name: "key", Type: storage.String},
	{Name: "table_name", Type: storage.String},
	{Name: "kind", Type: storage.String},
	{Name: "semijoin", Type: storage.Bool},
	{Name: "est_rows", Type: storage.Int64},
	{Name: "mem_bytes", Type: storage.Int64},
	{Name: "hits", Type: storage.Int64},
	{Name: "ranges", Type: storage.Int64},
	{Name: "slices", Type: storage.Int64},
	{Name: "epoch", Type: storage.Int64},
	{Name: "created_micros", Type: storage.Int64},
	{Name: "last_hit_micros", Type: storage.Int64},
}

// cacheEntriesTable exposes the predicate cache's entries as
// pc.cache_entries, in LRU order (most recently used first).
type cacheEntriesTable struct {
	cache *core.Cache
}

// CacheEntriesTable builds the pc.cache_entries provider (cache may be nil
// when the DB runs without a predicate cache; the table is then empty).
func CacheEntriesTable(cache *core.Cache) engine.VirtualTable {
	return &cacheEntriesTable{cache: cache}
}

func (t *cacheEntriesTable) Name() string           { return "pc.cache_entries" }
func (t *cacheEntriesTable) Schema() storage.Schema { return cacheEntriesSchema }

func (t *cacheEntriesTable) NumRows() int {
	if t.cache == nil {
		return 0
	}
	return t.cache.Stats().Entries
}

func (t *cacheEntriesTable) Snapshot() (*engine.Relation, error) {
	b := newBuilder(cacheEntriesSchema)
	if t.cache != nil {
		for _, e := range t.cache.Entries() {
			b.row(e.Key, e.Table, e.Kind.String(), e.SemiJoin,
				e.EstRows, e.MemBytes, e.Hits, e.Ranges, e.Slices,
				e.Epoch, micros(e.CreatedAt), micros(e.LastHit))
		}
	}
	return b.relation()
}

var cacheStatsSchema = storage.Schema{
	{Name: "hits", Type: storage.Int64},
	{Name: "misses", Type: storage.Int64},
	{Name: "inserts", Type: storage.Int64},
	{Name: "extends", Type: storage.Int64},
	{Name: "evictions", Type: storage.Int64},
	{Name: "invalidations", Type: storage.Int64},
	{Name: "admission_deferred", Type: storage.Int64},
	{Name: "admission_rejected", Type: storage.Int64},
	{Name: "entries", Type: storage.Int64},
	{Name: "mem_bytes", Type: storage.Int64},
	{Name: "enabled", Type: storage.Bool},
}

// cacheStatsTable exposes the cache counters as the single-row
// pc.cache_stats.
type cacheStatsTable struct {
	cache *core.Cache
}

// CacheStatsTable builds the pc.cache_stats provider (nil cache reports an
// all-zero, disabled row).
func CacheStatsTable(cache *core.Cache) engine.VirtualTable {
	return &cacheStatsTable{cache: cache}
}

func (t *cacheStatsTable) Name() string           { return "pc.cache_stats" }
func (t *cacheStatsTable) Schema() storage.Schema { return cacheStatsSchema }
func (t *cacheStatsTable) NumRows() int           { return 1 }

func (t *cacheStatsTable) Snapshot() (*engine.Relation, error) {
	b := newBuilder(cacheStatsSchema)
	var st core.Stats
	enabled := false
	if t.cache != nil {
		st = t.cache.Stats()
		enabled = t.cache.Enabled()
	}
	b.row(st.Hits, st.Misses, st.Inserts, st.Extends, st.Evictions,
		st.Invalidations, st.AdmissionDeferred, st.AdmissionRejected,
		st.Entries, st.MemBytes, enabled)
	return b.relation()
}

var tableStorageSchema = storage.Schema{
	{Name: "table_name", Type: storage.String},
	{Name: "column_name", Type: storage.String},
	{Name: "column_type", Type: storage.String},
	{Name: "result_rows", Type: storage.Int64},
	{Name: "blocks", Type: storage.Int64},
	{Name: "raw_blocks", Type: storage.Int64},
	{Name: "rle_blocks", Type: storage.Int64},
	{Name: "for_blocks", Type: storage.Int64},
	{Name: "tail_rows", Type: storage.Int64},
	{Name: "payload_bytes", Type: storage.Int64},
	{Name: "zonemap_bytes", Type: storage.Int64},
	{Name: "dict_bytes", Type: storage.Int64},
}

// tableStorageTable exposes the physical layout of every user table as
// pc.table_storage: one row per (table, column).
type tableStorageTable struct {
	cat *storage.Catalog
}

// TableStorageTable builds the pc.table_storage provider.
func TableStorageTable(cat *storage.Catalog) engine.VirtualTable {
	return &tableStorageTable{cat: cat}
}

func (t *tableStorageTable) Name() string           { return "pc.table_storage" }
func (t *tableStorageTable) Schema() storage.Schema { return tableStorageSchema }

func (t *tableStorageTable) NumRows() int {
	n := 0
	for _, name := range t.cat.TableNames() {
		if tbl, ok := t.cat.Table(name); ok {
			n += len(tbl.Schema())
		}
	}
	return n
}

func (t *tableStorageTable) Snapshot() (*engine.Relation, error) {
	b := newBuilder(tableStorageSchema)
	for _, name := range t.cat.TableNames() {
		tbl, ok := t.cat.Table(name)
		if !ok {
			continue // dropped between listing and lookup
		}
		for _, st := range tbl.StorageStats() {
			b.row(name, st.Column, st.Type.String(), st.Rows, st.Blocks,
				st.RawBlocks, st.RLEBlocks, st.FORBlocks, st.TailRows,
				st.PayloadBytes, st.ZoneMapBytes, st.DictBytes)
		}
	}
	return b.relation()
}

var metricsSchema = storage.Schema{
	{Name: "name", Type: storage.String},
	{Name: "metric_type", Type: storage.String},
	{Name: "value", Type: storage.Float64},
	{Name: "help", Type: storage.String},
}

// metricsTable exposes a metrics registry as pc.metrics, one flattened
// sample per row (histograms contribute _count and _sum rows).
type metricsTable struct {
	source func() *obs.Metrics
}

// MetricsTable builds the pc.metrics provider. source is read at snapshot
// time so the table follows EnableMetrics; a nil source or a nil registry
// snapshots empty.
func MetricsTable(source func() *obs.Metrics) engine.VirtualTable {
	return &metricsTable{source: source}
}

func (t *metricsTable) Name() string           { return "pc.metrics" }
func (t *metricsTable) Schema() storage.Schema { return metricsSchema }

func (t *metricsTable) registry() *obs.Metrics {
	if t.source == nil {
		return nil
	}
	return t.source()
}

func (t *metricsTable) NumRows() int {
	if m := t.registry(); m != nil {
		return len(m.Samples())
	}
	return 0
}

func (t *metricsTable) Snapshot() (*engine.Relation, error) {
	b := newBuilder(metricsSchema)
	if m := t.registry(); m != nil {
		for _, s := range m.Samples() {
			b.row(s.Name, s.Type, s.Value, s.Help)
		}
	}
	return b.relation()
}
