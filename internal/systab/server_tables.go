package systab

import (
	"strings"

	"github.com/predcache/predcache/internal/engine"
	"github.com/predcache/predcache/internal/sql"
	"github.com/predcache/predcache/internal/storage"
)

var planCacheSchema = storage.Schema{
	{Name: "query_template", Type: storage.String},
	{Name: "slots", Type: storage.Int64},
	{Name: "tables", Type: storage.String},
	{Name: "hits", Type: storage.Int64},
	{Name: "created_micros", Type: storage.Int64},
	{Name: "last_hit_micros", Type: storage.Int64},
}

// planCacheTable exposes the normalized-SQL plan cache as pc.plan_cache, in
// LRU order (most recently used first).
type planCacheTable struct {
	cache *sql.PlanCache
}

// PlanCacheTable builds the pc.plan_cache provider (cache may be nil when
// the DB runs without a plan cache; the table is then empty).
func PlanCacheTable(cache *sql.PlanCache) engine.VirtualTable {
	return &planCacheTable{cache: cache}
}

func (t *planCacheTable) Name() string           { return "pc.plan_cache" }
func (t *planCacheTable) Schema() storage.Schema { return planCacheSchema }
func (t *planCacheTable) NumRows() int           { return t.cache.Stats().Entries }

func (t *planCacheTable) Snapshot() (*engine.Relation, error) {
	b := newBuilder(planCacheSchema)
	for _, e := range t.cache.Entries() {
		b.row(e.Key, int64(e.Slots), strings.Join(e.Tables, ","),
			e.Hits, micros(e.CreatedAt), micros(e.LastHitAt))
	}
	return b.relation()
}

// SessionInfo is one client session's state as reported by the network
// server (internal/server supplies the source function — systab cannot
// import it without a cycle through the root package).
type SessionInfo struct {
	ID          int64
	RemoteAddr  string
	State       string // "idle" | "active" | "closing"
	StartMicros int64
	LastMicros  int64 // when the session last started or finished a statement
	Queries     int64
	Prepared    int64 // prepared statements currently held
	CurrentSQL  string
}

var sessionsSchema = storage.Schema{
	{Name: "session_id", Type: storage.Int64},
	{Name: "remote_addr", Type: storage.String},
	{Name: "state", Type: storage.String},
	{Name: "start_micros", Type: storage.Int64},
	{Name: "last_micros", Type: storage.Int64},
	{Name: "queries", Type: storage.Int64},
	{Name: "prepared", Type: storage.Int64},
	{Name: "current_query", Type: storage.String},
}

// sessionsTable exposes the server's live sessions as pc.sessions.
type sessionsTable struct {
	source func() []SessionInfo
}

// SessionsTable builds the pc.sessions provider. source is called at
// snapshot time; nil snapshots empty (no server running).
func SessionsTable(source func() []SessionInfo) engine.VirtualTable {
	return &sessionsTable{source: source}
}

func (t *sessionsTable) Name() string           { return "pc.sessions" }
func (t *sessionsTable) Schema() storage.Schema { return sessionsSchema }

func (t *sessionsTable) NumRows() int {
	if t.source == nil {
		return 0
	}
	return len(t.source())
}

func (t *sessionsTable) Snapshot() (*engine.Relation, error) {
	b := newBuilder(sessionsSchema)
	if t.source != nil {
		for _, s := range t.source() {
			b.row(s.ID, s.RemoteAddr, s.State, s.StartMicros, s.LastMicros,
				s.Queries, s.Prepared, s.CurrentSQL)
		}
	}
	return b.relation()
}
