// Package systab implements the `pc` system schema: virtual tables that
// expose the engine's own telemetry — query history, predicate-cache
// contents, physical storage layout, and the metrics registry — through the
// normal SQL surface (the STL/SVL-style introspection cloud warehouses
// ship). Providers materialize a snapshot relation on demand; the planner
// lowers references to them into engine.VirtualScan nodes, so filters,
// joins and aggregates against user tables all work unchanged.
package systab

import (
	"fmt"
	"sort"
	"sync"

	"github.com/predcache/predcache/internal/engine"
)

// SchemaPrefix is the reserved schema qualifier for system tables. User
// tables cannot be created under it.
const SchemaPrefix = "pc."

// Registry maps qualified system-table names to their providers. It
// implements sql.VirtualResolver. Safe for concurrent use.
type Registry struct {
	mu     sync.RWMutex
	tables map[string]engine.VirtualTable
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{tables: make(map[string]engine.VirtualTable)}
}

// Register adds a provider under its own Name(). Registering a name twice
// or one outside the pc schema is a programming error.
func (r *Registry) Register(vt engine.VirtualTable) error {
	name := vt.Name()
	if len(name) <= len(SchemaPrefix) || name[:len(SchemaPrefix)] != SchemaPrefix {
		return fmt.Errorf("systab: table %q is not in the %s schema", name, SchemaPrefix)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.tables[name]; dup {
		return fmt.Errorf("systab: table %q already registered", name)
	}
	r.tables[name] = vt
	return nil
}

// VirtualTable resolves a qualified name; implements sql.VirtualResolver.
func (r *Registry) VirtualTable(name string) (engine.VirtualTable, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	vt, ok := r.tables[name]
	return vt, ok
}

// Names returns the registered table names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.tables))
	for name := range r.tables {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
