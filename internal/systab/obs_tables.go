package systab

import (
	"strconv"
	"strings"

	"github.com/predcache/predcache/internal/engine"
	"github.com/predcache/predcache/internal/obs"
	"github.com/predcache/predcache/internal/storage"
)

// The trace, SLO and runtime tables below complete the observability loop
// started by pc.query_log: the log says *that* a query was slow, pc.traces
// + pc.trace_spans say *why* (span by span), pc.slo says how the class is
// doing overall and links its tail back to a retained trace, and pc.runtime
// says what the process looked like while it happened. All of them are
// plain virtual tables: filters, joins and aggregates against user tables
// and each other work unchanged.

var tracesSchema = storage.Schema{
	{Name: "trace_id", Type: storage.Int64},
	{Name: "start_micros", Type: storage.Int64},
	{Name: "wall_us", Type: storage.Int64},
	{Name: "query_text", Type: storage.String},
	{Name: "error", Type: storage.String},
	{Name: "query_class", Type: storage.String},
	{Name: "shape", Type: storage.String},
	{Name: "cache_hit", Type: storage.Bool},
	{Name: "reason", Type: storage.String},
	{Name: "spans", Type: storage.Int64},
}

// tracesTable exposes the trace store's retained traces as pc.traces, one
// row per trace; trace_id equals the query's pc.query_log.seq.
type tracesTable struct {
	store *obs.TraceStore
}

// TracesTable builds the pc.traces provider (store may be nil: the table is
// then always empty).
func TracesTable(store *obs.TraceStore) engine.VirtualTable {
	return &tracesTable{store: store}
}

func (t *tracesTable) Name() string           { return "pc.traces" }
func (t *tracesTable) Schema() storage.Schema { return tracesSchema }
func (t *tracesTable) NumRows() int           { return t.store.Stats().Retained }

func (t *tracesTable) Snapshot() (*engine.Relation, error) {
	b := newBuilder(tracesSchema)
	for _, rt := range t.store.Traces() {
		b.row(rt.TraceID, rt.StartMicros, rt.Wall.Microseconds(),
			rt.SQL, rt.Error, rt.Class, rt.Shape, rt.CacheHit, rt.Reason,
			int64(len(rt.Spans)))
	}
	return b.relation()
}

var traceSpansSchema = storage.Schema{
	{Name: "trace_id", Type: storage.Int64},
	{Name: "span_id", Type: storage.Int64},
	{Name: "parent_id", Type: storage.Int64},
	{Name: "kind", Type: storage.String},
	{Name: "name", Type: storage.String},
	{Name: "start_us", Type: storage.Int64},
	{Name: "dur_us", Type: storage.Int64},
	{Name: "attrs", Type: storage.String},
}

// traceSpansTable flattens every retained trace into pc.trace_spans: one
// row per span, attrs rendered as "k=v k=v".
type traceSpansTable struct {
	store *obs.TraceStore
}

// TraceSpansTable builds the pc.trace_spans provider.
func TraceSpansTable(store *obs.TraceStore) engine.VirtualTable {
	return &traceSpansTable{store: store}
}

func (t *traceSpansTable) Name() string           { return "pc.trace_spans" }
func (t *traceSpansTable) Schema() storage.Schema { return traceSpansSchema }
func (t *traceSpansTable) NumRows() int           { return t.store.Stats().SpanCount }

func (t *traceSpansTable) Snapshot() (*engine.Relation, error) {
	b := newBuilder(traceSpansSchema)
	var attrs strings.Builder
	for _, rt := range t.store.Traces() {
		for i := range rt.Spans {
			sp := &rt.Spans[i]
			attrs.Reset()
			for _, a := range sp.Attrs {
				if attrs.Len() > 0 {
					attrs.WriteByte(' ')
				}
				attrs.WriteString(a.Key)
				attrs.WriteByte('=')
				if a.IsStr {
					attrs.WriteString(a.Str)
				} else {
					attrs.WriteString(strconv.FormatInt(a.Int, 10))
				}
			}
			b.row(rt.TraceID, int64(sp.ID), int64(sp.Parent), sp.Kind, sp.Name,
				sp.Start.Microseconds(), sp.Dur.Microseconds(), attrs.String())
		}
	}
	return b.relation()
}

var sloSchema = storage.Schema{
	{Name: "query_class", Type: storage.String},
	{Name: "cache_outcome", Type: storage.String},
	{Name: "sample_count", Type: storage.Int64},
	{Name: "p50_us", Type: storage.Int64},
	{Name: "p99_us", Type: storage.Int64},
	{Name: "p999_us", Type: storage.Int64},
	{Name: "max_us", Type: storage.Int64},
	{Name: "exemplar_trace_id", Type: storage.Int64},
	{Name: "exemplar_us", Type: storage.Int64},
}

// sloTable exposes the per-class latency percentiles as pc.slo, one row per
// (class, cache outcome); exemplar_trace_id joins pc.traces.trace_id.
type sloTable struct {
	slo *obs.SLOSet
}

// SLOTable builds the pc.slo provider (slo may be nil: empty table).
func SLOTable(slo *obs.SLOSet) engine.VirtualTable {
	return &sloTable{slo: slo}
}

func (t *sloTable) Name() string           { return "pc.slo" }
func (t *sloTable) Schema() storage.Schema { return sloSchema }

func (t *sloTable) NumRows() int {
	return len(t.slo.Snapshot())
}

func (t *sloTable) Snapshot() (*engine.Relation, error) {
	b := newBuilder(sloSchema)
	for _, r := range t.slo.Snapshot() {
		outcome := "miss"
		if r.CacheHit {
			outcome = "hit"
		}
		b.row(r.Class, outcome, int64(r.Count),
			r.P50.Microseconds(), r.P99.Microseconds(), r.P999.Microseconds(),
			r.Max.Microseconds(), r.ExemplarTraceID, r.ExemplarDur.Microseconds())
	}
	return b.relation()
}

var runtimeSchema = storage.Schema{
	{Name: "ts_micros", Type: storage.Int64},
	{Name: "goroutines", Type: storage.Int64},
	{Name: "heap_alloc_bytes", Type: storage.Int64},
	{Name: "heap_sys_bytes", Type: storage.Int64},
	{Name: "rss_bytes", Type: storage.Int64},
	{Name: "gc_cycles", Type: storage.Int64},
	{Name: "gc_pause_ns", Type: storage.Int64},
	{Name: "pool_gets", Type: storage.Int64},
	{Name: "pool_news", Type: storage.Int64},
}

// runtimeTable exposes the runtime collector's sample ring as pc.runtime,
// one row per sample, oldest first. Without a running collector it falls
// back to a single on-demand sample so the table always answers.
type runtimeTable struct {
	source func() *obs.RuntimeCollector
	live   func() obs.RuntimeSample
}

// RuntimeTable builds the pc.runtime provider. source is read at snapshot
// time so the table follows StartRuntimeSampler; live (may be nil) supplies
// the one-shot fallback sample when no collector is running.
func RuntimeTable(source func() *obs.RuntimeCollector, live func() obs.RuntimeSample) engine.VirtualTable {
	return &runtimeTable{source: source, live: live}
}

func (t *runtimeTable) Name() string           { return "pc.runtime" }
func (t *runtimeTable) Schema() storage.Schema { return runtimeSchema }

func (t *runtimeTable) collector() *obs.RuntimeCollector {
	if t.source == nil {
		return nil
	}
	return t.source()
}

func (t *runtimeTable) samples() []obs.RuntimeSample {
	if s := t.collector().Samples(); len(s) > 0 {
		return s
	}
	if t.live == nil {
		return nil
	}
	return []obs.RuntimeSample{t.live()}
}

func (t *runtimeTable) NumRows() int {
	return len(t.samples())
}

func (t *runtimeTable) Snapshot() (*engine.Relation, error) {
	b := newBuilder(runtimeSchema)
	for _, s := range t.samples() {
		b.row(s.TSMicros, s.Goroutines, s.HeapAllocBytes, s.HeapSysBytes,
			s.RSSBytes, s.GCCycles, s.GCPauseNs, s.PoolGets, s.PoolNews)
	}
	return b.relation()
}
