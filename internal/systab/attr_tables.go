package systab

import (
	"github.com/predcache/predcache/internal/engine"
	"github.com/predcache/predcache/internal/obs"
	"github.com/predcache/predcache/internal/storage"
)

// Resource-attribution tables (PR 9): pc.query_shapes is the per-shape cost
// ledger the workload-driven advisor consumes, pc.alerts the leak-sentinel
// transition history. Both follow the virtual-table conventions in tables.go.

var queryShapesSchema = storage.Schema{
	{Name: "shape_id", Type: storage.String},
	{Name: "shape_text", Type: storage.String},
	{Name: "query_class", Type: storage.String},
	{Name: "calls", Type: storage.Int64},
	{Name: "errors", Type: storage.Int64},
	{Name: "cpu_us", Type: storage.Int64},
	{Name: "p50_cpu_us", Type: storage.Int64},
	{Name: "p99_cpu_us", Type: storage.Int64},
	{Name: "wall_us", Type: storage.Int64},
	{Name: "allocs", Type: storage.Int64},
	{Name: "alloc_bytes", Type: storage.Int64},
	{Name: "result_rows", Type: storage.Int64},
	{Name: "cache_hit_rate", Type: storage.Float64},
	{Name: "exemplar_trace_id", Type: storage.Int64},
}

// queryShapesTable exposes a ShapeStats ledger as pc.query_shapes, ranked by
// total attributed CPU (heaviest shape first).
type queryShapesTable struct {
	shapes *obs.ShapeStats
}

// QueryShapesTable builds the pc.query_shapes provider (shapes may be nil:
// the table then always snapshots empty).
func QueryShapesTable(shapes *obs.ShapeStats) engine.VirtualTable {
	return &queryShapesTable{shapes: shapes}
}

func (t *queryShapesTable) Name() string           { return "pc.query_shapes" }
func (t *queryShapesTable) Schema() storage.Schema { return queryShapesSchema }
func (t *queryShapesTable) NumRows() int           { return t.shapes.Len() }

func (t *queryShapesTable) Snapshot() (*engine.Relation, error) {
	b := newBuilder(queryShapesSchema)
	for _, r := range t.shapes.Snapshot() {
		b.row(r.ID, r.Key, r.Class, r.Calls, r.Errors,
			r.CPUMicros, r.P50CPUMicros, r.P99CPUMicros, r.WallMicros,
			r.AllocObjects, r.AllocBytes, r.Rows, r.HitRate, r.ExemplarTraceID)
	}
	return b.relation()
}

var alertsSchema = storage.Schema{
	{Name: "ts_micros", Type: storage.Int64},
	{Name: "sentinel", Type: storage.String},
	{Name: "state", Type: storage.String},
	{Name: "value", Type: storage.Int64},
	{Name: "threshold", Type: storage.Int64},
	{Name: "detail", Type: storage.String},
}

// alertsTable exposes an AlertLog as pc.alerts, oldest transition first.
type alertsTable struct {
	log *obs.AlertLog
}

// AlertsTable builds the pc.alerts provider (log may be nil: the table then
// always snapshots empty).
func AlertsTable(log *obs.AlertLog) engine.VirtualTable {
	return &alertsTable{log: log}
}

func (t *alertsTable) Name() string           { return "pc.alerts" }
func (t *alertsTable) Schema() storage.Schema { return alertsSchema }
func (t *alertsTable) NumRows() int           { return t.log.Len() }

func (t *alertsTable) Snapshot() (*engine.Relation, error) {
	b := newBuilder(alertsSchema)
	for _, a := range t.log.Alerts() {
		b.row(a.TSMicros, a.Sentinel, a.State, a.Value, a.Threshold, a.Detail)
	}
	return b.relation()
}
