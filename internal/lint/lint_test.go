package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runFixture loads testdata/src/<name> and runs a single analyzer over it.
// It returns the findings plus the set of line numbers carrying a `// want`
// marker in the fixture source.
func runFixture(t *testing.T, name string, a Analyzer) (findings []Finding, wants map[int]bool) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if pkg == nil {
		t.Fatalf("no package loaded from %s", dir)
	}
	prog := NewProgram(loader.Fset(), []*Package{pkg})
	findings = prog.Run([]Analyzer{a})

	wants = make(map[int]bool)
	src, err := os.ReadFile(filepath.Join(dir, name+".go"))
	if err != nil {
		t.Fatalf("reading fixture: %v", err)
	}
	for i, line := range strings.Split(string(src), "\n") {
		if strings.Contains(line, "// want") {
			wants[i+1] = true
		}
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no // want markers", name)
	}
	return findings, wants
}

// checkFixture asserts the analyzer reported on exactly the `// want` lines:
// every marked line has at least one finding, and no finding lands on an
// unmarked line.
func checkFixture(t *testing.T, name string, a Analyzer) {
	t.Helper()
	findings, wants := runFixture(t, name, a)
	got := make(map[int]bool)
	for _, f := range findings {
		if f.Analyzer != a.Name() {
			t.Errorf("finding from wrong analyzer %q: %s", f.Analyzer, f)
		}
		got[f.Pos.Line] = true
		if !wants[f.Pos.Line] {
			t.Errorf("unexpected finding (no // want on line %d): %s", f.Pos.Line, f)
		}
	}
	for line := range wants {
		if !got[line] {
			t.Errorf("%s: line %d marked // want but analyzer %s reported nothing", name, line, a.Name())
		}
	}
}

func TestErrWrapFixture(t *testing.T)      { checkFixture(t, "errwrap", ErrWrap{}) }
func TestLockCheckFixture(t *testing.T)    { checkFixture(t, "lockcheck", LockCheck{}) }
func TestBufAliasFixture(t *testing.T)     { checkFixture(t, "bufalias", BufAlias{}) }
func TestGoroutineCtxFixture(t *testing.T) { checkFixture(t, "goroutinectx", GoroutineCtx{}) }
func TestLockOrderFixture(t *testing.T)    { checkFixture(t, "lockorder", LockOrder{}) }
func TestNoAllocFixture(t *testing.T)      { checkFixture(t, "noalloc", NoAlloc{}) }
func TestPoolCheckFixture(t *testing.T)    { checkFixture(t, "poolcheck", PoolCheck{}) }

// TestRepoClean runs the full suite over the real module and requires zero
// findings: the codebase must stay lint-clean.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type-check is slow; skipped with -short")
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("LoadAll: %v", err)
	}
	if len(pkgs) < 5 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	prog := NewProgram(loader.Fset(), pkgs)
	findings := prog.Run(Analyzers())
	for _, f := range findings {
		t.Errorf("repo not lint-clean: %s", f)
	}
}
