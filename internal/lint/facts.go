package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file builds the Program-wide fact indexes the whole-program analyzers
// share: the pclint annotation vocabulary, suppression ranges, the
// func-object -> declaration map, and the sync.Pool wrapper facts.
//
// Annotation vocabulary (full reference in DESIGN.md §12):
//
//	// guarded by <mu>          field comment: lockcheck guard
//	// pclint:held              func doc: caller holds the relevant lock
//	// pclint:recycled          func doc: result is a recycled per-batch buffer
//	// pclint:noalloc           func doc: hot path — no allocation-inducing
//	//                          constructs in this function or (transitively)
//	//                          in any module-internal function it calls
//	// pclint:allowalloc <why>  func doc: exempt from noalloc traversal
//	//                          (amortized growth or a documented cold path)
//	// pclint:allow <analyzer>: <why>
//	//                          func doc or line comment: suppress one
//	//                          analyzer's findings for the function body or
//	//                          for the commented line (and the line below,
//	//                          so a comment can sit above the construct)

// declInfo ties a function object to its syntax and owning package.
type declInfo struct {
	Decl *ast.FuncDecl
	Pkg  *Package
}

// allowRange suppresses one analyzer's findings for a line interval of a
// file.
type allowRange struct {
	file      string
	startLine int
	endLine   int
	analyzer  string
}

// buildFacts populates the Program's annotation and declaration indexes.
// Called once from NewProgram.
func (prog *Program) buildFacts() {
	prog.Recycled = make(map[types.Object]bool)
	prog.Noalloc = make(map[*types.Func]bool)
	prog.AllowAlloc = make(map[*types.Func]bool)
	prog.PoolSource = make(map[*types.Func]bool)
	prog.PoolSink = make(map[*types.Func]bool)
	prog.Decls = make(map[*types.Func]declInfo)

	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				prog.Decls[obj] = declInfo{Decl: fd, Pkg: pkg}
				if commentContains(fd.Doc, "pclint:recycled") {
					prog.Recycled[obj] = true
				}
				if commentContains(fd.Doc, "pclint:noalloc") {
					prog.Noalloc[obj] = true
				}
				if commentContains(fd.Doc, "pclint:allowalloc") {
					prog.AllowAlloc[obj] = true
				}
				if fd.Body != nil {
					if poolSourceFunc(pkg, fd) {
						prog.PoolSource[obj] = true
					}
					if poolSinkFunc(pkg, fd) {
						prog.PoolSink[obj] = true
					}
				}
			}
			prog.collectAllows(pkg, file)
		}
	}
}

// collectAllows indexes pclint:allow comments of one file. A line comment
// suppresses the commented line and the next (so the annotation can trail the
// construct or sit on its own line above); a function doc comment suppresses
// the whole body.
func (prog *Program) collectAllows(pkg *Package, file *ast.File) {
	record := func(c *ast.Comment, startLine, endLine int) {
		for _, analyzer := range parseAllows(c.Text) {
			pos := pkg.Fset.Position(c.Pos())
			prog.allows = append(prog.allows, allowRange{
				file:      pos.Filename,
				startLine: startLine,
				endLine:   endLine,
				analyzer:  analyzer,
			})
		}
	}
	// Function-doc allows cover the whole declaration.
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil {
			continue
		}
		for _, c := range fd.Doc.List {
			if strings.Contains(c.Text, "pclint:allow ") {
				record(c, pkg.Fset.Position(fd.Pos()).Line, pkg.Fset.Position(fd.End()).Line)
			}
		}
	}
	// Every other comment covers its own line and the next.
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.Contains(c.Text, "pclint:allow ") {
				continue
			}
			line := pkg.Fset.Position(c.Pos()).Line
			record(c, line, line+1)
		}
	}
}

// parseAllows extracts analyzer names from a `pclint:allow a,b: reason`
// comment.
func parseAllows(text string) []string {
	var out []string
	rest := text
	for {
		i := strings.Index(rest, "pclint:allow ")
		if i < 0 {
			return out
		}
		rest = rest[i+len("pclint:allow "):]
		names := rest
		if j := strings.IndexAny(names, ":\n"); j >= 0 {
			names = names[:j]
		}
		for _, name := range strings.Split(names, ",") {
			if name = strings.TrimSpace(name); name != "" {
				out = append(out, name)
			}
		}
	}
}

// allowedAt reports whether findings of the analyzer are suppressed at pos.
func (prog *Program) allowedAt(analyzer string, pos token.Position) bool {
	for _, ar := range prog.allows {
		if ar.analyzer == analyzer && ar.file == pos.Filename &&
			ar.startLine <= pos.Line && pos.Line <= ar.endLine {
			return true
		}
	}
	return false
}

// isSyncPoolType reports whether t is sync.Pool (possibly via pointer).
func isSyncPoolType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Pool"
}

// poolCall recognizes <pool>.Get() / <pool>.Put(x) where <pool> has type
// sync.Pool, returning the method name.
func poolCall(info *types.Info, call *ast.CallExpr) (method string, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return "", false
	}
	if sel.Sel.Name != "Get" && sel.Sel.Name != "Put" {
		return "", false
	}
	t := info.TypeOf(sel.X)
	if t == nil || !isSyncPoolType(t) {
		return "", false
	}
	return sel.Sel.Name, true
}

// poolSourceFunc reports whether fd hands out pooled objects: its body calls
// <pool>.Get() and it returns a pointer or interface result. Callers of such
// a wrapper (e.g. acquireScanScratch) own a pooled object just as if they had
// called Get themselves.
func poolSourceFunc(pkg *Package, fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil || len(fd.Type.Results.List) == 0 {
		return false
	}
	returnsRef := false
	for _, f := range fd.Type.Results.List {
		t := pkg.Info.TypeOf(f.Type)
		if t == nil {
			continue
		}
		switch t.Underlying().(type) {
		case *types.Pointer, *types.Interface:
			returnsRef = true
		}
	}
	if !returnsRef {
		return false
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if m, ok := poolCall(pkg.Info, call); ok && m == "Get" {
				found = true
			}
		}
		return !found
	})
	return found
}

// poolSinkFunc reports whether fd returns its receiver or a parameter to a
// sync.Pool: its body contains <pool>.Put(x) where x names the receiver or a
// parameter. Calling such a wrapper (e.g. (*scanScratch).release) counts as a
// Put of the argument/receiver.
func poolSinkFunc(pkg *Package, fd *ast.FuncDecl) bool {
	owned := make(map[types.Object]bool)
	addField := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := pkg.Info.Defs[name]; obj != nil {
					owned[obj] = true
				}
			}
		}
	}
	addField(fd.Recv)
	addField(fd.Type.Params)
	if len(owned) == 0 {
		return false
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if m, ok := poolCall(pkg.Info, call); !ok || m != "Put" || len(call.Args) != 1 {
			return true
		}
		if id, ok := call.Args[0].(*ast.Ident); ok {
			if obj := pkg.Info.Uses[id]; obj != nil && owned[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}
