package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// NoAlloc enforces the `pclint:noalloc` annotation: the per-block scan
// kernels must not allocate, or the pooled-scratch design (engine/scratch.go)
// and the warm-scan allocation budget (TestKernelWarmScanAllocs) silently
// regress. The annotation marks a hot-path *root*; the guarantee is enforced
// transitively — every module-internal function reachable from a root through
// the CHA call graph is checked too, unless it carries `pclint:allowalloc
// <why>` (amortized growth or a documented cold path), which stops the
// traversal.
//
// Inside a checked function the analyzer flags every construct the compiler
// may lower to a heap allocation:
//
//   - make / new, map and slice composite literals (and their address)
//   - append to a slice that starts nil in this function (growth must
//     allocate; appending into a reused scratch-backed slice is fine)
//   - non-constant string concatenation, string <-> []byte/[]rune conversion
//   - boxing a non-pointer value into an interface (call arguments,
//     assignments, returns) — fmt-style any parameters are the usual culprit
//   - closures that escape (stored, passed, returned, deferred) and method
//     values; a func literal that is only called locally does not escape
//   - go statements (new goroutine stack)
//   - calls into external packages other than a small provably-nonallocating
//     allowlist (math, math/bits, sync, sync/atomic, time, unicode/utf8)
//   - dynamic calls through function values (callee unknown, so unprovable)
//
// Each finding names the noalloc root whose guarantee the construct breaks.
// False positives (e.g. a make the compiler provably keeps on the stack) are
// suppressed with `pclint:allow noalloc: <why>` at the line.
type NoAlloc struct{}

// Name implements Analyzer.
func (NoAlloc) Name() string { return "noalloc" }

// Run implements Analyzer; the computation is whole-program and cached.
func (na NoAlloc) Run(prog *Program, pkg *Package) []Finding {
	st := prog.noallocState()
	var out []Finding
	for _, f := range st.findings {
		if prog.fileInPackage(pkg, f.Pos.Filename) {
			out = append(out, f)
		}
	}
	return out
}

type noallocState struct {
	// rootOf maps each checked function to the noalloc root that reaches it
	// (the lexicographically first, for deterministic messages).
	rootOf   map[*types.Func]*types.Func
	findings []Finding
}

// allocAllowlist is the set of external packages whose exported call surface
// used by this repo does not allocate.
var allocAllowlist = map[string]bool{
	"math":         true,
	"math/bits":    true,
	"sync":         true,
	"sync/atomic":  true,
	"time":         true,
	"unicode/utf8": true,
}

func (prog *Program) noallocState() *noallocState {
	if prog.na != nil {
		return prog.na
	}
	st := &noallocState{rootOf: make(map[*types.Func]*types.Func)}
	cg := prog.CallGraph()

	// Forward reachability from the annotated roots, stopping at allowalloc.
	roots := make([]*types.Func, 0, len(prog.Noalloc))
	for fn := range prog.Noalloc {
		roots = append(roots, fn)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].FullName() < roots[j].FullName() })
	for _, root := range roots {
		if _, seen := st.rootOf[root]; !seen {
			st.rootOf[root] = root
		}
		queue := []*types.Func{root}
		for len(queue) > 0 {
			fn := queue[0]
			queue = queue[1:]
			for _, g := range cg.Callees(fn) {
				if prog.AllowAlloc[g] {
					continue
				}
				if _, seen := st.rootOf[g]; seen {
					continue
				}
				st.rootOf[g] = root
				queue = append(queue, g)
			}
		}
	}

	checked := make([]*types.Func, 0, len(st.rootOf))
	for fn := range st.rootOf {
		checked = append(checked, fn)
	}
	sort.Slice(checked, func(i, j int) bool { return checked[i].FullName() < checked[j].FullName() })
	for _, fn := range checked {
		di, ok := prog.Decls[fn]
		if !ok || di.Decl.Body == nil || prog.AllowAlloc[fn] {
			continue
		}
		st.checkFunc(prog, cg, fn, di)
	}
	SortFindings(st.findings)
	prog.na = st
	return st
}

// parentMap records each node's parent within a body.
func parentMap(body *ast.BlockStmt) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// checkFunc flags allocation-inducing constructs in one checked function.
func (st *noallocState) checkFunc(prog *Program, cg *CallGraph, fn *types.Func, di declInfo) {
	pkg := di.Pkg
	info := pkg.Info
	body := di.Decl.Body
	root := st.rootOf[fn]
	fname := shortFuncName(fn)

	report := func(pos token.Pos, construct string) {
		msg := fmt.Sprintf("%s in %s on pclint:noalloc path (root %s)", construct, fname, shortFuncName(root))
		if root == fn {
			msg = fmt.Sprintf("%s in pclint:noalloc function %s", construct, fname)
		}
		st.findings = append(st.findings, Finding{
			Analyzer: "noalloc",
			Pos:      pkg.Fset.Position(pos),
			Message:  msg,
		})
	}

	parents := parentMap(body)

	// Slices that start nil in this body: `var x []T` with no initializer.
	// Appending to them must allocate; appending into parameter- or
	// field-backed slices reuses amortized capacity and is allowed.
	nilSlices := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		gd, ok := n.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return true
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Values) != 0 {
				continue
			}
			for _, name := range vs.Names {
				obj := info.Defs[name]
				if obj == nil {
					continue
				}
				if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
					nilSlices[obj] = true
				}
			}
		}
		return true
	})

	// Escape classification for named closures: `f := func(){...}` where every
	// use of f is a direct call does not escape. localFns records the bound
	// names — calling one is not a dynamic call, because the literal's body is
	// part of this function and checked inline.
	nonEscapingLit := make(map[*ast.FuncLit]bool)
	localFns := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			lit, ok := rhs.(*ast.FuncLit)
			if !ok {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				continue
			}
			localFns[obj] = true
			callOnly := true
			ast.Inspect(body, func(m ast.Node) bool {
				use, ok := m.(*ast.Ident)
				if !ok || info.Uses[use] != obj {
					return true
				}
				if call, ok := parents[use].(*ast.CallExpr); !ok || call.Fun != use {
					callOnly = false
				}
				return callOnly
			})
			if callOnly {
				nonEscapingLit[lit] = true
			}
		}
		return true
	})
	// Directly invoked literals `(func(){...})()` do not escape either.
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
				nonEscapingLit[lit] = true
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.GoStmt:
			report(v.Pos(), "go statement (new goroutine)")

		case *ast.DeferStmt:
			if _, ok := ast.Unparen(v.Call.Fun).(*ast.FuncLit); ok {
				report(v.Pos(), "deferred closure")
			}

		case *ast.FuncLit:
			if !nonEscapingLit[v] {
				report(v.Pos(), "escaping func literal (closure)")
			}

		case *ast.CompositeLit:
			t := info.TypeOf(v)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				report(v.Pos(), "slice composite literal")
			case *types.Map:
				report(v.Pos(), "map composite literal")
			case *types.Struct, *types.Array:
				// Allocates only via &lit or boxing; both caught elsewhere.
				if ue, ok := parents[v].(*ast.UnaryExpr); ok && ue.Op == token.AND {
					report(ue.Pos(), "address of composite literal")
				}
			}
			return true

		case *ast.BinaryExpr:
			if v.Op != token.ADD {
				return true
			}
			tv, ok := info.Types[v]
			if !ok || tv.Value != nil { // constant-folded
				return true
			}
			if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
				report(v.Pos(), "string concatenation")
			}

		case *ast.SelectorExpr:
			// A method value (x.M used as a value, not called) allocates a
			// bound-method closure.
			selInfo, ok := info.Selections[v]
			if !ok || selInfo.Kind() != types.MethodVal {
				return true
			}
			if call, ok := parents[v].(*ast.CallExpr); ok && ast.Unparen(call.Fun) == v {
				return true
			}
			report(v.Pos(), "method value (bound-method closure)")

		case *ast.AssignStmt:
			if len(v.Lhs) != len(v.Rhs) {
				return true
			}
			for i, rhs := range v.Rhs {
				if target := info.TypeOf(v.Lhs[i]); boxes(info, rhs, target) {
					report(rhs.Pos(), fmt.Sprintf("interface boxing (assigning %s to %s)",
						typeStr(pkg, info.TypeOf(rhs)), typeStr(pkg, target)))
				}
			}

		case *ast.ReturnStmt:
			sig := enclosingSignature(info, parents, v, fn)
			if sig == nil || sig.Results().Len() != len(v.Results) {
				return true
			}
			for i, res := range v.Results {
				if target := sig.Results().At(i).Type(); boxes(info, res, target) {
					report(res.Pos(), fmt.Sprintf("interface boxing (returning %s as %s)",
						typeStr(pkg, info.TypeOf(res)), typeStr(pkg, target)))
				}
			}

		case *ast.CallExpr:
			st.checkCall(prog, cg, pkg, fn, v, nilSlices, localFns, report)
		}
		return true
	})
}

func typeStr(pkg *Package, t types.Type) string {
	if t == nil {
		return "?"
	}
	return types.TypeString(t, types.RelativeTo(pkg.Types))
}

// enclosingSignature finds the signature governing a return statement —
// the innermost func literal's, or fn's own.
func enclosingSignature(info *types.Info, parents map[ast.Node]ast.Node, n ast.Node, fn *types.Func) *types.Signature {
	for p := parents[n]; p != nil; p = parents[p] {
		if lit, ok := p.(*ast.FuncLit); ok {
			sig, _ := info.TypeOf(lit).(*types.Signature)
			return sig
		}
	}
	sig, _ := fn.Type().(*types.Signature)
	return sig
}

// boxes reports whether assigning e to a target of the given type converts a
// non-pointer concrete value into an interface — a heap allocation. Values
// already word-sized references (pointers, channels, maps, funcs) fit in the
// interface data word without allocating.
func boxes(info *types.Info, e ast.Expr, target types.Type) bool {
	if target == nil {
		return false
	}
	if _, ok := target.Underlying().(*types.Interface); !ok {
		return false
	}
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil || tv.IsNil() {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	}
	return true
}

// checkCall handles builtin, conversion, external, dynamic, and argument
// boxing rules for one call site.
func (st *noallocState) checkCall(prog *Program, cg *CallGraph, pkg *Package, fn *types.Func,
	call *ast.CallExpr, nilSlices, localFns map[types.Object]bool, report func(token.Pos, string)) {

	info := pkg.Info
	fun := ast.Unparen(call.Fun)

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				report(call.Pos(), "make")
			case "new":
				report(call.Pos(), "new")
			case "append":
				if len(call.Args) > 0 {
					if dst, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
						if obj := info.Uses[dst]; obj != nil && nilSlices[obj] {
							report(call.Pos(), fmt.Sprintf("append to nil-started slice %s (growth must allocate)", dst.Name))
						}
					}
				}
			}
			return
		}
	}

	// Type conversions.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		target := tv.Type
		if len(call.Args) == 1 {
			src := info.TypeOf(call.Args[0])
			if conversionAllocates(src, target) {
				report(call.Pos(), fmt.Sprintf("conversion %s -> %s copies the data",
					typeStr(pkg, src), typeStr(pkg, target)))
			} else if boxes(info, call.Args[0], target) {
				report(call.Pos(), fmt.Sprintf("interface boxing (converting %s to %s)",
					typeStr(pkg, info.TypeOf(call.Args[0])), typeStr(pkg, target)))
			}
		}
		return
	}

	callee := calleeFunc(info, call)
	if callee == nil {
		// Not a builtin, not a conversion, not a named function: a dynamic
		// call through a function value. The callee is unknowable statically,
		// so the noalloc guarantee cannot be proven — unless it is a func
		// literal (or a local name bound to one), whose body is checked here.
		known := false
		switch v := ast.Unparen(call.Fun).(type) {
		case *ast.FuncLit:
			known = true
		case *ast.Ident:
			known = localFns[info.Uses[v]]
		}
		if !known {
			report(call.Pos(), "dynamic call through function value (callee unknown)")
		}
		st.checkArgBoxing(pkg, call, report)
		return
	}

	// Module-internal callees are covered by reachability (or explicitly
	// allowalloc); interface calls resolve via CHA the same way.
	if len(cg.ResolveCall(pkg, call)) > 0 {
		st.checkArgBoxing(pkg, call, report)
		return
	}
	if recv := callee.Type().(*types.Signature).Recv(); recv != nil {
		if _, isIface := recv.Type().Underlying().(*types.Interface); isIface {
			// Interface method with no module-internal implementers: external
			// dynamic dispatch (e.g. error.Error) — unprovable.
			report(call.Pos(), fmt.Sprintf("call to interface method %s (dynamic dispatch, callee unknown)", callee.Name()))
			return
		}
	}

	// External package call.
	if callee.Pkg() != nil && !allocAllowlist[callee.Pkg().Path()] {
		if !moduleInternal(prog, callee) {
			report(call.Pos(), fmt.Sprintf("call to %s.%s (external package, not on the noalloc allowlist)",
				callee.Pkg().Path(), callee.Name()))
			return
		}
	}
	st.checkArgBoxing(pkg, call, report)
}

// moduleInternal reports whether fn belongs to one of the loaded packages.
func moduleInternal(prog *Program, fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	for _, pkg := range prog.Packages {
		if pkg.Types == fn.Pkg() {
			return true
		}
	}
	return false
}

// checkArgBoxing flags non-pointer values boxed into interface parameters.
func (st *noallocState) checkArgBoxing(pkg *Package, call *ast.CallExpr, report func(token.Pos, string)) {
	info := pkg.Info
	t := info.TypeOf(call.Fun)
	if t == nil {
		return
	}
	sig, ok := t.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var target types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			target = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			target = params.At(i).Type()
		}
		if boxes(info, arg, target) {
			report(arg.Pos(), fmt.Sprintf("interface boxing (passing %s as %s)",
				typeStr(pkg, info.TypeOf(arg)), typeStr(pkg, target)))
		}
	}
}

// conversionAllocates reports string <-> []byte/[]rune conversions, which
// copy the backing data.
func conversionAllocates(src, dst types.Type) bool {
	if src == nil || dst == nil {
		return false
	}
	return (isStringType(src) && isByteOrRuneSlice(dst)) ||
		(isByteOrRuneSlice(src) && isStringType(dst))
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
