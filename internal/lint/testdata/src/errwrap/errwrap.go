// Package errwrap is a pclint test fixture; "want" comment markers flag the
// lines where the errwrap analyzer must report.
package errwrap

import (
	"errors"
	"fmt"
)

var errBase = errors.New("base")

func bad1() error { return fmt.Errorf("open: %v", errBase) } // want

func bad2() error { return fmt.Errorf("q %d failed: %s", 7, errBase) } // want

func badWrapped() error {
	err := bad1()
	return fmt.Errorf("outer(%d): %v", 1, err) // want
}

func good1() error { return fmt.Errorf("open: %w", errBase) }

func good2() error { return fmt.Errorf("no error here: %d", 42) }

func good3() error { return fmt.Errorf("width %*d ok: %w", 3, 7, errBase) }

func good4() error {
	// Constant concatenation still resolves; %w position is mapped across
	// the star width above.
	return fmt.Errorf("a"+": %w", errBase)
}

func goodNonConst(format string) error {
	return fmt.Errorf(format, errBase) // format unknown: not our call
}

func badSprintfNew() error {
	return errors.New(fmt.Sprintf("query %d failed", 7)) // want
}

func badErrorStringified() error {
	return fmt.Errorf("scan failed: %s", errBase.Error()) // want
}

func badErrorStringifiedQ() error {
	err := bad1()
	return fmt.Errorf("scan failed: %q", err.Error()) // want
}

func goodPlainNew() error { return errors.New("plain message") }

func goodSprintfAlone() string {
	// Sprintf outside error construction is fine; so is stringifying for a
	// non-error destination.
	return fmt.Sprintf("status: %s", errBase.Error())
}
