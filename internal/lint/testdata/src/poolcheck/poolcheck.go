// Package poolcheck is a pclint test fixture; "want" comment markers flag the
// lines where the poolcheck analyzer must report.
package poolcheck

import "sync"

type buf struct{ b []byte }

var pool = sync.Pool{New: func() any { return new(buf) }}

// acquire is a PoolSource fact: callers own a pooled object.
func acquire() *buf { return pool.Get().(*buf) }

// release is a PoolSink fact: calling it counts as a Put of the argument.
func release(b *buf) { pool.Put(b) }

type holder struct{ h *buf }

var global holder

// useAfterPut touches the object after returning it (direct Get/Put form).
func useAfterPut() {
	b := pool.Get().(*buf)
	pool.Put(b)
	b.b = nil // want — use after Put
}

// doublePut releases twice through the wrapper.
func doublePut() {
	b := acquire()
	release(b)
	release(b) // want — double Put
}

// putEscaped stores a reference before releasing.
func putEscaped() {
	b := acquire()
	global.h = b
	release(b) // want — Put after escape
}

// leakOnEarlyReturn releases on the main path but not the early one.
func leakOnEarlyReturn(cond bool) {
	b := acquire()
	if cond {
		return // want — leaks b
	}
	release(b)
}

// goodEarlyExit releases on every path; the early-exit release must not
// poison the fall-through path.
func goodEarlyExit(cond bool) {
	b := acquire()
	if cond {
		release(b)
		return
	}
	b.b = b.b[:0]
	release(b)
}

// goodDefer covers every return with one deferred release.
func goodDefer(cond bool) {
	b := acquire()
	defer release(b)
	if cond {
		return
	}
	b.b = append(b.b[:0], 1)
}

// handOff transfers ownership to the caller; no Put required here.
func handOff() *buf {
	b := acquire()
	b.b = b.b[:0]
	return b
}

// reacquire rebinds the variable after a Put; the new object is live.
func reacquire() {
	b := acquire()
	release(b)
	b = acquire()
	b.b = nil
	release(b)
}

// suppressed demonstrates the pclint:allow escape hatch.
func suppressed() {
	b := acquire()
	release(b)
	b.b = nil // pclint:allow poolcheck: fixture demonstrates suppression
}
