// Package noalloc is a pclint test fixture; "want" comment markers flag the
// lines where the noalloc analyzer must report.
package noalloc

type scratch struct {
	ints []int
	fn   func()
}

// hot is a hot-path root: no allocation in it or anything it reaches.
// pclint:noalloc
func hot(s *scratch, xs []int) int {
	total := 0
	inc := func(v int) int { return v + 1 } // local-call-only closure: no escape
	for _, x := range xs {
		total += inc(x)
	}
	m := make([]int, 8) // want — make
	_ = m
	var acc []int
	acc = append(acc, total) // want — append to nil-started slice
	_ = acc
	s.ints = append(s.ints, total) // ok: amortized into caller-owned scratch
	s.fn = func() {}               // want — escaping closure
	go func() {}()                 // want — go statement
	sink(total)                    // want — boxing int into any
	helper(s, "x")
	dyn(func() {}) // want — closure passed as argument escapes
	cold(s)
	return total
}

func sink(v any) { _ = v }

// helper is reachable from hot and checked transitively.
func helper(s *scratch, pfx string) {
	s.ints = s.ints[:0]
	name := pfx + "!"  // want — string concatenation
	bs := []byte(name) // want — string to []byte conversion
	_ = bs
}

// dyn calls through a function value; the callee is unknowable.
func dyn(f func()) {
	f() // want — dynamic call
}

// cold grows the scratch slice; amortized, exempt from traversal.
// pclint:allowalloc amortized growth path
func cold(s *scratch) {
	s.ints = append(s.ints, make([]int, 16)...)
}

// notHot is not reachable from any noalloc root; it may allocate freely.
func notHot() []int {
	return make([]int, 4)
}

// suppressedRoot shows the line-level escape hatch.
// pclint:noalloc
func suppressedRoot() {
	s := make([]int, 2) // pclint:allow noalloc: provably stack-allocated here
	_ = s
}

// The shapes below mirror the trace-retention handoff: a completed trace's
// span slice moves into a preallocated ring by pointer, never by copy.

type span struct{ id int }

type trace struct{ spans []span }

type traceRing struct {
	slots [][]span
	head  int
}

// takeSpans detaches and parks the span slice — pure pointer moves, and the
// analyzer must accept it without annotations.
// pclint:noalloc
func takeSpans(tr *trace, r *traceRing) {
	sp := tr.spans // ok: slice-header move, no copy
	tr.spans = nil
	r.slots[r.head] = sp // ok: store into a preallocated slot
	r.head++
}

// badHandoff copies the spans instead of moving the slice header; any
// allocation here defeats the O(1) handoff guarantee and must be flagged.
// pclint:noalloc
func badHandoff(tr *trace, r *traceRing) {
	dup := make([]span, len(tr.spans)) // want — make on the handoff path
	copy(dup, tr.spans)
	var out []span
	out = append(out, dup...) // want — append to nil-started slice
	r.slots[r.head] = out
}

// The shapes below mirror the morsel-parallel probe loop: a worker probes
// one morsel of rows against a shared chained hash table, appending matches
// into pre-sized per-morsel buffers and keyed lookups into a map indexed by
// a scratch byte key.

type morselTable struct {
	idx   map[string]int32
	heads []int32
	next  []int32
}

type workerScratch struct {
	key   []byte
	probe []int32
}

// probeHot is the morsel probe shape: chain walks, map lookups via
// string(b) conversion at the index expression (compiled allocation-free,
// suppressed with a line-level allow), and appends into the worker's
// pre-sized match buffer — all without per-row allocation.
// pclint:noalloc
func probeHot(t *morselTable, scr *workerScratch, rows []int32) int {
	matches := 0
	for _, row := range rows {
		scr.key = scr.key[:0]
		scr.key = append(scr.key, byte(row)) // ok: amortized into caller-owned scratch
		ci, ok := t.idx[string(scr.key)]     // pclint:allow noalloc: map index with string(b) does not allocate
		if !ok {
			continue
		}
		for r := t.heads[ci]; r >= 0; r = t.next[r] {
			scr.probe = append(scr.probe, r) // ok: amortized into caller-owned scratch
			matches++
		}
	}
	return matches
}

// probeBad materializes a string key per probe row and boxes the match
// count; both per-row allocations must be flagged.
// pclint:noalloc
func probeBad(t *morselTable, scr *workerScratch, rows []int32) int {
	matches := 0
	for _, row := range rows {
		scr.key = scr.key[:0]
		scr.key = append(scr.key, byte(row))
		k := string(scr.key) // want — []byte to string conversion
		if _, ok := t.idx[k]; ok {
			matches++
		}
	}
	sink(matches) // want — boxing int into any
	return matches
}

// The shapes below mirror per-query resource attribution: a worker folds its
// busy time into shared atomic-style counters (modelled here as plain int64
// fields behind a pointer), and the coordinator computes the attribution
// deltas after execution. The accounting itself must stay allocation-free —
// only the reporting tail (off the hot path) may build rows.

type attrCounters struct {
	workerExtraNanos int64
	allocObjects     int64
	allocBytes       int64
}

type attrScratch struct {
	labels []string
}

// foldAttribution is the per-worker accounting shape: pure arithmetic folds
// into caller-owned counters, no allocation anywhere.
// pclint:noalloc
func foldAttribution(c *attrCounters, busyNanos, elapsedNanos int64) {
	extra := busyNanos - elapsedNanos
	if extra < 0 {
		extra = 0
	}
	c.workerExtraNanos += extra
}

// snapshotDelta is the coordinator's delta shape: subtract two counter
// snapshots, clamping at zero — again pure arithmetic.
// pclint:noalloc
func snapshotDelta(before, after *attrCounters) (objects, bytes int64) {
	objects = after.allocObjects - before.allocObjects
	bytes = after.allocBytes - before.allocBytes
	if objects < 0 {
		objects = 0
	}
	if bytes < 0 {
		bytes = 0
	}
	return objects, bytes
}

// attributeBad builds the pprof label set inside the per-morsel loop: a map
// composite literal and a string concatenation per morsel, exactly the
// mistake the execution path avoids by labelling once around the whole
// query. Both must be flagged.
// pclint:noalloc
func attributeBad(c *attrCounters, scr *attrScratch, morsels []int64) {
	for _, m := range morsels {
		labels := map[string]string{"query_id": "q"} // want — map literal per morsel
		_ = labels
		tag := "shape" + "=" + "s"             // constant-folded: no allocation
		scr.labels = append(scr.labels, tag)   // ok: amortized into caller-owned scratch
		c.workerExtraNanos += m                // the actual accounting is free
		sink(c.workerExtraNanos)               // want — boxing int64 into any
	}
}
