// Package noalloc is a pclint test fixture; "want" comment markers flag the
// lines where the noalloc analyzer must report.
package noalloc

type scratch struct {
	ints []int
	fn   func()
}

// hot is a hot-path root: no allocation in it or anything it reaches.
// pclint:noalloc
func hot(s *scratch, xs []int) int {
	total := 0
	inc := func(v int) int { return v + 1 } // local-call-only closure: no escape
	for _, x := range xs {
		total += inc(x)
	}
	m := make([]int, 8) // want — make
	_ = m
	var acc []int
	acc = append(acc, total) // want — append to nil-started slice
	_ = acc
	s.ints = append(s.ints, total) // ok: amortized into caller-owned scratch
	s.fn = func() {}               // want — escaping closure
	go func() {}()                 // want — go statement
	sink(total)                    // want — boxing int into any
	helper(s, "x")
	dyn(func() {}) // want — closure passed as argument escapes
	cold(s)
	return total
}

func sink(v any) { _ = v }

// helper is reachable from hot and checked transitively.
func helper(s *scratch, pfx string) {
	s.ints = s.ints[:0]
	name := pfx + "!"  // want — string concatenation
	bs := []byte(name) // want — string to []byte conversion
	_ = bs
}

// dyn calls through a function value; the callee is unknowable.
func dyn(f func()) {
	f() // want — dynamic call
}

// cold grows the scratch slice; amortized, exempt from traversal.
// pclint:allowalloc amortized growth path
func cold(s *scratch) {
	s.ints = append(s.ints, make([]int, 16)...)
}

// notHot is not reachable from any noalloc root; it may allocate freely.
func notHot() []int {
	return make([]int, 4)
}

// suppressedRoot shows the line-level escape hatch.
// pclint:noalloc
func suppressedRoot() {
	s := make([]int, 2) // pclint:allow noalloc: provably stack-allocated here
	_ = s
}

// The shapes below mirror the trace-retention handoff: a completed trace's
// span slice moves into a preallocated ring by pointer, never by copy.

type span struct{ id int }

type trace struct{ spans []span }

type traceRing struct {
	slots [][]span
	head  int
}

// takeSpans detaches and parks the span slice — pure pointer moves, and the
// analyzer must accept it without annotations.
// pclint:noalloc
func takeSpans(tr *trace, r *traceRing) {
	sp := tr.spans // ok: slice-header move, no copy
	tr.spans = nil
	r.slots[r.head] = sp // ok: store into a preallocated slot
	r.head++
}

// badHandoff copies the spans instead of moving the slice header; any
// allocation here defeats the O(1) handoff guarantee and must be flagged.
// pclint:noalloc
func badHandoff(tr *trace, r *traceRing) {
	dup := make([]span, len(tr.spans)) // want — make on the handoff path
	copy(dup, tr.spans)
	var out []span
	out = append(out, dup...) // want — append to nil-started slice
	r.slots[r.head] = out
}
