// Package lockcheck is a pclint test fixture; "want" comment markers flag
// the lines where the lockcheck analyzer must report.
package lockcheck

import "sync"

type box struct {
	mu sync.Mutex
	n  int            // guarded by mu
	m  map[string]int // guarded by mu
}

// newBox writes fields of a freshly built value: exempt (nothing else can
// see it yet).
func newBox() *box {
	b := &box{m: map[string]int{}}
	b.n = 1
	return b
}

func (b *box) good() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

func (b *box) goodEarlyExit(k string) int {
	b.mu.Lock()
	if v, ok := b.m[k]; ok {
		b.mu.Unlock()
		return v
	}
	b.mu.Unlock()

	b.mu.Lock()
	defer b.mu.Unlock()
	b.m[k] = b.n
	return b.n
}

func (b *box) bad() int {
	return b.n // want
}

func (b *box) badAfterUnlock() int {
	b.mu.Lock()
	b.n = 2
	b.mu.Unlock()
	return b.n // want
}

// setLocked has the *Locked suffix: the caller holds b.mu.
func (b *box) setLocked(v int) { b.n = v }

// touch is exempt through the explicit marker. pclint:held
func (b *box) touch() { b.n++ }

// plainFuncBad shows that plain functions are checked too, not only
// methods.
func plainFuncBad(b *box) int {
	return b.n // want
}

func plainFuncGood(b *box) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

type badGuard struct {
	notAMutex int
	v         int // guarded by notAMutex — broken annotation // want
}

type badCopy struct {
	mu sync.Mutex
	v  int
}

func consumeByValue(c badCopy) int { // want
	return c.v
}

func (c badCopy) valueReceiver() int { // want
	return c.v
}

func derefCopy(p *badCopy) badCopy { // want (result type copies the lock)
	return *p // want
}

func pointerOK(p *badCopy) *badCopy { return p }
