// Package bufalias is a pclint test fixture; "want" comment markers flag
// the lines where the bufalias analyzer must report.
package bufalias

type ctx struct {
	ints [][]int64
}

// Ints hands out the per-batch scratch vector. pclint:recycled
func (c *ctx) Ints(col int) []int64 { return c.ints[col] }

// IntsAlias forwards a recycled buffer and is itself marked, so the direct
// return is allowed. pclint:recycled
func (c *ctx) IntsAlias(col int) []int64 { return c.Ints(col) }

type sink struct {
	kept []int64
	all  [][]int64
}

var global []int64

func badStore(c *ctx, s *sink) {
	buf := c.Ints(0)
	s.kept = buf // want
}

func badAppendElem(c *ctx, s *sink) {
	buf := c.Ints(0)
	s.all = append(s.all, buf) // want
}

func badReturn(c *ctx) []int64 {
	return c.Ints(0) // want
}

func badSendAlias(c *ctx, ch chan []int64) {
	b := c.Ints(1)
	b2 := b[:2]
	ch <- b2 // want
}

func badGlobal(c *ctx) {
	global = c.Ints(0) // want
}

func goodElementCopy(c *ctx, s *sink) {
	buf := c.Ints(0)
	for _, v := range buf {
		s.kept = append(s.kept, v)
	}
}

func goodSpreadCopy(c *ctx, s *sink) {
	buf := c.Ints(0)
	s.kept = append(s.kept, buf...)
}

func goodLocalUse(c *ctx) int64 {
	buf := c.Ints(0)
	var sum int64
	for _, v := range buf {
		sum += v
	}
	return sum
}
