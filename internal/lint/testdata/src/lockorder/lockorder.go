// Package lockorder is a pclint test fixture; "want" comment markers flag the
// lines where the lockorder analyzer must report.
package lockorder

import (
	"sync"
	"time"
)

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

var (
	a  A
	b  B
	ch = make(chan int)
)

// abOrder acquires A.mu then B.mu; together with baOrder below this forms a
// lock-order cycle, reported once at the lexically first internal edge.
func abOrder() {
	a.mu.Lock()
	b.mu.Lock() // want — cycle {A.mu, B.mu} attributed to this edge
	b.mu.Unlock()
	a.mu.Unlock()
}

// baOrder is the opposite order; the cycle is reported on abOrder's edge, so
// this acquisition itself carries no finding.
func baOrder() {
	b.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}

// recursive re-acquires the same mutex of the same instance.
func recursive() {
	a.mu.Lock()
	a.mu.Lock() // want — self-deadlock
	a.mu.Unlock()
	a.mu.Unlock()
}

// blockUnderLock holds a lock across a channel send.
func blockUnderLock() {
	a.mu.Lock()
	ch <- 1 // want — blocking under lock
	a.mu.Unlock()
}

// sleepy blocks; on its own that is fine.
func sleepy() {
	time.Sleep(time.Millisecond)
}

// callsBlockingUnderLock reaches a blocking operation through a callee.
func callsBlockingUnderLock() {
	b.mu.Lock()
	sleepy() // want — callee may block
	b.mu.Unlock()
}

// earlyExit releases on the early path; code after the branch runs with the
// lock held on the fall-through path, so nothing is misreported.
func earlyExit(cond bool) {
	a.mu.Lock()
	if cond {
		a.mu.Unlock()
		return
	}
	a.mu.Unlock()
}

// deferUnlock holds to function end via defer; no blocking op follows.
func deferUnlock() {
	a.mu.Lock()
	defer a.mu.Unlock()
}

// suppressed demonstrates the pclint:allow escape hatch.
func suppressed() {
	a.mu.Lock()
	ch <- 2 // pclint:allow lockorder: fixture demonstrates suppression
	a.mu.Unlock()
}
