// Package goroutinectx is a pclint test fixture; "want" comment markers flag
// the lines where the goroutinectx analyzer must report.
package goroutinectx

import (
	"context"
	"sync"
)

func goodWG() {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() { defer wg.Done() }()
	}
	wg.Wait()
}

func goodCtx(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

func goodChanArg(stop chan struct{}) {
	go worker(stop)
}

func worker(stop chan struct{}) { <-stop }

func goodRangeOverChan(jobs chan int) {
	go func() {
		for range jobs {
		}
	}()
}

func goodSelect(quit chan struct{}) {
	go func() {
		for {
			select {
			case <-quit:
				return
			default:
			}
		}
	}()
}

func badFireAndForget() {
	go func() {}() // want
}

func badOpaqueCall(f func()) {
	go f() // want
}
