package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// CallGraph is a CHA-style (class-hierarchy analysis) call graph over the
// loaded module packages. Static calls resolve to their single target;
// interface method calls resolve to every module-internal concrete method
// whose receiver type implements the interface ("all implementers might be
// the callee" — sound over the loaded program, which for this repo is the
// whole module). Calls through function-typed values are not resolved; the
// analyzers that need soundness there (noalloc) report them at the call site
// instead.
type CallGraph struct {
	prog *Program
	// callees lists the module-internal functions each declared function may
	// call, deduplicated, in deterministic order.
	callees map[*types.Func][]*types.Func
	// implCache memoizes CHA resolution per interface method.
	implCache map[*types.Func][]*types.Func
	// namedTypes is every named (non-interface) type declared in the module,
	// used as the CHA class hierarchy.
	namedTypes []*types.Named
}

// CallGraph lazily builds and returns the program's call graph.
func (prog *Program) CallGraph() *CallGraph {
	if prog.cg != nil {
		return prog.cg
	}
	cg := &CallGraph{
		prog:      prog,
		callees:   make(map[*types.Func][]*types.Func),
		implCache: make(map[*types.Func][]*types.Func),
	}
	cg.collectNamedTypes()
	for fn, di := range prog.Decls {
		if di.Decl.Body == nil {
			continue
		}
		set := make(map[*types.Func]bool)
		ast.Inspect(di.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, callee := range cg.ResolveCall(di.Pkg, call) {
				set[callee] = true
			}
			return true
		})
		list := make([]*types.Func, 0, len(set))
		for f := range set {
			list = append(list, f)
		}
		sort.Slice(list, func(i, j int) bool { return list[i].FullName() < list[j].FullName() })
		cg.callees[fn] = list
	}
	prog.cg = cg
	return cg
}

func (cg *CallGraph) collectNamedTypes() {
	for _, pkg := range cg.prog.Packages {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			cg.namedTypes = append(cg.namedTypes, named)
		}
	}
	sort.Slice(cg.namedTypes, func(i, j int) bool {
		return cg.namedTypes[i].Obj().Id() < cg.namedTypes[j].Obj().Id()
	})
}

// Callees returns the module-internal functions fn may call.
func (cg *CallGraph) Callees(fn *types.Func) []*types.Func { return cg.callees[fn] }

// ResolveCall resolves one call expression to its possible module-internal
// callees. The empty result means the callee is external (stdlib), a builtin,
// or an unresolvable function value.
func (cg *CallGraph) ResolveCall(pkg *Package, call *ast.CallExpr) []*types.Func {
	fn := calleeFunc(pkg.Info, call)
	if fn == nil {
		return nil
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		if iface, ok := recv.Type().Underlying().(*types.Interface); ok {
			return cg.implementers(fn, iface)
		}
	}
	if _, ok := cg.prog.Decls[fn]; ok {
		return []*types.Func{fn}
	}
	return nil
}

// implementers resolves an interface method to every module-internal concrete
// method that may satisfy the dynamic dispatch (CHA).
func (cg *CallGraph) implementers(m *types.Func, iface *types.Interface) []*types.Func {
	if out, ok := cg.implCache[m]; ok {
		return out
	}
	var out []*types.Func
	for _, named := range cg.namedTypes {
		var impl types.Type
		switch {
		case types.Implements(named, iface):
			impl = named
		case types.Implements(types.NewPointer(named), iface):
			impl = types.NewPointer(named)
		default:
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, m.Pkg(), m.Name())
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if _, declared := cg.prog.Decls[fn]; declared {
			out = append(out, fn)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FullName() < out[j].FullName() })
	cg.implCache[m] = out
	return out
}

// calleeFunc resolves the statically named function or method of a call,
// unwrapping parentheses. Returns nil for builtins, type conversions, and
// calls through function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	switch v := fun.(type) {
	case *ast.Ident:
		fn, _ := info.Uses[v].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[v.Sel].(*types.Func)
		return fn
	}
	return nil
}

// TransitiveClosure computes, for every declared function, the union of a
// per-function seed fact over the function itself and all module-internal
// functions reachable from it, stopping traversal at functions for which
// stop returns true. seed and stop are consulted on every declared function.
func (cg *CallGraph) TransitiveClosure(seed func(*types.Func) bool, stop func(*types.Func) bool) map[*types.Func]bool {
	// Reverse propagation to a fixed point: fact(f) = seed(f) || any callee
	// g with !stop(g) && fact(g).
	fact := make(map[*types.Func]bool)
	for fn := range cg.prog.Decls {
		if seed(fn) {
			fact[fn] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for fn := range cg.prog.Decls {
			if fact[fn] {
				continue
			}
			for _, g := range cg.callees[fn] {
				if stop != nil && stop(g) {
					continue
				}
				if fact[g] {
					fact[fn] = true
					changed = true
					break
				}
			}
		}
	}
	return fact
}
