package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder lifts lockcheck's per-function lock tracking into a program-wide
// lock-acquisition graph and enforces three properties the upcoming server
// and work-stealing phases depend on:
//
//  1. Acyclicity: if any execution can hold lock A while acquiring lock B,
//     the graph gains edge A→B; a cycle among *distinct* locks means two
//     goroutines can acquire them in opposite orders and deadlock. Edges are
//     collected both lexically (A.Lock() … B.Lock() in one body) and
//     interprocedurally: a call made while A is held contributes edges to
//     every lock the callee may (transitively, CHA-resolved) acquire.
//  2. No recursive acquisition: sync.Mutex is not reentrant, so acquiring a
//     mutex while the *same receiver expression's* same mutex is held
//     self-deadlocks. (Same-field locks on *different* receivers — e.g. two
//     tables locked by a join — are legitimate and are deliberately not
//     reported as a self-cycle; static analysis cannot order instances.)
//  3. No blocking under a lock: a lock held across a channel send/receive, a
//     select without a default, sync.WaitGroup/Cond.Wait, time.Sleep, or
//     file/network I/O turns that wait into lock-hold time for every other
//     goroutine — and can deadlock outright if the unblocking party needs
//     the same lock. Calls into module functions that may (transitively)
//     block are reported the same way.
//
// Lock identity is the mutex *field* (or package-level mutex variable):
// instance-insensitive, the standard class-level approximation. Suppress
// intentional patterns with `pclint:allow lockorder: <why>`.
type LockOrder struct{}

// Name implements Analyzer.
func (LockOrder) Name() string { return "lockorder" }

// lockEdge is one observed A-held-while-acquiring-B event.
type lockEdge struct {
	from, to *types.Var
	pos      token.Pos
	fn       string // function where observed (for the message)
	viaCall  string // non-empty when the acquisition happens inside a callee
}

// lockOrderState is the shared whole-program computation, built once and
// reused by every per-package Run call.
type lockOrderState struct {
	names    map[*types.Var]string // lock -> "pkg.Type.field" display name
	edges    []lockEdge
	findings []Finding // recursive-lock + blocking findings, all packages
	cycles   []Finding // cycle findings, attributed to representative edges
}

// Run implements Analyzer. The analysis is whole-program; each per-package
// call reports the findings that fall in pkg's files.
func (lo LockOrder) Run(prog *Program, pkg *Package) []Finding {
	st := prog.lockOrderState()
	var out []Finding
	for _, f := range append(append([]Finding{}, st.findings...), st.cycles...) {
		if prog.fileInPackage(pkg, f.Pos.Filename) {
			out = append(out, f)
		}
	}
	return out
}

// fileInPackage reports whether filename belongs to pkg.
func (prog *Program) fileInPackage(pkg *Package, filename string) bool {
	for _, f := range pkg.Files {
		if prog.Fset.Position(f.Pos()).Filename == filename {
			return true
		}
	}
	return false
}

func (prog *Program) lockOrderState() *lockOrderState {
	if prog.lo != nil {
		return prog.lo
	}
	st := &lockOrderState{names: lockNames(prog)}
	cg := prog.CallGraph()

	// Transitive facts over the call graph.
	acquires := transitiveAcquires(prog, cg)
	blocks := transitiveBlocks(prog, cg)

	// Walk every function once, tracking the lexically held set.
	fns := sortedDecls(prog)
	for _, fn := range fns {
		di := prog.Decls[fn]
		if di.Decl.Body == nil {
			continue
		}
		st.walkFunc(prog, cg, fn, di, acquires, blocks)
	}

	st.detectCycles(prog)
	SortFindings(st.findings)
	prog.lo = st
	return st
}

// sortedDecls returns the declared functions in deterministic order.
func sortedDecls(prog *Program) []*types.Func {
	fns := make([]*types.Func, 0, len(prog.Decls))
	for fn := range prog.Decls {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].FullName() < fns[j].FullName() })
	return fns
}

// lockNames maps every mutex-typed struct field and package-level mutex var
// of the module to a stable display name.
func lockNames(prog *Program) map[*types.Var]string {
	names := make(map[*types.Var]string)
	for _, pkg := range prog.Packages {
		short := pkg.Types.Name()
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			switch obj := scope.Lookup(name).(type) {
			case *types.Var:
				if isMutexType(obj.Type()) {
					names[obj] = short + "." + obj.Name()
				}
			case *types.TypeName:
				named, ok := obj.Type().(*types.Named)
				if !ok {
					continue
				}
				stru, ok := named.Underlying().(*types.Struct)
				if !ok {
					continue
				}
				for i := 0; i < stru.NumFields(); i++ {
					f := stru.Field(i)
					if isMutexType(f.Type()) {
						names[f] = short + "." + obj.Name() + "." + f.Name()
					}
				}
			}
		}
	}
	return names
}

// lockAcqCall recognizes a Lock/RLock acquisition call and returns the lock
// variable (mutex struct field or package-level mutex var) plus the receiver
// expression's text for recursion detection. Unlock calls return delta -1.
func lockAcqCall(pkg *Package, call *ast.CallExpr) (lock *types.Var, recvText string, delta int, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return nil, "", 0, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		delta = 1
	case "Unlock", "RUnlock":
		delta = -1
	default:
		return nil, "", 0, false
	}
	switch inner := sel.X.(type) {
	case *ast.SelectorExpr: // x.mu.Lock()
		selInfo, okInfo := pkg.Info.Selections[inner]
		if !okInfo || selInfo.Kind() != types.FieldVal {
			return nil, "", 0, false
		}
		fv, okVar := selInfo.Obj().(*types.Var)
		if !okVar || !isMutexType(fv.Type()) {
			return nil, "", 0, false
		}
		return fv, exprText(inner.X), delta, true
	case *ast.Ident: // mu.Lock() — package-level or local mutex
		v, okVar := pkg.Info.Uses[inner].(*types.Var)
		if !okVar || !isMutexType(v.Type()) {
			return nil, "", 0, false
		}
		if v.Parent() != v.Pkg().Scope() {
			return nil, "", 0, false // local mutexes carry no cross-function order
		}
		return v, "", delta, true
	}
	return nil, "", 0, false
}

// exprText renders a receiver expression for same-instance comparison.
func exprText(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprText(v.X) + "." + v.Sel.Name
	case *ast.StarExpr:
		return "*" + exprText(v.X)
	case *ast.ParenExpr:
		return exprText(v.X)
	case *ast.IndexExpr:
		return exprText(v.X) + "[...]"
	case *ast.CallExpr:
		return exprText(v.Fun) + "(...)"
	}
	return "?"
}

// directAcquires returns the locks a single function body acquires directly.
func directAcquires(prog *Program, fn *types.Func) map[*types.Var]bool {
	di, ok := prog.Decls[fn]
	if !ok || di.Decl.Body == nil {
		return nil
	}
	out := make(map[*types.Var]bool)
	ast.Inspect(di.Decl.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if lock, _, delta, ok := lockAcqCall(di.Pkg, call); ok && delta > 0 {
				out[lock] = true
			}
		}
		return true
	})
	return out
}

// transitiveAcquires computes, per function, every lock it or any transitive
// module-internal callee may acquire.
func transitiveAcquires(prog *Program, cg *CallGraph) map[*types.Func]map[*types.Var]bool {
	acq := make(map[*types.Func]map[*types.Var]bool)
	for fn := range prog.Decls {
		direct := directAcquires(prog, fn)
		if len(direct) > 0 {
			acq[fn] = direct
		}
	}
	for changed := true; changed; {
		changed = false
		for fn := range prog.Decls {
			for _, g := range cg.Callees(fn) {
				for lock := range acq[g] {
					if acq[fn] == nil {
						acq[fn] = make(map[*types.Var]bool)
					}
					if !acq[fn][lock] {
						acq[fn][lock] = true
						changed = true
					}
				}
			}
		}
	}
	return acq
}

// directBlockOp recognizes a blocking construct and describes it; nil means
// the node does not block.
func directBlockOp(pkg *Package, n ast.Node) (string, bool) {
	switch v := n.(type) {
	case *ast.SendStmt:
		return "channel send", true
	case *ast.UnaryExpr:
		if v.Op == token.ARROW {
			return "channel receive", true
		}
	case *ast.RangeStmt:
		if t := pkg.Info.TypeOf(v.X); t != nil && isChanType(t) {
			return "range over channel", true
		}
	case *ast.SelectStmt:
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				return "", false // has a default: non-blocking
			}
		}
		return "select without default", true
	case *ast.CallExpr:
		return blockingCall(pkg, v)
	}
	return "", false
}

// blockingCall recognizes calls that can park the goroutine: WaitGroup/Cond
// Wait, time.Sleep, and file/network I/O entry points.
func blockingCall(pkg *Package, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	path, name := fn.Pkg().Path(), fn.Name()
	recvNamed := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			recvNamed = named.Obj().Name()
		}
	}
	switch {
	case path == "sync" && name == "Wait" && (recvNamed == "WaitGroup" || recvNamed == "Cond"):
		return "sync." + recvNamed + ".Wait", true
	case path == "time" && name == "Sleep":
		return "time.Sleep", true
	case path == "os" && recvNamed == "File" &&
		(name == "Read" || name == "ReadAt" || name == "Write" || name == "WriteAt" ||
			name == "WriteString" || name == "Sync" || name == "ReadFrom"):
		return "os.File." + name, true
	case path == "os" && (name == "ReadFile" || name == "WriteFile" || name == "Open" ||
		name == "Create" || name == "OpenFile" || name == "Rename" || name == "Remove" || name == "RemoveAll"):
		return "os." + name, true
	case path == "io" && (name == "Copy" || name == "CopyN" || name == "ReadAll" || name == "ReadFull"):
		return "io." + name, true
	case strings.HasPrefix(path, "net"):
		return path + "." + name, true
	case path == "os/exec" && (name == "Run" || name == "Output" || name == "CombinedOutput" || name == "Wait" || name == "Start"):
		return "os/exec." + name, true
	}
	return "", false
}

// functionDirectlyBlocks reports whether fn's own body (excluding nested func
// literals, which run on their own goroutine or batch schedule) contains a
// blocking construct.
func functionDirectlyBlocks(prog *Program, fn *types.Func) (string, bool) {
	di, ok := prog.Decls[fn]
	if !ok || di.Decl.Body == nil {
		return "", false
	}
	desc, found := "", false
	ast.Inspect(di.Decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		if d, ok := directBlockOp(di.Pkg, n); ok {
			desc, found = d, true
		}
		return !found
	})
	return desc, found
}

// transitiveBlocks computes, per function, whether it may block directly or
// through any module-internal callee, with a deterministic description: the
// function's own blocking op, or the (lexicographically first) blocking
// callee it reaches.
func transitiveBlocks(prog *Program, cg *CallGraph) map[*types.Func]string {
	direct := make(map[*types.Func]string)
	mayBlock := make(map[*types.Func]bool)
	for fn := range prog.Decls {
		if desc, ok := functionDirectlyBlocks(prog, fn); ok {
			direct[fn] = desc
			mayBlock[fn] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for fn := range prog.Decls {
			if mayBlock[fn] {
				continue
			}
			for _, g := range cg.Callees(fn) {
				if mayBlock[g] {
					mayBlock[fn] = true
					changed = true
					break
				}
			}
		}
	}
	blocks := make(map[*types.Func]string, len(mayBlock))
	for fn := range mayBlock {
		if desc, ok := direct[fn]; ok {
			blocks[fn] = desc
			continue
		}
		// Callees(fn) is sorted by FullName, so the first blocking callee is
		// deterministic.
		for _, g := range cg.Callees(fn) {
			if mayBlock[g] {
				blocks[fn] = "a blocking path through " + shortFuncName(g)
				break
			}
		}
	}
	return blocks
}

// shortFuncName renders pkg.Func or (*pkg.T).Method without the module path.
func shortFuncName(fn *types.Func) string {
	full := fn.FullName()
	prefix := ""
	if strings.HasPrefix(full, "(*") {
		prefix, full = "(*", full[2:]
	} else if strings.HasPrefix(full, "(") {
		prefix, full = "(", full[1:]
	}
	if i := strings.LastIndex(full, "/"); i >= 0 {
		full = full[i+1:]
	}
	return prefix + full
}

// heldLock is one lexically held lock.
type heldLock struct {
	lock     *types.Var
	recvText string
	readOnly bool // RLock: reentrant-safe for reads, still ordered
}

// walkFunc tracks the lexically held lock set through one function body,
// recording acquisition edges, recursive locks, and blocking-under-lock.
// The model mirrors lockcheck: events are ordered by position; an Unlock
// immediately followed by return/break/continue restores the held state
// after the exiting statement; deferred Unlocks never clear state (the lock
// is held to the end); func literal bodies are skipped (they run elsewhere).
func (st *lockOrderState) walkFunc(prog *Program, cg *CallGraph, fn *types.Func, di declInfo,
	acquires map[*types.Func]map[*types.Var]bool, blocks map[*types.Func]string) {

	pkg := di.Pkg
	body := di.Decl.Body
	fname := shortFuncName(fn)

	deferred := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if ds, ok := n.(*ast.DeferStmt); ok {
			deferred[ds.Call] = true
		}
		return true
	})
	exiting := collectExiting(body)

	// One lexical pass, position-ordered events.
	type event struct {
		pos  token.Pos
		node ast.Node
		call *ast.CallExpr
	}
	var events []event
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch v := n.(type) {
		case *ast.CallExpr:
			events = append(events, event{pos: v.Pos(), node: v, call: v})
		case *ast.SendStmt, *ast.SelectStmt, *ast.RangeStmt:
			events = append(events, event{pos: n.Pos(), node: n})
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				events = append(events, event{pos: v.Pos(), node: v})
			}
		}
		return true
	})
	sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	var held []heldLock
	// restores maps a position to locks to re-add once passed (early-exit
	// unlock pattern).
	type restore struct {
		pos token.Pos
		l   heldLock
	}
	var restores []restore

	release := func(lock *types.Var) (heldLock, bool) {
		for i := len(held) - 1; i >= 0; i-- {
			if held[i].lock == lock {
				h := held[i]
				held = append(held[:i], held[i+1:]...)
				return h, true
			}
		}
		return heldLock{}, false
	}
	heldIndex := func(lock *types.Var) int {
		for i := range held {
			if held[i].lock == lock {
				return i
			}
		}
		return -1
	}

	report := func(pos token.Pos, msg string) {
		st.findings = append(st.findings, Finding{
			Analyzer: "lockorder",
			Pos:      pkg.Fset.Position(pos),
			Message:  msg,
		})
	}

	for _, ev := range events {
		// Apply pending restores that end before this event.
		for i := 0; i < len(restores); {
			if restores[i].pos <= ev.pos {
				held = append(held, restores[i].l)
				restores = append(restores[:i], restores[i+1:]...)
			} else {
				i++
			}
		}

		if ev.call != nil {
			call := ev.call
			if lock, recvText, delta, ok := lockAcqCall(pkg, call); ok {
				if delta < 0 {
					if deferred[call] {
						continue // releases at return, after everything lexical
					}
					if h, ok := release(lock); ok {
						if end, isExit := exiting[call]; isExit {
							restores = append(restores, restore{pos: end, l: h})
						}
					}
					continue
				}
				// Acquisition: recursion + ordering edges.
				if i := heldIndex(lock); i >= 0 {
					h := held[i]
					if h.recvText == recvText && !(h.readOnly && isRLockCall(call)) {
						report(call.Pos(), fmt.Sprintf(
							"%s acquires %s while already holding it (receiver %q): sync mutexes are not reentrant — this self-deadlocks",
							fname, st.names[lock], recvText))
					}
				}
				for _, h := range held {
					if h.lock != lock {
						st.edges = append(st.edges, lockEdge{from: h.lock, to: lock, pos: call.Pos(), fn: fname})
					}
				}
				held = append(held, heldLock{lock: lock, recvText: recvText, readOnly: isRLockCall(call)})
				continue
			}
			// Non-lock call while holding: interprocedural edges + blocking.
			if len(held) > 0 && !deferred[call] {
				callees := cg.ResolveCall(pkg, call)
				for _, g := range callees {
					for lock := range acquires[g] {
						for _, h := range held {
							if h.lock != lock {
								st.edges = append(st.edges, lockEdge{
									from: h.lock, to: lock, pos: call.Pos(),
									fn: fname, viaCall: shortFuncName(g),
								})
							} else if h.recvText == "" || receiverMayAlias(pkg, call, h.recvText) {
								report(call.Pos(), fmt.Sprintf(
									"%s calls %s while holding %s, which %s may re-acquire: potential self-deadlock",
									fname, shortFuncName(g), st.names[lock], shortFuncName(g)))
							}
						}
					}
					if desc, ok := blocks[g]; ok {
						report(call.Pos(), fmt.Sprintf(
							"%s holds %s across call to %s, which may block on %s",
							fname, heldNames(st.names, held), shortFuncName(g), desc))
					}
				}
				if len(callees) == 0 {
					if desc, ok := blockingCall(pkg, call); ok {
						report(call.Pos(), fmt.Sprintf(
							"%s holds %s across blocking operation (%s)",
							fname, heldNames(st.names, held), desc))
					}
				}
			}
			continue
		}

		// Non-call blocking constructs.
		if len(held) > 0 {
			if desc, ok := directBlockOp(pkg, ev.node); ok {
				report(ev.node.Pos(), fmt.Sprintf(
					"%s holds %s across blocking operation (%s)",
					fname, heldNames(st.names, held), desc))
			}
		}
	}
}

// receiverMayAlias reports whether the called method's receiver expression
// textually matches the lock's receiver — the conservative same-instance
// test for call-through re-acquisition.
func receiverMayAlias(pkg *Package, call *ast.CallExpr, recvText string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return true // unqualified call: cannot rule aliasing out
	}
	return exprText(sel.X) == recvText
}

func isRLockCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "RLock"
}

func heldNames(names map[*types.Var]string, held []heldLock) string {
	parts := make([]string, 0, len(held))
	for _, h := range held {
		parts = append(parts, names[h.lock])
	}
	sort.Strings(parts)
	return strings.Join(parts, ", ")
}

// collectExiting maps Unlock-style calls immediately followed by
// return/break/continue to the end position of the exiting statement (see
// lockcheck for the rationale).
func collectExiting(body *ast.BlockStmt) map[*ast.CallExpr]token.Pos {
	exiting := make(map[*ast.CallExpr]token.Pos)
	ast.Inspect(body, func(n ast.Node) bool {
		var stmts []ast.Stmt
		switch v := n.(type) {
		case *ast.BlockStmt:
			stmts = v.List
		case *ast.CaseClause:
			stmts = v.Body
		case *ast.CommClause:
			stmts = v.Body
		default:
			return true
		}
		for i := 0; i+1 < len(stmts); i++ {
			es, ok := stmts[i].(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			switch stmts[i+1].(type) {
			case *ast.ReturnStmt, *ast.BranchStmt:
				exiting[call] = stmts[i+1].End()
			}
		}
		return true
	})
	return exiting
}

// detectCycles finds strongly connected components with more than one lock in
// the acquisition graph and reports each once, deterministically.
func (st *lockOrderState) detectCycles(prog *Program) {
	// Adjacency with a representative (earliest-position) edge per pair.
	type pair struct{ from, to *types.Var }
	repr := make(map[pair]lockEdge)
	adj := make(map[*types.Var]map[*types.Var]bool)
	for _, e := range st.edges {
		p := pair{e.from, e.to}
		if old, ok := repr[p]; !ok || e.pos < old.pos {
			repr[p] = e
		}
		if adj[e.from] == nil {
			adj[e.from] = make(map[*types.Var]bool)
		}
		adj[e.from][e.to] = true
	}

	// Deterministic node order.
	nodes := make([]*types.Var, 0, len(adj))
	seen := make(map[*types.Var]bool)
	add := func(v *types.Var) {
		if !seen[v] {
			seen[v] = true
			nodes = append(nodes, v)
		}
	}
	for _, e := range st.edges {
		add(e.from)
		add(e.to)
	}
	sort.Slice(nodes, func(i, j int) bool { return st.names[nodes[i]] < st.names[nodes[j]] })

	// Tarjan SCC (iterative enough at this scale via recursion).
	index := make(map[*types.Var]int)
	low := make(map[*types.Var]int)
	onStack := make(map[*types.Var]bool)
	var stack []*types.Var
	next := 0
	var sccs [][]*types.Var
	var strongconnect func(v *types.Var)
	strongconnect = func(v *types.Var) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		// Deterministic successor order.
		succs := make([]*types.Var, 0, len(adj[v]))
		for w := range adj[v] {
			succs = append(succs, w)
		}
		sort.Slice(succs, func(i, j int) bool { return st.names[succs[i]] < st.names[succs[j]] })
		for _, w := range succs {
			if _, ok := index[w]; !ok {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []*types.Var
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			if len(scc) > 1 {
				sccs = append(sccs, scc)
			}
		}
	}
	for _, v := range nodes {
		if _, ok := index[v]; !ok {
			strongconnect(v)
		}
	}

	for _, scc := range sccs {
		names := make([]string, 0, len(scc))
		inSCC := make(map[*types.Var]bool, len(scc))
		for _, v := range scc {
			names = append(names, st.names[v])
			inSCC[v] = true
		}
		sort.Strings(names)
		// Representative edge: the earliest-position internal edge.
		var best lockEdge
		haveBest := false
		for p, e := range repr {
			if !inSCC[p.from] || !inSCC[p.to] {
				continue
			}
			if !haveBest || e.pos < best.pos {
				best, haveBest = e, true
			}
		}
		if !haveBest {
			continue
		}
		via := ""
		if best.viaCall != "" {
			via = " via call to " + best.viaCall
		}
		st.cycles = append(st.cycles, Finding{
			Analyzer: "lockorder",
			Pos:      prog.Fset.Position(best.pos),
			Message: fmt.Sprintf(
				"lock-order cycle among {%s}: %s acquires %s while holding %s%s — opposite-order acquisition elsewhere can deadlock",
				strings.Join(names, ", "), best.fn, st.names[best.to], st.names[best.from], via),
		})
	}
	SortFindings(st.cycles)
}
