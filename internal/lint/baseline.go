package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Baseline freezes known findings so new analyzers can land on a tree with
// pre-existing debt: findings matching a baseline entry are suppressed, and
// baseline entries matching no current finding are *stale* — CI fails on
// them, forcing the baseline to shrink monotonically as debt is paid down.
//
// Entries match on (analyzer, file, message), deliberately not on line
// numbers: unrelated edits move lines, and a baseline that churns on every
// edit stops being reviewable. Matching is multiset-aware — two identical
// findings need two entries.
type Baseline struct {
	// Comment documents the workflow for humans editing the file.
	Comment  string          `json:"comment,omitempty"`
	Findings []BaselineEntry `json:"findings"`
}

// BaselineEntry identifies one tolerated finding.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
}

func (e BaselineEntry) String() string {
	return fmt.Sprintf("%s: %s: %s", e.File, e.Analyzer, e.Message)
}

// LoadBaseline reads a baseline file. A missing file is an empty baseline.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("lint: reading baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: parsing baseline %s: %w", path, err)
	}
	return &b, nil
}

// Save writes the baseline deterministically (sorted, indented, trailing
// newline) so regeneration produces reviewable diffs.
func (b *Baseline) Save(path string) error {
	sortEntries(b.Findings)
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// NewBaseline builds a baseline from current findings.
func NewBaseline(moduleRoot string, findings []Finding) *Baseline {
	b := &Baseline{
		Comment: "pclint baseline: findings frozen when an analyzer landed. " +
			"Fix the code or add a documented pclint: annotation instead of adding entries; " +
			"CI fails on stale entries, so remove them as debt is paid down. " +
			"Regenerate with: go run ./cmd/pclint -write-baseline",
	}
	for _, f := range findings {
		b.Findings = append(b.Findings, BaselineEntry{
			Analyzer: f.Analyzer,
			File:     relPath(moduleRoot, f.Pos.Filename),
			Message:  f.Message,
		})
	}
	sortEntries(b.Findings)
	return b
}

func sortEntries(entries []BaselineEntry) {
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// Filter splits findings into those not covered by the baseline (new) and
// reports baseline entries that matched nothing (stale). Each entry absorbs
// at most as many findings as it occurs in the baseline.
func (b *Baseline) Filter(moduleRoot string, findings []Finding) (fresh []Finding, stale []BaselineEntry) {
	budget := make(map[BaselineEntry]int)
	for _, e := range b.Findings {
		budget[e]++
	}
	for _, f := range findings {
		key := BaselineEntry{
			Analyzer: f.Analyzer,
			File:     relPath(moduleRoot, f.Pos.Filename),
			Message:  f.Message,
		}
		if budget[key] > 0 {
			budget[key]--
			continue
		}
		fresh = append(fresh, f)
	}
	for e, n := range budget {
		for i := 0; i < n; i++ {
			stale = append(stale, e)
		}
	}
	sortEntries(stale)
	return fresh, stale
}
