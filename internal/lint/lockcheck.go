package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// LockCheck enforces the repo's lock-annotation discipline:
//
//   - A struct field whose doc or line comment contains `guarded by <mu>`
//     may only be read or written while <mu> (a sync.Mutex or sync.RWMutex
//     field of the same struct) is held.
//   - A function is considered to hold the mutex at an access if it either
//     (a) called <expr>.<mu>.Lock() or RLock() earlier in the body with no
//     intervening Unlock/RUnlock, (b) has the `Locked` name suffix, or
//     (c) carries the `pclint:held` doc marker — both conventions meaning
//     "caller holds the lock".
//   - Fresh values built in the same function via a composite literal
//     (constructors) are exempt: nothing else can see them yet.
//   - Lock-bearing structs must not be copied: value receivers, value
//     parameters, value results and *p dereference copies are flagged.
//
// The analysis is lexical and per-function: closure bodies (func literals)
// are not analyzed, and lock state does not flow across calls. That matches
// this codebase's style — methods take the lock at the top or are named
// *Locked — and keeps the checker dependency-free.
type LockCheck struct{}

// Name implements Analyzer.
func (LockCheck) Name() string { return "lockcheck" }

var guardedByRe = regexp.MustCompile(`guarded by (\w+)`)

// guardInfo describes one annotated field.
type guardInfo struct {
	structName string
	fieldName  string
	mutexName  string
	mutexVar   *types.Var // the guard field; nil if the annotation is broken
}

// lockEvent is one Lock/Unlock call inside a function body.
type lockEvent struct {
	pos   token.Pos
	mutex *types.Var // guard field object
	delta int        // +1 Lock/RLock, -1 Unlock/RUnlock
}

// Run implements Analyzer.
func (lc LockCheck) Run(prog *Program, pkg *Package) []Finding {
	var out []Finding

	// Phase 1: collect guarded-field annotations.
	guards := make(map[*types.Var]guardInfo) // guarded field -> info
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardAnnotation(field)
				if mu == "" {
					continue
				}
				muVar := structFieldVar(pkg.Info, st, mu)
				if muVar == nil || !isMutexType(muVar.Type()) {
					out = append(out, Finding{
						Analyzer: "lockcheck",
						Pos:      pkg.Fset.Position(field.Pos()),
						Message:  fmt.Sprintf("field annotated `guarded by %s` but %s.%s is not a sync.Mutex/RWMutex field", mu, ts.Name.Name, mu),
					})
					continue
				}
				for _, name := range field.Names {
					if fv, ok := pkg.Info.Defs[name].(*types.Var); ok {
						guards[fv] = guardInfo{structName: ts.Name.Name, fieldName: name.Name, mutexName: mu, mutexVar: muVar}
					}
				}
			}
			return true
		})
	}

	// Phase 2: check every function body.
	for _, file := range pkg.Files {
		for _, fd := range fileFuncs(file) {
			if fd.Body == nil {
				continue
			}
			out = append(out, lc.checkCopies(pkg, fd)...)
			if len(guards) > 0 {
				out = append(out, lc.checkBody(pkg, fd, guards)...)
			}
		}
	}
	return out
}

// guardAnnotation extracts the mutex name from a field's comments.
func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// structFieldVar resolves a field name of a struct type declaration.
func structFieldVar(info *types.Info, st *ast.StructType, name string) *types.Var {
	for _, f := range st.Fields.List {
		for _, n := range f.Names {
			if n.Name == name {
				v, _ := info.Defs[n].(*types.Var)
				return v
			}
		}
	}
	return nil
}

func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// holdsAll reports whether fd is marked as running with the caller's lock
// held (the *Locked suffix or pclint:held marker).
func holdsAll(fd *ast.FuncDecl) bool {
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		return true
	}
	return commentContains(fd.Doc, "pclint:held")
}

// checkBody verifies guarded-field accesses inside one function.
func (LockCheck) checkBody(pkg *Package, fd *ast.FuncDecl, guards map[*types.Var]guardInfo) []Finding {
	if holdsAll(fd) {
		return nil
	}

	// Fresh locals: identifiers bound to composite literals (or their
	// address) in this body. Constructor writes to them are exempt.
	fresh := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE {
			return true
		}
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			rhs := as.Rhs[i]
			if ue, ok := rhs.(*ast.UnaryExpr); ok && ue.Op == token.AND {
				rhs = ue.X
			}
			if _, ok := rhs.(*ast.CompositeLit); ok {
				if obj := pkg.Info.Defs[id]; obj != nil {
					fresh[obj] = true
				}
			}
		}
		return true
	})

	// Collect lock events and guarded accesses in one walk, skipping func
	// literal subtrees (closure bodies run at unknowable times).
	var events []lockEvent
	type access struct {
		pos   token.Pos
		info  guardInfo
		field *types.Var
	}
	var accesses []access
	deferred := make(map[*ast.CallExpr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if ds, ok := n.(*ast.DeferStmt); ok {
			deferred[ds.Call] = true
		}
		return true
	})
	// An Unlock immediately followed by return/break/continue leaves the
	// enclosing flow — it must not clear the held state for code after the
	// branch (the `if miss { mu.Unlock(); return }` early-exit pattern).
	// Accesses inside the exiting statement itself still happen after the
	// unlock, so the release applies up to the end of that statement and the
	// held state is restored afterwards. Maps the unlock call to that end
	// position.
	exiting := make(map[*ast.CallExpr]token.Pos)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var stmts []ast.Stmt
		switch v := n.(type) {
		case *ast.BlockStmt:
			stmts = v.List
		case *ast.CaseClause:
			stmts = v.Body
		case *ast.CommClause:
			stmts = v.Body
		default:
			return true
		}
		for i := 0; i+1 < len(stmts); i++ {
			es, ok := stmts[i].(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			switch stmts[i+1].(type) {
			case *ast.ReturnStmt, *ast.BranchStmt:
				exiting[call] = stmts[i+1].End()
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch node := n.(type) {
		case *ast.CallExpr:
			// A deferred Unlock releases at return, after every lexical
			// access — it must not clear the held state at its own position.
			if deferred[node] {
				return true
			}
			if mu, delta, ok := lockCall(pkg.Info, node); ok {
				events = append(events, lockEvent{pos: node.Pos(), mutex: mu, delta: delta})
				if delta < 0 {
					if end, ok := exiting[node]; ok {
						// Restore held state after the exiting statement: code
						// lexically below it runs on paths where this unlock
						// never executed.
						events = append(events, lockEvent{pos: end, mutex: mu, delta: +1})
					}
				}
			}
		case *ast.SelectorExpr:
			selInfo, ok := pkg.Info.Selections[node]
			if !ok || selInfo.Kind() != types.FieldVal {
				return true
			}
			fv, ok := selInfo.Obj().(*types.Var)
			if !ok {
				return true
			}
			gi, guarded := guards[fv]
			if !guarded {
				return true
			}
			if base, ok := node.X.(*ast.Ident); ok {
				if obj := pkg.Info.Uses[base]; obj != nil && fresh[obj] {
					return true
				}
			}
			accesses = append(accesses, access{pos: node.Pos(), info: gi, field: fv})
		}
		return true
	})
	if len(accesses) == 0 {
		return nil
	}
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	heldAt := func(mu *types.Var, pos token.Pos) bool {
		depth := 0
		for _, ev := range events {
			if ev.pos >= pos {
				break
			}
			if ev.mutex == mu {
				depth += ev.delta
			}
		}
		return depth > 0
	}

	var out []Finding
	for _, acc := range accesses {
		if heldAt(acc.info.mutexVar, acc.pos) {
			continue
		}
		out = append(out, Finding{
			Analyzer: "lockcheck",
			Pos:      pkg.Fset.Position(acc.pos),
			Message: fmt.Sprintf("%s.%s is accessed without holding %s (field is `guarded by %s`)",
				acc.info.structName, acc.info.fieldName, acc.info.mutexName, acc.info.mutexName),
		})
	}
	return out
}

// lockCall recognizes <expr>.<mu>.Lock/RLock/Unlock/RUnlock() where <mu> is
// a struct field of mutex type, returning the guard field and lock delta.
func lockCall(info *types.Info, call *ast.CallExpr) (*types.Var, int, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, 0, false
	}
	var delta int
	switch sel.Sel.Name {
	case "Lock", "RLock":
		delta = 1
	case "Unlock", "RUnlock":
		delta = -1
	default:
		return nil, 0, false
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return nil, 0, false
	}
	selInfo, ok := info.Selections[inner]
	if !ok || selInfo.Kind() != types.FieldVal {
		return nil, 0, false
	}
	fv, ok := selInfo.Obj().(*types.Var)
	if !ok || !isMutexType(fv.Type()) {
		return nil, 0, false
	}
	return fv, delta, true
}

// checkCopies flags by-value copies of lock-bearing structs.
func (LockCheck) checkCopies(pkg *Package, fd *ast.FuncDecl) []Finding {
	var out []Finding
	flag := func(pos token.Pos, what string, t types.Type) {
		out = append(out, Finding{
			Analyzer: "lockcheck",
			Pos:      pkg.Fset.Position(pos),
			Message:  fmt.Sprintf("%s copies lock-bearing struct %s; use a pointer", what, types.TypeString(t, types.RelativeTo(pkg.Types))),
		})
	}
	if fd.Recv != nil {
		for _, f := range fd.Recv.List {
			if t := pkg.Info.TypeOf(f.Type); t != nil && !isPointer(t) && containsLock(t, nil) {
				flag(f.Pos(), "method receiver", t)
			}
		}
	}
	if fd.Type.Params != nil {
		for _, f := range fd.Type.Params.List {
			if t := pkg.Info.TypeOf(f.Type); t != nil && !isPointer(t) && containsLock(t, nil) {
				flag(f.Pos(), "parameter", t)
			}
		}
	}
	if fd.Type.Results != nil {
		for _, f := range fd.Type.Results.List {
			if t := pkg.Info.TypeOf(f.Type); t != nil && !isPointer(t) && containsLock(t, nil) {
				flag(f.Pos(), "result", t)
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ue, ok := n.(*ast.StarExpr)
		if !ok {
			return true
		}
		// A *p expression that is read (copied) somewhere. Writing through
		// the pointer (*p = x) is fine for the LHS; ast.Inspect visits the
		// LHS too, so filter: flag only if the dereferenced type contains a
		// lock — both *p = *q sides then involve a struct copy anyway.
		if t := pkg.Info.TypeOf(ue); t != nil && containsLock(t, nil) {
			flag(ue.Pos(), "dereference", t)
		}
		return true
	})
	return out
}

func isPointer(t types.Type) bool {
	_, ok := t.Underlying().(*types.Pointer)
	return ok
}

// containsLock reports whether t (transitively through struct fields and
// arrays) contains a sync or sync/atomic value whose copy would be unsafe.
func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	if seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sync":
				return obj.Name() != "Locker" // every sync value type pins memory
			case "sync/atomic":
				return true // atomic types carry noCopy
			}
		}
		return containsLock(named.Underlying(), seen)
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return false
}
