package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// BufAlias flags retention of recycled per-batch buffers. Functions whose
// doc comment carries the `pclint:recycled` marker hand out slices that are
// overwritten on the next batch (e.g. expr.BlockCtx.Ints/Floats — the
// vectorized scan's per-block column vectors, and Slice.InsertXIDs — live
// MVCC arrays). A value obtained from such a function may be read freely
// within the batch, and its *elements* may be copied out, but the slice
// itself must not escape:
//
//   - stored into a struct field, map, or package-level variable,
//   - returned from the function,
//   - sent on a channel,
//   - appended as an element (append(dst, buf) — append(dst, buf...) is a
//     copy and therefore fine),
//   - captured by a goroutine.
//
// Local aliases (b2 := buf, b2 := buf[:n]) are tracked one assignment deep.
type BufAlias struct{}

// Name implements Analyzer.
func (BufAlias) Name() string { return "bufalias" }

// Run implements Analyzer.
func (BufAlias) Run(prog *Program, pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		for _, fd := range fileFuncs(file) {
			if fd.Body == nil {
				continue
			}
			out = append(out, checkBufAlias(prog, pkg, fd)...)
		}
	}
	return out
}

func checkBufAlias(prog *Program, pkg *Package, fd *ast.FuncDecl) []Finding {
	// Pass 1: find tainted locals — assigned from recycled calls, directly
	// or through slicing/alias chains. Iterate to a fixed point so aliases
	// of aliases are caught regardless of source order.
	tainted := make(map[types.Object]bool)
	var taintedFrom func(e ast.Expr) bool
	taintedFrom = func(e ast.Expr) bool {
		switch v := e.(type) {
		case *ast.CallExpr:
			if callee := calleeObj(pkg.Info, v); callee != nil && prog.Recycled[callee] {
				return true
			}
		case *ast.Ident:
			if obj := pkg.Info.Uses[v]; obj != nil && tainted[obj] {
				return true
			}
		case *ast.SliceExpr:
			return taintedFrom(v.X)
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				if i >= len(as.Rhs) {
					break
				}
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				var obj types.Object
				if as.Tok.String() == ":=" {
					obj = pkg.Info.Defs[id]
				} else {
					obj = pkg.Info.Uses[id]
				}
				if obj == nil || tainted[obj] {
					continue
				}
				if taintedFrom(as.Rhs[i]) {
					tainted[obj] = true
					changed = true
				}
			}
			return true
		})
	}
	finding := func(pos ast.Node, how string) Finding {
		return Finding{
			Analyzer: "bufalias",
			Pos:      pkg.Fset.Position(pos.Pos()),
			Message:  fmt.Sprintf("recycled per-batch buffer %s; copy the data out instead (buffer is reused on the next batch)", how),
		}
	}

	// Pass 2: find escapes.
	var out []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range node.Lhs {
				if i >= len(node.Rhs) {
					break
				}
				if !escapingLHS(pkg.Info, lhs) {
					continue
				}
				rhs := node.Rhs[i]
				if taintedFrom(rhs) {
					out = append(out, finding(rhs, "stored outside the batch scope"))
					continue
				}
				if call, ok := rhs.(*ast.CallExpr); ok {
					if arg := taintedAppendElem(pkg.Info, call, taintedFrom); arg != nil {
						out = append(out, finding(arg, "appended as an element and stored outside the batch scope"))
					}
				}
			}
		case *ast.ReturnStmt:
			// A function itself marked pclint:recycled is a forwarder: its
			// contract is to re-expose the buffer, so its returns are exempt.
			if obj := pkg.Info.Defs[fd.Name]; obj != nil && prog.Recycled[obj] {
				break
			}
			for _, res := range node.Results {
				if taintedFrom(res) {
					out = append(out, finding(res, "returned from the function"))
				} else if call, ok := res.(*ast.CallExpr); ok {
					if arg := taintedAppendElem(pkg.Info, call, taintedFrom); arg != nil {
						out = append(out, finding(arg, "appended as an element and returned"))
					}
				}
			}
		case *ast.SendStmt:
			if taintedFrom(node.Value) {
				out = append(out, finding(node.Value, "sent on a channel"))
			}
		case *ast.GoStmt:
			if fl, ok := node.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(fl.Body, func(inner ast.Node) bool {
					if id, ok := inner.(*ast.Ident); ok {
						if obj := pkg.Info.Uses[id]; obj != nil && tainted[obj] {
							out = append(out, finding(id, "captured by a goroutine"))
						}
					}
					return true
				})
			}
			for _, arg := range node.Call.Args {
				if taintedFrom(arg) {
					out = append(out, finding(arg, "passed to a goroutine"))
				}
			}
		}
		return true
	})
	return out
}

// escapingLHS reports whether an assignment target outlives the function's
// local scope: struct fields, index expressions on non-locals, package-level
// variables.
func escapingLHS(info *types.Info, lhs ast.Expr) bool {
	switch v := lhs.(type) {
	case *ast.SelectorExpr:
		sel, ok := info.Selections[v]
		return ok && sel.Kind() == types.FieldVal
	case *ast.IndexExpr:
		return escapingLHS(info, v.X) || isPackageLevel(info, v.X)
	case *ast.Ident:
		return isPackageLevelIdent(info, v)
	}
	return false
}

func isPackageLevel(info *types.Info, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && isPackageLevelIdent(info, id)
}

func isPackageLevelIdent(info *types.Info, id *ast.Ident) bool {
	obj := info.Uses[id]
	if obj == nil {
		return false
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// taintedAppendElem returns the first tainted argument appended as an
// element (no ellipsis) in an append call, or nil.
func taintedAppendElem(info *types.Info, call *ast.CallExpr, taintedFrom func(ast.Expr) bool) ast.Expr {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return nil
	}
	if obj := info.Uses[id]; obj == nil || obj.Parent() != types.Universe {
		return nil
	}
	for i := 1; i < len(call.Args); i++ {
		if i == len(call.Args)-1 && call.Ellipsis.IsValid() {
			continue // append(dst, buf...) copies elements: safe
		}
		if taintedFrom(call.Args[i]) {
			return call.Args[i]
		}
	}
	return nil
}

// calleeObj resolves the called function or method object of a call.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}
