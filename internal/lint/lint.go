// Package lint implements pclint, a project-specific static-analysis suite
// built exclusively on the standard library (go/parser, go/ast, go/types,
// go/importer) — no golang.org/x/tools dependency, preserving the module's
// zero-dependency claim.
//
// Seven analyzers target the failure modes of this codebase's concurrent scan
// and cache paths:
//
//   - lockcheck: struct fields annotated `// guarded by <mu>` may only be
//     accessed while that mutex is held, and lock-bearing structs must not
//     be copied by value.
//   - errwrap: fmt.Errorf calls that format an error operand must use %w so
//     errors.Is/As can traverse the chain, and errors.New(fmt.Sprintf(...))
//     must be fmt.Errorf.
//   - bufalias: values returned by functions annotated `pclint:recycled`
//     (per-batch scratch buffers recycled by the vectorized scan) must not
//     be retained beyond the batch callback.
//   - goroutinectx: every spawned goroutine must either be joined by a
//     sync.WaitGroup in the same function or be cancellable (receive a
//     context or channel signal).
//   - lockorder: whole-program lock-acquisition graph — reports cycles
//     (potential deadlocks), recursive acquisition of the same lock, and
//     locks held across blocking operations (channel ops, Wait, I/O).
//   - noalloc: functions annotated `pclint:noalloc` — and, transitively,
//     every module-internal function they call — must not contain
//     allocation-inducing constructs.
//   - poolcheck: sync.Pool lifetime protocol — no use after Put, no double
//     Put, no Put of escaped objects, no pool object leaked on an early
//     return.
//
// The first four are intra-procedural; the last three share whole-program
// infrastructure (a CHA-style call graph and cross-package facts, see
// callgraph.go and facts.go). The annotation conventions are documented in
// DESIGN.md §12 ("pclint v2").
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one analyzer diagnostic.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath string // import path
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// Program is the full set of loaded packages plus cross-package indexes the
// analyzers share (annotation facts, declarations, the call graph).
type Program struct {
	Fset     *token.FileSet
	Packages []*Package

	// Recycled holds function/method objects whose doc comment carries the
	// `pclint:recycled` marker: their results are batch-scoped buffers.
	Recycled map[types.Object]bool
	// Noalloc holds functions annotated `pclint:noalloc`: hot-path roots in
	// which (transitively) no allocation-inducing construct may appear.
	Noalloc map[*types.Func]bool
	// AllowAlloc holds functions annotated `pclint:allowalloc`: exempt from
	// noalloc traversal (amortized growth or documented cold paths).
	AllowAlloc map[*types.Func]bool
	// PoolSource holds functions that return objects drawn from a sync.Pool
	// (acquire wrappers); PoolSink holds functions that Put their receiver or
	// a parameter back (release wrappers). Both are derived from the bodies,
	// not annotations, and let poolcheck follow the protocol through the
	// repo's wrapper idiom.
	PoolSource map[*types.Func]bool
	PoolSink   map[*types.Func]bool
	// Decls maps every declared function/method object to its syntax.
	Decls map[*types.Func]declInfo

	allows []allowRange
	cg     *CallGraph
	lo     *lockOrderState
	na     *noallocState
}

// Analyzer is one pclint check.
type Analyzer interface {
	Name() string
	Run(prog *Program, pkg *Package) []Finding
}

// Analyzers returns the full suite in stable order.
func Analyzers() []Analyzer {
	return []Analyzer{LockCheck{}, ErrWrap{}, BufAlias{}, GoroutineCtx{}, LockOrder{}, NoAlloc{}, PoolCheck{}}
}

// NewProgram builds the shared indexes over a set of loaded packages.
func NewProgram(fset *token.FileSet, pkgs []*Package) *Program {
	prog := &Program{Fset: fset, Packages: pkgs}
	prog.buildFacts()
	return prog
}

// Run executes the given analyzers over every package and returns findings
// sorted by position, with `pclint:allow` suppressions applied and exact
// duplicates removed.
func (prog *Program) Run(analyzers []Analyzer) []Finding {
	var out []Finding
	for _, pkg := range prog.Packages {
		for _, a := range analyzers {
			for _, f := range a.Run(prog, pkg) {
				if prog.allowedAt(f.Analyzer, f.Pos) {
					continue
				}
				out = append(out, f)
			}
		}
	}
	SortFindings(out)
	dedup := out[:0]
	for i, f := range out {
		if i > 0 && f == out[i-1] {
			continue
		}
		dedup = append(dedup, f)
	}
	return dedup
}

// SortFindings orders findings by position, then analyzer, then message —
// the suite's canonical deterministic order.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

func commentContains(cg *ast.CommentGroup, marker string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.Contains(c.Text, marker) {
			return true
		}
	}
	return false
}

// isErrorType reports whether t is assignable to the error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.AssignableTo(t, types.Universe.Lookup("error").Type())
}

// fileFuncs returns all top-level function declarations of the file.
func fileFuncs(f *ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			out = append(out, fd)
		}
	}
	return out
}
