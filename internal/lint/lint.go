// Package lint implements pclint, a project-specific static-analysis suite
// built exclusively on the standard library (go/parser, go/ast, go/types,
// go/importer) — no golang.org/x/tools dependency, preserving the module's
// zero-dependency claim.
//
// Four analyzers target the failure modes of this codebase's concurrent scan
// and cache paths:
//
//   - lockcheck: struct fields annotated `// guarded by <mu>` may only be
//     accessed while that mutex is held, and lock-bearing structs must not
//     be copied by value.
//   - errwrap: fmt.Errorf calls that format an error operand must use %w so
//     errors.Is/As can traverse the chain.
//   - bufalias: values returned by functions annotated `pclint:recycled`
//     (per-batch scratch buffers recycled by the vectorized scan) must not
//     be retained beyond the batch callback.
//   - goroutinectx: every spawned goroutine must either be joined by a
//     sync.WaitGroup in the same function or be cancellable (receive a
//     context or channel signal).
//
// The annotation conventions are documented in DESIGN.md ("Correctness
// tooling").
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one analyzer diagnostic.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath string // import path
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// Program is the full set of loaded packages plus cross-package indexes the
// analyzers share (e.g. which function objects are marked pclint:recycled).
type Program struct {
	Fset     *token.FileSet
	Packages []*Package

	// Recycled holds function/method objects whose doc comment carries the
	// `pclint:recycled` marker: their results are batch-scoped buffers.
	Recycled map[types.Object]bool
}

// Analyzer is one pclint check.
type Analyzer interface {
	Name() string
	Run(prog *Program, pkg *Package) []Finding
}

// Analyzers returns the full suite in stable order.
func Analyzers() []Analyzer {
	return []Analyzer{LockCheck{}, ErrWrap{}, BufAlias{}, GoroutineCtx{}}
}

// NewProgram builds the shared indexes over a set of loaded packages.
func NewProgram(fset *token.FileSet, pkgs []*Package) *Program {
	prog := &Program{Fset: fset, Packages: pkgs, Recycled: make(map[types.Object]bool)}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				if !commentContains(fd.Doc, "pclint:recycled") {
					continue
				}
				if obj := pkg.Info.Defs[fd.Name]; obj != nil {
					prog.Recycled[obj] = true
				}
			}
		}
	}
	return prog
}

// Run executes the given analyzers over every package and returns findings
// sorted by position.
func (prog *Program) Run(analyzers []Analyzer) []Finding {
	var out []Finding
	for _, pkg := range prog.Packages {
		for _, a := range analyzers {
			out = append(out, a.Run(prog, pkg)...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return out
}

func commentContains(cg *ast.CommentGroup, marker string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.Contains(c.Text, marker) {
			return true
		}
	}
	return false
}

// isErrorType reports whether t is assignable to the error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.AssignableTo(t, types.Universe.Lookup("error").Type())
}

// fileFuncs returns all top-level function declarations of the file.
func fileFuncs(f *ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			out = append(out, fd)
		}
	}
	return out
}
