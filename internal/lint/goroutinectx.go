package lint

import (
	"go/ast"
	"go/types"
)

// GoroutineCtx verifies that no goroutine can silently leak: every `go`
// statement must either
//
//   - be joined in the spawning function — the function also calls
//     (*sync.WaitGroup).Wait (the spawn-and-wait pattern the parallel
//     per-slice scan uses), or
//   - be cancellable — the spawned function receives a context.Context
//     argument, or its body receives from a channel (<-ch, range over a
//     channel, or a select with a receive case), so closing the channel or
//     cancelling the context terminates it.
//
// Scan workers that satisfy neither can outlive the query that spawned
// them, holding slice buffers and cache references forever.
type GoroutineCtx struct{}

// Name implements Analyzer.
func (GoroutineCtx) Name() string { return "goroutinectx" }

// Run implements Analyzer.
func (GoroutineCtx) Run(prog *Program, pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		for _, fd := range fileFuncs(file) {
			if fd.Body == nil {
				continue
			}
			waits := functionCallsWGWait(pkg.Info, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if waits || goroutineCancellable(pkg.Info, gs) {
					return true
				}
				out = append(out, Finding{
					Analyzer: "goroutinectx",
					Pos:      pkg.Fset.Position(gs.Pos()),
					Message:  "goroutine is neither joined by a sync.WaitGroup Wait in this function nor cancellable (no context argument or channel receive); it can leak",
				})
				return true
			})
		}
	}
	return out
}

// functionCallsWGWait reports whether the body contains a call to
// (*sync.WaitGroup).Wait.
func functionCallsWGWait(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Wait" {
			return true
		}
		obj, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok {
			return true
		}
		recv := obj.Type().(*types.Signature).Recv()
		if recv == nil {
			return true
		}
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			o := named.Obj()
			if o.Pkg() != nil && o.Pkg().Path() == "sync" && o.Name() == "WaitGroup" {
				found = true
			}
		}
		return !found
	})
	return found
}

// goroutineCancellable reports whether the spawned call receives a
// cancellation signal.
func goroutineCancellable(info *types.Info, gs *ast.GoStmt) bool {
	// A context.Context argument (or any channel argument) counts: the
	// callee can observe cancellation.
	for _, arg := range gs.Call.Args {
		if t := info.TypeOf(arg); t != nil && (isContextType(t) || isChanType(t)) {
			return true
		}
	}
	// For `go func(){...}()`: the body must receive from a channel or use a
	// context it captured.
	if fl, ok := gs.Call.Fun.(*ast.FuncLit); ok {
		return bodyReceivesSignal(info, fl.Body)
	}
	// For `go name(...)` / `go x.m(...)` with no signal-carrying argument:
	// if the method's receiver could hold a channel we cannot tell without
	// interprocedural analysis; be conservative and report.
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func isChanType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// bodyReceivesSignal looks for a channel receive anywhere in the body:
// <-ch, for range over a channel, or a select receive case. A context
// captured by the closure counts through its Done() channel receive.
func bodyReceivesSignal(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch v := n.(type) {
		case *ast.UnaryExpr:
			if v.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(v.X); t != nil && isChanType(t) {
				found = true
			}
		}
		return !found
	})
	return found
}
