package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// PoolCheck enforces the sync.Pool lifetime protocol on which the scan path's
// pooled scratch buffers depend. An object drawn from a pool is owned until it
// is Put back; after the Put it belongs to any goroutine, so:
//
//   - no use after Put — the object may already be handed to another scan;
//   - no double Put — the pool would hand the same object out twice;
//   - no Put of an escaped object — if a reference was stored into a field,
//     a slice/map, a channel, or returned, the Put recycles memory someone
//     still sees;
//   - no leak on an early return — a function that releases its pooled object
//     on the main path must release it on every return (missing Puts don't
//     crash, they just silently turn the pool into plain allocation).
//
// Objects enter the protocol via a direct <pool>.Get() (possibly through a
// type assertion) or via a call to an acquire wrapper (a PoolSource fact,
// derived cross-package from the wrapper's body — see facts.go). Puts are
// direct <pool>.Put(v), calls to release wrappers (PoolSink facts) with v as
// receiver or argument, and both forms under defer. The tracking is lexical
// and per-function, with the same early-exit restore model as lockcheck: a
// Put immediately followed by return/break/continue does not poison code
// after the branch. Suppress intentional protocol departures with
// `pclint:allow poolcheck: <why>`.
type PoolCheck struct{}

// Name implements Analyzer.
func (PoolCheck) Name() string { return "poolcheck" }

// Run implements Analyzer.
func (pc PoolCheck) Run(prog *Program, pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		for _, fd := range fileFuncs(file) {
			if fd.Body == nil {
				continue
			}
			out = append(out, pc.checkFunc(prog, pkg, fd)...)
		}
	}
	return out
}

// poolEvent is one lifecycle-relevant occurrence of a pooled variable.
type poolEvent struct {
	pos  token.Pos
	kind poolEventKind
	node ast.Node
}

type poolEventKind int

const (
	evDef     poolEventKind = iota // (re)acquired from the pool: state -> live
	evUse                          // any other mention of the variable
	evPut                          // returned to the pool: state -> put
	evRestore                      // end of an exiting statement after a Put: state -> live
	evEscape                       // stored beyond the function's control
)

func (pc PoolCheck) checkFunc(prog *Program, pkg *Package, fd *ast.FuncDecl) []Finding {
	info := pkg.Info

	// Phase 1: find pooled variables — locals bound to pool.Get() or an
	// acquire-wrapper call.
	pooled := make(map[types.Object]token.Pos) // obj -> first definition pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		if !acquiresFromPool(prog, info, as.Rhs[0]) {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			var obj types.Object
			if as.Tok == token.DEFINE {
				obj = info.Defs[id]
			} else {
				obj = info.Uses[id]
			}
			if obj != nil {
				if _, seen := pooled[obj]; !seen {
					pooled[obj] = as.Pos()
				}
			}
		}
		return true
	})
	if len(pooled) == 0 {
		return nil
	}

	exiting := collectExiting(fd.Body)

	var out []Finding
	report := func(pos token.Pos, format string, args ...any) {
		out = append(out, Finding{
			Analyzer: "poolcheck",
			Pos:      pkg.Fset.Position(pos),
			Message:  fmt.Sprintf(format, args...),
		})
	}

	objs := make([]types.Object, 0, len(pooled))
	for obj := range pooled {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return pooled[objs[i]] < pooled[objs[j]] })

	for _, obj := range objs {
		events, deferredPut := collectPoolEvents(prog, pkg, fd, obj, exiting)
		sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })

		// Lexical state machine.
		const (
			live = iota
			put
		)
		state := live
		escaped := false
		var lastPutPos token.Pos
		for _, ev := range events {
			switch ev.kind {
			case evDef:
				state = live
				escaped = false
			case evPut:
				if state == put {
					report(ev.pos, "%s is returned to the pool twice (double Put): the pool will hand the same object out to two callers", obj.Name())
				}
				if escaped {
					report(ev.pos, "%s is returned to the pool after a reference escaped: the escaped reference now aliases recycled memory", obj.Name())
				}
				state = put
				lastPutPos = ev.pos
			case evRestore:
				state = live
			case evEscape:
				escaped = true
			case evUse:
				if state == put {
					report(ev.pos, "%s is used after being returned to the pool (use after Put): another goroutine may already own it", obj.Name())
				}
			}
		}

		// Leak on early return: only meaningful when the function does release
		// the object lexically (a deferred Put covers every return).
		if lastPutPos == token.NoPos || deferredPut {
			continue
		}
		defPos := pooled[obj]
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return true
			}
			if ret.Pos() <= defPos || ret.Pos() >= lastPutPos {
				return true
			}
			// State at this return: replay events up to the return position.
			st, esc := live, false
			returnsObj := false
			for _, res := range ret.Results {
				if id, ok := ast.Unparen(res).(*ast.Ident); ok && info.Uses[id] == obj {
					returnsObj = true
				}
			}
			for _, ev := range events {
				if ev.pos >= ret.Pos() {
					break
				}
				switch ev.kind {
				case evDef:
					st, esc = live, false
				case evPut:
					st = put
				case evRestore:
					st = live
				case evEscape:
					esc = true
				}
			}
			if st == live && !esc && !returnsObj {
				report(ret.Pos(), "return leaks pooled object %s (released on the main path but not on this one); Put it or defer the release", obj.Name())
			}
			return true
		})
	}
	return out
}

// acquiresFromPool reports whether the expression yields a pool-owned object:
// <pool>.Get(), <pool>.Get().(*T), or a call to a PoolSource wrapper.
func acquiresFromPool(prog *Program, info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	if m, ok := poolCall(info, call); ok && m == "Get" {
		return true
	}
	if fn := calleeFunc(info, call); fn != nil && prog.PoolSource[fn] {
		return true
	}
	return false
}

// putsToPool reports whether the call returns obj to a pool: <pool>.Put(obj),
// sink(obj, ...), or obj.release() with release a PoolSink.
func putsToPool(prog *Program, info *types.Info, call *ast.CallExpr, obj types.Object) bool {
	isObj := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && info.Uses[id] == obj
	}
	if m, ok := poolCall(info, call); ok && m == "Put" {
		return len(call.Args) == 1 && isObj(call.Args[0])
	}
	fn := calleeFunc(info, call)
	if fn == nil || !prog.PoolSink[fn] {
		return false
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && isObj(sel.X) {
		return true // obj.release()
	}
	for _, arg := range call.Args {
		if isObj(arg) {
			return true // release(obj)
		}
	}
	return false
}

// collectPoolEvents gathers the lexical lifecycle events of one pooled
// variable, and reports whether a deferred Put covers function exit.
func collectPoolEvents(prog *Program, pkg *Package, fd *ast.FuncDecl, obj types.Object,
	exiting map[*ast.CallExpr]token.Pos) (events []poolEvent, deferredPut bool) {

	info := pkg.Info

	// Identify Put calls and deferred Puts first so uses inside them are not
	// double-counted.
	putCalls := make(map[*ast.CallExpr]bool)
	deferredCalls := make(map[*ast.CallExpr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.DeferStmt:
			deferredCalls[v.Call] = true
			// defer pool.Put(v) / defer v.release() / defer func(){...v.release()...}()
			if putsToPool(prog, info, v.Call, obj) {
				deferredPut = true
			} else if lit, ok := ast.Unparen(v.Call.Fun).(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if c, ok := m.(*ast.CallExpr); ok && putsToPool(prog, info, c, obj) {
						deferredPut = true
					}
					return true
				})
			}
		case *ast.CallExpr:
			if putsToPool(prog, info, v, obj) {
				putCalls[v] = true
			}
		}
		return true
	})

	// insidePut marks ident positions that belong to a non-deferred Put call's
	// own mention of obj (argument or receiver) — those are the Put, not a use.
	insidePut := make(map[token.Pos]bool)
	for call := range putCalls {
		if deferredCalls[call] {
			continue
		}
		mark := func(e ast.Expr) {
			if id, ok := ast.Unparen(e).(*ast.Ident); ok && info.Uses[id] == obj {
				insidePut[id.Pos()] = true
			}
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			mark(sel.X)
		}
		for _, arg := range call.Args {
			mark(arg)
		}
	}

	isObjIdent := func(e ast.Expr) (token.Pos, bool) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return token.NoPos, false
		}
		if info.Uses[id] == obj {
			return id.Pos(), true
		}
		return token.NoPos, false
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			// Re-acquisition revives the variable; a store of obj into a
			// field, slice, or map element escapes it.
			if len(v.Rhs) == 1 && acquiresFromPool(prog, info, v.Rhs[0]) {
				if id, ok := v.Lhs[0].(*ast.Ident); ok {
					o := info.Defs[id]
					if o == nil {
						o = info.Uses[id]
					}
					if o == obj {
						events = append(events, poolEvent{pos: v.Pos(), kind: evDef, node: v})
					}
				}
			}
			for i, rhs := range v.Rhs {
				if pos, ok := isObjIdent(rhs); ok && i < len(v.Lhs) {
					switch ast.Unparen(v.Lhs[i]).(type) {
					case *ast.SelectorExpr, *ast.IndexExpr:
						events = append(events, poolEvent{pos: pos, kind: evEscape, node: v})
					}
				}
			}
		case *ast.SendStmt:
			if pos, ok := isObjIdent(v.Value); ok {
				events = append(events, poolEvent{pos: pos, kind: evEscape, node: v})
			}
		case *ast.ReturnStmt:
			for _, res := range v.Results {
				if pos, ok := isObjIdent(res); ok {
					events = append(events, poolEvent{pos: pos, kind: evEscape, node: v})
				}
			}
		case *ast.CallExpr:
			if putCalls[v] && !deferredCalls[v] {
				events = append(events, poolEvent{pos: v.Pos(), kind: evPut, node: v})
				if end, ok := exiting[v]; ok {
					events = append(events, poolEvent{pos: end, kind: evRestore, node: v})
				}
			}
		case *ast.Ident:
			if info.Uses[v] == obj && !insidePut[v.Pos()] {
				events = append(events, poolEvent{pos: v.Pos(), kind: evUse, node: v})
			}
		}
		return true
	})
	return events, deferredPut
}
