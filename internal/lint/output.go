package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// Machine-readable output: a stable JSON shape for scripting and SARIF 2.1.0
// for code-scanning UIs (the CI workflow uploads the SARIF as an artifact).
// Both emit module-relative, slash-separated paths so the output is
// reproducible across checkouts.

// JSONFinding is the JSON wire form of one finding.
type JSONFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// relPath rewrites an absolute filename to a module-relative slash path.
func relPath(moduleRoot, filename string) string {
	if moduleRoot != "" {
		if r, err := filepath.Rel(moduleRoot, filename); err == nil && !strings.HasPrefix(r, "..") {
			return filepath.ToSlash(r)
		}
	}
	return filepath.ToSlash(filename)
}

// ToJSONFindings converts findings to their wire form with paths relative to
// moduleRoot.
func ToJSONFindings(moduleRoot string, findings []Finding) []JSONFinding {
	out := make([]JSONFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, JSONFinding{
			Analyzer: f.Analyzer,
			File:     relPath(moduleRoot, f.Pos.Filename),
			Line:     f.Pos.Line,
			Column:   f.Pos.Column,
			Message:  f.Message,
		})
	}
	return out
}

// WriteJSON writes the findings as an indented JSON array.
func WriteJSON(w io.Writer, moduleRoot string, findings []Finding) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ToJSONFindings(moduleRoot, findings))
}

// analyzerDocs maps analyzer names to their one-line rule description for
// SARIF rule metadata.
var analyzerDocs = map[string]string{
	"lockcheck":    "guarded-by fields must be accessed under their mutex; lock-bearing structs must not be copied",
	"errwrap":      "wrap error operands with %w; use fmt.Errorf instead of errors.New(fmt.Sprintf(...))",
	"bufalias":     "recycled per-batch buffers must not escape the batch scope",
	"goroutinectx": "goroutines must be joined or cancellable",
	"lockorder":    "lock acquisition must be acyclic and locks must not be held across blocking operations",
	"noalloc":      "pclint:noalloc paths must not contain allocation-inducing constructs",
	"poolcheck":    "sync.Pool objects: no use after Put, no double Put, no Put of escaped objects, no leak on early return",
}

// sarifLog mirrors the subset of SARIF 2.1.0 pclint emits.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF writes the findings as a SARIF 2.1.0 log.
func WriteSARIF(w io.Writer, moduleRoot string, findings []Finding) error {
	ruleSet := make(map[string]bool)
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		ruleSet[f.Analyzer] = true
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: relPath(moduleRoot, f.Pos.Filename)},
					Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
		})
	}
	ruleIDs := make([]string, 0, len(ruleSet))
	for id := range ruleSet {
		ruleIDs = append(ruleIDs, id)
	}
	sort.Strings(ruleIDs)
	rules := make([]sarifRule, 0, len(ruleIDs))
	for _, id := range ruleIDs {
		rules = append(rules, sarifRule{ID: id, ShortDescription: sarifMessage{Text: analyzerDocs[id]}})
	}
	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "pclint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
