package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader discovers, parses and type-checks every package of one Go module
// using only the standard library. Module-internal imports resolve to the
// loader's own packages; everything else goes to the toolchain importer
// (export data first, compile-from-source as fallback).
type Loader struct {
	ModuleRoot string // absolute path of the directory containing go.mod
	ModulePath string // module path declared in go.mod
	// IncludeTests adds _test.go files of the package itself (same package
	// clause). External test packages (package foo_test) are not loaded.
	IncludeTests bool
	// BuildTags are extra build tags considered satisfied (e.g. "pcdebug").
	BuildTags []string

	fset     *token.FileSet
	pkgs     map[string]*Package // by import path
	loading  map[string]bool     // cycle detection
	gcImp    types.Importer
	srcImp   types.Importer
	typeErrs []error
}

// NewLoader creates a loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	root, err := findModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		fset:       fset,
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
		gcImp:      importer.Default(),
		srcImp:     importer.ForCompiler(fset, "source", nil),
	}, nil
}

// Fset returns the loader's file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: reading go.mod: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// LoadAll walks the module tree and loads every package found. Directories
// named testdata, hidden directories, and directories without buildable Go
// files are skipped.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModuleRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		if l.hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var out []*Package
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	return out, nil
}

func (l *Loader) hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// importPathFor maps a directory to its module import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// dirFor maps a module-internal import path to its directory.
func (l *Loader) dirFor(importPath string) string {
	if importPath == l.ModulePath {
		return l.ModuleRoot
	}
	rel := strings.TrimPrefix(importPath, l.ModulePath+"/")
	return filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
}

// LoadDir parses and type-checks the package in dir (nil if the directory
// holds no buildable files under the current tag set).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	importPath, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	return l.load(importPath)
}

func (l *Loader) load(importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	dir := l.dirFor(importPath)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", importPath, err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if strings.HasSuffix(name, "_test.go") && !l.IncludeTests {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(l.fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", path, err)
		}
		if !l.fileIncluded(f) {
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	// Drop external test packages (package foo_test) and keep the primary
	// package clause; mixed clauses otherwise fail the type checker.
	primary := primaryPackageName(files)
	var kept []*ast.File
	for _, f := range files {
		if f.Name.Name == primary {
			kept = append(kept, f)
		}
	}
	files = kept

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) { return l.importPkg(path) }),
		Error:    func(err error) { l.typeErrs = append(l.typeErrs, err) },
	}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	pkg := &Package{PkgPath: importPath, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// primaryPackageName picks the non-_test package clause.
func primaryPackageName(files []*ast.File) string {
	for _, f := range files {
		if !strings.HasSuffix(f.Name.Name, "_test") {
			return f.Name.Name
		}
	}
	return files[0].Name.Name
}

// fileIncluded evaluates the file's build constraints under the default tag
// set plus the loader's extra tags.
func (l *Loader) fileIncluded(f *ast.File) bool {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				return true
			}
			return expr.Eval(func(tag string) bool { return l.tagSatisfied(tag) })
		}
	}
	return true
}

func (l *Loader) tagSatisfied(tag string) bool {
	for _, t := range l.BuildTags {
		if tag == t {
			return true
		}
	}
	switch tag {
	case "linux", "unix", "amd64", "arm64", "gc":
		return true
	}
	// Release tags: accept any go1.x.
	if strings.HasPrefix(tag, "go1.") {
		return true
	}
	return false
}

// importPkg resolves one import: module-internal packages recurse into the
// loader, everything else (stdlib) goes to the toolchain importers.
func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("lint: no buildable files in %s", path)
		}
		return pkg.Types, nil
	}
	if tp, err := l.gcImp.Import(path); err == nil {
		return tp, nil
	}
	return l.srcImp.Import(path)
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
