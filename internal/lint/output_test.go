package lint

import (
	"bytes"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

// goldenFindings is a fixed finding set exercising both output encoders: two
// analyzers, absolute paths under a fake module root, multibyte-free messages.
func goldenFindings() (string, []Finding) {
	root := filepath.Join(string(filepath.Separator), "mod")
	mk := func(analyzer, rel string, line, col int, msg string) Finding {
		return Finding{
			Analyzer: analyzer,
			Pos:      token.Position{Filename: filepath.Join(root, filepath.FromSlash(rel)), Line: line, Column: col},
			Message:  msg,
		}
	}
	return root, []Finding{
		mk("lockorder", "internal/core/cache.go", 41, 2, "lock-order cycle among {core.Cache.mu, core.Table.mu}"),
		mk("noalloc", "internal/engine/scan.go", 120, 10, "make in pclint:noalloc function (*engine.Scan).scanSlice"),
		mk("noalloc", "internal/engine/scan.go", 188, 4, "string concatenation in hashKey on pclint:noalloc path (root scanSlice)"),
	}
}

func readGolden(t *testing.T, name string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "golden", name))
	if err != nil {
		t.Fatalf("reading golden file: %v", err)
	}
	return string(data)
}

func TestWriteJSONGolden(t *testing.T) {
	root, findings := goldenFindings()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, root, findings); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if got, want := buf.String(), readGolden(t, "findings.json"); got != want {
		t.Errorf("JSON output drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestWriteSARIFGolden(t *testing.T) {
	root, findings := goldenFindings()
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, root, findings); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}
	if got, want := buf.String(), readGolden(t, "findings.sarif"); got != want {
		t.Errorf("SARIF output drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestBaselineRoundTrip freezes findings into a baseline, saves and reloads
// it, and verifies the same findings are fully absorbed with nothing stale —
// and that new findings and removed findings are classified correctly.
func TestBaselineRoundTrip(t *testing.T) {
	root, findings := goldenFindings()
	path := filepath.Join(t.TempDir(), "baseline.json")

	b := NewBaseline(root, findings)
	if err := b.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := LoadBaseline(path)
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	fresh, stale := loaded.Filter(root, findings)
	if len(fresh) != 0 || len(stale) != 0 {
		t.Fatalf("round trip not clean: fresh=%v stale=%v", fresh, stale)
	}

	// A finding not in the baseline stays fresh.
	extra := Finding{Analyzer: "errwrap", Pos: token.Position{Filename: filepath.Join(root, "x.go"), Line: 3, Column: 1}, Message: "new"}
	fresh, stale = loaded.Filter(root, append(append([]Finding{}, findings...), extra))
	if len(fresh) != 1 || fresh[0].Message != "new" || len(stale) != 0 {
		t.Fatalf("extra finding misclassified: fresh=%v stale=%v", fresh, stale)
	}

	// A fixed finding leaves its entry stale.
	fresh, stale = loaded.Filter(root, findings[:len(findings)-1])
	if len(fresh) != 0 || len(stale) != 1 {
		t.Fatalf("fixed finding misclassified: fresh=%v stale=%v", fresh, stale)
	}

	// Duplicate findings need duplicate entries (multiset matching).
	dup := append(append([]Finding{}, findings...), findings[0])
	fresh, _ = loaded.Filter(root, dup)
	if len(fresh) != 1 {
		t.Fatalf("duplicate finding should exceed the single-entry budget: fresh=%v", fresh)
	}

	// Saving again must be byte-identical (deterministic serialization).
	data1, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Save(path); err != nil {
		t.Fatalf("re-Save: %v", err)
	}
	data2, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data1, data2) {
		t.Error("baseline serialization is not deterministic")
	}
}

// TestMissingBaselineIsEmpty: a missing baseline file suppresses nothing.
func TestMissingBaselineIsEmpty(t *testing.T) {
	b, err := LoadBaseline(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatalf("LoadBaseline on missing file: %v", err)
	}
	_, findings := goldenFindings()
	fresh, stale := b.Filter("/mod", findings)
	if len(fresh) != len(findings) || len(stale) != 0 {
		t.Fatalf("missing baseline should pass findings through: fresh=%d stale=%d", len(fresh), len(stale))
	}
}
