package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// ErrWrap flags error-construction patterns that flatten a cause into text so
// errors.Is/errors.As can no longer traverse the chain — which breaks callers
// that classify engine errors:
//
//   - fmt.Errorf with an error operand formatted by any verb other than %w;
//   - an error operand pre-stringified with err.Error() and formatted with
//     %s/%q/%v — pass the error itself and use %w;
//   - errors.New(fmt.Sprintf(...)), which is fmt.Errorf spelled expensively
//     and can never wrap.
type ErrWrap struct{}

// Name implements Analyzer.
func (ErrWrap) Name() string { return "errwrap" }

// Run implements Analyzer.
func (ErrWrap) Run(prog *Program, pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isPkgFunc(pkg.Info, call.Fun, "errors", "New") && len(call.Args) == 1 {
				if inner, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr); ok &&
					isPkgFunc(pkg.Info, inner.Fun, "fmt", "Sprintf") {
					out = append(out, Finding{
						Analyzer: "errwrap",
						Pos:      pkg.Fset.Position(call.Pos()),
						Message:  "errors.New(fmt.Sprintf(...)); use fmt.Errorf, which can also wrap a cause with %w",
					})
				}
				return true
			}
			if len(call.Args) < 2 || !isPkgFunc(pkg.Info, call.Fun, "fmt", "Errorf") {
				return true
			}
			format, ok := constantString(pkg.Info, call.Args[0])
			if !ok {
				return true
			}
			if call.Ellipsis.IsValid() {
				return true // args spread from a slice: positions unknowable
			}
			verbs := formatVerbs(format)
			for vi, verb := range verbs {
				argIdx := 1 + vi
				if argIdx >= len(call.Args) {
					break // malformed format; go vet's printf check owns this
				}
				arg := call.Args[argIdx]
				if verb != 'w' && isErrorType(pkg.Info.TypeOf(arg)) {
					out = append(out, Finding{
						Analyzer: "errwrap",
						Pos:      pkg.Fset.Position(arg.Pos()),
						Message: "error operand formatted with %" + string(verb) +
							"; use %w so errors.Is/As can unwrap it",
					})
					continue
				}
				if (verb == 's' || verb == 'q' || verb == 'v') && isErrorDotError(pkg.Info, arg) {
					out = append(out, Finding{
						Analyzer: "errwrap",
						Pos:      pkg.Fset.Position(arg.Pos()),
						Message: "error stringified with .Error() and formatted with %" + string(verb) +
							"; pass the error itself and use %w",
					})
				}
			}
			return true
		})
	}
	return out
}

// isErrorDotError reports whether expr is a call of the error interface's
// Error() method on an error-typed receiver.
func isErrorDotError(info *types.Info, expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	return isErrorType(info.TypeOf(sel.X))
}

// isPkgFunc reports whether fun is a direct reference to pkgPath.name.
func isPkgFunc(info *types.Info, fun ast.Expr, pkgPath, name string) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// constantString returns the compile-time string value of expr, if any
// (handles literals and constant concatenations).
func constantString(info *types.Info, expr ast.Expr) (string, bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// formatVerbs returns the verb letter for every argument-consuming directive
// of a printf format string, in argument order. A '*' width or precision
// consumes an argument and is reported as '*'.
func formatVerbs(format string) []rune {
	var out []rune
	i := 0
	for i < len(format) {
		if format[i] != '%' {
			i++
			continue
		}
		i++ // skip '%'
		if i < len(format) && format[i] == '%' {
			i++
			continue
		}
		// Flags.
		for i < len(format) {
			switch format[i] {
			case '+', '-', '#', ' ', '0', '\'':
				i++
				continue
			}
			break
		}
		// Width.
		for i < len(format) && format[i] >= '0' && format[i] <= '9' {
			i++
		}
		if i < len(format) && format[i] == '*' {
			out = append(out, '*')
			i++
		}
		// Precision.
		if i < len(format) && format[i] == '.' {
			i++
			for i < len(format) && format[i] >= '0' && format[i] <= '9' {
				i++
			}
			if i < len(format) && format[i] == '*' {
				out = append(out, '*')
				i++
			}
		}
		// Explicit argument index: %[n]v — bail out, positions are not
		// sequential; vet's printf check handles these.
		if i < len(format) && format[i] == '[' {
			return out
		}
		if i < len(format) {
			out = append(out, rune(format[i]))
			i++
		}
	}
	return out
}
