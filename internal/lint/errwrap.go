package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// ErrWrap flags fmt.Errorf calls that format an error operand with any verb
// other than %w. Without %w the cause is flattened into text and
// errors.Is/errors.As cannot traverse the chain — which breaks callers that
// classify engine errors.
type ErrWrap struct{}

// Name implements Analyzer.
func (ErrWrap) Name() string { return "errwrap" }

// Run implements Analyzer.
func (ErrWrap) Run(prog *Program, pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				return true
			}
			if !isPkgFunc(pkg.Info, call.Fun, "fmt", "Errorf") {
				return true
			}
			format, ok := constantString(pkg.Info, call.Args[0])
			if !ok {
				return true
			}
			if call.Ellipsis.IsValid() {
				return true // args spread from a slice: positions unknowable
			}
			verbs := formatVerbs(format)
			for vi, verb := range verbs {
				argIdx := 1 + vi
				if argIdx >= len(call.Args) {
					break // malformed format; go vet's printf check owns this
				}
				if verb != 'w' && isErrorType(pkg.Info.TypeOf(call.Args[argIdx])) {
					out = append(out, Finding{
						Analyzer: "errwrap",
						Pos:      pkg.Fset.Position(call.Args[argIdx].Pos()),
						Message: "error operand formatted with %" + string(verb) +
							"; use %w so errors.Is/As can unwrap it",
					})
				}
			}
			return true
		})
	}
	return out
}

// isPkgFunc reports whether fun is a direct reference to pkgPath.name.
func isPkgFunc(info *types.Info, fun ast.Expr, pkgPath, name string) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// constantString returns the compile-time string value of expr, if any
// (handles literals and constant concatenations).
func constantString(info *types.Info, expr ast.Expr) (string, bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// formatVerbs returns the verb letter for every argument-consuming directive
// of a printf format string, in argument order. A '*' width or precision
// consumes an argument and is reported as '*'.
func formatVerbs(format string) []rune {
	var out []rune
	i := 0
	for i < len(format) {
		if format[i] != '%' {
			i++
			continue
		}
		i++ // skip '%'
		if i < len(format) && format[i] == '%' {
			i++
			continue
		}
		// Flags.
		for i < len(format) {
			switch format[i] {
			case '+', '-', '#', ' ', '0', '\'':
				i++
				continue
			}
			break
		}
		// Width.
		for i < len(format) && format[i] >= '0' && format[i] <= '9' {
			i++
		}
		if i < len(format) && format[i] == '*' {
			out = append(out, '*')
			i++
		}
		// Precision.
		if i < len(format) && format[i] == '.' {
			i++
			for i < len(format) && format[i] >= '0' && format[i] <= '9' {
				i++
			}
			if i < len(format) && format[i] == '*' {
				out = append(out, '*')
				i++
			}
		}
		// Explicit argument index: %[n]v — bail out, positions are not
		// sequential; vet's printf check handles these.
		if i < len(format) && format[i] == '[' {
			return out
		}
		if i < len(format) {
			out = append(out, rune(format[i]))
			i++
		}
	}
	return out
}
