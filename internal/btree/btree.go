// Package btree implements an in-memory B+-tree secondary index mapping
// int64 keys to row identifiers. It exists as the conventional
// secondary-index baseline of the paper's memory-consumption comparison
// (Table 3): cloud warehouses avoid such indexes because they grow with the
// data — this implementation lets the benchmark measure exactly how much.
package btree

const (
	// order is the maximum number of keys per node.
	order = 64
)

// RowID identifies one row: the slice number and the row number within it.
type RowID struct {
	Slice int32
	Row   int32
}

type leaf struct {
	keys []int64
	vals [][]RowID
	next *leaf
}

type inner struct {
	keys     []int64 // separators: children[i] holds keys < keys[i]
	children []node
}

type node interface{ isNode() }

func (*leaf) isNode()  {}
func (*inner) isNode() {}

// Tree is a B+-tree multimap from int64 keys to RowIDs.
type Tree struct {
	root   node
	size   int
	height int
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{root: &leaf{}, height: 1}
}

// Len returns the number of inserted (key, row) pairs.
func (t *Tree) Len() int { return t.size }

// Height returns the tree height (1 = a single leaf).
func (t *Tree) Height() int { return t.height }

// Insert adds a (key, row) pair. Duplicate keys accumulate rows.
func (t *Tree) Insert(key int64, row RowID) {
	newChild, sepKey := t.insert(t.root, key, row)
	if newChild != nil {
		t.root = &inner{keys: []int64{sepKey}, children: []node{t.root, newChild}}
		t.height++
	}
	t.size++
}

// insert descends to the leaf; on split it returns the new right sibling and
// the separator key.
func (t *Tree) insert(n node, key int64, row RowID) (node, int64) {
	switch nd := n.(type) {
	case *leaf:
		i := lowerBound(nd.keys, key)
		if i < len(nd.keys) && nd.keys[i] == key {
			nd.vals[i] = append(nd.vals[i], row)
			return nil, 0
		}
		nd.keys = append(nd.keys, 0)
		copy(nd.keys[i+1:], nd.keys[i:])
		nd.keys[i] = key
		nd.vals = append(nd.vals, nil)
		copy(nd.vals[i+1:], nd.vals[i:])
		nd.vals[i] = []RowID{row}
		if len(nd.keys) <= order {
			return nil, 0
		}
		// Split.
		mid := len(nd.keys) / 2
		right := &leaf{
			keys: append([]int64(nil), nd.keys[mid:]...),
			vals: append([][]RowID(nil), nd.vals[mid:]...),
			next: nd.next,
		}
		nd.keys = nd.keys[:mid]
		nd.vals = nd.vals[:mid]
		nd.next = right
		return right, right.keys[0]
	case *inner:
		ci := upperBound(nd.keys, key)
		newChild, sepKey := t.insert(nd.children[ci], key, row)
		if newChild == nil {
			return nil, 0
		}
		nd.keys = append(nd.keys, 0)
		copy(nd.keys[ci+1:], nd.keys[ci:])
		nd.keys[ci] = sepKey
		nd.children = append(nd.children, nil)
		copy(nd.children[ci+2:], nd.children[ci+1:])
		nd.children[ci+1] = newChild
		if len(nd.children) <= order+1 {
			return nil, 0
		}
		// Split inner node: middle key moves up.
		mid := len(nd.keys) / 2
		up := nd.keys[mid]
		right := &inner{
			keys:     append([]int64(nil), nd.keys[mid+1:]...),
			children: append([]node(nil), nd.children[mid+1:]...),
		}
		nd.keys = nd.keys[:mid]
		nd.children = nd.children[:mid+1]
		return right, up
	}
	panic("btree: unknown node type")
}

// lowerBound returns the first index with keys[i] >= key.
func lowerBound(keys []int64, key int64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// upperBound returns the first index with keys[i] > key.
func upperBound(keys []int64, key int64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// findLeaf descends to the leaf that would contain key.
func (t *Tree) findLeaf(key int64) *leaf {
	n := t.root
	for {
		switch nd := n.(type) {
		case *leaf:
			return nd
		case *inner:
			n = nd.children[upperBound(nd.keys, key)]
		}
	}
}

// Lookup returns the rows stored under key.
func (t *Tree) Lookup(key int64) []RowID {
	lf := t.findLeaf(key)
	i := lowerBound(lf.keys, key)
	if i < len(lf.keys) && lf.keys[i] == key {
		return lf.vals[i]
	}
	return nil
}

// Range calls fn for every (key, row) pair with lo <= key <= hi, in key
// order; fn returning false stops the iteration.
func (t *Tree) Range(lo, hi int64, fn func(key int64, row RowID) bool) {
	lf := t.findLeaf(lo)
	for lf != nil {
		for i, k := range lf.keys {
			if k < lo {
				continue
			}
			if k > hi {
				return
			}
			for _, r := range lf.vals[i] {
				if !fn(k, r) {
					return
				}
			}
		}
		lf = lf.next
	}
}

// MemBytes approximates the index's memory footprint: key/value storage plus
// per-node and per-entry overhead. This is what Table 3 reports for the
// B-tree row.
func (t *Tree) MemBytes() int {
	total := 0
	var walk func(n node)
	walk = func(n node) {
		switch nd := n.(type) {
		case *leaf:
			total += 48 + cap(nd.keys)*8
			for _, v := range nd.vals {
				total += 24 + cap(v)*8
			}
		case *inner:
			total += 48 + cap(nd.keys)*8 + cap(nd.children)*16
			for _, c := range nd.children {
				walk(c)
			}
		}
	}
	walk(t.root)
	return total
}

// checkInvariants validates ordering and balance; used by tests.
func (t *Tree) checkInvariants() error {
	_, err := checkNode(t.root, t.height, 1)
	return err
}

type invariantError string

func (e invariantError) Error() string { return string(e) }

func checkNode(n node, height, depth int) (int, error) {
	switch nd := n.(type) {
	case *leaf:
		if depth != height {
			return 0, invariantError("leaves at different depths")
		}
		for i := 1; i < len(nd.keys); i++ {
			if nd.keys[i-1] >= nd.keys[i] {
				return 0, invariantError("leaf keys unsorted")
			}
		}
		return len(nd.keys), nil
	case *inner:
		if len(nd.children) != len(nd.keys)+1 {
			return 0, invariantError("inner fanout mismatch")
		}
		for i := 1; i < len(nd.keys); i++ {
			if nd.keys[i-1] >= nd.keys[i] {
				return 0, invariantError("inner keys unsorted")
			}
		}
		total := 0
		for _, c := range nd.children {
			n, err := checkNode(c, height, depth+1)
			if err != nil {
				return 0, err
			}
			total += n
		}
		return total, nil
	}
	return 0, invariantError("unknown node")
}
