package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestInsertLookup(t *testing.T) {
	tr := New()
	r := rand.New(rand.NewSource(1))
	ref := make(map[int64][]RowID)
	for i := 0; i < 20000; i++ {
		k := int64(r.Intn(5000))
		row := RowID{Slice: int32(i % 4), Row: int32(i)}
		tr.Insert(k, row)
		ref[k] = append(ref[k], row)
	}
	if tr.Len() != 20000 {
		t.Fatalf("len %d", tr.Len())
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	for k, want := range ref {
		got := tr.Lookup(k)
		if len(got) != len(want) {
			t.Fatalf("key %d: %d rows want %d", k, len(got), len(want))
		}
	}
	if tr.Lookup(99999) != nil {
		t.Fatal("phantom key")
	}
	if tr.Height() < 2 {
		t.Fatalf("tree did not grow: height %d", tr.Height())
	}
}

func TestRangeScan(t *testing.T) {
	tr := New()
	for i := 0; i < 10000; i++ {
		tr.Insert(int64(i*2), RowID{Row: int32(i)}) // even keys
	}
	var got []int64
	tr.Range(100, 200, func(k int64, _ RowID) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 51 {
		t.Fatalf("range returned %d keys", len(got))
	}
	if got[0] != 100 || got[50] != 200 {
		t.Fatalf("range bounds wrong: %d..%d", got[0], got[len(got)-1])
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("range not sorted")
	}
	// Early stop.
	count := 0
	tr.Range(0, 1<<40, func(int64, RowID) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop failed: %d", count)
	}
	// Empty range.
	tr.Range(101, 101, func(int64, RowID) bool {
		t.Fatal("odd key matched")
		return true
	})
}

func TestSequentialAndReverseInsert(t *testing.T) {
	for name, gen := range map[string]func(i int) int64{
		"asc":  func(i int) int64 { return int64(i) },
		"desc": func(i int) int64 { return int64(100000 - i) },
	} {
		tr := New()
		for i := 0; i < 50000; i++ {
			tr.Insert(gen(i), RowID{Row: int32(i)})
		}
		if err := tr.checkInvariants(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Full range must return everything in order.
		prev := int64(-1 << 62)
		n := 0
		tr.Range(-1<<62, 1<<62, func(k int64, _ RowID) bool {
			if k < prev {
				t.Fatalf("%s: out of order", name)
			}
			prev = k
			n++
			return true
		})
		if n != 50000 {
			t.Fatalf("%s: range saw %d", name, n)
		}
	}
}

func TestMemBytesGrowsWithData(t *testing.T) {
	small := New()
	for i := 0; i < 100; i++ {
		small.Insert(int64(i), RowID{})
	}
	big := New()
	for i := 0; i < 100000; i++ {
		big.Insert(int64(i), RowID{})
	}
	if big.MemBytes() <= small.MemBytes() {
		t.Fatal("MemBytes does not grow")
	}
	// Roughly linear: at least 8 bytes per key.
	if big.MemBytes() < 100000*8 {
		t.Fatalf("MemBytes suspiciously small: %d", big.MemBytes())
	}
}

func TestLookupMatchesLinearScanQuick(t *testing.T) {
	f := func(keys []int16, probe int16) bool {
		tr := New()
		ref := make(map[int64]int)
		for i, k := range keys {
			tr.Insert(int64(k), RowID{Row: int32(i)})
			ref[int64(k)]++
		}
		if err := tr.checkInvariants(); err != nil {
			return false
		}
		return len(tr.Lookup(int64(probe))) == ref[int64(probe)]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
