package psort

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/predcache/predcache/internal/engine"
	"github.com/predcache/predcache/internal/expr"
	"github.com/predcache/predcache/internal/storage"
)

func setup(t *testing.T, rows int) (*storage.Catalog, *storage.Batch) {
	t.Helper()
	cat := storage.NewCatalog()
	schema := storage.Schema{
		{Name: "id", Type: storage.Int64},
		{Name: "x", Type: storage.Int64},
		{Name: "y", Type: storage.Float64},
		{Name: "s", Type: storage.String},
	}
	tbl, err := cat.CreateTable("t", schema, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(5))
	b := storage.NewBatch(schema)
	for i := 0; i < rows; i++ {
		b.Cols[0].Ints = append(b.Cols[0].Ints, int64(i))
		b.Cols[1].Ints = append(b.Cols[1].Ints, int64(r.Intn(100)))
		b.Cols[2].Floats = append(b.Cols[2].Floats, float64(r.Intn(1000)))
		b.Cols[3].Strings = append(b.Cols[3].Strings, []string{"a", "b", "c"}[r.Intn(3)])
	}
	b.N = rows
	if err := tbl.Append(b, cat.NextXID()); err != nil {
		t.Fatal(err)
	}
	return cat, b
}

func scanIDs(t *testing.T, cat *storage.Catalog, pred expr.Pred) ([]int64, *storage.ScanStats) {
	t.Helper()
	stats := &storage.ScanStats{}
	ec := &engine.ExecCtx{Catalog: cat, Snapshot: cat.Snapshot(), Stats: stats}
	rel, err := (&engine.Scan{Table: "t", Filter: pred, Project: []string{"id"}}).Execute(ec)
	if err != nil {
		t.Fatal(err)
	}
	ids := append([]int64(nil), rel.ColByName("id").Ints...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, stats
}

func TestReorganizePreservesRows(t *testing.T) {
	cat, b := setup(t, 20000)
	pred := expr.Cmp("x", expr.Lt, expr.Int(10))
	before, coldStats := scanIDs(t, cat, pred)

	cost, err := Reorganize(cat, "t", []expr.Pred{pred})
	if err != nil {
		t.Fatal(err)
	}
	if cost.RowsRead != 20000 || cost.RowsWritten != 20000 {
		t.Fatalf("cost %+v", cost)
	}
	after, sortedStats := scanIDs(t, cat, pred)
	if len(before) != len(after) {
		t.Fatalf("row count changed: %d vs %d", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("rows changed")
		}
	}
	// The reorganized layout must scan fewer rows: qualifying rows (~10%)
	// cluster at the front, zone maps skip the rest.
	if sortedStats.RowsScanned.Load() >= coldStats.RowsScanned.Load()/2 {
		t.Fatalf("no scan reduction: %d vs %d", sortedStats.RowsScanned.Load(), coldStats.RowsScanned.Load())
	}
	_ = b
}

func TestReorganizeMultiplePredicates(t *testing.T) {
	cat, b := setup(t, 10000)
	p1 := expr.Cmp("x", expr.Lt, expr.Int(20))
	p2 := expr.Cmp("y", expr.Gt, expr.Float(500))
	if _, err := Reorganize(cat, "t", []expr.Pred{p1, p2}); err != nil {
		t.Fatal(err)
	}
	// Both predicates' results must be intact.
	for _, tc := range []struct {
		pred expr.Pred
		ref  func(i int) bool
	}{
		{p1, func(i int) bool { return b.Cols[1].Ints[i] < 20 }},
		{p2, func(i int) bool { return b.Cols[2].Floats[i] > 500 }},
		{expr.And(p1, p2), func(i int) bool { return b.Cols[1].Ints[i] < 20 && b.Cols[2].Floats[i] > 500 }},
	} {
		got, _ := scanIDs(t, cat, tc.pred)
		var want []int64
		for i := 0; i < b.N; i++ {
			if tc.ref(i) {
				want = append(want, b.Cols[0].Ints[i])
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			t.Fatalf("pred %s: %d vs %d rows", tc.pred.Key(), len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatal("mismatch")
			}
		}
	}
}

func TestReorganizeDropsDeletedRows(t *testing.T) {
	cat, _ := setup(t, 5000)
	tbl, _ := cat.Table("t")
	tbl.DeleteRows(0, []int{0, 1, 2}, cat.NextXID())
	if _, err := Reorganize(cat, "t", []expr.Pred{expr.Cmp("x", expr.Lt, expr.Int(50))}); err != nil {
		t.Fatal(err)
	}
	nt, _ := cat.Table("t")
	if nt.NumRows() != 4997 {
		t.Fatalf("rows %d want 4997", nt.NumRows())
	}
}

func TestReorganizeUnknownTable(t *testing.T) {
	cat := storage.NewCatalog()
	if _, err := Reorganize(cat, "nope", nil); err == nil {
		t.Fatal("unknown table accepted")
	}
}

func TestReorganizeBadPredicate(t *testing.T) {
	cat, _ := setup(t, 100)
	if _, err := Reorganize(cat, "t", []expr.Pred{expr.Cmp("nope", expr.Eq, expr.Int(1))}); err == nil {
		t.Fatal("bad predicate accepted")
	}
}
