// Package psort implements predicate sorting, the paper's simplified
// Qd-tree baseline (§5, "predicate sorting ... organizes rows based on
// whether they fulfill common predicates in the workload"): the table is
// physically rewritten so that rows sharing a predicate-satisfaction
// signature are contiguous, letting zone maps eliminate whole blocks for
// the workload's predicates. Like all sorting-based techniques it pays a
// full table rewrite up front and again whenever the workload's predicates
// change.
package psort

import (
	"fmt"
	"sort"

	"github.com/predcache/predcache/internal/expr"
	"github.com/predcache/predcache/internal/storage"
)

// Cost reports the work a reorganization performed — the build overhead the
// paper's Table 1 and §5.6 charge sorting-based techniques for.
type Cost struct {
	RowsRead    int
	RowsWritten int
}

// Reorganize rewrites the table so rows are clustered by their
// predicate-satisfaction signature: the first predicate is the
// most-significant bit, so rows satisfying it come first, recursively cut by
// the remaining predicates (a one-level Qd-tree linearization). The table is
// replaced in place (same name, fresh layout epoch semantics via a new
// table object); the caller must invalidate predicate-cache entries for it.
func Reorganize(cat *storage.Catalog, tableName string, preds []expr.Pred) (Cost, error) {
	var cost Cost
	tbl, ok := cat.Table(tableName)
	if !ok {
		return cost, fmt.Errorf("psort: unknown table %s", tableName)
	}
	schema := tbl.Schema()
	numCols := len(schema)
	dicts := make([]*storage.Dict, numCols)
	for i := range dicts {
		dicts[i] = tbl.Dict(i)
	}

	// Materialize the whole table columnar with signatures. The rewrite
	// doubles as a vacuum: rows invisible at the current snapshot are
	// dropped rather than copied.
	snap := cat.Snapshot()
	unlock := tbl.RLockScan()
	bounds := make([]expr.Bound, len(preds))
	for i, p := range preds {
		b, err := expr.Bind(p, tbl)
		if err != nil {
			unlock()
			return cost, err
		}
		bounds[i] = b
	}
	total := 0
	for si := 0; si < tbl.NumSlices(); si++ {
		total += tbl.Slice(si).NumRows()
	}
	batch := storage.NewBatch(schema)
	sigs := make([]uint64, 0, total)

	ctx := expr.NewBlockCtx(numCols, dicts)
	ints := make([][]int64, numCols)
	floats := make([][]float64, numCols)
	sel := make([]int, storage.BlockSize)
	sigBuf := make([]uint64, storage.BlockSize)
	for si := 0; si < tbl.NumSlices(); si++ {
		s := tbl.Slice(si)
		for blk := 0; blk*storage.BlockSize < s.NumRows(); blk++ {
			base := blk * storage.BlockSize
			n := s.NumRows() - base
			if n > storage.BlockSize {
				n = storage.BlockSize
			}
			ctx.N = n
			for ci := 0; ci < numCols; ci++ {
				if schema[ci].Type == storage.Float64 {
					if floats[ci] == nil {
						floats[ci] = make([]float64, storage.BlockSize)
					}
					s.Column(ci).ReadFloatBlock(blk, floats[ci])
					ctx.SetFloat(ci, floats[ci])
				} else {
					if ints[ci] == nil {
						ints[ci] = make([]int64, storage.BlockSize)
					}
					s.Column(ci).ReadIntBlock(blk, ints[ci])
					ctx.SetInt(ci, ints[ci])
				}
			}
			// Signature: bit i set when predicate i matches (the first
			// predicate is the most-significant cut).
			for i := 0; i < n; i++ {
				sigBuf[i] = 0
			}
			for pi, b := range bounds {
				sel = sel[:n]
				for i := 0; i < n; i++ {
					sel[i] = i
				}
				matched := b.Eval(ctx, sel)
				for _, r := range matched {
					sigBuf[r] |= 1 << (len(bounds) - 1 - pi)
				}
				sel = sel[:cap(sel)]
			}
			// Copy visible rows into the batch.
			for r := 0; r < n; r++ {
				if !s.Visible(base+r, snap) {
					continue
				}
				for ci := 0; ci < numCols; ci++ {
					switch schema[ci].Type {
					case storage.Float64:
						batch.Cols[ci].Floats = append(batch.Cols[ci].Floats, floats[ci][r])
					case storage.String:
						batch.Cols[ci].Strings = append(batch.Cols[ci].Strings, dicts[ci].Value(ints[ci][r]))
					default:
						batch.Cols[ci].Ints = append(batch.Cols[ci].Ints, ints[ci][r])
					}
				}
				sigs = append(sigs, sigBuf[r])
				batch.N++
			}
			cost.RowsRead += n
		}
	}
	numSlices := tbl.NumSlices()
	unlock()

	// Order rows by descending signature (rows satisfying the first
	// predicate cluster at the front).
	perm := make([]int, batch.N)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool { return sigs[perm[a]] > sigs[perm[b]] })
	applyPerm(batch, perm, schema)
	cost.RowsWritten = batch.N

	// Swap in the rewritten table under the same name.
	cat.DropTable(tableName)
	nt, err := cat.CreateTable(tableName, schema, numSlices)
	if err != nil {
		return cost, err
	}
	if err := nt.Append(batch, cat.NextXID()); err != nil {
		return cost, err
	}
	return cost, nil
}

func applyPerm(b *storage.Batch, perm []int, schema storage.Schema) {
	for ci := range b.Cols {
		switch schema[ci].Type {
		case storage.Float64:
			out := make([]float64, b.N)
			for i, p := range perm {
				out[i] = b.Cols[ci].Floats[p]
			}
			b.Cols[ci].Floats = out
		case storage.String:
			out := make([]string, b.N)
			for i, p := range perm {
				out[i] = b.Cols[ci].Strings[p]
			}
			b.Cols[ci].Strings = out
		default:
			out := make([]int64, b.N)
			for i, p := range perm {
				out[i] = b.Cols[ci].Ints[p]
			}
			b.Cols[ci].Ints = out
		}
	}
}
