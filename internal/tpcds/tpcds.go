// Package tpcds implements a TPC-DS-like star-schema workload: the
// store_sales fact table with date_dim, item, store, customer and promotion
// dimensions, plus twenty queries modeled on the filtered-scan/star-join
// templates of the official benchmark (q3, q6, q7, q13, q19, q27, q36, q42,
// q43, q48, q52, q53, q55, q63, q79, q88, q89, q96, q98 and a promotion
// variant).
//
// Substitution note (DESIGN.md §1): the paper runs the full 99-query TPC-DS;
// the Figure 15/17 experiments only require many distinct filtered fact
// scans over a snowflake schema, which this subset reproduces with the same
// scan/join/aggregate code paths.
package tpcds

import (
	"fmt"
	"math/rand"

	"github.com/predcache/predcache/internal/engine"
	"github.com/predcache/predcache/internal/sql"
	"github.com/predcache/predcache/internal/storage"
)

// Config controls generation.
type Config struct {
	SF     float64
	Skewed bool
	Seed   int64
}

// Data holds generated batches.
type Data struct {
	Cfg     Config
	Batches map[string]*storage.Batch
}

var (
	categories = []string{"Books", "Electronics", "Home", "Jewelry", "Men", "Music", "Shoes", "Sports", "Toys", "Women"}
	classes    = []string{"accessories", "classical", "fiction", "fitness", "pants", "portable", "romance", "shirts"}
	states     = []string{"TN", "CA", "TX", "WA", "NY", "FL", "OH", "GA"}
	channels   = []string{"Y", "N"}
)

// Schemas returns the subset schemas.
func Schemas() map[string]storage.Schema {
	return map[string]storage.Schema{
		"date_dim": {
			{Name: "d_date_sk", Type: storage.Int64},
			{Name: "d_year", Type: storage.Int64},
			{Name: "d_moy", Type: storage.Int64},
			{Name: "d_dom", Type: storage.Int64},
			{Name: "d_qoy", Type: storage.Int64},
		},
		"item": {
			{Name: "i_item_sk", Type: storage.Int64},
			{Name: "i_brand_id", Type: storage.Int64},
			{Name: "i_brand", Type: storage.String},
			{Name: "i_category", Type: storage.String},
			{Name: "i_class", Type: storage.String},
			{Name: "i_manufact_id", Type: storage.Int64},
			{Name: "i_manager_id", Type: storage.Int64},
			{Name: "i_current_price", Type: storage.Float64},
		},
		"store": {
			{Name: "s_store_sk", Type: storage.Int64},
			{Name: "s_store_name", Type: storage.String},
			{Name: "s_state", Type: storage.String},
		},
		"customer": {
			{Name: "c_customer_sk", Type: storage.Int64},
			{Name: "c_birth_year", Type: storage.Int64},
		},
		"promotion": {
			{Name: "p_promo_sk", Type: storage.Int64},
			{Name: "p_channel_email", Type: storage.String},
			{Name: "p_channel_event", Type: storage.String},
		},
		"store_sales": {
			{Name: "ss_sold_date_sk", Type: storage.Int64},
			{Name: "ss_item_sk", Type: storage.Int64},
			{Name: "ss_store_sk", Type: storage.Int64},
			{Name: "ss_customer_sk", Type: storage.Int64},
			{Name: "ss_promo_sk", Type: storage.Int64},
			{Name: "ss_quantity", Type: storage.Int64},
			{Name: "ss_list_price", Type: storage.Float64},
			{Name: "ss_sales_price", Type: storage.Float64},
			{Name: "ss_ext_sales_price", Type: storage.Float64},
			{Name: "ss_net_profit", Type: storage.Float64},
		},
	}
}

// Generate builds the six tables.
func Generate(cfg Config) *Data {
	r := rand.New(rand.NewSource(cfg.Seed))
	schemas := Schemas()
	d := &Data{Cfg: cfg, Batches: make(map[string]*storage.Batch)}
	scale := func(base, min int) int {
		n := int(float64(base) * cfg.SF)
		if n < min {
			n = min
		}
		return n
	}

	// date_dim: 1998-2002.
	db := storage.NewBatch(schemas["date_dim"])
	start := storage.DateFromYMD(1998, 1, 1)
	end := storage.DateFromYMD(2002, 12, 31)
	nDates := int(end-start) + 1
	for day := start; day <= end; day++ {
		y, m, dom := storage.YMDFromDate(day)
		db.Cols[0].Ints = append(db.Cols[0].Ints, day-start+1)
		db.Cols[1].Ints = append(db.Cols[1].Ints, int64(y))
		db.Cols[2].Ints = append(db.Cols[2].Ints, int64(m))
		db.Cols[3].Ints = append(db.Cols[3].Ints, int64(dom))
		db.Cols[4].Ints = append(db.Cols[4].Ints, int64((m-1)/3+1))
	}
	db.N = nDates
	d.Batches["date_dim"] = db

	nItem := scale(18000, 300)
	ib := storage.NewBatch(schemas["item"])
	for i := 0; i < nItem; i++ {
		brandID := int64(r.Intn(1000) + 1)
		ib.Cols[0].Ints = append(ib.Cols[0].Ints, int64(i+1))
		ib.Cols[1].Ints = append(ib.Cols[1].Ints, brandID)
		ib.Cols[2].Strings = append(ib.Cols[2].Strings, fmt.Sprintf("Brand#%d", brandID%100))
		ib.Cols[3].Strings = append(ib.Cols[3].Strings, categories[r.Intn(len(categories))])
		ib.Cols[4].Strings = append(ib.Cols[4].Strings, classes[r.Intn(len(classes))])
		ib.Cols[5].Ints = append(ib.Cols[5].Ints, int64(r.Intn(1000)+1))
		ib.Cols[6].Ints = append(ib.Cols[6].Ints, int64(r.Intn(100)+1))
		ib.Cols[7].Floats = append(ib.Cols[7].Floats, float64(r.Intn(30000))/100+1)
	}
	ib.N = nItem
	d.Batches["item"] = ib

	nStore := scale(100, 10)
	sb := storage.NewBatch(schemas["store"])
	for i := 0; i < nStore; i++ {
		sb.Cols[0].Ints = append(sb.Cols[0].Ints, int64(i+1))
		sb.Cols[1].Strings = append(sb.Cols[1].Strings, fmt.Sprintf("Store-%03d", i+1))
		sb.Cols[2].Strings = append(sb.Cols[2].Strings, states[r.Intn(len(states))])
	}
	sb.N = nStore
	d.Batches["store"] = sb

	nCust := scale(100000, 200)
	cb := storage.NewBatch(schemas["customer"])
	for i := 0; i < nCust; i++ {
		cb.Cols[0].Ints = append(cb.Cols[0].Ints, int64(i+1))
		cb.Cols[1].Ints = append(cb.Cols[1].Ints, int64(1930+r.Intn(70)))
	}
	cb.N = nCust
	d.Batches["customer"] = cb

	nPromo := scale(300, 20)
	pb := storage.NewBatch(schemas["promotion"])
	for i := 0; i < nPromo; i++ {
		pb.Cols[0].Ints = append(pb.Cols[0].Ints, int64(i+1))
		pb.Cols[1].Strings = append(pb.Cols[1].Strings, channels[r.Intn(2)])
		pb.Cols[2].Strings = append(pb.Cols[2].Strings, channels[r.Intn(2)])
	}
	pb.N = nPromo
	d.Batches["promotion"] = pb

	nSales := scale(2880000, 8000)
	ssb := storage.NewBatch(schemas["store_sales"])
	var zipfItem, zipfCust *rand.Zipf
	if cfg.Skewed {
		zipfItem = rand.NewZipf(r, 1.2, 1, uint64(nItem-1))
		zipfCust = rand.NewZipf(r, 1.2, 1, uint64(nCust-1))
	}
	for i := 0; i < nSales; i++ {
		var dsk int64
		if cfg.Skewed {
			f := r.Float64()
			f = 1 - f*f
			dsk = int64(f*float64(nDates-1)) + 1
		} else {
			dsk = int64(r.Intn(nDates)) + 1
		}
		item := int64(r.Intn(nItem)) + 1
		cust := int64(r.Intn(nCust)) + 1
		if cfg.Skewed {
			item = int64(zipfItem.Uint64()) + 1
			cust = int64(zipfCust.Uint64()) + 1
		}
		qty := int64(r.Intn(100) + 1)
		list := float64(r.Intn(20000))/100 + 1
		sales := list * (0.2 + 0.8*r.Float64())
		ssb.Cols[0].Ints = append(ssb.Cols[0].Ints, dsk)
		ssb.Cols[1].Ints = append(ssb.Cols[1].Ints, item)
		ssb.Cols[2].Ints = append(ssb.Cols[2].Ints, int64(r.Intn(nStore))+1)
		ssb.Cols[3].Ints = append(ssb.Cols[3].Ints, cust)
		ssb.Cols[4].Ints = append(ssb.Cols[4].Ints, int64(r.Intn(nPromo))+1)
		ssb.Cols[5].Ints = append(ssb.Cols[5].Ints, qty)
		ssb.Cols[6].Floats = append(ssb.Cols[6].Floats, list)
		ssb.Cols[7].Floats = append(ssb.Cols[7].Floats, sales)
		ssb.Cols[8].Floats = append(ssb.Cols[8].Floats, sales*float64(qty))
		ssb.Cols[9].Floats = append(ssb.Cols[9].Floats, (sales-list*0.7)*float64(qty))
		ssb.N++
	}
	if cfg.Skewed {
		sortByDate(ssb)
	}
	d.Batches["store_sales"] = ssb
	return d
}

func sortByDate(b *storage.Batch) {
	perm := make([]int, b.N)
	for i := range perm {
		perm[i] = i
	}
	keys := b.Cols[0].Ints
	quickPermSort(perm, keys)
	for ci := range b.Cols {
		cv := &b.Cols[ci]
		if cv.Ints != nil {
			out := make([]int64, b.N)
			for i, p := range perm {
				out[i] = cv.Ints[p]
			}
			cv.Ints = out
		} else if cv.Floats != nil {
			out := make([]float64, b.N)
			for i, p := range perm {
				out[i] = cv.Floats[p]
			}
			cv.Floats = out
		}
	}
}

// quickPermSort sorts perm by keys[perm[i]] (simple, stable enough for
// ingest-order modelling).
func quickPermSort(perm []int, keys []int64) {
	// Counting sort over the date-key domain: keys are small positive ints.
	max := int64(0)
	for _, k := range keys {
		if k > max {
			max = k
		}
	}
	buckets := make([][]int, max+1)
	for _, p := range perm {
		buckets[keys[p]] = append(buckets[keys[p]], p)
	}
	i := 0
	for _, b := range buckets {
		for _, p := range b {
			perm[i] = p
			i++
		}
	}
}

// TableNames returns load order.
func TableNames() []string {
	return []string{"date_dim", "item", "store", "customer", "promotion", "store_sales"}
}

// Load creates and fills the tables.
func (d *Data) Load(cat *storage.Catalog, slices int) error {
	schemas := Schemas()
	for _, name := range TableNames() {
		tbl, err := cat.CreateTable(name, schemas[name], slices)
		if err != nil {
			return err
		}
		if err := tbl.Append(d.Batches[name], cat.NextXID()); err != nil {
			return err
		}
	}
	return nil
}

// Query is one TPC-DS-like query.
type Query struct {
	ID  string
	SQL string
}

// Plan compiles the query.
func (q Query) Plan(cat *storage.Catalog) (engine.Node, error) { return sql.PlanSQL(q.SQL, cat) }

// Queries returns the twelve queries.
func Queries() []Query {
	return []Query{
		{ID: "q3", SQL: `
select d_year, i_brand_id, i_brand, sum(ss_ext_sales_price) as sum_agg
from store_sales, date_dim, item
where ss_sold_date_sk = d_date_sk and ss_item_sk = i_item_sk
  and i_manufact_id = 436 and d_moy = 12
group by d_year, i_brand_id, i_brand
order by d_year, sum_agg desc, i_brand_id
limit 100`},
		{ID: "q7", SQL: `
select i_category, avg(ss_quantity) as agg1, avg(ss_list_price) as agg2,
       avg(ss_sales_price) as agg3
from store_sales, item, promotion
where ss_item_sk = i_item_sk and ss_promo_sk = p_promo_sk
  and p_channel_email = 'N'
group by i_category
order by i_category
limit 100`},
		{ID: "q19", SQL: `
select i_brand_id, i_brand, sum(ss_ext_sales_price) as ext_price
from date_dim, store_sales, item, store
where d_date_sk = ss_sold_date_sk and ss_item_sk = i_item_sk
  and i_manager_id = 8 and d_moy = 11 and d_year = 1999
  and ss_store_sk = s_store_sk
group by i_brand_id, i_brand
order by ext_price desc, i_brand_id
limit 100`},
		{ID: "q42", SQL: `
select d_year, i_category, sum(ss_ext_sales_price) as total
from date_dim, store_sales, item
where d_date_sk = ss_sold_date_sk and ss_item_sk = i_item_sk
  and i_manager_id = 1 and d_moy = 11 and d_year = 2000
group by d_year, i_category
order by total desc, d_year
limit 100`},
		{ID: "q52", SQL: `
select d_year, i_brand_id, i_brand, sum(ss_ext_sales_price) as ext_price
from date_dim, store_sales, item
where d_date_sk = ss_sold_date_sk and ss_item_sk = i_item_sk
  and i_manager_id = 1 and d_moy = 11 and d_year = 2000
group by d_year, i_brand_id, i_brand
order by d_year, ext_price desc
limit 100`},
		{ID: "q53", SQL: `
select i_manufact_id, sum(ss_sales_price) as sum_sales
from item, store_sales, date_dim, store
where ss_item_sk = i_item_sk and ss_sold_date_sk = d_date_sk and ss_store_sk = s_store_sk
  and d_qoy = 1 and d_year = 2001
  and i_category in ('Books', 'Electronics', 'Sports')
group by i_manufact_id
order by sum_sales desc, i_manufact_id
limit 100`},
		{ID: "q55", SQL: `
select i_brand_id, i_brand, sum(ss_ext_sales_price) as ext_price
from date_dim, store_sales, item
where d_date_sk = ss_sold_date_sk and ss_item_sk = i_item_sk
  and i_manager_id = 28 and d_moy = 11 and d_year = 1999
group by i_brand_id, i_brand
order by ext_price desc, i_brand_id
limit 100`},
		{ID: "q63", SQL: `
select i_manager_id, sum(ss_sales_price) as sum_sales
from item, store_sales, date_dim, store
where ss_item_sk = i_item_sk and ss_sold_date_sk = d_date_sk and ss_store_sk = s_store_sk
  and d_moy = 1 and d_year = 2000
  and i_category in ('Books', 'Children', 'Electronics')
  and i_class in ('accessories', 'classical', 'fiction')
group by i_manager_id
order by sum_sales desc, i_manager_id
limit 100`},
		{ID: "q89", SQL: `
select i_category, i_class, d_moy, sum(ss_sales_price) as sum_sales
from item, store_sales, date_dim, store
where ss_item_sk = i_item_sk and ss_sold_date_sk = d_date_sk and ss_store_sk = s_store_sk
  and d_year = 2001
  and i_category in ('Books', 'Electronics', 'Sports')
group by i_category, i_class, d_moy
order by sum_sales, i_category
limit 100`},
		{ID: "q96", SQL: `
select count(*) as cnt
from store_sales, date_dim, store
where ss_sold_date_sk = d_date_sk and ss_store_sk = s_store_sk
  and d_dom between 1 and 3 and d_year = 2000
  and s_state = 'TN'`},
		{ID: "q98", SQL: `
select i_category, i_class, sum(ss_ext_sales_price) as itemrevenue
from store_sales, item, date_dim
where ss_item_sk = i_item_sk and ss_sold_date_sk = d_date_sk
  and i_category in ('Jewelry', 'Sports', 'Books')
  and d_year = 2001 and d_moy between 1 and 2
group by i_category, i_class
order by i_category, i_class
limit 100`},
		{ID: "promo", SQL: `
select p_channel_event, sum(ss_net_profit) as profit, count(*) as cnt
from store_sales, promotion, date_dim
where ss_promo_sk = p_promo_sk and ss_sold_date_sk = d_date_sk
  and p_channel_email = 'Y' and d_year = 2000
group by p_channel_event
order by profit desc`},
		{ID: "q6", SQL: `
select c_birth_year, count(*) as cnt
from store_sales, customer, date_dim
where ss_customer_sk = c_customer_sk and ss_sold_date_sk = d_date_sk
  and d_year = 2001 and d_moy = 1
group by c_birth_year
having count(*) > 5
order by cnt desc, c_birth_year
limit 100`},
		{ID: "q13", SQL: `
select avg(ss_quantity) as aq, avg(ss_ext_sales_price) as ap, sum(ss_net_profit) as np
from store_sales, store, date_dim
where ss_store_sk = s_store_sk and ss_sold_date_sk = d_date_sk
  and d_year = 2001
  and ((ss_quantity between 1 and 20 and ss_list_price between 10 and 60)
    or (ss_quantity between 21 and 40 and ss_list_price between 60 and 110)
    or (ss_quantity between 41 and 60 and ss_list_price between 110 and 160))`},
		{ID: "q27", SQL: `
select i_category, s_state, avg(ss_quantity) as agg1, avg(ss_list_price) as agg2
from store_sales, date_dim, store, item
where ss_sold_date_sk = d_date_sk and ss_store_sk = s_store_sk and ss_item_sk = i_item_sk
  and d_year = 2002 and s_state in ('TN', 'CA')
group by i_category, s_state
order by i_category, s_state
limit 100`},
		{ID: "q36", SQL: `
select i_category, i_class, sum(ss_net_profit) / sum(ss_ext_sales_price) as gross_margin
from store_sales, date_dim, item, store
where ss_sold_date_sk = d_date_sk and ss_item_sk = i_item_sk and ss_store_sk = s_store_sk
  and d_year = 2001 and s_state in ('TN', 'TX')
group by i_category, i_class
order by gross_margin
limit 100`},
		{ID: "q43", SQL: `
select s_store_name, sum(ss_sales_price) as sales
from date_dim, store_sales, store
where d_date_sk = ss_sold_date_sk and ss_store_sk = s_store_sk
  and d_year = 2000
group by s_store_name
order by sales desc, s_store_name
limit 100`},
		{ID: "q48", SQL: `
select sum(ss_quantity) as total
from store_sales, store, date_dim
where ss_store_sk = s_store_sk and ss_sold_date_sk = d_date_sk
  and d_year = 2001
  and ((ss_sales_price between 50 and 100 and ss_quantity between 1 and 50)
    or (ss_sales_price between 100 and 150 and ss_quantity between 51 and 100))`},
		{ID: "q79", SQL: `
select s_store_name, d_moy, sum(ss_net_profit) as profit
from store_sales, date_dim, store
where ss_sold_date_sk = d_date_sk and ss_store_sk = s_store_sk
  and d_year = 1999 and s_state = 'CA'
group by s_store_name, d_moy
order by profit desc
limit 100`},
		{ID: "q88", SQL: `
select count(*) as h1, sum(case when d_dom between 1 and 10 then 1 else 0 end) as early,
       sum(case when d_dom between 21 and 31 then 1 else 0 end) as late
from store_sales, date_dim, store
where ss_sold_date_sk = d_date_sk and ss_store_sk = s_store_sk
  and d_year = 2002 and s_state = 'WA'`},
	}
}
