package tpcds

import (
	"testing"

	"github.com/predcache/predcache/internal/core"
	"github.com/predcache/predcache/internal/engine"
	"github.com/predcache/predcache/internal/storage"
)

func loadDS(t testing.TB, skewed bool) *storage.Catalog {
	t.Helper()
	d := Generate(Config{SF: 0.003, Skewed: skewed, Seed: 21})
	cat := storage.NewCatalog()
	if err := d.Load(cat, 2); err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestGenerateIntegrity(t *testing.T) {
	d := Generate(Config{SF: 0.003, Seed: 1})
	ss := d.Batches["store_sales"]
	nItem := int64(d.Batches["item"].N)
	nDates := int64(d.Batches["date_dim"].N)
	for i := 0; i < ss.N; i++ {
		if k := ss.Cols[1].Ints[i]; k < 1 || k > nItem {
			t.Fatalf("ss_item_sk %d out of range", k)
		}
		if k := ss.Cols[0].Ints[i]; k < 1 || k > nDates {
			t.Fatalf("ss_sold_date_sk %d out of range", k)
		}
	}
	if ss.N < 8000 {
		t.Fatal("fact table too small")
	}
}

func TestAllQueriesExecute(t *testing.T) {
	cat := loadDS(t, false)
	qs := Queries()
	if len(qs) != 20 {
		t.Fatalf("%d queries", len(qs))
	}
	for _, q := range qs {
		plan, err := q.Plan(cat)
		if err != nil {
			t.Fatalf("%s plan: %v", q.ID, err)
		}
		ec := &engine.ExecCtx{Catalog: cat, Snapshot: cat.Snapshot(), Stats: &storage.ScanStats{}}
		if _, err := plan.Execute(ec); err != nil {
			t.Fatalf("%s exec: %v", q.ID, err)
		}
	}
}

func TestQueriesCacheable(t *testing.T) {
	cat := loadDS(t, true)
	cache := core.NewCache(core.DefaultConfig())
	for _, q := range Queries() {
		plan, err := q.Plan(cat)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			ec := &engine.ExecCtx{Catalog: cat, Snapshot: cat.Snapshot(), Stats: &storage.ScanStats{}, Cache: cache}
			if _, err := plan.Execute(ec); err != nil {
				t.Fatalf("%s: %v", q.ID, err)
			}
		}
	}
	if cache.Stats().Hits == 0 {
		t.Fatal("no hits")
	}
}

func TestSkewedOrdering(t *testing.T) {
	d := Generate(Config{SF: 0.003, Skewed: true, Seed: 3})
	keys := d.Batches["store_sales"].Cols[0].Ints
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			t.Fatal("skewed fact not date-ordered")
		}
	}
}
