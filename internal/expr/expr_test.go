package expr

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/predcache/predcache/internal/storage"
)

// testTable builds a one-slice table with int, float, string and date
// columns and returns it together with fully decompressed column vectors for
// reference evaluation.
func testTable(t testing.TB, n int, seed int64) (*storage.Table, *storage.Batch) {
	t.Helper()
	schema := storage.Schema{
		{Name: "qty", Type: storage.Int64},
		{Name: "price", Type: storage.Float64},
		{Name: "mode", Type: storage.String},
		{Name: "day", Type: storage.Date},
	}
	tbl, err := storage.NewTable("t", schema, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(seed))
	modes := []string{"AIR", "MAIL", "SHIP", "TRUCK", "RAIL"}
	b := storage.NewBatch(schema)
	for i := 0; i < n; i++ {
		b.Cols[0].Ints = append(b.Cols[0].Ints, int64(r.Intn(50)+1))
		b.Cols[1].Floats = append(b.Cols[1].Floats, float64(r.Intn(10000))/100)
		b.Cols[2].Strings = append(b.Cols[2].Strings, modes[r.Intn(len(modes))])
		b.Cols[3].Ints = append(b.Cols[3].Ints, int64(9000+r.Intn(365)))
	}
	b.N = n
	if err := tbl.Append(b, 1); err != nil {
		t.Fatal(err)
	}
	return tbl, b
}

// evalAll runs a bound predicate over every block of slice 0 and returns the
// qualifying global row numbers.
func evalAll(t testing.TB, tbl *storage.Table, bp Bound) []int {
	t.Helper()
	s := tbl.Slice(0)
	ctx := NewBlockCtx(len(tbl.Schema()), dictsOf(tbl))
	var out []int
	ints := make([][]int64, len(tbl.Schema()))
	floats := make([][]float64, len(tbl.Schema()))
	sel := make([]int, storage.BlockSize)
	for blk := 0; blk*storage.BlockSize < s.NumRows(); blk++ {
		base := blk * storage.BlockSize
		nrows := s.NumRows() - base
		if nrows > storage.BlockSize {
			nrows = storage.BlockSize
		}
		ctx.N = nrows
		for ci, def := range tbl.Schema() {
			if def.Type == storage.Float64 {
				if floats[ci] == nil {
					floats[ci] = make([]float64, storage.BlockSize)
				}
				s.Column(ci).ReadFloatBlock(blk, floats[ci])
				ctx.SetFloat(ci, floats[ci])
			} else {
				if ints[ci] == nil {
					ints[ci] = make([]int64, storage.BlockSize)
				}
				s.Column(ci).ReadIntBlock(blk, ints[ci])
				ctx.SetInt(ci, ints[ci])
			}
		}
		sel = sel[:nrows]
		for i := 0; i < nrows; i++ {
			sel[i] = i
		}
		for _, r := range bp.Eval(ctx, sel) {
			out = append(out, base+r)
		}
		sel = sel[:cap(sel)]
	}
	return out
}

func dictsOf(tbl *storage.Table) []*storage.Dict {
	dicts := make([]*storage.Dict, len(tbl.Schema()))
	for i := range tbl.Schema() {
		dicts[i] = tbl.Dict(i)
	}
	return dicts
}

// refEval evaluates the predicate row-by-row on the raw batch.
func refEval(b *storage.Batch, f func(row int) bool) []int {
	var out []int
	for i := 0; i < b.N; i++ {
		if f(i) {
			out = append(out, i)
		}
	}
	return out
}

func sameRows(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestCmpPredicates(t *testing.T) {
	tbl, b := testTable(t, 3500, 1)
	cases := []struct {
		pred Pred
		ref  func(row int) bool
	}{
		{Cmp("qty", Ge, Int(40)), func(r int) bool { return b.Cols[0].Ints[r] >= 40 }},
		{Cmp("qty", Eq, Int(7)), func(r int) bool { return b.Cols[0].Ints[r] == 7 }},
		{Cmp("qty", Ne, Int(7)), func(r int) bool { return b.Cols[0].Ints[r] != 7 }},
		{Cmp("qty", Lt, Int(5)), func(r int) bool { return b.Cols[0].Ints[r] < 5 }},
		{Cmp("qty", Le, Int(5)), func(r int) bool { return b.Cols[0].Ints[r] <= 5 }},
		{Cmp("qty", Gt, Int(45)), func(r int) bool { return b.Cols[0].Ints[r] > 45 }},
		{Cmp("price", Lt, Float(10)), func(r int) bool { return b.Cols[1].Floats[r] < 10 }},
		{Cmp("price", Ge, Float(99.5)), func(r int) bool { return b.Cols[1].Floats[r] >= 99.5 }},
		{Cmp("mode", Eq, Str("AIR")), func(r int) bool { return b.Cols[2].Strings[r] == "AIR" }},
		{Cmp("mode", Ne, Str("AIR")), func(r int) bool { return b.Cols[2].Strings[r] != "AIR" }},
		{Cmp("mode", Ge, Str("SHIP")), func(r int) bool { return b.Cols[2].Strings[r] >= "SHIP" }},
		{Cmp("mode", Lt, Str("MAIL")), func(r int) bool { return b.Cols[2].Strings[r] < "MAIL" }},
	}
	for i, c := range cases {
		bp, err := Bind(c.pred, tbl)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		got := evalAll(t, tbl, bp)
		want := refEval(b, c.ref)
		if !sameRows(got, want) {
			t.Errorf("case %d (%s): got %d rows want %d", i, c.pred.Key(), len(got), len(want))
		}
	}
}

func TestFractionalLiteralOnIntColumn(t *testing.T) {
	tbl, b := testTable(t, 2000, 2)
	bp, err := Bind(Cmp("qty", Gt, Float(24.5)), tbl)
	if err != nil {
		t.Fatal(err)
	}
	got := evalAll(t, tbl, bp)
	want := refEval(b, func(r int) bool { return float64(b.Cols[0].Ints[r]) > 24.5 })
	if !sameRows(got, want) {
		t.Fatalf("got %d want %d rows", len(got), len(want))
	}
	// Integral float literal folds to the int path.
	bp2, err := Bind(Cmp("qty", Eq, Float(24)), tbl)
	if err != nil {
		t.Fatal(err)
	}
	got2 := evalAll(t, tbl, bp2)
	want2 := refEval(b, func(r int) bool { return b.Cols[0].Ints[r] == 24 })
	if !sameRows(got2, want2) {
		t.Fatal("integral float literal mismatch")
	}
}

func TestBetweenInAndLike(t *testing.T) {
	tbl, b := testTable(t, 3000, 3)
	cases := []struct {
		pred Pred
		ref  func(row int) bool
	}{
		{Between("qty", Int(10), Int(20)), func(r int) bool {
			v := b.Cols[0].Ints[r]
			return v >= 10 && v <= 20
		}},
		{Between("price", Float(5), Float(6)), func(r int) bool {
			v := b.Cols[1].Floats[r]
			return v >= 5 && v <= 6
		}},
		{Between("mode", Str("MAIL"), Str("SHIP")), func(r int) bool {
			v := b.Cols[2].Strings[r]
			return v >= "MAIL" && v <= "SHIP"
		}},
		{In("qty", Int(1), Int(2), Int(3)), func(r int) bool {
			v := b.Cols[0].Ints[r]
			return v >= 1 && v <= 3
		}},
		{In("mode", Str("AIR"), Str("RAIL")), func(r int) bool {
			v := b.Cols[2].Strings[r]
			return v == "AIR" || v == "RAIL"
		}},
		{Like("mode", "%AI%"), func(r int) bool { return strings.Contains(b.Cols[2].Strings[r], "AI") }},
		{NotLike("mode", "%AI%"), func(r int) bool { return !strings.Contains(b.Cols[2].Strings[r], "AI") }},
		{Like("mode", "_AIL"), func(r int) bool {
			v := b.Cols[2].Strings[r]
			return len(v) == 4 && v[1:] == "AIL"
		}},
	}
	for i, c := range cases {
		bp, err := Bind(c.pred, tbl)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		got := evalAll(t, tbl, bp)
		want := refEval(b, c.ref)
		if !sameRows(got, want) {
			t.Errorf("case %d (%s): got %d rows want %d", i, c.pred.Key(), len(got), len(want))
		}
	}
}

func TestBooleanCombinators(t *testing.T) {
	tbl, b := testTable(t, 3000, 4)
	p := And(
		Or(Cmp("qty", Lt, Int(10)), Cmp("qty", Gt, Int(40))),
		Not(Cmp("mode", Eq, Str("TRUCK"))),
		Cmp("price", Ge, Float(20)),
	)
	bp, err := Bind(p, tbl)
	if err != nil {
		t.Fatal(err)
	}
	got := evalAll(t, tbl, bp)
	want := refEval(b, func(r int) bool {
		q := b.Cols[0].Ints[r]
		return (q < 10 || q > 40) && b.Cols[2].Strings[r] != "TRUCK" && b.Cols[1].Floats[r] >= 20
	})
	if !sameRows(got, want) {
		t.Fatalf("got %d want %d rows", len(got), len(want))
	}
}

func TestCmpColsPredicate(t *testing.T) {
	tbl, b := testTable(t, 2000, 5)
	bp, err := Bind(CmpCols("qty", Lt, "day"), tbl)
	if err != nil {
		t.Fatal(err)
	}
	got := evalAll(t, tbl, bp)
	want := refEval(b, func(r int) bool { return b.Cols[0].Ints[r] < b.Cols[3].Ints[r] })
	if !sameRows(got, want) {
		t.Fatal("cmpcols mismatch")
	}
	if _, err := Bind(CmpCols("mode", Lt, "qty"), tbl); err == nil {
		t.Fatal("string cmpcols accepted")
	}
	if _, err := Bind(CmpCols("qty", Lt, "price"), tbl); err == nil {
		t.Fatal("mixed-type cmpcols accepted")
	}
}

func TestUnknownStringLiteral(t *testing.T) {
	tbl, _ := testTable(t, 100, 6)
	bp, err := Bind(Cmp("mode", Eq, Str("ZEPPELIN")), tbl)
	if err != nil {
		t.Fatal(err)
	}
	if got := evalAll(t, tbl, bp); len(got) != 0 {
		t.Fatal("eq on unknown string matched rows")
	}
	bp, err = Bind(Cmp("mode", Ne, Str("ZEPPELIN")), tbl)
	if err != nil {
		t.Fatal(err)
	}
	if got := evalAll(t, tbl, bp); len(got) != 100 {
		t.Fatal("ne on unknown string should match all rows")
	}
	bp, err = Bind(In("mode", Str("ZEPPELIN")), tbl)
	if err != nil {
		t.Fatal(err)
	}
	if got := evalAll(t, tbl, bp); len(got) != 0 {
		t.Fatal("in with unknown strings matched rows")
	}
}

func TestBindErrors(t *testing.T) {
	tbl, _ := testTable(t, 10, 7)
	bad := []Pred{
		Cmp("nope", Eq, Int(1)),
		Cmp("mode", Eq, Int(1)),
		Cmp("qty", Eq, Str("x")),
		Between("mode", Int(1), Int(2)),
		In("qty", Str("x")),
		Like("qty", "%"),
		And(Cmp("nope", Eq, Int(1)), Cmp("qty", Eq, Int(1))),
		Or(Cmp("nope", Eq, Int(1))),
		Not(Cmp("nope", Eq, Int(1))),
	}
	for i, p := range bad {
		if _, err := Bind(p, tbl); err == nil {
			t.Errorf("case %d (%s): bind succeeded", i, p.Key())
		}
	}
}

type fakeBounds struct {
	imin, imax int64
	fmin, fmax float64
	iok, fok   bool
}

func (f fakeBounds) IntBounds(int) (int64, int64, bool)       { return f.imin, f.imax, f.iok }
func (f fakeBounds) FloatBounds(int) (float64, float64, bool) { return f.fmin, f.fmax, f.fok }

func TestZoneMapPruning(t *testing.T) {
	tbl, _ := testTable(t, 100, 8)
	mustBind := func(p Pred) Bound {
		bp, err := Bind(p, tbl)
		if err != nil {
			t.Fatal(err)
		}
		return bp
	}
	b10to20 := fakeBounds{imin: 10, imax: 20, iok: true, fmin: 10, fmax: 20, fok: true}
	cases := []struct {
		pred Pred
		skip bool
	}{
		{Cmp("qty", Eq, Int(5)), true},
		{Cmp("qty", Eq, Int(15)), false},
		{Cmp("qty", Lt, Int(10)), true},
		{Cmp("qty", Lt, Int(11)), false},
		{Cmp("qty", Le, Int(9)), true},
		{Cmp("qty", Le, Int(10)), false},
		{Cmp("qty", Gt, Int(20)), true},
		{Cmp("qty", Ge, Int(21)), true},
		{Cmp("qty", Ge, Int(20)), false},
		{Between("qty", Int(30), Int(40)), true},
		{Between("qty", Int(0), Int(9)), true},
		{Between("qty", Int(0), Int(10)), false},
		{In("qty", Int(1), Int(2)), true},
		{In("qty", Int(1), Int(15)), false},
		{Cmp("price", Gt, Float(20)), true},
		{Cmp("price", Gt, Float(19)), false},
		{And(Cmp("qty", Eq, Int(15)), Cmp("price", Gt, Float(25))), true},
		{And(Cmp("qty", Eq, Int(15)), Cmp("price", Gt, Float(15))), false},
		{Or(Cmp("qty", Eq, Int(5)), Cmp("qty", Eq, Int(6))), true},
		{Or(Cmp("qty", Eq, Int(5)), Cmp("qty", Eq, Int(15))), false},
		{Not(Cmp("qty", Eq, Int(5))), false}, // negation never prunes
		// Equality on a dictionary code is sound to prune: codes are stable
		// within a table, so block code bounds exclude the literal's code
		// (only 5 distinct modes exist, codes 0..4, outside [10,20]).
		{Cmp("mode", Eq, Str("AIR")), true},
		{Cmp("mode", Ge, Str("AIR")), false}, // string ordering never prunes
		{In("mode", Str("AIR"), Str("MAIL")), false},
		{Like("mode", "A%"), false},     // like never prunes
		{Cmp("qty", Ne, Int(5)), false}, // min!=max
		{TruePred{}, false},
	}
	for i, c := range cases {
		if got := mustBind(c.pred).Prune(b10to20); got != c.skip {
			t.Errorf("case %d (%s): prune=%v want %v", i, c.pred.Key(), got, c.skip)
		}
	}
	// Ne prunes only a constant block equal to the literal.
	constBlock := fakeBounds{imin: 5, imax: 5, iok: true}
	if !mustBind(Cmp("qty", Ne, Int(5))).Prune(constBlock) {
		t.Error("Ne should prune a constant block")
	}
	// CmpCols pruning.
	type colsBounds struct{ fakeBounds }
	cb := struct{ fakeBounds }{fakeBounds{iok: true}}
	_ = cb
	_ = colsBounds{}
}

type twoColBounds struct {
	a, b [2]int64
}

func (t twoColBounds) IntBounds(col int) (int64, int64, bool) {
	if col == 0 {
		return t.a[0], t.a[1], true
	}
	return t.b[0], t.b[1], true
}
func (t twoColBounds) FloatBounds(int) (float64, float64, bool) { return 0, 0, false }

func TestCmpColsPruning(t *testing.T) {
	tbl, _ := testTable(t, 10, 9)
	bp, err := Bind(CmpCols("qty", Lt, "day"), tbl) // col 0 < col 3
	if err != nil {
		t.Fatal(err)
	}
	// qty in [50,60], day in [10,20]: qty < day impossible.
	type bounds struct{ twoColBounds }
	skip := twoColBounds{a: [2]int64{50, 60}, b: [2]int64{10, 20}}
	_ = bounds{}
	// Note: bound uses column indexes 0 and 3; twoColBounds maps col 0 -> a,
	// anything else -> b.
	if !bp.Prune(skip) {
		t.Fatal("should prune when ranges cannot satisfy a<b")
	}
	keep := twoColBounds{a: [2]int64{10, 20}, b: [2]int64{15, 30}}
	if bp.Prune(keep) {
		t.Fatal("should not prune overlapping ranges")
	}
}

func TestPredicateKeysStable(t *testing.T) {
	p1 := And(Cmp("a", Eq, Float(0.1)), Cmp("b", Ge, Int(40)))
	p2 := And(Cmp("a", Eq, Float(0.1)), Cmp("b", Ge, Int(40)))
	if p1.Key() != p2.Key() {
		t.Fatal("identical predicates produced different keys")
	}
	if p1.Key() != "(and (= a 0.1) (>= b 40))" {
		t.Fatalf("unexpected key %q", p1.Key())
	}
	// IN lists are canonicalized by sorting.
	if In("c", Int(2), Int(1)).Key() != In("c", Int(1), Int(2)).Key() {
		t.Fatal("IN key not canonical")
	}
	if (TruePred{}).Key() != "(true)" {
		t.Fatal("true key")
	}
	if Not(Cmp("a", Lt, Int(3))).Key() != "(not (< a 3))" {
		t.Fatal("not key")
	}
	if Like("s", "x%").Key() != `(like s "x%")` {
		t.Fatalf("like key %q", Like("s", "x%").Key())
	}
	if CmpCols("a", Le, "b").Key() != "(<= a b)" {
		t.Fatal("cmpcols key")
	}
	if Between("d", DateLit("1995-01-01"), DateLit("1995-01-31")).Key() == "" {
		t.Fatal("between key empty")
	}
}

func TestAndOrFlattening(t *testing.T) {
	inner := And(Cmp("a", Eq, Int(1)), Cmp("b", Eq, Int(2)))
	outer := And(inner, Cmp("c", Eq, Int(3)))
	if ap, ok := outer.(*AndPred); !ok || len(ap.Children) != 3 {
		t.Fatalf("and not flattened: %s", outer.Key())
	}
	if !IsTrue(And()) {
		t.Fatal("empty And should be true")
	}
	if And(TruePred{}, Cmp("a", Eq, Int(1))).Key() != "(= a 1)" {
		t.Fatal("single-child And should unwrap")
	}
	o := Or(Or(Cmp("a", Eq, Int(1)), Cmp("a", Eq, Int(2))), Cmp("a", Eq, Int(3)))
	if op, ok := o.(*OrPred); !ok || len(op.Children) != 3 {
		t.Fatal("or not flattened")
	}
	if Or(Cmp("a", Eq, Int(1))).Key() != "(= a 1)" {
		t.Fatal("single-child Or should unwrap")
	}
}

func TestColumnsCollection(t *testing.T) {
	p := And(
		Cmp("a", Eq, Int(1)),
		Or(Between("b", Int(1), Int(2)), In("c", Int(1))),
		Not(Like("d", "%x%")),
		CmpCols("e", Lt, "f"),
	)
	cols := p.Columns(nil)
	want := []string{"a", "b", "c", "d", "e", "f"}
	if len(cols) != len(want) {
		t.Fatalf("cols %v", cols)
	}
	for i := range want {
		if cols[i] != want[i] {
			t.Fatalf("cols %v", cols)
		}
	}
}

func TestMatchLike(t *testing.T) {
	cases := []struct {
		pattern, s string
		want       bool
	}{
		{"%", "", true},
		{"%", "abc", true},
		{"", "", true},
		{"", "a", false},
		{"abc", "abc", true},
		{"abc", "abd", false},
		{"a%", "abc", true},
		{"a%", "bac", false},
		{"%c", "abc", true},
		{"%b%", "abc", true},
		{"%x%", "abc", false},
		{"a_c", "abc", true},
		{"a_c", "ac", false},
		{"a__", "abc", true},
		{"%ab%cd%", "xxabyycdzz", true},
		{"%ab%cd%", "xxcdyyabzz", false},
		{"a%b%c", "aXbYc", true},
		{"a%b%c", "acb", false},
		{"%%", "x", true},
		{"_", "x", true},
		{"_", "", false},
	}
	for _, c := range cases {
		if got := MatchLike(c.pattern, c.s); got != c.want {
			t.Errorf("MatchLike(%q,%q)=%v want %v", c.pattern, c.s, got, c.want)
		}
	}
}

func TestMatchLikeQuick(t *testing.T) {
	// Property: LIKE with pattern %s% agrees with strings.Contains for
	// wildcard-free s.
	f := func(body, hay string) bool {
		clean := strings.Map(func(r rune) rune {
			if r == '%' || r == '_' {
				return 'x'
			}
			return r
		}, body)
		return MatchLike("%"+clean+"%", hay) == strings.Contains(hay, clean)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestScalarEval(t *testing.T) {
	tbl, b := testTable(t, 2000, 10)
	// qty * (price - 1)
	s := Arith(Col("qty"), Mul, Arith(Col("price"), Sub, Const(Float(1))))
	bs, err := BindScalar(s, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if bs.Out() != storage.Float64 {
		t.Fatal("arith should be float")
	}
	ctx := blockCtxFor(tbl, 0)
	sel := firstBlockSel(tbl)
	out := make([]float64, len(sel))
	bs.EvalF(ctx, sel, out)
	for i, r := range sel {
		want := float64(b.Cols[0].Ints[r]) * (b.Cols[1].Floats[r] - 1)
		if out[i] != want {
			t.Fatalf("row %d: got %f want %f", r, out[i], want)
		}
	}
}

func TestScalarCase(t *testing.T) {
	tbl, b := testTable(t, 1000, 11)
	s := Case(Cmp("mode", Eq, Str("AIR")), Col("price"), Const(Float(0)))
	bs, err := BindScalar(s, tbl)
	if err != nil {
		t.Fatal(err)
	}
	ctx := blockCtxFor(tbl, 0)
	sel := firstBlockSel(tbl)
	out := make([]float64, len(sel))
	bs.EvalF(ctx, sel, out)
	for i, r := range sel {
		want := 0.0
		if b.Cols[2].Strings[r] == "AIR" {
			want = b.Cols[1].Floats[r]
		}
		if out[i] != want {
			t.Fatalf("row %d: got %f want %f", r, out[i], want)
		}
	}
}

func TestScalarIntPath(t *testing.T) {
	tbl, b := testTable(t, 1000, 12)
	bs, err := BindScalar(Col("qty"), tbl)
	if err != nil {
		t.Fatal(err)
	}
	if !bs.Out().IsInt() {
		t.Fatal("colref on int column should be int")
	}
	ctx := blockCtxFor(tbl, 0)
	sel := firstBlockSel(tbl)
	out := make([]int64, len(sel))
	bs.EvalI(ctx, sel, out)
	for i, r := range sel {
		if out[i] != b.Cols[0].Ints[r] {
			t.Fatal("EvalI mismatch")
		}
	}
	// Constant int scalar.
	cs, err := BindScalar(Const(Int(7)), tbl)
	if err != nil {
		t.Fatal(err)
	}
	cout := make([]int64, len(sel))
	cs.EvalI(ctx, sel, cout)
	if cout[0] != 7 || cout[len(cout)-1] != 7 {
		t.Fatal("const EvalI mismatch")
	}
}

func TestScalarKeysAndColumns(t *testing.T) {
	s := Arith(Col("a"), Add, Case(Cmp("b", Gt, Int(1)), Col("c"), Const(Int(0))))
	if s.Key() != "(+ a (case (> b 1) c 0))" {
		t.Fatalf("key %q", s.Key())
	}
	cols := s.ScalarColumns(nil)
	if fmt.Sprint(cols) != "[a b c]" {
		t.Fatalf("cols %v", cols)
	}
}

func TestScalarBindErrors(t *testing.T) {
	tbl, _ := testTable(t, 10, 13)
	if _, err := BindScalar(Col("nope"), tbl); err == nil {
		t.Fatal("unknown column accepted")
	}
	if _, err := BindScalar(Arith(Col("nope"), Add, Col("qty")), tbl); err == nil {
		t.Fatal("bad arith accepted")
	}
	if _, err := BindScalar(Case(Cmp("nope", Eq, Int(1)), Col("qty"), Col("qty")), tbl); err == nil {
		t.Fatal("bad case accepted")
	}
	if _, err := BindScalar(Const(Str("x")), tbl); err == nil {
		t.Fatal("string const accepted")
	}
}

// blockCtxFor loads block 0 of slice 0 into a fresh context.
func blockCtxFor(tbl *storage.Table, blk int) *BlockCtx {
	ctx := NewBlockCtx(len(tbl.Schema()), dictsOf(tbl))
	s := tbl.Slice(0)
	n := s.NumRows() - blk*storage.BlockSize
	if n > storage.BlockSize {
		n = storage.BlockSize
	}
	ctx.N = n
	for ci, def := range tbl.Schema() {
		if def.Type == storage.Float64 {
			v := make([]float64, storage.BlockSize)
			s.Column(ci).ReadFloatBlock(blk, v)
			ctx.SetFloat(ci, v)
		} else {
			v := make([]int64, storage.BlockSize)
			s.Column(ci).ReadIntBlock(blk, v)
			ctx.SetInt(ci, v)
		}
	}
	return ctx
}

func firstBlockSel(tbl *storage.Table) []int {
	n := tbl.Slice(0).NumRows()
	if n > storage.BlockSize {
		n = storage.BlockSize
	}
	sel := make([]int, n)
	for i := range sel {
		sel[i] = i
	}
	return sel
}

// Property test: random predicate trees evaluate identically to row-by-row
// reference evaluation.
func TestRandomPredicateTreesQuick(t *testing.T) {
	tbl, b := testTable(t, 4000, 14)
	r := rand.New(rand.NewSource(99))
	modes := []string{"AIR", "MAIL", "SHIP", "TRUCK", "RAIL", "NONE"}

	var genPred func(depth int) (Pred, func(int) bool)
	genPred = func(depth int) (Pred, func(int) bool) {
		if depth > 0 && r.Intn(2) == 0 {
			switch r.Intn(3) {
			case 0:
				l, lf := genPred(depth - 1)
				rr, rf := genPred(depth - 1)
				return And(l, rr), func(i int) bool { return lf(i) && rf(i) }
			case 1:
				l, lf := genPred(depth - 1)
				rr, rf := genPred(depth - 1)
				return Or(l, rr), func(i int) bool { return lf(i) || rf(i) }
			default:
				c, cf := genPred(depth - 1)
				return Not(c), func(i int) bool { return !cf(i) }
			}
		}
		switch r.Intn(4) {
		case 0:
			v := int64(r.Intn(52))
			op := CmpOp(r.Intn(6))
			return Cmp("qty", op, Int(v)), func(i int) bool { return cmpInt(op, b.Cols[0].Ints[i], v) }
		case 1:
			v := float64(r.Intn(100))
			op := CmpOp(r.Intn(6))
			return Cmp("price", op, Float(v)), func(i int) bool { return cmpFloat(op, b.Cols[1].Floats[i], v) }
		case 2:
			m := modes[r.Intn(len(modes))]
			return Cmp("mode", Eq, Str(m)), func(i int) bool { return b.Cols[2].Strings[i] == m }
		default:
			lo := int64(9000 + r.Intn(300))
			hi := lo + int64(r.Intn(100))
			return Between("day", Int(lo), Int(hi)), func(i int) bool {
				v := b.Cols[3].Ints[i]
				return v >= lo && v <= hi
			}
		}
	}

	for iter := 0; iter < 60; iter++ {
		p, ref := genPred(3)
		bp, err := Bind(p, tbl)
		if err != nil {
			t.Fatal(err)
		}
		got := evalAll(t, tbl, bp)
		want := refEval(b, ref)
		if !sameRows(got, want) {
			t.Fatalf("iter %d (%s): got %d rows want %d", iter, p.Key(), len(got), len(want))
		}
	}
}

func TestConjunctOrderCanonicalization(t *testing.T) {
	a := Cmp("x", Eq, Int(1))
	b := Between("y", Int(2), Int(3))
	if And(a, b).Key() != And(b, a).Key() {
		t.Fatal("conjunct order changes the key")
	}
	if Or(a, b).Key() != Or(b, a).Key() {
		t.Fatal("disjunct order changes the key")
	}
	// Nested structures canonicalize recursively.
	n1 := And(Or(a, b), Cmp("z", Lt, Int(9)))
	n2 := And(Cmp("z", Lt, Int(9)), Or(b, a))
	if n1.Key() != n2.Key() {
		t.Fatal("nested canonicalization failed")
	}
}

func TestBlockCtxAccessors(t *testing.T) {
	tbl, _ := testTable(t, 10, 30)
	ctx := blockCtxFor(tbl, 0)
	if ctx.Ints(0) == nil || ctx.Floats(1) == nil || ctx.Dict(2) == nil {
		t.Fatal("accessors")
	}
}

func TestPruneEdgeCases(t *testing.T) {
	tbl, _ := testTable(t, 100, 31)
	mustBind := func(p Pred) Bound {
		bp, err := Bind(p, tbl)
		if err != nil {
			t.Fatal(err)
		}
		return bp
	}
	b := fakeBounds{imin: 10, imax: 20, fmin: 10, fmax: 20, iok: true, fok: true}
	noBounds := fakeBounds{}
	cases := []struct {
		pred Pred
		bp   BoundsProvider
		skip bool
	}{
		// Float prune paths.
		{Cmp("price", Eq, Float(5)), b, true},
		{Cmp("price", Ne, Float(5)), b, false},
		{Cmp("price", Lt, Float(10)), b, true},
		{Cmp("price", Le, Float(9.9)), b, true},
		{Cmp("price", Ge, Float(20.1)), b, true},
		{Between("price", Float(30), Float(40)), b, true},
		{Between("price", Float(15), Float(40)), b, false},
		{In("price", Float(1), Float(2)), b, true},
		{In("price", Float(15)), b, false},
		// Fractional literal on int column.
		{Cmp("qty", Eq, Float(5.5)), b, true},
		{Cmp("qty", Ne, Float(5.5)), b, false},
		{Cmp("qty", Lt, Float(9.5)), b, true},
		{Cmp("qty", Le, Float(9.5)), b, true},
		{Cmp("qty", Gt, Float(20.5)), b, true},
		{Cmp("qty", Ge, Float(20.5)), b, true},
		// Missing bounds never prune.
		{Cmp("qty", Eq, Int(5)), noBounds, false},
		{Cmp("price", Eq, Float(5)), noBounds, false},
		{Between("qty", Int(1), Int(2)), noBounds, false},
		{Between("price", Float(1), Float(2)), noBounds, false},
		{In("qty", Int(1)), noBounds, false},
		{In("price", Float(1)), noBounds, false},
		{CmpCols("qty", Lt, "day"), noBounds, false},
	}
	for i, c := range cases {
		if got := mustBind(c.pred).Prune(c.bp); got != c.skip {
			t.Errorf("case %d (%s): prune=%v want %v", i, c.pred.Key(), got, c.skip)
		}
	}
	// A constant float block equal to the literal prunes Ne.
	constF := fakeBounds{fmin: 5, fmax: 5, fok: true}
	if !mustBind(Cmp("price", Ne, Float(5))).Prune(constF) {
		t.Error("float Ne on constant block should prune")
	}
	// CmpCols float pruning.
	type fcb struct{ twoColBounds }
	_ = fcb{}
}

func TestCmpColsFloatEval(t *testing.T) {
	schema := storage.Schema{{Name: "a", Type: storage.Float64}, {Name: "b", Type: storage.Float64}}
	tbl, err := storage.NewTable("f", schema, 1)
	if err != nil {
		t.Fatal(err)
	}
	batch := storage.NewBatch(schema)
	for i := 0; i < 500; i++ {
		batch.Cols[0].Floats = append(batch.Cols[0].Floats, float64(i%10))
		batch.Cols[1].Floats = append(batch.Cols[1].Floats, float64(i%7))
	}
	batch.N = 500
	if err := tbl.Append(batch, 1); err != nil {
		t.Fatal(err)
	}
	bp, err := Bind(CmpCols("a", Gt, "b"), tbl)
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewBlockCtx(2, []*storage.Dict{nil, nil})
	va := make([]float64, storage.BlockSize)
	vb := make([]float64, storage.BlockSize)
	tbl.Slice(0).Column(0).ReadFloatBlock(0, va)
	tbl.Slice(0).Column(1).ReadFloatBlock(0, vb)
	ctx.SetFloat(0, va)
	ctx.SetFloat(1, vb)
	ctx.N = 500
	sel := make([]int, 500)
	for i := range sel {
		sel[i] = i
	}
	out := bp.Eval(ctx, sel)
	want := 0
	for i := 0; i < 500; i++ {
		if float64(i%10) > float64(i%7) {
			want++
		}
	}
	if len(out) != want {
		t.Fatalf("got %d want %d", len(out), want)
	}
	// Float cmpcols pruning: a-range entirely above b-range.
	type floatBounds struct{ a, b [2]float64 }
	fb := struct{ floatBounds }{floatBounds{a: [2]float64{50, 60}, b: [2]float64{0, 10}}}
	_ = fb
	prA := floatColsBounds{a: [2]float64{0, 10}, b: [2]float64{50, 60}}
	if !bp.Prune(prA) {
		t.Fatal("a<b everywhere: a>b should prune")
	}
	prB := floatColsBounds{a: [2]float64{0, 100}, b: [2]float64{50, 60}}
	if bp.Prune(prB) {
		t.Fatal("overlapping float ranges pruned")
	}
}

type floatColsBounds struct{ a, b [2]float64 }

func (f floatColsBounds) IntBounds(int) (int64, int64, bool) { return 0, 0, false }
func (f floatColsBounds) FloatBounds(col int) (float64, float64, bool) {
	if col == 0 {
		return f.a[0], f.a[1], true
	}
	return f.b[0], f.b[1], true
}

func TestScalarYearAndConstFloat(t *testing.T) {
	tbl, b := testTable(t, 500, 32)
	ys, err := BindScalar(Year(Col("day")), tbl)
	if err != nil {
		t.Fatal(err)
	}
	if !ys.Out().IsInt() {
		t.Fatal("year should be int")
	}
	ctx := blockCtxFor(tbl, 0)
	sel := firstBlockSel(tbl)
	out := make([]int64, len(sel))
	ys.EvalI(ctx, sel, out)
	fout := make([]float64, len(sel))
	ys.EvalF(ctx, sel, fout)
	for i, r := range sel {
		y, _, _ := storage.YMDFromDate(b.Cols[3].Ints[r])
		if out[i] != int64(y) || fout[i] != float64(y) {
			t.Fatalf("year mismatch at %d", r)
		}
	}
	if _, err := BindScalar(Year(Col("price")), tbl); err == nil {
		t.Fatal("year on float accepted")
	}
	// Float constant.
	cs, err := BindScalar(Const(Float(2.5)), tbl)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Out() != storage.Float64 {
		t.Fatal("float const type")
	}
	cf := make([]float64, len(sel))
	cs.EvalF(ctx, sel, cf)
	if cf[0] != 2.5 {
		t.Fatal("const eval")
	}
	// Arith ops coverage: + - /.
	for _, op := range []ArithOp{Add, Sub, Div} {
		as, err := BindScalar(Arith(Col("price"), op, Const(Float(2))), tbl)
		if err != nil {
			t.Fatal(err)
		}
		av := make([]float64, len(sel))
		as.EvalF(ctx, sel, av)
	}
	if Add.String() != "+" || Sub.String() != "-" || Mul.String() != "*" || Div.String() != "/" {
		t.Fatal("arith names")
	}
}

func TestCmpOpString(t *testing.T) {
	names := map[CmpOp]string{Eq: "=", Ne: "<>", Lt: "<", Le: "<=", Gt: ">", Ge: ">="}
	for op, want := range names {
		if op.String() != want {
			t.Fatalf("%v", op)
		}
	}
	if CmpOp(99).String() == "" {
		t.Fatal("unknown op string empty")
	}
	if Int(3).String() != "3" || Str("x").String() != `"x"` {
		t.Fatal("value strings")
	}
}

func TestIsTrueAndTrueColumns(t *testing.T) {
	if !IsTrue(TruePred{}) || !IsTrue(&TruePred{}) || IsTrue(Cmp("a", Eq, Int(1))) {
		t.Fatal("IsTrue")
	}
	if len((TruePred{}).Columns(nil)) != 0 {
		t.Fatal("true columns")
	}
	if len((&NotPred{Child: TruePred{}}).Columns(nil)) != 0 {
		t.Fatal("not columns")
	}
}
