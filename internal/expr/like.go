package expr

// MatchLike implements SQL LIKE matching: '%' matches any (possibly empty)
// substring, '_' matches exactly one byte. Matching is byte-wise (the
// generated benchmark data is ASCII).
func MatchLike(pattern, s string) bool {
	// Iterative two-pointer algorithm with backtracking to the last '%'.
	var pi, si int
	star := -1
	starSi := 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			pi++
			si++
		case pi < len(pattern) && pattern[pi] == '%':
			star = pi
			starSi = si
			pi++
		case star >= 0:
			pi = star + 1
			starSi++
			si = starSi
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}
