package expr

import (
	"fmt"
	"math"

	"github.com/predcache/predcache/internal/storage"
)

// BlockCtx carries the decompressed column vectors of one block during
// vectorized evaluation, plus per-scan-thread scratch buffers. A BlockCtx is
// owned by a single goroutine.
type BlockCtx struct {
	N      int
	ints   [][]int64
	floats [][]float64
	dicts  []*storage.Dict
}

// NewBlockCtx creates a context for a table with numCols columns; dicts is
// indexed by column (nil for non-string columns).
func NewBlockCtx(numCols int, dicts []*storage.Dict) *BlockCtx {
	return &BlockCtx{
		ints:   make([][]int64, numCols),
		floats: make([][]float64, numCols),
		dicts:  dicts,
	}
}

// Reset prepares a (possibly recycled) context for a new scan over a table
// with numCols columns: vector pointers are cleared so stale slices from the
// previous scan can never be read.
func (c *BlockCtx) Reset(numCols int, dicts []*storage.Dict) {
	if cap(c.ints) >= numCols && cap(c.floats) >= numCols {
		c.ints = c.ints[:numCols]
		c.floats = c.floats[:numCols]
		for i := 0; i < numCols; i++ {
			c.ints[i] = nil
			c.floats[i] = nil
		}
	} else {
		c.ints = make([][]int64, numCols)
		c.floats = make([][]float64, numCols)
	}
	c.dicts = dicts
	c.N = 0
}

// SetInt installs the decompressed integer vector of a column.
func (c *BlockCtx) SetInt(col int, v []int64) { c.ints[col] = v }

// SetFloat installs the decompressed float vector of a column.
func (c *BlockCtx) SetFloat(col int, v []float64) { c.floats[col] = v }

// Ints returns the integer vector of a column. The vector is a per-block
// scratch buffer overwritten by the next block load; read it within the
// batch only, and copy elements out — never retain the slice itself.
//
// pclint:recycled
func (c *BlockCtx) Ints(col int) []int64 { return c.ints[col] }

// Floats returns the float vector of a column. Batch-scoped like Ints.
//
// pclint:recycled
func (c *BlockCtx) Floats(col int) []float64 { return c.floats[col] }

// Dict returns the dictionary of a string column.
func (c *BlockCtx) Dict(col int) *storage.Dict { return c.dicts[col] }

// Source is anything predicates and scalars can bind against: a base table
// or an intermediate relation. Implementations expose column resolution,
// column types, and per-column string dictionaries.
type Source interface {
	Name() string
	ColumnIndex(name string) int
	ColumnType(i int) storage.ColumnType
	Dict(i int) *storage.Dict
}

// BoundsProvider exposes the zone-map bounds of the current block.
type BoundsProvider interface {
	IntBounds(col int) (min, max int64, ok bool)
	FloatBounds(col int) (min, max float64, ok bool)
}

// Bound is a predicate bound to a concrete table: it can prune whole blocks
// using zone maps and filter selection vectors within a block.
type Bound interface {
	// Eval filters sel in place, returning the qualifying prefix. Rows are
	// block-relative offsets.
	Eval(ctx *BlockCtx, sel []int) []int
	// Prune reports whether the zone maps prove that no row of the block can
	// satisfy the predicate (the block can be skipped).
	Prune(bp BoundsProvider) bool
}

// Bind resolves a predicate against a table, producing an executable form.
// String literals are translated to dictionary codes, LIKE patterns and
// string-order comparisons are memoized over the dictionary.
func Bind(p Pred, src Source) (Bound, error) {
	switch t := p.(type) {
	case TruePred, *TruePred:
		return boundTrue{}, nil
	case *AndPred:
		children := make([]Bound, len(t.Children))
		for i, c := range t.Children {
			b, err := Bind(c, src)
			if err != nil {
				return nil, err
			}
			children[i] = b
		}
		return &boundAnd{children}, nil
	case *OrPred:
		children := make([]Bound, len(t.Children))
		for i, c := range t.Children {
			b, err := Bind(c, src)
			if err != nil {
				return nil, err
			}
			children[i] = b
		}
		return &boundOr{children}, nil
	case *NotPred:
		b, err := Bind(t.Child, src)
		if err != nil {
			return nil, err
		}
		return &boundNot{b}, nil
	case *CmpPred:
		return bindCmp(t, src)
	case *CmpColsPred:
		return bindCmpCols(t, src)
	case *BetweenPred:
		return bindBetween(t, src)
	case *InPred:
		return bindIn(t, src)
	case *LikePred:
		return bindLike(t, src)
	}
	return nil, fmt.Errorf("expr: cannot bind %T", p)
}

func colOf(src Source, name string) (int, storage.ColumnType, error) {
	idx := src.ColumnIndex(name)
	if idx < 0 {
		return 0, 0, fmt.Errorf("expr: %s has no column %q", src.Name(), name)
	}
	return idx, src.ColumnType(idx), nil
}

func bindCmp(p *CmpPred, src Source) (Bound, error) {
	col, typ, err := colOf(src, p.Col)
	if err != nil {
		return nil, err
	}
	switch typ {
	case storage.Float64:
		return &boundCmpFloat{col, p.Op, p.Val.AsFloat()}, nil
	case storage.String:
		if p.Val.Kind != KindString {
			return nil, fmt.Errorf("expr: comparing string column %s to %v", p.Col, p.Val)
		}
		dict := src.Dict(col)
		if p.Op == Eq || p.Op == Ne {
			code, found := dict.Lookup(p.Val.S)
			if !found {
				if p.Op == Eq {
					return boundFalse{}, nil
				}
				return boundTrue{}, nil
			}
			return &boundCmpInt{col, p.Op, code}, nil
		}
		return newBoundStrOrd(col, p.Op, p.Val.S, dict), nil
	default: // integer representations
		if p.Val.Kind == KindFloat {
			if p.Val.F != math.Trunc(p.Val.F) {
				// Fractional literal against an integer column: compare in
				// float domain so semantics match SQL.
				return &boundCmpIntAsFloat{col, p.Op, p.Val.F}, nil
			}
			return &boundCmpInt{col, p.Op, int64(p.Val.F)}, nil
		}
		if p.Val.Kind == KindString {
			return nil, fmt.Errorf("expr: comparing %s column %s to string", typ, p.Col)
		}
		return &boundCmpInt{col, p.Op, p.Val.I}, nil
	}
}

func bindCmpCols(p *CmpColsPred, src Source) (Bound, error) {
	ca, ta, err := colOf(src, p.ColA)
	if err != nil {
		return nil, err
	}
	cb, tb, err := colOf(src, p.ColB)
	if err != nil {
		return nil, err
	}
	if ta == storage.String || tb == storage.String {
		return nil, fmt.Errorf("expr: column-column comparison on strings unsupported (%s, %s)", p.ColA, p.ColB)
	}
	if ta == storage.Float64 || tb == storage.Float64 {
		if ta != storage.Float64 || tb != storage.Float64 {
			return nil, fmt.Errorf("expr: mixed-type column comparison (%s %s)", p.ColA, p.ColB)
		}
		return &boundCmpColsFloat{ca, p.Op, cb}, nil
	}
	return &boundCmpColsInt{ca, p.Op, cb}, nil
}

func bindBetween(p *BetweenPred, src Source) (Bound, error) {
	col, typ, err := colOf(src, p.Col)
	if err != nil {
		return nil, err
	}
	switch typ {
	case storage.Float64:
		return &boundBetweenFloat{col, p.Lo.AsFloat(), p.Hi.AsFloat()}, nil
	case storage.String:
		if p.Lo.Kind != KindString || p.Hi.Kind != KindString {
			return nil, fmt.Errorf("expr: between on string column %s needs string bounds", p.Col)
		}
		dict := src.Dict(col)
		lo := newBoundStrOrd(col, Ge, p.Lo.S, dict)
		hi := newBoundStrOrd(col, Le, p.Hi.S, dict)
		return &boundAnd{[]Bound{lo, hi}}, nil
	default:
		if p.Lo.Kind == KindFloat || p.Hi.Kind == KindFloat {
			return &boundAnd{[]Bound{
				&boundCmpIntAsFloat{col, Ge, p.Lo.AsFloat()},
				&boundCmpIntAsFloat{col, Le, p.Hi.AsFloat()},
			}}, nil
		}
		return &boundBetweenInt{col, p.Lo.I, p.Hi.I}, nil
	}
}

func bindIn(p *InPred, src Source) (Bound, error) {
	col, typ, err := colOf(src, p.Col)
	if err != nil {
		return nil, err
	}
	switch typ {
	case storage.Float64:
		set := make(map[float64]struct{}, len(p.Vals))
		for _, v := range p.Vals {
			set[v.AsFloat()] = struct{}{}
		}
		return &boundInFloat{col, set}, nil
	case storage.String:
		dict := src.Dict(col)
		set := make(map[int64]struct{}, len(p.Vals))
		for _, v := range p.Vals {
			if v.Kind != KindString {
				return nil, fmt.Errorf("expr: IN on string column %s with non-string literal", p.Col)
			}
			if code, found := dict.Lookup(v.S); found {
				set[code] = struct{}{}
			}
		}
		if len(set) == 0 {
			return boundFalse{}, nil
		}
		return &boundInInt{col, set, nil}, nil
	default:
		set := make(map[int64]struct{}, len(p.Vals))
		var sorted []int64
		for _, v := range p.Vals {
			switch v.Kind {
			case KindFloat:
				if v.F == math.Trunc(v.F) {
					set[int64(v.F)] = struct{}{}
				}
			case KindInt:
				set[v.I] = struct{}{}
			default:
				return nil, fmt.Errorf("expr: IN on %s column %s with string literal", typ, p.Col)
			}
		}
		for v := range set {
			sorted = append(sorted, v)
		}
		return &boundInInt{col, set, sorted}, nil
	}
}

func bindLike(p *LikePred, src Source) (Bound, error) {
	col, typ, err := colOf(src, p.Col)
	if err != nil {
		return nil, err
	}
	if typ != storage.String {
		return nil, fmt.Errorf("expr: LIKE on non-string column %s", p.Col)
	}
	dict := src.Dict(col)
	memo := make([]bool, dict.Len())
	for code := range memo {
		memo[code] = MatchLike(p.Pattern, dict.Value(int64(code)))
	}
	return &boundLike{col, p.Pattern, memo, dict, p.Negate}, nil
}
