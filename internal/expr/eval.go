package expr

import "github.com/predcache/predcache/internal/storage"

// --- bound leaf nodes: vectorized evaluation + zone-map pruning ---

type boundTrue struct{}

func (boundTrue) Eval(_ *BlockCtx, sel []int) []int { return sel }
func (boundTrue) Prune(BoundsProvider) bool         { return false }

type boundFalse struct{}

func (boundFalse) Eval(_ *BlockCtx, sel []int) []int { return sel[:0] }
func (boundFalse) Prune(BoundsProvider) bool         { return true }

type boundCmpInt struct {
	col int
	op  CmpOp
	v   int64
}

func (b *boundCmpInt) Eval(ctx *BlockCtx, sel []int) []int {
	vec := ctx.ints[b.col]
	k := 0
	switch b.op {
	case Eq:
		for _, r := range sel {
			if vec[r] == b.v {
				sel[k] = r
				k++
			}
		}
	case Ne:
		for _, r := range sel {
			if vec[r] != b.v {
				sel[k] = r
				k++
			}
		}
	case Lt:
		for _, r := range sel {
			if vec[r] < b.v {
				sel[k] = r
				k++
			}
		}
	case Le:
		for _, r := range sel {
			if vec[r] <= b.v {
				sel[k] = r
				k++
			}
		}
	case Gt:
		for _, r := range sel {
			if vec[r] > b.v {
				sel[k] = r
				k++
			}
		}
	default:
		for _, r := range sel {
			if vec[r] >= b.v {
				sel[k] = r
				k++
			}
		}
	}
	return sel[:k]
}

func (b *boundCmpInt) Prune(bp BoundsProvider) bool {
	min, max, ok := bp.IntBounds(b.col)
	if !ok {
		return false
	}
	switch b.op {
	case Eq:
		return b.v < min || b.v > max
	case Ne:
		return min == max && min == b.v
	case Lt:
		return min >= b.v
	case Le:
		return min > b.v
	case Gt:
		return max <= b.v
	default: // Ge
		return max < b.v
	}
}

type boundCmpFloat struct {
	col int
	op  CmpOp
	v   float64
}

func (b *boundCmpFloat) Eval(ctx *BlockCtx, sel []int) []int {
	vec := ctx.floats[b.col]
	k := 0
	for _, r := range sel {
		if cmpFloat(b.op, vec[r], b.v) {
			sel[k] = r
			k++
		}
	}
	return sel[:k]
}

func (b *boundCmpFloat) Prune(bp BoundsProvider) bool {
	min, max, ok := bp.FloatBounds(b.col)
	if !ok {
		return false
	}
	switch b.op {
	case Eq:
		return b.v < min || b.v > max
	case Ne:
		return min == max && min == b.v
	case Lt:
		return min >= b.v
	case Le:
		return min > b.v
	case Gt:
		return max <= b.v
	default:
		return max < b.v
	}
}

// boundCmpIntAsFloat compares an integer column against a fractional
// literal in the float domain.
type boundCmpIntAsFloat struct {
	col int
	op  CmpOp
	v   float64
}

func (b *boundCmpIntAsFloat) Eval(ctx *BlockCtx, sel []int) []int {
	vec := ctx.ints[b.col]
	k := 0
	for _, r := range sel {
		if cmpFloat(b.op, float64(vec[r]), b.v) {
			sel[k] = r
			k++
		}
	}
	return sel[:k]
}

func (b *boundCmpIntAsFloat) Prune(bp BoundsProvider) bool {
	min, max, ok := bp.IntBounds(b.col)
	if !ok {
		return false
	}
	fmin, fmax := float64(min), float64(max)
	switch b.op {
	case Eq:
		return b.v < fmin || b.v > fmax
	case Ne:
		return fmin == fmax && fmin == b.v
	case Lt:
		return fmin >= b.v
	case Le:
		return fmin > b.v
	case Gt:
		return fmax <= b.v
	default:
		return fmax < b.v
	}
}

type boundCmpColsInt struct {
	colA int
	op   CmpOp
	colB int
}

func (b *boundCmpColsInt) Eval(ctx *BlockCtx, sel []int) []int {
	va, vb := ctx.ints[b.colA], ctx.ints[b.colB]
	k := 0
	for _, r := range sel {
		if cmpInt(b.op, va[r], vb[r]) {
			sel[k] = r
			k++
		}
	}
	return sel[:k]
}

func (b *boundCmpColsInt) Prune(bp BoundsProvider) bool {
	minA, maxA, okA := bp.IntBounds(b.colA)
	minB, maxB, okB := bp.IntBounds(b.colB)
	if !okA || !okB {
		return false
	}
	switch b.op {
	case Lt:
		return minA >= maxB
	case Le:
		return minA > maxB
	case Gt:
		return maxA <= minB
	case Ge:
		return maxA < minB
	case Eq:
		return maxA < minB || minA > maxB
	default:
		return false
	}
}

type boundCmpColsFloat struct {
	colA int
	op   CmpOp
	colB int
}

func (b *boundCmpColsFloat) Eval(ctx *BlockCtx, sel []int) []int {
	va, vb := ctx.floats[b.colA], ctx.floats[b.colB]
	k := 0
	for _, r := range sel {
		if cmpFloat(b.op, va[r], vb[r]) {
			sel[k] = r
			k++
		}
	}
	return sel[:k]
}

func (b *boundCmpColsFloat) Prune(bp BoundsProvider) bool {
	minA, maxA, okA := bp.FloatBounds(b.colA)
	minB, maxB, okB := bp.FloatBounds(b.colB)
	if !okA || !okB {
		return false
	}
	switch b.op {
	case Lt:
		return minA >= maxB
	case Le:
		return minA > maxB
	case Gt:
		return maxA <= minB
	case Ge:
		return maxA < minB
	case Eq:
		return maxA < minB || minA > maxB
	default:
		return false
	}
}

type boundBetweenInt struct {
	col    int
	lo, hi int64
}

func (b *boundBetweenInt) Eval(ctx *BlockCtx, sel []int) []int {
	vec := ctx.ints[b.col]
	k := 0
	for _, r := range sel {
		v := vec[r]
		if v >= b.lo && v <= b.hi {
			sel[k] = r
			k++
		}
	}
	return sel[:k]
}

func (b *boundBetweenInt) Prune(bp BoundsProvider) bool {
	min, max, ok := bp.IntBounds(b.col)
	if !ok {
		return false
	}
	return b.hi < min || b.lo > max
}

type boundBetweenFloat struct {
	col    int
	lo, hi float64
}

func (b *boundBetweenFloat) Eval(ctx *BlockCtx, sel []int) []int {
	vec := ctx.floats[b.col]
	k := 0
	for _, r := range sel {
		v := vec[r]
		if v >= b.lo && v <= b.hi {
			sel[k] = r
			k++
		}
	}
	return sel[:k]
}

func (b *boundBetweenFloat) Prune(bp BoundsProvider) bool {
	min, max, ok := bp.FloatBounds(b.col)
	if !ok {
		return false
	}
	return b.hi < min || b.lo > max
}

type boundInInt struct {
	col  int
	set  map[int64]struct{}
	vals []int64 // for pruning; nil for string-code sets (codes unordered)
}

func (b *boundInInt) Eval(ctx *BlockCtx, sel []int) []int {
	vec := ctx.ints[b.col]
	k := 0
	for _, r := range sel {
		if _, ok := b.set[vec[r]]; ok {
			sel[k] = r
			k++
		}
	}
	return sel[:k]
}

func (b *boundInInt) Prune(bp BoundsProvider) bool {
	if b.vals == nil {
		return false
	}
	min, max, ok := bp.IntBounds(b.col)
	if !ok {
		return false
	}
	for _, v := range b.vals {
		if v >= min && v <= max {
			return false
		}
	}
	return true
}

type boundInFloat struct {
	col int
	set map[float64]struct{}
}

func (b *boundInFloat) Eval(ctx *BlockCtx, sel []int) []int {
	vec := ctx.floats[b.col]
	k := 0
	for _, r := range sel {
		if _, ok := b.set[vec[r]]; ok {
			sel[k] = r
			k++
		}
	}
	return sel[:k]
}

func (b *boundInFloat) Prune(bp BoundsProvider) bool {
	min, max, ok := bp.FloatBounds(b.col)
	if !ok {
		return false
	}
	for v := range b.set {
		if v >= min && v <= max {
			return false
		}
	}
	return true
}

// boundStrOrd evaluates ordering comparisons on dictionary-coded strings via
// a bind-time memo over the dictionary.
type boundStrOrd struct {
	col  int
	op   CmpOp
	lit  string
	memo []bool
	dict *storage.Dict
}

func newBoundStrOrd(col int, op CmpOp, lit string, dict *storage.Dict) *boundStrOrd {
	memo := make([]bool, dict.Len())
	for code := range memo {
		memo[code] = cmpStr(op, dict.Value(int64(code)), lit)
	}
	return &boundStrOrd{col, op, lit, memo, dict}
}

func (b *boundStrOrd) match(code int64) bool {
	if int(code) < len(b.memo) {
		return b.memo[code]
	}
	return cmpStr(b.op, b.dict.Value(code), b.lit)
}

func (b *boundStrOrd) Eval(ctx *BlockCtx, sel []int) []int {
	vec := ctx.ints[b.col]
	k := 0
	for _, r := range sel {
		if b.match(vec[r]) {
			sel[k] = r
			k++
		}
	}
	return sel[:k]
}

func (b *boundStrOrd) Prune(BoundsProvider) bool { return false }

type boundLike struct {
	col     int
	pattern string
	memo    []bool
	dict    *storage.Dict
	negate  bool
}

func (b *boundLike) match(code int64) bool {
	var m bool
	if int(code) < len(b.memo) {
		m = b.memo[code]
	} else {
		m = MatchLike(b.pattern, b.dict.Value(code))
	}
	return m != b.negate
}

func (b *boundLike) Eval(ctx *BlockCtx, sel []int) []int {
	vec := ctx.ints[b.col]
	k := 0
	for _, r := range sel {
		if b.match(vec[r]) {
			sel[k] = r
			k++
		}
	}
	return sel[:k]
}

func (b *boundLike) Prune(BoundsProvider) bool { return false }

// --- composites ---

type boundAnd struct{ children []Bound }

func (b *boundAnd) Eval(ctx *BlockCtx, sel []int) []int {
	for _, c := range b.children {
		sel = c.Eval(ctx, sel)
		if len(sel) == 0 {
			return sel
		}
	}
	return sel
}

func (b *boundAnd) Prune(bp BoundsProvider) bool {
	for _, c := range b.children {
		if c.Prune(bp) {
			return true
		}
	}
	return false
}

type boundOr struct{ children []Bound }

// pclint:allowalloc deliberate per-call buffers — the bound tree is shared
// across parallel slice scans, so reusable scratch would race; OR/NOT nodes
// are rare in kernel-split residuals.
func (b *boundOr) Eval(ctx *BlockCtx, sel []int) []int {
	// Buffers are local: children may themselves be Or/Not nodes, and bound
	// predicates are shared across parallel slice scans, so neither
	// node-level nor context-level scratch would be safe here.
	mark := make([]bool, ctx.N)
	input := append([]int(nil), sel...)
	scratch := make([]int, len(input))
	marked := 0
	for _, c := range b.children {
		copy(scratch, input)
		out := c.Eval(ctx, scratch[:len(input)])
		for _, r := range out {
			if !mark[r] {
				mark[r] = true
				marked++
			}
		}
		if marked == len(input) {
			break
		}
	}
	k := 0
	for _, r := range input {
		if mark[r] {
			sel[k] = r
			k++
		}
	}
	return sel[:k]
}

func (b *boundOr) Prune(bp BoundsProvider) bool {
	for _, c := range b.children {
		if !c.Prune(bp) {
			return false
		}
	}
	return len(b.children) > 0
}

type boundNot struct{ child Bound }

// pclint:allowalloc deliberate per-call buffers — same parallel-safety
// rationale as boundOr.Eval.
func (b *boundNot) Eval(ctx *BlockCtx, sel []int) []int {
	// Local buffers for the same reason as boundOr.
	mark := make([]bool, ctx.N)
	input := append([]int(nil), sel...)
	scratch := make([]int, len(input))
	copy(scratch, input)
	out := b.child.Eval(ctx, scratch[:len(input)])
	for _, r := range out {
		mark[r] = true
	}
	k := 0
	for _, r := range input {
		if !mark[r] {
			sel[k] = r
			k++
		}
	}
	return sel[:k]
}

// Prune of a negation cannot use the child's pruning logic soundly (the
// child skipping means *all* rows fail the child — i.e. all rows pass the
// negation), so it never skips.
func (b *boundNot) Prune(BoundsProvider) bool { return false }
