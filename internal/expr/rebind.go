package expr

// Rebinding support for the normalized-SQL plan cache: a cached plan is a
// template whose literal Values carry 1-based Slot tags (see Value.Slot).
// RebindPred/RebindScalar deep-copy an expression tree, passing every Value
// through a caller-supplied bind function — the plan cache uses it to
// substitute the current query's literals into the template, and the engine's
// plan cloner uses it with the identity function to copy plans defensively.
//
// Both return ok=false when the tree contains a node type the walker does not
// know; callers must then fall back to planning from scratch rather than
// executing a partially-copied plan.

// RebindPred returns a deep copy of p with every literal passed through bind.
func RebindPred(p Pred, bind func(Value) Value) (Pred, bool) {
	switch t := p.(type) {
	case nil:
		return nil, true
	case *CmpPred:
		return &CmpPred{Col: t.Col, Op: t.Op, Val: bind(t.Val)}, true
	case *CmpColsPred:
		cp := *t
		return &cp, true
	case *BetweenPred:
		return &BetweenPred{Col: t.Col, Lo: bind(t.Lo), Hi: bind(t.Hi)}, true
	case *InPred:
		vals := make([]Value, len(t.Vals))
		for i, v := range t.Vals {
			vals[i] = bind(v)
		}
		return &InPred{Col: t.Col, Vals: vals}, true
	case *LikePred:
		cp := *t
		return &cp, true
	case *AndPred:
		children, ok := rebindChildren(t.Children, bind)
		if !ok {
			return nil, false
		}
		return &AndPred{Children: children}, true
	case *OrPred:
		children, ok := rebindChildren(t.Children, bind)
		if !ok {
			return nil, false
		}
		return &OrPred{Children: children}, true
	case *NotPred:
		child, ok := RebindPred(t.Child, bind)
		if !ok {
			return nil, false
		}
		return &NotPred{Child: child}, true
	case TruePred:
		return TruePred{}, true
	case *TruePred:
		return TruePred{}, true
	}
	return nil, false
}

func rebindChildren(children []Pred, bind func(Value) Value) ([]Pred, bool) {
	out := make([]Pred, len(children))
	for i, c := range children {
		cp, ok := RebindPred(c, bind)
		if !ok {
			return nil, false
		}
		out[i] = cp
	}
	return out, true
}

// RebindScalar returns a deep copy of s with every literal passed through
// bind.
func RebindScalar(s Scalar, bind func(Value) Value) (Scalar, bool) {
	switch t := s.(type) {
	case nil:
		return nil, true
	case *ColRef:
		cp := *t
		return &cp, true
	case *ConstScalar:
		return &ConstScalar{Val: bind(t.Val)}, true
	case *ArithScalar:
		l, ok := RebindScalar(t.L, bind)
		if !ok {
			return nil, false
		}
		r, ok := RebindScalar(t.R, bind)
		if !ok {
			return nil, false
		}
		return &ArithScalar{Op: t.Op, L: l, R: r}, true
	case *YearScalar:
		arg, ok := RebindScalar(t.Arg, bind)
		if !ok {
			return nil, false
		}
		return &YearScalar{Arg: arg}, true
	case *CaseScalar:
		cond, ok := RebindPred(t.Cond, bind)
		if !ok {
			return nil, false
		}
		then, ok := RebindScalar(t.Then, bind)
		if !ok {
			return nil, false
		}
		els, ok := RebindScalar(t.Else, bind)
		if !ok {
			return nil, false
		}
		return &CaseScalar{Cond: cond, Then: then, Else: els}, true
	}
	return nil, false
}

// WalkPredValues visits every literal in p. The bool result reports whether
// every node type was recognized (mirroring RebindPred).
func WalkPredValues(p Pred, visit func(Value)) bool {
	_, ok := RebindPred(p, func(v Value) Value { visit(v); return v })
	return ok
}

// WalkScalarValues visits every literal in s.
func WalkScalarValues(s Scalar, visit func(Value)) bool {
	_, ok := RebindScalar(s, func(v Value) Value { visit(v); return v })
	return ok
}
