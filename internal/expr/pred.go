package expr

import (
	"sort"
	"strings"
)

// Pred is an unbound predicate over the columns of a single table. Unbound
// predicates are pure syntax: they render to canonical keys and bind against
// a concrete table to become executable.
type Pred interface {
	// Key returns the canonical text form used as the predicate-cache key.
	Key() string
	// Columns appends the referenced column names to dst and returns it.
	Columns(dst []string) []string
}

// --- node types ---

// CmpPred compares a column against a literal.
type CmpPred struct {
	Col string
	Op  CmpOp
	Val Value
}

// CmpColsPred compares two columns of the same table.
type CmpColsPred struct {
	ColA string
	Op   CmpOp
	ColB string
}

// BetweenPred is Col between Lo and Hi (inclusive on both ends, as in SQL).
type BetweenPred struct {
	Col    string
	Lo, Hi Value
}

// InPred is Col in (Vals...).
type InPred struct {
	Col  string
	Vals []Value
}

// LikePred is a SQL LIKE pattern match with % and _ wildcards.
type LikePred struct {
	Col     string
	Pattern string
	Negate  bool
}

// AndPred is a conjunction.
type AndPred struct{ Children []Pred }

// OrPred is a disjunction.
type OrPred struct{ Children []Pred }

// NotPred is a negation.
type NotPred struct{ Child Pred }

// TruePred matches every row (a scan without a filter).
type TruePred struct{}

// --- constructors ---

// Cmp builds a comparison predicate.
func Cmp(col string, op CmpOp, val Value) *CmpPred { return &CmpPred{Col: col, Op: op, Val: val} }

// CmpCols builds a column-column comparison.
func CmpCols(a string, op CmpOp, b string) *CmpColsPred {
	return &CmpColsPred{ColA: a, Op: op, ColB: b}
}

// Between builds a between predicate.
func Between(col string, lo, hi Value) *BetweenPred { return &BetweenPred{Col: col, Lo: lo, Hi: hi} }

// In builds an in-list predicate.
func In(col string, vals ...Value) *InPred { return &InPred{Col: col, Vals: vals} }

// Like builds a LIKE predicate.
func Like(col, pattern string) *LikePred { return &LikePred{Col: col, Pattern: pattern} }

// NotLike builds a NOT LIKE predicate.
func NotLike(col, pattern string) *LikePred {
	return &LikePred{Col: col, Pattern: pattern, Negate: true}
}

// And conjoins predicates, flattening nested conjunctions and dropping
// TruePreds. And() with no arguments is TruePred.
func And(children ...Pred) Pred {
	var flat []Pred
	for _, c := range children {
		switch t := c.(type) {
		case *AndPred:
			flat = append(flat, t.Children...)
		case TruePred, *TruePred:
			// drop
		case nil:
			// drop
		default:
			flat = append(flat, c)
		}
	}
	switch len(flat) {
	case 0:
		return TruePred{}
	case 1:
		return flat[0]
	}
	return &AndPred{Children: flat}
}

// Or disjoins predicates.
func Or(children ...Pred) Pred {
	var flat []Pred
	for _, c := range children {
		if t, ok := c.(*OrPred); ok {
			flat = append(flat, t.Children...)
			continue
		}
		if c == nil {
			continue
		}
		flat = append(flat, c)
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return &OrPred{Children: flat}
}

// Not negates a predicate.
func Not(child Pred) Pred { return &NotPred{Child: child} }

// --- canonical keys ---

func (p *CmpPred) Key() string { return "(" + p.Op.String() + " " + p.Col + " " + p.Val.key() + ")" }

func (p *CmpColsPred) Key() string {
	return "(" + p.Op.String() + " " + p.ColA + " " + p.ColB + ")"
}

func (p *BetweenPred) Key() string {
	return "(between " + p.Col + " " + p.Lo.key() + " " + p.Hi.key() + ")"
}

func (p *InPred) Key() string {
	parts := make([]string, len(p.Vals))
	for i, v := range p.Vals {
		parts[i] = v.key()
	}
	// Sort the list so that semantically identical IN lists share a key.
	sort.Strings(parts)
	return "(in " + p.Col + " [" + strings.Join(parts, " ") + "])"
}

func (p *LikePred) Key() string {
	op := "like"
	if p.Negate {
		op = "not-like"
	}
	return "(" + op + " " + p.Col + " " + Str(p.Pattern).key() + ")"
}

// Key canonicalizes conjunct order so that semantically identical
// conjunctions share a cache key regardless of how the query spelled them —
// a lightweight version of the predicate normalization the paper leaves to
// future work ("SMT solvers can simplify and normalize the predicates ...
// increasing the hit rate", §4.1).
func (p *AndPred) Key() string {
	parts := make([]string, len(p.Children))
	for i, c := range p.Children {
		parts[i] = c.Key()
	}
	sort.Strings(parts)
	return "(and " + strings.Join(parts, " ") + ")"
}

// Key canonicalizes disjunct order, mirroring AndPred.Key.
func (p *OrPred) Key() string {
	parts := make([]string, len(p.Children))
	for i, c := range p.Children {
		parts[i] = c.Key()
	}
	sort.Strings(parts)
	return "(or " + strings.Join(parts, " ") + ")"
}

func (p *NotPred) Key() string { return "(not " + p.Child.Key() + ")" }

// Key of TruePred is the empty conjunction.
func (TruePred) Key() string { return "(true)" }

// --- column collection ---

func (p *CmpPred) Columns(dst []string) []string     { return append(dst, p.Col) }
func (p *CmpColsPred) Columns(dst []string) []string { return append(dst, p.ColA, p.ColB) }
func (p *BetweenPred) Columns(dst []string) []string { return append(dst, p.Col) }
func (p *InPred) Columns(dst []string) []string      { return append(dst, p.Col) }
func (p *LikePred) Columns(dst []string) []string    { return append(dst, p.Col) }
func (p *AndPred) Columns(dst []string) []string {
	for _, c := range p.Children {
		dst = c.Columns(dst)
	}
	return dst
}
func (p *OrPred) Columns(dst []string) []string {
	for _, c := range p.Children {
		dst = c.Columns(dst)
	}
	return dst
}
func (p *NotPred) Columns(dst []string) []string { return p.Child.Columns(dst) }
func (TruePred) Columns(dst []string) []string   { return dst }

// IsTrue reports whether p is the match-everything predicate.
func IsTrue(p Pred) bool {
	switch p.(type) {
	case TruePred, *TruePred:
		return true
	}
	return false
}
