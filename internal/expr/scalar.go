package expr

import (
	"fmt"

	"github.com/predcache/predcache/internal/storage"
)

// Scalar is an unbound scalar expression: column references, constants,
// arithmetic, and CASE WHEN. Scalars appear in projections and as
// aggregation inputs.
type Scalar interface {
	// Key returns the canonical text form (used for output naming and
	// materialized-view templates).
	Key() string
	// ScalarColumns appends referenced column names.
	ScalarColumns(dst []string) []string
}

// ColRef references a column by name.
type ColRef struct{ Name string }

// ConstScalar is a literal.
type ConstScalar struct{ Val Value }

// ArithOp enumerates arithmetic operators.
type ArithOp uint8

const (
	Add ArithOp = iota
	Sub
	Mul
	Div
)

func (op ArithOp) String() string {
	switch op {
	case Add:
		return "+"
	case Sub:
		return "-"
	case Mul:
		return "*"
	default:
		return "/"
	}
}

// ArithScalar is L op R evaluated in the float64 domain.
type ArithScalar struct {
	Op   ArithOp
	L, R Scalar
}

// CaseScalar is CASE WHEN Cond THEN Then ELSE Else END. Cond is a predicate
// over the same source.
type CaseScalar struct {
	Cond Pred
	Then Scalar
	Else Scalar
}

// Col returns a column reference.
func Col(name string) *ColRef { return &ColRef{name} }

// Const returns a constant scalar.
func Const(v Value) *ConstScalar { return &ConstScalar{v} }

// Arith returns an arithmetic scalar.
func Arith(l Scalar, op ArithOp, r Scalar) *ArithScalar { return &ArithScalar{op, l, r} }

// Case returns a CASE WHEN scalar.
func Case(cond Pred, then, els Scalar) *CaseScalar { return &CaseScalar{cond, then, els} }

func (s *ColRef) Key() string      { return s.Name }
func (s *ConstScalar) Key() string { return s.Val.key() }
func (s *ArithScalar) Key() string {
	return "(" + s.Op.String() + " " + s.L.Key() + " " + s.R.Key() + ")"
}
func (s *CaseScalar) Key() string {
	return "(case " + s.Cond.Key() + " " + s.Then.Key() + " " + s.Else.Key() + ")"
}

func (s *ColRef) ScalarColumns(dst []string) []string      { return append(dst, s.Name) }
func (s *ConstScalar) ScalarColumns(dst []string) []string { return dst }
func (s *ArithScalar) ScalarColumns(dst []string) []string {
	return s.R.ScalarColumns(s.L.ScalarColumns(dst))
}
func (s *CaseScalar) ScalarColumns(dst []string) []string {
	dst = s.Cond.Columns(dst)
	dst = s.Then.ScalarColumns(dst)
	return s.Else.ScalarColumns(dst)
}

// BoundScalar is a scalar bound to a source. Out reports the natural output
// type: an integer representation (Int64/Date/Bool/String codes) or float.
// EvalF always works (integers are widened); EvalI is only valid when Out is
// an integer representation.
type BoundScalar interface {
	Out() storage.ColumnType
	// EvalF evaluates the scalar for the rows in sel, writing one float per
	// selected row into out (len(out) == len(sel)).
	EvalF(ctx *BlockCtx, sel []int, out []float64)
	// EvalI evaluates integer-representation scalars.
	EvalI(ctx *BlockCtx, sel []int, out []int64)
}

// BindScalar resolves a scalar against a source.
func BindScalar(s Scalar, src Source) (BoundScalar, error) {
	switch t := s.(type) {
	case *ColRef:
		col, typ, err := colOf(src, t.Name)
		if err != nil {
			return nil, err
		}
		return &boundColRef{col, typ}, nil
	case *ConstScalar:
		if t.Val.Kind == KindString {
			return nil, fmt.Errorf("expr: string constants in scalar context unsupported")
		}
		return &boundConst{t.Val}, nil
	case *ArithScalar:
		l, err := BindScalar(t.L, src)
		if err != nil {
			return nil, err
		}
		r, err := BindScalar(t.R, src)
		if err != nil {
			return nil, err
		}
		return &boundArith{t.Op, l, r}, nil
	case *YearScalar:
		arg, err := BindScalar(t.Arg, src)
		if err != nil {
			return nil, err
		}
		if !arg.Out().IsInt() {
			return nil, fmt.Errorf("expr: year() needs a date argument")
		}
		return &boundYear{arg}, nil
	case *CaseScalar:
		cond, err := Bind(t.Cond, src)
		if err != nil {
			return nil, err
		}
		then, err := BindScalar(t.Then, src)
		if err != nil {
			return nil, err
		}
		els, err := BindScalar(t.Else, src)
		if err != nil {
			return nil, err
		}
		return &boundCase{cond, then, els}, nil
	}
	return nil, fmt.Errorf("expr: cannot bind scalar %T", s)
}

type boundColRef struct {
	col int
	typ storage.ColumnType
}

func (b *boundColRef) Out() storage.ColumnType { return b.typ }

func (b *boundColRef) EvalF(ctx *BlockCtx, sel []int, out []float64) {
	if b.typ == storage.Float64 {
		vec := ctx.floats[b.col]
		for i, r := range sel {
			out[i] = vec[r]
		}
		return
	}
	vec := ctx.ints[b.col]
	for i, r := range sel {
		out[i] = float64(vec[r])
	}
}

func (b *boundColRef) EvalI(ctx *BlockCtx, sel []int, out []int64) {
	vec := ctx.ints[b.col]
	for i, r := range sel {
		out[i] = vec[r]
	}
}

type boundConst struct{ v Value }

func (b *boundConst) Out() storage.ColumnType {
	if b.v.Kind == KindFloat {
		return storage.Float64
	}
	return storage.Int64
}

func (b *boundConst) EvalF(_ *BlockCtx, sel []int, out []float64) {
	f := b.v.AsFloat()
	for i := range sel {
		out[i] = f
	}
}

func (b *boundConst) EvalI(_ *BlockCtx, sel []int, out []int64) {
	for i := range sel {
		out[i] = b.v.I
	}
}

type boundArith struct {
	op   ArithOp
	l, r BoundScalar
}

func (b *boundArith) Out() storage.ColumnType { return storage.Float64 }

func (b *boundArith) EvalF(ctx *BlockCtx, sel []int, out []float64) {
	rbuf := make([]float64, len(sel))
	b.l.EvalF(ctx, sel, out)
	b.r.EvalF(ctx, sel, rbuf)
	switch b.op {
	case Add:
		for i := range out {
			out[i] += rbuf[i]
		}
	case Sub:
		for i := range out {
			out[i] -= rbuf[i]
		}
	case Mul:
		for i := range out {
			out[i] *= rbuf[i]
		}
	default:
		for i := range out {
			out[i] /= rbuf[i]
		}
	}
}

func (b *boundArith) EvalI(_ *BlockCtx, _ []int, _ []int64) {
	panic("expr: EvalI on float scalar")
}

type boundCase struct {
	cond Bound
	then BoundScalar
	els  BoundScalar
}

func (b *boundCase) Out() storage.ColumnType { return storage.Float64 }

func (b *boundCase) EvalF(ctx *BlockCtx, sel []int, out []float64) {
	// Evaluate else for all rows, then overwrite rows matching the condition
	// with the then-branch values.
	b.els.EvalF(ctx, sel, out)
	pos := make(map[int]int, len(sel))
	for i, r := range sel {
		pos[r] = i
	}
	scratch := make([]int, len(sel))
	copy(scratch, sel)
	matched := b.cond.Eval(ctx, scratch)
	if len(matched) == 0 {
		return
	}
	thenVals := make([]float64, len(matched))
	b.then.EvalF(ctx, matched, thenVals)
	for i, r := range matched {
		out[pos[r]] = thenVals[i]
	}
}

func (b *boundCase) EvalI(_ *BlockCtx, _ []int, _ []int64) {
	panic("expr: EvalI on float scalar")
}

// YearScalar extracts the calendar year from a date (day-number) scalar —
// SQL's extract(year from d).
type YearScalar struct{ Arg Scalar }

// Year builds a year-extraction scalar.
func Year(arg Scalar) *YearScalar { return &YearScalar{arg} }

func (s *YearScalar) Key() string { return "(year " + s.Arg.Key() + ")" }

func (s *YearScalar) ScalarColumns(dst []string) []string { return s.Arg.ScalarColumns(dst) }

type boundYear struct{ arg BoundScalar }

func (b *boundYear) Out() storage.ColumnType { return storage.Int64 }

func (b *boundYear) EvalI(ctx *BlockCtx, sel []int, out []int64) {
	b.arg.EvalI(ctx, sel, out)
	for i, d := range out {
		y, _, _ := storage.YMDFromDate(d)
		out[i] = int64(y)
	}
}

func (b *boundYear) EvalF(ctx *BlockCtx, sel []int, out []float64) {
	tmp := make([]int64, len(sel))
	b.EvalI(ctx, sel, tmp)
	for i, v := range tmp {
		out[i] = float64(v)
	}
}
