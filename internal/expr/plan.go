package expr

import (
	"math"

	"github.com/predcache/predcache/internal/storage"
)

// Kernel planning: split a bound predicate tree into leaves that can run as
// encoded-domain kernels (storage.ColumnStore.EvalPredRanges, operating on a
// block's compressed form) and a residual that still needs decode-then-Eval.
// Only top-level AND conjuncts that are plain integer-domain leaf predicates
// (comparison, BETWEEN, IN — including dictionary-code equality on strings)
// become kernels; float comparisons, column-vs-column, LIKE, OR/NOT trees and
// string ordering stay in the residual.

// KernelLeaf is one conjunct that can be evaluated on encoded blocks.
type KernelLeaf struct {
	Col  int
	Pred storage.IntPred
	// Fallback is the original bound leaf, evaluated over a selection vector
	// for blocks whose encoding has no kernel (EncRaw, open tail).
	Fallback Bound
}

// ScanPlan is the kernel/residual split of one bound predicate.
type ScanPlan struct {
	Kernels  []KernelLeaf
	Residual Bound // nil when every conjunct became a kernel
	// ResidualCols lists the column indexes the residual reads, so the scan
	// loop can load exactly those vectors before evaluating it.
	ResidualCols []int
}

// HasKernels reports whether any conjunct compiled to an encoded kernel.
func (p *ScanPlan) HasKernels() bool { return len(p.Kernels) > 0 }

// PlanKernels splits b into encoded-domain kernels plus a residual bound.
// The split preserves semantics: kernels ∧ residual ≡ b for every block.
func PlanKernels(b Bound) *ScanPlan {
	p := &ScanPlan{}
	var residual []Bound
	collectKernels(b, p, &residual)
	switch len(residual) {
	case 0:
	case 1:
		p.Residual = residual[0]
	default:
		p.Residual = &boundAnd{residual}
	}
	if p.Residual != nil {
		seen := make(map[int]bool)
		boundColumns(p.Residual, func(col int) {
			if !seen[col] {
				seen[col] = true
				p.ResidualCols = append(p.ResidualCols, col)
			}
		})
	}
	return p
}

// NoKernelPlan returns a plan that forces the decode-then-Eval path for the
// whole predicate (ablation and equivalence testing).
func NoKernelPlan(b Bound) *ScanPlan {
	p := &ScanPlan{Residual: b}
	seen := make(map[int]bool)
	boundColumns(b, func(col int) {
		if !seen[col] {
			seen[col] = true
			p.ResidualCols = append(p.ResidualCols, col)
		}
	})
	return p
}

func collectKernels(b Bound, p *ScanPlan, residual *[]Bound) {
	switch t := b.(type) {
	case boundTrue:
		// Matches everything: contributes nothing to either side.
	case *boundAnd:
		for _, c := range t.children {
			collectKernels(c, p, residual)
		}
	case *boundCmpInt:
		p.Kernels = append(p.Kernels, KernelLeaf{Col: t.col, Pred: intPredForCmp(t.op, t.v), Fallback: t})
	case *boundBetweenInt:
		p.Kernels = append(p.Kernels, KernelLeaf{
			Col:      t.col,
			Pred:     storage.IntPred{Kind: storage.IntPredRange, Lo: t.lo, Hi: t.hi},
			Fallback: t,
		})
	case *boundInInt:
		p.Kernels = append(p.Kernels, KernelLeaf{
			Col:      t.col,
			Pred:     storage.IntPred{Kind: storage.IntPredSet, Set: t.set, SetVals: t.vals},
			Fallback: t,
		})
	default:
		// boundFalse stays here too: the residual path is what turns it into
		// an empty selection.
		*residual = append(*residual, b)
	}
}

// intPredForCmp translates `col op v` into interval form. Lt/Gt at the int64
// extremes produce the canonical empty interval (Lo > Hi) rather than
// wrapping.
func intPredForCmp(op CmpOp, v int64) storage.IntPred {
	switch op {
	case Eq:
		return storage.IntPred{Kind: storage.IntPredRange, Lo: v, Hi: v}
	case Ne:
		return storage.IntPred{Kind: storage.IntPredRange, Lo: v, Hi: v, Not: true}
	case Lt:
		if v == math.MinInt64 {
			return storage.IntPred{Kind: storage.IntPredRange, Lo: 0, Hi: -1}
		}
		return storage.IntPred{Kind: storage.IntPredRange, Lo: math.MinInt64, Hi: v - 1}
	case Le:
		return storage.IntPred{Kind: storage.IntPredRange, Lo: math.MinInt64, Hi: v}
	case Gt:
		if v == math.MaxInt64 {
			return storage.IntPred{Kind: storage.IntPredRange, Lo: 0, Hi: -1}
		}
		return storage.IntPred{Kind: storage.IntPredRange, Lo: v + 1, Hi: math.MaxInt64}
	default: // Ge
		return storage.IntPred{Kind: storage.IntPredRange, Lo: v, Hi: math.MaxInt64}
	}
}

// boundColumns visits every column index a bound tree reads.
func boundColumns(b Bound, visit func(col int)) {
	switch t := b.(type) {
	case boundTrue, boundFalse:
	case *boundCmpInt:
		visit(t.col)
	case *boundCmpFloat:
		visit(t.col)
	case *boundCmpIntAsFloat:
		visit(t.col)
	case *boundCmpColsInt:
		visit(t.colA)
		visit(t.colB)
	case *boundCmpColsFloat:
		visit(t.colA)
		visit(t.colB)
	case *boundBetweenInt:
		visit(t.col)
	case *boundBetweenFloat:
		visit(t.col)
	case *boundInInt:
		visit(t.col)
	case *boundInFloat:
		visit(t.col)
	case *boundStrOrd:
		visit(t.col)
	case *boundLike:
		visit(t.col)
	case *boundAnd:
		for _, c := range t.children {
			boundColumns(c, visit)
		}
	case *boundOr:
		for _, c := range t.children {
			boundColumns(c, visit)
		}
	case *boundNot:
		boundColumns(t.child, visit)
	}
}
