// Package expr provides the predicate and scalar expression trees used by
// the query engine's scans, joins, and aggregations.
//
// Predicates are the unit the predicate cache keys on: every predicate has a
// deterministic canonical text form (Key) — the equivalent of the paper's
// "string representation using the optimizer's representation" (§4.1) —
// and a vectorized evaluator over decompressed column blocks. Predicates
// also implement zone-map pruning, step (1) of the two-step scan process.
package expr

import (
	"fmt"
	"strconv"

	"github.com/predcache/predcache/internal/storage"
)

// Kind discriminates literal value kinds.
type Kind uint8

const (
	// KindInt is an integer, date (day number), or boolean literal.
	KindInt Kind = iota
	// KindFloat is a floating-point literal.
	KindFloat
	// KindString is a string literal.
	KindString
)

// Value is a literal constant inside an expression.
//
// Slot is the 1-based bind-slot tag assigned by the SQL normalizer when the
// literal came from a bindable position in the query text (0 = not a bind
// slot). The plan cache uses it to substitute the literals of a later,
// same-template query into a cached plan. Slot deliberately does not
// participate in key(): two plans differing only in slot tags are the same
// predicate as far as the predicate cache is concerned.
type Value struct {
	Kind Kind
	I    int64
	F    float64
	S    string
	Slot int
}

// Int returns an integer literal.
func Int(v int64) Value { return Value{Kind: KindInt, I: v} }

// Float returns a float literal.
func Float(v float64) Value { return Value{Kind: KindFloat, F: v} }

// Str returns a string literal.
func Str(v string) Value { return Value{Kind: KindString, S: v} }

// DateLit parses a YYYY-MM-DD date literal; it panics on malformed input
// (date literals in this codebase are compile-time constants).
func DateLit(s string) Value {
	d, err := storage.ParseDate(s)
	if err != nil {
		panic(err)
	}
	return Value{Kind: KindInt, I: d}
}

// AsFloat converts the literal to float64 (strings are not convertible and
// return NaN-free zero; callers type-check at bind time).
func (v Value) AsFloat() float64 {
	switch v.Kind {
	case KindFloat:
		return v.F
	default:
		return float64(v.I)
	}
}

// key renders the literal deterministically for cache keys.
func (v Value) key() string {
	switch v.Kind {
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.S)
	default:
		return strconv.FormatInt(v.I, 10)
	}
}

func (v Value) String() string { return v.key() }

// CmpOp enumerates comparison operators.
type CmpOp uint8

const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

func (op CmpOp) String() string {
	switch op {
	case Eq:
		return "="
	case Ne:
		return "<>"
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	}
	return fmt.Sprintf("CmpOp(%d)", uint8(op))
}

func cmpInt(op CmpOp, a, b int64) bool {
	switch op {
	case Eq:
		return a == b
	case Ne:
		return a != b
	case Lt:
		return a < b
	case Le:
		return a <= b
	case Gt:
		return a > b
	default:
		return a >= b
	}
}

func cmpFloat(op CmpOp, a, b float64) bool {
	switch op {
	case Eq:
		return a == b
	case Ne:
		return a != b
	case Lt:
		return a < b
	case Le:
		return a <= b
	case Gt:
		return a > b
	default:
		return a >= b
	}
}

func cmpStr(op CmpOp, a, b string) bool {
	switch op {
	case Eq:
		return a == b
	case Ne:
		return a != b
	case Lt:
		return a < b
	case Le:
		return a <= b
	case Gt:
		return a > b
	default:
		return a >= b
	}
}
