package expr

import (
	"math"
	"math/rand"
	"testing"

	"github.com/predcache/predcache/internal/storage"
)

// TestIntPredForCmpProperty proves the interval translation matches the
// scalar comparison for every op, including the int64 extremes.
func TestIntPredForCmpProperty(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	ops := []CmpOp{Eq, Ne, Lt, Le, Gt, Ge}
	vals := []int64{math.MinInt64, math.MinInt64 + 1, -1, 0, 1, math.MaxInt64 - 1, math.MaxInt64}
	for i := 0; i < 300; i++ {
		vals = append(vals, int64(r.Uint64()))
	}
	for _, op := range ops {
		for _, c := range vals {
			p := intPredForCmp(op, c)
			for _, v := range vals {
				if got, want := p.Match(v), cmpInt(op, v, c); got != want {
					t.Fatalf("intPredForCmp(%v, %d).Match(%d) = %v, want %v", op, c, v, got, want)
				}
			}
		}
	}
}

// TestPlanKernelsSplit checks the kernel/residual partition for a mixed
// conjunction: int leaves become kernels, everything else lands in the
// residual with its columns collected.
func TestPlanKernelsSplit(t *testing.T) {
	tbl, _ := testTable(t, 100, 1)
	pred := And(
		Cmp("qty", Ge, Int(10)),              // kernel (col 0)
		Between("day", Int(9100), Int(9200)), // kernel (col 3)
		In("qty", Int(11), Int(12)),          // kernel (col 0)
		Cmp("mode", Eq, Str("AIR")),          // kernel: dict-code equality (col 2)
		Cmp("price", Gt, Float(5)),           // residual: float (col 1)
		Like("mode", "%AI%"),                 // residual: LIKE (col 2)
	)
	b, err := Bind(pred, tbl)
	if err != nil {
		t.Fatal(err)
	}
	p := PlanKernels(b)
	if len(p.Kernels) != 4 {
		t.Fatalf("kernels = %d, want 4", len(p.Kernels))
	}
	kernelCols := map[int]int{}
	for _, k := range p.Kernels {
		kernelCols[k.Col]++
		if k.Fallback == nil {
			t.Fatalf("kernel on col %d has no fallback bound", k.Col)
		}
	}
	if kernelCols[0] != 2 || kernelCols[2] != 1 || kernelCols[3] != 1 {
		t.Fatalf("kernel column histogram = %v, want map[0:2 2:1 3:1]", kernelCols)
	}
	if p.Residual == nil {
		t.Fatal("expected a residual")
	}
	wantCols := map[int]bool{1: true, 2: true}
	if len(p.ResidualCols) != len(wantCols) {
		t.Fatalf("residual cols = %v, want cols 1 and 2", p.ResidualCols)
	}
	for _, c := range p.ResidualCols {
		if !wantCols[c] {
			t.Fatalf("unexpected residual col %d (have %v)", c, p.ResidualCols)
		}
	}
}

// TestPlanKernelsShapes pins split decisions for the remaining shapes: OR
// trees, NOT, column-vs-column, fractional literals, nested BETWEEN binds,
// and the all-kernel / no-kernel extremes.
func TestPlanKernelsShapes(t *testing.T) {
	tbl, _ := testTable(t, 100, 2)
	bind := func(p Pred) Bound {
		t.Helper()
		b, err := Bind(p, tbl)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	// Pure int conjunction: no residual at all.
	p := PlanKernels(bind(And(Cmp("qty", Lt, Int(30)), Cmp("day", Ne, Int(9005)))))
	if len(p.Kernels) != 2 || p.Residual != nil {
		t.Fatalf("pure-int plan: kernels=%d residual=%v", len(p.Kernels), p.Residual)
	}

	// Float BETWEEN bind produces a nested boundAnd of two float leaves —
	// both must reach the residual, not be dropped.
	p = PlanKernels(bind(Between("price", Float(1.5), Float(2.5))))
	if len(p.Kernels) != 0 || p.Residual == nil {
		t.Fatalf("float between: kernels=%d residual=%v", len(p.Kernels), p.Residual)
	}

	// Fractional literal on an int column compares in the float domain.
	p = PlanKernels(bind(Cmp("qty", Gt, Float(10.5))))
	if len(p.Kernels) != 0 || p.Residual == nil {
		t.Fatal("fractional-literal cmp must stay residual")
	}

	// OR trees and NOT stay residual wholesale.
	p = PlanKernels(bind(Or(Cmp("qty", Eq, Int(1)), Cmp("qty", Eq, Int(2)))))
	if len(p.Kernels) != 0 || p.Residual == nil {
		t.Fatal("OR tree must stay residual")
	}
	p = PlanKernels(bind(Not(Cmp("qty", Eq, Int(1)))))
	if len(p.Kernels) != 0 || p.Residual == nil {
		t.Fatal("NOT must stay residual")
	}

	// Column-vs-column stays residual and reports both columns.
	p = PlanKernels(bind(CmpCols("qty", Lt, "day")))
	if len(p.Kernels) != 0 || len(p.ResidualCols) != 2 {
		t.Fatalf("col-col: kernels=%d residualCols=%v", len(p.Kernels), p.ResidualCols)
	}

	// Equality against a string absent from the dictionary binds to
	// boundFalse, which must survive in the residual (it is what empties the
	// selection).
	p = PlanKernels(bind(Cmp("mode", Eq, Str("NOSUCH"))))
	if len(p.Kernels) != 0 || p.Residual == nil {
		t.Fatal("boundFalse must stay residual")
	}

	// TruePred contributes nothing anywhere.
	p = PlanKernels(bind(TruePred{}))
	if len(p.Kernels) != 0 || p.Residual != nil {
		t.Fatalf("true pred: kernels=%d residual=%v", len(p.Kernels), p.Residual)
	}

	// NoKernelPlan forces everything residual.
	p = NoKernelPlan(bind(Cmp("qty", Ge, Int(10))))
	if len(p.Kernels) != 0 || p.Residual == nil || len(p.ResidualCols) != 1 {
		t.Fatalf("NoKernelPlan: kernels=%d residual=%v cols=%v", len(p.Kernels), p.Residual, p.ResidualCols)
	}
}

// TestKernelLeafMatchesFallback proves each planned kernel's IntPred is
// pointwise equivalent to its fallback bound over random vectors — the
// contract the engine relies on when mixing kernel and fallback blocks.
func TestKernelLeafMatchesFallback(t *testing.T) {
	tbl, _ := testTable(t, 100, 3)
	preds := []Pred{
		Cmp("qty", Ge, Int(25)),
		Cmp("qty", Ne, Int(7)),
		Between("day", Int(9050), Int(9300)),
		In("qty", Int(3), Int(14), Int(41)),
		Cmp("mode", Eq, Str("SHIP")),
		Cmp("mode", Ne, Str("RAIL")),
	}
	r := rand.New(rand.NewSource(5))
	vec := make([]int64, 256)
	for i := range vec {
		vec[i] = int64(r.Intn(60))
	}
	if d := tbl.Dict(2); d != nil {
		for i := 0; i < 40; i++ {
			vec[r.Intn(len(vec))] = int64(r.Intn(d.Len()))
		}
	}
	sel := make([]int, len(vec))
	for _, pr := range preds {
		b, err := Bind(pr, tbl)
		if err != nil {
			t.Fatal(err)
		}
		plan := PlanKernels(b)
		if len(plan.Kernels) != 1 || plan.Residual != nil {
			t.Fatalf("%v: expected exactly one kernel, got %d (residual %v)", pr, len(plan.Kernels), plan.Residual)
		}
		k := plan.Kernels[0]
		ctx := NewBlockCtx(len(tbl.Schema()), dictsOf(tbl))
		ctx.N = len(vec)
		ctx.SetInt(k.Col, vec)
		for i := range sel {
			sel[i] = i
		}
		out := k.Fallback.Eval(ctx, sel[:len(vec)])
		want := make(map[int]bool, len(out))
		for _, rix := range out {
			want[rix] = true
		}
		for i, v := range vec {
			if got := k.Pred.Match(v); got != want[i] {
				t.Fatalf("%v: row %d (v=%d): kernel=%v fallback=%v", pr, i, v, got, want[i])
			}
		}
	}
}

// TestBlockCtxReset checks recycling clears stale vectors and resizes.
func TestBlockCtxReset(t *testing.T) {
	d := storage.NewDict()
	ctx := NewBlockCtx(2, []*storage.Dict{nil, d})
	ctx.SetInt(0, []int64{1, 2, 3})
	ctx.SetFloat(1, []float64{1.5})
	ctx.N = 3
	ctx.Reset(2, []*storage.Dict{nil, d})
	if ctx.N != 0 || ctx.Ints(0) != nil || ctx.Floats(1) != nil {
		t.Fatal("Reset did not clear vectors")
	}
	if ctx.Dict(1) != d {
		t.Fatal("Reset lost dicts")
	}
	ctx.Reset(5, make([]*storage.Dict, 5))
	if len(ctx.ints) != 5 || len(ctx.floats) != 5 {
		t.Fatal("Reset did not grow to new column count")
	}
}
