package core

import (
	"fmt"
	"testing"

	"github.com/predcache/predcache/internal/storage"
)

// assertMemMatchesEntries is the satellite invariant: the cache-wide mem
// counter behind Stats().MemBytes must equal the sum of per-entry MemBytes
// reported by Entries() at every observation point. (The pcdebug build
// additionally asserts this inside every mutating cache operation via
// assertMemLocked.)
func assertMemMatchesEntries(t *testing.T, c *Cache, ctx string) {
	t.Helper()
	sum := 0
	for _, e := range c.Entries() {
		sum += e.MemBytes
	}
	if got := c.Stats().MemBytes; got != sum {
		t.Fatalf("%s: Stats().MemBytes = %d, sum over Entries() = %d", ctx, got, sum)
	}
}

func TestCacheMemInvariantAcrossLifecycle(t *testing.T) {
	t1 := newTestTable(t, "t1", 2, 50000)
	t2 := newTestTable(t, "t2", 1, 50000)
	c := NewCache(Config{Kind: RangeIndex, MaxRanges: 256, MemBudget: 1 << 20})
	assertMemMatchesEntries(t, c, "empty")

	for i := 0; i < 8; i++ {
		rs := make([]storage.RowRange, 0, i+1)
		for j := 0; j <= i; j++ {
			rs = append(rs, storage.RowRange{Start: j * 100, End: j*100 + 10})
		}
		c.Insert(simpleKey("t1", fmt.Sprintf("p%d", i)), t1, t1.LayoutEpoch(), nil,
			[][]storage.RowRange{rs, {{Start: 0, End: 5}}}, []int{25000, 25000})
		c.Insert(simpleKey("t2", fmt.Sprintf("p%d", i)), t2, t2.LayoutEpoch(), nil,
			[][]storage.RowRange{rs}, []int{50000})
		assertMemMatchesEntries(t, c, fmt.Sprintf("insert %d", i))
	}

	// Extend grows one entry's ranges and must keep the counter in step.
	c.Extend(simpleKey("t1", "p3").String(), 0, []storage.RowRange{{Start: 25100, End: 25150}}, 30000)
	if c.Stats().Extends != 1 {
		t.Fatal("extend not applied")
	}
	assertMemMatchesEntries(t, c, "extend")

	// Re-insert replaces an entry with a differently sized payload.
	c.Insert(simpleKey("t2", "p0"), t2, t2.LayoutEpoch(), nil,
		[][]storage.RowRange{{{Start: 0, End: 1}}}, []int{50000})
	assertMemMatchesEntries(t, c, "reinsert")

	// Invalidation drops a whole table's entries.
	c.InvalidateTable("t1")
	assertMemMatchesEntries(t, c, "invalidate")
	if c.Stats().Entries != 8 {
		t.Fatalf("entries after invalidate = %d", c.Stats().Entries)
	}

	c.Clear()
	assertMemMatchesEntries(t, c, "clear")
	if c.Stats().MemBytes != 0 {
		t.Fatalf("mem after clear = %d", c.Stats().MemBytes)
	}
}

func TestCacheMemInvariantUnderEviction(t *testing.T) {
	tbl := newTestTable(t, "t", 1, 100000)
	c := NewCache(Config{Kind: RangeIndex, MaxRanges: 1024, MemBudget: 8000})
	for i := 0; i < 40; i++ {
		rs := make([]storage.RowRange, 0, 60)
		for j := 0; j < 60; j++ {
			rs = append(rs, storage.RowRange{Start: j * 20, End: j*20 + 5})
		}
		c.Insert(simpleKey("t", fmt.Sprintf("p%d", i)), tbl, tbl.LayoutEpoch(), nil,
			[][]storage.RowRange{rs}, []int{100000})
		assertMemMatchesEntries(t, c, fmt.Sprintf("insert %d under budget pressure", i))
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("budget never forced an eviction")
	}
}

func TestEntrySummaryIntrospectionFields(t *testing.T) {
	tbl := newTestTable(t, "t", 2, 10000)
	c := NewCache(Config{Kind: RangeIndex, MaxRanges: 16})
	key := simpleKey("t", "p")
	c.Insert(key, tbl, tbl.LayoutEpoch(), nil,
		[][]storage.RowRange{{{Start: 0, End: 10}, {Start: 50, End: 60}}, {{Start: 5, End: 9}}},
		[]int{5000, 5000})

	es := c.Entries()
	if len(es) != 1 {
		t.Fatalf("entries = %d", len(es))
	}
	e := es[0]
	if e.Hits != 0 || !e.LastHit.IsZero() {
		t.Fatalf("fresh entry already hit: %+v", e)
	}
	if e.CreatedAt.IsZero() {
		t.Fatal("CreatedAt not stamped")
	}
	if e.Slices != 2 || e.Ranges != 3 || e.Epoch != tbl.LayoutEpoch() {
		t.Fatalf("shape fields wrong: %+v", e)
	}

	for i := 0; i < 3; i++ {
		if _, ok := c.Lookup(key.String()); !ok {
			t.Fatal("miss")
		}
	}
	e = c.Entries()[0]
	if e.Hits != 3 {
		t.Fatalf("hits = %d, want 3", e.Hits)
	}
	if e.LastHit.Before(e.CreatedAt) {
		t.Fatalf("LastHit %v before CreatedAt %v", e.LastHit, e.CreatedAt)
	}
}
