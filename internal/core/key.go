// Package core implements the predicate cache, the paper's primary
// contribution (§4): a query-driven secondary index mapping base-table scan
// expressions — optionally including semi-join filters — to the row ranges
// that qualified when the scan last ran.
//
// Entries are built on the fly as a side product of scanning (§4.2.3), are
// kept per data slice (§4.1), survive inserts via per-slice append
// watermarks (§4.3.1), survive deletes and updates because row numbers do
// not change (§4.3.2/§4.3.3), and are invalidated lazily when a table's
// physical layout epoch changes (vacuum) or when a semi-join build side
// changes (§4.4).
package core

import (
	"sort"
	"strings"

	"github.com/predcache/predcache/internal/storage"
)

// SemiJoinKey describes one semi-join filter applied during a scan. The
// cache key must identify the join predicate and the entire build side —
// its table and filter — so that an entry only matches a future scan with
// an identical semi-join filter (§4.4).
type SemiJoinKey struct {
	// JoinPred is the canonical join condition, e.g. "(= o_orderkey l_orderkey)".
	JoinPred string
	// BuildKey is the canonical scan key of the build side (recursively
	// including its own filters and semi-joins).
	BuildKey string
}

// Key identifies a cached scan expression.
type Key struct {
	Table     string
	Predicate string // canonical predicate text (expr.Pred.Key())
	SemiJoins []SemiJoinKey
}

// String renders the key in a canonical, order-independent form, mirroring
// the XML-ish key sketched in §4.4 of the paper.
func (k Key) String() string {
	var b strings.Builder
	b.WriteString("<scan table=")
	b.WriteString(k.Table)
	b.WriteString(" pred=")
	b.WriteString(k.Predicate)
	if len(k.SemiJoins) > 0 {
		parts := make([]string, len(k.SemiJoins))
		for i, sj := range k.SemiJoins {
			parts[i] = "<semijoin pred=" + sj.JoinPred + " build=" + sj.BuildKey + ">"
		}
		sort.Strings(parts)
		b.WriteString(" sj=[")
		b.WriteString(strings.Join(parts, " "))
		b.WriteString("]")
	}
	b.WriteString(">")
	return b.String()
}

// HasSemiJoin reports whether the key includes semi-join filters.
func (k Key) HasSemiJoin() bool { return len(k.SemiJoins) > 0 }

// BuildDep records a dependency of a cached entry on the state of a build-
// side table: if that table's DML version moves, the entry is stale (§4.4's
// "entries with a semi-join filter are invalidated by inserts, deletes, and
// updates on the build side of the join").
type BuildDep struct {
	Table   *storage.Table
	Version uint64
}

// Stale reports whether the dependency has been invalidated.
func (d BuildDep) Stale() bool { return d.Table.Version() != d.Version }
