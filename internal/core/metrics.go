package core

import "github.com/predcache/predcache/internal/obs"

// RegisterMetrics exposes the cache's activity counters and footprint on the
// registry. Everything is pull-style: values are read from Stats() at scrape
// time, so the cache's hot paths pay nothing for metrics export.
func (c *Cache) RegisterMetrics(m *obs.Metrics) {
	counter := func(name, help string, read func(Stats) int64) {
		m.NewCounterFunc(name, help, func() int64 { return read(c.Stats()) })
	}
	counter("predcache_cache_hits_total", "Lookups served from a cache entry.",
		func(s Stats) int64 { return s.Hits })
	counter("predcache_cache_misses_total", "Lookups that found no usable entry.",
		func(s Stats) int64 { return s.Misses })
	counter("predcache_cache_inserts_total", "Entries created.",
		func(s Stats) int64 { return s.Inserts })
	counter("predcache_cache_extends_total", "Entry extensions past a watermark.",
		func(s Stats) int64 { return s.Extends })
	counter("predcache_cache_evictions_total", "Entries evicted by the memory budget.",
		func(s Stats) int64 { return s.Evictions })
	counter("predcache_cache_invalidations_total", "Entries dropped as stale (vacuum, dependency changes).",
		func(s Stats) int64 { return s.Invalidations })
	counter("predcache_cache_admission_deferred_total", "Inserts skipped by the AdmitAfter policy.",
		func(s Stats) int64 { return s.AdmissionDeferred })
	counter("predcache_cache_admission_rejected_total", "Inserts skipped by the MaxSelectivity bound.",
		func(s Stats) int64 { return s.AdmissionRejected })
	m.NewGauge("predcache_cache_entries", "Live cache entries.",
		func() float64 { return float64(c.Stats().Entries) })
	m.NewGauge("predcache_cache_mem_bytes", "Memory held by cache entries.",
		func() float64 { return float64(c.Stats().MemBytes) })
}
