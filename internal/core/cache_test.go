package core

import (
	"fmt"
	"testing"

	"github.com/predcache/predcache/internal/storage"
)

func newTestTable(t *testing.T, name string, slices, rows int) *storage.Table {
	t.Helper()
	schema := storage.Schema{{Name: "v", Type: storage.Int64}}
	tbl, err := storage.NewTable(name, schema, slices)
	if err != nil {
		t.Fatal(err)
	}
	b := storage.NewBatch(schema)
	for i := 0; i < rows; i++ {
		b.Cols[0].Ints = append(b.Cols[0].Ints, int64(i))
	}
	b.N = rows
	if err := tbl.Append(b, 1); err != nil {
		t.Fatal(err)
	}
	return tbl
}

func simpleKey(table, pred string) Key {
	return Key{Table: table, Predicate: pred}
}

func TestKeyString(t *testing.T) {
	k := simpleKey("lineitem", "(= l_discount 0.1)")
	if k.String() != "<scan table=lineitem pred=(= l_discount 0.1)>" {
		t.Fatalf("key %q", k.String())
	}
	if k.HasSemiJoin() {
		t.Fatal("plain key claims semi-join")
	}
	kj := Key{
		Table:     "lineitem",
		Predicate: "(true)",
		SemiJoins: []SemiJoinKey{
			{JoinPred: "(= o_orderkey l_orderkey)", BuildKey: "<scan table=orders pred=(between o_orderdate 9131 9161)>"},
		},
	}
	if !kj.HasSemiJoin() {
		t.Fatal("semi-join key not detected")
	}
	// Semi-join order must not matter.
	a := Key{Table: "t", Predicate: "p", SemiJoins: []SemiJoinKey{{JoinPred: "j1", BuildKey: "b1"}, {JoinPred: "j2", BuildKey: "b2"}}}
	b := Key{Table: "t", Predicate: "p", SemiJoins: []SemiJoinKey{{JoinPred: "j2", BuildKey: "b2"}, {JoinPred: "j1", BuildKey: "b1"}}}
	if a.String() != b.String() {
		t.Fatal("semi-join key order-dependent")
	}
}

func TestCacheInsertLookupRange(t *testing.T) {
	tbl := newTestTable(t, "t", 2, 5000)
	c := NewCache(Config{Kind: RangeIndex, MaxRanges: 8})
	key := simpleKey("t", "(= v 1)")
	perSlice := [][]storage.RowRange{
		{{Start: 10, End: 20}, {Start: 100, End: 110}},
		{{Start: 0, End: 5}},
	}
	c.Insert(key, tbl, tbl.LayoutEpoch(), nil, perSlice, []int{3000, 2000})

	cand, ok := c.Lookup(key.String())
	if !ok {
		t.Fatal("miss after insert")
	}
	if cand.Kind != RangeIndex {
		t.Fatal("wrong kind")
	}
	if len(cand.PerSlice) != 2 || cand.Watermarks[0] != 3000 || cand.Watermarks[1] != 2000 {
		t.Fatalf("candidates %+v", cand)
	}
	if cand.PerSlice[0][0] != (storage.RowRange{Start: 10, End: 20}) {
		t.Fatalf("ranges %+v", cand.PerSlice[0])
	}
	if cand.EstRows != 25 {
		t.Fatalf("est rows %d", cand.EstRows)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Inserts != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestCacheInsertLookupBitmap(t *testing.T) {
	tbl := newTestTable(t, "t", 1, 5000)
	c := NewCache(Config{Kind: BitmapIndex, RowsPerBlock: 1000})
	key := simpleKey("t", "(= v 1)")
	// Qualifying rows in blocks 0 and 3.
	perSlice := [][]storage.RowRange{{{Start: 10, End: 20}, {Start: 3500, End: 3600}}}
	c.Insert(key, tbl, tbl.LayoutEpoch(), nil, perSlice, []int{5000})
	cand, ok := c.Lookup(key.String())
	if !ok {
		t.Fatal("miss")
	}
	want := []storage.RowRange{{Start: 0, End: 1000}, {Start: 3000, End: 4000}}
	got := cand.PerSlice[0]
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("bitmap candidates %v", got)
	}
}

func TestCacheMissAndDisabled(t *testing.T) {
	c := NewCache(DefaultConfig())
	if _, ok := c.Lookup("nope"); ok {
		t.Fatal("phantom hit")
	}
	if c.Stats().Misses != 1 {
		t.Fatal("miss not counted")
	}
	tbl := newTestTable(t, "t", 1, 100)
	key := simpleKey("t", "p")
	c.SetEnabled(false)
	if c.Enabled() {
		t.Fatal("enabled after disable")
	}
	c.Insert(key, tbl, tbl.LayoutEpoch(), nil, [][]storage.RowRange{{{Start: 0, End: 10}}}, []int{100})
	c.SetEnabled(true)
	if _, ok := c.Lookup(key.String()); ok {
		t.Fatal("disabled insert stored an entry")
	}
}

func TestCacheLayoutEpochInvalidation(t *testing.T) {
	tbl := newTestTable(t, "t", 1, 2000)
	c := NewCache(DefaultConfig())
	key := simpleKey("t", "p")
	c.Insert(key, tbl, tbl.LayoutEpoch(), nil, [][]storage.RowRange{{{Start: 0, End: 100}}}, []int{2000})
	if _, ok := c.Lookup(key.String()); !ok {
		t.Fatal("miss before vacuum")
	}
	tbl.Vacuum(100) // bumps layout epoch
	if _, ok := c.Lookup(key.String()); ok {
		t.Fatal("stale entry served after vacuum")
	}
	st := c.Stats()
	if st.Invalidations != 1 {
		t.Fatalf("invalidations %d", st.Invalidations)
	}
	if st.Entries != 0 {
		t.Fatal("stale entry not dropped")
	}
}

func TestCacheBuildDepInvalidation(t *testing.T) {
	fact := newTestTable(t, "fact", 1, 1000)
	dim := newTestTable(t, "dim", 1, 100)
	c := NewCache(DefaultConfig())
	key := Key{Table: "fact", Predicate: "(true)", SemiJoins: []SemiJoinKey{{JoinPred: "(= k k)", BuildKey: "<scan table=dim pred=(true)>"}}}
	deps := []BuildDep{{Table: dim, Version: dim.Version()}}
	c.Insert(key, fact, fact.LayoutEpoch(), deps, [][]storage.RowRange{{{Start: 0, End: 10}}}, []int{1000})
	if _, ok := c.Lookup(key.String()); !ok {
		t.Fatal("miss before dim change")
	}
	// DML on the build side invalidates the join entry.
	dim.DeleteRows(0, []int{1}, 5)
	if _, ok := c.Lookup(key.String()); ok {
		t.Fatal("join entry survived build-side DML")
	}
	// DML on the probe side does NOT invalidate (inserts handled by
	// watermark, deletes by visibility).
	key2 := simpleKey("fact", "p2")
	c.Insert(key2, fact, fact.LayoutEpoch(), nil, [][]storage.RowRange{{{Start: 0, End: 10}}}, []int{1000})
	fact.DeleteRows(0, []int{1}, 6)
	if _, ok := c.Lookup(key2.String()); !ok {
		t.Fatal("plain entry dropped by probe-side delete")
	}
}

func TestCacheBestPicksMostSelective(t *testing.T) {
	tbl := newTestTable(t, "t", 1, 10000)
	c := NewCache(Config{Kind: RangeIndex, MaxRanges: 64})
	plain := simpleKey("t", "p")
	join := Key{Table: "t", Predicate: "p", SemiJoins: []SemiJoinKey{{JoinPred: "j", BuildKey: "b"}}}
	c.Insert(plain, tbl, tbl.LayoutEpoch(), nil, [][]storage.RowRange{{{Start: 0, End: 5000}}}, []int{10000})
	c.Insert(join, tbl, tbl.LayoutEpoch(), nil, [][]storage.RowRange{{{Start: 0, End: 50}}}, []int{10000})
	cand, ok := c.Best([]string{plain.String(), join.String()})
	if !ok {
		t.Fatal("best missed")
	}
	if cand.Key != join.String() {
		t.Fatalf("best picked %s", cand.Key)
	}
	if cand.EstRows != 50 {
		t.Fatalf("est %d", cand.EstRows)
	}
	// Best with no matches counts one miss.
	before := c.Stats().Misses
	if _, ok := c.Best([]string{"a", "b"}); ok {
		t.Fatal("phantom best")
	}
	if c.Stats().Misses != before+1 {
		t.Fatal("miss not counted once")
	}
}

func TestCacheExtendRange(t *testing.T) {
	tbl := newTestTable(t, "t", 1, 2000)
	c := NewCache(Config{Kind: RangeIndex, MaxRanges: 16})
	key := simpleKey("t", "p")
	c.Insert(key, tbl, tbl.LayoutEpoch(), nil, [][]storage.RowRange{{{Start: 0, End: 10}}}, []int{2000})
	// 1000 new rows appended; rows 2100-2110 qualify.
	c.Extend(key.String(), 0, []storage.RowRange{{Start: 2100, End: 2110}}, 3000)
	cand, ok := c.Lookup(key.String())
	if !ok {
		t.Fatal("miss after extend")
	}
	if cand.Watermarks[0] != 3000 {
		t.Fatalf("watermark %d", cand.Watermarks[0])
	}
	rs := cand.PerSlice[0]
	if len(rs) != 2 || rs[1] != (storage.RowRange{Start: 2100, End: 2110}) {
		t.Fatalf("ranges %v", rs)
	}
	if c.Stats().Extends != 1 {
		t.Fatal("extend not counted")
	}
	// Extend with a lower watermark is a no-op.
	c.Extend(key.String(), 0, []storage.RowRange{{Start: 0, End: 1}}, 2500)
	cand, _ = c.Lookup(key.String())
	if cand.Watermarks[0] != 3000 {
		t.Fatal("watermark regressed")
	}
	// Extend of unknown key / out-of-range slice is a no-op.
	c.Extend("nope", 0, nil, 10)
	c.Extend(key.String(), 9, nil, 10)
}

func TestCacheExtendBitmap(t *testing.T) {
	tbl := newTestTable(t, "t", 1, 2000)
	c := NewCache(Config{Kind: BitmapIndex, RowsPerBlock: 1000})
	key := simpleKey("t", "p")
	c.Insert(key, tbl, tbl.LayoutEpoch(), nil, [][]storage.RowRange{{{Start: 500, End: 510}}}, []int{2000})
	c.Extend(key.String(), 0, []storage.RowRange{{Start: 4200, End: 4300}}, 5000)
	cand, ok := c.Lookup(key.String())
	if !ok {
		t.Fatal("miss")
	}
	rs := cand.PerSlice[0]
	want := []storage.RowRange{{Start: 0, End: 1000}, {Start: 4000, End: 5000}}
	if len(rs) != 2 || rs[0] != want[0] || rs[1] != want[1] {
		t.Fatalf("ranges %v", rs)
	}
}

func TestCacheExtendStaleEntry(t *testing.T) {
	tbl := newTestTable(t, "t", 1, 1000)
	dim := newTestTable(t, "d", 1, 10)
	c := NewCache(DefaultConfig())
	key := Key{Table: "t", Predicate: "p", SemiJoins: []SemiJoinKey{{JoinPred: "j", BuildKey: "b"}}}
	c.Insert(key, tbl, tbl.LayoutEpoch(), nil, [][]storage.RowRange{{{Start: 0, End: 10}}}, []int{1000})
	// Make it stale via a second entry with deps, then vacuum the base.
	c.Insert(key, tbl, tbl.LayoutEpoch(), []BuildDep{{Table: dim, Version: dim.Version()}}, [][]storage.RowRange{{{Start: 0, End: 10}}}, []int{1000})
	dim.BumpVersion()
	c.Extend(key.String(), 0, []storage.RowRange{{Start: 20, End: 30}}, 1200)
	if c.Stats().Entries != 0 {
		t.Fatal("stale entry survived extend")
	}
}

func TestCacheEviction(t *testing.T) {
	tbl := newTestTable(t, "t", 1, 100000)
	c := NewCache(Config{Kind: RangeIndex, MaxRanges: 1024, MemBudget: 20000})
	// Insert entries until the budget forces eviction.
	for i := 0; i < 50; i++ {
		key := simpleKey("t", fmt.Sprintf("p%d", i))
		var rs []storage.RowRange
		for j := 0; j < 100; j++ {
			rs = append(rs, storage.RowRange{Start: j * 10, End: j*10 + 5})
		}
		c.Insert(key, tbl, tbl.LayoutEpoch(), nil, [][]storage.RowRange{rs}, []int{100000})
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions under budget pressure")
	}
	if st.MemBytes > 20000 {
		t.Fatalf("over budget: %d", st.MemBytes)
	}
	// Most recent entry must still be present (LRU evicts oldest).
	if _, ok := c.Lookup(simpleKey("t", "p49").String()); !ok {
		t.Fatal("most recent entry evicted")
	}
	if _, ok := c.Lookup(simpleKey("t", "p0").String()); ok {
		t.Fatal("oldest entry survived")
	}
}

func TestCacheLRUTouchOrder(t *testing.T) {
	tbl := newTestTable(t, "t", 1, 1000)
	c := NewCache(Config{Kind: RangeIndex, MaxRanges: 8, MemBudget: 1 << 30})
	for i := 0; i < 3; i++ {
		c.Insert(simpleKey("t", fmt.Sprintf("p%d", i)), tbl, tbl.LayoutEpoch(), nil, [][]storage.RowRange{{{Start: 0, End: 1}}}, []int{1000})
	}
	// Touch p0 so p1 becomes LRU.
	if _, ok := c.Lookup(simpleKey("t", "p0").String()); !ok {
		t.Fatal("p0 missing")
	}
	// Shrink the budget by re-creating with small budget is complex; instead
	// verify the intrusive list directly via eviction behaviour in
	// TestCacheEviction. Here check Clear.
	c.Clear()
	if st := c.Stats(); st.Entries != 0 || st.MemBytes != 0 {
		t.Fatalf("clear failed: %+v", st)
	}
}

func TestCacheReinsertReplaces(t *testing.T) {
	tbl := newTestTable(t, "t", 1, 1000)
	c := NewCache(Config{Kind: RangeIndex, MaxRanges: 8})
	key := simpleKey("t", "p")
	c.Insert(key, tbl, tbl.LayoutEpoch(), nil, [][]storage.RowRange{{{Start: 0, End: 10}}}, []int{500})
	c.Insert(key, tbl, tbl.LayoutEpoch(), nil, [][]storage.RowRange{{{Start: 50, End: 60}}}, []int{1000})
	cand, _ := c.Lookup(key.String())
	if len(cand.PerSlice[0]) != 1 || cand.PerSlice[0][0].Start != 50 {
		t.Fatalf("reinsert did not replace: %v", cand.PerSlice[0])
	}
	if c.Stats().Entries != 1 {
		t.Fatal("duplicate entries")
	}
}

func TestCacheInvalidateTable(t *testing.T) {
	t1 := newTestTable(t, "t1", 1, 100)
	t2 := newTestTable(t, "t2", 1, 100)
	c := NewCache(DefaultConfig())
	c.Insert(simpleKey("t1", "a"), t1, t1.LayoutEpoch(), nil, [][]storage.RowRange{{{Start: 0, End: 1}}}, []int{100})
	c.Insert(simpleKey("t1", "b"), t1, t1.LayoutEpoch(), nil, [][]storage.RowRange{{{Start: 0, End: 1}}}, []int{100})
	c.Insert(simpleKey("t2", "a"), t2, t2.LayoutEpoch(), nil, [][]storage.RowRange{{{Start: 0, End: 1}}}, []int{100})
	c.InvalidateTable("t1")
	st := c.Stats()
	if st.Entries != 1 || st.Invalidations != 2 {
		t.Fatalf("stats %+v", st)
	}
	if _, ok := c.Lookup(simpleKey("t2", "a").String()); !ok {
		t.Fatal("t2 entry lost")
	}
}

func TestCacheMemAccounting(t *testing.T) {
	tbl := newTestTable(t, "t", 1, 100000)
	c := NewCache(Config{Kind: RangeIndex, MaxRanges: 1024})
	key := simpleKey("t", "p")
	var rs []storage.RowRange
	for j := 0; j < 500; j++ {
		rs = append(rs, storage.RowRange{Start: j * 20, End: j*20 + 5})
	}
	c.Insert(key, tbl, tbl.LayoutEpoch(), nil, [][]storage.RowRange{rs}, []int{100000})
	m := c.EntryMemBytes(key.String())
	if m < 500*16 {
		t.Fatalf("entry mem %d suspiciously small", m)
	}
	if c.Stats().MemBytes != m {
		t.Fatal("cache mem != entry mem")
	}
	if c.EntryMemBytes("nope") != 0 {
		t.Fatal("phantom entry mem")
	}
	c.ResetStats()
	if c.Stats().Hits != 0 {
		t.Fatal("reset failed")
	}
}

func TestEntryKindString(t *testing.T) {
	if RangeIndex.String() != "range" || BitmapIndex.String() != "bitmap" {
		t.Fatal("kind names")
	}
}

func TestAdmissionDefersUntilRepeat(t *testing.T) {
	tbl := newTestTable(t, "t", 1, 1000)
	c := NewCache(Config{Kind: BitmapIndex, AdmitAfter: 3})
	key := simpleKey("t", "p")
	rs := [][]storage.RowRange{{{Start: 0, End: 10}}}
	wm := []int{1000}
	c.Insert(key, tbl, tbl.LayoutEpoch(), nil, rs, wm)
	c.Insert(key, tbl, tbl.LayoutEpoch(), nil, rs, wm)
	if _, ok := c.Lookup(key.String()); ok {
		t.Fatal("entry admitted before threshold")
	}
	if c.Stats().AdmissionDeferred != 2 {
		t.Fatalf("deferred %d", c.Stats().AdmissionDeferred)
	}
	c.Insert(key, tbl, tbl.LayoutEpoch(), nil, rs, wm) // third sighting admits
	if _, ok := c.Lookup(key.String()); !ok {
		t.Fatal("entry not admitted at threshold")
	}
	// A different key starts its own count.
	other := simpleKey("t", "q")
	c.Insert(other, tbl, tbl.LayoutEpoch(), nil, rs, wm)
	if _, ok := c.Lookup(other.String()); ok {
		t.Fatal("fresh key admitted immediately")
	}
}

func TestAdmissionRejectsUnselective(t *testing.T) {
	tbl := newTestTable(t, "t", 1, 1000)
	c := NewCache(Config{Kind: RangeIndex, MaxRanges: 8, MaxSelectivity: 0.5})
	wide := simpleKey("t", "wide")
	c.Insert(wide, tbl, tbl.LayoutEpoch(), nil, [][]storage.RowRange{{{Start: 0, End: 900}}}, []int{1000})
	if _, ok := c.Lookup(wide.String()); ok {
		t.Fatal("high-selectivity entry admitted")
	}
	if c.Stats().AdmissionRejected != 1 {
		t.Fatal("rejection not counted")
	}
	narrow := simpleKey("t", "narrow")
	c.Insert(narrow, tbl, tbl.LayoutEpoch(), nil, [][]storage.RowRange{{{Start: 0, End: 100}}}, []int{1000})
	if _, ok := c.Lookup(narrow.String()); !ok {
		t.Fatal("low-selectivity entry rejected")
	}
	// Clear resets admission history too.
	c2 := NewCache(Config{Kind: BitmapIndex, AdmitAfter: 2})
	k := simpleKey("t", "p")
	c2.Insert(k, tbl, tbl.LayoutEpoch(), nil, [][]storage.RowRange{{{Start: 0, End: 1}}}, []int{1000})
	c2.Clear()
	c2.Insert(k, tbl, tbl.LayoutEpoch(), nil, [][]storage.RowRange{{{Start: 0, End: 1}}}, []int{1000})
	if _, ok := c2.Lookup(k.String()); ok {
		t.Fatal("admission history survived Clear")
	}
}

func TestHas(t *testing.T) {
	tbl := newTestTable(t, "t", 1, 1000)
	c := NewCache(DefaultConfig())
	key := simpleKey("t", "p")
	if c.Has(key.String()) {
		t.Fatal("phantom has")
	}
	c.Insert(key, tbl, tbl.LayoutEpoch(), nil, [][]storage.RowRange{{{Start: 0, End: 1}}}, []int{1000})
	misses := c.Stats().Misses
	if !c.Has(key.String()) {
		t.Fatal("has missed")
	}
	if c.Stats().Misses != misses || c.Stats().Hits != 0 {
		t.Fatal("Has touched counters")
	}
	tbl.Vacuum(0)
	if c.Has(key.String()) {
		t.Fatal("stale entry reported")
	}
	c.SetEnabled(false)
	if c.Has(key.String()) {
		t.Fatal("disabled cache has")
	}
}
