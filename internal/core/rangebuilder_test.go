package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/predcache/predcache/internal/storage"
)

// offlineReduce is the reference implementation: keep the maxRanges-1
// largest gaps (breaking ties toward earlier gaps, matching heap pop order
// is not required — only the resulting coverage and count matter).
func offlineReduce(ranges []storage.RowRange, maxRanges int) []storage.RowRange {
	if len(ranges) <= maxRanges {
		return append([]storage.RowRange(nil), ranges...)
	}
	type gap struct{ size, idx int }
	gaps := make([]gap, 0, len(ranges)-1)
	for i := 1; i < len(ranges); i++ {
		gaps = append(gaps, gap{ranges[i].Start - ranges[i-1].End, i})
	}
	sort.Slice(gaps, func(a, b int) bool { return gaps[a].size > gaps[b].size })
	keep := make(map[int]bool, maxRanges-1)
	for _, g := range gaps[:maxRanges-1] {
		keep[g.idx] = true
	}
	var out []storage.RowRange
	cur := ranges[0]
	for i := 1; i < len(ranges); i++ {
		if keep[i] {
			out = append(out, cur)
			cur = ranges[i]
		} else {
			cur.End = ranges[i].End
		}
	}
	return append(out, cur)
}

func genRanges(r *rand.Rand, n int) []storage.RowRange {
	var out []storage.RowRange
	pos := 0
	for i := 0; i < n; i++ {
		pos += 1 + r.Intn(100) // gap
		ln := 1 + r.Intn(50)
		out = append(out, storage.RowRange{Start: pos, End: pos + ln})
		pos += ln
	}
	return out
}

func coveredRows(ranges []storage.RowRange) map[int]bool {
	m := make(map[int]bool)
	for _, r := range ranges {
		for i := r.Start; i < r.End; i++ {
			m[i] = true
		}
	}
	return m
}

func TestRangeBuilderNoReduction(t *testing.T) {
	b := NewRangeBuilder(10)
	b.Add(0, 5)
	b.Add(10, 12)
	got := b.Finish()
	want := []storage.RowRange{{Start: 0, End: 5}, {Start: 10, End: 12}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("got %v", got)
	}
}

func TestRangeBuilderCoalescesAdjacent(t *testing.T) {
	b := NewRangeBuilder(10)
	b.Add(0, 5)
	b.Add(5, 8)
	b.Add(8, 9)
	got := b.Finish()
	if len(got) != 1 || got[0] != (storage.RowRange{Start: 0, End: 9}) {
		t.Fatalf("got %v", got)
	}
	if b.Count() != 1 {
		t.Fatalf("count %d", b.Count())
	}
}

func TestRangeBuilderIgnoresEmpty(t *testing.T) {
	b := NewRangeBuilder(10)
	b.Add(5, 5)
	b.Add(7, 3)
	if len(b.Finish()) != 0 {
		t.Fatal("empty ranges stored")
	}
}

func TestRangeBuilderMergesSmallestGap(t *testing.T) {
	// Three ranges with gaps 2 and 50; max 2 ranges: the gap of 2 merges.
	b := NewRangeBuilder(2)
	b.Add(0, 10)
	b.Add(12, 20) // gap 2
	b.Add(70, 80) // gap 50
	got := b.Finish()
	want := []storage.RowRange{{Start: 0, End: 20}, {Start: 70, End: 80}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("got %v", got)
	}
}

func TestRangeBuilderSingleRangeLimit(t *testing.T) {
	b := NewRangeBuilder(1)
	b.Add(5, 10)
	b.Add(100, 110)
	b.Add(500, 501)
	got := b.Finish()
	if len(got) != 1 || got[0] != (storage.RowRange{Start: 5, End: 501}) {
		t.Fatalf("got %v", got)
	}
}

func TestRangeBuilderPaperExample(t *testing.T) {
	// §4.1.1: "the ranges [1,2] and [4,6] are merged into a single range
	// [1,6]" (paper uses inclusive ends; ours are exclusive).
	b := NewRangeBuilder(1)
	b.Add(1, 3)
	b.Add(4, 7)
	got := b.Finish()
	if len(got) != 1 || got[0] != (storage.RowRange{Start: 1, End: 7}) {
		t.Fatalf("got %v", got)
	}
}

func TestRangeBuilderMatchesOfflineReference(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		n := 1 + r.Intn(200)
		maxR := 1 + r.Intn(20)
		in := genRanges(r, n)
		b := NewRangeBuilder(maxR)
		for _, rr := range in {
			b.Add(rr.Start, rr.End)
		}
		got := b.Finish()
		want := offlineReduce(in, maxR)
		if len(got) != len(want) {
			t.Fatalf("iter %d: got %d ranges want %d", iter, len(got), len(want))
		}
		// With distinct gap sizes the outputs must be identical; with ties
		// coverage equality is the contract. Compare coverage and count.
		gotCov := coveredRows(got)
		wantCov := coveredRows(want)
		// The builder's coverage must be a superset of the input coverage
		// and both reductions cover the same number of rows only when gap
		// ties break identically; check superset + equal range count + equal
		// total span instead.
		inCov := coveredRows(in)
		for row := range inCov {
			if !gotCov[row] {
				t.Fatalf("iter %d: builder lost row %d (false negative)", iter, row)
			}
			if !wantCov[row] {
				t.Fatalf("iter %d: reference lost row %d", iter, row)
			}
		}
		if len(gotCov) != len(wantCov) {
			t.Fatalf("iter %d: coverage %d vs reference %d", iter, len(gotCov), len(wantCov))
		}
	}
}

func TestRangeBuilderInvariantsQuick(t *testing.T) {
	f := func(seed int64, nRaw, maxRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw)%150 + 1
		maxR := int(maxRaw)%16 + 1
		in := genRanges(r, n)
		b := NewRangeBuilder(maxR)
		for _, rr := range in {
			b.Add(rr.Start, rr.End)
		}
		out := b.Finish()
		// 1. Bounded count.
		if len(out) > maxR {
			return false
		}
		// 2. Sorted, non-overlapping, valid.
		if err := storage.ValidateRanges(out, 1<<30); err != nil {
			return false
		}
		// 3. No false negatives: every input row is covered.
		cov := coveredRows(out)
		for row := range coveredRows(in) {
			if !cov[row] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBitmapSetAndRanges(t *testing.T) {
	bits := make([]uint64, 2) // 128 blocks
	bitmapSet(bits, 0, 999, 1000)
	bitmapSet(bits, 5000, 7001, 1000) // blocks 5,6,7
	got := bitmapRanges(bits, 1000, 100000)
	want := []storage.RowRange{{Start: 0, End: 1000}, {Start: 5000, End: 8000}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("got %v", got)
	}
	// Clipping to the watermark.
	got = bitmapRanges(bits, 1000, 7500)
	if got[1].End != 7500 {
		t.Fatalf("not clipped: %v", got)
	}
	// Empty set.
	if out := bitmapRanges(make([]uint64, 1), 1000, 5000); len(out) != 0 {
		t.Fatalf("empty bitmap produced %v", out)
	}
	// Zero-length set is a no-op.
	before := append([]uint64(nil), bits...)
	bitmapSet(bits, 10, 10, 1000)
	if bits[0] != before[0] || bits[1] != before[1] {
		t.Fatal("empty range set bits")
	}
}

func TestBitmapNoFalseNegativesQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := genRanges(r, 1+r.Intn(50))
		limit := in[len(in)-1].End + r.Intn(100)
		rowsPerBlock := 1 + r.Intn(64)
		numBlocks := (limit + rowsPerBlock - 1) / rowsPerBlock
		bits := make([]uint64, (numBlocks+63)/64)
		for _, rr := range in {
			bitmapSet(bits, rr.Start, rr.End, rowsPerBlock)
		}
		cov := coveredRows(bitmapRanges(bits, rowsPerBlock, limit))
		for row := range coveredRows(in) {
			if !cov[row] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
