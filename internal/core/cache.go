package core

import (
	"sync"
	"time"

	"github.com/predcache/predcache/internal/storage"
)

// Config controls a predicate cache instance.
type Config struct {
	// Kind selects the entry representation. Default: BitmapIndex, matching
	// the paper's default configuration (§5.1).
	Kind EntryKind
	// MaxRanges bounds the number of ranges per slice entry for RangeIndex.
	// The paper's prototype stores 16,384 ranges per data slice (§5.2);
	// this default keeps a few MB per entry at laptop scale.
	MaxRanges int
	// RowsPerBlock is the bitmap granularity for BitmapIndex; the paper uses
	// 1,000 rows per block (§5.1).
	RowsPerBlock int
	// MemBudget caps total cache memory in bytes; 0 means unlimited. The
	// least-recently-used entries are evicted beyond the budget.
	MemBudget int

	// AdmitAfter implements the cost-based caching decision the paper
	// sketches (§4.1: "a cost-based optimizer could decide which predicates
	// to cache based on the selectivity and repetitiveness"): an entry is
	// only created once the same key has been seen this many times. 0 or 1
	// caches on first sight (the paper's prototype behaviour).
	AdmitAfter int

	// MaxSelectivity skips caching predicates whose qualifying rows exceed
	// this fraction of the scanned rows (0 disables the check): an entry
	// covering nearly the whole table cannot skip anything and only costs
	// memory.
	MaxSelectivity float64
}

// DefaultConfig mirrors the paper's evaluation setup.
func DefaultConfig() Config {
	return Config{Kind: BitmapIndex, MaxRanges: 16384, RowsPerBlock: 1000}
}

func (c Config) withDefaults() Config {
	if c.MaxRanges <= 0 {
		c.MaxRanges = 16384
	}
	if c.RowsPerBlock <= 0 {
		c.RowsPerBlock = 1000
	}
	return c
}

// Stats reports cache activity counters.
type Stats struct {
	Hits          int64
	Misses        int64
	Inserts       int64
	Extends       int64
	Evictions     int64
	Invalidations int64
	// AdmissionDeferred counts inserts skipped because the key had not yet
	// repeated AdmitAfter times; AdmissionRejected counts inserts skipped by
	// the MaxSelectivity bound.
	AdmissionDeferred int64
	AdmissionRejected int64
	Entries           int
	MemBytes          int
}

// Candidates is the materialized result of a cache hit: for every slice the
// candidate row ranges (cached qualifying rows up to the watermark) and the
// watermark itself. Rows at or beyond the watermark must be scanned with the
// normal path and merged back via Extend.
type Candidates struct {
	Key        string
	PerSlice   [][]storage.RowRange
	Watermarks []int
	EstRows    int
	Kind       EntryKind
}

// Cache is a per-node predicate cache. All methods are safe for concurrent
// use.
type Cache struct {
	mu      sync.Mutex
	cfg     Config            // immutable after NewCache
	entries map[string]*entry // guarded by mu
	head    *entry            // guarded by mu; most recently used
	tail    *entry            // guarded by mu; least recently used
	mem     int               // guarded by mu
	stats   Stats             // guarded by mu
	enabled bool              // guarded by mu

	// observed counts key sightings for the AdmitAfter policy.
	observed map[string]int // guarded by mu
}

// NewCache creates a predicate cache.
func NewCache(cfg Config) *Cache {
	return &Cache{
		cfg:      cfg.withDefaults(),
		entries:  make(map[string]*entry),
		observed: make(map[string]int),
		enabled:  true,
	}
}

// SetEnabled turns the cache on or off; a disabled cache misses every lookup
// and ignores inserts (used by benchmarks to compare against the baseline
// scan path).
func (c *Cache) SetEnabled(v bool) {
	c.mu.Lock()
	c.enabled = v
	c.mu.Unlock()
}

// Enabled reports whether the cache is active.
func (c *Cache) Enabled() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.enabled
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.entries)
	s.MemBytes = c.mem
	return s
}

// ResetStats clears the activity counters.
func (c *Cache) ResetStats() {
	c.mu.Lock()
	c.stats = Stats{}
	c.mu.Unlock()
}

// Clear drops all entries and admission history.
func (c *Cache) Clear() {
	c.mu.Lock()
	c.entries = make(map[string]*entry)
	c.observed = make(map[string]int)
	c.head, c.tail = nil, nil
	c.mem = 0
	c.mu.Unlock()
}

// --- intrusive LRU list ---

// pclint:held — callers hold c.mu.
func (c *Cache) lruPushFront(e *entry) {
	e.lruPrev = nil
	e.lruNext = c.head
	if c.head != nil {
		c.head.lruPrev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// pclint:held — callers hold c.mu.
func (c *Cache) lruRemove(e *entry) {
	if e.lruPrev != nil {
		e.lruPrev.lruNext = e.lruNext
	} else {
		c.head = e.lruNext
	}
	if e.lruNext != nil {
		e.lruNext.lruPrev = e.lruPrev
	} else {
		c.tail = e.lruPrev
	}
	e.lruPrev, e.lruNext = nil, nil
}

// pclint:held — callers hold c.mu.
func (c *Cache) lruTouch(e *entry) {
	if c.head == e {
		return
	}
	c.lruRemove(e)
	c.lruPushFront(e)
}

func (c *Cache) dropLocked(e *entry) {
	delete(c.entries, e.key)
	c.lruRemove(e)
	c.mem -= e.mem
}

func (c *Cache) evictLocked() {
	if c.cfg.MemBudget <= 0 {
		return
	}
	for c.mem > c.cfg.MemBudget && c.tail != nil {
		c.dropLocked(c.tail)
		c.stats.Evictions++
	}
}

// Lookup returns the cached candidates for key, validating layout epoch and
// build-side versions. A stale entry is dropped and reported as a miss.
func (c *Cache) Lookup(key string) (Candidates, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.enabled {
		return Candidates{}, false
	}
	e, ok := c.entries[key]
	if !ok {
		c.stats.Misses++
		return Candidates{}, false
	}
	if e.stale() {
		c.dropLocked(e)
		c.stats.Invalidations++
		c.stats.Misses++
		return Candidates{}, false
	}
	c.lruTouch(e)
	c.stats.Hits++
	e.hits++
	e.lastHit = time.Now()
	return c.materializeLocked(e), true
}

// Best returns the most selective valid entry among the given keys — the
// paper stores entries with and without semi-join filters in the same cache
// and "chooses the most selective matching entry" (§4.4). Stale entries
// encountered on the way are dropped. The miss counter increments only if
// none of the keys hit.
func (c *Cache) Best(keys []string) (Candidates, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.enabled {
		return Candidates{}, false
	}
	var best *entry
	for _, k := range keys {
		e, ok := c.entries[k]
		if !ok {
			continue
		}
		if e.stale() {
			c.dropLocked(e)
			c.stats.Invalidations++
			continue
		}
		if best == nil || e.estRows() < best.estRows() {
			best = e
		}
	}
	if best == nil {
		c.stats.Misses++
		return Candidates{}, false
	}
	c.lruTouch(best)
	c.stats.Hits++
	best.hits++
	best.lastHit = time.Now()
	return c.materializeLocked(best), true
}

func (c *Cache) materializeLocked(e *entry) Candidates {
	cand := Candidates{
		Key:        e.key,
		PerSlice:   make([][]storage.RowRange, len(e.slices)),
		Watermarks: make([]int, len(e.slices)),
		EstRows:    e.estRows(),
		Kind:       e.kind,
	}
	for i := range e.slices {
		se := &e.slices[i]
		cand.Watermarks[i] = se.watermark
		if e.kind == RangeIndex {
			cand.PerSlice[i] = append([]storage.RowRange(nil), se.ranges...)
		} else {
			cand.PerSlice[i] = bitmapRanges(se.bitmap, c.cfg.RowsPerBlock, se.watermark)
		}
		storage.AssertRowRanges(cand.PerSlice[i], se.watermark, "core.Cache.materialize")
	}
	return cand
}

// Insert records a freshly scanned expression: perSlice holds the precise
// qualifying row ranges of every slice (ascending, non-overlapping) and
// watermarks the number of rows scanned per slice. epoch is the table's
// layout epoch observed when the scan started — callers capture it before
// taking the scan lock so that a vacuum racing the scan conservatively
// invalidates the entry rather than mislabelling it. deps lists semi-join
// build-side dependencies (nil for plain filters). Insert is a no-op when
// the cache is disabled.
func (c *Cache) Insert(key Key, tbl *storage.Table, epoch uint64, deps []BuildDep, perSlice [][]storage.RowRange, watermarks []int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.enabled {
		return
	}
	ks := key.String()
	// Cost-based admission: defer until the key proves repetitive, and
	// refuse unselective predicates outright.
	if c.cfg.AdmitAfter > 1 {
		c.observed[ks]++
		if c.observed[ks] < c.cfg.AdmitAfter {
			c.stats.AdmissionDeferred++
			return
		}
	}
	if c.cfg.MaxSelectivity > 0 {
		covered, scanned := 0, 0
		for i, ranges := range perSlice {
			covered += storage.RangesRowCount(ranges)
			scanned += watermarks[i]
		}
		if scanned > 0 && float64(covered)/float64(scanned) > c.cfg.MaxSelectivity {
			c.stats.AdmissionRejected++
			return
		}
	}
	if old, ok := c.entries[ks]; ok {
		c.dropLocked(old)
	}
	e := &entry{
		key:         ks,
		table:       tbl,
		layoutEpoch: epoch,
		deps:        deps,
		kind:        c.cfg.Kind,
		slices:      make([]sliceEntry, len(perSlice)),
		createdAt:   time.Now(),
	}
	for i, ranges := range perSlice {
		storage.AssertRowRanges(ranges, watermarks[i], "core.Cache.Insert")
		se := &e.slices[i]
		se.watermark = watermarks[i]
		if c.cfg.Kind == RangeIndex {
			se.ranges = ReduceRanges(ranges, c.cfg.MaxRanges)
			se.estRows = storage.RangesRowCount(se.ranges)
		} else {
			numBlocks := (watermarks[i] + c.cfg.RowsPerBlock - 1) / c.cfg.RowsPerBlock
			se.bitmap = make([]uint64, (numBlocks+63)/64)
			for _, r := range ranges {
				bitmapSet(se.bitmap, r.Start, r.End, c.cfg.RowsPerBlock)
			}
			se.estRows = storage.RangesRowCount(bitmapRanges(se.bitmap, c.cfg.RowsPerBlock, se.watermark))
		}
	}
	e.mem = e.memBytes()
	c.entries[ks] = e
	c.lruPushFront(e)
	c.mem += e.mem
	c.stats.Inserts++
	c.evictLocked()
	c.assertMemLocked("Insert")
}

// Extend merges tail ranges — qualifying rows found beyond a slice's
// watermark after new data was appended — into an existing entry and
// advances the watermark (§4.3.1: "we can then add the new row ranges to
// the predicate cache to keep it up-to-date"). It is a no-op if the entry
// has disappeared or turned stale.
func (c *Cache) Extend(key string, slice int, tailRanges []storage.RowRange, newWatermark int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.enabled {
		return
	}
	e, ok := c.entries[key]
	if !ok || slice >= len(e.slices) {
		return
	}
	if e.stale() {
		c.dropLocked(e)
		c.stats.Invalidations++
		return
	}
	se := &e.slices[slice]
	if newWatermark <= se.watermark {
		return
	}
	storage.AssertRowRanges(tailRanges, newWatermark, "core.Cache.Extend")
	c.mem -= e.mem
	if e.kind == RangeIndex {
		merged := append(append([]storage.RowRange(nil), se.ranges...), tailRanges...)
		se.ranges = ReduceRanges(merged, c.cfg.MaxRanges)
		se.estRows = storage.RangesRowCount(se.ranges)
	} else {
		numBlocks := (newWatermark + c.cfg.RowsPerBlock - 1) / c.cfg.RowsPerBlock
		words := (numBlocks + 63) / 64
		for len(se.bitmap) < words {
			se.bitmap = append(se.bitmap, 0)
		}
		for _, r := range tailRanges {
			bitmapSet(se.bitmap, r.Start, r.End, c.cfg.RowsPerBlock)
		}
		se.estRows = storage.RangesRowCount(bitmapRanges(se.bitmap, c.cfg.RowsPerBlock, newWatermark))
	}
	se.watermark = newWatermark
	e.mem = e.memBytes()
	c.mem += e.mem
	c.stats.Extends++
	c.evictLocked()
	c.assertMemLocked("Extend")
}

// InvalidateTable drops every entry scanning the given table (used on
// vacuum when eager invalidation is preferred; lazy validation in Lookup
// catches the same cases).
func (c *Cache) InvalidateTable(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.entries {
		if e.table.Name() == name {
			c.dropLocked(e)
			c.stats.Invalidations++
		}
	}
	c.assertMemLocked("InvalidateTable")
}

// EntryMemBytes returns the memory of a single entry by key (0 if absent);
// used by the Table 3 memory benchmark.
func (c *Cache) EntryMemBytes(key string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		return e.mem
	}
	return 0
}

// EntrySummary describes one cached entry for introspection (the pcsh
// \entries command and the pc.cache_entries system table).
type EntrySummary struct {
	Key      string
	Table    string
	Kind     EntryKind
	EstRows  int
	MemBytes int
	SemiJoin bool
	// Hits counts lookups this entry served; CreatedAt/LastHit timestamp its
	// life (LastHit is zero until the first hit).
	Hits      int64
	CreatedAt time.Time
	LastHit   time.Time
	// Slices is the number of data slices covered; Ranges the total number of
	// qualifying row ranges the entry materializes across them.
	Slices int
	Ranges int
	// Epoch is the table layout epoch the entry was built against.
	Epoch uint64
}

// Entries returns summaries of all cached entries in LRU order (most recent
// first).
func (c *Cache) Entries() []EntrySummary {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []EntrySummary
	for e := c.head; e != nil; e = e.lruNext {
		ranges := 0
		for i := range e.slices {
			se := &e.slices[i]
			if e.kind == RangeIndex {
				ranges += len(se.ranges)
			} else {
				ranges += len(bitmapRanges(se.bitmap, c.cfg.RowsPerBlock, se.watermark))
			}
		}
		out = append(out, EntrySummary{
			Key:       e.key,
			Table:     e.table.Name(),
			Kind:      e.kind,
			EstRows:   e.estRows(),
			MemBytes:  e.mem,
			SemiJoin:  len(e.deps) > 0,
			Hits:      e.hits,
			CreatedAt: e.createdAt,
			LastHit:   e.lastHit,
			Slices:    len(e.slices),
			Ranges:    ranges,
			Epoch:     e.layoutEpoch,
		})
	}
	return out
}

// Has reports whether a fresh entry exists for key without materializing
// candidates or touching hit/miss counters. Scans use it to avoid
// re-inserting an entry that is already current.
func (c *Cache) Has(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.enabled {
		return false
	}
	e, ok := c.entries[key]
	return ok && !e.stale()
}
