//go:build pcdebug

package core

import "fmt"

// assertMemLocked panics unless the cache's aggregate memory counter equals
// the sum of per-entry sizes — the invariant pc.cache_stats and the eviction
// budget both depend on. Callers hold c.mu. ctx names the mutating call site
// for the panic message.
func (c *Cache) assertMemLocked(ctx string) {
	sum := 0
	for _, e := range c.entries {
		sum += e.mem
	}
	if sum != c.mem {
		panic(fmt.Sprintf("pcdebug: core.Cache.%s: mem counter %d != entry sum %d over %d entries",
			ctx, c.mem, sum, len(c.entries)))
	}
}
