package core

import (
	"container/heap"

	"github.com/predcache/predcache/internal/storage"
)

// RangeBuilder implements the paper's on-the-fly merged-range construction
// (§4.1.1): qualifying row ranges stream in left-to-right during the scan;
// a min-heap of the gaps between consecutive ranges keeps at most maxRanges
// ranges alive by merging across the smallest gap whenever the limit is
// exceeded. The surviving gaps are exactly the maxRanges-1 largest gaps of
// the full input, so precision degrades gracefully: merged ranges introduce
// false positives (re-filtered by the vectorized scan) but never false
// negatives.
type RangeBuilder struct {
	max int

	starts []int
	ends   []int
	prev   []int
	next   []int
	alive  []bool

	first, last int // indexes of the first/last active range, -1 if none
	count       int

	gaps gapHeap
}

type gapItem struct {
	size int
	idx  int // the range whose left gap this is
}

type gapHeap []gapItem

func (h gapHeap) Len() int            { return len(h) }
func (h gapHeap) Less(i, j int) bool  { return h[i].size < h[j].size }
func (h gapHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *gapHeap) Push(x interface{}) { *h = append(*h, x.(gapItem)) }
func (h *gapHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// NewRangeBuilder creates a builder bounded to maxRanges output ranges.
func NewRangeBuilder(maxRanges int) *RangeBuilder {
	if maxRanges < 1 {
		maxRanges = 1
	}
	return &RangeBuilder{max: maxRanges, first: -1, last: -1}
}

// Add appends the next qualifying range. Ranges must arrive in ascending,
// non-overlapping order (as the scan produces them).
func (b *RangeBuilder) Add(start, end int) {
	if end <= start {
		return
	}
	if b.last >= 0 && start <= b.ends[b.last] {
		// Adjacent or overlapping with the previous range: coalesce for free.
		if end > b.ends[b.last] {
			b.ends[b.last] = end
		}
		return
	}
	idx := len(b.starts)
	b.starts = append(b.starts, start)
	b.ends = append(b.ends, end)
	b.prev = append(b.prev, b.last)
	b.next = append(b.next, -1)
	b.alive = append(b.alive, true)
	if b.last >= 0 {
		b.next[b.last] = idx
		heap.Push(&b.gaps, gapItem{size: start - b.ends[b.last], idx: idx})
	} else {
		b.first = idx
	}
	b.last = idx
	b.count++
	if b.count > b.max {
		b.mergeSmallestGap()
	}
}

// mergeSmallestGap merges the range with the globally smallest left gap into
// its predecessor. Gap values of all other ranges are unaffected because the
// merged range keeps its end and every other range keeps its start.
func (b *RangeBuilder) mergeSmallestGap() {
	item := heap.Pop(&b.gaps).(gapItem)
	i := item.idx
	p := b.prev[i]
	b.ends[p] = b.ends[i]
	b.alive[i] = false
	n := b.next[i]
	b.next[p] = n
	if n >= 0 {
		b.prev[n] = p
	}
	if b.last == i {
		b.last = p
	}
	b.count--
}

// Count returns the number of ranges the builder currently holds.
func (b *RangeBuilder) Count() int { return b.count }

// Finish returns the merged ranges in ascending order.
func (b *RangeBuilder) Finish() []storage.RowRange {
	out := make([]storage.RowRange, 0, b.count)
	for i := b.first; i >= 0; i = b.next[i] {
		out = append(out, storage.RowRange{Start: b.starts[i], End: b.ends[i]})
	}
	storage.AssertRowRanges(out, -1, "core.RangeBuilder.Finish")
	return out
}

// ReduceRanges is the offline equivalent of the streaming builder: it merges
// sorted non-overlapping ranges down to at most maxRanges by keeping the
// maxRanges-1 largest gaps. Used by tests as the reference implementation
// and by Extend when re-compacting an entry.
func ReduceRanges(ranges []storage.RowRange, maxRanges int) []storage.RowRange {
	b := NewRangeBuilder(maxRanges)
	for _, r := range ranges {
		b.Add(r.Start, r.End)
	}
	return b.Finish()
}
