package core

import (
	"time"

	"github.com/predcache/predcache/internal/storage"
)

// EntryKind selects the physical representation of cached qualifying rows.
type EntryKind uint8

const (
	// RangeIndex stores a bounded list of row ranges per slice (§4.1.1).
	RangeIndex EntryKind = iota
	// BitmapIndex stores one bit per block of rows per slice (§4.1.2).
	BitmapIndex
)

func (k EntryKind) String() string {
	if k == BitmapIndex {
		return "bitmap"
	}
	return "range"
}

// sliceEntry holds the cached qualifying rows of one data slice.
type sliceEntry struct {
	// watermark is the number of rows of the slice that the entry covers;
	// rows appended later are scanned normally and merged in (§4.3.1).
	watermark int
	ranges    []storage.RowRange // RangeIndex
	bitmap    []uint64           // BitmapIndex: bit per rowsPerBlock rows
	estRows   int                // rows covered (before false-positive removal)
}

// entry is one cached scan expression.
type entry struct {
	key         string
	table       *storage.Table
	layoutEpoch uint64
	deps        []BuildDep
	kind        EntryKind
	slices      []sliceEntry
	mem         int

	// Introspection bookkeeping, written under the owning Cache's mutex:
	// how often the entry served a lookup and when. Surfaced through
	// pc.cache_entries.
	hits      int64
	createdAt time.Time
	lastHit   time.Time

	// LRU bookkeeping (owned by Cache).
	lruPrev, lruNext *entry
}

func (e *entry) stale() bool {
	if e.table.LayoutEpoch() != e.layoutEpoch {
		return true
	}
	for _, d := range e.deps {
		if d.Stale() {
			return true
		}
	}
	return false
}

func (e *entry) estRows() int {
	n := 0
	for i := range e.slices {
		n += e.slices[i].estRows
	}
	return n
}

func (e *entry) memBytes() int {
	n := 128 + len(e.key) // struct + key overhead
	for i := range e.slices {
		n += 64 + len(e.slices[i].ranges)*16 + len(e.slices[i].bitmap)*8
	}
	return n
}

// bitmapSet sets the block bits covering rows [start, end).
func bitmapSet(bits []uint64, start, end, rowsPerBlock int) {
	if end <= start {
		return
	}
	fromBlk := start / rowsPerBlock
	toBlk := (end - 1) / rowsPerBlock
	for b := fromBlk; b <= toBlk; b++ {
		bits[b>>6] |= 1 << (b & 63)
	}
}

// bitmapRanges expands the set bits into row ranges clipped to limit rows.
func bitmapRanges(bits []uint64, rowsPerBlock, limit int) []storage.RowRange {
	var out []storage.RowRange
	numBlocks := (limit + rowsPerBlock - 1) / rowsPerBlock
	runStart := -1
	for b := 0; b < numBlocks; b++ {
		set := bits[b>>6]&(1<<(b&63)) != 0
		if set && runStart < 0 {
			runStart = b
		}
		if !set && runStart >= 0 {
			out = append(out, storage.RowRange{Start: runStart * rowsPerBlock, End: b * rowsPerBlock})
			runStart = -1
		}
	}
	if runStart >= 0 {
		end := numBlocks * rowsPerBlock
		if end > limit {
			end = limit
		}
		out = append(out, storage.RowRange{Start: runStart * rowsPerBlock, End: end})
	}
	// Clip the last range to the limit (it may end mid-block).
	if n := len(out); n > 0 && out[n-1].End > limit {
		out[n-1].End = limit
	}
	return out
}
