//go:build !pcdebug

package core

// assertMemLocked is a no-op without the pcdebug build tag; the release
// build keeps cache mutations free of the O(entries) invariant walk.
func (c *Cache) assertMemLocked(ctx string) {}
