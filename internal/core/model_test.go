package core

// Behavioral model test: the cache's visible behaviour (which keys hit,
// what candidates they return) must match a trivial reference model under
// random sequences of Insert, Extend, Lookup, table DML and vacuum.

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/predcache/predcache/internal/storage"
)

type refEntry struct {
	epoch      uint64
	depVersion uint64 // 0 = no dep
	covered    map[int]bool
	watermark  int
}

func TestCacheMatchesModel(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		r := rand.New(rand.NewSource(seed))
		tbl := newTestTable(t, "t", 1, 4000)
		dim := newTestTable(t, "d", 1, 100)
		c := NewCache(Config{Kind: RangeIndex, MaxRanges: 1 << 20}) // no reduction: exact
		model := map[string]*refEntry{}
		rows := 4000

		randRanges := func(limit int) ([]storage.RowRange, map[int]bool) {
			var rs []storage.RowRange
			cov := map[int]bool{}
			pos := 0
			for pos < limit && len(rs) < 20 {
				pos += r.Intn(limit/10 + 1)
				ln := 1 + r.Intn(50)
				if pos >= limit {
					break
				}
				end := pos + ln
				if end > limit {
					end = limit
				}
				rs = append(rs, storage.RowRange{Start: pos, End: end})
				for i := pos; i < end; i++ {
					cov[i] = true
				}
				pos = end + 1
			}
			return rs, cov
		}

		for step := 0; step < 200; step++ {
			switch r.Intn(6) {
			case 0: // insert a plain entry
				key := Key{Table: "t", Predicate: fmt.Sprintf("p%d", r.Intn(6))}
				rs, cov := randRanges(rows)
				c.Insert(key, tbl, tbl.LayoutEpoch(), nil, [][]storage.RowRange{rs}, []int{rows})
				model[key.String()] = &refEntry{epoch: tbl.LayoutEpoch(), covered: cov, watermark: rows}
			case 1: // insert a join entry depending on dim
				key := Key{Table: "t", Predicate: fmt.Sprintf("p%d", r.Intn(6)),
					SemiJoins: []SemiJoinKey{{JoinPred: "j", BuildKey: "b"}}}
				rs, cov := randRanges(rows)
				c.Insert(key, tbl, tbl.LayoutEpoch(), []BuildDep{{Table: dim, Version: dim.Version()}},
					[][]storage.RowRange{rs}, []int{rows})
				model[key.String()] = &refEntry{epoch: tbl.LayoutEpoch(), depVersion: dim.Version(), covered: cov, watermark: rows}
			case 2: // extend a random known key
				if len(model) == 0 {
					continue
				}
				var ks string
				for k := range model {
					ks = k
					break
				}
				newWM := model[ks].watermark + 100
				tail := []storage.RowRange{{Start: model[ks].watermark + 10, End: model[ks].watermark + 20}}
				c.Extend(ks, 0, tail, newWM)
				m := model[ks]
				// The model mirrors Extend's staleness check.
				if m.epoch == tbl.LayoutEpoch() && (m.depVersion == 0 || m.depVersion == dim.Version()) {
					for i := tail[0].Start; i < tail[0].End; i++ {
						m.covered[i] = true
					}
					m.watermark = newWM
				} else {
					delete(model, ks)
				}
			case 3: // DML on dim (invalidates join entries lazily)
				dim.BumpVersion()
			case 4: // vacuum t (invalidates everything on t lazily)
				tbl.Vacuum(0)
			case 5: // lookup a random key (possibly unknown)
				key := Key{Table: "t", Predicate: fmt.Sprintf("p%d", r.Intn(8))}
				if r.Intn(2) == 0 {
					key.SemiJoins = []SemiJoinKey{{JoinPred: "j", BuildKey: "b"}}
				}
				ks := key.String()
				cand, hit := c.Lookup(ks)
				m := model[ks]
				valid := m != nil && m.epoch == tbl.LayoutEpoch() &&
					(m.depVersion == 0 || m.depVersion == dim.Version())
				if hit != valid {
					t.Fatalf("seed %d step %d: key %s hit=%v model=%v", seed, step, ks, hit, valid)
				}
				if !valid {
					delete(model, ks)
					continue
				}
				if cand.Watermarks[0] != m.watermark {
					t.Fatalf("seed %d step %d: watermark %d model %d", seed, step, cand.Watermarks[0], m.watermark)
				}
				got := map[int]bool{}
				for _, rr := range cand.PerSlice[0] {
					for i := rr.Start; i < rr.End; i++ {
						got[i] = true
					}
				}
				if len(got) != len(m.covered) {
					t.Fatalf("seed %d step %d: coverage %d model %d", seed, step, len(got), len(m.covered))
				}
				for i := range m.covered {
					if !got[i] {
						t.Fatalf("seed %d step %d: row %d missing", seed, step, i)
					}
				}
			}
		}
	}
}
