// Package workload reproduces the paper's two internal customer workloads
// (§5.3): Workload A, a 44,000-query stream whose predicate-cache hit rate
// climbs after the first ~15,000 queries as the cache warms (Figure 13),
// and Workload B, a ~4,000-scan stream with 401 distinct scans of which 218
// repeat (Figure 14).
//
// Substitution note (DESIGN.md §1): the original workloads replay Redshift
// customer query streams; these generators reproduce their published
// repetition structure against a synthetic events table, which is the only
// property the two figures measure.
package workload

import (
	"fmt"
	"math/rand"

	predcache "github.com/predcache/predcache"
)

// SetupDB creates a database with one "events" table of the given size.
func SetupDB(rows int, seed int64, opts ...predcache.Option) (*predcache.DB, error) {
	db := predcache.Open(opts...)
	schema := predcache.Schema{
		{Name: "id", Type: predcache.Int64},
		{Name: "region", Type: predcache.String},
		{Name: "day", Type: predcache.Date},
		{Name: "qty", Type: predcache.Int64},
		{Name: "amount", Type: predcache.Float64},
	}
	if err := db.CreateTable("events", schema); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(seed))
	b := predcache.NewBatch(schema)
	for i := 0; i < rows; i++ {
		b.Cols[0].Ints = append(b.Cols[0].Ints, int64(i))
		b.Cols[1].Strings = append(b.Cols[1].Strings, fmt.Sprintf("R%02d", r.Intn(20)))
		b.Cols[2].Ints = append(b.Cols[2].Ints, int64(9000+r.Intn(365)))
		b.Cols[3].Ints = append(b.Cols[3].Ints, int64(r.Intn(100)))
		b.Cols[4].Floats = append(b.Cols[4].Floats, float64(r.Intn(10000))/100)
	}
	b.N = rows
	if err := db.Insert("events", b); err != nil {
		return nil, err
	}
	return db, nil
}

// scanSQL renders the SQL text of scan instance `id`. The mixed-radix
// decomposition makes distinct ids yield distinct predicates (injective up
// to 20*330*30*90 = 17.8M instances); identical ids repeat exactly.
func scanSQL(id int) string {
	region := id % 20
	rem := id / 20
	lo := 9000 + rem%330
	rem /= 330
	hi := lo + 3 + rem%30
	rem /= 30
	qty := rem % 90
	return fmt.Sprintf(
		"select count(*) as n, sum(amount) as total from events where region = 'R%02d' and day between %d and %d and qty >= %d",
		region, lo, hi, qty)
}

// --- Workload A ---

// AConfig shapes the Workload A stream.
type AConfig struct {
	TotalQueries  int // paper: 44,000
	WarmupQueries int // paper: hit rate rises after ~15,000
	Seed          int64
}

// DefaultAConfig matches the paper's workload size.
func DefaultAConfig() AConfig {
	return AConfig{TotalQueries: 44000, WarmupQueries: 15000, Seed: 13}
}

// GenerateA returns the query stream: during warmup most queries are fresh
// instances (the cache keeps missing); afterwards the working set is
// established and reuse dominates.
func GenerateA(cfg AConfig) []string {
	r := rand.New(rand.NewSource(cfg.Seed))
	var pool []int
	nextID := 0
	out := make([]string, 0, cfg.TotalQueries)
	for i := 0; i < cfg.TotalQueries; i++ {
		reuse := 0.25
		if i >= cfg.WarmupQueries {
			reuse = 0.92
		}
		var id int
		if len(pool) > 0 && r.Float64() < reuse {
			// Zipf-ish preference for popular instances.
			idx := int(float64(len(pool)) * r.Float64() * r.Float64())
			id = pool[idx]
		} else {
			id = nextID
			nextID++
			pool = append(pool, id)
		}
		out = append(out, scanSQL(id))
	}
	return out
}

// Bucket is one measurement window of a replayed stream.
type Bucket struct {
	StartQuery int
	HitRate    float64
}

// Replay executes the stream and reports the predicate-cache hit rate per
// bucketSize queries — Figure 13's series.
func Replay(db *predcache.DB, queries []string, bucketSize int) ([]Bucket, error) {
	var out []Bucket
	prev := db.CacheStats()
	for start := 0; start < len(queries); start += bucketSize {
		end := start + bucketSize
		if end > len(queries) {
			end = len(queries)
		}
		for _, q := range queries[start:end] {
			if _, err := db.Query(q); err != nil {
				return nil, err
			}
		}
		cur := db.CacheStats()
		dHits := cur.Hits - prev.Hits
		dMisses := cur.Misses - prev.Misses
		rate := 0.0
		if dHits+dMisses > 0 {
			rate = float64(dHits) / float64(dHits+dMisses)
		}
		out = append(out, Bucket{StartQuery: start, HitRate: rate})
		prev = cur
	}
	return out, nil
}

// --- Workload B ---

// BStream is the Workload B scan multiset.
type BStream struct {
	Scans  []string
	counts map[string]int
}

// GenerateB constructs the stream with the paper's published shape:
// 401 distinct scans — 183 singletons, 218 repeating — totalling roughly
// 4,000 scans, of which those repeating >= 10 times account for ~3,243.
func GenerateB(seed int64) *BStream {
	var ids []int
	id := 0
	addCopies := func(n int) {
		for c := 0; c < n; c++ {
			ids = append(ids, id)
		}
		id++
	}
	// 183 singletons.
	for i := 0; i < 183; i++ {
		addCopies(1)
	}
	// 120 scans repeating 2-5 times (deterministic cycle).
	for i := 0; i < 120; i++ {
		addCopies(2 + i%4)
	}
	// 30 scans repeating 6-9 times.
	for i := 0; i < 30; i++ {
		addCopies(6 + i%4)
	}
	// 68 heavy hitters summing to ~3,243 occurrences: a truncated power
	// law with a fixed tail.
	heavy := make([]int, 68)
	remaining := 3243
	for i := range heavy {
		c := 10 + (68-i)*(68-i)/55
		heavy[i] = c
		remaining -= c
	}
	// Distribute the remainder over the largest hitters.
	for i := 0; remaining != 0; i = (i + 1) % 8 {
		if remaining > 0 {
			heavy[i]++
			remaining--
		} else {
			if heavy[i] > 10 {
				heavy[i]--
				remaining++
			}
		}
	}
	for _, c := range heavy {
		addCopies(c)
	}
	r := rand.New(rand.NewSource(seed))
	r.Shuffle(len(ids), func(a, b int) { ids[a], ids[b] = ids[b], ids[a] })

	s := &BStream{counts: make(map[string]int)}
	for _, id := range ids {
		q := scanSQL(id)
		s.Scans = append(s.Scans, q)
		s.counts[q]++
	}
	return s
}

// Stats summarizes the stream the way Figure 14 does.
type BStats struct {
	TotalScans    int
	DistinctScans int
	Singletons    int
	Repeating     int
	// Histogram buckets: repetition count class -> (distinct scans, total
	// scans), for the figure's left plot / right table.
	Distinct map[string]int
	Totals   map[string]int
}

// Stats computes the repetition histogram.
func (s *BStream) Stats() BStats {
	st := BStats{
		TotalScans:    len(s.Scans),
		DistinctScans: len(s.counts),
		Distinct:      make(map[string]int),
		Totals:        make(map[string]int),
	}
	bucket := func(c int) string {
		switch {
		case c == 1:
			return "1"
		case c < 10:
			return "2-9"
		case c < 100:
			return "10-99"
		default:
			return "100+"
		}
	}
	for _, c := range s.counts {
		if c == 1 {
			st.Singletons++
		} else {
			st.Repeating++
		}
		st.Distinct[bucket(c)]++
		st.Totals[bucket(c)] += c
	}
	return st
}
