package workload

import (
	"testing"

	predcache "github.com/predcache/predcache"
)

func TestSetupDB(t *testing.T) {
	db, err := SetupDB(5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if db.TableRows("events") != 5000 {
		t.Fatal("rows")
	}
	res, err := db.Query("select count(*) from events where region = 'R01'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Col(0).Ints[0] == 0 {
		t.Fatal("no R01 rows")
	}
}

func TestScanSQLStable(t *testing.T) {
	if scanSQL(7) != scanSQL(7) {
		t.Fatal("same id differs")
	}
	if scanSQL(7) == scanSQL(8) {
		t.Fatal("distinct ids collide")
	}
}

func TestWorkloadAWarmsUp(t *testing.T) {
	db, err := SetupDB(20000, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := AConfig{TotalQueries: 3000, WarmupQueries: 1500, Seed: 3}
	stream := GenerateA(cfg)
	if len(stream) != 3000 {
		t.Fatal("stream size")
	}
	buckets, err := Replay(db, stream, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets) != 6 {
		t.Fatalf("%d buckets", len(buckets))
	}
	// Figure 13's shape: the post-warmup hit rate clearly exceeds the
	// early hit rate.
	early := buckets[0].HitRate
	late := buckets[len(buckets)-1].HitRate
	if late < early+0.2 {
		t.Fatalf("no warmup effect: early %.3f late %.3f", early, late)
	}
	if late < 0.6 {
		t.Fatalf("late hit rate %.3f too low", late)
	}
}

func TestWorkloadAResultsCorrect(t *testing.T) {
	// Cached and uncached replays must agree query by query.
	dbCached, err := SetupDB(10000, 4)
	if err != nil {
		t.Fatal(err)
	}
	dbCold, err := SetupDB(10000, 4, predcache.WithoutPredicateCache())
	if err != nil {
		t.Fatal(err)
	}
	stream := GenerateA(AConfig{TotalQueries: 300, WarmupQueries: 100, Seed: 5})
	for i, q := range stream {
		a, err := dbCached.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := dbCold.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if a.Col(0).Ints[0] != b.Col(0).Ints[0] {
			t.Fatalf("query %d: cached %d vs cold %d rows", i, a.Col(0).Ints[0], b.Col(0).Ints[0])
		}
	}
}

func TestWorkloadBShape(t *testing.T) {
	s := GenerateB(6)
	st := s.Stats()
	if st.DistinctScans != 401 {
		t.Fatalf("distinct %d want 401", st.DistinctScans)
	}
	if st.Singletons != 183 || st.Repeating != 218 {
		t.Fatalf("singletons %d repeating %d", st.Singletons, st.Repeating)
	}
	if st.TotalScans < 3900 || st.TotalScans > 4150 {
		t.Fatalf("total %d not ~4000", st.TotalScans)
	}
	heavy := st.Totals["10-99"] + st.Totals["100+"]
	if heavy < 3100 || heavy > 3400 {
		t.Fatalf("scans repeating >=10 times account for %d, want ~3243", heavy)
	}
	// >90% of scans repeat (paper: "more than 90% of the scans repeat").
	repeatShare := float64(st.TotalScans-st.Singletons) / float64(st.TotalScans)
	if repeatShare < 0.9 {
		t.Fatalf("repeat share %.3f", repeatShare)
	}
}

func TestWorkloadBReplayHitRate(t *testing.T) {
	db, err := SetupDB(10000, 7)
	if err != nil {
		t.Fatal(err)
	}
	s := GenerateB(8)
	if _, err := Replay(db, s.Scans, len(s.Scans)); err != nil {
		t.Fatal(err)
	}
	st := db.CacheStats()
	rate := float64(st.Hits) / float64(st.Hits+st.Misses)
	// Paper: hit rates up to 90% on customer workloads.
	if rate < 0.85 {
		t.Fatalf("hit rate %.3f too low", rate)
	}
}
