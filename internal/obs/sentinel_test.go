package obs

import (
	"testing"
	"time"
)

// growthWindow builds a Window-sized sample window whose goroutine count
// grows by step per sample starting at base.
func growthWindow(n int, base, step int64) []RuntimeSample {
	out := make([]RuntimeSample, n)
	for i := range out {
		out[i] = RuntimeSample{
			TSMicros:   int64(i + 1),
			Goroutines: base + int64(i)*step,
		}
	}
	return out
}

func alertsFor(log *AlertLog, sentinel string) []Alert {
	var out []Alert
	for _, a := range log.Alerts() {
		if a.Sentinel == sentinel {
			out = append(out, a)
		}
	}
	return out
}

func TestSentinelGoroutineGrowthFiresOnceThenClears(t *testing.T) {
	log := NewAlertLog(0)
	s := NewSentinels(SentinelConfig{Window: 5, GoroutineGrowth: 100}, log, nil)

	// Monotone growth of 200 over the window: one firing transition.
	s.Evaluate(growthWindow(5, 10, 50))
	got := alertsFor(log, SentinelGoroutines)
	if len(got) != 1 || got[0].State != AlertFiring {
		t.Fatalf("after growth window: alerts = %+v, want one firing", got)
	}
	if got[0].Value != 200 || got[0].Threshold != 100 {
		t.Fatalf("firing alert value/threshold = %d/%d, want 200/100", got[0].Value, got[0].Threshold)
	}
	if !s.Active(SentinelGoroutines) {
		t.Fatal("sentinel should be active after firing")
	}

	// Still growing: hysteresis suppresses a second alert.
	s.Evaluate(growthWindow(5, 210, 50))
	if got := alertsFor(log, SentinelGoroutines); len(got) != 1 {
		t.Fatalf("persistent growth re-fired: %d alerts, want 1", len(got))
	}

	// Between half and full threshold: neither fires nor clears.
	s.Evaluate(growthWindow(5, 400, 20)) // delta 80, threshold/2 = 50
	if got := alertsFor(log, SentinelGoroutines); len(got) != 1 {
		t.Fatalf("mid-band window transitioned: %d alerts, want 1", len(got))
	}
	if !s.Active(SentinelGoroutines) {
		t.Fatal("sentinel should stay active in the hysteresis band")
	}

	// Flat window (delta 0 <= threshold/2): clears exactly once.
	s.Evaluate(growthWindow(5, 400, 0))
	got = alertsFor(log, SentinelGoroutines)
	if len(got) != 2 || got[1].State != AlertCleared {
		t.Fatalf("after flat window: alerts = %+v, want firing then cleared", got)
	}
	if s.Active(SentinelGoroutines) {
		t.Fatal("sentinel should be inactive after clearing")
	}
}

func TestSentinelSteadyStateNeverFires(t *testing.T) {
	log := NewAlertLog(0)
	s := NewSentinels(SentinelConfig{Window: 5, GoroutineGrowth: 100, HeapGrowthBytes: 1 << 20}, log, nil)

	for i := 0; i < 20; i++ {
		win := growthWindow(5, 500, 0)
		for j := range win {
			win[j].HeapAllocBytes = 64 << 20 // large but flat
		}
		s.Evaluate(win)
	}
	if n := log.Len(); n != 0 {
		t.Fatalf("steady state recorded %d alerts: %+v", n, log.Alerts())
	}
}

func TestSentinelSpikyGrowthIsNotMonotone(t *testing.T) {
	log := NewAlertLog(0)
	s := NewSentinels(SentinelConfig{Window: 5, GoroutineGrowth: 100}, log, nil)

	// Net delta 300 but with a dip mid-window: a reclaiming workload, not a
	// leak — must not fire.
	win := growthWindow(5, 10, 100)
	win[2].Goroutines = 5
	s.Evaluate(win)
	if n := log.Len(); n != 0 {
		t.Fatalf("non-monotone window fired: %+v", log.Alerts())
	}
}

func TestSentinelShortWindowSkipped(t *testing.T) {
	log := NewAlertLog(0)
	s := NewSentinels(SentinelConfig{Window: 5, GoroutineGrowth: 10}, log, nil)
	s.Evaluate(growthWindow(3, 0, 1000))
	if n := log.Len(); n != 0 {
		t.Fatalf("short window evaluated: %+v", log.Alerts())
	}
}

func TestSentinelHeapGrowthFires(t *testing.T) {
	log := NewAlertLog(0)
	s := NewSentinels(SentinelConfig{Window: 3, HeapGrowthBytes: 1 << 20}, log, nil)

	win := make([]RuntimeSample, 3)
	for i := range win {
		win[i] = RuntimeSample{TSMicros: int64(i + 1), HeapAllocBytes: int64(i) * (1 << 20)}
	}
	s.Evaluate(win)
	got := alertsFor(log, SentinelHeap)
	if len(got) != 1 || got[0].State != AlertFiring {
		t.Fatalf("heap growth alerts = %+v, want one firing", got)
	}
}

func TestSentinelPoolChurn(t *testing.T) {
	log := NewAlertLog(0)
	s := NewSentinels(SentinelConfig{Window: 2, PoolChurnRatio: 0.5, PoolChurnMinGets: 100}, log, nil)

	// Healthy pool: plenty of gets, few news.
	s.Evaluate([]RuntimeSample{
		{TSMicros: 1, PoolGets: 0, PoolNews: 0},
		{TSMicros: 2, PoolGets: 1000, PoolNews: 10},
	})
	if n := log.Len(); n != 0 {
		t.Fatalf("healthy pool fired: %+v", log.Alerts())
	}

	// Churning pool: 80% of gets allocated fresh.
	s.Evaluate([]RuntimeSample{
		{TSMicros: 3, PoolGets: 1000, PoolNews: 10},
		{TSMicros: 4, PoolGets: 2000, PoolNews: 810},
	})
	got := alertsFor(log, SentinelPoolChurn)
	if len(got) != 1 || got[0].State != AlertFiring {
		t.Fatalf("churning pool alerts = %+v, want one firing", got)
	}
	if got[0].Value != 80 {
		t.Fatalf("churn value = %d%%, want 80%%", got[0].Value)
	}

	// Below min gets: too little traffic to judge, and 0% churn clears.
	s.Evaluate([]RuntimeSample{
		{TSMicros: 5, PoolGets: 2000, PoolNews: 810},
		{TSMicros: 6, PoolGets: 2010, PoolNews: 810},
	})
	got = alertsFor(log, SentinelPoolChurn)
	if len(got) != 2 || got[1].State != AlertCleared {
		t.Fatalf("alerts = %+v, want firing then cleared", got)
	}
}

func TestSentinelNilSafety(t *testing.T) {
	var s *Sentinels
	s.Evaluate(growthWindow(5, 0, 1000)) // must not panic
	if s.Active(SentinelGoroutines) {
		t.Fatal("nil sentinels reported active")
	}
	var l *AlertLog
	l.Record(Alert{})
	if l.Len() != 0 || l.Alerts() != nil || l.Total() != 0 {
		t.Fatal("nil alert log retained something")
	}
}

func TestAlertLogRingOverwritesOldest(t *testing.T) {
	log := NewAlertLog(4)
	for i := 0; i < 10; i++ {
		log.Record(Alert{TSMicros: int64(i)})
	}
	got := log.Alerts()
	if len(got) != 4 {
		t.Fatalf("ring retained %d, want 4", len(got))
	}
	for i, a := range got {
		if want := int64(6 + i); a.TSMicros != want {
			t.Fatalf("ring[%d].TSMicros = %d, want %d", i, a.TSMicros, want)
		}
	}
	if log.Total() != 10 {
		t.Fatalf("total = %d, want 10", log.Total())
	}
}

// TestSentinelThroughCollector drives the real sampling path: a collector
// wired with sentinels observes an induced goroutine leak via SampleNow.
func TestSentinelThroughCollector(t *testing.T) {
	log := NewAlertLog(0)
	sent := NewSentinels(SentinelConfig{Window: 3, GoroutineGrowth: 8}, log, nil)
	// An hour-long ticker keeps the background goroutine out of the test;
	// SampleNow drives sampling deterministically.
	c := StartRuntimeCollectorWith(time.Hour, nil, sent)
	defer c.Stop()

	stop := make(chan struct{})
	defer close(stop)
	for i := 0; i < 3; i++ {
		for j := 0; j < 10; j++ {
			// pclint:allow goroutinectx: leak fixture, joined via stop at test end
			go func() { <-stop }()
		}
		c.SampleNow()
	}
	if !sent.Active(SentinelGoroutines) {
		t.Fatalf("goroutine sentinel did not fire; samples = %+v", c.Samples())
	}
	got := alertsFor(log, SentinelGoroutines)
	if len(got) == 0 || got[0].State != AlertFiring {
		t.Fatalf("alerts = %+v, want a firing goroutine_growth", got)
	}
}
