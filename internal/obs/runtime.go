package obs

import (
	"context"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"
)

// RuntimeSample is one reading of process health: goroutines, heap, RSS, GC
// work, and the engine's pool efficiency. pc.runtime serves one row per
// retained sample.
type RuntimeSample struct {
	TSMicros       int64 // wall-clock sample time, µs since the Unix epoch
	Goroutines     int64 // live goroutines
	HeapAllocBytes int64 // bytes of allocated heap objects
	HeapSysBytes   int64 // heap memory obtained from the OS
	RSSBytes       int64 // resident set size (0 where /proc is unavailable)
	GCCycles       int64 // completed GC cycles
	GCPauseNs      int64 // cumulative stop-the-world pause time
	PoolGets       int64 // scan-scratch pool acquisitions
	PoolNews       int64 // acquisitions that had to allocate a fresh scratch
}

// DefaultRuntimeInterval is the sampling cadence StartRuntimeCollector uses
// when given a non-positive interval.
const DefaultRuntimeInterval = time.Second

// defaultRuntimeCapacity bounds the sample ring: an hour of history at the
// default cadence.
const defaultRuntimeCapacity = 3600

// RuntimeCollector samples process health on a ticker into a bounded ring.
// A nil collector is valid and empty (never started). Samples also land in
// a metrics registry when RegisterMetrics wired one: the gauges read the
// latest retained sample, so scrapes never trigger a ReadMemStats of their
// own.
type RuntimeCollector struct {
	mu   sync.Mutex
	ring []RuntimeSample // guarded by mu; fixed capacity
	next int             // guarded by mu
	n    int             // guarded by mu

	// pools reads the engine's scratch-pool counters, nil when not wired.
	pools func() (gets, news int64) // immutable after construction

	// sent, when wired, evaluates the leak sentinels against the freshest
	// sample window after every SampleNow. Nil checks nothing.
	sent *Sentinels // immutable after construction

	cancel context.CancelFunc // immutable after StartRuntimeCollector
	done   chan struct{}      // closed when the sampling goroutine exits
}

// StartRuntimeCollector begins sampling every interval (<= 0 selects
// DefaultRuntimeInterval) until Stop. pools may be nil; when set it supplies
// the scan-scratch pool counters recorded with each sample.
func StartRuntimeCollector(interval time.Duration, pools func() (gets, news int64)) *RuntimeCollector {
	return StartRuntimeCollectorWith(interval, pools, nil)
}

// StartRuntimeCollectorWith is StartRuntimeCollector plus a sentinel set:
// after every retained sample the freshest window is handed to sent.Evaluate,
// so the watchdogs run on the sampling cadence without their own goroutine.
func StartRuntimeCollectorWith(interval time.Duration, pools func() (gets, news int64), sent *Sentinels) *RuntimeCollector {
	if interval <= 0 {
		interval = DefaultRuntimeInterval
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := &RuntimeCollector{
		ring:   make([]RuntimeSample, defaultRuntimeCapacity),
		pools:  pools,
		sent:   sent,
		cancel: cancel,
		done:   make(chan struct{}),
	}
	c.SampleNow() // the first row is available immediately
	go c.run(ctx, interval)
	return c
}

// run samples until the collector's context is cancelled (Stop).
func (c *RuntimeCollector) run(ctx context.Context, interval time.Duration) {
	defer close(c.done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			c.SampleNow()
		}
	}
}

// Stop terminates the sampling goroutine and waits for it to exit. Safe to
// call more than once; a nil collector is a no-op.
func (c *RuntimeCollector) Stop() {
	if c == nil {
		return
	}
	c.cancel()
	<-c.done
}

// ReadRuntimeSample computes one health reading without retaining it
// anywhere. pools may be nil.
func ReadRuntimeSample(pools func() (gets, news int64)) RuntimeSample {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s := RuntimeSample{
		TSMicros:       time.Now().UnixMicro(),
		Goroutines:     int64(runtime.NumGoroutine()),
		HeapAllocBytes: int64(ms.HeapAlloc),
		HeapSysBytes:   int64(ms.HeapSys),
		RSSBytes:       readRSSBytes(),
		GCCycles:       int64(ms.NumGC),
		GCPauseNs:      int64(ms.PauseTotalNs),
	}
	if pools != nil {
		s.PoolGets, s.PoolNews = pools()
	}
	return s
}

// SampleNow takes one sample synchronously, retains it, and returns it
// (tests and the ticker share this path).
func (c *RuntimeCollector) SampleNow() RuntimeSample {
	if c == nil {
		return RuntimeSample{}
	}
	s := ReadRuntimeSample(c.pools)
	c.mu.Lock()
	c.ring[c.next] = s
	c.next = (c.next + 1) % len(c.ring)
	if c.n < len(c.ring) {
		c.n++
	}
	var win []RuntimeSample
	if c.sent != nil {
		// Gather the freshest sentinel window (oldest first) while the lock is
		// held; Evaluate runs outside it — it takes the sentinels' own lock and
		// may emit log lines.
		w := c.sent.Window()
		if w > c.n {
			w = c.n
		}
		win = make([]RuntimeSample, 0, w)
		start := c.next - w
		if start < 0 {
			start += len(c.ring)
		}
		for i := 0; i < w; i++ {
			win = append(win, c.ring[(start+i)%len(c.ring)])
		}
	}
	c.mu.Unlock()
	if c.sent != nil {
		c.sent.Evaluate(win)
	}
	return s
}

// Samples returns the retained samples, oldest first.
func (c *RuntimeCollector) Samples() []RuntimeSample {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]RuntimeSample, 0, c.n)
	start := c.next - c.n
	if start < 0 {
		start += len(c.ring)
	}
	for i := 0; i < c.n; i++ {
		out = append(out, c.ring[(start+i)%len(c.ring)])
	}
	return out
}

// Last returns the most recent sample (zero value when none).
func (c *RuntimeCollector) Last() RuntimeSample {
	if c == nil {
		return RuntimeSample{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.n == 0 {
		return RuntimeSample{}
	}
	i := c.next - 1
	if i < 0 {
		i += len(c.ring)
	}
	return c.ring[i]
}

// RegisterMetrics exposes the collector's latest sample as gauges: these
// never call ReadMemStats at scrape time — they read what the ticker already
// paid for.
func (c *RuntimeCollector) RegisterMetrics(m *Metrics) {
	if c == nil {
		return
	}
	RegisterSamplerMetrics(m, func() *RuntimeCollector { return c })
}

// RegisterSamplerMetrics registers the runtime-health instruments against
// whichever collector source returns at scrape time (nil reads as zeros), so
// a registry outlives sampler restarts.
func RegisterSamplerMetrics(m *Metrics, source func() *RuntimeCollector) {
	m.NewGauge("predcache_runtime_goroutines", "Live goroutines at the last runtime sample.", func() float64 {
		return float64(source().Last().Goroutines)
	})
	m.NewGauge("predcache_runtime_heap_alloc_bytes", "Heap bytes at the last runtime sample.", func() float64 {
		return float64(source().Last().HeapAllocBytes)
	})
	m.NewGauge("predcache_runtime_rss_bytes", "Resident set size at the last runtime sample.", func() float64 {
		return float64(source().Last().RSSBytes)
	})
	m.NewCounterFunc("predcache_runtime_gc_pause_ns_total", "Cumulative GC stop-the-world pause time.", func() int64 {
		return source().Last().GCPauseNs
	})
	m.NewCounterFunc("predcache_runtime_pool_gets_total", "Scan-scratch pool acquisitions at the last sample.", func() int64 {
		return source().Last().PoolGets
	})
	m.NewCounterFunc("predcache_runtime_pool_news_total", "Scan-scratch acquisitions that allocated a fresh scratch.", func() int64 {
		return source().Last().PoolNews
	})
}

// readRSSBytes reads the resident set size from /proc/self/statm (field 2,
// in pages). Returns 0 on platforms or sandboxes without procfs — the
// column is then 0 rather than the collector failing.
func readRSSBytes() int64 {
	data, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0
	}
	fields := strings.Fields(string(data))
	if len(fields) < 2 {
		return 0
	}
	pages, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return 0
	}
	return pages * int64(os.Getpagesize())
}
