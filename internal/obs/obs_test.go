package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestTraceNesting(t *testing.T) {
	tr := NewTrace()
	root := tr.Begin(KindPhase, "execute")
	child := tr.Begin(KindNode, "Scan t")
	child.SetInt("rows.out", 42)
	grand := tr.Begin(KindCache, "cache lookup")
	grand.SetStr("outcome", "hit")
	grand.End()
	child.End()
	sib := tr.Begin(KindNode, "Agg")
	sib.End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	if spans[0].Parent != -1 || spans[1].Parent != spans[0].ID ||
		spans[2].Parent != spans[1].ID || spans[3].Parent != spans[0].ID {
		t.Fatalf("bad parentage: %+v", spans)
	}
	if v, ok := spans[1].IntAttr("rows.out"); !ok || v != 42 {
		t.Fatalf("rows.out attr = %d,%v", v, ok)
	}
	if s, ok := spans[2].StrAttr("outcome"); !ok || s != "hit" {
		t.Fatalf("outcome attr = %q,%v", s, ok)
	}
	for i, sp := range spans {
		if sp.Dur <= 0 {
			t.Fatalf("span %d not ended: %+v", i, sp)
		}
	}
	if out := tr.Render(); !strings.Contains(out, "Scan t") || !strings.Contains(out, "outcome=hit") {
		t.Fatalf("render missing content:\n%s", out)
	}
}

func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	sp := tr.Begin(KindNode, "x")
	sp.SetInt("a", 1)
	sp.SetStr("b", "c")
	sp.End()
	child := tr.BeginChild(sp, KindSlice, "y")
	child.End()
	if tr.Spans() != nil || tr.Render() != "" {
		t.Fatal("nil trace produced output")
	}
	// Zero SpanRef on a live trace must also be inert.
	live := NewTrace()
	live.BeginChild(SpanRef{}, KindSlice, "root-child")
	if spans := live.Spans(); len(spans) != 1 || spans[0].Parent != -1 {
		t.Fatalf("zero-parent child: %+v", spans)
	}
}

func TestTraceConcurrentChildren(t *testing.T) {
	tr := NewTrace()
	parent := tr.Begin(KindNode, "Scan")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := tr.BeginChild(parent, KindSlice, "slice")
			sp.SetInt("i", int64(i))
			sp.End()
		}(i)
	}
	wg.Wait()
	parent.End()
	spans := tr.Spans()
	if len(spans) != 9 {
		t.Fatalf("got %d spans, want 9", len(spans))
	}
	for _, sp := range spans[1:] {
		if sp.Parent != spans[0].ID {
			t.Fatalf("child parent = %d", sp.Parent)
		}
	}
}

func newTestRegistry() *Metrics {
	m := NewMetrics()
	c := m.NewCounter("test_queries_total", "Queries executed.")
	c.Add(3)
	m.NewCounterFunc("test_pull_total", "Pull counter.", func() int64 { return 7 })
	m.NewGauge("test_entries", "Entries right now.", func() float64 { return 2.5 })
	h := m.NewHistogram("test_seconds", "Latencies.", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)
	return m
}

func TestPrometheusExposition(t *testing.T) {
	m := newTestRegistry()
	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if err := ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("self-validation failed: %v\n%s", err, out)
	}
	for _, want := range []string{
		"# TYPE test_queries_total counter",
		"test_queries_total 3",
		"test_pull_total 7",
		"test_entries 2.5",
		`test_seconds_bucket{le="0.1"} 2`,
		`test_seconds_bucket{le="+Inf"} 3`,
		"test_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestJSONExport(t *testing.T) {
	m := newTestRegistry()
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var obj map[string]any
	if err := json.Unmarshal(buf.Bytes(), &obj); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if obj["test_queries_total"].(float64) != 3 {
		t.Fatalf("counter = %v", obj["test_queries_total"])
	}
	hist := obj["test_seconds"].(map[string]any)
	if hist["count"].(float64) != 3 {
		t.Fatalf("histogram count = %v", hist["count"])
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	m := NewMetrics()
	a := m.NewCounter("x_total", "x")
	b := m.NewCounter("x_total", "x")
	if a != b {
		t.Fatal("re-registration returned a new counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	m.NewGauge("x_total", "x", func() float64 { return 0 })
}

func TestValidateExpositionRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"bad name":         "9bad_name 1\n",
		"bad value":        "metric_a not_a_number\n",
		"unclosed labels":  "metric_a{le=\"0.1 1\n",
		"unquoted label":   "metric_a{le=0.1} 1\n",
		"bad type":         "# TYPE metric_a countr\nmetric_a 1\n",
		"duplicate type":   "# TYPE m_a counter\n# TYPE m_a counter\nm_a 1\n",
		"type after data":  "m_a 1\n# TYPE m_a counter\n",
		"empty exposition": "\n",
		"trailing junk":    "metric_a 1 12345 extra\n",
	}
	for name, in := range cases {
		if err := ValidateExposition([]byte(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
	good := "# HELP m_a help text\n# TYPE m_a counter\nm_a 12\nm_b{x=\"y\",z=\"w\"} 1.5 1700000000\n"
	if err := ValidateExposition([]byte(good)); err != nil {
		t.Errorf("rejected valid exposition: %v", err)
	}
}

func TestHTTPServer(t *testing.T) {
	m := newTestRegistry()
	sample := ReadRuntimeSample(nil)
	RegisterRuntimeMetrics(m, func() RuntimeSample { return sample })
	srv, err := StartServer("127.0.0.1:0", m)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (string, []byte) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return resp.Header.Get("Content-Type"), body
	}

	ct, body := get("/metrics")
	if !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	if err := ValidateExposition(body); err != nil {
		t.Fatalf("served exposition invalid: %v", err)
	}
	if !bytes.Contains(body, []byte("go_goroutines")) {
		t.Fatal("runtime metrics missing")
	}
	_, body = get("/metrics.json")
	var obj map[string]any
	if err := json.Unmarshal(body, &obj); err != nil {
		t.Fatalf("metrics.json: %v", err)
	}
	_, body = get("/debug/pprof/")
	if !bytes.Contains(body, []byte("profile")) {
		t.Fatal("pprof index missing")
	}
}

func TestHistogramBuckets(t *testing.T) {
	m := NewMetrics()
	h := m.NewHistogram("h_seconds", "h", DefBuckets)
	for _, v := range []float64{0.00005, 0.0001, 0.3, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// 0.00005 and 0.0001 both land in the le="0.0001" bucket (cumulative).
	if !strings.Contains(out, `h_seconds_bucket{le="0.0001"} 2`) {
		t.Fatalf("bucket boundaries wrong:\n%s", out)
	}
	if !strings.Contains(out, `h_seconds_bucket{le="+Inf"} 4`) {
		t.Fatalf("+Inf bucket wrong:\n%s", out)
	}
	if err := ValidateExposition(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
}
