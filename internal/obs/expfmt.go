package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
)

// scanBufPool recycles the 1 MiB line buffers ValidateExposition hands its
// bufio.Scanner; without it every scrape validation allocates a fresh
// megabyte.
var scanBufPool = sync.Pool{New: func() any {
	b := make([]byte, 1<<20)
	return &b
}}

// ValidateExposition checks that data is well-formed Prometheus text
// exposition format (version 0.0.4): every line is a # HELP / # TYPE
// comment, a sample `name[{labels}] value [timestamp]`, or blank; metric
// names are legal; label values are properly quoted; sample values parse as
// floats; a family's TYPE appears at most once and before its samples. The
// CI smoke job and the metrics tests run every scrape through it.
func ValidateExposition(data []byte) error {
	buf := scanBufPool.Get().(*[]byte)
	defer scanBufPool.Put(buf)
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(*buf, 1<<20)
	typed := make(map[string]string)
	seen := make(map[string]bool) // families with at least one sample
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := validateComment(line, typed, seen); err != nil {
				return fmt.Errorf("obs: exposition line %d: %w", lineNo, err)
			}
			continue
		}
		if err := validateSample(line, typed, seen); err != nil {
			return fmt.Errorf("obs: exposition line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("obs: exposition scan: %w", err)
	}
	if len(seen) == 0 {
		return fmt.Errorf("obs: exposition contains no samples")
	}
	return nil
}

var validTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true, "summary": true, "untyped": true,
}

func validateComment(line string, typed map[string]string, seen map[string]bool) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment: allowed
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed HELP comment %q", line)
		}
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("malformed TYPE comment %q", line)
		}
		name, typ := fields[2], strings.TrimSpace(fields[3])
		if !validMetricName(name) {
			return fmt.Errorf("TYPE for invalid metric name %q", name)
		}
		if !validTypes[typ] {
			return fmt.Errorf("unknown metric type %q for %s", typ, name)
		}
		if _, dup := typed[name]; dup {
			return fmt.Errorf("duplicate TYPE for %s", name)
		}
		if seen[name] {
			return fmt.Errorf("TYPE for %s after its samples", name)
		}
		typed[name] = typ
	}
	return nil
}

func validateSample(line string, typed map[string]string, seen map[string]bool) error {
	rest := line
	// Metric name.
	i := 0
	for i < len(rest) && rest[i] != '{' && rest[i] != ' ' {
		i++
	}
	name := rest[:i]
	if !validMetricName(name) {
		return fmt.Errorf("invalid metric name in sample %q", line)
	}
	rest = rest[i:]
	// Optional label set.
	if strings.HasPrefix(rest, "{") {
		end, err := scanLabels(rest)
		if err != nil {
			return fmt.Errorf("sample %q: %w", line, err)
		}
		rest = rest[end:]
	}
	// Value and optional timestamp.
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return fmt.Errorf("sample %q: want value [timestamp]", line)
	}
	if _, err := parseSampleValue(fields[0]); err != nil {
		return fmt.Errorf("sample %q: bad value: %w", line, err)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return fmt.Errorf("sample %q: bad timestamp: %w", line, err)
		}
	}
	// A histogram family's samples use the _bucket/_sum/_count suffixes;
	// map them back to the declared family for TYPE bookkeeping.
	seen[familyName(name, typed)] = true
	return nil
}

// familyName strips histogram/summary sample suffixes when the base name
// has a declared TYPE.
func familyName(name string, typed map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name {
			if t, ok := typed[base]; ok && (t == "histogram" || t == "summary") {
				return base
			}
		}
	}
	return name
}

// scanLabels validates a {name="value",...} label block and returns the
// index just past the closing brace.
func scanLabels(s string) (int, error) {
	i := 1 // past '{'
	for {
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label set")
		}
		if s[i] == '}' {
			return i + 1, nil
		}
		// Label name.
		start := i
		for i < len(s) && s[i] != '=' {
			i++
		}
		lname := s[start:i]
		if !validLabelName(lname) {
			return 0, fmt.Errorf("invalid label name %q", lname)
		}
		i++ // '='
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("label %s: value not quoted", lname)
		}
		i++
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' {
				i++
			}
			i++
		}
		if i >= len(s) {
			return 0, fmt.Errorf("label %s: unterminated value", lname)
		}
		i++ // closing quote
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}

func validLabelName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}

func parseSampleValue(s string) (float64, error) {
	// Non-finite sample values are syntactically legal in the exposition
	// format, but every metric this engine exports is a count, byte size or
	// duration — a NaN or infinite sample means a broken gauge function (e.g.
	// a ratio dividing by zero), so the validator rejects them rather than
	// letting a malformed-looking scrape reach a collector. Histogram
	// le="+Inf" bucket bounds are label values and are unaffected.
	switch s {
	case "+Inf", "-Inf", "NaN", "+NaN", "-NaN", "Inf":
		return 0, fmt.Errorf("non-finite sample value %q", s)
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("parse %q: %w", s, err)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("non-finite sample value %q", s)
	}
	return v, nil
}
