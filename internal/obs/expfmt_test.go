package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// The satellite edge cases for the exposition validator: names that would
// need escaping, empty histograms, and non-finite gauge values.

func TestValidateExpositionRejectsUnescapableNames(t *testing.T) {
	cases := map[string]string{
		"dash":          "bad-name 1\n",
		"dot":           "bad.name 1\n",
		"leading digit": "1bad 1\n",
		"space in name": "bad name{x=\"y\"} 1\n", // parses as name "bad", junk after
		"unicode":       "caf\xc3\xa9_total 1\n",
		"empty name":    " 1\n",
		"help bad name": "# HELP bad-name something\nok_total 1\n",
		"type bad name": "# TYPE bad-name counter\nok_total 1\n",
	}
	for name, in := range cases {
		if err := ValidateExposition([]byte(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
	// Colons are legal in metric names (recording-rule style).
	if err := ValidateExposition([]byte("job:rate5m 1\n")); err != nil {
		t.Errorf("rejected colon name: %v", err)
	}
}

func TestEmptyHistogramExposition(t *testing.T) {
	m := NewMetrics()
	m.NewHistogram("idle_seconds", "Never observed.", []float64{0.1, 1})
	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if err := ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("empty histogram fails validation: %v\n%s", err, out)
	}
	for _, want := range []string{
		`idle_seconds_bucket{le="+Inf"} 0`,
		"idle_seconds_sum 0",
		"idle_seconds_count 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// The flat view agrees: count and sum rows, both zero.
	samples := m.Samples()
	if len(samples) != 2 || samples[0].Value != 0 || samples[1].Value != 0 {
		t.Errorf("Samples() = %+v", samples)
	}
}

func TestNonFiniteGaugeFailsValidation(t *testing.T) {
	for name, v := range map[string]float64{
		"NaN":  math.NaN(),
		"+Inf": math.Inf(1),
		"-Inf": math.Inf(-1),
	} {
		m := NewMetrics()
		m.NewGauge("broken_ratio", "A gauge dividing by zero.", func() float64 { return v })
		var buf bytes.Buffer
		if err := m.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		if err := ValidateExposition(buf.Bytes()); err == nil {
			t.Errorf("%s gauge passed validation:\n%s", name, buf.String())
		}
	}
	// Histogram +Inf bucket bounds are label values, not sample values, and
	// must stay legal.
	if err := ValidateExposition([]byte("# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1.5\nh_count 3\n")); err != nil {
		t.Errorf("le=\"+Inf\" label rejected: %v", err)
	}
}
