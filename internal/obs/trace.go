// Package obs is the engine's zero-dependency observability layer: per-query
// trace spans (parse → plan → per-node execute → per-slice scan → cache
// events), a counter/gauge/histogram metrics registry with Prometheus text
// and JSON export, and an optional net/http endpoint serving both alongside
// pprof. Everything is stdlib-only.
//
// The tracing API is nil-safe by design: every method on a nil *Trace or a
// zero SpanRef is a no-op, so instrumented hot paths pay a single branch
// when tracing is disabled.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span kinds used by the engine. The renderer treats them uniformly; they
// exist so consumers (EXPLAIN ANALYZE, tests) can filter.
const (
	KindPhase = "phase" // parse, plan, execute
	KindNode  = "node"  // one plan-operator execution
	KindSlice = "slice" // one data slice of a scan
	KindCache = "cache" // predicate-cache lookup/insert/extend/evict/invalidate
)

// Attr is one key/value annotation on a span. Exactly one of Int/Str is
// meaningful, selected by IsStr.
type Attr struct {
	Key   string
	Int   int64
	Str   string
	IsStr bool
}

// Span is one timed interval of a query trace. Start is the offset from the
// trace's creation; Dur is zero until the span ends.
type Span struct {
	ID     int
	Parent int // span ID, or -1 for roots
	Kind   string
	Name   string
	Start  time.Duration
	Dur    time.Duration
	Attrs  []Attr
}

// IntAttr returns the integer attribute named key, or (0, false).
func (s *Span) IntAttr(key string) (int64, bool) {
	for _, a := range s.Attrs {
		if a.Key == key && !a.IsStr {
			return a.Int, true
		}
	}
	return 0, false
}

// StrAttr returns the string attribute named key, or ("", false).
func (s *Span) StrAttr(key string) (string, bool) {
	for _, a := range s.Attrs {
		if a.Key == key && a.IsStr {
			return a.Str, true
		}
	}
	return "", false
}

// Trace records the spans of one query execution. All methods are safe for
// concurrent use (parallel slice scans record concurrently) and all methods
// on a nil *Trace are no-ops.
type Trace struct {
	mu    sync.Mutex
	t0    time.Time
	spans []Span // guarded by mu
	stack []int  // guarded by mu; open Begin spans, innermost last
}

// NewTrace starts an empty trace; the zero time offset is now.
func NewTrace() *Trace {
	return &Trace{t0: time.Now()}
}

// SpanRef is a handle to an open span. The zero SpanRef is valid and inert.
type SpanRef struct {
	t       *Trace
	id      int
	stacked bool
}

// Begin opens a span as a child of the innermost open Begin span (a root
// span when none is open). Spans opened with Begin nest lexically: callers
// must End them in reverse order, which the engine's defer discipline
// guarantees. Returns the zero SpanRef on a nil trace.
func (t *Trace) Begin(kind, name string) SpanRef {
	if t == nil {
		return SpanRef{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	parent := -1
	if n := len(t.stack); n > 0 {
		parent = t.stack[n-1]
	}
	id := t.startLocked(parent, kind, name)
	t.stack = append(t.stack, id)
	return SpanRef{t: t, id: id, stacked: true}
}

// BeginChild opens a span under an explicit parent without touching the
// nesting stack; goroutines (per-slice scan workers) use it so concurrent
// spans cannot corrupt the main thread's nesting. A zero parent yields a
// root span.
func (t *Trace) BeginChild(parent SpanRef, kind, name string) SpanRef {
	if t == nil {
		return SpanRef{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	pid := -1
	if parent.t == t {
		pid = parent.id
	}
	return SpanRef{t: t, id: t.startLocked(pid, kind, name)}
}

// pclint:held — callers hold t.mu.
func (t *Trace) startLocked(parent int, kind, name string) int {
	id := len(t.spans)
	t.spans = append(t.spans, Span{
		ID:     id,
		Parent: parent,
		Kind:   kind,
		Name:   name,
		Start:  time.Since(t.t0),
	})
	return id
}

// Active reports whether the ref points at a live trace. Instrumentation
// uses it to skip attribute computation (error formatting, snapshots) that
// would otherwise run on the disabled path.
func (s SpanRef) Active() bool { return s.t != nil }

// SetInt attaches an integer attribute. No-op on the zero SpanRef.
func (s SpanRef) SetInt(key string, v int64) {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	sp := &s.t.spans[s.id]
	sp.Attrs = append(sp.Attrs, Attr{Key: key, Int: v})
	s.t.mu.Unlock()
}

// SetStr attaches a string attribute. No-op on the zero SpanRef.
func (s SpanRef) SetStr(key, v string) {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	sp := &s.t.spans[s.id]
	sp.Attrs = append(sp.Attrs, Attr{Key: key, Str: v, IsStr: true})
	s.t.mu.Unlock()
}

// End closes the span, recording its duration. Spans opened with Begin are
// popped from the nesting stack. No-op on the zero SpanRef; ending twice
// freezes the first duration.
func (s SpanRef) End() {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	sp := &s.t.spans[s.id]
	if sp.Dur == 0 {
		sp.Dur = time.Since(s.t.t0) - sp.Start
		if sp.Dur <= 0 {
			sp.Dur = 1 // sub-resolution spans still render as closed
		}
	}
	if s.stacked {
		for i := len(s.t.stack) - 1; i >= 0; i-- {
			if s.t.stack[i] == s.id {
				s.t.stack = append(s.t.stack[:i], s.t.stack[i+1:]...)
				break
			}
		}
	}
	s.t.mu.Unlock()
}

// FinishOpen ends every span still open (error and cancellation paths
// unwind without running the usual defer discipline past the failure point)
// and, when errMsg is non-empty, attaches it as an "error" attribute on the
// first root span so the retained trace records what killed the query. Safe
// to call on a completed trace: closed spans keep their durations.
func (t *Trace) FinishOpen(errMsg string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Since(t.t0)
	for i := range t.spans {
		if t.spans[i].Dur == 0 {
			d := now - t.spans[i].Start
			if d <= 0 {
				d = 1
			}
			t.spans[i].Dur = d
		}
	}
	t.stack = t.stack[:0]
	if errMsg != "" {
		for i := range t.spans {
			if t.spans[i].Parent < 0 {
				t.spans[i].Attrs = append(t.spans[i].Attrs, Attr{Key: "error", Str: errMsg, IsStr: true})
				break
			}
		}
	}
}

// TakeSpans detaches and returns the recorded spans without copying: the
// trace is empty afterwards and the caller owns the slice. This is the O(1)
// pointer move the post-completion retention handoff relies on — a query's
// spans migrate into the TraceStore without per-span work.
func (t *Trace) TakeSpans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	spans := t.spans
	t.spans = nil
	t.stack = t.stack[:0]
	return spans
}

// NumSpans returns the number of spans recorded so far.
func (t *Trace) NumSpans() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Spans returns a copy of all recorded spans in creation order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	for i := range out {
		out[i].Attrs = append([]Attr(nil), t.spans[i].Attrs...)
	}
	return out
}

// Render formats the span tree as indented text, one span per line:
// debugging aid and fallback renderer (EXPLAIN ANALYZE uses the
// engine-aware renderer instead).
func (t *Trace) Render() string {
	if t == nil {
		return ""
	}
	return RenderSpans(t.Spans())
}

// RenderSpans formats a detached span slice (a retained trace's spans) the
// same way Trace.Render formats a live trace.
func RenderSpans(spans []Span) string {
	children := make(map[int][]int)
	var roots []int
	for _, sp := range spans {
		if sp.Parent < 0 {
			roots = append(roots, sp.ID)
		} else {
			children[sp.Parent] = append(children[sp.Parent], sp.ID)
		}
	}
	var b strings.Builder
	var walk func(id, depth int)
	walk = func(id, depth int) {
		sp := &spans[id]
		b.WriteString(strings.Repeat("  ", depth))
		fmt.Fprintf(&b, "%s %s (%s)", sp.Kind, sp.Name, sp.Dur.Round(time.Microsecond))
		for _, a := range sp.Attrs {
			if a.IsStr {
				fmt.Fprintf(&b, " %s=%s", a.Key, a.Str)
			} else {
				fmt.Fprintf(&b, " %s=%d", a.Key, a.Int)
			}
		}
		b.WriteByte('\n')
		ids := children[id]
		sort.Ints(ids)
		for _, c := range ids {
			walk(c, depth+1)
		}
	}
	sort.Ints(roots)
	for _, r := range roots {
		walk(r, 0)
	}
	return b.String()
}
