package obs

import (
	"fmt"
	"testing"
	"time"
)

// span returns a minimal n-span slice for retention tests.
func spans(n int) []Span {
	out := make([]Span, n)
	for i := range out {
		out[i] = Span{ID: i, Parent: -1, Kind: KindPhase, Name: "s", Dur: 1}
	}
	return out
}

func offer(ts *TraceStore, id int64, shape, errMsg string, wall time.Duration, n int) bool {
	return ts.Offer(&RetainedTrace{
		TraceID: id, Shape: shape, Error: errMsg, Wall: wall, Spans: spans(n),
	})
}

func TestTraceStoreAdmission(t *testing.T) {
	ts := NewTraceStore(TraceStoreConfig{SpanBudget: 100, ShapeQuota: 2, Slow: time.Second})

	if !offer(ts, 1, "point:t", "", 0, 3) {
		t.Fatal("first trace of a shape should be head-sampled")
	}
	if !offer(ts, 2, "point:t", "", 0, 3) {
		t.Fatal("second trace within the shape quota should be kept")
	}
	if offer(ts, 3, "point:t", "", 0, 3) {
		t.Fatal("third trace of the shape should be dropped (quota 2)")
	}
	if !offer(ts, 4, "point:u", "", 0, 3) {
		t.Fatal("a different shape has its own quota")
	}
	if !offer(ts, 5, "point:t", "boom", 0, 3) {
		t.Fatal("errored traces bypass the shape quota")
	}
	if !offer(ts, 6, "point:t", "", 2*time.Second, 3) {
		t.Fatal("slow traces bypass the shape quota")
	}
	if ts.Offer(&RetainedTrace{TraceID: 7, Spans: nil}) {
		t.Fatal("a trace without spans must not be retained")
	}
	if ts.Offer(nil) {
		t.Fatal("nil trace must not be retained")
	}

	wantReason := map[int64]string{
		1: RetainSampled, 2: RetainSampled, 4: RetainSampled,
		5: RetainError, 6: RetainSlow,
	}
	got := ts.Traces()
	if len(got) != len(wantReason) {
		t.Fatalf("retained %d traces, want %d", len(got), len(wantReason))
	}
	for _, rt := range got {
		if rt.Reason != wantReason[rt.TraceID] {
			t.Errorf("trace %d reason = %q, want %q", rt.TraceID, rt.Reason, wantReason[rt.TraceID])
		}
	}
	if rt := ts.Trace(5); rt == nil || rt.Error != "boom" {
		t.Fatalf("Trace(5) = %+v", rt)
	}
	if ts.Trace(3) != nil {
		t.Fatal("dropped trace should not be findable")
	}
}

func TestTraceStoreEvictionFreesQuota(t *testing.T) {
	// Budget of 4 spans, quota 1: the second same-shape offer only fits after
	// the first is evicted, at which point the quota slot is free again.
	ts := NewTraceStore(TraceStoreConfig{SpanBudget: 4, ShapeQuota: 1})
	if !offer(ts, 1, "a", "", 0, 3) {
		t.Fatal("first offer")
	}
	if offer(ts, 2, "a", "", 0, 3) {
		// 3+3 > 4 would evict trace 1 first — but quota check happens before
		// eviction, and trace 1 still occupies the shape slot.
		t.Fatal("same-shape offer at quota should be dropped even when eviction could free it")
	}
	if !offer(ts, 3, "b", "", 0, 4) {
		t.Fatal("budget-filling offer of a new shape should evict and fit")
	}
	if n := ts.Stats().Retained; n != 1 {
		t.Fatalf("retained = %d, want 1", n)
	}
	// Trace 1 was evicted, freeing shape a's quota slot.
	if !offer(ts, 4, "a", "", 0, 1) {
		t.Fatal("quota slot should be free after eviction")
	}
}

func TestTraceStoreSpanBudgetInvariant(t *testing.T) {
	const budget = 64
	ts := NewTraceStore(TraceStoreConfig{SpanBudget: budget, ShapeQuota: 4, Slow: time.Millisecond})
	for i := 0; i < 5000; i++ {
		// Mix shapes, sizes, errors and slow traces; every 7th is oversized.
		n := 1 + i%9
		if i%97 == 0 {
			n = budget + 10 // oversized: must be truncated, not rejected
		}
		errMsg := ""
		if i%11 == 0 {
			errMsg = "x"
		}
		var wall time.Duration
		if i%13 == 0 {
			wall = time.Second
		}
		offer(ts, int64(i), fmt.Sprintf("shape-%d", i%17), errMsg, wall, n)
		if sc := ts.SpanCount(); sc > budget {
			t.Fatalf("iteration %d: span count %d exceeds budget %d", i, sc, budget)
		}
	}
	st := ts.Stats()
	if st.SpanCount > st.SpanBudget {
		t.Fatalf("final stats: %+v", st)
	}
	if st.Offered != 5000 {
		t.Fatalf("offered = %d", st.Offered)
	}
	if st.Kept == 0 || st.Evicted == 0 {
		t.Fatalf("kept=%d evicted=%d: stress run should both keep and evict", st.Kept, st.Evicted)
	}
	// The ring contents must agree with the counter.
	total := 0
	for _, rt := range ts.Traces() {
		total += len(rt.Spans)
	}
	if total != st.SpanCount {
		t.Fatalf("ring holds %d spans, counter says %d", total, st.SpanCount)
	}
}

func TestTraceStoreConcurrent(t *testing.T) {
	ts := NewTraceStore(TraceStoreConfig{SpanBudget: 128, ShapeQuota: 2, Slow: time.Millisecond})
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				errMsg := ""
				if i%5 == 0 {
					errMsg = "e"
				}
				offer(ts, int64(g*1000+i), fmt.Sprintf("s%d", i%3), errMsg, 0, 1+i%4)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("timeout")
		}
		if sc := ts.SpanCount(); sc > 128 {
			t.Fatalf("span count %d over budget", sc)
		}
	}
	_ = ts.Traces()
	_ = ts.Stats()
}

func TestTraceStoreNil(t *testing.T) {
	var ts *TraceStore
	if ts.Offer(&RetainedTrace{Spans: spans(1)}) {
		t.Fatal("nil store retained a trace")
	}
	if ts.Traces() != nil || ts.Trace(0) != nil || ts.SpanCount() != 0 {
		t.Fatal("nil store should be empty")
	}
	if ts.Stats() != (TraceStoreStats{}) {
		t.Fatal("nil store stats should be zero")
	}
}

func TestTraceTakeSpansAndFinishOpen(t *testing.T) {
	tr := NewTrace()
	a := tr.Begin(KindPhase, "parse")
	a.End()
	b := tr.Begin(KindPhase, "execute") // left open: error path
	_ = b
	tr.FinishOpen("exec blew up")
	sp := tr.TakeSpans()
	if tr.NumSpans() != 0 {
		t.Fatalf("trace should be empty after TakeSpans, has %d", tr.NumSpans())
	}
	if len(sp) != 2 {
		t.Fatalf("took %d spans, want 2", len(sp))
	}
	for _, s := range sp {
		if s.Dur == 0 {
			t.Fatalf("span %q still open after FinishOpen", s.Name)
		}
	}
	if msg, ok := sp[0].StrAttr("error"); !ok || msg != "exec blew up" {
		t.Fatalf("root span error attr = %q, %v", msg, ok)
	}
	if got := RenderSpans(sp); got == "" {
		t.Fatal("detached spans should still render")
	}
}
