package obs

import (
	"fmt"
	"sync"
	"testing"
)

func TestShapeStatsAggregates(t *testing.T) {
	s := NewShapeStats(0)
	// Shape A: 3 calls, one a cache hit, one an error.
	for i, obs := range []ShapeObservation{
		{CPUMicros: 100, AllocObjects: 10, AllocBytes: 1000, Rows: 5, Hit: true},
		{CPUMicros: 300, AllocObjects: 20, AllocBytes: 2000, Rows: 7},
		{CPUMicros: 200, AllocObjects: 30, AllocBytes: 3000, Rows: 9, Err: true},
	} {
		obs.Key = "select a"
		obs.ID = ShapeID(obs.Key)
		obs.Class = "agg"
		obs.WallMicros = obs.CPUMicros + 50
		obs.TraceID = int64(i)
		s.Observe(obs)
	}
	// Shape B: 1 cheap call.
	s.Observe(ShapeObservation{
		Key: "select b", ID: ShapeID("select b"), Class: "point",
		CPUMicros: 50, WallMicros: 60, AllocObjects: 1, AllocBytes: 64, Rows: 1,
		TraceID: 7, Retained: true,
	})

	rows := s.Snapshot()
	if len(rows) != 2 {
		t.Fatalf("got %d shapes, want 2", len(rows))
	}
	a, b := rows[0], rows[1]
	if a.Key != "select a" || b.Key != "select b" {
		t.Fatalf("CPU-descending order broken: %q then %q", a.Key, b.Key)
	}
	if a.Calls != 3 || a.Errors != 1 || a.CPUMicros != 600 || a.WallMicros != 750 {
		t.Fatalf("shape A ledger = %+v", a)
	}
	if a.AllocObjects != 60 || a.AllocBytes != 6000 || a.Rows != 21 {
		t.Fatalf("shape A allocation ledger = %+v", a)
	}
	if got, want := a.HitRate, 1.0/3.0; got != want {
		t.Fatalf("shape A hit rate = %v, want %v", got, want)
	}
	if a.ID != ShapeID("select a") || a.Class != "agg" {
		t.Fatalf("shape A identity = %q/%q", a.ID, a.Class)
	}
	if a.ExemplarTraceID != -1 {
		t.Fatalf("shape A exemplar = %d, want -1 (no retained trace)", a.ExemplarTraceID)
	}
	if a.P50CPUMicros <= 0 || a.P99CPUMicros < a.P50CPUMicros {
		t.Fatalf("shape A quantiles p50=%d p99=%d", a.P50CPUMicros, a.P99CPUMicros)
	}
	if b.Calls != 1 || b.CPUMicros != 50 || b.ExemplarTraceID != 7 {
		t.Fatalf("shape B ledger = %+v", b)
	}
}

func TestShapeStatsEvictsMinCPU(t *testing.T) {
	s := NewShapeStats(2)
	s.Observe(ShapeObservation{Key: "expensive", CPUMicros: 1000})
	s.Observe(ShapeObservation{Key: "cheap", CPUMicros: 1})
	s.Observe(ShapeObservation{Key: "medium", CPUMicros: 500})
	if s.Len() != 2 {
		t.Fatalf("len = %d, want 2", s.Len())
	}
	if s.Evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions())
	}
	rows := s.Snapshot()
	if rows[0].Key != "expensive" || rows[1].Key != "medium" {
		t.Fatalf("retained %q/%q, want expensive/medium (cheap evicted)", rows[0].Key, rows[1].Key)
	}
}

func TestShapeStatsTieBreakDeterministic(t *testing.T) {
	s := NewShapeStats(0)
	for _, k := range []string{"zz", "aa", "mm"} {
		s.Observe(ShapeObservation{Key: k, CPUMicros: 100})
	}
	rows := s.Snapshot()
	if rows[0].Key != "aa" || rows[1].Key != "mm" || rows[2].Key != "zz" {
		t.Fatalf("tie order = %q %q %q, want aa mm zz", rows[0].Key, rows[1].Key, rows[2].Key)
	}
}

func TestShapeStatsNilAndEmptyKey(t *testing.T) {
	var s *ShapeStats
	s.Observe(ShapeObservation{Key: "x"}) // must not panic
	if s.Snapshot() != nil || s.Len() != 0 || s.Evictions() != 0 {
		t.Fatal("nil ShapeStats retained something")
	}
	s2 := NewShapeStats(0)
	s2.Observe(ShapeObservation{Key: ""})
	if s2.Len() != 0 {
		t.Fatal("empty key was retained")
	}
}

func TestShapeStatsConcurrent(t *testing.T) {
	s := NewShapeStats(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		// pclint:allow goroutinectx: joined via wg.Wait below
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.Observe(ShapeObservation{
					Key:       fmt.Sprintf("shape-%d", (g+i)%16),
					CPUMicros: int64(i),
				})
				if i%50 == 0 {
					s.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() > 8 {
		t.Fatalf("capacity exceeded: %d shapes", s.Len())
	}
	var calls int64
	for _, r := range s.Snapshot() {
		calls += r.Calls
	}
	if calls == 0 {
		t.Fatal("no observations retained")
	}
}

func TestShapeIDStable(t *testing.T) {
	a, b := ShapeID("select * from t"), ShapeID("select * from t")
	if a != b {
		t.Fatalf("ShapeID not deterministic: %q vs %q", a, b)
	}
	if a == ShapeID("select * from u") {
		t.Fatal("distinct keys collided")
	}
	if len(a) != 17 || a[0] != 's' {
		t.Fatalf("ShapeID format = %q, want s + 16 hex digits", a)
	}
}
