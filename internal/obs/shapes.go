package obs

import (
	"sort"
	"sync"
	"time"
)

// ShapeStats aggregates per-query resource attribution by query shape — the
// plan cache's normalized-SQL key — into a bounded top-K ledger. The paper's
// premise (§2) is that fleets are dominated by repeated shapes; this is the
// table that says which of those shapes actually cost CPU and allocation,
// which is what the workload-driven advisor and the soak harness's SLO gates
// consume. Served as pc.query_shapes.
//
// The map is bounded: when full, observing a brand-new shape evicts the
// retained shape with the least total CPU (the one least likely to matter to
// a heavy-hitter ranking) and counts the eviction.

// DefaultShapeCapacity bounds the shape ledger unless configured otherwise.
const DefaultShapeCapacity = 256

// ShapeObservation is one finished query's contribution to its shape.
type ShapeObservation struct {
	Key   string // normalized-SQL shape key (raw SQL when not normalizable)
	ID    string // ShapeID(Key), precomputed by the caller
	Class string // query class (point/range/agg)
	// CPUMicros is the query's attributed CPU: exec wall plus the busy time
	// spawned morsel workers contributed beyond the coordinator's wait.
	CPUMicros    int64
	WallMicros   int64
	AllocObjects int64
	AllocBytes   int64
	Rows         int64
	Hit          bool // predicate-cache hit
	Err          bool
	TraceID      int64
	Retained     bool // trace was admitted to the trace store
}

// shapeEntry accumulates one shape's ledger.
type shapeEntry struct {
	id    string
	key   string
	class string

	calls  int64
	errors int64

	cpuMicros    int64
	wallMicros   int64
	allocObjects int64
	allocBytes   int64
	rows         int64
	hits         int64

	// cpu tracks the per-call CPU distribution (p50/p99) with retained-trace
	// exemplars, reusing the SLO histogram machinery.
	cpu *SLOHistogram

	exemplar int64 // last retained trace id, -1 when none
}

// ShapeStats is the bounded shape ledger. Safe for concurrent use; a nil
// *ShapeStats drops every observation.
type ShapeStats struct {
	mu        sync.Mutex
	shapes    map[string]*shapeEntry // guarded by mu, keyed by shape key
	capacity  int
	evictions int64 // guarded by mu
}

// NewShapeStats builds a ledger bounded to capacity shapes (<= 0 selects
// DefaultShapeCapacity).
func NewShapeStats(capacity int) *ShapeStats {
	if capacity <= 0 {
		capacity = DefaultShapeCapacity
	}
	return &ShapeStats{
		shapes:   make(map[string]*shapeEntry, capacity),
		capacity: capacity,
	}
}

// Observe folds one finished query into its shape's ledger.
func (s *ShapeStats) Observe(o ShapeObservation) {
	if s == nil || o.Key == "" {
		return
	}
	s.mu.Lock()
	e, ok := s.shapes[o.Key]
	if !ok {
		if len(s.shapes) >= s.capacity {
			s.evictMinLocked()
		}
		e = &shapeEntry{id: o.ID, key: o.Key, class: o.Class, cpu: &SLOHistogram{}, exemplar: -1}
		s.shapes[o.Key] = e
	}
	e.calls++
	if o.Err {
		e.errors++
	}
	if o.Hit {
		e.hits++
	}
	e.class = o.Class
	e.cpuMicros += o.CPUMicros
	e.wallMicros += o.WallMicros
	e.allocObjects += o.AllocObjects
	e.allocBytes += o.AllocBytes
	e.rows += o.Rows
	if o.Retained {
		e.exemplar = o.TraceID
	}
	cpu := e.cpu
	s.mu.Unlock()
	// The histogram has its own lock; observing outside s.mu keeps the
	// ledger lock's hold time to the counter folds above.
	cpu.Observe(time.Duration(o.CPUMicros)*time.Microsecond, o.TraceID, o.Retained)
}

// evictMinLocked drops the retained shape with the least total CPU.
// pclint:held — callers hold s.mu.
func (s *ShapeStats) evictMinLocked() {
	var victim string
	min := int64(-1)
	for k, e := range s.shapes {
		if min < 0 || e.cpuMicros < min {
			min = e.cpuMicros
			victim = k
		}
	}
	if victim != "" {
		delete(s.shapes, victim)
		s.evictions++
	}
}

// ShapeRow is one pc.query_shapes row: a shape's accumulated resource ledger.
type ShapeRow struct {
	ID    string
	Key   string
	Class string

	Calls  int64
	Errors int64

	CPUMicros    int64 // total attributed CPU across calls
	P50CPUMicros int64
	P99CPUMicros int64
	WallMicros   int64
	AllocObjects int64
	AllocBytes   int64
	Rows         int64

	// HitRate is the fraction of calls whose scans hit the predicate cache.
	HitRate float64

	// ExemplarTraceID joins pc.traces.trace_id (-1 when no retained trace).
	ExemplarTraceID int64
}

// Snapshot returns the retained shapes ranked by total CPU, heaviest first
// (ties broken by calls, then key, so the order is deterministic).
func (s *ShapeStats) Snapshot() []ShapeRow {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	out := make([]ShapeRow, 0, len(s.shapes))
	hists := make([]*SLOHistogram, 0, len(s.shapes))
	for _, e := range s.shapes {
		r := ShapeRow{
			ID:              e.id,
			Key:             e.key,
			Class:           e.class,
			Calls:           e.calls,
			Errors:          e.errors,
			CPUMicros:       e.cpuMicros,
			WallMicros:      e.wallMicros,
			AllocObjects:    e.allocObjects,
			AllocBytes:      e.allocBytes,
			Rows:            e.rows,
			ExemplarTraceID: e.exemplar,
		}
		if e.calls > 0 {
			r.HitRate = float64(e.hits) / float64(e.calls)
		}
		out = append(out, r)
		hists = append(hists, e.cpu)
	}
	s.mu.Unlock()
	// Quantiles take each histogram's own lock; computing them outside s.mu
	// keeps Observe callers from stalling behind a snapshot.
	for i := range out {
		out[i].P50CPUMicros = hists[i].Quantile(0.50).Microseconds()
		out[i].P99CPUMicros = hists[i].Quantile(0.99).Microseconds()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].CPUMicros != out[j].CPUMicros {
			return out[i].CPUMicros > out[j].CPUMicros
		}
		if out[i].Calls != out[j].Calls {
			return out[i].Calls > out[j].Calls
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Len returns the number of retained shapes.
func (s *ShapeStats) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.shapes)
}

// Evictions returns how many shapes were evicted to stay under capacity.
func (s *ShapeStats) Evictions() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evictions
}
