package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sync"
	"time"
)

// ProfileCaptor writes on-demand CPU profiles when the engine flags a slow
// query. Captures run in the background after the triggering query finished:
// the point is not to profile that one execution (it is already over) but to
// catch the shape in the act on its next repetitions — the paper's premise
// that shapes repeat is exactly why a post-hoc capture works. Profiles carry
// the query_id/shape/session goroutine labels, so `go tool pprof -tags`
// attributes the samples.
//
// Captures are rate-limited (one per MinInterval) and mutually exclusive
// with any other CPU profile — Go allows one CPU profile at a time, so a
// capture that loses the race (e.g. against an admin /profile/cpu pull) is
// skipped and counted, never an error.

// ProfileCaptorConfig shapes a captor; zero fields take the defaults below.
type ProfileCaptorConfig struct {
	// Dir is where profiles are written (created if missing). Required.
	Dir string
	// Duration is how long each capture samples (default 1s).
	Duration time.Duration
	// MinInterval rate-limits captures (default 1m).
	MinInterval time.Duration
	// Logger is read per capture so logger swaps propagate; may be nil.
	Logger func() *Logger
}

// ProfileCaptor implements rate-limited capture-on-slow-query.
type ProfileCaptor struct {
	cfg ProfileCaptorConfig

	mu       sync.Mutex
	last     time.Time // guarded by mu; start of the latest capture
	busy     bool      // guarded by mu; a capture goroutine is running
	captured int64     // guarded by mu
	skipped  int64     // guarded by mu; rate-limited or lost the profiler race
	seq      int64     // guarded by mu; capture file ordinal
}

// NewProfileCaptor builds a captor and ensures its directory exists.
func NewProfileCaptor(cfg ProfileCaptorConfig) (*ProfileCaptor, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("obs: profile captor needs a directory")
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	if cfg.MinInterval <= 0 {
		cfg.MinInterval = time.Minute
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: profile dir: %w", err)
	}
	return &ProfileCaptor{cfg: cfg}, nil
}

// MaybeCapture starts a background CPU capture attributed to trigger (e.g.
// "slow_query") and the triggering query id, unless one ran within
// MinInterval or is still running. Returns whether a capture started.
func (p *ProfileCaptor) MaybeCapture(trigger string, queryID int64) bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	now := time.Now()
	if p.busy || (!p.last.IsZero() && now.Sub(p.last) < p.cfg.MinInterval) {
		p.skipped++
		p.mu.Unlock()
		return false
	}
	p.busy = true
	p.last = now
	p.seq++
	n := p.seq
	p.mu.Unlock()
	// pclint:allow goroutinectx: capture is self-terminating after cfg.Duration
	go p.capture(trigger, queryID, n)
	return true
}

// capture runs one profile to completion.
func (p *ProfileCaptor) capture(trigger string, queryID, n int64) {
	defer func() {
		p.mu.Lock()
		p.busy = false
		p.mu.Unlock()
	}()
	path := filepath.Join(p.cfg.Dir, fmt.Sprintf("cpu-%03d-q%d.pprof", n, queryID))
	f, err := os.Create(path)
	if err != nil {
		p.logger().Error("profile capture failed", "trigger", trigger, "error", err.Error())
		return
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		// Another CPU profile is active (admin endpoint, test harness): skip.
		f.Close()
		os.Remove(path)
		p.mu.Lock()
		p.skipped++
		p.mu.Unlock()
		p.logger().Info("profile capture skipped",
			"trigger", trigger, "reason", err.Error())
		return
	}
	time.Sleep(p.cfg.Duration)
	pprof.StopCPUProfile()
	err = f.Close()
	p.mu.Lock()
	p.captured++
	p.mu.Unlock()
	if err != nil {
		p.logger().Error("profile capture failed", "trigger", trigger, "error", err.Error())
		return
	}
	p.logger().WithQuery(queryID).Info("profile captured",
		"trigger", trigger, "path", path, "duration_ms", p.cfg.Duration.Milliseconds())
}

// logger resolves the configured logger (nil-safe).
func (p *ProfileCaptor) logger() *Logger {
	if p.cfg.Logger == nil {
		return nil
	}
	return p.cfg.Logger()
}

// Stats reports capture counters (tests and /stats consumers).
func (p *ProfileCaptor) Stats() (captured, skipped int64) {
	if p == nil {
		return 0, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.captured, p.skipped
}
