package obs

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler serves the registry over HTTP:
//
//	/metrics        Prometheus text exposition format
//	/metrics.json   the same registry as a JSON object
//	/debug/pprof/*  the standard pprof handlers (profile, heap, trace, ...)
//	/profile/cpu    CPU profile (?seconds=N, default 30) — pprof labels included
//	/profile/heap   heap profile snapshot
//
// The /profile/* routes are the admin-facing spellings used by the profiling
// quickstart; they alias the corresponding /debug/pprof handlers so a capture
// is one curl away from `go tool pprof`.
func Handler(m *Metrics) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := m.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := m.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/profile/cpu", pprof.Profile)
	mux.Handle("/profile/heap", pprof.Handler("heap"))
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "predcache metrics endpoint\n/metrics\n/metrics.json\n/debug/pprof/\n/profile/cpu\n/profile/heap\n")
	})
	return mux
}

// Server is a metrics HTTP server started with StartServer.
type Server struct {
	srv    *http.Server
	ln     net.Listener
	cancel context.CancelFunc
}

// StartServer listens on addr (e.g. ":8080" or "127.0.0.1:0") and serves
// Handler(m) in a background goroutine until Close.
func StartServer(addr string, m *Metrics) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: metrics listener on %s: %w", addr, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		srv:    &http.Server{Handler: Handler(m), ReadHeaderTimeout: 5 * time.Second},
		ln:     ln,
		cancel: cancel,
	}
	go s.run(ctx)
	return s, nil
}

// run serves until the listener is closed. The context mirrors the server's
// lifetime — Close cancels it after shutting the listener down — so the
// goroutine is externally terminable.
func (s *Server) run(ctx context.Context) {
	if err := s.srv.Serve(s.ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		<-ctx.Done() // closed listener without Close: wait for it
	}
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the listener.
func (s *Server) Close() error {
	err := s.srv.Close()
	s.cancel()
	if err != nil {
		return fmt.Errorf("obs: close metrics server: %w", err)
	}
	return nil
}

// RegisterRuntimeMetrics adds Go runtime gauges (heap, GC, goroutines) to
// the registry; both pcsh and pcbench expose them next to the engine
// metrics so a long run can be watched without attaching pprof. The gauges
// read last() — the runtime sampler's latest retained sample — upholding the
// collector's invariant that scrapes never trigger a ReadMemStats of their
// own: a scrape storm cannot induce stop-the-world pauses.
func RegisterRuntimeMetrics(m *Metrics, last func() RuntimeSample) {
	m.NewGauge("go_goroutines", "Number of live goroutines at the last runtime sample.", func() float64 {
		return float64(last().Goroutines)
	})
	m.NewGauge("go_heap_alloc_bytes", "Bytes of allocated heap objects at the last runtime sample.", func() float64 {
		return float64(last().HeapAllocBytes)
	})
	m.NewGauge("go_heap_sys_bytes", "Heap memory obtained from the OS at the last runtime sample.", func() float64 {
		return float64(last().HeapSysBytes)
	})
	m.NewGauge("go_gc_cycles_total", "Completed GC cycles at the last runtime sample.", func() float64 {
		return float64(last().GCCycles)
	})
}
