package obs

import (
	"hash/fnv"
	"runtime/metrics"
	"sync"
)

// Per-query resource attribution reads the process-wide allocation counters
// from runtime/metrics before and after a query executes. Unlike
// runtime.ReadMemStats these counters are maintained continuously by the
// allocator — reading them never stops the world — so the snapshot pair
// costs nanoseconds and is safe on every query.
//
// The counters are process-wide: a delta taken around one query includes
// allocations other goroutines made in the same window. Under a serial
// workload the delta is exact; under concurrency it is an upper bound whose
// error shrinks with query duration. pc.query_log and pc.query_shapes
// document the same caveat.

// resMetricNames are the runtime/metrics counters a snapshot reads.
var resMetricNames = [...]string{
	"/gc/heap/allocs:bytes",
	"/gc/heap/allocs:objects",
}

// resSamplePool recycles the []metrics.Sample scratch so taking a snapshot
// allocates nothing in steady state (the execution spine is alloc-budgeted).
var resSamplePool = sync.Pool{
	New: func() any {
		s := make([]metrics.Sample, len(resMetricNames))
		for i, name := range resMetricNames {
			s[i].Name = name
		}
		return &s
	},
}

// ResourceSnapshot is one reading of the process's cumulative allocation
// counters. Subtract two snapshots to attribute the interval in between.
type ResourceSnapshot struct {
	AllocBytes   uint64 // cumulative heap bytes allocated
	AllocObjects uint64 // cumulative heap objects allocated
}

// TakeResourceSnapshot reads the current cumulative allocation counters.
func TakeResourceSnapshot() ResourceSnapshot {
	sp := resSamplePool.Get().(*[]metrics.Sample)
	s := *sp
	metrics.Read(s)
	snap := ResourceSnapshot{
		AllocBytes:   s[0].Value.Uint64(),
		AllocObjects: s[1].Value.Uint64(),
	}
	resSamplePool.Put(sp)
	return snap
}

// Sub returns the counter deltas since earlier, clamped at zero (the
// counters are monotone, but a clamp keeps a misordered pair harmless).
func (r ResourceSnapshot) Sub(earlier ResourceSnapshot) (allocObjects, allocBytes int64) {
	if r.AllocObjects > earlier.AllocObjects {
		allocObjects = int64(r.AllocObjects - earlier.AllocObjects)
	}
	if r.AllocBytes > earlier.AllocBytes {
		allocBytes = int64(r.AllocBytes - earlier.AllocBytes)
	}
	return allocObjects, allocBytes
}

// ShapeID derives the short, stable identifier of a query shape from its
// normalized-SQL key: "s" + FNV-1a 64 in hex. It is what the shape pprof
// label carries and what pc.query_log.shape_id joins pc.query_shapes on —
// short enough for label vocabularies, stable across processes.
func ShapeID(key string) string {
	h := fnv.New64a()
	h.Write([]byte(key))
	const hexdigits = "0123456789abcdef"
	var buf [17]byte
	buf[0] = 's'
	v := h.Sum64()
	for i := 16; i >= 1; i-- {
		buf[i] = hexdigits[v&0xf]
		v >>= 4
	}
	return string(buf[:])
}
