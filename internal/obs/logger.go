// Structured logging with query/trace correlation. The engine logs little —
// warnings and errors on the query path, lifecycle notes from vacuum and the
// view manager — but every line that concerns a query carries its query_id
// and trace_id, so a log line is always one SQL join away from the retained
// trace that explains it:
//
//	{"level":"WARN","msg":"slow query","query_id":17,"trace_id":17,...}
//	SELECT * FROM pc.trace_spans WHERE trace_id = 17;
package obs

import (
	"context"
	"io"
	"log/slog"
)

// Logger is a nil-safe wrapper over *slog.Logger, matching the package's
// tracing discipline: every method on a nil *Logger is a no-op, so the
// disabled path costs one branch and zero allocation (attribute arguments
// are only evaluated after the nil check by helper methods taking closures
// is overkill here — call sites are warn/error paths, not hot loops).
type Logger struct {
	s *slog.Logger
}

// NewLogger wraps a slog handler. A nil handler yields a nil (disabled)
// logger.
func NewLogger(h slog.Handler) *Logger {
	if h == nil {
		return nil
	}
	return &Logger{s: slog.New(h)}
}

// NewJSONLogger logs JSON lines at level to w (the pcsh -log flag's
// format). A nil writer yields a disabled logger.
func NewJSONLogger(w io.Writer, level slog.Level) *Logger {
	if w == nil {
		return nil
	}
	return NewLogger(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level}))
}

// Slog exposes the wrapped *slog.Logger (nil when disabled) for callers
// that need the stdlib surface directly.
func (l *Logger) Slog() *slog.Logger {
	if l == nil {
		return nil
	}
	return l.s
}

// With returns a logger whose lines all carry the given attributes
// (slog.Logger.With). Nil stays nil.
func (l *Logger) With(args ...any) *Logger {
	if l == nil {
		return nil
	}
	return &Logger{s: l.s.With(args...)}
}

// WithQuery returns a logger stamped with query_id and trace_id — the same
// value, since retained traces are keyed by the query's pc.query_log.seq —
// so both spellings are greppable and joinable.
func (l *Logger) WithQuery(seq int64) *Logger {
	if l == nil {
		return nil
	}
	return &Logger{s: l.s.With("query_id", seq, "trace_id", seq)}
}

// Debug logs at LevelDebug.
func (l *Logger) Debug(msg string, args ...any) {
	if l == nil {
		return
	}
	l.s.Debug(msg, args...)
}

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, args ...any) {
	if l == nil {
		return
	}
	l.s.Info(msg, args...)
}

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, args ...any) {
	if l == nil {
		return
	}
	l.s.Warn(msg, args...)
}

// Error logs at LevelError.
func (l *Logger) Error(msg string, args ...any) {
	if l == nil {
		return
	}
	l.s.Error(msg, args...)
}

// Enabled reports whether the logger would emit at level; call sites with
// expensive attribute computation should gate on it.
func (l *Logger) Enabled(level slog.Level) bool {
	if l == nil {
		return false
	}
	return l.s.Enabled(context.Background(), level)
}
