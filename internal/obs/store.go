package obs

import (
	"sync"
	"time"
)

// Retention reasons attached to retained traces (pc.traces.reason).
const (
	RetainError   = "error"   // the query failed; always admitted
	RetainSlow    = "slow"    // wall time at or over the slow threshold; always admitted
	RetainSampled = "sampled" // head-sampled within the trace's shape quota
)

// RetainedTrace is one completed query trace the store decided to keep:
// the spans plus enough query metadata to join it against pc.query_log
// (TraceID equals the query's pc.query_log.seq).
type RetainedTrace struct {
	TraceID     int64
	StartMicros int64
	Wall        time.Duration
	SQL         string
	Error       string
	Class       string // query class: point, range, agg, dml
	Shape       string // sampling-quota key: class + base tables
	CacheHit    bool
	Reason      string // RetainError, RetainSlow or RetainSampled
	Spans       []Span
}

// TraceStoreConfig bounds the trace store. The zero value selects defaults.
type TraceStoreConfig struct {
	// SpanBudget caps the total spans retained across all traces (default
	// DefaultSpanBudget). The store never holds more: admitting a trace
	// evicts the oldest retained traces until the new one fits. A single
	// trace larger than the whole budget has its spans truncated.
	SpanBudget int
	// ShapeQuota caps how many traces of one shape may be retained for the
	// "sampled" reason at a time (default DefaultShapeQuota). Errored and
	// slow traces bypass the quota: the tail is what the store is for.
	ShapeQuota int
	// Slow is the wall-time threshold at or over which a trace is always
	// admitted (0 disables the slow criterion).
	Slow time.Duration
}

// DefaultSpanBudget bounds retained spans; at ~100 bytes per span the
// default costs a fixed ~1.6 MiB per database in the worst case.
const DefaultSpanBudget = 16384

// DefaultShapeQuota is how many head-sampled traces of one query shape the
// store keeps alongside the always-admitted errored and slow traces.
const DefaultShapeQuota = 4

// TraceStore tail-samples completed query traces into a bounded buffer.
// Admission is decided after the query finishes — when its wall time, error
// state and shape are known — which is what lets it keep exactly the traces
// worth keeping: every error, everything over the slow threshold, and a
// small head-sample per query shape for baseline comparison. Eviction is
// FIFO; errored and slow traces age out like the rest, so memory stays
// bounded no matter the workload mix.
//
// All methods are safe for concurrent use, and every method on a nil
// *TraceStore is a no-op (tracing disabled).
type TraceStore struct {
	mu sync.Mutex
	// ring holds retained traces oldest-first in [head, head+n); its
	// capacity is fixed at construction (every trace has at least one span,
	// so SpanBudget traces is the most that can ever be retained).
	ring []*RetainedTrace // guarded by mu
	head int              // guarded by mu
	n    int              // guarded by mu
	// spanCount is the invariant the budget enforces: total spans across
	// ring, always <= cfg.SpanBudget.
	spanCount int            // guarded by mu
	byShape   map[string]int // guarded by mu; retained "sampled" traces per shape

	offered, retained, evicted int64 // guarded by mu; lifetime counters

	cfg TraceStoreConfig // immutable after NewTraceStore
}

// NewTraceStore builds a store with cfg (zero fields take defaults).
func NewTraceStore(cfg TraceStoreConfig) *TraceStore {
	if cfg.SpanBudget <= 0 {
		cfg.SpanBudget = DefaultSpanBudget
	}
	if cfg.ShapeQuota <= 0 {
		cfg.ShapeQuota = DefaultShapeQuota
	}
	return &TraceStore{
		ring:    make([]*RetainedTrace, cfg.SpanBudget),
		byShape: make(map[string]int),
		cfg:     cfg,
	}
}

// Offer submits a completed trace for retention and reports whether it was
// kept. The store takes ownership of rt and its span slice; the caller must
// not touch either afterwards. Traces without spans are never retained.
func (ts *TraceStore) Offer(rt *RetainedTrace) bool {
	if ts == nil || rt == nil || len(rt.Spans) == 0 {
		return false
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.offered++
	switch {
	case rt.Error != "":
		rt.Reason = RetainError
	case ts.cfg.Slow > 0 && rt.Wall >= ts.cfg.Slow:
		rt.Reason = RetainSlow
	case ts.byShape[rt.Shape] < ts.cfg.ShapeQuota:
		rt.Reason = RetainSampled
	default:
		return false
	}
	if len(rt.Spans) > ts.cfg.SpanBudget {
		rt.Spans = rt.Spans[:ts.cfg.SpanBudget]
	}
	for ts.spanCount+len(rt.Spans) > ts.cfg.SpanBudget {
		ts.evictOldestLocked()
	}
	ts.admitLocked(rt)
	return true
}

// admitLocked appends rt to the ring: O(1) pointer moves, no allocation —
// the handoff cost the hot path is promised. The budget loop in Offer has
// already made room.
//
// pclint:noalloc
// pclint:held — callers hold ts.mu.
func (ts *TraceStore) admitLocked(rt *RetainedTrace) {
	ts.ring[(ts.head+ts.n)%len(ts.ring)] = rt
	ts.n++
	ts.spanCount += len(rt.Spans)
	if rt.Reason == RetainSampled {
		ts.byShape[rt.Shape]++ // pclint:allow noalloc: amortized once per new query shape
	}
	ts.retained++
}

// pclint:held — callers hold ts.mu.
func (ts *TraceStore) evictOldestLocked() {
	if ts.n == 0 {
		return
	}
	old := ts.ring[ts.head]
	ts.ring[ts.head] = nil
	ts.head = (ts.head + 1) % len(ts.ring)
	ts.n--
	ts.spanCount -= len(old.Spans)
	if old.Reason == RetainSampled {
		if c := ts.byShape[old.Shape]; c <= 1 {
			delete(ts.byShape, old.Shape)
		} else {
			ts.byShape[old.Shape] = c - 1
		}
	}
	ts.evicted++
}

// Traces returns the retained traces, oldest first. The returned slice is
// fresh but the *RetainedTrace values are shared: treat them as immutable.
func (ts *TraceStore) Traces() []*RetainedTrace {
	if ts == nil {
		return nil
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]*RetainedTrace, 0, ts.n)
	for i := 0; i < ts.n; i++ {
		out = append(out, ts.ring[(ts.head+i)%len(ts.ring)])
	}
	return out
}

// Trace returns the retained trace with the given ID, or nil.
func (ts *TraceStore) Trace(id int64) *RetainedTrace {
	if ts == nil {
		return nil
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	for i := 0; i < ts.n; i++ {
		if rt := ts.ring[(ts.head+i)%len(ts.ring)]; rt.TraceID == id {
			return rt
		}
	}
	return nil
}

// TraceStoreStats reports the store's lifetime and current counters.
type TraceStoreStats struct {
	Retained   int   // traces currently held
	SpanCount  int   // spans currently held (<= SpanBudget)
	SpanBudget int   // configured budget
	Offered    int64 // traces ever offered
	Kept       int64 // traces ever admitted
	Evicted    int64 // traces evicted to make room
}

// Stats returns a snapshot of the store counters.
func (ts *TraceStore) Stats() TraceStoreStats {
	if ts == nil {
		return TraceStoreStats{}
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return TraceStoreStats{
		Retained:   ts.n,
		SpanCount:  ts.spanCount,
		SpanBudget: ts.cfg.SpanBudget,
		Offered:    ts.offered,
		Kept:       ts.retained,
		Evicted:    ts.evicted,
	}
}

// RegisterMetrics exposes the store's retention counters on m. Nil-safe:
// a disabled store registers nothing.
func (ts *TraceStore) RegisterMetrics(m *Metrics) {
	if ts == nil {
		return
	}
	m.NewGauge("predcache_traces_retained", "Query traces currently retained.", func() float64 {
		return float64(ts.Stats().Retained)
	})
	m.NewGauge("predcache_trace_spans_retained", "Trace spans currently retained (bounded by the span budget).", func() float64 {
		return float64(ts.SpanCount())
	})
	m.NewCounterFunc("predcache_traces_offered_total", "Completed traces offered for retention.", func() int64 {
		return ts.Stats().Offered
	})
	m.NewCounterFunc("predcache_traces_kept_total", "Offered traces admitted (error, slow, or head-sampled).", func() int64 {
		return ts.Stats().Kept
	})
	m.NewCounterFunc("predcache_traces_evicted_total", "Retained traces evicted FIFO to stay within the span budget.", func() int64 {
		return ts.Stats().Evicted
	})
}

// SpanCount returns the spans currently retained (always <= the budget).
func (ts *TraceStore) SpanCount() int {
	if ts == nil {
		return 0
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.spanCount
}
