package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. Safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (negative n is ignored: counters are
// monotone by contract).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Histogram is a cumulative-bucket histogram (Prometheus semantics: each
// bucket counts observations less than or equal to its upper bound).
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // immutable after construction
	counts []uint64  // guarded by mu; len(bounds)+1, last is +Inf
	sum    float64   // guarded by mu
	n      uint64    // guarded by mu
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// DefBuckets are the default histogram bounds for query latencies in
// seconds: 100µs to 10s, roughly ×2.5 per step.
var DefBuckets = []float64{.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// HistSnapshot is a point-in-time histogram state for pull-style histogram
// metrics (NewHistogramFunc): per-bucket counts (not cumulative; the last
// entry is the +Inf overflow), the upper bounds, and the running sum/count.
type HistSnapshot struct {
	Bounds []float64 // ascending upper bounds, +Inf implicit
	Counts []uint64  // len(Bounds)+1 per-bucket counts, last is overflow
	Sum    float64
	N      uint64
}

// metric is one registered metric of any kind.
type metric struct {
	name, help, typ string
	counter         *Counter
	counterFn       func() int64
	gaugeFn         func() float64
	hist            *Histogram
	histFn          func() HistSnapshot
}

// Metrics is a registry of named metrics. Registration methods are
// idempotent: re-registering a name of the same kind returns the existing
// metric, so layered components (DB facade, cache, runtime) can share a
// registry without coordination.
type Metrics struct {
	mu    sync.Mutex
	order []string           // guarded by mu; registration order
	byNam map[string]*metric // guarded by mu
}

// NewMetrics creates an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{byNam: make(map[string]*metric)}
}

// pclint:held — callers hold m.mu.
func (m *Metrics) registerLocked(name string, mt *metric) *metric {
	if !validMetricName(name) {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	if old, ok := m.byNam[name]; ok {
		if old.typ != mt.typ {
			panic("obs: metric " + name + " re-registered as " + mt.typ + ", was " + old.typ)
		}
		return old
	}
	m.byNam[name] = mt
	m.order = append(m.order, name)
	return mt
}

// NewCounter registers (or returns the existing) push-style counter.
func (m *Metrics) NewCounter(name, help string) *Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	mt := m.registerLocked(name, &metric{name: name, help: help, typ: "counter", counter: &Counter{}})
	return mt.counter
}

// NewCounterFunc registers a pull-style counter: fn is read at scrape time.
// Use for components that already maintain monotone counters internally
// (the predicate cache's Stats), so the hot path pays nothing.
func (m *Metrics) NewCounterFunc(name, help string, fn func() int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.registerLocked(name, &metric{name: name, help: help, typ: "counter", counterFn: fn})
}

// NewGauge registers a pull-style gauge read at scrape time.
func (m *Metrics) NewGauge(name, help string, fn func() float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.registerLocked(name, &metric{name: name, help: help, typ: "gauge", gaugeFn: fn})
}

// NewHistogram registers (or returns the existing) histogram with the given
// upper bounds (ascending; +Inf is implicit).
func (m *Metrics) NewHistogram(name, help string, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram " + name + ": bounds not ascending")
		}
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]uint64, len(bounds)+1)
	m.mu.Lock()
	defer m.mu.Unlock()
	mt := m.registerLocked(name, &metric{name: name, help: help, typ: "histogram", hist: h})
	return mt.hist
}

// NewHistogramFunc registers a pull-style histogram: fn is read at scrape
// time. Use for components that already maintain bucketed state internally
// (the SLO histograms), so observations never pay registry overhead.
func (m *Metrics) NewHistogramFunc(name, help string, fn func() HistSnapshot) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.registerLocked(name, &metric{name: name, help: help, typ: "histogram", histFn: fn})
}

// snapshotLocked returns the metrics in registration order.
//
// pclint:held — callers hold m.mu.
func (m *Metrics) snapshotLocked() []*metric {
	out := make([]*metric, 0, len(m.order))
	for _, name := range m.order {
		out = append(out, m.byNam[name])
	}
	return out
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4).
func (m *Metrics) WritePrometheus(w io.Writer) error {
	m.mu.Lock()
	metrics := m.snapshotLocked()
	m.mu.Unlock()
	for _, mt := range metrics {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", mt.name, escapeHelp(mt.help), mt.name, mt.typ); err != nil {
			return fmt.Errorf("obs: write exposition: %w", err)
		}
		var err error
		switch {
		case mt.counter != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", mt.name, mt.counter.Value())
		case mt.counterFn != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", mt.name, mt.counterFn())
		case mt.gaugeFn != nil:
			_, err = fmt.Fprintf(w, "%s %s\n", mt.name, formatFloat(mt.gaugeFn()))
		case mt.hist != nil:
			err = writeHistogram(w, mt.name, mt.hist.snapshot())
		case mt.histFn != nil:
			err = writeHistogram(w, mt.name, mt.histFn())
		}
		if err != nil {
			return fmt.Errorf("obs: write exposition: %w", err)
		}
	}
	return nil
}

// snapshot captures the push-style histogram as a HistSnapshot.
func (h *Histogram) snapshot() HistSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistSnapshot{
		Bounds: h.bounds,
		Counts: append([]uint64(nil), h.counts...),
		Sum:    h.sum,
		N:      h.n,
	}
}

func writeHistogram(w io.Writer, name string, s HistSnapshot) error {
	cum := uint64(0)
	for i, b := range s.Bounds {
		if i < len(s.Counts) {
			cum += s.Counts[i]
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatFloat(b), cum); err != nil {
			return err
		}
	}
	if len(s.Counts) > len(s.Bounds) {
		cum += s.Counts[len(s.Bounds)]
	}
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
		name, cum, name, formatFloat(s.Sum), name, s.N)
	return err
}

// WriteJSON renders the registry as a JSON object keyed by metric name.
// Counters and gauges map to numbers; histograms to an object with count,
// sum and cumulative buckets.
func (m *Metrics) WriteJSON(w io.Writer) error {
	m.mu.Lock()
	metrics := m.snapshotLocked()
	m.mu.Unlock()
	obj := make(map[string]any, len(metrics))
	for _, mt := range metrics {
		switch {
		case mt.counter != nil:
			obj[mt.name] = mt.counter.Value()
		case mt.counterFn != nil:
			obj[mt.name] = mt.counterFn()
		case mt.gaugeFn != nil:
			obj[mt.name] = mt.gaugeFn()
		case mt.hist != nil:
			obj[mt.name] = histJSON(mt.hist.snapshot())
		case mt.histFn != nil:
			obj[mt.name] = histJSON(mt.histFn())
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(obj); err != nil {
		return fmt.Errorf("obs: write json metrics: %w", err)
	}
	return nil
}

// histJSON renders a histogram snapshot as the JSON-exporter object shape.
func histJSON(s HistSnapshot) map[string]any {
	buckets := make(map[string]uint64, len(s.Bounds)+1)
	cum := uint64(0)
	for i, b := range s.Bounds {
		if i < len(s.Counts) {
			cum += s.Counts[i]
		}
		buckets[formatFloat(b)] = cum
	}
	if len(s.Counts) > len(s.Bounds) {
		cum += s.Counts[len(s.Bounds)]
	}
	buckets["+Inf"] = cum
	return map[string]any{"count": s.N, "sum": s.Sum, "buckets": buckets}
}

// MetricSample is one flattened sample of the registry: counters and gauges
// map to one sample each, histograms to a <name>_count and a <name>_sum
// sample (per-bucket counts stay in the Prometheus exposition; the flat view
// backs the pc.metrics system table, which wants one value per row).
type MetricSample struct {
	Name  string
	Type  string // "counter", "gauge" or "histogram"
	Help  string
	Value float64
}

// Samples returns the registry flattened to (name, type, help, value) rows
// in registration order, reading pull-style metrics at call time.
func (m *Metrics) Samples() []MetricSample {
	m.mu.Lock()
	metrics := m.snapshotLocked()
	m.mu.Unlock()
	out := make([]MetricSample, 0, len(metrics))
	for _, mt := range metrics {
		switch {
		case mt.counter != nil:
			out = append(out, MetricSample{mt.name, mt.typ, mt.help, float64(mt.counter.Value())})
		case mt.counterFn != nil:
			out = append(out, MetricSample{mt.name, mt.typ, mt.help, float64(mt.counterFn())})
		case mt.gaugeFn != nil:
			out = append(out, MetricSample{mt.name, mt.typ, mt.help, mt.gaugeFn()})
		case mt.hist != nil:
			mt.hist.mu.Lock()
			n, sum := mt.hist.n, mt.hist.sum
			mt.hist.mu.Unlock()
			out = append(out,
				MetricSample{mt.name + "_count", mt.typ, mt.help, float64(n)},
				MetricSample{mt.name + "_sum", mt.typ, mt.help, sum})
		case mt.histFn != nil:
			s := mt.histFn()
			out = append(out,
				MetricSample{mt.name + "_count", mt.typ, mt.help, float64(s.N)},
				MetricSample{mt.name + "_sum", mt.typ, mt.help, s.Sum})
		}
	}
	return out
}

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}
