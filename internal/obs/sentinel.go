package obs

import (
	"fmt"
	"sync"
)

// Leak sentinels watch the runtime collector's retained samples for the
// three failure shapes a long-running warehouse process actually exhibits:
// goroutine leaks (a session or worker path that never exits), heap leaks
// (retained result sets, an unbounded cache), and scratch-pool churn (the
// pool stops recycling and every scan allocates fresh). Each sentinel fires
// with hysteresis — an alert is recorded on the firing and clearing
// transitions only, never re-emitted while the condition persists — so a
// slow leak produces one actionable alert, not a page per sample.
//
// Alerts land in a bounded ring served as pc.alerts and, when a logger is
// wired, as one structured log line per transition.

// Sentinel names (pc.alerts.sentinel).
const (
	SentinelGoroutines = "goroutine_growth"
	SentinelHeap       = "heap_growth"
	SentinelPoolChurn  = "pool_churn"
)

// Alert states (pc.alerts.state).
const (
	AlertFiring  = "firing"
	AlertCleared = "cleared"
)

// Alert is one sentinel transition: the watched value crossed its threshold
// (firing) or fell back below half of it (cleared).
type Alert struct {
	TSMicros  int64  `json:"ts_micros"`
	Sentinel  string `json:"sentinel"`
	State     string `json:"state"`
	Value     int64  `json:"value"`
	Threshold int64  `json:"threshold"`
	Detail    string `json:"detail"`
}

// defaultAlertCapacity bounds the alert ring; transitions are rare, so a
// small ring holds a long history.
const defaultAlertCapacity = 256

// AlertLog is a bounded ring of alerts, oldest overwritten first. Safe for
// concurrent use; nil-safe like the rest of the package.
type AlertLog struct {
	mu    sync.Mutex
	ring  []Alert // guarded by mu
	next  int     // guarded by mu
	n     int     // guarded by mu
	total int64   // guarded by mu; alerts ever recorded
}

// NewAlertLog builds a ring holding the most recent capacity alerts (<= 0
// selects the default).
func NewAlertLog(capacity int) *AlertLog {
	if capacity <= 0 {
		capacity = defaultAlertCapacity
	}
	return &AlertLog{ring: make([]Alert, capacity)}
}

// Record appends one alert, overwriting the oldest when full.
func (l *AlertLog) Record(a Alert) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.ring[l.next] = a
	l.next = (l.next + 1) % len(l.ring)
	if l.n < len(l.ring) {
		l.n++
	}
	l.total++
	l.mu.Unlock()
}

// Alerts returns the retained alerts, oldest first.
func (l *AlertLog) Alerts() []Alert {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Alert, 0, l.n)
	start := l.next - l.n
	if start < 0 {
		start += len(l.ring)
	}
	for i := 0; i < l.n; i++ {
		out = append(out, l.ring[(start+i)%len(l.ring)])
	}
	return out
}

// Len returns the number of retained alerts.
func (l *AlertLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Total returns the number of alerts ever recorded.
func (l *AlertLog) Total() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// SentinelConfig sets the watchdog thresholds. The zero value selects the
// defaults below; Window is the number of consecutive runtime samples a
// condition must span before it can fire (growth sentinels additionally
// require the watched value to be monotone over the window, so a spiky but
// reclaiming workload never trips them).
type SentinelConfig struct {
	// Window is the sample count evaluated per check (default 5; at the
	// default 1s cadence a leak must persist ~5s to fire).
	Window int
	// GoroutineGrowth fires when goroutines grow monotonically by at least
	// this many over the window (default 200).
	GoroutineGrowth int64
	// HeapGrowthBytes fires when HeapAlloc grows monotonically by at least
	// this many bytes over the window (default 256 MiB).
	HeapGrowthBytes int64
	// PoolChurnRatio fires when news/gets over the window reaches this
	// fraction (default 0.5) with at least PoolChurnMinGets gets observed
	// (default 1000) — the scratch pool has stopped recycling.
	PoolChurnRatio   float64
	PoolChurnMinGets int64
}

// withDefaults fills zero fields.
func (c SentinelConfig) withDefaults() SentinelConfig {
	if c.Window <= 1 {
		c.Window = 5
	}
	if c.GoroutineGrowth <= 0 {
		c.GoroutineGrowth = 200
	}
	if c.HeapGrowthBytes <= 0 {
		c.HeapGrowthBytes = 256 << 20
	}
	if c.PoolChurnRatio <= 0 {
		c.PoolChurnRatio = 0.5
	}
	if c.PoolChurnMinGets <= 0 {
		c.PoolChurnMinGets = 1000
	}
	return c
}

// Sentinels evaluates the watchdogs over sample windows and records
// transitions. A nil *Sentinels is valid and checks nothing.
type Sentinels struct {
	cfg SentinelConfig
	log *AlertLog
	// logger is read per transition so SetLogger swaps propagate; nil drops
	// the log lines (the pc.alerts ring still records).
	logger func() *Logger

	mu     sync.Mutex
	active map[string]bool // guarded by mu; sentinel name -> firing
}

// NewSentinels builds the watchdog set. alerts receives the transitions
// (may be nil to drop them); logger may be nil.
func NewSentinels(cfg SentinelConfig, alerts *AlertLog, logger func() *Logger) *Sentinels {
	return &Sentinels{
		cfg:    cfg.withDefaults(),
		log:    alerts,
		logger: logger,
		active: make(map[string]bool),
	}
}

// Window returns the configured evaluation window.
func (s *Sentinels) Window() int {
	if s == nil {
		return 0
	}
	return s.cfg.Window
}

// Evaluate checks every sentinel against win (oldest first) and records any
// state transitions. Windows shorter than the configured size are skipped —
// the collector has not retained enough history yet.
func (s *Sentinels) Evaluate(win []RuntimeSample) {
	if s == nil || len(win) < s.cfg.Window {
		return
	}
	win = win[len(win)-s.cfg.Window:]
	first, last := win[0], win[len(win)-1]

	growth := func(field func(RuntimeSample) int64) (delta int64, monotone bool) {
		monotone = true
		for i := 1; i < len(win); i++ {
			if field(win[i]) < field(win[i-1]) {
				monotone = false
				break
			}
		}
		return field(last) - field(first), monotone
	}

	gDelta, gMono := growth(func(r RuntimeSample) int64 { return r.Goroutines })
	s.transition(SentinelGoroutines, last.TSMicros, gDelta, s.cfg.GoroutineGrowth,
		gMono && gDelta >= s.cfg.GoroutineGrowth,
		fmt.Sprintf("goroutines %d -> %d over %d samples", first.Goroutines, last.Goroutines, len(win)))

	hDelta, hMono := growth(func(r RuntimeSample) int64 { return r.HeapAllocBytes })
	s.transition(SentinelHeap, last.TSMicros, hDelta, s.cfg.HeapGrowthBytes,
		hMono && hDelta >= s.cfg.HeapGrowthBytes,
		fmt.Sprintf("heap_alloc %d -> %d bytes over %d samples", first.HeapAllocBytes, last.HeapAllocBytes, len(win)))

	dGets := last.PoolGets - first.PoolGets
	dNews := last.PoolNews - first.PoolNews
	ratioPct := int64(0)
	if dGets > 0 {
		ratioPct = dNews * 100 / dGets
	}
	s.transition(SentinelPoolChurn, last.TSMicros, ratioPct, int64(s.cfg.PoolChurnRatio*100),
		dGets >= s.cfg.PoolChurnMinGets && float64(dNews) >= s.cfg.PoolChurnRatio*float64(dGets),
		fmt.Sprintf("pool news/gets %d/%d over %d samples", dNews, dGets, len(win)))
}

// transition applies hysteresis: record a firing alert on the first check
// that exceeds the threshold, then nothing until the value falls to half the
// threshold or below, which records the clearing alert.
func (s *Sentinels) transition(name string, ts, value, threshold int64, over bool, detail string) {
	s.mu.Lock()
	wasActive := s.active[name]
	var a Alert
	emit := false
	switch {
	case over && !wasActive:
		s.active[name] = true
		a = Alert{TSMicros: ts, Sentinel: name, State: AlertFiring, Value: value, Threshold: threshold, Detail: detail}
		emit = true
	case wasActive && value <= threshold/2:
		s.active[name] = false
		a = Alert{TSMicros: ts, Sentinel: name, State: AlertCleared, Value: value, Threshold: threshold, Detail: detail}
		emit = true
	}
	s.mu.Unlock()
	if !emit {
		return
	}
	s.log.Record(a)
	var lg *Logger
	if s.logger != nil {
		lg = s.logger()
	}
	if a.State == AlertFiring {
		lg.Warn("sentinel firing",
			"sentinel", a.Sentinel, "value", a.Value, "threshold", a.Threshold, "detail", a.Detail)
	} else {
		lg.Info("sentinel cleared",
			"sentinel", a.Sentinel, "value", a.Value, "threshold", a.Threshold, "detail", a.Detail)
	}
}

// Active reports whether the named sentinel is currently firing.
func (s *Sentinels) Active(name string) bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.active[name]
}
