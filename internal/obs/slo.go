package obs

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Query classes the SLO layer tracks. Every query lands in exactly one
// class; each class is split by predicate-cache outcome (hit vs miss), so a
// p99 regression on the cache-miss path cannot hide behind fast hits.
const (
	ClassPoint = "point" // single-point equality scans
	ClassRange = "range" // range / general filtered scans and joins
	ClassAgg   = "agg"   // aggregations
	ClassDML   = "dml"   // DeleteWhere / UpdateWhere statements
)

// SLOClasses lists the tracked classes in display order.
var SLOClasses = []string{ClassPoint, ClassRange, ClassAgg, ClassDML}

// sloBuckets is the number of finite latency buckets: powers of two from
// 1µs to 2^26µs (~67s). Fixed log-scaled bounds keep Observe O(log buckets)
// with zero allocation and make quantile error bounded by one octave.
const sloBuckets = 27

// sloExemplar links a bucket to a retained trace.
type sloExemplar struct {
	traceID int64
	micros  int64
	set     bool
}

// SLOHistogram is a fixed-bucket log₂-scaled latency histogram with
// per-bucket exemplars. Bucket i counts observations in (2^(i-1), 2^i]
// microseconds (bucket 0 covers (0, 1µs]); one overflow bucket catches the
// rest. Safe for concurrent use; nil-safe like the rest of the package.
type SLOHistogram struct {
	mu        sync.Mutex
	counts    [sloBuckets + 1]uint64      // guarded by mu
	exemplars [sloBuckets + 1]sloExemplar // guarded by mu
	sumMicros int64                       // guarded by mu
	maxMicros int64                       // guarded by mu
	n         uint64                      // guarded by mu
}

// sloBucketIndex maps a duration to its bucket.
func sloBucketIndex(us int64) int {
	if us <= 1 {
		return 0
	}
	i, bound := 0, int64(1)
	for i < sloBuckets && us > bound {
		i++
		bound <<= 1
	}
	return i // sloBuckets == overflow when us exceeds the last bound
}

// sloBucketBounds returns the (lo, hi] microsecond range of bucket i; the
// overflow bucket reports hi = -1 (unbounded).
func sloBucketBounds(i int) (lo, hi int64) {
	if i == 0 {
		return 0, 1
	}
	if i >= sloBuckets {
		return 1 << (sloBuckets - 1), -1
	}
	return 1 << (i - 1), 1 << i
}

// Observe records one latency. traceID is attached as the bucket's exemplar
// when retained is true — exemplars only ever point at traces the store
// actually kept, and the latest retained observation wins so exemplars stay
// resolvable as old traces age out of the store.
func (h *SLOHistogram) Observe(d time.Duration, traceID int64, retained bool) {
	if h == nil {
		return
	}
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	i := sloBucketIndex(us)
	h.mu.Lock()
	h.counts[i]++
	h.sumMicros += us
	if us > h.maxMicros {
		h.maxMicros = us
	}
	h.n++
	if retained {
		h.exemplars[i] = sloExemplar{traceID: traceID, micros: us, set: true}
	}
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *SLOHistogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Quantile estimates the q-quantile (0 < q <= 1). The estimate interpolates
// linearly inside the chosen bucket, so its error is bounded by that
// bucket's width (one octave: the true value is within a factor of two).
// The overflow bucket reports the observed maximum. Returns 0 when empty.
func (h *SLOHistogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

// pclint:held — callers hold h.mu.
func (h *SLOHistogram) quantileLocked(q float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.n))
	if rank < 1 {
		rank = 1
	}
	cum := uint64(0)
	for i := 0; i <= sloBuckets; i++ {
		c := h.counts[i]
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo, hi := sloBucketBounds(i)
			if hi < 0 || int64(float64(hi)) > h.maxMicros {
				hi = h.maxMicros // never report beyond the observed max
			}
			if hi < lo {
				lo = hi
			}
			frac := float64(rank-cum) / float64(c)
			us := float64(lo) + frac*float64(hi-lo)
			return time.Duration(us) * time.Microsecond
		}
		cum += c
	}
	return time.Duration(h.maxMicros) * time.Microsecond
}

// TailExemplar returns the exemplar of the highest occupied bucket that has
// one: the retained trace closest to the distribution's tail.
func (h *SLOHistogram) TailExemplar() (traceID int64, d time.Duration, ok bool) {
	if h == nil {
		return 0, 0, false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := sloBuckets; i >= 0; i-- {
		if h.exemplars[i].set {
			return h.exemplars[i].traceID, time.Duration(h.exemplars[i].micros) * time.Microsecond, true
		}
	}
	return 0, 0, false
}

// Exemplar returns bucket i's exemplar, if set (tests and pc.slo use it).
func (h *SLOHistogram) Exemplar(i int) (traceID int64, d time.Duration, ok bool) {
	if h == nil || i < 0 || i > sloBuckets {
		return 0, 0, false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	e := h.exemplars[i]
	return e.traceID, time.Duration(e.micros) * time.Microsecond, e.set
}

// snapshot renders the histogram as a metrics-registry HistSnapshot in
// seconds (Prometheus convention).
func (h *SLOHistogram) snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistSnapshot{
		Bounds: make([]float64, sloBuckets),
		Counts: make([]uint64, sloBuckets+1),
		Sum:    float64(h.sumMicros) / 1e6,
		N:      h.n,
	}
	for i := 0; i < sloBuckets; i++ {
		_, hi := sloBucketBounds(i)
		s.Bounds[i] = float64(hi) / 1e6
	}
	copy(s.Counts, h.counts[:])
	return s
}

// sloKey identifies one tracked histogram.
type sloKey struct {
	class string
	hit   bool
}

// SLOSet holds one SLOHistogram per (class, cache-outcome) pair. The pair
// map is built once at construction and never mutated, so Observe takes no
// set-level lock.
type SLOSet struct {
	hists map[sloKey]*SLOHistogram // immutable after NewSLOSet
}

// NewSLOSet builds histograms for every class in SLOClasses × {hit, miss}.
func NewSLOSet() *SLOSet {
	s := &SLOSet{hists: make(map[sloKey]*SLOHistogram, 2*len(SLOClasses))}
	for _, c := range SLOClasses {
		s.hists[sloKey{c, false}] = &SLOHistogram{}
		s.hists[sloKey{c, true}] = &SLOHistogram{}
	}
	return s
}

// Observe records one query latency under its class and cache outcome.
// Unknown classes fall into ClassRange rather than being dropped.
func (s *SLOSet) Observe(class string, hit bool, d time.Duration, traceID int64, retained bool) {
	if s == nil {
		return
	}
	h, ok := s.hists[sloKey{class, hit}]
	if !ok {
		h = s.hists[sloKey{ClassRange, hit}]
	}
	h.Observe(d, traceID, retained)
}

// Hist returns the histogram for (class, hit), or nil.
func (s *SLOSet) Hist(class string, hit bool) *SLOHistogram {
	if s == nil {
		return nil
	}
	return s.hists[sloKey{class, hit}]
}

// SLOReport is one row of pc.slo: the percentile summary of one (class,
// cache-outcome) histogram plus its tail exemplar.
type SLOReport struct {
	Class    string
	CacheHit bool
	Count    uint64
	P50      time.Duration
	P99      time.Duration
	P999     time.Duration
	Max      time.Duration
	// ExemplarTraceID joins against pc.traces.trace_id (0 when no retained
	// trace has landed in an occupied bucket yet).
	ExemplarTraceID int64
	ExemplarDur     time.Duration
}

// Snapshot reports every tracked histogram in class order, misses before
// hits. Empty histograms are included (count 0) so dashboards see a stable
// row set.
func (s *SLOSet) Snapshot() []SLOReport {
	if s == nil {
		return nil
	}
	out := make([]SLOReport, 0, 2*len(SLOClasses))
	for _, c := range SLOClasses {
		for _, hit := range []bool{false, true} {
			h := s.hists[sloKey{c, hit}]
			h.mu.Lock()
			r := SLOReport{
				Class:    c,
				CacheHit: hit,
				Count:    h.n,
				P50:      h.quantileLocked(0.50),
				P99:      h.quantileLocked(0.99),
				P999:     h.quantileLocked(0.999),
				Max:      time.Duration(h.maxMicros) * time.Microsecond,
			}
			h.mu.Unlock()
			if id, d, ok := h.TailExemplar(); ok {
				r.ExemplarTraceID = id
				r.ExemplarDur = d
			}
			out = append(out, r)
		}
	}
	return out
}

// SLOTarget is one latency objective. Class selects a tracked class ("*"
// or empty matches all); Cache is "hit", "miss", or empty for both. A zero
// percentile target means "not checked". MinCount suppresses checking until
// the histogram has that many samples (0 checks from the first).
type SLOTarget struct {
	Class    string
	Cache    string
	P50      time.Duration
	P99      time.Duration
	P999     time.Duration
	MinCount uint64
}

// SLOViolation reports one exceeded objective, with the tail exemplar trace
// (when one is retained) for immediate drill-down.
type SLOViolation struct {
	Class           string
	CacheHit        bool
	Quantile        string // "p50", "p99" or "p999"
	Observed        time.Duration
	Target          time.Duration
	Count           uint64
	ExemplarTraceID int64
}

// String renders the violation for log lines and harness output.
func (v SLOViolation) String() string {
	cache := "miss"
	if v.CacheHit {
		cache = "hit"
	}
	return fmt.Sprintf("slo violation: class=%s cache=%s %s=%s target=%s n=%d exemplar_trace=%d",
		v.Class, cache, v.Quantile, v.Observed, v.Target, v.Count, v.ExemplarTraceID)
}

// Check evaluates targets against the current distributions and returns
// every violation, ordered by class then quantile. The soak harness and the
// trace smoke fail on a non-empty return.
func (s *SLOSet) Check(targets []SLOTarget) []SLOViolation {
	if s == nil {
		return nil
	}
	var out []SLOViolation
	for _, r := range s.Snapshot() {
		for _, t := range targets {
			if t.Class != "" && t.Class != "*" && t.Class != r.Class {
				continue
			}
			if t.Cache == "hit" && !r.CacheHit || t.Cache == "miss" && r.CacheHit {
				continue
			}
			if r.Count == 0 || r.Count < t.MinCount {
				continue
			}
			checks := []struct {
				name     string
				observed time.Duration
				target   time.Duration
			}{
				{"p50", r.P50, t.P50},
				{"p99", r.P99, t.P99},
				{"p999", r.P999, t.P999},
			}
			for _, c := range checks {
				if c.target > 0 && c.observed > c.target {
					out = append(out, SLOViolation{
						Class:           r.Class,
						CacheHit:        r.CacheHit,
						Quantile:        c.name,
						Observed:        c.observed,
						Target:          c.target,
						Count:           r.Count,
						ExemplarTraceID: r.ExemplarTraceID,
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Class != out[j].Class {
			return out[i].Class < out[j].Class
		}
		if out[i].CacheHit != out[j].CacheHit {
			return !out[i].CacheHit
		}
		return out[i].Quantile < out[j].Quantile
	})
	return out
}

// RegisterMetrics exposes every class histogram on m as
// predcache_slo_<class>_<hit|miss>_seconds, scraped lazily: the hot path
// pays only the SLOHistogram.Observe it already does.
func (s *SLOSet) RegisterMetrics(m *Metrics) {
	if s == nil {
		return
	}
	for _, c := range SLOClasses {
		for _, hit := range []bool{false, true} {
			outcome := "miss"
			if hit {
				outcome = "hit"
			}
			h := s.hists[sloKey{c, hit}]
			m.NewHistogramFunc(
				"predcache_slo_"+c+"_"+outcome+"_seconds",
				"Query wall time for class "+c+" (cache "+outcome+").",
				h.snapshot)
		}
	}
}
