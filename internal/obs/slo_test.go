package obs

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// exactQuantile mirrors the histogram's rank definition on the raw values:
// the max(1, floor(q*n))-th smallest.
func exactQuantile(us []int64, q float64) int64 {
	s := append([]int64(nil), us...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := int(q * float64(len(s)))
	if rank < 1 {
		rank = 1
	}
	return s[rank-1]
}

// checkQuantileBound asserts the estimate is within one octave of the exact
// value (the log2-bucket guarantee), with 1µs of absolute slack for the
// sub-microsecond bucket.
func checkQuantileBound(t *testing.T, name string, est time.Duration, exact int64) {
	t.Helper()
	e := est.Microseconds()
	if e > 2*exact+1 || exact > 2*e+1 {
		t.Errorf("%s: estimate %dµs vs exact %dµs exceeds the factor-2 bound", name, e, exact)
	}
}

func TestSLOQuantileRandomDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dists := map[string]func() int64{
		"uniform":   func() int64 { return rng.Int63n(1_000_000) },
		"lognormal": func() int64 { return int64(1 + 100*rng.ExpFloat64()*rng.ExpFloat64()) },
		"heavytail": func() int64 {
			if rng.Intn(100) == 0 {
				return 1_000_000 + rng.Int63n(10_000_000)
			}
			return 10 + rng.Int63n(90)
		},
	}
	for name, gen := range dists {
		h := &SLOHistogram{}
		var us []int64
		for i := 0; i < 10000; i++ {
			v := gen()
			us = append(us, v)
			h.Observe(time.Duration(v)*time.Microsecond, int64(i), false)
		}
		for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
			checkQuantileBound(t, name, h.Quantile(q), exactQuantile(us, q))
		}
	}
}

func TestSLOQuantileAdversarial(t *testing.T) {
	// All mass in one bucket: interpolation must stay within the bucket and
	// never exceed the observed max.
	h := &SLOHistogram{}
	for i := 0; i < 1000; i++ {
		h.Observe(1000*time.Microsecond, 0, false)
	}
	for _, q := range []float64{0.5, 0.99, 1} {
		got := h.Quantile(q).Microseconds()
		if got > 1000 {
			t.Fatalf("q=%v: estimate %dµs exceeds observed max 1000µs", q, got)
		}
		checkQuantileBound(t, "one-bucket", h.Quantile(q), 1000)
	}

	// Bimodal: fast mode and slow mode four decades apart. p50 must report
	// the fast mode, p99 the slow mode — a mean-based summary would blur both.
	b := &SLOHistogram{}
	var us []int64
	for i := 0; i < 500; i++ {
		b.Observe(10*time.Microsecond, 0, false)
		us = append(us, 10)
	}
	for i := 0; i < 500; i++ {
		b.Observe(100_000*time.Microsecond, 0, false)
		us = append(us, 100_000)
	}
	checkQuantileBound(t, "bimodal-p50", b.Quantile(0.5), exactQuantile(us, 0.5))
	checkQuantileBound(t, "bimodal-p99", b.Quantile(0.99), exactQuantile(us, 0.99))
	if p50 := b.Quantile(0.5).Microseconds(); p50 > 20 {
		t.Fatalf("bimodal p50 %dµs should sit in the fast mode", p50)
	}
	if p99 := b.Quantile(0.99).Microseconds(); p99 < 50_000 {
		t.Fatalf("bimodal p99 %dµs should sit in the slow mode", p99)
	}

	// Empty and single-observation histograms.
	var e SLOHistogram
	if e.Quantile(0.99) != 0 {
		t.Fatal("empty histogram should report 0")
	}
	one := &SLOHistogram{}
	one.Observe(42*time.Microsecond, 0, false)
	checkQuantileBound(t, "single", one.Quantile(0.5), 42)
	if max := one.Quantile(1).Microseconds(); max > 42 {
		t.Fatalf("single-value max estimate %dµs exceeds the observation", max)
	}
}

func TestSLOExemplarReplacement(t *testing.T) {
	h := &SLOHistogram{}
	d := 100 * time.Microsecond // one fixed bucket

	h.Observe(d, 1, true)
	if id, _, ok := h.Exemplar(sloBucketIndex(100)); !ok || id != 1 {
		t.Fatalf("exemplar = %d, %v; want 1", id, ok)
	}
	// Non-retained observations never displace a retained exemplar.
	h.Observe(d, 2, false)
	if id, _, _ := h.Exemplar(sloBucketIndex(100)); id != 1 {
		t.Fatalf("non-retained observation displaced the exemplar (got %d)", id)
	}
	// The latest retained observation wins, keeping the exemplar resolvable
	// as older traces age out of the store.
	h.Observe(d, 3, true)
	if id, _, _ := h.Exemplar(sloBucketIndex(100)); id != 3 {
		t.Fatalf("latest retained should win (got %d)", id)
	}
	// TailExemplar finds the highest occupied bucket with one.
	h.Observe(time.Second, 9, true)
	if id, _, ok := h.TailExemplar(); !ok || id != 9 {
		t.Fatalf("tail exemplar = %d, %v; want 9", id, ok)
	}
}

func TestSLOSetObserveAndSnapshot(t *testing.T) {
	s := NewSLOSet()
	s.Observe(ClassPoint, true, 50*time.Microsecond, 7, true)
	s.Observe(ClassPoint, false, 500*time.Microsecond, 8, false)
	s.Observe("mystery", false, time.Millisecond, 9, false) // folds into range

	snap := s.Snapshot()
	if len(snap) != 2*len(SLOClasses) {
		t.Fatalf("snapshot rows = %d, want %d", len(snap), 2*len(SLOClasses))
	}
	byKey := map[string]SLOReport{}
	for _, r := range snap {
		k := r.Class + ":miss"
		if r.CacheHit {
			k = r.Class + ":hit"
		}
		byKey[k] = r
	}
	if r := byKey["point:hit"]; r.Count != 1 || r.ExemplarTraceID != 7 {
		t.Fatalf("point:hit = %+v", r)
	}
	if r := byKey["range:miss"]; r.Count != 1 {
		t.Fatalf("unknown class should fold into range:miss, got %+v", r)
	}
	if r := byKey["dml:miss"]; r.Count != 0 {
		t.Fatalf("untouched class should report zero, got %+v", r)
	}
}

func TestSLOCheck(t *testing.T) {
	s := NewSLOSet()
	for i := 0; i < 100; i++ {
		s.Observe(ClassPoint, false, 10*time.Millisecond, 1, i == 0)
	}
	v := s.Check([]SLOTarget{
		{Class: ClassPoint, Cache: "miss", P99: time.Millisecond},          // violated
		{Class: ClassPoint, Cache: "miss", P50: time.Second},               // holds
		{Class: ClassAgg, P99: time.Nanosecond},                            // no samples: skipped
		{Class: ClassPoint, Cache: "hit", P99: time.Nanosecond},            // no samples: skipped
		{Class: "*", P999: time.Minute},                                    // holds everywhere
		{Class: ClassPoint, Cache: "miss", P99: time.Hour, MinCount: 1000}, // below MinCount
	})
	if len(v) != 1 {
		t.Fatalf("violations = %+v, want exactly the p99 breach", v)
	}
	if v[0].Quantile != "p99" || v[0].Class != ClassPoint || v[0].CacheHit {
		t.Fatalf("violation = %+v", v[0])
	}
	if v[0].ExemplarTraceID != 1 {
		t.Fatalf("violation should carry the tail exemplar, got %d", v[0].ExemplarTraceID)
	}
	if v[0].String() == "" {
		t.Fatal("violation should render")
	}
}

func TestSLOPrometheusExposition(t *testing.T) {
	m := NewMetrics()
	s := NewSLOSet()
	s.RegisterMetrics(m)
	for i := 0; i < 50; i++ {
		s.Observe(ClassRange, false, time.Duration(i)*time.Millisecond, int64(i), false)
	}
	s.Observe(ClassAgg, true, time.Second, 1, true)

	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, buf.String())
	}
	for _, want := range []string{
		"predcache_slo_range_miss_seconds_bucket",
		"predcache_slo_range_miss_seconds_sum",
		"predcache_slo_range_miss_seconds_count 50",
		"predcache_slo_agg_hit_seconds_count 1",
		`le="+Inf"`,
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestRuntimeCollector(t *testing.T) {
	gets, news := int64(0), int64(0)
	c := StartRuntimeCollector(time.Hour, func() (int64, int64) { gets++; news++; return gets, news })
	defer c.Stop()

	if len(c.Samples()) != 1 {
		t.Fatalf("collector should sample once at start, got %d", len(c.Samples()))
	}
	s := c.SampleNow()
	if s.Goroutines <= 0 || s.HeapAllocBytes <= 0 {
		t.Fatalf("implausible sample %+v", s)
	}
	if s.PoolGets == 0 {
		t.Fatal("pool counters not wired")
	}
	if got := c.Last(); got.TSMicros != s.TSMicros {
		t.Fatalf("Last = %+v, want the sample just taken", got)
	}
	if len(c.Samples()) != 2 {
		t.Fatalf("samples = %d, want 2", len(c.Samples()))
	}

	m := NewMetrics()
	c.RegisterMetrics(m)
	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("runtime exposition invalid: %v", err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("predcache_runtime_goroutines")) {
		t.Fatal("runtime gauges missing from exposition")
	}

	c.Stop() // idempotent
	var nilC *RuntimeCollector
	nilC.Stop()
	if nilC.Samples() != nil || nilC.Last() != (RuntimeSample{}) || nilC.SampleNow() != (RuntimeSample{}) {
		t.Fatal("nil collector should be inert")
	}
}

func TestLoggerCorrelation(t *testing.T) {
	var buf bytes.Buffer
	l := NewJSONLogger(&buf, 0)
	l.WithQuery(17).Warn("slow query", "wall_us", int64(1234))
	line := buf.String()
	for _, want := range []string{`"query_id":17`, `"trace_id":17`, `"slow query"`, `"wall_us":1234`} {
		if !bytes.Contains([]byte(line), []byte(want)) {
			t.Errorf("log line missing %s: %s", want, line)
		}
	}
	var nilL *Logger
	nilL.Info("dropped")
	nilL.WithQuery(1).Error("dropped")
	if nilL.With("a", 1) != nil || nilL.Slog() != nil || nilL.Enabled(0) {
		t.Fatal("nil logger should be inert")
	}
	if NewJSONLogger(nil, 0) != nil || NewLogger(nil) != nil {
		t.Fatal("nil sinks should yield disabled loggers")
	}
}
