package engine

import (
	"context"
	"math"
	"testing"

	"github.com/predcache/predcache/internal/expr"
	"github.com/predcache/predcache/internal/storage"
)

// execWith runs a plan under the given parallelism settings.
func execWith(t testing.TB, cat *storage.Catalog, n Node, parallel bool, maxWorkers int) *Relation {
	t.Helper()
	ec := &ExecCtx{Catalog: cat, Snapshot: cat.Snapshot(), Stats: &storage.ScanStats{}}
	if parallel {
		ec.Parallel = true
		ec.MaxWorkers = maxWorkers
	} else {
		ec.Serial = true
	}
	rel, err := n.Execute(ec)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

// requireIdentical asserts two relations are bit-identical: same schema,
// same row order, integer columns equal, float columns equal by exact bit
// pattern (not tolerance — the parallel operators promise determinism).
func requireIdentical(t testing.TB, serial, parallel *Relation) {
	t.Helper()
	if serial.NumRows() != parallel.NumRows() || serial.NumCols() != parallel.NumCols() {
		t.Fatalf("shape mismatch: serial %dx%d, parallel %dx%d",
			serial.NumRows(), serial.NumCols(), parallel.NumRows(), parallel.NumCols())
	}
	for ci := 0; ci < serial.NumCols(); ci++ {
		sc, pc := serial.Col(ci), parallel.Col(ci)
		if sc.Name != pc.Name || sc.Type != pc.Type {
			t.Fatalf("column %d: serial %s/%v, parallel %s/%v", ci, sc.Name, sc.Type, pc.Name, pc.Type)
		}
		for row := 0; row < serial.NumRows(); row++ {
			if sc.Type == storage.Float64 {
				if math.Float64bits(sc.Floats[row]) != math.Float64bits(pc.Floats[row]) {
					t.Fatalf("col %s row %d: serial %v (%x) parallel %v (%x)", sc.Name, row,
						sc.Floats[row], math.Float64bits(sc.Floats[row]),
						pc.Floats[row], math.Float64bits(pc.Floats[row]))
				}
				continue
			}
			if sc.Type == storage.String {
				if serial.StringValue(row, ci) != parallel.StringValue(row, ci) {
					t.Fatalf("col %s row %d: serial %q parallel %q", sc.Name, row,
						serial.StringValue(row, ci), parallel.StringValue(row, ci))
				}
				continue
			}
			if sc.Ints[row] != pc.Ints[row] {
				t.Fatalf("col %s row %d: serial %d parallel %d", sc.Name, row, sc.Ints[row], pc.Ints[row])
			}
		}
	}
}

// TestJoinFloatKeyBitExact is the regression test for the float join-key
// encoding: the old int64(f*1e6) encoding collided keys differing below
// 1e-6 and overflowed large magnitudes. Exact-bits encoding must match
// exactly the equal keys and nothing else.
func TestJoinFloatKeyBitExact(t *testing.T) {
	cat := storage.NewCatalog()
	lSchema := storage.Schema{{Name: "lk", Type: storage.Float64}, {Name: "lv", Type: storage.Int64}}
	rSchema := storage.Schema{{Name: "rk", Type: storage.Float64}, {Name: "rv", Type: storage.Int64}}
	lt, err := cat.CreateTable("l", lSchema, 1)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := cat.CreateTable("r", rSchema, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 1.0000001 vs 1.0000002 differ below the old 1e-6 scale; 1e15 and
	// 1e15+2 both overflow it; 0.3 vs 0.1+0.2 differ only in the last ulp.
	lKeys := []float64{1.0000001, 1.0000002, 1e15, 1e15 + 2, -7.25, 0.3}
	rKeys := []float64{1.0000002, 1e15, -7.25, math.Nextafter(0.3, 1)}
	lb := storage.NewBatch(lSchema)
	for i, k := range lKeys {
		lb.Cols[0].Floats = append(lb.Cols[0].Floats, k)
		lb.Cols[1].Ints = append(lb.Cols[1].Ints, int64(i))
	}
	lb.N = len(lKeys)
	if err := lt.Append(lb, cat.NextXID()); err != nil {
		t.Fatal(err)
	}
	rb := storage.NewBatch(rSchema)
	for i, k := range rKeys {
		rb.Cols[0].Floats = append(rb.Cols[0].Floats, k)
		rb.Cols[1].Ints = append(rb.Cols[1].Ints, int64(100+i))
	}
	rb.N = len(rKeys)
	if err := rt.Append(rb, cat.NextXID()); err != nil {
		t.Fatal(err)
	}

	join := &Join{
		Left: &Scan{Table: "l"}, Right: &Scan{Table: "r"},
		LeftKeys: []string{"lk"}, RightKeys: []string{"rk"}, Type: InnerJoin,
	}
	want := 0
	for _, lk := range lKeys {
		for _, rk := range rKeys {
			if lk == rk {
				want++
			}
		}
	}
	if want != 3 {
		t.Fatalf("test setup: want 3 exact matches, computed %d", want)
	}
	for _, par := range []bool{false, true} {
		rel := execWith(t, cat, join, par, 4)
		if rel.NumRows() != want {
			t.Fatalf("parallel=%v: %d matches, want %d (float keys collided or dropped)", par, rel.NumRows(), want)
		}
	}
}

// TestJoinParallelSerialIdentical checks every join type against the same
// plan executed serially: bit-identical output, including duplicate-match
// order and fused probe-side filters.
func TestJoinParallelSerialIdentical(t *testing.T) {
	d := newTestDB(t, 20000, 40, 4, 41)
	for _, tc := range []struct {
		name string
		plan Node
	}{
		{"inner_int_key", &Join{
			Left: &Scan{Table: "items"}, Right: &Scan{Table: "dims"},
			LeftKeys: []string{"dim_id"}, RightKeys: []string{"d_id"}, Type: InnerJoin,
		}},
		{"left_outer", &Join{
			Left: &Scan{Table: "items"}, Right: &Filter{
				Input: &Scan{Table: "dims"},
				Pred:  expr.Cmp("d_rank", expr.Lt, expr.Int(50)),
			},
			LeftKeys: []string{"dim_id"}, RightKeys: []string{"d_id"}, Type: LeftOuterJoin,
		}},
		{"semi", &Join{
			Left: &Scan{Table: "items"}, Right: &Scan{Table: "dims"},
			LeftKeys: []string{"dim_id"}, RightKeys: []string{"d_id"}, Type: SemiJoin,
		}},
		{"anti", &Join{
			Left: &Scan{Table: "items"}, Right: &Filter{
				Input: &Scan{Table: "dims"},
				Pred:  expr.Cmp("d_rank", expr.Ge, expr.Int(30)),
			},
			LeftKeys: []string{"dim_id"}, RightKeys: []string{"d_id"}, Type: AntiJoin,
		}},
		// Fused streaming filter on the probe side + composite string/int key
		// against a large build side (exercises the partitioned build).
		{"fused_filter_composite_key", &Join{
			Left: &Filter{
				Input: &Scan{Table: "items"},
				Pred: expr.And(
					expr.Cmp("qty", expr.Le, expr.Int(10)),
					expr.Cmp("price", expr.Ge, expr.Float(5)),
				),
			},
			Right:    &Scan{Table: "items", Alias: "r"},
			LeftKeys: []string{"mode", "qty"}, RightKeys: []string{"r.mode", "r.qty"}, Type: SemiJoin,
		}},
		// OR predicates are not streamable: the Filter node must still
		// materialize and the join must agree with the serial plan.
		{"or_filter_not_fused", &Join{
			Left: &Filter{
				Input: &Scan{Table: "items"},
				Pred: expr.Or(
					expr.Cmp("qty", expr.Le, expr.Int(5)),
					expr.Cmp("qty", expr.Ge, expr.Int(45)),
				),
			},
			Right:    &Scan{Table: "dims"},
			LeftKeys: []string{"dim_id"}, RightKeys: []string{"d_id"}, Type: InnerJoin,
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			serial := execWith(t, d.cat, tc.plan, false, 0)
			for _, w := range []int{1, 2, 4, 7} {
				requireIdentical(t, serial, execWith(t, d.cat, tc.plan, true, w))
			}
		})
	}
}

// TestAggParallelSerialIdentical checks grouped and global aggregation
// against the serial plan: identical group order, identical float bits for
// every worker count (the partition/merge structure is deterministic).
func TestAggParallelSerialIdentical(t *testing.T) {
	d := newTestDB(t, 20000, 40, 4, 42)
	allAggs := []AggSpec{
		{Func: AggCount, Name: "cnt"},
		{Func: AggCountDistinct, Arg: expr.Col("qty"), Name: "dq"},
		{Func: AggCountDistinct, Arg: expr.Col("price"), Name: "dp"},
		{Func: AggSum, Arg: expr.Col("price"), Name: "total"},
		{Func: AggAvg, Arg: expr.Col("price"), Name: "avg_p"},
		{Func: AggMin, Arg: expr.Col("price"), Name: "min_p"},
		{Func: AggMax, Arg: expr.Col("price"), Name: "max_p"},
		{Func: AggMin, Arg: expr.Col("qty"), Name: "min_q"},
		{Func: AggMax, Arg: expr.Col("mode"), Name: "max_m"},
	}
	for _, tc := range []struct {
		name string
		plan Node
	}{
		{"global", &Agg{Input: &Scan{Table: "items"}, Aggs: allAggs}},
		{"group_int", &Agg{Input: &Scan{Table: "items"}, GroupBy: []string{"dim_id"}, Aggs: allAggs}},
		{"group_string", &Agg{Input: &Scan{Table: "items"}, GroupBy: []string{"mode"}, Aggs: allAggs}},
		{"group_multi_key", &Agg{Input: &Scan{Table: "items"}, GroupBy: []string{"mode", "qty"}, Aggs: allAggs}},
		{"fused_filter", &Agg{
			Input: &Filter{
				Input: &Scan{Table: "items"},
				Pred:  expr.Cmp("qty", expr.Ge, expr.Int(25)),
			},
			GroupBy: []string{"mode"}, Aggs: allAggs,
		}},
		{"global_fused_filter", &Agg{
			Input: &Filter{
				Input: &Scan{Table: "items"},
				Pred:  expr.Cmp("price", expr.Lt, expr.Float(50)),
			},
			Aggs: allAggs,
		}},
		{"or_filter_not_fused", &Agg{
			Input: &Filter{
				Input: &Scan{Table: "items"},
				Pred: expr.Or(
					expr.Cmp("qty", expr.Le, expr.Int(5)),
					expr.Cmp("qty", expr.Ge, expr.Int(45)),
				),
			},
			GroupBy: []string{"mode"}, Aggs: allAggs,
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			serial := execWith(t, d.cat, tc.plan, false, 0)
			for _, w := range []int{1, 2, 4, 7} {
				requireIdentical(t, serial, execWith(t, d.cat, tc.plan, true, w))
			}
		})
	}
}

// TestJoinAboveAggPipeline runs a full filter→join→agg pipeline both ways.
func TestJoinAboveAggPipeline(t *testing.T) {
	d := newTestDB(t, 20000, 40, 4, 43)
	plan := &Agg{
		Input: &Filter{
			Input: &Join{
				Left: &Filter{
					Input: &Scan{Table: "items"},
					Pred:  expr.Cmp("qty", expr.Ge, expr.Int(10)),
				},
				Right:    &Scan{Table: "dims"},
				LeftKeys: []string{"dim_id"}, RightKeys: []string{"d_id"}, Type: InnerJoin,
			},
			Pred: expr.Cmp("d_rank", expr.Lt, expr.Int(80)),
		},
		GroupBy: []string{"d_cat"},
		Aggs: []AggSpec{
			{Func: AggCount, Name: "cnt"},
			{Func: AggSum, Arg: expr.Col("price"), Name: "total"},
		},
	}
	serial := execWith(t, d.cat, plan, false, 0)
	for _, w := range []int{2, 4} {
		requireIdentical(t, serial, execWith(t, d.cat, plan, true, w))
	}
}

// TestParallelCancellation verifies morsel claims observe a cancelled
// context: join and agg stop with the context error.
func TestParallelCancellation(t *testing.T) {
	d := newTestDB(t, 20000, 40, 4, 44)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, plan := range []Node{
		&Join{Left: &Scan{Table: "items"}, Right: &Scan{Table: "dims"},
			LeftKeys: []string{"dim_id"}, RightKeys: []string{"d_id"}, Type: InnerJoin},
		&Agg{Input: &Scan{Table: "items"}, GroupBy: []string{"mode"},
			Aggs: []AggSpec{{Func: AggCount, Name: "c"}}},
	} {
		ec := &ExecCtx{Catalog: d.cat, Snapshot: d.cat.Snapshot(), Stats: &storage.ScanStats{},
			Parallel: true, MaxWorkers: 4, Ctx: ctx}
		if _, err := plan.Execute(ec); err == nil {
			t.Fatalf("%T: cancelled execution returned no error", plan)
		}
	}
}

// TestWarmParallelPipelineAllocs guards the allocation count of the warm
// morsel-parallel probe/agg path (pattern from the root kernel allocation
// guard): a filter→join→agg pipeline over 20k rows at 4 workers costs a
// fixed number of per-operator allocations (output columns, partial states,
// group tables, goroutines) — roughly 200 — independent of row count. A
// per-row or per-duplicate allocation on the probe or accumulate inner
// loops blows the budget immediately.
func TestWarmParallelPipelineAllocs(t *testing.T) {
	d := newTestDB(t, 20000, 40, 4, 46)
	plan := &Agg{
		Input: &Join{
			Left: &Filter{
				Input: &Scan{Table: "items"},
				Pred:  expr.Cmp("qty", expr.Ge, expr.Int(25)),
			},
			Right:    &Scan{Table: "dims"},
			LeftKeys: []string{"dim_id"}, RightKeys: []string{"d_id"}, Type: InnerJoin,
		},
		GroupBy: []string{"d_cat"},
		Aggs:    []AggSpec{{Func: AggCount, Name: "c"}, {Func: AggSum, Arg: expr.Col("price"), Name: "s"}},
	}
	run := func() {
		ec := &ExecCtx{Catalog: d.cat, Snapshot: d.cat.Snapshot(), Stats: &storage.ScanStats{},
			Parallel: true, MaxWorkers: 4}
		if _, err := plan.Execute(ec); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		run() // warm the scratch pools
	}
	const budget = 300
	if got := testing.AllocsPerRun(20, run); got > budget {
		t.Fatalf("warm parallel pipeline allocates %.1f/op, budget %d", got, budget)
	}
}

// TestParallelStatsAccounting checks the morsel/worker counters flow into
// ScanStats.
func TestParallelStatsAccounting(t *testing.T) {
	d := newTestDB(t, 20000, 40, 4, 45)
	plan := &Agg{Input: &Scan{Table: "items"}, GroupBy: []string{"mode"},
		Aggs: []AggSpec{{Func: AggSum, Arg: expr.Col("price"), Name: "s"}}}
	stats := &storage.ScanStats{}
	ec := &ExecCtx{Catalog: d.cat, Snapshot: d.cat.Snapshot(), Stats: stats, Parallel: true, MaxWorkers: 4}
	if _, err := plan.Execute(ec); err != nil {
		t.Fatal(err)
	}
	if stats.Morsels.Load() == 0 {
		t.Fatal("no morsels recorded")
	}
	if stats.WorkerNanos.Load() == 0 {
		t.Fatal("no worker time recorded")
	}
}
