package engine

import (
	"github.com/predcache/predcache/internal/storage"
)

// PruneScanProjections narrows every Scan's Project list to the columns the
// plan actually consumes above it. Combined with the partial decoder this is
// what makes late materialization pay off: a count(*) scan no longer
// decompresses every column of every qualifying row, and a cache-hit point
// query touches only the projected columns' blocks.
//
// The pass walks the tree top-down carrying the set of relation-level column
// names the parent requires. Scans whose Project is already set (hand-built
// plans) are left alone, as is any subtree containing an operator the pass
// does not understand.
func PruneScanProjections(root Node, cat *storage.Catalog) {
	pruneNode(root, nil, true, cat)
}

// colSet is a set of relation-level (possibly alias-qualified) column names.
type colSet map[string]bool

func (s colSet) add(names ...string) {
	for _, n := range names {
		s[n] = true
	}
}

// pruneNode narrows scans below n given that the parent consumes `need`
// columns of n's output (all=true means every column is consumed).
func pruneNode(n Node, need colSet, all bool, cat *storage.Catalog) {
	switch t := n.(type) {
	case *Project:
		// A projection computes exactly its expressions, regardless of which
		// output columns the parent keeps.
		in := colSet{}
		for _, e := range t.Exprs {
			in.add(e.Expr.ScalarColumns(nil)...)
		}
		pruneNode(t.Input, in, false, cat)
	case *Agg:
		in := colSet{}
		in.add(t.GroupBy...)
		for _, a := range t.Aggs {
			if a.Arg != nil {
				in.add(a.Arg.ScalarColumns(nil)...)
			}
		}
		pruneNode(t.Input, in, false, cat)
	case *Filter:
		if !all {
			need = copySet(need)
			need.add(t.Pred.Columns(nil)...)
		}
		pruneNode(t.Input, need, all, cat)
	case *Sort:
		if !all {
			need = copySet(need)
			for _, k := range t.Keys {
				need.add(k.Col)
			}
		}
		pruneNode(t.Input, need, all, cat)
	case *Limit:
		pruneNode(t.Input, need, all, cat)
	case *Join:
		// Both sides must still produce their join keys; everything else the
		// parent needs is routed to whichever side owns the column. Names
		// produced by the join itself (__matched) belong to neither side.
		leftOut := outputCols(t.Left, cat)
		rightOut := outputCols(t.Right, cat)
		if all || leftOut == nil || rightOut == nil {
			pruneNode(t.Left, nil, true, cat)
			pruneNode(t.Right, nil, true, cat)
			return
		}
		leftNeed := colSet{}
		rightNeed := colSet{}
		leftNeed.add(t.LeftKeys...)
		rightNeed.add(t.RightKeys...)
		for c := range need {
			if leftOut[c] {
				leftNeed[c] = true
			} else if rightOut[c] {
				rightNeed[c] = true
			}
		}
		pruneNode(t.Left, leftNeed, false, cat)
		pruneNode(t.Right, rightNeed, false, cat)
	case *Scan:
		if all || t.Project != nil {
			return
		}
		tbl, ok := cat.Table(t.Table)
		if !ok {
			return
		}
		prefix := ""
		if t.Alias != "" {
			prefix = t.Alias + "."
		}
		var proj []string
		for _, def := range tbl.Schema() {
			if need[prefix+def.Name] {
				proj = append(proj, def.Name)
			}
		}
		if len(proj) == 0 {
			// The output row count must survive (count(*) over a bare scan),
			// so keep one column. Prefer a filter column — its blocks are the
			// ones the scan already touches — else the first schema column.
			name := tbl.Schema()[0].Name
			if t.Filter != nil {
				if cols := t.Filter.Columns(nil); len(cols) > 0 {
					name = cols[0]
				}
			}
			proj = []string{name}
		}
		t.Project = proj
	case *VirtualScan:
		if all || t.Project != nil {
			return
		}
		prefix := ""
		if t.Alias != "" {
			prefix = t.Alias + "."
		}
		schema := t.Source.Schema()
		var proj []string
		for _, def := range schema {
			if need[prefix+def.Name] {
				proj = append(proj, def.Name)
			}
		}
		if len(proj) == 0 {
			// Preserve the row count (count(*) over a bare virtual scan).
			name := schema[0].Name
			if t.Filter != nil {
				if cols := t.Filter.Columns(nil); len(cols) > 0 {
					name = cols[0]
				}
			}
			proj = []string{name}
		}
		t.Project = proj
	}
}

// outputCols returns the set of column names the node's output relation
// carries, or nil when the node (or a descendant feeding its output) is not
// understood.
func outputCols(n Node, cat *storage.Catalog) colSet {
	switch t := n.(type) {
	case *Scan:
		tbl, ok := cat.Table(t.Table)
		if !ok {
			return nil
		}
		prefix := ""
		if t.Alias != "" {
			prefix = t.Alias + "."
		}
		out := colSet{}
		if t.Project != nil {
			for _, name := range t.Project {
				out[prefix+name] = true
			}
			return out
		}
		for _, def := range tbl.Schema() {
			out[prefix+def.Name] = true
		}
		return out
	case *VirtualScan:
		prefix := ""
		if t.Alias != "" {
			prefix = t.Alias + "."
		}
		out := colSet{}
		if t.Project != nil {
			for _, name := range t.Project {
				out[prefix+name] = true
			}
			return out
		}
		for _, def := range t.Source.Schema() {
			out[prefix+def.Name] = true
		}
		return out
	case *Join:
		l := outputCols(t.Left, cat)
		r := outputCols(t.Right, cat)
		if l == nil || r == nil {
			return nil
		}
		for c := range r {
			l[c] = true
		}
		if t.Type == LeftOuterJoin {
			l["__matched"] = true
		}
		return l
	case *Project:
		out := colSet{}
		for _, e := range t.Exprs {
			out[e.Name] = true
		}
		return out
	case *Agg:
		out := colSet{}
		out.add(t.GroupBy...)
		for _, a := range t.Aggs {
			out[a.Name] = true
		}
		return out
	case *Filter:
		return outputCols(t.Input, cat)
	case *Sort:
		return outputCols(t.Input, cat)
	case *Limit:
		return outputCols(t.Input, cat)
	}
	return nil
}

func copySet(s colSet) colSet {
	out := make(colSet, len(s)+4)
	for c := range s {
		out[c] = true
	}
	return out
}
