package engine

import (
	"fmt"
	"strings"
)

// Explain renders a plan tree as indented text (the pcsh \explain command
// and debugging aid).
func Explain(n Node) string {
	var b strings.Builder
	explainNode(&b, n, 0)
	return b.String()
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

// nodeLabel returns the one-line header describing a plan node (no
// children). Explain and the trace-span instrumentation share it so
// EXPLAIN and EXPLAIN ANALYZE name operators identically.
func nodeLabel(n Node) string {
	var b strings.Builder
	switch t := n.(type) {
	case *Scan:
		fmt.Fprintf(&b, "Scan %s", t.Table)
		if t.Alias != "" {
			fmt.Fprintf(&b, " as %s", t.Alias)
		}
		if t.Filter != nil {
			fmt.Fprintf(&b, " filter=%s", t.Filter.Key())
		}
		if t.Project != nil {
			fmt.Fprintf(&b, " cols=%v", t.Project)
		}
	case *VirtualScan:
		fmt.Fprintf(&b, "VirtualScan %s", t.Source.Name())
		if t.Alias != "" {
			fmt.Fprintf(&b, " as %s", t.Alias)
		}
		if t.Filter != nil {
			fmt.Fprintf(&b, " filter=%s", t.Filter.Key())
		}
		if t.Project != nil {
			fmt.Fprintf(&b, " cols=%v", t.Project)
		}
	case *Join:
		fmt.Fprintf(&b, "Join %s on %v = %v", t.Type, t.LeftKeys, t.RightKeys)
		if t.PushSemiJoin {
			b.WriteString(" [semi-join filter pushdown]")
		}
	case *Agg:
		fmt.Fprintf(&b, "Aggregate group=%v aggs=[", t.GroupBy)
		for i, a := range t.Aggs {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a.Name)
		}
		b.WriteString("]")
	case *Project:
		b.WriteString("Project [")
		for i, e := range t.Exprs {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(e.Name)
		}
		b.WriteString("]")
	case *Filter:
		fmt.Fprintf(&b, "Filter %s", t.Pred.Key())
	case *Sort:
		b.WriteString("Sort [")
		for i, k := range t.Keys {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(k.Col)
			if k.Desc {
				b.WriteString(" desc")
			}
		}
		b.WriteString("]")
	case *Limit:
		fmt.Fprintf(&b, "Limit %d", t.N)
	case *Union:
		b.WriteString("Union")
	case *Materialized:
		fmt.Fprintf(&b, "Materialized (%d rows)", t.Rel.NumRows())
	default:
		fmt.Fprintf(&b, "%T", n)
	}
	return b.String()
}

func explainNode(b *strings.Builder, n Node, depth int) {
	indent(b, depth)
	b.WriteString(nodeLabel(n))
	b.WriteByte('\n')
	switch t := n.(type) {
	case *Join:
		explainNode(b, t.Left, depth+1)
		explainNode(b, t.Right, depth+1)
	case *Agg:
		explainNode(b, t.Input, depth+1)
	case *Project:
		explainNode(b, t.Input, depth+1)
	case *Filter:
		explainNode(b, t.Input, depth+1)
	case *Sort:
		explainNode(b, t.Input, depth+1)
	case *Limit:
		explainNode(b, t.Input, depth+1)
	case *Union:
		for _, in := range t.Inputs {
			explainNode(b, in, depth+1)
		}
	}
}
