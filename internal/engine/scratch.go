package engine

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/predcache/predcache/internal/expr"
	"github.com/predcache/predcache/internal/storage"
)

// scanScratch owns every per-slice scan buffer: the BlockCtx and its
// per-column decode vectors, per-block bookkeeping flags, the selection
// vector, the kernel span buffers, the candidate list, and the relBuilder
// with its output backing arrays. Instances are recycled through a
// sync.Pool, so a steady-state warm scan allocates nothing per execution.
//
// Ownership discipline: a scratch is private to one slice scan goroutine
// from acquire until release. Execute releases it only after the per-slice
// outputs have been merged (copied) into the result relation — the output
// backing arrays are recaptured at release and handed to the next scan.
type scanScratch struct {
	numCols int
	ctx     *expr.BlockCtx
	ints    [][]int64   // per-column decode buffers, BlockSize, lazy
	floats  [][]float64 // per-column decode buffers, BlockSize, lazy
	loaded  []bool      // column vector valid for the current block
	counted []bool      // column counted in blocks.accessed this block
	decoded []bool      // column counted in blocks.decoded this block

	sel    []int
	spansA []storage.RowRange // kernel ping-pong buffer / candidate spans
	spansB []storage.RowRange // kernel ping-pong buffer
	qspans []storage.RowRange // qualifying runs for late materialization
	cands  []storage.RowRange // per-slice candidate ranges
	failed []int              // kernel indexes needing fallback this block

	bp sliceBoundsProvider // pointer-passed to Prune: no per-block boxing

	rb relBuilder
	// Recycled backing arrays for the relBuilder output columns, indexed by
	// projection position. Recaptured at release after Execute's merge has
	// copied the values out.
	outInts   [][]int64
	outFloats [][]float64
}

var scanScratchPool = sync.Pool{New: func() any {
	scratchPoolNews.Add(1)
	return &scanScratch{}
}}

// scratchPoolGets counts scratch acquisitions; scratchPoolNews counts the
// subset that allocated a fresh scratch (pool miss). gets − news is the
// recycle count: the runtime collector samples both into pc.runtime so a
// pool-efficiency regression (GC pressure stealing scratches, a leak on an
// error path) is visible without a heap profile.
var scratchPoolGets, scratchPoolNews atomic.Int64

// ScratchPoolStats reports lifetime scan-scratch pool counters.
func ScratchPoolStats() (gets, news int64) {
	return scratchPoolGets.Load(), scratchPoolNews.Load()
}

// acquireScanScratch returns a scratch sized for numCols columns with a
// reset BlockCtx. dicts is shared read-only across slice goroutines.
func acquireScanScratch(numCols int, dicts []*storage.Dict) *scanScratch {
	scratchPoolGets.Add(1)
	scr := scanScratchPool.Get().(*scanScratch)
	if cap(scr.ints) < numCols {
		scr.ints = make([][]int64, numCols)
		scr.floats = make([][]float64, numCols)
		scr.loaded = make([]bool, numCols)
		scr.counted = make([]bool, numCols)
		scr.decoded = make([]bool, numCols)
	} else {
		scr.ints = scr.ints[:numCols]
		scr.floats = scr.floats[:numCols]
		scr.loaded = scr.loaded[:numCols]
		scr.counted = scr.counted[:numCols]
		scr.decoded = scr.decoded[:numCols]
	}
	scr.numCols = numCols
	if scr.ctx == nil {
		scr.ctx = expr.NewBlockCtx(numCols, dicts)
	}
	scr.ctx.Reset(numCols, dicts)
	if scr.sel == nil {
		scr.sel = make([]int, 0, storage.BlockSize)
	}
	return scr
}

// release recaptures the relBuilder's output backing arrays and returns the
// scratch to the pool. Must only be called once the caller has copied every
// output value (Execute's merge); the arrays are overwritten by the next
// scan that draws this scratch.
//
// pclint:recycled
func (scr *scanScratch) release() {
	for j := range scr.rb.cols {
		c := &scr.rb.cols[j]
		if c.Ints != nil {
			scr.outInts[j] = c.Ints[:0]
		}
		if c.Floats != nil {
			scr.outFloats[j] = c.Floats[:0]
		}
		c.Ints, c.Floats, c.Dict = nil, nil, nil
	}
	scr.bp.slice = nil
	scanScratchPool.Put(scr)
}

// relBuilderFor prepares the scratch-owned relBuilder for one slice's
// projection, reusing the recycled output backing arrays.
func (scr *scanScratch) relBuilderFor(tbl *storage.Table, project []string, alias string) (*relBuilder, error) {
	rb := &scr.rb
	rb.cols = rb.cols[:0]
	rb.idx = rb.idx[:0]
	for len(scr.outInts) < len(project) {
		scr.outInts = append(scr.outInts, nil)
		scr.outFloats = append(scr.outFloats, nil)
	}
	for j, name := range project {
		ci := tbl.ColumnIndex(name)
		if ci < 0 {
			return nil, fmt.Errorf("engine: table %s has no column %q", tbl.Name(), name)
		}
		outName := name
		if alias != "" {
			outName = alias + "." + name
		}
		col := RelCol{Name: outName, Type: tbl.ColumnType(ci), Dict: tbl.Dict(ci)}
		if col.Type == storage.Float64 {
			col.Floats = scr.outFloats[j][:0]
		} else {
			col.Ints = scr.outInts[j][:0]
		}
		rb.cols = append(rb.cols, col)
		rb.idx = append(rb.idx, ci)
	}
	return rb, nil
}

// resetBlock clears the per-block column bookkeeping.
func (scr *scanScratch) resetBlock() {
	for i := 0; i < scr.numCols; i++ {
		scr.loaded[i] = false
		scr.counted[i] = false
		scr.decoded[i] = false
	}
}

// markAccessed counts a (column, block) touch once, kernel or decode.
func (scr *scanScratch) markAccessed(ci int, res *sliceScanResult) {
	if !scr.counted[ci] {
		scr.counted[ci] = true
		res.blocksAccessed++
	}
}

// markDecoded counts a (column, block) decompression once.
func (scr *scanScratch) markDecoded(ci int, res *sliceScanResult) {
	if !scr.decoded[ci] {
		scr.decoded[ci] = true
		res.blocksDecoded++
	}
}

// morselScratch owns the per-worker buffers of the morsel-parallel join and
// aggregation paths: the selection vector one morsel's fused filters compact,
// the chunked scalar-evaluation vectors, per-row group-state offsets and
// partition ids, partition counters, and the composite-key encode buffer.
// Like scanScratch, an instance is private to one worker goroutine from
// acquire until release; steady-state warm executions allocate nothing here.
type morselScratch struct {
	sel    []int     // morsel selection vector (cap morselSize)
	gidx   []int32   // per-selected-row group state offsets
	pids   []uint8   // per-selected-row partition ids
	ivec   []int64   // chunked integer scalar evaluation
	fvec   []float64 // chunked float scalar evaluation
	pcount []int32   // per-partition counts (counting-sort scatter)
	pcur   []int32   // per-partition running cursors
	key    []byte    // composite join/group key encoding
}

var morselScratchPool = sync.Pool{New: func() any {
	scratchPoolNews.Add(1)
	return &morselScratch{}
}}

// acquireMorselScratch draws a worker scratch from the pool. It shares the
// scratchPoolGets/News counters with the scan scratch, so pc.runtime's
// pool-efficiency signal covers both families.
func acquireMorselScratch() *morselScratch {
	scratchPoolGets.Add(1)
	return morselScratchPool.Get().(*morselScratch)
}

// release returns the scratch to the pool. The caller must not retain any
// slice handed out by the scratch (selection vectors, eval chunks, the key
// buffer) past this point.
//
// pclint:recycled
func (scr *morselScratch) release() {
	morselScratchPool.Put(scr)
}

// identitySel fills the scratch selection vector with rows [lo, hi).
//
// pclint:allowalloc amortized one-time growth to morsel capacity; recycled
// scratches reuse the buffer across every subsequent morsel.
func (scr *morselScratch) identitySel(lo, hi int) []int {
	n := hi - lo
	if cap(scr.sel) < n {
		scr.sel = make([]int, n)
	}
	sel := scr.sel[:n]
	for i := range sel {
		sel[i] = lo + i
	}
	return sel
}

// selFromInt32 widens a scattered int32 row segment into the scratch
// selection vector (expr evaluation takes []int selections).
//
// pclint:allowalloc amortized one-time growth to morsel capacity; recycled
// scratches reuse the buffer across every subsequent chunk.
func (scr *morselScratch) selFromInt32(rows []int32) []int {
	if cap(scr.sel) < len(rows) {
		scr.sel = make([]int, len(rows))
	}
	sel := scr.sel[:len(rows)]
	for i, r := range rows {
		sel[i] = int(r)
	}
	return sel
}

// vecs returns the chunk evaluation vectors sized for n rows.
//
// pclint:allowalloc amortized growth to chunk capacity, recycled afterwards.
func (scr *morselScratch) vecs(n int) ([]int64, []float64) {
	if cap(scr.ivec) < n {
		scr.ivec = make([]int64, n)
		scr.fvec = make([]float64, n)
	}
	return scr.ivec[:n], scr.fvec[:n]
}

// groupIdx returns the per-row group-offset vector sized for n rows.
//
// pclint:allowalloc amortized growth to chunk capacity, recycled afterwards.
func (scr *morselScratch) groupIdx(n int) []int32 {
	if cap(scr.gidx) < n {
		scr.gidx = make([]int32, n)
	}
	return scr.gidx[:n]
}

// partIds returns the per-row partition-id vector sized for n rows.
//
// pclint:allowalloc amortized growth to chunk capacity, recycled afterwards.
func (scr *morselScratch) partIds(n int) []uint8 {
	if cap(scr.pids) < n {
		scr.pids = make([]uint8, n)
	}
	return scr.pids[:n]
}

// partCounters returns zeroed per-partition count and cursor vectors.
//
// pclint:allowalloc amortized growth to the partition fan-out (≤ 64).
func (scr *morselScratch) partCounters(p int) (count, cur []int32) {
	if cap(scr.pcount) < p {
		scr.pcount = make([]int32, p)
		scr.pcur = make([]int32, p)
	}
	count, cur = scr.pcount[:p], scr.pcur[:p]
	for i := range count {
		count[i] = 0
		cur[i] = 0
	}
	return count, cur
}

// growInts extends dst by n values without a temporary allocation and
// returns the grown slice; the new values occupy dst[len(dst)-n:].
//
// pclint:allowalloc amortized doubling growth of recycled output arrays —
// steady-state warm scans reuse the full capacity and never re-enter the
// make.
func growInts(dst []int64, n int) []int64 {
	m := len(dst)
	if cap(dst) < m+n {
		c := 2 * cap(dst)
		if c < m+n {
			c = m + n
		}
		grown := make([]int64, m, c)
		copy(grown, dst)
		dst = grown
	}
	return dst[: m+n : cap(dst)]
}

// growFloats is growInts for float columns.
//
// pclint:allowalloc amortized doubling growth, same as growInts.
func growFloats(dst []float64, n int) []float64 {
	m := len(dst)
	if cap(dst) < m+n {
		c := 2 * cap(dst)
		if c < m+n {
			c = m + n
		}
		grown := make([]float64, m, c)
		copy(grown, dst)
		dst = grown
	}
	return dst[: m+n : cap(dst)]
}
