package engine

import (
	"fmt"
	"sort"

	"github.com/predcache/predcache/internal/core"
	"github.com/predcache/predcache/internal/expr"
	"github.com/predcache/predcache/internal/storage"
)

// Execute evaluates the projection expressions.
func (p *Project) Execute(ec *ExecCtx) (rel *Relation, err error) {
	sp := beginNodeSpan(ec, p)
	defer func() { endNodeSpan(sp, rel, err) }()
	if err = ec.Cancelled(); err != nil {
		return nil, err
	}
	in, err := p.Input.Execute(ec)
	if err != nil {
		return nil, err
	}
	setRowsIn(sp, in)
	ctx := in.blockCtx()
	sel := make([]int, in.NumRows())
	for i := range sel {
		sel[i] = i
	}
	out := make([]RelCol, 0, len(p.Exprs))
	for _, ns := range p.Exprs {
		name := ns.Name
		if name == "" {
			name = ns.Expr.Key()
		}
		// Column references pass through untouched, preserving type and
		// dictionary.
		if cr, ok := ns.Expr.(*expr.ColRef); ok {
			src := in.ColByName(cr.Name)
			if src == nil {
				return nil, fmt.Errorf("engine: projection column %q not found", cr.Name)
			}
			dst := *src
			dst.Name = name
			out = append(out, dst)
			continue
		}
		bs, err := expr.BindScalar(ns.Expr, in)
		if err != nil {
			return nil, err
		}
		if bs.Out().IsInt() {
			vals := make([]int64, in.NumRows())
			bs.EvalI(ctx, sel, vals)
			out = append(out, RelCol{Name: name, Type: storage.Int64, Ints: vals})
		} else {
			vals := make([]float64, in.NumRows())
			bs.EvalF(ctx, sel, vals)
			out = append(out, RelCol{Name: name, Type: storage.Float64, Floats: vals})
		}
	}
	return NewRelation(out)
}

// Execute filters rows of the input relation.
func (f *Filter) Execute(ec *ExecCtx) (rel *Relation, err error) {
	sp := beginNodeSpan(ec, f)
	defer func() { endNodeSpan(sp, rel, err) }()
	if err = ec.Cancelled(); err != nil {
		return nil, err
	}
	in, err := f.Input.Execute(ec)
	if err != nil {
		return nil, err
	}
	setRowsIn(sp, in)
	bound, err := expr.Bind(f.Pred, in)
	if err != nil {
		return nil, err
	}
	ctx := in.blockCtx()
	sel := make([]int, in.NumRows())
	for i := range sel {
		sel[i] = i
	}
	sel = bound.Eval(ctx, sel)
	return in.gather(sel), nil
}

// Execute sorts the input.
func (s *Sort) Execute(ec *ExecCtx) (rel *Relation, err error) {
	sp := beginNodeSpan(ec, s)
	defer func() { endNodeSpan(sp, rel, err) }()
	if err = ec.Cancelled(); err != nil {
		return nil, err
	}
	in, err := s.Input.Execute(ec)
	if err != nil {
		return nil, err
	}
	setRowsIn(sp, in)
	type keyCol struct {
		col  *RelCol
		desc bool
	}
	keys := make([]keyCol, len(s.Keys))
	for i, k := range s.Keys {
		c := in.ColByName(k.Col)
		if c == nil {
			return nil, fmt.Errorf("engine: sort column %q not found", k.Col)
		}
		keys[i] = keyCol{c, k.Desc}
	}
	perm := make([]int, in.NumRows())
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(x, y int) bool {
		rx, ry := perm[x], perm[y]
		for _, k := range keys {
			var cmp int
			switch k.col.Type {
			case storage.Float64:
				a, b := k.col.Floats[rx], k.col.Floats[ry]
				switch {
				case a < b:
					cmp = -1
				case a > b:
					cmp = 1
				}
			case storage.String:
				a, b := k.col.Dict.Value(k.col.Ints[rx]), k.col.Dict.Value(k.col.Ints[ry])
				switch {
				case a < b:
					cmp = -1
				case a > b:
					cmp = 1
				}
			default:
				a, b := k.col.Ints[rx], k.col.Ints[ry]
				switch {
				case a < b:
					cmp = -1
				case a > b:
					cmp = 1
				}
			}
			if cmp != 0 {
				if k.desc {
					return cmp > 0
				}
				return cmp < 0
			}
		}
		return false
	})
	return in.gather(perm), nil
}

// Execute truncates the input to N rows.
func (l *Limit) Execute(ec *ExecCtx) (rel *Relation, err error) {
	sp := beginNodeSpan(ec, l)
	defer func() { endNodeSpan(sp, rel, err) }()
	if err = ec.Cancelled(); err != nil {
		return nil, err
	}
	in, err := l.Input.Execute(ec)
	if err != nil {
		return nil, err
	}
	setRowsIn(sp, in)
	if in.NumRows() <= l.N {
		return in, nil
	}
	rows := make([]int, l.N)
	for i := range rows {
		rows[i] = i
	}
	return in.gather(rows), nil
}

// Union concatenates inputs with identical schemas (names and types). It is
// used to express queries this engine's join types cannot produce directly.
type Union struct {
	Inputs []Node
}

// CacheDescriptor: unions are not used as semi-join build sides.
func (u *Union) CacheDescriptor(*ExecCtx) (string, []core.BuildDep, bool) { return "", nil, false }

// Execute concatenates the inputs.
func (u *Union) Execute(ec *ExecCtx) (rel *Relation, err error) {
	sp := beginNodeSpan(ec, u)
	defer func() { endNodeSpan(sp, rel, err) }()
	if len(u.Inputs) == 0 {
		return nil, fmt.Errorf("engine: empty union")
	}
	rels := make([]*Relation, len(u.Inputs))
	for i, in := range u.Inputs {
		if err := ec.Cancelled(); err != nil {
			return nil, err
		}
		r, err := in.Execute(ec)
		if err != nil {
			return nil, err
		}
		rels[i] = r
	}
	first := rels[0]
	out := make([]RelCol, first.NumCols())
	for ci := 0; ci < first.NumCols(); ci++ {
		proto := first.Col(ci)
		dst := RelCol{Name: proto.Name, Type: proto.Type, Dict: proto.Dict}
		// Detect dictionary mismatches across string inputs.
		needsReencode := false
		for _, r := range rels[1:] {
			c := r.Col(ci)
			if c.Name != proto.Name || c.Type != proto.Type {
				return nil, fmt.Errorf("engine: union schema mismatch at column %d (%s/%s)", ci, proto.Name, c.Name)
			}
			if proto.Type == storage.String && c.Dict != proto.Dict {
				needsReencode = true
			}
		}
		if proto.Type == storage.String && needsReencode {
			nd := storage.NewDict()
			dst.Dict = nd
			for _, r := range rels {
				c := r.Col(ci)
				for _, code := range c.Ints {
					dst.Ints = append(dst.Ints, nd.Code(c.Dict.Value(code)))
				}
			}
		} else if proto.Type == storage.Float64 {
			for _, r := range rels {
				dst.Floats = append(dst.Floats, r.Col(ci).Floats...)
			}
		} else {
			for _, r := range rels {
				dst.Ints = append(dst.Ints, r.Col(ci).Ints...)
			}
		}
		out[ci] = dst
	}
	return NewRelation(out)
}

// Materialized wraps an already-computed relation as a plan node (used by
// the materialized-view baseline to run plan fragments over view contents).
type Materialized struct {
	Rel *Relation
}

// CacheDescriptor: materialized relations are not cache-describable.
func (m *Materialized) CacheDescriptor(*ExecCtx) (string, []core.BuildDep, bool) {
	return "", nil, false
}

// Execute returns the wrapped relation.
func (m *Materialized) Execute(*ExecCtx) (*Relation, error) { return m.Rel, nil }
