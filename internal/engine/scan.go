package engine

import (
	"fmt"
	"sync"

	"github.com/predcache/predcache/internal/bloom"
	"github.com/predcache/predcache/internal/core"
	"github.com/predcache/predcache/internal/expr"
	"github.com/predcache/predcache/internal/obs"
	"github.com/predcache/predcache/internal/storage"
)

// semiJoinFilter is a runtime semi-join filter pushed into a probe-side
// scan by a hash join (§4.4): a Bloom filter over the build side's join
// keys plus — when the build side is describable — the key components that
// let the predicate cache index the filtered scan.
type semiJoinFilter struct {
	keyCol string // probe-side join key column
	filter *bloom.Filter
	// stringKeys marks that the bloom holds FNV hashes of string values
	// rather than raw integer keys.
	stringKeys bool

	// cacheable semi-joins contribute to the scan's cache key.
	cacheable bool
	sjKey     core.SemiJoinKey
	deps      []core.BuildDep
}

// FNV-1a 64-bit parameters (hash/fnv), inlined so hashing a join key
// allocates neither a hasher nor a []byte copy of the string.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hashString hashes a string join key for bloom insertion/probing. It is
// bit-identical to fnv.New64a().Write([]byte(s)).Sum64(), so filters built
// by the join probe the same values the scan-side memo computes.
//
// pclint:noalloc
func hashString(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// sliceScanResult is the per-slice outcome of a scan. The counters are
// slice-local so the hot loop avoids shared atomics; Execute folds them into
// ec.Stats (and the scan's trace span) once per scan.
type sliceScanResult struct {
	rel         *relBuilder
	plainRanges []storage.RowRange // rows passing the filter (pre-bloom, pre-visibility)
	sjRanges    []storage.RowRange // rows passing filter + semi-join filters
	numRows     int
	err         error
	// scratch is the pooled buffer set backing rel's output columns; Execute
	// releases it after the merge copies the values out.
	scratch *scanScratch

	rowsScanned       int64
	rowsQualified     int64
	blocksAccessed    int64
	blocksZonePruned  int64 // zone maps eliminated the block (step 1)
	blocksCachePruned int64 // cached candidate ranges excluded the block entirely
	blocksDecoded     int64 // (column, block) pairs actually decompressed
	blocksKernel      int64 // kernel evaluations on encoded (column, block) pairs
	rowsDecoded       int64 // values materialized by the (partial) decoder
}

// sliceBoundsProvider adapts a slice's per-block zone maps for pruning.
type sliceBoundsProvider struct {
	slice *storage.Slice
	block int
}

func (p *sliceBoundsProvider) IntBounds(col int) (int64, int64, bool) {
	return p.slice.Column(col).IntBounds(p.block)
}

func (p *sliceBoundsProvider) FloatBounds(col int) (float64, float64, bool) {
	return p.slice.Column(col).FloatBounds(p.block)
}

// relBuilder accumulates projected output values for one slice. Instances
// live inside a scanScratch; their output backing arrays are recycled.
type relBuilder struct {
	cols []RelCol
	idx  []int // column index in the base table
}

// gatherRange appends the projected values of block-relative rows [lo, hi)
// of block blk directly from the compressed column stores (partial decode,
// no intermediate vector).
func (rb *relBuilder) gatherRange(slice *storage.Slice, blk, lo, hi int, scr *scanScratch, res *sliceScanResult) {
	n := hi - lo
	for outIdx, ci := range rb.idx {
		scr.markAccessed(ci, res)
		scr.markDecoded(ci, res)
		res.rowsDecoded += int64(n)
		dst := &rb.cols[outIdx]
		if dst.Type == storage.Float64 {
			dst.Floats = growFloats(dst.Floats, n)
			slice.Column(ci).ReadFloatRange(blk, lo, hi, dst.Floats[len(dst.Floats)-n:])
		} else {
			dst.Ints = growInts(dst.Ints, n)
			slice.Column(ci).ReadIntRange(blk, lo, hi, dst.Ints[len(dst.Ints)-n:])
		}
	}
}

// Execute runs the scan: the paper's Figure 11 flow. It checks the
// predicate cache for the scan expression (step 1), restricts the
// range-restricted scan to cached candidate ranges on a hit (step 5),
// re-evaluates the predicate on candidates to eliminate false positives,
// and inserts/extends cache entries from the qualifying ranges the
// vectorized scan produced (steps 3-4).
func (s *Scan) Execute(ec *ExecCtx) (rel *Relation, err error) {
	sp := beginNodeSpan(ec, s)
	defer func() { endNodeSpan(sp, rel, err) }()

	tbl, ok := ec.Catalog.Table(s.Table)
	if !ok {
		return nil, fmt.Errorf("engine: unknown table %s", s.Table)
	}
	pred := s.Filter
	if pred == nil {
		pred = expr.TruePred{}
	}

	project := s.Project
	if project == nil {
		for _, def := range tbl.Schema() {
			project = append(project, def.Name)
		}
	}

	sjs := s.runtimeSJ
	sjKeyCols := make([]int, len(sjs))
	for i, sj := range sjs {
		ci := tbl.ColumnIndex(sj.keyCol)
		if ci < 0 {
			return nil, fmt.Errorf("engine: semi-join key %s not in table %s", sj.keyCol, s.Table)
		}
		sjKeyCols[i] = ci
	}

	// Cache keys: the plain filter key, plus the semi-join key when every
	// pushed filter is describable (§4.4: entries with and without semi-join
	// filters live in the same cache).
	plainKey := core.Key{Table: s.Table, Predicate: pred.Key()}
	var sjCacheKey core.Key
	var sjDeps []core.BuildDep
	sjKeyOK := false
	if len(sjs) > 0 && !ec.DisableSemiJoinCache {
		sjKeyOK = true
		sjCacheKey = core.Key{Table: s.Table, Predicate: pred.Key()}
		for _, sj := range sjs {
			if !sj.cacheable {
				sjKeyOK = false
				break
			}
			sjCacheKey.SemiJoins = append(sjCacheKey.SemiJoins, sj.sjKey)
			sjDeps = append(sjDeps, sj.deps...)
		}
	}

	// Step 1: cache lookup, most selective entry wins.
	var cand core.Candidates
	hit := false
	useCache := ec.Cache != nil && ec.Cache.Enabled()
	var statsBefore core.Stats
	if sp.Active() && useCache {
		statsBefore = ec.Cache.Stats()
	}
	if useCache && !ec.ForceCacheInsertOnly {
		lsp := ec.Trace.Begin(obs.KindCache, "lookup")
		keys := []string{plainKey.String()}
		if sjKeyOK {
			keys = append(keys, sjCacheKey.String())
		}
		cand, hit = ec.Cache.Best(keys)
		if lsp.Active() {
			if hit {
				lsp.SetStr("outcome", "hit")
				lsp.SetStr("entry", cand.Key)
			} else {
				lsp.SetStr("outcome", "miss")
			}
		}
		lsp.End()
	}
	if ec.Stats != nil {
		if hit {
			ec.Stats.CacheHits.Add(1)
		} else if useCache {
			ec.Stats.CacheMisses.Add(1)
		}
	}
	usedSJEntry := hit && cand.Key != plainKey.String()

	// The layout epoch is captured before the scan lock: if a vacuum slips
	// in between, the inserted entry carries the pre-vacuum epoch and is
	// conservatively treated as stale on its first lookup.
	epoch := tbl.LayoutEpoch()
	unlock := tbl.RLockScan()

	// Binding happens under the scan lock: it snapshots string dictionaries
	// (LIKE memos, code lookups), which concurrent appends may grow.
	bound, err := expr.Bind(pred, tbl)
	if err != nil {
		unlock()
		return nil, err
	}
	// Split the bound predicate into encoded-domain kernels plus a residual
	// (decode-then-Eval) part. The split is per-scan, not per-block; blocks
	// whose encoding lacks a kernel fall back leaf-by-leaf during the scan.
	var plan *expr.ScanPlan
	if ec.DisableEncodedKernels {
		plan = expr.NoKernelPlan(bound)
	} else {
		plan = expr.PlanKernels(bound)
	}
	numCols := len(tbl.Schema())
	dicts := make([]*storage.Dict, numCols)
	for i := 0; i < numCols; i++ {
		dicts[i] = tbl.Dict(i)
	}
	sjMemos := make([][]bool, len(sjs))
	for i, sj := range sjs {
		if !sj.stringKeys {
			continue
		}
		dict := tbl.Dict(sjKeyCols[i])
		memo := make([]bool, dict.Len())
		for code := range memo {
			memo[code] = sj.filter.MayContain(hashString(dict.Value(int64(code))))
		}
		sjMemos[i] = memo
	}

	numSlices := tbl.NumSlices()
	results := make([]sliceScanResult, numSlices)
	// Scratches are released only after the merge below has copied every
	// output value out of their recycled backing arrays.
	defer func() {
		for i := range results {
			if results[i].scratch != nil {
				results[i].scratch.release()
			}
		}
	}()
	run := func(i int) {
		var ssp obs.SpanRef
		if ec.Trace != nil {
			// BeginChild keeps concurrent slice spans off the nesting stack.
			ssp = ec.Trace.BeginChild(sp, obs.KindSlice, fmt.Sprintf("slice %d", i))
		}
		res := &results[i]
		slice := tbl.Slice(i)
		res.numRows = slice.NumRows()
		scr := acquireScanScratch(numCols, dicts)
		res.scratch = scr
		candidates := scr.cands[:0]
		watermark := 0
		if hit && i < len(cand.PerSlice) && cand.Watermarks[i] <= res.numRows {
			watermark = cand.Watermarks[i]
			candidates = append(candidates, cand.PerSlice[i]...)
			if watermark < res.numRows {
				candidates = append(candidates, storage.RowRange{Start: watermark, End: res.numRows})
			}
		} else {
			if res.numRows > 0 {
				candidates = append(candidates, storage.RowRange{Start: 0, End: res.numRows})
			}
		}
		scr.cands = candidates
		rb, rbErr := scr.relBuilderFor(tbl, project, s.Alias)
		if rbErr != nil {
			res.err = rbErr
			ssp.End()
			return
		}
		res.rel = rb
		s.scanSlice(ec, tbl, slice, bound, plan, sjs, sjKeyCols, sjMemos, candidates, scr, res)
		if ssp.Active() {
			ssp.SetInt("rows.scanned", res.rowsScanned)
			ssp.SetInt("rows.qualified", res.rowsQualified)
			ssp.SetInt("blocks.accessed", res.blocksAccessed)
			ssp.SetInt("blocks.pruned.zonemap", res.blocksZonePruned)
			ssp.SetInt("blocks.pruned.cache", res.blocksCachePruned)
			ssp.SetInt("blocks.decoded", res.blocksDecoded)
			ssp.SetInt("blocks.kernel_encoded", res.blocksKernel)
			ssp.SetInt("rows.decoded", res.rowsDecoded)
		}
		ssp.End()
	}
	if ec.Parallel && !ec.Serial && numSlices > 1 {
		var wg sync.WaitGroup
		for i := 0; i < numSlices; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				run(i)
			}(i)
		}
		wg.Wait()
	} else {
		for i := 0; i < numSlices; i++ {
			run(i)
		}
	}
	unlock()
	for i := range results {
		if results[i].err != nil {
			return nil, results[i].err
		}
	}

	// Fold the slice-local counters into the shared query stats in one pass
	// (per-scan rather than per-block atomics keep the hot loop cheap).
	var tot sliceScanResult
	for i := range results {
		tot.rowsScanned += results[i].rowsScanned
		tot.rowsQualified += results[i].rowsQualified
		tot.blocksAccessed += results[i].blocksAccessed
		tot.blocksZonePruned += results[i].blocksZonePruned
		tot.blocksCachePruned += results[i].blocksCachePruned
		tot.blocksDecoded += results[i].blocksDecoded
		tot.blocksKernel += results[i].blocksKernel
		tot.rowsDecoded += results[i].rowsDecoded
	}
	if ec.Stats != nil {
		ec.Stats.RowsScanned.Add(tot.rowsScanned)
		ec.Stats.RowsQualified.Add(tot.rowsQualified)
		ec.Stats.BlocksAccessed.Add(tot.blocksAccessed)
		ec.Stats.BlocksSkipped.Add(tot.blocksZonePruned)
		ec.Stats.BlocksPrunedCache.Add(tot.blocksCachePruned)
		ec.Stats.BlocksDecoded.Add(tot.blocksDecoded)
		ec.Stats.BlocksKernel.Add(tot.blocksKernel)
		ec.Stats.RowsDecoded.Add(tot.rowsDecoded)
	}
	if sp.Active() {
		switch {
		case !useCache:
			sp.SetStr("cache", "off")
		case hit:
			sp.SetStr("cache", "hit")
		default:
			sp.SetStr("cache", "miss")
		}
		sp.SetInt("rows.scanned", tot.rowsScanned)
		sp.SetInt("rows.qualified", tot.rowsQualified)
		sp.SetInt("blocks.accessed", tot.blocksAccessed)
		sp.SetInt("blocks.pruned.zonemap", tot.blocksZonePruned)
		sp.SetInt("blocks.pruned.cache", tot.blocksCachePruned)
		sp.SetInt("blocks.decoded", tot.blocksDecoded)
		sp.SetInt("blocks.kernel_encoded", tot.blocksKernel)
		sp.SetInt("rows.decoded", tot.rowsDecoded)
	}

	// Steps 3-4: feed the cache from the ranges the vectorized scan
	// (performed after releasing the scan lock: cache bookkeeping reads
	// table versions, which must not nest inside the table's read lock)
	// produced. On a miss both keys are inserted; on a plain-key hit the
	// semi-join entry can still be inserted (its rows are a subset of the
	// candidates scanned); on a semi-join-entry hit only that entry is
	// extended — plain qualifying rows outside the entry were never visited.
	if useCache {
		plainRanges := make([][]storage.RowRange, numSlices)
		sjRanges := make([][]storage.RowRange, numSlices)
		watermarks := make([]int, numSlices)
		for i := range results {
			plainRanges[i] = results[i].plainRanges
			sjRanges[i] = results[i].sjRanges
			watermarks[i] = results[i].numRows
		}
		switch {
		case !hit:
			csp := ec.Trace.Begin(obs.KindCache, "insert")
			ec.Cache.Insert(plainKey, tbl, epoch, nil, plainRanges, watermarks)
			if sjKeyOK {
				ec.Cache.Insert(sjCacheKey, tbl, epoch, sjDeps, sjRanges, watermarks)
			}
			if csp.Active() {
				csp.SetStr("key", plainKey.String())
			}
			csp.End()
		case !usedSJEntry:
			csp := ec.Trace.Begin(obs.KindCache, "extend")
			for i := range results {
				if i >= len(cand.Watermarks) {
					break // defensive: entry slice count mismatch
				}
				tail := rangesFrom(plainRanges[i], cand.Watermarks[i])
				if len(tail) > 0 || watermarks[i] > cand.Watermarks[i] {
					ec.Cache.Extend(plainKey.String(), i, tail, watermarks[i])
				}
			}
			// Only (re)build the semi-join entry when none is current: a
			// steady-state warm scan must not pay entry construction again
			// ("rigorously avoiding slowdowns", §1).
			if sjKeyOK && !ec.Cache.Has(sjCacheKey.String()) {
				ec.Cache.Insert(sjCacheKey, tbl, epoch, sjDeps, sjRanges, watermarks)
			}
			if csp.Active() {
				csp.SetStr("key", plainKey.String())
			}
			csp.End()
		default:
			csp := ec.Trace.Begin(obs.KindCache, "extend")
			for i := range results {
				if i >= len(cand.Watermarks) {
					break // defensive: entry slice count mismatch
				}
				tail := rangesFrom(sjRanges[i], cand.Watermarks[i])
				if len(tail) > 0 || watermarks[i] > cand.Watermarks[i] {
					ec.Cache.Extend(sjCacheKey.String(), i, tail, watermarks[i])
				}
			}
			if csp.Active() {
				csp.SetStr("key", sjCacheKey.String())
			}
			csp.End()
		}
	}
	// Evictions/invalidations have no single call site inside the scan, so
	// the span reports them as registry deltas across this execution; under
	// concurrency another query's activity can leak into the delta, which is
	// acceptable for a diagnostic annotation.
	if sp.Active() && useCache {
		after := ec.Cache.Stats()
		if d := after.Evictions - statsBefore.Evictions; d > 0 {
			sp.SetInt("cache.evictions", d)
		}
		if d := after.Invalidations - statsBefore.Invalidations; d > 0 {
			sp.SetInt("cache.invalidations", d)
		}
	}

	// Merge per-slice outputs, preallocating each output column from the
	// summed per-slice lengths (one allocation per column, no regrowth).
	out := make([]RelCol, len(results[0].rel.cols))
	for ci := range out {
		out[ci] = RelCol{
			Name: results[0].rel.cols[ci].Name,
			Type: results[0].rel.cols[ci].Type,
			Dict: results[0].rel.cols[ci].Dict,
		}
		nInts, nFloats := 0, 0
		for i := range results {
			nInts += len(results[i].rel.cols[ci].Ints)
			nFloats += len(results[i].rel.cols[ci].Floats)
		}
		if nInts > 0 {
			out[ci].Ints = make([]int64, 0, nInts)
		}
		if nFloats > 0 {
			out[ci].Floats = make([]float64, 0, nFloats)
		}
		for i := range results {
			src := &results[i].rel.cols[ci]
			out[ci].Ints = append(out[ci].Ints, src.Ints...)
			out[ci].Floats = append(out[ci].Floats, src.Floats...)
		}
	}
	return NewRelation(out)
}

// rangesFrom clips ranges to those at or beyond start.
func rangesFrom(ranges []storage.RowRange, start int) []storage.RowRange {
	var out []storage.RowRange
	for _, r := range ranges {
		if r.End <= start {
			continue
		}
		if r.Start < start {
			r.Start = start
		}
		out = append(out, r)
	}
	return out
}

// rangeRecorder accumulates qualifying global row numbers into merged
// ranges.
type rangeRecorder struct {
	ranges []storage.RowRange
}

func (r *rangeRecorder) add(start, end int) {
	if n := len(r.ranges); n > 0 && r.ranges[n-1].End == start {
		r.ranges[n-1].End = end
		return
	}
	r.ranges = append(r.ranges, storage.RowRange{Start: start, End: end})
}

// addSel records block-relative selected rows as global ranges.
func (r *rangeRecorder) addSel(base int, sel []int) {
	i := 0
	for i < len(sel) {
		j := i + 1
		for j < len(sel) && sel[j] == sel[j-1]+1 {
			j++
		}
		r.add(base+sel[i], base+sel[j-1]+1)
		i = j
	}
}

// scanSlice performs the two-step scan of one slice over the candidate
// ranges, block by block:
//
//  1. zone-map elimination (bound.Prune);
//  2. encoded-domain kernels narrow the candidate spans directly on each
//     block's compressed form (no decode); kernels without support for a
//     block's encoding are collected as per-block fallback leaves;
//  3. when nothing needs row-at-a-time work (no residual, no fallbacks, no
//     semi-joins), the dense fast path records the surviving spans outright —
//     bypassing rangeRecorder.addSel — and gathers projections straight from
//     the compressed blocks via partial decode;
//  4. otherwise a selection vector is built from the surviving spans, the
//     needed columns are partially decoded over just those spans, and the
//     residual + fallbacks + semi-joins run vectorized as before.
//
// scanSlice is the per-slice hot loop: everything it touches works out of the
// pooled scanScratch, so a steady-state warm scan allocates nothing here (see
// TestKernelWarmScanAllocs). pclint:noalloc enforces that transitively.
func (s *Scan) scanSlice(ec *ExecCtx, tbl *storage.Table, slice *storage.Slice, bound expr.Bound,
	plan *expr.ScanPlan, sjs []*semiJoinFilter, sjKeyCols []int, sjMemos [][]bool,
	candidates []storage.RowRange, scr *scanScratch, res *sliceScanResult) {

	ctx := scr.ctx
	rb := res.rel

	// loadColSpans partially decodes column ci over the given block-relative
	// spans into the per-column scratch vector (values land at their
	// block-relative offsets, so selection vectors index it directly).
	loadColSpans := func(blk, ci int, spans []storage.RowRange) {
		if scr.loaded[ci] {
			return
		}
		scr.loaded[ci] = true
		scr.markAccessed(ci, res)
		scr.markDecoded(ci, res)
		col := slice.Column(ci)
		if tbl.ColumnType(ci) == storage.Float64 {
			if scr.floats[ci] == nil {
				// pclint:allow noalloc: lazy once-per-scratch-lifetime buffer
				scr.floats[ci] = make([]float64, storage.BlockSize)
			}
			vec := scr.floats[ci]
			for _, sp := range spans {
				if sp.Start < sp.End {
					res.rowsDecoded += int64(col.ReadFloatRange(blk, sp.Start, sp.End, vec[sp.Start:sp.End]))
				}
			}
			ctx.SetFloat(ci, vec)
		} else {
			if scr.ints[ci] == nil {
				// pclint:allow noalloc: lazy once-per-scratch-lifetime buffer
				scr.ints[ci] = make([]int64, storage.BlockSize)
			}
			vec := scr.ints[ci]
			for _, sp := range spans {
				if sp.Start < sp.End {
					res.rowsDecoded += int64(col.ReadIntRange(blk, sp.Start, sp.End, vec[sp.Start:sp.End]))
				}
			}
			ctx.SetInt(ci, vec)
		}
	}

	var plainRec, sjRec rangeRecorder
	numRows := res.numRows
	insXIDs := slice.InsertXIDs()
	delXIDs := slice.DeleteXIDs()
	snap := ec.Snapshot
	kernels := plan.Kernels
	scr.bp.slice = slice

	ci := 0 // candidate cursor
	numBlocks := (numRows + storage.BlockSize - 1) / storage.BlockSize
	for blk := 0; blk < numBlocks; blk++ {
		// Per-block cancellation check: Execute surfaces res.err before any
		// cache insert/extend, so an aborted slice never pollutes the cache
		// with partial ranges.
		if cerr := ec.Cancelled(); cerr != nil {
			res.err = cerr
			return
		}
		base := blk * storage.BlockSize
		blkEnd := base + storage.BlockSize
		if blkEnd > numRows {
			blkEnd = numRows
		}
		// Advance past candidates entirely before this block; collect the
		// candidate spans intersecting it (block-relative).
		for ci < len(candidates) && candidates[ci].End <= base {
			ci++
		}
		spans := scr.spansA[:0]
		candRows := 0
		for j := ci; j < len(candidates) && candidates[j].Start < blkEnd; j++ {
			lo := candidates[j].Start
			if lo < base {
				lo = base
			}
			hi := candidates[j].End
			if hi > blkEnd {
				hi = blkEnd
			}
			if lo < hi {
				spans = append(spans, storage.RowRange{Start: lo - base, End: hi - base})
				candRows += hi - lo
			}
		}
		scr.spansA = spans
		if candRows == 0 {
			// The candidate ranges (a predicate-cache hit) excluded every row
			// of this block: the cache saved the block outright.
			res.blocksCachePruned++
			continue
		}

		// Step (1 of the two-step scan): zone-map block elimination.
		scr.bp.block = blk
		if bound.Prune(&scr.bp) {
			res.blocksZonePruned++
			continue
		}
		res.rowsScanned += int64(candRows)

		scr.resetBlock()
		ctx.N = blkEnd - base

		// Step (2a): encoded-domain kernels narrow the spans in compressed
		// form. A kernel that lacks support for this block's encoding joins
		// the fallback list and re-runs vectorized below.
		failed := scr.failed[:0]
		other := scr.spansB
		for ki := range kernels {
			if len(spans) == 0 {
				break
			}
			k := &kernels[ki]
			got, ok := slice.Column(k.Col).EvalPredRanges(blk, &k.Pred, spans, other[:0])
			if ok {
				scr.markAccessed(k.Col, res)
				res.blocksKernel++
				spans, other = got, spans
			} else {
				failed = append(failed, ki)
			}
		}
		scr.failed = failed
		scr.spansA, scr.spansB = spans, other
		if len(spans) == 0 {
			continue // kernels proved no candidate row qualifies
		}

		if plan.Residual == nil && len(failed) == 0 && len(sjs) == 0 {
			// Step (2b), dense fast path: the surviving spans are exactly the
			// qualifying rows (pre-visibility). Record them as ranges without
			// materializing a selection vector, then project visible runs
			// straight from the compressed blocks.
			for _, sp := range spans {
				plainRec.add(base+sp.Start, base+sp.End)
			}
			for _, sp := range spans {
				runStart := -1
				for r := sp.Start; r < sp.End; r++ {
					row := base + r
					if insXIDs[row] <= snap && (delXIDs[row] == 0 || delXIDs[row] > snap) {
						if runStart < 0 {
							runStart = r
						}
					} else if runStart >= 0 {
						rb.gatherRange(slice, blk, runStart, r, scr, res)
						res.rowsQualified += int64(r - runStart)
						runStart = -1
					}
				}
				if runStart >= 0 {
					rb.gatherRange(slice, blk, runStart, sp.End, scr, res)
					res.rowsQualified += int64(sp.End - runStart)
				}
			}
			continue
		}

		// Step (2c), vectorized path: build the selection vector from the
		// surviving spans and run fallbacks, the residual, and semi-joins.
		sel := scr.sel[:0]
		for _, sp := range spans {
			for r := sp.Start; r < sp.End; r++ {
				sel = append(sel, r)
			}
		}
		scr.sel = sel[:0]
		for _, ki := range failed {
			if len(sel) == 0 {
				break
			}
			k := &kernels[ki]
			loadColSpans(blk, k.Col, spans)
			sel = k.Fallback.Eval(ctx, sel)
		}
		if plan.Residual != nil && len(sel) > 0 {
			for _, colIdx := range plan.ResidualCols {
				loadColSpans(blk, colIdx, spans)
			}
			sel = plan.Residual.Eval(ctx, sel)
		}
		plainRec.addSel(base, sel)

		// Semi-join filters (§4.4).
		for i, sj := range sjs {
			if len(sel) == 0 {
				break
			}
			loadColSpans(blk, sjKeyCols[i], spans)
			vec := ctx.Ints(sjKeyCols[i])
			k := 0
			if sj.stringKeys {
				memo := sjMemos[i]
				dict := ctx.Dict(sjKeyCols[i])
				for _, r := range sel {
					code := vec[r]
					var m bool
					if int(code) < len(memo) {
						m = memo[code]
					} else {
						m = sj.filter.MayContain(hashString(dict.Value(code)))
					}
					if m {
						sel[k] = r
						k++
					}
				}
			} else {
				for _, r := range sel {
					if sj.filter.MayContainInt(vec[r]) {
						sel[k] = r
						k++
					}
				}
			}
			sel = sel[:k]
		}
		if len(sjs) > 0 {
			sjRec.addSel(base, sel)
		}

		// MVCC visibility (§4.3.2): deleted rows inside cached ranges are
		// eliminated here, which is what keeps entries valid across deletes.
		k := 0
		for _, r := range sel {
			row := base + r
			if insXIDs[row] <= snap && (delXIDs[row] == 0 || delXIDs[row] > snap) {
				sel[k] = r
				k++
			}
		}
		sel = sel[:k]
		res.rowsQualified += int64(len(sel))
		if len(sel) == 0 {
			continue
		}

		// Step (6), late materialization: decode only the runs of qualifying
		// rows for projected columns the filter didn't already load.
		qspans := scr.qspans[:0]
		for i := 0; i < len(sel); {
			j := i + 1
			for j < len(sel) && sel[j] == sel[j-1]+1 {
				j++
			}
			qspans = append(qspans, storage.RowRange{Start: sel[i], End: sel[j-1] + 1})
			i = j
		}
		scr.qspans = qspans
		for outIdx, colIdx := range rb.idx {
			loadColSpans(blk, colIdx, qspans)
			dst := &rb.cols[outIdx]
			if dst.Type == storage.Float64 {
				vec := ctx.Floats(colIdx)
				for _, r := range sel {
					dst.Floats = append(dst.Floats, vec[r])
				}
			} else {
				vec := ctx.Ints(colIdx)
				for _, r := range sel {
					dst.Ints = append(dst.Ints, vec[r])
				}
			}
		}
	}

	res.plainRanges = plainRec.ranges
	res.sjRanges = sjRec.ranges
}
