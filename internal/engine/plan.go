package engine

import (
	"context"
	"fmt"

	"github.com/predcache/predcache/internal/core"
	"github.com/predcache/predcache/internal/expr"
	"github.com/predcache/predcache/internal/obs"
	"github.com/predcache/predcache/internal/storage"
)

// ExecCtx carries everything a plan execution needs: the catalog, the
// predicate cache (may be nil to run without one), the MVCC snapshot, and
// the per-query scan counters.
type ExecCtx struct {
	Catalog  *storage.Catalog
	Cache    *core.Cache
	Snapshot uint64
	Stats    *storage.ScanStats
	// Ctx, when non-nil, cancels the execution: operators check it at their
	// prologues and inside row/block loops so a disconnected or cancelled
	// client's query stops consuming CPU promptly instead of running to
	// completion. A nil Ctx never cancels.
	Ctx context.Context
	// Trace records query-lifecycle spans (per-node execute, per-slice scan,
	// cache events) when non-nil; the disabled path costs one nil check per
	// instrumentation point.
	Trace *obs.Trace
	// Parallel enables per-slice goroutines in scans and morsel-parallel
	// execution in the operators above them (join build/probe, aggregation).
	Parallel bool
	// MaxWorkers caps the worker goroutines a morsel-parallel operator may
	// use. Zero means GOMAXPROCS. Serial (or Parallel off) forces one worker
	// regardless; operators additionally never use more workers than they
	// have morsels of input.
	MaxWorkers int
	// Serial forces single-sliced scans even when Parallel is set. DB.RunCtx
	// defaults Parallel from the database configuration, so ablation callers
	// that need a serial scan opt out here instead of relying on the zero
	// value of Parallel.
	Serial bool
	// DisableSemiJoinCache keeps semi-join filters working at run time but
	// stops the cache from keying on them (the Figure 16 ablation).
	DisableSemiJoinCache bool
	// DisableSemiJoin turns off semi-join filter pushdown entirely.
	DisableSemiJoin bool
	// ForceCacheInsertOnly makes scans insert entries but never use them
	// (the Figure 15 build-overhead experiment).
	ForceCacheInsertOnly bool
	// DisableEncodedKernels forces the decode-then-filter path for every
	// block, bypassing the encoding-aware kernels (ablation and equivalence
	// testing).
	DisableEncodedKernels bool
}

// Cancelled returns a non-nil error once the execution's context has been
// cancelled, and nil otherwise (including when no context was attached).
// Operators call it at prologues and every few thousand rows/blocks inside
// hot loops; the no-context fast path is a single nil comparison.
func (ec *ExecCtx) Cancelled() error {
	if ec.Ctx == nil {
		return nil
	}
	select {
	case <-ec.Ctx.Done(): // pclint:allow noalloc: Done returns the context's existing channel
		return ec.Ctx.Err() // pclint:allow noalloc: cold cancellation path; context errors are preallocated sentinels
	default:
		return nil
	}
}

// cancelCheckRows is how many rows a hot loop processes between cancellation
// checks — frequent enough to stop within microseconds, rare enough that the
// check cost is unmeasurable.
const cancelCheckRows = 4096

// Node is a query plan operator producing a materialized relation.
type Node interface {
	Execute(ec *ExecCtx) (*Relation, error)
	// CacheDescriptor returns a canonical description of this subtree's
	// output for use inside predicate-cache keys (as the build side of a
	// semi-join, §4.4), plus the tables whose DML versions the description
	// depends on. ok is false when the subtree cannot be described.
	CacheDescriptor(ec *ExecCtx) (desc string, deps []core.BuildDep, ok bool)
}

// JoinType enumerates supported join types.
type JoinType uint8

const (
	InnerJoin JoinType = iota
	LeftOuterJoin
	SemiJoin
	AntiJoin
)

func (t JoinType) String() string {
	switch t {
	case InnerJoin:
		return "inner"
	case LeftOuterJoin:
		return "left"
	case SemiJoin:
		return "semi"
	default:
		return "anti"
	}
}

// Scan reads a base table, applying Filter and projecting Project columns
// (nil = all). It is the integration point for the predicate cache.
type Scan struct {
	Table   string
	Filter  expr.Pred
	Project []string
	// Alias prefixes output columns as "alias.col" when set (self-joins).
	Alias string

	// runtimeSJ holds semi-join filters pushed down by a parent hash join
	// for the current execution (§4.4). Set by Join.Execute.
	runtimeSJ []*semiJoinFilter
}

// Join hash-joins Left (probe) with Right (build) on equality of the key
// columns. When PushSemiJoin is enabled (default via planner) and the probe
// input is a Scan, a Bloom filter built from the build keys is pushed into
// the probe scan, and the probe scan's cache entry keys on it.
type Join struct {
	Left, Right         Node
	LeftKeys, RightKeys []string
	Type                JoinType
	PushSemiJoin        bool
}

// AggFunc enumerates aggregate functions.
type AggFunc uint8

const (
	AggCount AggFunc = iota
	AggCountDistinct
	AggSum
	AggAvg
	AggMin
	AggMax
)

func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "count"
	case AggCountDistinct:
		return "count_distinct"
	case AggSum:
		return "sum"
	case AggAvg:
		return "avg"
	case AggMin:
		return "min"
	default:
		return "max"
	}
}

// AggSpec is one aggregate: Func over Arg (nil means count(*)), named Name
// in the output.
type AggSpec struct {
	Func AggFunc
	Arg  expr.Scalar
	Name string
}

// Agg groups Input by the GroupBy columns and computes Aggs. Empty GroupBy
// yields a single global row.
type Agg struct {
	Input   Node
	GroupBy []string
	Aggs    []AggSpec
}

// NamedScalar is a projection item.
type NamedScalar struct {
	Expr expr.Scalar
	Name string
}

// Project computes scalar expressions over Input.
type Project struct {
	Input Node
	Exprs []NamedScalar
}

// Filter keeps Input rows satisfying Pred (post-join filters, HAVING).
type Filter struct {
	Input Node
	Pred  expr.Pred
}

// SortKey orders by a column.
type SortKey struct {
	Col  string
	Desc bool
}

// Sort orders Input by Keys.
type Sort struct {
	Input Node
	Keys  []SortKey
}

// Limit keeps the first N rows of Input.
type Limit struct {
	Input Node
	N     int
}

// --- cache descriptors ---

// CacheDescriptor for a scan is the scan's own cache key; the dependency is
// the scanned table at its current version.
func (s *Scan) CacheDescriptor(ec *ExecCtx) (string, []core.BuildDep, bool) {
	tbl, ok := ec.Catalog.Table(s.Table)
	if !ok {
		return "", nil, false
	}
	pred := s.Filter
	if pred == nil {
		pred = expr.TruePred{}
	}
	key := core.Key{Table: s.Table, Predicate: pred.Key()}
	return key.String(), []core.BuildDep{{Table: tbl, Version: tbl.Version()}}, true
}

// CacheDescriptor for a join composes the children's descriptors.
func (j *Join) CacheDescriptor(ec *ExecCtx) (string, []core.BuildDep, bool) {
	ld, ldeps, ok := j.Left.CacheDescriptor(ec)
	if !ok {
		return "", nil, false
	}
	rd, rdeps, ok := j.Right.CacheDescriptor(ec)
	if !ok {
		return "", nil, false
	}
	desc := fmt.Sprintf("<join type=%s lkeys=%v rkeys=%v left=%s right=%s>", j.Type, j.LeftKeys, j.RightKeys, ld, rd)
	return desc, append(ldeps, rdeps...), true
}

// CacheDescriptor for a filter wraps its input.
func (f *Filter) CacheDescriptor(ec *ExecCtx) (string, []core.BuildDep, bool) {
	d, deps, ok := f.Input.CacheDescriptor(ec)
	if !ok {
		return "", nil, false
	}
	return "<filter pred=" + f.Pred.Key() + " in=" + d + ">", deps, true
}

// Projections preserve the rows of their input, so the descriptor passes
// through (the build side of a semi-join only cares about key values).
func (p *Project) CacheDescriptor(ec *ExecCtx) (string, []core.BuildDep, bool) {
	return p.Input.CacheDescriptor(ec)
}

// Aggregations, sorts and limits change row multiplicity or depend on
// ordering; they are not described (semi-joins over them are still executed,
// just not cached).
func (a *Agg) CacheDescriptor(*ExecCtx) (string, []core.BuildDep, bool) { return "", nil, false }
func (s *Sort) CacheDescriptor(ec *ExecCtx) (string, []core.BuildDep, bool) {
	return s.Input.CacheDescriptor(ec)
}
func (l *Limit) CacheDescriptor(*ExecCtx) (string, []core.BuildDep, bool) { return "", nil, false }
