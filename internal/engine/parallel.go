package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/predcache/predcache/internal/expr"
	"github.com/predcache/predcache/internal/obs"
)

// morselSize is the number of rows a worker claims from the shared cursor at
// a time. It matches cancelCheckRows so every morsel claim doubles as a
// cancellation point: a cancelled query stops within one morsel of work per
// worker, preserving the server's cancellation latency bound.
const morselSize = cancelCheckRows

// numMorsels returns how many morsels cover rows.
func numMorsels(rows int) int { return (rows + morselSize - 1) / morselSize }

// workers returns the degree of parallelism for a morsel-parallel operator
// over rows input rows: 1 when the context is serial, otherwise MaxWorkers
// (default GOMAXPROCS) bounded by the morsel count so tiny inputs do not
// spawn idle goroutines.
func (ec *ExecCtx) workers(rows int) int {
	if ec.Serial || !ec.Parallel {
		return 1
	}
	w := ec.MaxWorkers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if m := numMorsels(rows); w > m {
		w = m
	}
	if w < 1 {
		w = 1
	}
	return w
}

// partitionsFor picks the build/group partition fan-out for a worker count:
// the next power of two ≥ workers (so a hash can be masked instead of
// modded), capped at 64 to bound per-partition bookkeeping.
func partitionsFor(workers int) int {
	if workers <= 1 {
		return 1
	}
	p := 1
	for p < workers {
		p <<= 1
	}
	if p > 64 {
		p = 64
	}
	return p
}

// morselCursor hands out morsels of [0, rows) to competing workers. Claims
// are a single atomic add; workers pull the next morsel whenever they finish
// one, so skew (an expensive morsel, a descheduled worker) self-balances.
type morselCursor struct {
	next atomic.Int64
	rows int
}

// forEachMorsel claims morsels from cur until they run out, invoking
// fn(m, lo, hi) for each claimed morsel m covering rows [lo, hi). Every
// claim checks cancellation, so this is the operator's cancellation point.
func forEachMorsel(ec *ExecCtx, cur *morselCursor, fn func(m, lo, hi int) error) error {
	for {
		m := int(cur.next.Add(1)) - 1
		lo := m * morselSize
		if lo >= cur.rows {
			return nil
		}
		if err := ec.Cancelled(); err != nil {
			return err
		}
		hi := lo + morselSize
		if hi > cur.rows {
			hi = cur.rows
		}
		if err := fn(m, lo, hi); err != nil {
			return err
		}
	}
}

// runWorkers runs fn(w) on workers goroutines (inline, without spawning,
// when workers == 1), returning the summed per-worker busy time, the busy
// time beyond the coordinator's wall-clock wait (extra = busy − elapsed,
// min 0), and the first error. Busy time vs the caller's wall time is the
// EXPLAIN ANALYZE parallel-efficiency signal; the extra term is what the
// resource-attribution layer adds to query wall time to get attributed CPU —
// the coordinator's blocked wait is already inside the wall, so only the
// surplus the spawned workers contributed is added. Worker goroutines
// inherit the caller's pprof label set, so CPU samples taken inside fn carry
// the query's query_id/shape/session labels.
func runWorkers(workers int, fn func(w int) error) (cpu, extra time.Duration, err error) {
	if workers <= 1 {
		start := time.Now()
		err := fn(0)
		return time.Since(start), 0, err
	}
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, workers)
	busy := make([]time.Duration, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			start := time.Now()
			errs[w] = fn(w)
			busy[w] = time.Since(start)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, d := range busy {
		cpu += d
	}
	if cpu > elapsed {
		extra = cpu - elapsed
	}
	for _, e := range errs {
		if e != nil {
			return cpu, extra, e
		}
	}
	return cpu, extra, nil
}

// parAccounting accumulates one operator's parallel-execution counters
// across its phases (build, probe, partition, assemble).
type parAccounting struct {
	workers int
	morsels int
	cpu     time.Duration
	// extra is the summed surplus over coordinator wait (see runWorkers);
	// folded into ScanStats.WorkerExtraNanos for per-query CPU attribution.
	extra time.Duration
}

// finish publishes the counters to the operator's span and the query stats.
func (pa *parAccounting) finish(ec *ExecCtx, sp obs.SpanRef) {
	if sp.Active() && pa.workers > 0 {
		sp.SetInt("parallel.workers", int64(pa.workers))
		sp.SetInt("parallel.morsels", int64(pa.morsels))
		sp.SetInt("parallel.cpu_us", pa.cpu.Microseconds())
	}
	if ec.Stats != nil {
		ec.Stats.Morsels.Add(int64(pa.morsels))
		ec.Stats.WorkerNanos.Add(pa.cpu.Nanoseconds())
		ec.Stats.WorkerExtraNanos.Add(pa.extra.Nanoseconds())
	}
}

// mix64 is the splitmix64 finalizer: a fast, well-distributed 64-bit mixer
// used to spread integer join/group keys across partitions independently of
// the Go map hash.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashBytes is FNV-1a over a byte slice (same parameters as hashString).
//
// pclint:noalloc
func hashBytes(b []byte) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= fnvPrime64
	}
	return h
}

// streamablePred reports whether a bound predicate can be evaluated per
// morsel without per-call scratch proportional to the relation: OR and NOT
// allocate relation-sized mark vectors on every Eval, so filters containing
// them fall back to the materializing Filter node.
func streamablePred(p expr.Pred) bool {
	switch t := p.(type) {
	case nil:
		return false
	case *expr.OrPred, *expr.NotPred:
		return false
	case *expr.AndPred:
		for _, c := range t.Children {
			if !streamablePred(c) {
				return false
			}
		}
		return true
	}
	return true
}

// fusedFilterInput unwraps a chain of Filter nodes with streamable
// predicates above n's input, returning the innermost input and the fused
// predicates (innermost first). The caller evaluates them per morsel over a
// shared selection vector instead of materializing one intermediate
// Relation per Filter — the selection-vector streaming path.
func fusedFilterInput(n Node) (Node, []expr.Pred) {
	var preds []expr.Pred
	for {
		f, ok := n.(*Filter)
		if !ok || !streamablePred(f.Pred) {
			return n, preds
		}
		preds = append([]expr.Pred{f.Pred}, preds...)
		n = f.Input
	}
}

// bindFused binds fused filter predicates against the streamed relation.
func bindFused(preds []expr.Pred, in *Relation) ([]expr.Bound, error) {
	if len(preds) == 0 {
		return nil, nil
	}
	bounds := make([]expr.Bound, len(preds))
	for i, p := range preds {
		b, err := expr.Bind(p, in)
		if err != nil {
			return nil, err
		}
		bounds[i] = b
	}
	return bounds, nil
}

// morselSel produces the selection vector of one morsel: the identity rows
// [lo, hi) filtered through the fused bound predicates. The returned slice
// aliases scr.sel and is valid until the next call on the same scratch.
// Bound trees are shared read-only across workers; each worker filters its
// own scratch-owned vector.
//
// pclint:noalloc
func morselSel(scr *morselScratch, ctx *expr.BlockCtx, bounds []expr.Bound, lo, hi int) []int {
	sel := scr.identitySel(lo, hi)
	for _, b := range bounds {
		sel = b.Eval(ctx, sel)
		if len(sel) == 0 {
			break
		}
	}
	return sel
}
