package engine

import (
	"sort"

	"github.com/predcache/predcache/internal/expr"
)

// ClonePlan deep-copies a plan tree, passing every literal expr.Value through
// bind. The plan cache uses it twice: at Put time with the identity function
// to detach the cached template from the node the caller is about to execute
// (Join.Execute mutates probe scans transiently via runtimeSJ pushdown), and
// at Get time to substitute the current query's literals into the template.
//
// ok is false when the tree contains a node the cloner does not understand —
// VirtualScan (its snapshot semantics are per-execution), Materialized, or
// any future node type — in which case the caller must plan from scratch.
func ClonePlan(n Node, bind func(expr.Value) expr.Value) (Node, bool) {
	switch t := n.(type) {
	case *Scan:
		filter, ok := expr.RebindPred(t.Filter, bind)
		if !ok {
			return nil, false
		}
		cp := &Scan{Table: t.Table, Filter: filter, Alias: t.Alias}
		if t.Project != nil {
			cp.Project = append([]string(nil), t.Project...)
		}
		return cp, true
	case *Join:
		left, ok := ClonePlan(t.Left, bind)
		if !ok {
			return nil, false
		}
		right, ok := ClonePlan(t.Right, bind)
		if !ok {
			return nil, false
		}
		return &Join{
			Left:         left,
			Right:        right,
			LeftKeys:     append([]string(nil), t.LeftKeys...),
			RightKeys:    append([]string(nil), t.RightKeys...),
			Type:         t.Type,
			PushSemiJoin: t.PushSemiJoin,
		}, true
	case *Agg:
		in, ok := ClonePlan(t.Input, bind)
		if !ok {
			return nil, false
		}
		aggs := make([]AggSpec, len(t.Aggs))
		for i, a := range t.Aggs {
			arg, ok := expr.RebindScalar(a.Arg, bind)
			if !ok {
				return nil, false
			}
			aggs[i] = AggSpec{Func: a.Func, Arg: arg, Name: a.Name}
		}
		return &Agg{Input: in, GroupBy: append([]string(nil), t.GroupBy...), Aggs: aggs}, true
	case *Project:
		in, ok := ClonePlan(t.Input, bind)
		if !ok {
			return nil, false
		}
		exprs := make([]NamedScalar, len(t.Exprs))
		for i, ns := range t.Exprs {
			e, ok := expr.RebindScalar(ns.Expr, bind)
			if !ok {
				return nil, false
			}
			exprs[i] = NamedScalar{Expr: e, Name: ns.Name}
		}
		return &Project{Input: in, Exprs: exprs}, true
	case *Filter:
		in, ok := ClonePlan(t.Input, bind)
		if !ok {
			return nil, false
		}
		pred, ok := expr.RebindPred(t.Pred, bind)
		if !ok {
			return nil, false
		}
		return &Filter{Input: in, Pred: pred}, true
	case *Sort:
		in, ok := ClonePlan(t.Input, bind)
		if !ok {
			return nil, false
		}
		return &Sort{Input: in, Keys: append([]SortKey(nil), t.Keys...)}, true
	case *Limit:
		in, ok := ClonePlan(t.Input, bind)
		if !ok {
			return nil, false
		}
		return &Limit{Input: in, N: t.N}, true
	case *Union:
		ins := make([]Node, len(t.Inputs))
		for i, u := range t.Inputs {
			in, ok := ClonePlan(u, bind)
			if !ok {
				return nil, false
			}
			ins[i] = in
		}
		return &Union{Inputs: ins}, true
	}
	return nil, false
}

// PlanTables returns the sorted, deduplicated base tables a plan scans.
// Virtual (pc.*) tables are not included — plans touching them are never
// cached in the first place (ClonePlan rejects VirtualScan).
func PlanTables(n Node) []string {
	var tables []string
	walkNodes(n, func(nd Node) {
		if s, ok := nd.(*Scan); ok {
			tables = append(tables, s.Table)
		}
	})
	sort.Strings(tables)
	uniq := tables[:0]
	for i, t := range tables {
		if i == 0 || tables[i-1] != t {
			uniq = append(uniq, t)
		}
	}
	return uniq
}

// PlanSlots appends every bind-slot tag found on literal Values in the plan
// to dst (duplicates included — the planner copies factored predicates into
// several places). It reports false when the plan contains an expression
// node the value walker does not understand.
func PlanSlots(n Node, dst *[]int) bool {
	ok := true
	visit := func(v expr.Value) {
		if v.Slot != 0 {
			*dst = append(*dst, v.Slot)
		}
	}
	walkNodes(n, func(nd Node) {
		switch t := nd.(type) {
		case *Scan:
			if t.Filter != nil && !expr.WalkPredValues(t.Filter, visit) {
				ok = false
			}
		case *Filter:
			if !expr.WalkPredValues(t.Pred, visit) {
				ok = false
			}
		case *Project:
			for _, ns := range t.Exprs {
				if !expr.WalkScalarValues(ns.Expr, visit) {
					ok = false
				}
			}
		case *Agg:
			for _, a := range t.Aggs {
				if a.Arg != nil && !expr.WalkScalarValues(a.Arg, visit) {
					ok = false
				}
			}
		case *VirtualScan, *Materialized:
			ok = false
		}
	})
	return ok
}
