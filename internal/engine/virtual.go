package engine

import (
	"fmt"

	"github.com/predcache/predcache/internal/core"
	"github.com/predcache/predcache/internal/expr"
	"github.com/predcache/predcache/internal/storage"
)

// VirtualTable is a provider of system-table rows (the `pc` schema): the
// engine's own telemetry exposed through the normal scan contract. A
// provider materializes its current state on demand; the snapshot is a
// plain relation, so every downstream operator (filters, joins, aggregates)
// works on it unchanged.
type VirtualTable interface {
	// Name is the qualified table name, e.g. "pc.query_log".
	Name() string
	// Schema describes the columns of the snapshot relation.
	Schema() storage.Schema
	// NumRows estimates the current row count (join-order planning only; the
	// estimate may be stale by the time Snapshot runs).
	NumRows() int
	// Snapshot materializes the provider's rows. Columns use the base names
	// from Schema, in schema order.
	Snapshot() (*Relation, error)
}

// VirtualScan reads a virtual table: snapshot, filter, project. It mirrors
// Scan's surface (Filter in base column names, Project as a base-name
// subset, Alias prefixing output columns) but never touches the predicate
// cache — system-table contents change with every query, so caching their
// qualifying rows would be wrong by construction.
type VirtualScan struct {
	Source  VirtualTable
	Filter  expr.Pred
	Project []string
	// Alias prefixes output columns as "alias.col" when set.
	Alias string
}

// CacheDescriptor: virtual tables are volatile; never describe them for
// predicate-cache keys or semi-join build sides.
func (v *VirtualScan) CacheDescriptor(*ExecCtx) (string, []core.BuildDep, bool) {
	return "", nil, false
}

// Execute snapshots the provider, filters, then projects/renames.
func (v *VirtualScan) Execute(ec *ExecCtx) (rel *Relation, err error) {
	sp := beginNodeSpan(ec, v)
	defer func() { endNodeSpan(sp, rel, err) }()
	snap, err := v.Source.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("engine: virtual table %s: %w", v.Source.Name(), err)
	}
	if _, trivial := v.Filter.(expr.TruePred); v.Filter != nil && !trivial {
		bound, err := expr.Bind(v.Filter, snap)
		if err != nil {
			return nil, err
		}
		ctx := snap.blockCtx()
		sel := make([]int, snap.NumRows())
		for i := range sel {
			sel[i] = i
		}
		sel = bound.Eval(ctx, sel)
		snap = snap.gather(sel)
	}
	prefix := ""
	if v.Alias != "" {
		prefix = v.Alias + "."
	}
	names := v.Project
	if names == nil {
		schema := v.Source.Schema()
		names = make([]string, len(schema))
		for i, def := range schema {
			names[i] = def.Name
		}
	}
	out := make([]RelCol, 0, len(names))
	for _, name := range names {
		src := snap.ColByName(name)
		if src == nil {
			return nil, fmt.Errorf("engine: virtual table %s has no column %q", v.Source.Name(), name)
		}
		dst := *src
		dst.Name = prefix + name
		out = append(out, dst)
	}
	return NewRelation(out)
}
