// Package engine implements the vectorized query engine the predicate cache
// is embedded in: the two-step table scan (zone-map block elimination +
// vectorized filtering, §4.2.2), hash joins with semi-join-filter pushdown
// into probe-side scans (§4.4), hash aggregation, and the plan nodes the SQL
// front end lowers to.
package engine

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/predcache/predcache/internal/expr"
	"github.com/predcache/predcache/internal/storage"
)

// RelCol is one column of a materialized relation. String columns stay
// dictionary-coded (Ints holds codes, Dict decodes them) so joins, grouping
// and predicates on intermediates reuse the integer paths.
type RelCol struct {
	Name   string
	Type   storage.ColumnType
	Ints   []int64
	Floats []float64
	Dict   *storage.Dict
}

// Relation is a materialized intermediate result.
type Relation struct {
	cols   []RelCol
	byName map[string]int
	n      int

	// Stats and Wall describe the query execution that produced this
	// relation. The DB facade attaches them to the result it hands back (a
	// shallow per-query copy, so concurrent queries each see their own
	// counters instead of racing on process-wide state); they are zero on
	// intermediate relations inside a plan.
	Stats storage.ScanStatsSnapshot
	Wall  time.Duration
}

// NewRelation builds a relation from columns; all columns must have equal
// length.
func NewRelation(cols []RelCol) (*Relation, error) {
	r := &Relation{cols: cols, byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		ln := len(c.Ints)
		if c.Type == storage.Float64 {
			ln = len(c.Floats)
		}
		if i == 0 {
			r.n = ln
		} else if ln != r.n {
			return nil, fmt.Errorf("engine: column %s has %d rows, want %d", c.Name, ln, r.n)
		}
		if _, dup := r.byName[c.Name]; dup {
			return nil, fmt.Errorf("engine: duplicate column %s", c.Name)
		}
		r.byName[c.Name] = i
	}
	return r, nil
}

// NumRows returns the row count.
func (r *Relation) NumRows() int { return r.n }

// NumCols returns the column count.
func (r *Relation) NumCols() int { return len(r.cols) }

// Col returns column i.
func (r *Relation) Col(i int) *RelCol { return &r.cols[i] }

// ColByName returns the named column or nil.
func (r *Relation) ColByName(name string) *RelCol {
	if i, ok := r.byName[name]; ok {
		return &r.cols[i]
	}
	return nil
}

// --- expr.Source implementation ---

// Name implements expr.Source.
func (r *Relation) Name() string { return "relation" }

// ColumnIndex implements expr.Source.
func (r *Relation) ColumnIndex(name string) int {
	if i, ok := r.byName[name]; ok {
		return i
	}
	return -1
}

// ColumnType implements expr.Source.
func (r *Relation) ColumnType(i int) storage.ColumnType { return r.cols[i].Type }

// Dict implements expr.Source.
func (r *Relation) Dict(i int) *storage.Dict { return r.cols[i].Dict }

// blockCtx exposes the whole relation as one evaluation block.
func (r *Relation) blockCtx() *expr.BlockCtx {
	dicts := make([]*storage.Dict, len(r.cols))
	for i := range r.cols {
		dicts[i] = r.cols[i].Dict
	}
	ctx := expr.NewBlockCtx(len(r.cols), dicts)
	ctx.N = r.n
	for i := range r.cols {
		if r.cols[i].Type == storage.Float64 {
			ctx.SetFloat(i, r.cols[i].Floats)
		} else {
			ctx.SetInt(i, r.cols[i].Ints)
		}
	}
	return ctx
}

// gather builds a new relation keeping only the given row indexes.
func (r *Relation) gather(rows []int) *Relation {
	out := &Relation{byName: r.byName, n: len(rows)}
	out.cols = make([]RelCol, len(r.cols))
	for i := range r.cols {
		src := &r.cols[i]
		dst := RelCol{Name: src.Name, Type: src.Type, Dict: src.Dict}
		if src.Type == storage.Float64 {
			dst.Floats = make([]float64, len(rows))
			for j, row := range rows {
				dst.Floats[j] = src.Floats[row]
			}
		} else {
			dst.Ints = make([]int64, len(rows))
			for j, row := range rows {
				dst.Ints[j] = src.Ints[row]
			}
		}
		out.cols[i] = dst
	}
	return out
}

// StringValue renders cell (row, col) as text.
func (r *Relation) StringValue(row, col int) string {
	c := &r.cols[col]
	switch c.Type {
	case storage.Float64:
		return strconv.FormatFloat(c.Floats[row], 'f', 4, 64)
	case storage.String:
		return c.Dict.Value(c.Ints[row])
	case storage.Date:
		return storage.FormatDate(c.Ints[row])
	case storage.Bool:
		if c.Ints[row] != 0 {
			return "true"
		}
		return "false"
	default:
		return strconv.FormatInt(c.Ints[row], 10)
	}
}

// Format renders up to maxRows rows as an aligned text table.
func (r *Relation) Format(maxRows int) string {
	var b strings.Builder
	for i, c := range r.cols {
		if i > 0 {
			b.WriteString(" | ")
		}
		b.WriteString(c.Name)
	}
	b.WriteByte('\n')
	rows := r.n
	if maxRows > 0 && rows > maxRows {
		rows = maxRows
	}
	for row := 0; row < rows; row++ {
		for col := range r.cols {
			if col > 0 {
				b.WriteString(" | ")
			}
			b.WriteString(r.StringValue(row, col))
		}
		b.WriteByte('\n')
	}
	if rows < r.n {
		fmt.Fprintf(&b, "... (%d rows total)\n", r.n)
	}
	return b.String()
}

// ColumnNames returns the column names in order.
func (r *Relation) ColumnNames() []string {
	names := make([]string, len(r.cols))
	for i, c := range r.cols {
		names[i] = c.Name
	}
	return names
}

// MemBytes approximates the relation's memory footprint (used by the
// result-cache baseline for budget accounting, Table 3).
func (r *Relation) MemBytes() int {
	n := 48
	for i := range r.cols {
		n += 64 + len(r.cols[i].Ints)*8 + len(r.cols[i].Floats)*8
	}
	return n
}

// TextRelation builds a single string-column relation from pre-rendered
// lines (EXPLAIN output travels through the normal result path this way, so
// shells print it like any query result).
func TextRelation(colName string, lines []string) *Relation {
	dict := storage.NewDict()
	col := RelCol{Name: colName, Type: storage.String, Dict: dict}
	for _, ln := range lines {
		col.Ints = append(col.Ints, dict.Code(ln))
	}
	rel, err := NewRelation([]RelCol{col})
	if err != nil {
		// A single column cannot mismatch lengths or duplicate names.
		panic(err)
	}
	return rel
}
