package engine

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/predcache/predcache/internal/obs"
)

// beginNodeSpan opens the trace span for one operator execution. The
// disabled path (no trace on the context) costs the nil check and returns
// the inert zero SpanRef.
func beginNodeSpan(ec *ExecCtx, n Node) obs.SpanRef {
	if ec.Trace == nil {
		return obs.SpanRef{}
	}
	return ec.Trace.Begin(obs.KindNode, nodeLabel(n))
}

// endNodeSpan closes an operator span, annotating it with the output
// cardinality or the error that aborted it.
func endNodeSpan(sp obs.SpanRef, rel *Relation, err error) {
	if sp.Active() {
		if err != nil {
			sp.SetStr("error", err.Error())
		} else if rel != nil {
			sp.SetInt("rows.out", int64(rel.NumRows()))
		}
	}
	sp.End()
}

// setRowsIn annotates a span with its input cardinality (unary operators).
func setRowsIn(sp obs.SpanRef, rel *Relation) {
	if sp.Active() && rel != nil {
		sp.SetInt("rows.in", int64(rel.NumRows()))
	}
}

// RenderAnalyze formats a query trace as the EXPLAIN ANALYZE tree: plan
// operators annotated with wall time and cardinalities, scans additionally
// with their block-elimination breakdown (zone maps vs predicate cache) and
// cache outcome, and cache/slice events indented beneath the scan that
// produced them.
func RenderAnalyze(tr *obs.Trace) string {
	spans := tr.Spans()
	if len(spans) == 0 {
		return "(no trace recorded)\n"
	}
	children := make(map[int][]int)
	var roots []int
	for _, sp := range spans {
		if sp.Parent < 0 {
			roots = append(roots, sp.ID)
		} else {
			children[sp.Parent] = append(children[sp.Parent], sp.ID)
		}
	}
	var b strings.Builder
	var walk func(id, depth int)
	walk = func(id, depth int) {
		sp := &spans[id]
		b.WriteString(strings.Repeat("  ", depth))
		writeAnalyzeSpan(&b, sp)
		b.WriteByte('\n')
		ids := children[id]
		sort.Ints(ids)
		for _, c := range ids {
			walk(c, depth+1)
		}
	}
	sort.Ints(roots)
	for _, r := range roots {
		walk(r, 0)
	}
	return b.String()
}

// analyzeDur rounds span durations for display.
func analyzeDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.String()
	}
}

// writeAnalyzeSpan renders one span line by kind.
func writeAnalyzeSpan(b *strings.Builder, sp *obs.Span) {
	switch sp.Kind {
	case obs.KindPhase:
		fmt.Fprintf(b, "%s: %s", sp.Name, analyzeDur(sp.Dur))
	case obs.KindNode:
		b.WriteString(sp.Name)
		fmt.Fprintf(b, "  (time=%s", analyzeDur(sp.Dur))
		if v, ok := sp.IntAttr("rows.in"); ok {
			fmt.Fprintf(b, " rows.in=%d", v)
		}
		if v, ok := sp.IntAttr("rows.out"); ok {
			fmt.Fprintf(b, " rows=%d", v)
		}
		b.WriteString(")")
		if outcome, ok := sp.StrAttr("cache"); ok {
			fmt.Fprintf(b, " cache=%s", outcome)
		}
		if v, ok := sp.IntAttr("blocks.accessed"); ok {
			zm, _ := sp.IntAttr("blocks.pruned.zonemap")
			pc, _ := sp.IntAttr("blocks.pruned.cache")
			fmt.Fprintf(b, " blocks(accessed=%d pruned.zonemap=%d pruned.cache=%d)", v, zm, pc)
		}
		if v, ok := sp.IntAttr("blocks.decoded"); ok {
			ke, _ := sp.IntAttr("blocks.kernel_encoded")
			fmt.Fprintf(b, " kernels(decoded=%d encoded=%d)", v, ke)
		}
		if v, ok := sp.IntAttr("rows.scanned"); ok {
			q, _ := sp.IntAttr("rows.qualified")
			rd, _ := sp.IntAttr("rows.decoded")
			fmt.Fprintf(b, " rows(scanned=%d qualified=%d decoded=%d)", v, q, rd)
		}
		if w, ok := sp.IntAttr("parallel.workers"); ok {
			m, _ := sp.IntAttr("parallel.morsels")
			us, _ := sp.IntAttr("parallel.cpu_us")
			// cpu vs the node's wall time is the parallel-efficiency signal:
			// cpu ≈ wall means one busy worker, cpu ≈ W×wall means W.
			fmt.Fprintf(b, " parallel(workers=%d morsels=%d cpu=%s)", w, m,
				analyzeDur(time.Duration(us)*time.Microsecond))
		}
		if v, ok := sp.IntAttr("filters.fused"); ok {
			fmt.Fprintf(b, " fused.filters=%d", v)
		}
		if msg, ok := sp.StrAttr("error"); ok {
			fmt.Fprintf(b, " ERROR: %s", msg)
		}
	default: // cache and slice events
		fmt.Fprintf(b, "[%s %s", sp.Kind, sp.Name)
		for _, a := range sp.Attrs {
			if a.IsStr {
				fmt.Fprintf(b, " %s=%s", a.Key, a.Str)
			} else {
				fmt.Fprintf(b, " %s=%d", a.Key, a.Int)
			}
		}
		fmt.Fprintf(b, " (%s)]", analyzeDur(sp.Dur))
	}
}
