package engine

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"github.com/predcache/predcache/internal/core"
	"github.com/predcache/predcache/internal/expr"
	"github.com/predcache/predcache/internal/storage"
)

// testDB builds a catalog with a fact table ("items") and a dimension table
// ("dims") plus the raw batches for reference computation.
type testDB struct {
	cat   *storage.Catalog
	items *storage.Table
	dims  *storage.Table
	ib    *storage.Batch // items reference data
	db    *storage.Batch // dims reference data
	// deleted[row] marks logically deleted item rows (global row order =
	// batch order, which differs from physical placement; reference
	// computations use the batch).
	deletedItems map[int]bool
}

func itemsSchema() storage.Schema {
	return storage.Schema{
		{Name: "id", Type: storage.Int64},
		{Name: "dim_id", Type: storage.Int64},
		{Name: "qty", Type: storage.Int64},
		{Name: "price", Type: storage.Float64},
		{Name: "mode", Type: storage.String},
		{Name: "day", Type: storage.Date},
	}
}

func dimsSchema() storage.Schema {
	return storage.Schema{
		{Name: "d_id", Type: storage.Int64},
		{Name: "d_cat", Type: storage.String},
		{Name: "d_rank", Type: storage.Int64},
	}
}

func itemsBatch(n int, seed int64, numDims int) *storage.Batch {
	r := rand.New(rand.NewSource(seed))
	modes := []string{"AIR", "MAIL", "SHIP", "TRUCK", "RAIL"}
	b := storage.NewBatch(itemsSchema())
	for i := 0; i < n; i++ {
		b.Cols[0].Ints = append(b.Cols[0].Ints, int64(i))
		b.Cols[1].Ints = append(b.Cols[1].Ints, int64(r.Intn(numDims)))
		b.Cols[2].Ints = append(b.Cols[2].Ints, int64(r.Intn(50)+1))
		b.Cols[3].Floats = append(b.Cols[3].Floats, float64(r.Intn(10000))/100)
		b.Cols[4].Strings = append(b.Cols[4].Strings, modes[r.Intn(len(modes))])
		b.Cols[5].Ints = append(b.Cols[5].Ints, int64(9000+r.Intn(365)))
	}
	b.N = n
	return b
}

func newTestDB(t testing.TB, itemRows, dimRows, slices int, seed int64) *testDB {
	t.Helper()
	cat := storage.NewCatalog()
	items, err := cat.CreateTable("items", itemsSchema(), slices)
	if err != nil {
		t.Fatal(err)
	}
	dims, err := cat.CreateTable("dims", dimsSchema(), 1)
	if err != nil {
		t.Fatal(err)
	}
	ib := itemsBatch(itemRows, seed, dimRows)
	if err := items.Append(ib, cat.NextXID()); err != nil {
		t.Fatal(err)
	}
	cats := []string{"A", "B", "C", "D"}
	r := rand.New(rand.NewSource(seed + 1))
	db := storage.NewBatch(dimsSchema())
	for i := 0; i < dimRows; i++ {
		db.Cols[0].Ints = append(db.Cols[0].Ints, int64(i))
		db.Cols[1].Strings = append(db.Cols[1].Strings, cats[r.Intn(len(cats))])
		db.Cols[2].Ints = append(db.Cols[2].Ints, int64(r.Intn(100)))
	}
	db.N = dimRows
	if err := dims.Append(db, cat.NextXID()); err != nil {
		t.Fatal(err)
	}
	return &testDB{cat: cat, items: items, dims: dims, ib: ib, db: db, deletedItems: map[int]bool{}}
}

func (d *testDB) exec(t testing.TB, n Node, cache *core.Cache) (*Relation, *storage.ScanStats) {
	t.Helper()
	stats := &storage.ScanStats{}
	ec := &ExecCtx{Catalog: d.cat, Cache: cache, Snapshot: d.cat.Snapshot(), Stats: stats, Parallel: true}
	rel, err := n.Execute(ec)
	if err != nil {
		t.Fatal(err)
	}
	return rel, stats
}

// sortedIDs extracts and sorts the "id" column for order-insensitive
// comparison.
func sortedIDs(t testing.TB, rel *Relation) []int64 {
	t.Helper()
	c := rel.ColByName("id")
	if c == nil {
		t.Fatal("no id column")
	}
	out := append([]int64(nil), c.Ints...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sameIDs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// refItemIDs computes qualifying item ids from the raw batch.
func (d *testDB) refItemIDs(f func(row int) bool) []int64 {
	var out []int64
	for i := 0; i < d.ib.N; i++ {
		if d.deletedItems[i] {
			continue
		}
		if f(i) {
			out = append(out, d.ib.Cols[0].Ints[i])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func qtyPred(min int64) expr.Pred { return expr.Cmp("qty", expr.Ge, expr.Int(min)) }

func TestScanNoFilter(t *testing.T) {
	d := newTestDB(t, 5000, 10, 4, 1)
	rel, stats := d.exec(t, &Scan{Table: "items"}, nil)
	if rel.NumRows() != 5000 {
		t.Fatalf("rows %d", rel.NumRows())
	}
	if stats.RowsScanned.Load() != 5000 {
		t.Fatalf("rows scanned %d", stats.RowsScanned.Load())
	}
	if !sameIDs(sortedIDs(t, rel), d.refItemIDs(func(int) bool { return true })) {
		t.Fatal("ids mismatch")
	}
}

func TestScanFilterMatchesReference(t *testing.T) {
	d := newTestDB(t, 7000, 10, 4, 2)
	pred := expr.And(qtyPred(40), expr.Cmp("mode", expr.Eq, expr.Str("AIR")))
	rel, _ := d.exec(t, &Scan{Table: "items", Filter: pred}, nil)
	want := d.refItemIDs(func(r int) bool {
		return d.ib.Cols[2].Ints[r] >= 40 && d.ib.Cols[4].Strings[r] == "AIR"
	})
	if !sameIDs(sortedIDs(t, rel), want) {
		t.Fatal("filtered ids mismatch")
	}
}

func TestScanProjection(t *testing.T) {
	d := newTestDB(t, 1000, 10, 2, 3)
	rel, _ := d.exec(t, &Scan{Table: "items", Project: []string{"id", "price"}}, nil)
	if rel.NumCols() != 2 || rel.ColByName("price") == nil {
		t.Fatal("projection wrong")
	}
	_, err := (&Scan{Table: "items", Project: []string{"nope"}}).Execute(&ExecCtx{Catalog: d.cat, Snapshot: d.cat.Snapshot()})
	if err == nil {
		t.Fatal("bad projection accepted")
	}
	_, err = (&Scan{Table: "missing"}).Execute(&ExecCtx{Catalog: d.cat, Snapshot: d.cat.Snapshot()})
	if err == nil {
		t.Fatal("missing table accepted")
	}
}

func TestScanAlias(t *testing.T) {
	d := newTestDB(t, 100, 10, 1, 4)
	rel, _ := d.exec(t, &Scan{Table: "items", Alias: "i", Project: []string{"id"}}, nil)
	if rel.ColByName("i.id") == nil {
		t.Fatal("alias not applied")
	}
}

// cacheEquivalence runs the same scan cold and cached under both entry kinds
// and checks identical results plus reduced scan work on the hit.
func cacheEquivalence(t *testing.T, kind core.EntryKind) {
	d := newTestDB(t, 20000, 10, 4, 5)
	// A selective multi-column conjunction: every per-column zone map spans
	// the whole domain (nothing prunes), but only a handful of rows — and
	// hence blocks — qualify, which is exactly where the cache pays off.
	p := expr.And(
		expr.Cmp("qty", expr.Eq, expr.Int(50)),
		expr.Cmp("mode", expr.Eq, expr.Str("AIR")),
		expr.Between("day", expr.Int(9050), expr.Int(9060)),
	)
	scan := &Scan{Table: "items", Filter: p, Project: []string{"id"}}

	coldRel, coldStats := d.exec(t, scan, nil)
	want := sortedIDs(t, coldRel)

	cache := core.NewCache(core.Config{Kind: kind, MaxRanges: 64, RowsPerBlock: 1000})
	warmRel1, s1 := d.exec(t, scan, cache)
	if !sameIDs(sortedIDs(t, warmRel1), want) {
		t.Fatal("first cached run mismatch")
	}
	if s1.CacheMisses.Load() != 1 || s1.CacheHits.Load() != 0 {
		t.Fatalf("first run hit/miss %d/%d", s1.CacheHits.Load(), s1.CacheMisses.Load())
	}
	warmRel2, s2 := d.exec(t, scan, cache)
	if !sameIDs(sortedIDs(t, warmRel2), want) {
		t.Fatal("second cached run mismatch")
	}
	if s2.CacheHits.Load() != 1 {
		t.Fatal("no cache hit on second run")
	}
	if s2.RowsScanned.Load() >= coldStats.RowsScanned.Load() {
		t.Fatalf("cache did not reduce rows scanned: %d vs %d", s2.RowsScanned.Load(), coldStats.RowsScanned.Load())
	}
}

func TestScanCacheRangeEquivalence(t *testing.T)  { cacheEquivalence(t, core.RangeIndex) }
func TestScanCacheBitmapEquivalence(t *testing.T) { cacheEquivalence(t, core.BitmapIndex) }

func TestScanCacheSurvivesInserts(t *testing.T) {
	d := newTestDB(t, 10000, 10, 4, 6)
	p := qtyPred(48)
	scan := &Scan{Table: "items", Filter: p, Project: []string{"id"}}
	// Range entries stay precise on uniformly spread matches; bitmap
	// entries would cover every block here.
	cache := core.NewCache(core.Config{Kind: core.RangeIndex, MaxRanges: 16384})

	d.exec(t, scan, cache) // miss, populate

	// Append more rows (ids continue from 10000).
	extra := itemsBatch(3000, 60, 10)
	for i := 0; i < 3000; i++ {
		extra.Cols[0].Ints[i] += 10000
	}
	if err := d.items.Append(extra, d.cat.NextXID()); err != nil {
		t.Fatal(err)
	}
	// Reference now includes appended rows.
	var want []int64
	for i := 0; i < d.ib.N; i++ {
		if d.ib.Cols[2].Ints[i] >= 48 {
			want = append(want, d.ib.Cols[0].Ints[i])
		}
	}
	for i := 0; i < extra.N; i++ {
		if extra.Cols[2].Ints[i] >= 48 {
			want = append(want, extra.Cols[0].Ints[i])
		}
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })

	rel, s := d.exec(t, scan, cache)
	if s.CacheHits.Load() != 1 {
		t.Fatal("insert invalidated the entry (must not)")
	}
	if !sameIDs(sortedIDs(t, rel), want) {
		t.Fatal("cached scan missed appended rows")
	}
	// Third run: watermark advanced, so the tail is no longer rescanned.
	rel3, s3 := d.exec(t, scan, cache)
	if !sameIDs(sortedIDs(t, rel3), want) {
		t.Fatal("third run mismatch")
	}
	if s3.RowsScanned.Load() >= s.RowsScanned.Load() {
		t.Fatalf("extend did not advance watermark: %d vs %d", s3.RowsScanned.Load(), s.RowsScanned.Load())
	}
	if cache.Stats().Extends == 0 {
		t.Fatal("no extends recorded")
	}
}

func TestScanCacheSurvivesDeletes(t *testing.T) {
	d := newTestDB(t, 8000, 10, 2, 7)
	p := qtyPred(45)
	scan := &Scan{Table: "items", Filter: p, Project: []string{"id"}}
	cache := core.NewCache(core.DefaultConfig())
	d.exec(t, scan, cache)

	// Delete some physical rows that qualify: find them via a scan of slice
	// row numbers — easiest is deleting the first 50 rows of slice 0.
	rows := make([]int, 50)
	for i := range rows {
		rows[i] = i
	}
	// Record which ids those are to fix the reference.
	unlock := d.items.RLockScan()
	scratch := make([]int64, storage.BlockSize)
	idCol := d.items.Slice(0).Column(0)
	idCol.ReadIntBlock(0, scratch)
	deletedIDs := map[int64]bool{}
	for i := 0; i < 50; i++ {
		deletedIDs[scratch[i]] = true
	}
	unlock()
	d.items.DeleteRows(0, rows, d.cat.NextXID())

	var want []int64
	for i := 0; i < d.ib.N; i++ {
		if d.ib.Cols[2].Ints[i] >= 45 && !deletedIDs[d.ib.Cols[0].Ints[i]] {
			want = append(want, d.ib.Cols[0].Ints[i])
		}
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })

	rel, s := d.exec(t, scan, cache)
	if s.CacheHits.Load() != 1 {
		t.Fatal("delete invalidated plain entry (must not)")
	}
	if !sameIDs(sortedIDs(t, rel), want) {
		t.Fatal("cached scan served deleted rows")
	}
}

func TestScanCacheInvalidatedByVacuum(t *testing.T) {
	d := newTestDB(t, 5000, 10, 2, 8)
	p := qtyPred(40)
	scan := &Scan{Table: "items", Filter: p, Project: []string{"id"}}
	cache := core.NewCache(core.DefaultConfig())
	d.exec(t, scan, cache)
	d.items.DeleteRows(0, []int{0, 1, 2}, d.cat.NextXID())
	d.items.Vacuum(d.cat.Snapshot())

	rel, s := d.exec(t, scan, cache)
	if s.CacheHits.Load() != 0 {
		t.Fatal("vacuum did not invalidate")
	}
	// Results still correct from a cold scan (reference must drop deleted).
	unlockedIDs := sortedIDs(t, rel)
	if len(unlockedIDs) == 0 {
		t.Fatal("empty result")
	}
	// And the re-populated entry works again.
	rel2, s2 := d.exec(t, scan, cache)
	if s2.CacheHits.Load() != 1 {
		t.Fatal("entry not repopulated")
	}
	if !sameIDs(sortedIDs(t, rel2), unlockedIDs) {
		t.Fatal("post-vacuum cached mismatch")
	}
}

func TestScanForceInsertOnly(t *testing.T) {
	d := newTestDB(t, 3000, 10, 2, 9)
	scan := &Scan{Table: "items", Filter: qtyPred(30), Project: []string{"id"}}
	cache := core.NewCache(core.DefaultConfig())
	stats := &storage.ScanStats{}
	ec := &ExecCtx{Catalog: d.cat, Cache: cache, Snapshot: d.cat.Snapshot(), Stats: stats, ForceCacheInsertOnly: true}
	if _, err := scan.Execute(ec); err != nil {
		t.Fatal(err)
	}
	if _, err := scan.Execute(ec); err != nil {
		t.Fatal(err)
	}
	if stats.CacheHits.Load() != 0 {
		t.Fatal("insert-only mode used the cache")
	}
	if cache.Stats().Inserts < 2 {
		t.Fatal("insert-only mode did not insert")
	}
}

// --- joins ---

func TestInnerJoinMatchesReference(t *testing.T) {
	d := newTestDB(t, 4000, 50, 2, 10)
	j := &Join{
		Left:      &Scan{Table: "items", Filter: qtyPred(25)},
		Right:     &Scan{Table: "dims", Filter: expr.Cmp("d_rank", expr.Lt, expr.Int(30))},
		LeftKeys:  []string{"dim_id"},
		RightKeys: []string{"d_id"},
		Type:      InnerJoin,
	}
	rel, _ := d.exec(t, j, nil)

	// Reference nested loop.
	dimOK := map[int64]bool{}
	for i := 0; i < d.db.N; i++ {
		if d.db.Cols[2].Ints[i] < 30 {
			dimOK[d.db.Cols[0].Ints[i]] = true
		}
	}
	var want []int64
	for i := 0; i < d.ib.N; i++ {
		if d.ib.Cols[2].Ints[i] >= 25 && dimOK[d.ib.Cols[1].Ints[i]] {
			want = append(want, d.ib.Cols[0].Ints[i])
		}
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if !sameIDs(sortedIDs(t, rel), want) {
		t.Fatalf("join mismatch: %d vs %d rows", rel.NumRows(), len(want))
	}
	// Build columns present.
	if rel.ColByName("d_cat") == nil {
		t.Fatal("build columns missing")
	}
}

func TestSemiAndAntiJoin(t *testing.T) {
	d := newTestDB(t, 2000, 40, 2, 11)
	dimFilter := expr.Cmp("d_rank", expr.Ge, expr.Int(50))
	semi := &Join{
		Left: &Scan{Table: "items"}, Right: &Scan{Table: "dims", Filter: dimFilter},
		LeftKeys: []string{"dim_id"}, RightKeys: []string{"d_id"}, Type: SemiJoin,
	}
	anti := &Join{
		Left: &Scan{Table: "items"}, Right: &Scan{Table: "dims", Filter: dimFilter},
		LeftKeys: []string{"dim_id"}, RightKeys: []string{"d_id"}, Type: AntiJoin,
	}
	semiRel, _ := d.exec(t, semi, nil)
	antiRel, _ := d.exec(t, anti, nil)
	if semiRel.NumRows()+antiRel.NumRows() != 2000 {
		t.Fatalf("semi+anti != total: %d + %d", semiRel.NumRows(), antiRel.NumRows())
	}
	dimOK := map[int64]bool{}
	for i := 0; i < d.db.N; i++ {
		if d.db.Cols[2].Ints[i] >= 50 {
			dimOK[d.db.Cols[0].Ints[i]] = true
		}
	}
	var wantSemi []int64
	for i := 0; i < d.ib.N; i++ {
		if dimOK[d.ib.Cols[1].Ints[i]] {
			wantSemi = append(wantSemi, d.ib.Cols[0].Ints[i])
		}
	}
	sort.Slice(wantSemi, func(i, j int) bool { return wantSemi[i] < wantSemi[j] })
	if !sameIDs(sortedIDs(t, semiRel), wantSemi) {
		t.Fatal("semi join mismatch")
	}
	// Semi output must not include build columns.
	if semiRel.ColByName("d_cat") != nil {
		t.Fatal("semi join leaked build columns")
	}
}

func TestLeftOuterJoin(t *testing.T) {
	d := newTestDB(t, 1000, 10, 1, 12)
	// Dims restricted to rank < 10: most items unmatched.
	j := &Join{
		Left: &Scan{Table: "items"}, Right: &Scan{Table: "dims", Filter: expr.Cmp("d_rank", expr.Lt, expr.Int(10))},
		LeftKeys: []string{"dim_id"}, RightKeys: []string{"d_id"}, Type: LeftOuterJoin,
	}
	rel, _ := d.exec(t, j, nil)
	if rel.NumRows() < 1000 {
		t.Fatalf("left join lost probe rows: %d", rel.NumRows())
	}
	matched := rel.ColByName("__matched")
	if matched == nil {
		t.Fatal("no __matched column")
	}
	dimOK := map[int64]bool{}
	for i := 0; i < d.db.N; i++ {
		if d.db.Cols[2].Ints[i] < 10 {
			dimOK[d.db.Cols[0].Ints[i]] = true
		}
	}
	ids := rel.ColByName("id")
	dimIDs := rel.ColByName("dim_id")
	for row := 0; row < rel.NumRows(); row++ {
		want := int64(0)
		if dimOK[dimIDs.Ints[row]] {
			want = 1
		}
		if matched.Ints[row] != want {
			t.Fatalf("row %d (id %d): matched=%d want %d", row, ids.Ints[row], matched.Ints[row], want)
		}
	}
}

func TestJoinErrors(t *testing.T) {
	d := newTestDB(t, 100, 10, 1, 13)
	bad := &Join{Left: &Scan{Table: "items"}, Right: &Scan{Table: "dims"},
		LeftKeys: []string{"dim_id", "qty"}, RightKeys: []string{"d_id"}, Type: InnerJoin}
	if _, err := bad.Execute(&ExecCtx{Catalog: d.cat, Snapshot: d.cat.Snapshot()}); err == nil {
		t.Fatal("key arity mismatch accepted")
	}
	bad2 := &Join{Left: &Scan{Table: "items"}, Right: &Scan{Table: "dims"},
		LeftKeys: []string{"nope"}, RightKeys: []string{"d_id"}, Type: InnerJoin}
	if _, err := bad2.Execute(&ExecCtx{Catalog: d.cat, Snapshot: d.cat.Snapshot()}); err == nil {
		t.Fatal("unknown key accepted")
	}
}

func TestSemiJoinPushdownCachesJoinResult(t *testing.T) {
	d := newTestDB(t, 20000, 100, 4, 14)
	dimFilter := expr.Cmp("d_rank", expr.Lt, expr.Int(5)) // selective
	mkJoin := func() *Join {
		return &Join{
			Left:         &Scan{Table: "items", Project: []string{"id", "dim_id"}},
			Right:        &Scan{Table: "dims", Filter: dimFilter},
			LeftKeys:     []string{"dim_id"},
			RightKeys:    []string{"d_id"},
			Type:         InnerJoin,
			PushSemiJoin: true,
		}
	}
	cold, coldStats := d.exec(t, mkJoin(), nil)
	want := sortedIDs(t, cold)

	cache := core.NewCache(core.Config{Kind: core.RangeIndex, MaxRanges: 16384})
	r1, _ := d.exec(t, mkJoin(), cache)
	if !sameIDs(sortedIDs(t, r1), want) {
		t.Fatal("first cached run mismatch")
	}
	r2, s2 := d.exec(t, mkJoin(), cache)
	if !sameIDs(sortedIDs(t, r2), want) {
		t.Fatal("second cached run mismatch")
	}
	// The semi-join entry must make the probe scan far cheaper: the dims
	// filter keeps ~5% of dims, so ~5% of items qualify.
	if s2.RowsScanned.Load() >= coldStats.RowsScanned.Load()/2 {
		t.Fatalf("semi-join entry not used: %d vs cold %d", s2.RowsScanned.Load(), coldStats.RowsScanned.Load())
	}

	// DML on the build side must invalidate the semi-join entry but the scan
	// must still return correct (new) results.
	d.dims.DeleteRows(0, []int{0}, d.cat.NextXID())
	r3, _ := d.exec(t, mkJoin(), cache)
	// Recompute reference: dim 0 deleted.
	dimOK := map[int64]bool{}
	for i := 0; i < d.db.N; i++ {
		if d.db.Cols[2].Ints[i] < 5 && d.db.Cols[0].Ints[i] != 0 {
			dimOK[d.db.Cols[0].Ints[i]] = true
		}
	}
	var want3 []int64
	for i := 0; i < d.ib.N; i++ {
		if dimOK[d.ib.Cols[1].Ints[i]] {
			want3 = append(want3, d.ib.Cols[0].Ints[i])
		}
	}
	sort.Slice(want3, func(i, j int) bool { return want3[i] < want3[j] })
	if !sameIDs(sortedIDs(t, r3), want3) {
		t.Fatal("stale semi-join entry served after build-side DML")
	}
}

func TestSemiJoinDisable(t *testing.T) {
	d := newTestDB(t, 5000, 100, 2, 15)
	j := &Join{
		Left:         &Scan{Table: "items", Project: []string{"id", "dim_id"}},
		Right:        &Scan{Table: "dims", Filter: expr.Cmp("d_rank", expr.Lt, expr.Int(5))},
		LeftKeys:     []string{"dim_id"},
		RightKeys:    []string{"d_id"},
		Type:         InnerJoin,
		PushSemiJoin: true,
	}
	stats := &storage.ScanStats{}
	ec := &ExecCtx{Catalog: d.cat, Snapshot: d.cat.Snapshot(), Stats: stats, DisableSemiJoin: true}
	rel, err := j.Execute(ec)
	if err != nil {
		t.Fatal(err)
	}
	rel2, _ := d.exec(t, j, nil)
	if !sameIDs(sortedIDs(t, rel), sortedIDs(t, rel2)) {
		t.Fatal("disable semi-join changed results")
	}
}

// --- aggregation ---

func TestAggGlobal(t *testing.T) {
	d := newTestDB(t, 3000, 10, 2, 16)
	agg := &Agg{
		Input: &Scan{Table: "items"},
		Aggs: []AggSpec{
			{Func: AggCount, Name: "cnt"},
			{Func: AggSum, Arg: expr.Col("price"), Name: "total"},
			{Func: AggAvg, Arg: expr.Col("qty"), Name: "avg_qty"},
			{Func: AggMin, Arg: expr.Col("qty"), Name: "min_qty"},
			{Func: AggMax, Arg: expr.Col("qty"), Name: "max_qty"},
			{Func: AggCountDistinct, Arg: expr.Col("mode"), Name: "modes"},
		},
	}
	rel, _ := d.exec(t, agg, nil)
	if rel.NumRows() != 1 {
		t.Fatalf("global agg rows %d", rel.NumRows())
	}
	if rel.ColByName("cnt").Ints[0] != 3000 {
		t.Fatal("count wrong")
	}
	var sum float64
	var minQ, maxQ int64 = 1 << 62, -1
	modes := map[string]bool{}
	var qtySum float64
	for i := 0; i < d.ib.N; i++ {
		sum += d.ib.Cols[3].Floats[i]
		q := d.ib.Cols[2].Ints[i]
		qtySum += float64(q)
		if q < minQ {
			minQ = q
		}
		if q > maxQ {
			maxQ = q
		}
		modes[d.ib.Cols[4].Strings[i]] = true
	}
	if got := rel.ColByName("total").Floats[0]; got < sum-0.01 || got > sum+0.01 {
		t.Fatalf("sum %f want %f", got, sum)
	}
	if got := rel.ColByName("avg_qty").Floats[0]; got < qtySum/3000-1e-9 || got > qtySum/3000+1e-9 {
		t.Fatal("avg wrong")
	}
	if rel.ColByName("min_qty").Ints[0] != minQ || rel.ColByName("max_qty").Ints[0] != maxQ {
		t.Fatal("min/max wrong")
	}
	if rel.ColByName("modes").Ints[0] != int64(len(modes)) {
		t.Fatal("count distinct wrong")
	}
}

func TestAggGroupBy(t *testing.T) {
	d := newTestDB(t, 5000, 10, 2, 17)
	agg := &Agg{
		Input:   &Scan{Table: "items"},
		GroupBy: []string{"mode"},
		Aggs:    []AggSpec{{Func: AggCount, Name: "cnt"}, {Func: AggSum, Arg: expr.Col("qty"), Name: "q"}},
	}
	rel, _ := d.exec(t, agg, nil)
	ref := map[string][2]float64{}
	for i := 0; i < d.ib.N; i++ {
		m := d.ib.Cols[4].Strings[i]
		v := ref[m]
		v[0]++
		v[1] += float64(d.ib.Cols[2].Ints[i])
		ref[m] = v
	}
	if rel.NumRows() != len(ref) {
		t.Fatalf("groups %d want %d", rel.NumRows(), len(ref))
	}
	modeCol := rel.ColByName("mode")
	cntCol := rel.ColByName("cnt")
	qCol := rel.ColByName("q")
	for row := 0; row < rel.NumRows(); row++ {
		m := modeCol.Dict.Value(modeCol.Ints[row])
		want := ref[m]
		if float64(cntCol.Ints[row]) != want[0] || qCol.Floats[row] != want[1] {
			t.Fatalf("group %s: got (%d, %f) want %v", m, cntCol.Ints[row], qCol.Floats[row], want)
		}
	}
}

func TestAggGroupByMultiKey(t *testing.T) {
	d := newTestDB(t, 4000, 10, 2, 18)
	agg := &Agg{
		Input:   &Scan{Table: "items"},
		GroupBy: []string{"mode", "qty"},
		Aggs:    []AggSpec{{Func: AggCount, Name: "cnt"}},
	}
	rel, _ := d.exec(t, agg, nil)
	ref := map[string]int64{}
	for i := 0; i < d.ib.N; i++ {
		k := d.ib.Cols[4].Strings[i] + "|" + string(rune(d.ib.Cols[2].Ints[i]))
		ref[k]++
	}
	if rel.NumRows() != len(ref) {
		t.Fatalf("groups %d want %d", rel.NumRows(), len(ref))
	}
	total := int64(0)
	cnt := rel.ColByName("cnt")
	for row := 0; row < rel.NumRows(); row++ {
		total += cnt.Ints[row]
	}
	if total != 4000 {
		t.Fatalf("counts sum to %d", total)
	}
}

func TestAggErrors(t *testing.T) {
	d := newTestDB(t, 100, 10, 1, 19)
	bad := &Agg{Input: &Scan{Table: "items"}, GroupBy: []string{"nope"},
		Aggs: []AggSpec{{Func: AggCount, Name: "c"}}}
	if _, err := bad.Execute(&ExecCtx{Catalog: d.cat, Snapshot: d.cat.Snapshot()}); err == nil {
		t.Fatal("bad group-by accepted")
	}
	bad2 := &Agg{Input: &Scan{Table: "items"},
		Aggs: []AggSpec{{Func: AggSum, Arg: expr.Col("nope"), Name: "c"}}}
	if _, err := bad2.Execute(&ExecCtx{Catalog: d.cat, Snapshot: d.cat.Snapshot()}); err == nil {
		t.Fatal("bad agg arg accepted")
	}
}

// --- project / filter / sort / limit / union ---

func TestProjectFilterSortLimit(t *testing.T) {
	d := newTestDB(t, 2000, 10, 2, 20)
	plan := &Limit{
		N: 10,
		Input: &Sort{
			Keys: []SortKey{{Col: "revenue", Desc: true}},
			Input: &Project{
				Exprs: []NamedScalar{
					{Expr: expr.Col("id"), Name: "id"},
					{Expr: expr.Arith(expr.Col("price"), expr.Mul, expr.Col("qty")), Name: "revenue"},
				},
				Input: &Filter{
					Pred:  expr.Cmp("qty", expr.Ge, expr.Int(10)),
					Input: &Scan{Table: "items"},
				},
			},
		},
	}
	rel, _ := d.exec(t, plan, nil)
	if rel.NumRows() != 10 {
		t.Fatalf("limit gave %d rows", rel.NumRows())
	}
	rev := rel.ColByName("revenue")
	for i := 1; i < rel.NumRows(); i++ {
		if rev.Floats[i] > rev.Floats[i-1] {
			t.Fatal("not sorted desc")
		}
	}
	// Reference top value.
	best := 0.0
	for i := 0; i < d.ib.N; i++ {
		if d.ib.Cols[2].Ints[i] >= 10 {
			r := d.ib.Cols[3].Floats[i] * float64(d.ib.Cols[2].Ints[i])
			if r > best {
				best = r
			}
		}
	}
	if rev.Floats[0] != best {
		t.Fatalf("top revenue %f want %f", rev.Floats[0], best)
	}
}

func TestSortByStringAndMultiKey(t *testing.T) {
	d := newTestDB(t, 500, 10, 1, 21)
	plan := &Sort{
		Keys:  []SortKey{{Col: "mode"}, {Col: "qty", Desc: true}},
		Input: &Scan{Table: "items"},
	}
	rel, _ := d.exec(t, plan, nil)
	mode := rel.ColByName("mode")
	qty := rel.ColByName("qty")
	for i := 1; i < rel.NumRows(); i++ {
		a := mode.Dict.Value(mode.Ints[i-1])
		b := mode.Dict.Value(mode.Ints[i])
		if a > b {
			t.Fatal("mode not ascending")
		}
		if a == b && qty.Ints[i] > qty.Ints[i-1] {
			t.Fatal("qty not descending within mode")
		}
	}
}

func TestUnion(t *testing.T) {
	d := newTestDB(t, 1000, 10, 1, 22)
	lo := &Scan{Table: "items", Filter: expr.Cmp("qty", expr.Lt, expr.Int(10)), Project: []string{"id", "mode"}}
	hi := &Scan{Table: "items", Filter: expr.Cmp("qty", expr.Gt, expr.Int(40)), Project: []string{"id", "mode"}}
	u := &Union{Inputs: []Node{lo, hi}}
	rel, _ := d.exec(t, u, nil)
	want := d.refItemIDs(func(r int) bool {
		q := d.ib.Cols[2].Ints[r]
		return q < 10 || q > 40
	})
	if !sameIDs(sortedIDs(t, rel), want) {
		t.Fatal("union mismatch")
	}
	// Empty union errors.
	if _, err := (&Union{}).Execute(&ExecCtx{Catalog: d.cat}); err == nil {
		t.Fatal("empty union accepted")
	}
}

func TestRelationFormat(t *testing.T) {
	d := newTestDB(t, 10, 10, 1, 23)
	rel, _ := d.exec(t, &Scan{Table: "items"}, nil)
	out := rel.Format(3)
	if len(out) == 0 {
		t.Fatal("empty format")
	}
	if rel.StringValue(0, 4) == "" {
		t.Fatal("string value empty")
	}
	names := rel.ColumnNames()
	if len(names) != 6 || names[0] != "id" {
		t.Fatalf("names %v", names)
	}
}

// Property: under any random mix of appends and deletes, a cached scan
// equals a cold scan — the paper's central no-false-negatives invariant.
func TestCachedScanEqualsColdScanUnderDML(t *testing.T) {
	for _, kind := range []core.EntryKind{core.RangeIndex, core.BitmapIndex} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			d := newTestDB(t, 6000, 10, 3, 24)
			cache := core.NewCache(core.Config{Kind: kind, MaxRanges: 16, RowsPerBlock: 500})
			r := rand.New(rand.NewSource(77))
			preds := []expr.Pred{
				qtyPred(45),
				expr.Between("day", expr.Int(9100), expr.Int(9150)),
				expr.And(expr.Cmp("mode", expr.Eq, expr.Str("AIR")), qtyPred(20)),
				expr.Or(expr.Cmp("qty", expr.Lt, expr.Int(3)), expr.Cmp("qty", expr.Gt, expr.Int(48))),
			}
			nextID := int64(6000)
			for step := 0; step < 25; step++ {
				switch r.Intn(3) {
				case 0: // append
					nb := itemsBatch(500+r.Intn(500), int64(1000+step), 10)
					for i := 0; i < nb.N; i++ {
						nb.Cols[0].Ints[i] = nextID
						nextID++
					}
					if err := d.items.Append(nb, d.cat.NextXID()); err != nil {
						t.Fatal(err)
					}
				case 1: // delete a few random rows of a random slice
					slice := r.Intn(d.items.NumSlices())
					n := d.items.Slice(slice).NumRows()
					if n > 0 {
						var rows []int
						for k := 0; k < 20; k++ {
							rows = append(rows, r.Intn(n))
						}
						d.items.DeleteRows(slice, rows, d.cat.NextXID())
					}
				case 2: // occasionally vacuum
					if r.Intn(4) == 0 {
						d.items.Vacuum(d.cat.Snapshot())
					}
				}
				p := preds[r.Intn(len(preds))]
				scan := &Scan{Table: "items", Filter: p, Project: []string{"id"}}
				warm, _ := d.exec(t, scan, cache)
				cold, _ := d.exec(t, scan, nil)
				if !sameIDs(sortedIDs(t, warm), sortedIDs(t, cold)) {
					t.Fatalf("step %d (%s): cached scan diverged (%d vs %d rows)",
						step, p.Key(), warm.NumRows(), cold.NumRows())
				}
			}
		})
	}
}

func TestCacheDescriptors(t *testing.T) {
	d := newTestDB(t, 100, 10, 1, 30)
	ec := &ExecCtx{Catalog: d.cat, Snapshot: d.cat.Snapshot()}

	scan := &Scan{Table: "dims", Filter: expr.Cmp("d_rank", expr.Lt, expr.Int(5))}
	desc, deps, ok := scan.CacheDescriptor(ec)
	if !ok || len(deps) != 1 || deps[0].Table != d.dims {
		t.Fatalf("scan descriptor: ok=%v deps=%v", ok, deps)
	}
	if desc == "" {
		t.Fatal("empty scan descriptor")
	}
	// Unknown table -> not describable.
	if _, _, ok := (&Scan{Table: "missing"}).CacheDescriptor(ec); ok {
		t.Fatal("missing table described")
	}
	// Join composes children; filter wraps; projection passes through.
	j := &Join{Left: &Scan{Table: "items"}, Right: scan,
		LeftKeys: []string{"dim_id"}, RightKeys: []string{"d_id"}, Type: InnerJoin}
	jd, jdeps, ok := j.CacheDescriptor(ec)
	if !ok || len(jdeps) != 2 {
		t.Fatalf("join descriptor: ok=%v deps=%d", ok, len(jdeps))
	}
	fd, _, ok := (&Filter{Input: j, Pred: expr.Cmp("qty", expr.Gt, expr.Int(1))}).CacheDescriptor(ec)
	if !ok || fd == jd {
		t.Fatal("filter descriptor")
	}
	pd, _, ok := (&Project{Input: j}).CacheDescriptor(ec)
	if !ok || pd != jd {
		t.Fatal("project must pass its input's descriptor through")
	}
	// Aggregations and limits are not describable.
	if _, _, ok := (&Agg{Input: j}).CacheDescriptor(ec); ok {
		t.Fatal("agg described")
	}
	if _, _, ok := (&Limit{Input: j, N: 1}).CacheDescriptor(ec); ok {
		t.Fatal("limit described")
	}
	if _, _, ok := (&Union{Inputs: []Node{j}}).CacheDescriptor(ec); ok {
		t.Fatal("union described")
	}
	// Descriptor changes when the build side's version moves.
	d.dims.BumpVersion()
	_, deps2, _ := scan.CacheDescriptor(ec)
	if deps2[0].Version == deps[0].Version {
		t.Fatal("descriptor version did not advance")
	}
}

func TestExplainCoversAllNodes(t *testing.T) {
	d := newTestDB(t, 100, 10, 1, 31)
	rel, _ := d.exec(t, &Scan{Table: "dims"}, nil)
	plan := &Limit{N: 1, Input: &Sort{Keys: []SortKey{{Col: "id", Desc: true}},
		Input: &Project{Exprs: []NamedScalar{{Expr: expr.Col("id"), Name: "id"}},
			Input: &Filter{Pred: expr.Cmp("qty", expr.Gt, expr.Int(0)),
				Input: &Union{Inputs: []Node{
					&Join{Left: &Scan{Table: "items", Alias: "i", Project: []string{"id", "qty"}},
						Right: &Agg{Input: &Materialized{Rel: rel}, GroupBy: []string{"d_id"},
							Aggs: []AggSpec{{Func: AggCount, Name: "n"}}},
						LeftKeys: []string{"i.id"}, RightKeys: []string{"d_id"}, Type: SemiJoin, PushSemiJoin: true},
				}}}}}}
	out := Explain(plan)
	for _, want := range []string{"Limit 1", "Sort [id desc]", "Project [id]", "Filter", "Union", "Join semi", "Scan items as i", "Aggregate", "Materialized"} {
		if !strings.Contains(out, want) {
			t.Fatalf("explain missing %q:\n%s", want, out)
		}
	}
}

// Sort-key tables interact with the cache exactly like unsorted ones:
// appends land in the insert buffer (watermark extend), vacuum re-sorts and
// invalidates.
func TestCacheWithSortKeyTable(t *testing.T) {
	cat := storage.NewCatalog()
	tbl, err := cat.CreateTable("s", itemsSchema(), 2, "day")
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.SortedLoad(itemsBatch(8000, 40, 10), cat.NextXID()); err != nil {
		t.Fatal(err)
	}
	d := &testDB{cat: cat, items: tbl}
	cache := core.NewCache(core.DefaultConfig())
	p := expr.Between("day", expr.Int(9100), expr.Int(9120))
	scan := &Scan{Table: "s", Filter: p, Project: []string{"id"}}

	cold, coldStats := d.exec(t, scan, nil)
	warm1, _ := d.exec(t, scan, cache)
	if !sameIDs(sortedIDs(t, warm1), sortedIDs(t, cold)) {
		t.Fatal("sorted-table cached scan mismatch")
	}
	// Sorted layout: day is clustered, so even the bitmap entry (and zone
	// maps) restrict the scan sharply.
	warm2, s2 := d.exec(t, scan, cache)
	if !sameIDs(sortedIDs(t, warm2), sortedIDs(t, cold)) {
		t.Fatal("second cached run mismatch")
	}
	if s2.RowsScanned.Load() > coldStats.RowsScanned.Load() {
		t.Fatal("cache made the sorted scan worse")
	}
	// Insert-buffer appends keep the entry alive; vacuum re-sorts and
	// invalidates.
	if err := tbl.Append(itemsBatch(1000, 41, 10), cat.NextXID()); err != nil {
		t.Fatal(err)
	}
	warm3, s3 := d.exec(t, scan, cache)
	if s3.CacheHits.Load() != 1 {
		t.Fatal("append invalidated entry on sorted table")
	}
	cold3, _ := d.exec(t, scan, nil)
	if !sameIDs(sortedIDs(t, warm3), sortedIDs(t, cold3)) {
		t.Fatal("post-append mismatch")
	}
	tbl.Vacuum(cat.Snapshot())
	warm4, s4 := d.exec(t, scan, cache)
	if s4.CacheHits.Load() != 0 {
		t.Fatal("vacuum did not invalidate")
	}
	cold4, _ := d.exec(t, scan, nil)
	if !sameIDs(sortedIDs(t, warm4), sortedIDs(t, cold4)) {
		t.Fatal("post-vacuum mismatch")
	}
}

// String join keys exercise the byte-encoded hash table and the FNV-hashed
// bloom path.
func TestStringKeyJoin(t *testing.T) {
	cat := storage.NewCatalog()
	facts, _ := cat.CreateTable("f", storage.Schema{
		{Name: "id", Type: storage.Int64},
		{Name: "city", Type: storage.String},
	}, 2)
	dims, _ := cat.CreateTable("g", storage.Schema{
		{Name: "g_city", Type: storage.String},
		{Name: "g_region", Type: storage.String},
	}, 1)
	cities := []string{"berlin", "munich", "hamburg", "paris", "lyon", "rome"}
	fb := storage.NewBatch(facts.Schema())
	r := rand.New(rand.NewSource(60))
	for i := 0; i < 5000; i++ {
		fb.Cols[0].Ints = append(fb.Cols[0].Ints, int64(i))
		fb.Cols[1].Strings = append(fb.Cols[1].Strings, cities[r.Intn(len(cities))])
	}
	fb.N = 5000
	if err := facts.Append(fb, cat.NextXID()); err != nil {
		t.Fatal(err)
	}
	gb := storage.NewBatch(dims.Schema())
	regions := map[string]string{"berlin": "de", "munich": "de", "hamburg": "de", "paris": "fr", "lyon": "fr", "rome": "it"}
	for _, c := range cities {
		gb.Cols[0].Strings = append(gb.Cols[0].Strings, c)
		gb.Cols[1].Strings = append(gb.Cols[1].Strings, regions[c])
	}
	gb.N = len(cities)
	if err := dims.Append(gb, cat.NextXID()); err != nil {
		t.Fatal(err)
	}
	j := &Join{
		Left:         &Scan{Table: "f"},
		Right:        &Scan{Table: "g", Filter: expr.Cmp("g_region", expr.Eq, expr.Str("de"))},
		LeftKeys:     []string{"city"},
		RightKeys:    []string{"g_city"},
		Type:         InnerJoin,
		PushSemiJoin: true,
	}
	stats := &storage.ScanStats{}
	ec := &ExecCtx{Catalog: cat, Snapshot: cat.Snapshot(), Stats: stats, Cache: core.NewCache(core.DefaultConfig())}
	rel, err := j.Execute(ec)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < fb.N; i++ {
		if regions[fb.Cols[1].Strings[i]] == "de" {
			want++
		}
	}
	if rel.NumRows() != want {
		t.Fatalf("rows %d want %d", rel.NumRows(), want)
	}
	// Region column joined in, decoded via the build dict.
	if rel.ColByName("g_region") == nil {
		t.Fatal("build column missing")
	}
	// Repeat uses the semi-join entry.
	ec2 := &ExecCtx{Catalog: cat, Snapshot: cat.Snapshot(), Stats: &storage.ScanStats{}, Cache: ec.Cache}
	rel2, err := j.Execute(ec2)
	if err != nil {
		t.Fatal(err)
	}
	if rel2.NumRows() != want {
		t.Fatal("cached string-key join mismatch")
	}
}

// Multi-column (composite) join keys exercise the byte-encoded table.
func TestMultiKeyJoin(t *testing.T) {
	cat := storage.NewCatalog()
	a, _ := cat.CreateTable("a", storage.Schema{
		{Name: "x", Type: storage.Int64}, {Name: "y", Type: storage.Int64}, {Name: "v", Type: storage.Float64},
	}, 1)
	bt, _ := cat.CreateTable("b", storage.Schema{
		{Name: "bx", Type: storage.Int64}, {Name: "by", Type: storage.Int64}, {Name: "w", Type: storage.Float64},
	}, 1)
	ab := storage.NewBatch(a.Schema())
	bb := storage.NewBatch(bt.Schema())
	for i := 0; i < 1000; i++ {
		ab.Cols[0].Ints = append(ab.Cols[0].Ints, int64(i%10))
		ab.Cols[1].Ints = append(ab.Cols[1].Ints, int64(i%7))
		ab.Cols[2].Floats = append(ab.Cols[2].Floats, float64(i))
	}
	ab.N = 1000
	for x := 0; x < 10; x++ {
		for y := 0; y < 7; y++ {
			bb.Cols[0].Ints = append(bb.Cols[0].Ints, int64(x))
			bb.Cols[1].Ints = append(bb.Cols[1].Ints, int64(y))
			bb.Cols[2].Floats = append(bb.Cols[2].Floats, float64(x*100+y))
		}
	}
	bb.N = 70
	if err := a.Append(ab, cat.NextXID()); err != nil {
		t.Fatal(err)
	}
	if err := bt.Append(bb, cat.NextXID()); err != nil {
		t.Fatal(err)
	}
	j := &Join{
		Left: &Scan{Table: "a"}, Right: &Scan{Table: "b"},
		LeftKeys: []string{"x", "y"}, RightKeys: []string{"bx", "by"}, Type: InnerJoin,
	}
	rel, err := j.Execute(&ExecCtx{Catalog: cat, Snapshot: cat.Snapshot(), Stats: &storage.ScanStats{}})
	if err != nil {
		t.Fatal(err)
	}
	// Every (x,y) pair exists in b exactly once: 1:1 match.
	if rel.NumRows() != 1000 {
		t.Fatalf("rows %d want 1000", rel.NumRows())
	}
	w := rel.ColByName("w")
	x := rel.ColByName("x")
	y := rel.ColByName("y")
	for i := 0; i < rel.NumRows(); i++ {
		if w.Floats[i] != float64(x.Ints[i]*100+y.Ints[i]) {
			t.Fatal("composite key matched wrong row")
		}
	}
}

func TestMaterializedAndEnumStrings(t *testing.T) {
	d := newTestDB(t, 10, 10, 1, 61)
	rel, _ := d.exec(t, &Scan{Table: "dims"}, nil)
	m := &Materialized{Rel: rel}
	got, err := m.Execute(&ExecCtx{})
	if err != nil || got != rel {
		t.Fatal("materialized execute")
	}
	if _, _, ok := m.CacheDescriptor(nil); ok {
		t.Fatal("materialized described")
	}
	for jt, want := range map[JoinType]string{InnerJoin: "inner", LeftOuterJoin: "left", SemiJoin: "semi", AntiJoin: "anti"} {
		if jt.String() != want {
			t.Fatal("join type name")
		}
	}
	for f, want := range map[AggFunc]string{AggCount: "count", AggCountDistinct: "count_distinct", AggSum: "sum", AggAvg: "avg", AggMin: "min", AggMax: "max"} {
		if f.String() != want {
			t.Fatal("agg func name")
		}
	}
	if rel.MemBytes() <= 0 {
		t.Fatal("relation mem")
	}
	if rel.Dict(1) == nil { // d_cat string column
		t.Fatal("relation dict")
	}
}

func TestProbeKeyNameAndBaseProbeScan(t *testing.T) {
	s := &Scan{Table: "items", Alias: "i"}
	if probeKeyName(s, "i.dim_id") != "dim_id" || probeKeyName(s, "dim_id") != "dim_id" {
		t.Fatal("probeKeyName")
	}
	// Descent through filters and inner joins; stops at outer joins.
	inner := &Join{Left: s, Type: InnerJoin}
	if baseProbeScan(&Filter{Input: inner}) != s {
		t.Fatal("descent failed")
	}
	outer := &Join{Left: s, Type: LeftOuterJoin}
	if baseProbeScan(outer) != nil {
		t.Fatal("descended through outer join")
	}
	if baseProbeScan(&Agg{}) != nil {
		t.Fatal("descended through agg")
	}
}
