package engine

import (
	"encoding/binary"
	"fmt"

	"github.com/predcache/predcache/internal/bloom"
	"github.com/predcache/predcache/internal/core"
	"github.com/predcache/predcache/internal/storage"
)

// joinKeyEncoder extracts comparable key bytes for one relation's key
// columns. String columns are encoded via their dictionary values so keys
// compare correctly across relations with different dictionaries.
type joinKeyEncoder struct {
	cols []*RelCol
}

func newJoinKeyEncoder(rel *Relation, keys []string) (*joinKeyEncoder, error) {
	e := &joinKeyEncoder{}
	for _, k := range keys {
		c := rel.ColByName(k)
		if c == nil {
			return nil, fmt.Errorf("engine: join key %q not found", k)
		}
		e.cols = append(e.cols, c)
	}
	return e, nil
}

// single reports whether the fast single-int64 path applies.
func (e *joinKeyEncoder) single() bool {
	return len(e.cols) == 1 && e.cols[0].Type != storage.Float64 && e.cols[0].Type != storage.String
}

func (e *joinKeyEncoder) intKey(row int) int64 { return e.cols[0].Ints[row] }

// encode appends the composite key bytes for row to dst.
func (e *joinKeyEncoder) encode(dst []byte, row int) []byte {
	var buf [8]byte
	for _, c := range e.cols {
		switch c.Type {
		case storage.Float64:
			binary.LittleEndian.PutUint64(buf[:], uint64(int64(c.Floats[row]*1e6)))
			dst = append(dst, buf[:]...)
		case storage.String:
			s := c.Dict.Value(c.Ints[row])
			binary.LittleEndian.PutUint32(buf[:4], uint32(len(s)))
			dst = append(dst, buf[:4]...)
			dst = append(dst, s...)
		default:
			binary.LittleEndian.PutUint64(buf[:], uint64(c.Ints[row]))
			dst = append(dst, buf[:]...)
		}
	}
	return dst
}

// Execute runs the hash join: build on Right, probe with Left. When
// enabled, a Bloom filter of the build keys is pushed into a probe-side
// base-table scan before it runs, so the scan can cache the semi-join
// result (§4.4, Figure 12).
func (j *Join) Execute(ec *ExecCtx) (rel *Relation, err error) {
	sp := beginNodeSpan(ec, j)
	defer func() { endNodeSpan(sp, rel, err) }()
	if err = ec.Cancelled(); err != nil {
		return nil, err
	}
	buildRel, err := j.Right.Execute(ec)
	if err != nil {
		return nil, err
	}
	if len(j.LeftKeys) != len(j.RightKeys) || len(j.LeftKeys) == 0 {
		return nil, fmt.Errorf("engine: join needs matching key lists")
	}
	buildEnc, err := newJoinKeyEncoder(buildRel, j.RightKeys)
	if err != nil {
		return nil, err
	}

	// Build the hash table.
	var intTable map[int64][]int32
	var bytesTable map[string][]int32
	if buildEnc.single() {
		intTable = make(map[int64][]int32, buildRel.NumRows())
		for row := 0; row < buildRel.NumRows(); row++ {
			if row&(cancelCheckRows-1) == 0 {
				if err := ec.Cancelled(); err != nil {
					return nil, err
				}
			}
			k := buildEnc.intKey(row)
			intTable[k] = append(intTable[k], int32(row))
		}
	} else {
		bytesTable = make(map[string][]int32, buildRel.NumRows())
		var scratch []byte
		for row := 0; row < buildRel.NumRows(); row++ {
			if row&(cancelCheckRows-1) == 0 {
				if err := ec.Cancelled(); err != nil {
					return nil, err
				}
			}
			scratch = buildEnc.encode(scratch[:0], row)
			bytesTable[string(scratch)] = append(bytesTable[string(scratch)], int32(row))
		}
	}

	// Semi-join filter pushdown into the base probe-side scan. The probe key
	// column originates from a base table even through a chain of inner
	// joins, so the Bloom filter can sink all the way down (star schemas
	// push one filter per dimension onto the fact scan).
	probeScan := baseProbeScan(j.Left)
	pushSJ := j.PushSemiJoin && !ec.DisableSemiJoin && probeScan != nil &&
		len(j.LeftKeys) == 1 && (j.Type == InnerJoin || j.Type == SemiJoin)
	if pushSJ {
		// The key must be a base column of the probe scan's table.
		if tbl, ok := ec.Catalog.Table(probeScan.Table); !ok ||
			tbl.ColumnIndex(probeKeyName(probeScan, j.LeftKeys[0])) < 0 {
			pushSJ = false
		}
	}
	if pushSJ {
		keyCol := buildRel.ColByName(j.RightKeys[0])
		sj := &semiJoinFilter{keyCol: probeKeyName(probeScan, j.LeftKeys[0])}
		sj.filter = bloom.New(buildRel.NumRows(), 0.01)
		if keyCol.Type == storage.String {
			sj.stringKeys = true
			for row := 0; row < buildRel.NumRows(); row++ {
				sj.filter.Add(hashString(keyCol.Dict.Value(keyCol.Ints[row])))
			}
		} else if keyCol.Type == storage.Float64 {
			pushSJ = false // float join keys: no bloom
		} else {
			for row := 0; row < buildRel.NumRows(); row++ {
				sj.filter.AddInt(keyCol.Ints[row])
			}
		}
		if pushSJ {
			if desc, deps, ok := j.Right.CacheDescriptor(ec); ok {
				sj.cacheable = true
				sj.sjKey = core.SemiJoinKey{
					JoinPred: "(= " + j.LeftKeys[0] + " " + j.RightKeys[0] + ")",
					BuildKey: desc,
				}
				sj.deps = deps
			}
			probeScan.runtimeSJ = append(probeScan.runtimeSJ, sj)
			defer func() { probeScan.runtimeSJ = probeScan.runtimeSJ[:len(probeScan.runtimeSJ)-1] }()
		}
	}

	probeRel, err := j.Left.Execute(ec)
	if err != nil {
		return nil, err
	}
	probeEnc, err := newJoinKeyEncoder(probeRel, j.LeftKeys)
	if err != nil {
		return nil, err
	}
	if buildEnc.single() != probeEnc.single() {
		// Mixed representations: fall back to byte keys on both sides.
		return nil, fmt.Errorf("engine: join key type mismatch between %v and %v", j.LeftKeys, j.RightKeys)
	}

	lookup := func(row int, scratch []byte) ([]int32, []byte) {
		if intTable != nil {
			return intTable[probeEnc.intKey(row)], scratch
		}
		scratch = probeEnc.encode(scratch[:0], row)
		return bytesTable[string(scratch)], scratch
	}

	var probeRows []int
	var buildRows []int32
	var scratch []byte
	switch j.Type {
	case InnerJoin:
		for row := 0; row < probeRel.NumRows(); row++ {
			if row&(cancelCheckRows-1) == 0 {
				if err := ec.Cancelled(); err != nil {
					return nil, err
				}
			}
			var matches []int32
			matches, scratch = lookup(row, scratch)
			for _, m := range matches {
				probeRows = append(probeRows, row)
				buildRows = append(buildRows, m)
			}
		}
	case LeftOuterJoin:
		for row := 0; row < probeRel.NumRows(); row++ {
			if row&(cancelCheckRows-1) == 0 {
				if err := ec.Cancelled(); err != nil {
					return nil, err
				}
			}
			var matches []int32
			matches, scratch = lookup(row, scratch)
			if len(matches) == 0 {
				probeRows = append(probeRows, row)
				buildRows = append(buildRows, -1)
				continue
			}
			for _, m := range matches {
				probeRows = append(probeRows, row)
				buildRows = append(buildRows, m)
			}
		}
	case SemiJoin:
		for row := 0; row < probeRel.NumRows(); row++ {
			if row&(cancelCheckRows-1) == 0 {
				if err := ec.Cancelled(); err != nil {
					return nil, err
				}
			}
			var matches []int32
			matches, scratch = lookup(row, scratch)
			if len(matches) > 0 {
				probeRows = append(probeRows, row)
			}
		}
	case AntiJoin:
		for row := 0; row < probeRel.NumRows(); row++ {
			if row&(cancelCheckRows-1) == 0 {
				if err := ec.Cancelled(); err != nil {
					return nil, err
				}
			}
			var matches []int32
			matches, scratch = lookup(row, scratch)
			if len(matches) == 0 {
				probeRows = append(probeRows, row)
			}
		}
	}

	// Assemble the output: probe columns, then (for inner/left) build
	// columns not shadowing probe names, plus a __matched marker for left
	// outer joins (this engine has no NULLs; sum(__matched) recovers SQL's
	// count(build_col) semantics).
	out := make([]RelCol, 0, probeRel.NumCols()+buildRel.NumCols()+1)
	for i := 0; i < probeRel.NumCols(); i++ {
		src := probeRel.Col(i)
		dst := RelCol{Name: src.Name, Type: src.Type, Dict: src.Dict}
		if src.Type == storage.Float64 {
			dst.Floats = make([]float64, len(probeRows))
			for k, row := range probeRows {
				dst.Floats[k] = src.Floats[row]
			}
		} else {
			dst.Ints = make([]int64, len(probeRows))
			for k, row := range probeRows {
				dst.Ints[k] = src.Ints[row]
			}
		}
		out = append(out, dst)
	}
	if j.Type == InnerJoin || j.Type == LeftOuterJoin {
		for i := 0; i < buildRel.NumCols(); i++ {
			src := buildRel.Col(i)
			if probeRel.ColByName(src.Name) != nil {
				continue // shadowed (typically the join key re-appearing)
			}
			dst := RelCol{Name: src.Name, Type: src.Type, Dict: src.Dict}
			if src.Type == storage.Float64 {
				dst.Floats = make([]float64, len(probeRows))
				for k := range probeRows {
					if buildRows[k] >= 0 {
						dst.Floats[k] = src.Floats[buildRows[k]]
					}
				}
			} else {
				dst.Ints = make([]int64, len(probeRows))
				for k := range probeRows {
					if buildRows[k] >= 0 {
						dst.Ints[k] = src.Ints[buildRows[k]]
					}
				}
			}
			out = append(out, dst)
		}
	}
	if j.Type == LeftOuterJoin {
		matched := RelCol{Name: "__matched", Type: storage.Int64, Ints: make([]int64, len(probeRows))}
		for k := range probeRows {
			if buildRows[k] >= 0 {
				matched.Ints[k] = 1
			}
		}
		out = append(out, matched)
	}
	return NewRelation(out)
}

// baseProbeScan descends to the base-table scan feeding the probe side,
// crossing only row-preserving or row-filtering operators (inner/semi joins
// keep fact-row key values intact; filters only remove rows), so a Bloom
// filter on a base column remains a sound necessary condition.
func baseProbeScan(n Node) *Scan {
	switch t := n.(type) {
	case *Scan:
		return t
	case *Join:
		if t.Type == InnerJoin || t.Type == SemiJoin {
			return baseProbeScan(t.Left)
		}
	case *Filter:
		return baseProbeScan(t.Input)
	}
	return nil
}

// probeKeyName maps a join key name back to the base-table column name when
// the probe scan uses an alias.
func probeKeyName(s *Scan, key string) string {
	if s.Alias != "" {
		prefix := s.Alias + "."
		if len(key) > len(prefix) && key[:len(prefix)] == prefix {
			return key[len(prefix):]
		}
	}
	return key
}
