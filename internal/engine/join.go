package engine

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync/atomic"

	"github.com/predcache/predcache/internal/bloom"
	"github.com/predcache/predcache/internal/core"
	"github.com/predcache/predcache/internal/expr"
	"github.com/predcache/predcache/internal/storage"
)

// joinKeyEncoder extracts comparable key bytes for one relation's key
// columns. String columns are encoded via their dictionary values so keys
// compare correctly across relations with different dictionaries.
type joinKeyEncoder struct {
	cols []*RelCol
}

func newJoinKeyEncoder(rel *Relation, keys []string) (*joinKeyEncoder, error) {
	e := &joinKeyEncoder{}
	for _, k := range keys {
		c := rel.ColByName(k)
		if c == nil {
			return nil, fmt.Errorf("engine: join key %q not found", k)
		}
		e.cols = append(e.cols, c)
	}
	return e, nil
}

// single reports whether the fast single-int64 path applies.
func (e *joinKeyEncoder) single() bool {
	return len(e.cols) == 1 && e.cols[0].Type != storage.Float64 && e.cols[0].Type != storage.String
}

func (e *joinKeyEncoder) intKey(row int) int64 { return e.cols[0].Ints[row] }

// encode appends the composite key bytes for row to dst. Floats are encoded
// by their exact bit pattern (math.Float64bits): equal float64 values — and
// only equal values — produce equal key bytes, so keys differing below any
// fixed scale never collide and large magnitudes never overflow.
//
// pclint:allowalloc amortized growth of the caller-owned key scratch.
func (e *joinKeyEncoder) encode(dst []byte, row int) []byte {
	var buf [8]byte
	for _, c := range e.cols {
		switch c.Type {
		case storage.Float64:
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(c.Floats[row]))
			dst = append(dst, buf[:]...)
		case storage.String:
			s := c.Dict.Value(c.Ints[row])
			binary.LittleEndian.PutUint32(buf[:4], uint32(len(s)))
			dst = append(dst, buf[:4]...)
			dst = append(dst, s...)
		default:
			binary.LittleEndian.PutUint64(buf[:], uint64(c.Ints[row]))
			dst = append(dst, buf[:]...)
		}
	}
	return dst
}

// joinTable is the build side of the hash join: a chained hash table,
// optionally split into hash partitions for the parallel build. Each
// partition maps a key to a chain id; heads/tails index the chain and next
// links build rows in ascending row order, so probing enumerates duplicate
// build keys exactly as the serial insertion order would. Compared to the
// old map[key][]int32, chains cost one pre-sized map plus three flat arrays
// instead of one slice allocation per distinct key.
type joinTable struct {
	single bool
	pmask  uint64 // partition selector over the key hash; 0 = one partition
	parts  []joinPart
	next   []int32 // build row -> next build row with the same key, -1 ends
}

// joinPart is one hash partition of the build table. In the parallel build
// every build row belongs to exactly one partition, so partition workers
// write disjoint chains (and disjoint next entries) without locks.
type joinPart struct {
	intIdx map[int64]int32
	strIdx map[string]int32
	heads  []int32
	tails  []int32
}

// init pre-sizes the partition's hash map and chain arenas for n build rows
// (cardinality is known exactly once the build input has materialized; the
// serial path gets the same pre-sizing win as the parallel one).
func (p *joinPart) init(single bool, n int) {
	if single {
		p.intIdx = make(map[int64]int32, n)
	} else {
		p.strIdx = make(map[string]int32, n)
	}
	p.heads = make([]int32, 0, n)
	p.tails = make([]int32, 0, n)
}

// insertInt appends row to the chain of integer key k in partition p.
func (jt *joinTable) insertInt(p *joinPart, k int64, row int32) {
	jt.next[row] = -1
	if ci, ok := p.intIdx[k]; ok {
		jt.next[p.tails[ci]] = row
		p.tails[ci] = row
		return
	}
	p.intIdx[k] = int32(len(p.heads))
	p.heads = append(p.heads, row)
	p.tails = append(p.tails, row)
}

// insertBytes appends row to the chain of composite key bytes in partition
// p. The map lookup converts without allocating; only a chain-starting
// insert copies the key into the map.
func (jt *joinTable) insertBytes(p *joinPart, key []byte, row int32) {
	jt.next[row] = -1
	if ci, ok := p.strIdx[string(key)]; ok {
		jt.next[p.tails[ci]] = row
		p.tails[ci] = row
		return
	}
	p.strIdx[string(key)] = int32(len(p.heads))
	p.heads = append(p.heads, row)
	p.tails = append(p.tails, row)
}

// first returns the first build row matching probe row's key, or -1. The
// caller walks the rest of the chain through jt.next. Composite keys are
// encoded into the worker's scratch key buffer.
//
// pclint:noalloc
func (jt *joinTable) first(enc *joinKeyEncoder, row int, scr *morselScratch) int32 {
	if jt.single {
		k := enc.intKey(row)
		p := &jt.parts[0]
		if jt.pmask != 0 {
			p = &jt.parts[mix64(uint64(k))&jt.pmask]
		}
		if ci, ok := p.intIdx[k]; ok {
			return p.heads[ci]
		}
		return -1
	}
	key := enc.encode(scr.key[:0], row)
	scr.key = key
	p := &jt.parts[0]
	if jt.pmask != 0 {
		p = &jt.parts[hashBytes(key)&jt.pmask]
	}
	if ci, ok := p.strIdx[string(key)]; ok { // pclint:allow noalloc: map index with string(b) does not allocate
		return p.heads[ci]
	}
	return -1
}

// buildJoinTable builds the chained hash table over rel's key columns with
// up to workers workers. A single worker inserts rows 0..n-1 directly. The
// parallel build hash-partitions instead: pass 1 computes every row's
// partition morsel-parallel, pass 2 has partition workers insert their rows
// in ascending row order — per-key chain order is identical to the serial
// build, so parallel and Serial joins return bit-identical results.
func buildJoinTable(ec *ExecCtx, rel *Relation, enc *joinKeyEncoder, workers int, pa *parAccounting) (*joinTable, error) {
	n := rel.NumRows()
	jt := &joinTable{single: enc.single(), next: make([]int32, n)}
	nParts := 1
	if workers > 1 && n >= 2*morselSize {
		nParts = partitionsFor(workers)
	}
	jt.parts = make([]joinPart, nParts)
	if nParts == 1 {
		p := &jt.parts[0]
		p.init(jt.single, n)
		scr := acquireMorselScratch()
		defer scr.release()
		for row := 0; row < n; row++ {
			if row&(cancelCheckRows-1) == 0 {
				if err := ec.Cancelled(); err != nil {
					return nil, err
				}
			}
			if jt.single {
				jt.insertInt(p, enc.intKey(row), int32(row))
			} else {
				scr.key = enc.encode(scr.key[:0], row)
				jt.insertBytes(p, scr.key, int32(row))
			}
		}
		return jt, nil
	}
	jt.pmask = uint64(nParts - 1)

	// Pass 1: each row's partition, morsel-parallel.
	partOf := make([]uint8, n)
	cur := &morselCursor{rows: n}
	cpu, extra, err := runWorkers(workers, func(int) error {
		scr := acquireMorselScratch()
		defer scr.release()
		return forEachMorsel(ec, cur, func(_, lo, hi int) error {
			if jt.single {
				for row := lo; row < hi; row++ {
					partOf[row] = uint8(mix64(uint64(enc.intKey(row))) & jt.pmask)
				}
			} else {
				for row := lo; row < hi; row++ {
					scr.key = enc.encode(scr.key[:0], row)
					partOf[row] = uint8(hashBytes(scr.key) & jt.pmask)
				}
			}
			return nil
		})
	})
	pa.cpu += cpu
	pa.extra += extra
	pa.morsels += numMorsels(n)
	if err != nil {
		return nil, err
	}

	// Pass 2: partition workers claim partitions and insert their rows in
	// ascending row order (scanning the byte-sized partition map is cheap
	// next to the hash inserts it feeds).
	var pcur atomic.Int64
	cpu, extra, err = runWorkers(workers, func(int) error {
		scr := acquireMorselScratch()
		defer scr.release()
		for {
			pi := int(pcur.Add(1)) - 1
			if pi >= nParts {
				return nil
			}
			if err := ec.Cancelled(); err != nil {
				return err
			}
			part := &jt.parts[pi]
			part.init(jt.single, n/nParts+1)
			pb := uint8(pi)
			for row := 0; row < n; row++ {
				if row&(cancelCheckRows-1) == 0 {
					if err := ec.Cancelled(); err != nil {
						return err
					}
				}
				if partOf[row] != pb {
					continue
				}
				if jt.single {
					jt.insertInt(part, enc.intKey(row), int32(row))
				} else {
					scr.key = enc.encode(scr.key[:0], row)
					jt.insertBytes(part, scr.key, int32(row))
				}
			}
		}
	})
	pa.cpu += cpu
	pa.extra += extra
	return jt, err
}

// joinMorselOut holds one probe morsel's matches: parallel probe/build row
// lists in probe-row order. build is nil for semi/anti joins; -1 marks an
// unmatched probe row in a left outer join.
type joinMorselOut struct {
	probe []int32
	build []int32
}

// probeMorsel probes one morsel's selected rows against the build table,
// appending match pairs in probe-row order with duplicate build keys in
// build-row order — the same enumeration the serial loop produces, so the
// concatenation of per-morsel outputs is the serial result.
//
// pclint:noalloc
func (j *Join) probeMorsel(jt *joinTable, enc *joinKeyEncoder, sel []int, needBuild bool, out *joinMorselOut, scr *morselScratch) {
	probe := make([]int32, 0, len(sel)) // pclint:allow noalloc: per-morsel output buffer, one make per 4096 rows
	var build []int32
	if needBuild {
		build = make([]int32, 0, len(sel)) // pclint:allow noalloc: per-morsel output buffer, one make per 4096 rows
	}
	switch j.Type {
	case InnerJoin:
		for _, row := range sel {
			for r := jt.first(enc, row, scr); r >= 0; r = jt.next[r] {
				probe = append(probe, int32(row)) // pclint:allow noalloc: amortized growth beyond the pre-sized match buffer
				build = append(build, r)          // pclint:allow noalloc: amortized growth beyond the pre-sized match buffer
			}
		}
	case LeftOuterJoin:
		for _, row := range sel {
			r := jt.first(enc, row, scr)
			if r < 0 {
				probe = append(probe, int32(row)) // pclint:allow noalloc: amortized growth beyond the pre-sized match buffer
				build = append(build, -1)         // pclint:allow noalloc: amortized growth beyond the pre-sized match buffer
				continue
			}
			for ; r >= 0; r = jt.next[r] {
				probe = append(probe, int32(row)) // pclint:allow noalloc: amortized growth beyond the pre-sized match buffer
				build = append(build, r)          // pclint:allow noalloc: amortized growth beyond the pre-sized match buffer
			}
		}
	case SemiJoin:
		for _, row := range sel {
			if jt.first(enc, row, scr) >= 0 {
				probe = append(probe, int32(row)) // pclint:allow noalloc: amortized growth beyond the pre-sized match buffer
			}
		}
	case AntiJoin:
		for _, row := range sel {
			if jt.first(enc, row, scr) < 0 {
				probe = append(probe, int32(row)) // pclint:allow noalloc: amortized growth beyond the pre-sized match buffer
			}
		}
	}
	out.probe, out.build = probe, build
}

// joinOutSpec describes one output column of the join assembly.
type joinOutSpec struct {
	src       *RelCol
	fromBuild bool
	matched   bool // the synthesized __matched marker of a left outer join
}

// copyJoinOut gathers one morsel's slice of one output column into its
// pre-allocated region of the result — morsel regions are disjoint, so
// assembly workers write without coordination.
//
// pclint:noalloc
func copyJoinOut(dst *RelCol, spec *joinOutSpec, out *joinMorselOut, base int) {
	if spec.matched {
		d := dst.Ints[base : base+len(out.probe)]
		for i, r := range out.build {
			if r >= 0 {
				d[i] = 1
			} else {
				d[i] = 0
			}
		}
		return
	}
	rows := out.probe
	if spec.fromBuild {
		rows = out.build
	}
	if spec.src.Type == storage.Float64 {
		d := dst.Floats[base : base+len(rows)]
		src := spec.src.Floats
		for i, r := range rows {
			if r >= 0 {
				d[i] = src[r]
			} else {
				d[i] = 0
			}
		}
		return
	}
	d := dst.Ints[base : base+len(rows)]
	src := spec.src.Ints
	for i, r := range rows {
		if r >= 0 {
			d[i] = src[r]
		} else {
			d[i] = 0
		}
	}
}

// Execute runs the hash join: build on Right, probe with Left. When
// enabled, a Bloom filter of the build keys is pushed into a probe-side
// base-table scan before it runs, so the scan can cache the semi-join
// result (§4.4, Figure 12). Build, probe and output assembly are
// morsel-parallel under ExecCtx.Parallel/MaxWorkers; Filter nodes directly
// under the probe side stream as per-morsel selection vectors instead of
// materializing an intermediate relation.
func (j *Join) Execute(ec *ExecCtx) (rel *Relation, err error) {
	sp := beginNodeSpan(ec, j)
	defer func() { endNodeSpan(sp, rel, err) }()
	if err = ec.Cancelled(); err != nil {
		return nil, err
	}
	buildRel, err := j.Right.Execute(ec)
	if err != nil {
		return nil, err
	}
	if len(j.LeftKeys) != len(j.RightKeys) || len(j.LeftKeys) == 0 {
		return nil, fmt.Errorf("engine: join needs matching key lists")
	}
	buildEnc, err := newJoinKeyEncoder(buildRel, j.RightKeys)
	if err != nil {
		return nil, err
	}

	var pa parAccounting
	pa.workers = ec.workers(buildRel.NumRows())
	jt, err := buildJoinTable(ec, buildRel, buildEnc, pa.workers, &pa)
	if err != nil {
		return nil, err
	}

	// Semi-join filter pushdown into the base probe-side scan. The probe key
	// column originates from a base table even through a chain of inner
	// joins, so the Bloom filter can sink all the way down (star schemas
	// push one filter per dimension onto the fact scan).
	probeScan := baseProbeScan(j.Left)
	pushSJ := j.PushSemiJoin && !ec.DisableSemiJoin && probeScan != nil &&
		len(j.LeftKeys) == 1 && (j.Type == InnerJoin || j.Type == SemiJoin)
	if pushSJ {
		// The key must be a base column of the probe scan's table.
		if tbl, ok := ec.Catalog.Table(probeScan.Table); !ok ||
			tbl.ColumnIndex(probeKeyName(probeScan, j.LeftKeys[0])) < 0 {
			pushSJ = false
		}
	}
	if pushSJ {
		keyCol := buildRel.ColByName(j.RightKeys[0])
		sj := &semiJoinFilter{keyCol: probeKeyName(probeScan, j.LeftKeys[0])}
		sj.filter = bloom.New(buildRel.NumRows(), 0.01)
		if keyCol.Type == storage.String {
			sj.stringKeys = true
			for row := 0; row < buildRel.NumRows(); row++ {
				sj.filter.Add(hashString(keyCol.Dict.Value(keyCol.Ints[row])))
			}
		} else if keyCol.Type == storage.Float64 {
			pushSJ = false // float join keys: no bloom
		} else {
			for row := 0; row < buildRel.NumRows(); row++ {
				sj.filter.AddInt(keyCol.Ints[row])
			}
		}
		if pushSJ {
			if desc, deps, ok := j.Right.CacheDescriptor(ec); ok {
				sj.cacheable = true
				sj.sjKey = core.SemiJoinKey{
					JoinPred: "(= " + j.LeftKeys[0] + " " + j.RightKeys[0] + ")",
					BuildKey: desc,
				}
				sj.deps = deps
			}
			probeScan.runtimeSJ = append(probeScan.runtimeSJ, sj)
			defer func() { probeScan.runtimeSJ = probeScan.runtimeSJ[:len(probeScan.runtimeSJ)-1] }()
		}
	}

	// Streaming path: Filter nodes directly under the probe side evaluate
	// per morsel over the shared column vectors instead of materializing.
	probeNode, fusedPreds := fusedFilterInput(j.Left)
	probeRel, err := probeNode.Execute(ec)
	if err != nil {
		return nil, err
	}
	probeEnc, err := newJoinKeyEncoder(probeRel, j.LeftKeys)
	if err != nil {
		return nil, err
	}
	if buildEnc.single() != probeEnc.single() {
		// Mixed representations: fall back to byte keys on both sides.
		return nil, fmt.Errorf("engine: join key type mismatch between %v and %v", j.LeftKeys, j.RightKeys)
	}
	bounds, err := bindFused(fusedPreds, probeRel)
	if err != nil {
		return nil, err
	}
	var probeCtx *expr.BlockCtx
	if len(bounds) > 0 {
		probeCtx = probeRel.blockCtx()
		if sp.Active() {
			sp.SetInt("filters.fused", int64(len(bounds)))
		}
	}

	// Probe over morsels pulled from a shared cursor.
	pn := probeRel.NumRows()
	if w := ec.workers(pn); w > pa.workers {
		pa.workers = w
	}
	probeWorkers := ec.workers(pn)
	nm := numMorsels(pn)
	needBuild := j.Type == InnerJoin || j.Type == LeftOuterJoin
	outs := make([]joinMorselOut, nm)
	cur := &morselCursor{rows: pn}
	cpu, extra, err := runWorkers(probeWorkers, func(int) error {
		scr := acquireMorselScratch()
		defer scr.release()
		return forEachMorsel(ec, cur, func(m, lo, hi int) error {
			sel := morselSel(scr, probeCtx, bounds, lo, hi)
			if len(sel) == 0 {
				return nil
			}
			j.probeMorsel(jt, probeEnc, sel, needBuild, &outs[m], scr)
			return nil
		})
	})
	pa.cpu += cpu
	pa.extra += extra
	pa.morsels += nm
	if err != nil {
		return nil, err
	}

	// Assemble the output: probe columns, then (for inner/left) build
	// columns not shadowing probe names, plus a __matched marker for left
	// outer joins (this engine has no NULLs; sum(__matched) recovers SQL's
	// count(build_col) semantics). Morsel match counts prefix-sum into
	// disjoint output regions, so gathering is parallel and exact-sized.
	offs := make([]int, nm+1)
	for m := 0; m < nm; m++ {
		offs[m+1] = offs[m] + len(outs[m].probe)
	}
	total := offs[nm]

	var specs []joinOutSpec
	cols := make([]RelCol, 0, probeRel.NumCols()+buildRel.NumCols()+1)
	addCol := func(spec joinOutSpec, name string, typ storage.ColumnType, dict *storage.Dict) {
		c := RelCol{Name: name, Type: typ, Dict: dict}
		if typ == storage.Float64 {
			c.Floats = make([]float64, total)
		} else {
			c.Ints = make([]int64, total)
		}
		specs = append(specs, spec)
		cols = append(cols, c)
	}
	for i := 0; i < probeRel.NumCols(); i++ {
		src := probeRel.Col(i)
		addCol(joinOutSpec{src: src}, src.Name, src.Type, src.Dict)
	}
	if needBuild {
		for i := 0; i < buildRel.NumCols(); i++ {
			src := buildRel.Col(i)
			if probeRel.ColByName(src.Name) != nil {
				continue // shadowed (typically the join key re-appearing)
			}
			addCol(joinOutSpec{src: src, fromBuild: true}, src.Name, src.Type, src.Dict)
		}
	}
	if j.Type == LeftOuterJoin {
		addCol(joinOutSpec{matched: true}, "__matched", storage.Int64, nil)
	}

	acur := &morselCursor{rows: pn}
	cpu, extra, err = runWorkers(probeWorkers, func(int) error {
		return forEachMorsel(ec, acur, func(m, _, _ int) error {
			out := &outs[m]
			if len(out.probe) == 0 {
				return nil
			}
			for i := range specs {
				copyJoinOut(&cols[i], &specs[i], out, offs[m])
			}
			return nil
		})
	})
	pa.cpu += cpu
	pa.extra += extra
	pa.morsels += nm
	if err != nil {
		return nil, err
	}
	pa.finish(ec, sp)
	return NewRelation(cols)
}

// baseProbeScan descends to the base-table scan feeding the probe side,
// crossing only row-preserving or row-filtering operators (inner/semi joins
// keep fact-row key values intact; filters only remove rows), so a Bloom
// filter on a base column remains a sound necessary condition.
func baseProbeScan(n Node) *Scan {
	switch t := n.(type) {
	case *Scan:
		return t
	case *Join:
		if t.Type == InnerJoin || t.Type == SemiJoin {
			return baseProbeScan(t.Left)
		}
	case *Filter:
		return baseProbeScan(t.Input)
	}
	return nil
}

// probeKeyName maps a join key name back to the base-table column name when
// the probe scan uses an alias.
func probeKeyName(s *Scan, key string) string {
	if s.Alias != "" {
		prefix := s.Alias + "."
		if len(key) > len(prefix) && key[:len(prefix)] == prefix {
			return key[len(prefix):]
		}
	}
	return key
}
