package engine

import (
	"sort"
	"strings"

	"github.com/predcache/predcache/internal/expr"
	"github.com/predcache/predcache/internal/obs"
)

// Classify buckets a plan into one of the SLO latency classes: "agg" when
// any aggregation runs, "point" when every base-table scan filters on pure
// equality (the cache-friendly repeated lookups of §2), "range" otherwise.
// DML statements never reach here — the DB facade classifies them directly.
func Classify(node Node) string {
	hasAgg, allPoint, sawScan := false, true, false
	walkNodes(node, func(n Node) {
		switch t := n.(type) {
		case *Agg:
			hasAgg = true
		case *Scan:
			sawScan = true
			if !pointPred(t.Filter) {
				allPoint = false
			}
		case *VirtualScan:
			sawScan = true
			if !pointPred(t.Filter) {
				allPoint = false
			}
		case *Join:
			allPoint = false
		}
	})
	switch {
	case hasAgg:
		return obs.ClassAgg
	case sawScan && allPoint:
		return obs.ClassPoint
	default:
		return obs.ClassRange
	}
}

// Shape derives the sampling-quota key for trace retention: the query class
// plus the sorted base tables it touches. Two queries with the same shape
// compete for the same head-sample slots, so a bursty repeated query cannot
// crowd every other table's traces out of the store.
func Shape(node Node) string {
	var tables []string
	walkNodes(node, func(n Node) {
		switch t := n.(type) {
		case *Scan:
			tables = append(tables, t.Table)
		case *VirtualScan:
			tables = append(tables, t.Source.Name())
		}
	})
	sort.Strings(tables)
	uniq := tables[:0]
	for i, t := range tables {
		if i == 0 || tables[i-1] != t {
			uniq = append(uniq, t)
		}
	}
	return Classify(node) + ":" + strings.Join(uniq, ",")
}

// pointPred reports whether p is a pure equality predicate (conjunctions of
// equality comparisons included).
func pointPred(p expr.Pred) bool {
	switch t := p.(type) {
	case nil:
		return false
	case *expr.CmpPred:
		return t.Op == expr.Eq
	case *expr.AndPred:
		for _, c := range t.Children {
			if !pointPred(c) {
				return false
			}
		}
		return len(t.Children) > 0
	default:
		return false
	}
}

// walkNodes visits every node of the plan tree in preorder.
func walkNodes(n Node, visit func(Node)) {
	if n == nil {
		return
	}
	visit(n)
	switch t := n.(type) {
	case *Scan, *VirtualScan, *Materialized:
		// leaves
	case *Join:
		walkNodes(t.Left, visit)
		walkNodes(t.Right, visit)
	case *Agg:
		walkNodes(t.Input, visit)
	case *Project:
		walkNodes(t.Input, visit)
	case *Filter:
		walkNodes(t.Input, visit)
	case *Sort:
		walkNodes(t.Input, visit)
	case *Limit:
		walkNodes(t.Input, visit)
	case *Union:
		for _, in := range t.Inputs {
			walkNodes(in, visit)
		}
	}
}
