package engine

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"github.com/predcache/predcache/internal/expr"
	"github.com/predcache/predcache/internal/storage"
)

// aggState accumulates one aggregate for one group.
type aggState struct {
	count    int64
	sum      float64
	min, max float64
	minI     int64
	maxI     int64
	distinct map[int64]struct{}
	seen     bool
}

// boundAgg is one aggregate bound against the input relation. The bound
// scalar tree is shared read-only across workers; each worker evaluates it
// into its own scratch chunk.
type boundAgg struct {
	spec     AggSpec
	bs       expr.BoundScalar // nil when no evaluation is needed (count)
	evalInt  bool             // accumulate from the int chunk
	bitsFrom bool             // count_distinct over floats: exact bit identity
	intArg   bool             // min/max preserve integer typing
	outTyp   storage.ColumnType
	dict     *storage.Dict
}

// bindAggs binds the aggregate specs against the input relation.
func bindAggs(specs []AggSpec, in *Relation) ([]*boundAgg, error) {
	baggs := make([]*boundAgg, len(specs))
	for i, spec := range specs {
		ba := &boundAgg{spec: spec, outTyp: storage.Float64}
		switch spec.Func {
		case AggCount:
			// count ignores its argument's values (this engine has no NULLs),
			// so it never evaluates one.
			ba.outTyp = storage.Int64
		case AggCountDistinct:
			bs, err := expr.BindScalar(spec.Arg, in)
			if err != nil {
				return nil, err
			}
			ba.bs, ba.outTyp, ba.evalInt = bs, storage.Int64, true
			ba.bitsFrom = !bs.Out().IsInt()
		case AggMin, AggMax:
			bs, err := expr.BindScalar(spec.Arg, in)
			if err != nil {
				return nil, err
			}
			ba.bs = bs
			if bs.Out().IsInt() {
				ba.intArg, ba.evalInt = true, true
				ba.outTyp = bs.Out()
				if cr, ok := spec.Arg.(*expr.ColRef); ok {
					if c := in.ColByName(cr.Name); c != nil {
						ba.dict = c.Dict
					}
				}
			}
		default: // sum, avg
			bs, err := expr.BindScalar(spec.Arg, in)
			if err != nil {
				return nil, err
			}
			ba.bs = bs
		}
		baggs[i] = ba
	}
	return baggs, nil
}

// evalChunk evaluates ba's argument for the selected rows into the worker's
// scratch vectors. Exactly one of the returned chunks is meaningful
// (position-indexed alongside sel); both are nil when ba needs no values.
func evalChunk(ba *boundAgg, ctx *expr.BlockCtx, sel []int, scr *morselScratch) ([]int64, []float64) {
	if ba.bs == nil {
		return nil, nil
	}
	iv, fv := scr.vecs(len(sel))
	switch {
	case ba.evalInt && !ba.bitsFrom:
		ba.bs.EvalI(ctx, sel, iv)
		return iv, nil
	case ba.evalInt:
		ba.bs.EvalF(ctx, sel, fv)
		for i, v := range fv {
			iv[i] = int64(math.Float64bits(v))
		}
		return iv, nil
	default:
		ba.bs.EvalF(ctx, sel, fv)
		return nil, fv
	}
}

// accumulate folds one evaluated chunk into the group states. gidx[i] is
// the group index of sel position i; states is group-major with nA states
// per group, ai selecting this aggregate's slot. The function switch stays
// outside the row loop.
//
// pclint:noalloc
func accumulate(fn AggFunc, intArg bool, states []aggState, nA, ai int, gidx []int32, iv []int64, fv []float64) {
	switch fn {
	case AggCount:
		for _, g := range gidx {
			states[int(g)*nA+ai].count++
		}
	case AggCountDistinct:
		for i, g := range gidx {
			st := &states[int(g)*nA+ai]
			if st.distinct == nil {
				st.distinct = make(map[int64]struct{}) // pclint:allow noalloc: one distinct set per group, amortized over its rows
			}
			st.distinct[iv[i]] = struct{}{} // pclint:allow noalloc: the distinct set is the aggregate's state
		}
	case AggSum, AggAvg:
		for i, g := range gidx {
			st := &states[int(g)*nA+ai]
			st.sum += fv[i]
			st.count++
		}
	case AggMin:
		if intArg {
			for i, g := range gidx {
				st := &states[int(g)*nA+ai]
				if !st.seen || iv[i] < st.minI {
					st.minI = iv[i]
				}
				st.seen = true
			}
			return
		}
		for i, g := range gidx {
			st := &states[int(g)*nA+ai]
			if !st.seen || fv[i] < st.min {
				st.min = fv[i]
			}
			st.seen = true
		}
	case AggMax:
		if intArg {
			for i, g := range gidx {
				st := &states[int(g)*nA+ai]
				if !st.seen || iv[i] > st.maxI {
					st.maxI = iv[i]
				}
				st.seen = true
			}
			return
		}
		for i, g := range gidx {
			st := &states[int(g)*nA+ai]
			if !st.seen || fv[i] > st.max {
				st.max = fv[i]
			}
			st.seen = true
		}
	}
}

// mergeState folds src into dst for one aggregate. Callers merge in morsel
// index order, so float sums associate identically for every worker count.
func mergeState(dst, src *aggState, fn AggFunc, intArg bool) {
	switch fn {
	case AggCount:
		dst.count += src.count
	case AggCountDistinct:
		if dst.distinct == nil {
			dst.distinct = src.distinct
			return
		}
		for k := range src.distinct {
			dst.distinct[k] = struct{}{}
		}
	case AggSum, AggAvg:
		dst.sum += src.sum
		dst.count += src.count
	case AggMin:
		if !src.seen {
			return
		}
		if intArg {
			if !dst.seen || src.minI < dst.minI {
				dst.minI = src.minI
			}
		} else if !dst.seen || src.min < dst.min {
			dst.min = src.min
		}
		dst.seen = true
	case AggMax:
		if !src.seen {
			return
		}
		if intArg {
			if !dst.seen || src.maxI > dst.maxI {
				dst.maxI = src.maxI
			}
		} else if !dst.seen || src.max > dst.max {
			dst.max = src.max
		}
		dst.seen = true
	}
}

// aggTable accumulates group states for one hash partition (the whole input
// when running single-partition). Groups get dense indexes in first-sight
// order; states is group-major with nA slots per group.
type aggTable struct {
	nA        int
	singleInt bool // one non-float group column: dict codes / ints key directly
	gcols     []*RelCol
	enc       *joinKeyEncoder
	intIdx    map[int64]int32
	strIdx    map[string]int32
	firstRow  []int32
	states    []aggState
}

func newAggTable(gcols []*RelCol, nA int) *aggTable {
	t := &aggTable{nA: nA, gcols: gcols}
	t.singleInt = len(gcols) == 1 && gcols[0].Type != storage.Float64
	if t.singleInt {
		t.intIdx = map[int64]int32{}
	} else {
		t.strIdx = map[string]int32{}
		t.enc = &joinKeyEncoder{cols: gcols}
	}
	return t
}

// groupOf returns the dense group index of row, creating the group on first
// sight. Composite keys encode into the worker's scratch key buffer; the
// map lookup converts without allocating.
//
// pclint:allowalloc per-group state creation (map insert, state append),
// amortized over every row of the group.
func (t *aggTable) groupOf(row int, scr *morselScratch) int32 {
	if t.singleInt {
		k := t.gcols[0].Ints[row]
		if gi, ok := t.intIdx[k]; ok {
			return gi
		}
		gi := t.addGroup(row)
		t.intIdx[k] = gi
		return gi
	}
	scr.key = t.enc.encode(scr.key[:0], row)
	if gi, ok := t.strIdx[string(scr.key)]; ok {
		return gi
	}
	gi := t.addGroup(row)
	t.strIdx[string(scr.key)] = gi
	return gi
}

func (t *aggTable) addGroup(row int) int32 {
	gi := int32(len(t.firstRow))
	t.firstRow = append(t.firstRow, int32(row))
	for i := 0; i < t.nA; i++ {
		t.states = append(t.states, aggState{})
	}
	return gi
}

// processChunk folds one chunk of selected rows into the table: group
// lookup into the scratch group-index vector, then one accumulate pass per
// aggregate over the scratch-evaluated argument chunk.
func processChunk(t *aggTable, baggs []*boundAgg, ctx *expr.BlockCtx, sel []int, scr *morselScratch) {
	gidx := scr.groupIdx(len(sel))
	for i, row := range sel {
		gidx[i] = t.groupOf(row, scr)
	}
	for ai, ba := range baggs {
		iv, fv := evalChunk(ba, ctx, sel, scr)
		accumulate(ba.spec.Func, ba.intArg, t.states, t.nA, ai, gidx, iv, fv)
	}
}

// groupHash spreads row's group key across partitions.
func groupHash(t *aggTable, row int, scr *morselScratch) uint64 {
	if t.singleInt {
		return mix64(uint64(t.gcols[0].Ints[row]))
	}
	scr.key = t.enc.encode(scr.key[:0], row)
	return hashBytes(scr.key)
}

// finalGroup is one output group: its representative row (for the group-by
// column values; -1 for the global aggregate) and its nA states.
type finalGroup struct {
	first  int32
	states []aggState
}

// Execute performs hash aggregation, morsel-parallel under
// ExecCtx.Parallel/MaxWorkers. Filter nodes directly under the input stream
// as per-morsel selection vectors. Grouped aggregation hash-partitions by
// group key and accumulates each partition's rows in global row order;
// global aggregation accumulates per-morsel partial states merged in morsel
// order — both make parallel and Serial plans bit-identical for any worker
// count.
func (a *Agg) Execute(ec *ExecCtx) (rel *Relation, err error) {
	sp := beginNodeSpan(ec, a)
	defer func() { endNodeSpan(sp, rel, err) }()
	if err = ec.Cancelled(); err != nil {
		return nil, err
	}
	inNode, fusedPreds := fusedFilterInput(a.Input)
	in, err := inNode.Execute(ec)
	if err != nil {
		return nil, err
	}
	setRowsIn(sp, in)

	groupCols := make([]*RelCol, len(a.GroupBy))
	for i, g := range a.GroupBy {
		c := in.ColByName(g)
		if c == nil {
			return nil, fmt.Errorf("engine: group-by column %q not found", g)
		}
		groupCols[i] = c
	}
	baggs, err := bindAggs(a.Aggs, in)
	if err != nil {
		return nil, err
	}
	bounds, err := bindFused(fusedPreds, in)
	if err != nil {
		return nil, err
	}
	ctx := in.blockCtx()
	if len(bounds) > 0 && sp.Active() {
		sp.SetInt("filters.fused", int64(len(bounds)))
	}

	n := in.NumRows()
	nA := len(baggs)
	nm := numMorsels(n)
	var pa parAccounting
	pa.workers = ec.workers(n)
	pa.morsels = nm

	var groups []finalGroup
	if len(groupCols) == 0 {
		groups, err = a.runGlobal(ec, baggs, bounds, ctx, n, nm, &pa)
	} else if pa.workers <= 1 {
		groups, err = a.runGroupedSerial(ec, groupCols, baggs, bounds, ctx, n, &pa)
	} else {
		groups, err = a.runGroupedParallel(ec, groupCols, baggs, bounds, ctx, n, nm, &pa)
	}
	if err != nil {
		return nil, err
	}
	pa.finish(ec, sp)

	// Assemble output: group columns first (representative-row values), then
	// aggregates. Groups are ordered by first occurrence, matching the
	// serial single-pass insertion order.
	out := make([]RelCol, 0, len(groupCols)+nA)
	for gi, c := range groupCols {
		dst := RelCol{Name: a.GroupBy[gi], Type: c.Type, Dict: c.Dict}
		if c.Type == storage.Float64 {
			dst.Floats = make([]float64, len(groups))
			for k, g := range groups {
				dst.Floats[k] = c.Floats[g.first]
			}
		} else {
			dst.Ints = make([]int64, len(groups))
			for k, g := range groups {
				dst.Ints[k] = c.Ints[g.first]
			}
		}
		out = append(out, dst)
	}
	for i, ba := range baggs {
		name := ba.spec.Name
		if name == "" {
			name = fmt.Sprintf("%s_%d", ba.spec.Func, i)
		}
		dst := RelCol{Name: name, Type: ba.outTyp, Dict: ba.dict}
		if ba.outTyp == storage.Float64 {
			dst.Floats = make([]float64, len(groups))
			for k, g := range groups {
				st := &g.states[i]
				switch ba.spec.Func {
				case AggSum:
					dst.Floats[k] = st.sum
				case AggAvg:
					if st.count > 0 {
						dst.Floats[k] = st.sum / float64(st.count)
					}
				case AggMin:
					dst.Floats[k] = st.min
				case AggMax:
					dst.Floats[k] = st.max
				}
			}
		} else {
			dst.Ints = make([]int64, len(groups))
			for k, g := range groups {
				st := &g.states[i]
				switch ba.spec.Func {
				case AggCount:
					dst.Ints[k] = st.count
				case AggCountDistinct:
					dst.Ints[k] = int64(len(st.distinct))
				case AggMin:
					dst.Ints[k] = st.minI
				case AggMax:
					dst.Ints[k] = st.maxI
				}
			}
		}
		out = append(out, dst)
	}
	return NewRelation(out)
}

// runGlobal computes the single global aggregate row: per-morsel partial
// states, merged in morsel index order. Every worker count — including one —
// runs the same partial/merge structure, so the result is identical for any
// degree of parallelism.
func (a *Agg) runGlobal(ec *ExecCtx, baggs []*boundAgg, bounds []expr.Bound, ctx *expr.BlockCtx, n, nm int, pa *parAccounting) ([]finalGroup, error) {
	nA := len(baggs)
	partials := make([]aggState, nm*nA)
	cur := &morselCursor{rows: n}
	cpu, extra, err := runWorkers(pa.workers, func(int) error {
		scr := acquireMorselScratch()
		defer scr.release()
		return forEachMorsel(ec, cur, func(m, lo, hi int) error {
			sel := morselSel(scr, ctx, bounds, lo, hi)
			if len(sel) == 0 {
				return nil
			}
			gidx := scr.groupIdx(len(sel))
			for i := range gidx {
				gidx[i] = 0
			}
			states := partials[m*nA : (m+1)*nA]
			for ai, ba := range baggs {
				iv, fv := evalChunk(ba, ctx, sel, scr)
				accumulate(ba.spec.Func, ba.intArg, states, nA, ai, gidx, iv, fv)
			}
			return nil
		})
	})
	pa.cpu += cpu
	pa.extra += extra
	if err != nil {
		return nil, err
	}
	final := make([]aggState, nA)
	for m := 0; m < nm; m++ {
		for ai, ba := range baggs {
			mergeState(&final[ai], &partials[m*nA+ai], ba.spec.Func, ba.intArg)
		}
	}
	return []finalGroup{{first: -1, states: final}}, nil
}

// runGroupedSerial is the single-worker grouped path: one table, one
// streaming pass in row order.
func (a *Agg) runGroupedSerial(ec *ExecCtx, groupCols []*RelCol, baggs []*boundAgg, bounds []expr.Bound, ctx *expr.BlockCtx, n int, pa *parAccounting) ([]finalGroup, error) {
	t := newAggTable(groupCols, len(baggs))
	cur := &morselCursor{rows: n}
	cpu, extra, err := runWorkers(1, func(int) error {
		scr := acquireMorselScratch()
		defer scr.release()
		return forEachMorsel(ec, cur, func(_, lo, hi int) error {
			sel := morselSel(scr, ctx, bounds, lo, hi)
			if len(sel) > 0 {
				processChunk(t, baggs, ctx, sel, scr)
			}
			return nil
		})
	})
	pa.cpu += cpu
	pa.extra += extra
	if err != nil {
		return nil, err
	}
	return collectGroups([]*aggTable{t}, len(baggs)), nil
}

// runGroupedParallel is the partitioned grouped path. Phase 1 scatters each
// morsel's selected rows by group-hash partition (a per-morsel counting
// sort into the morsel's own segment of rowBuf, preserving row order).
// Phase 2 workers claim partitions and fold each partition's rows iterating
// morsels in ascending order — every group therefore accumulates its rows
// in global row order, exactly like the serial pass.
func (a *Agg) runGroupedParallel(ec *ExecCtx, groupCols []*RelCol, baggs []*boundAgg, bounds []expr.Bound, ctx *expr.BlockCtx, n, nm int, pa *parAccounting) ([]finalGroup, error) {
	nA := len(baggs)
	nP := partitionsFor(pa.workers)
	pmask := uint64(nP - 1)
	hashT := newAggTable(groupCols, 0) // key layout only, for hashing
	rowBuf := make([]int32, n)         // morsel m owns rowBuf[m*morselSize : ...]
	moffs := make([]int32, nm*(nP+1))  // per-morsel partition offsets into its segment

	cur := &morselCursor{rows: n}
	cpu, extra, err := runWorkers(pa.workers, func(int) error {
		scr := acquireMorselScratch()
		defer scr.release()
		return forEachMorsel(ec, cur, func(m, lo, hi int) error {
			sel := morselSel(scr, ctx, bounds, lo, hi)
			pids := scr.partIds(len(sel))
			count, cursor := scr.partCounters(nP)
			for i, row := range sel {
				p := uint8(groupHash(hashT, row, scr) & pmask)
				pids[i] = p
				count[p]++
			}
			offs := moffs[m*(nP+1) : (m+1)*(nP+1)]
			offs[0] = 0
			for p := 0; p < nP; p++ {
				offs[p+1] = offs[p] + count[p]
				cursor[p] = offs[p]
			}
			seg := rowBuf[lo:hi]
			for i, row := range sel {
				p := pids[i]
				seg[cursor[p]] = int32(row)
				cursor[p]++
			}
			return nil
		})
	})
	pa.cpu += cpu
	pa.extra += extra
	if err != nil {
		return nil, err
	}

	tables := make([]*aggTable, nP)
	var pcur atomic.Int64
	cpu, extra, err = runWorkers(pa.workers, func(int) error {
		scr := acquireMorselScratch()
		defer scr.release()
		for {
			p := int(pcur.Add(1)) - 1
			if p >= nP {
				return nil
			}
			t := newAggTable(groupCols, nA)
			tables[p] = t
			for m := 0; m < nm; m++ {
				if m&15 == 0 {
					if err := ec.Cancelled(); err != nil {
						return err
					}
				}
				offs := moffs[m*(nP+1):]
				s, e := offs[p], offs[p+1]
				if s == e {
					continue
				}
				seg := rowBuf[m*morselSize+int(s) : m*morselSize+int(e)]
				sel := scr.selFromInt32(seg)
				processChunk(t, baggs, ctx, sel, scr)
			}
		}
	})
	pa.cpu += cpu
	pa.extra += extra
	if err != nil {
		return nil, err
	}
	return collectGroups(tables, nA), nil
}

// collectGroups flattens partition tables into output groups ordered by
// first occurrence (each group lives in exactly one partition, so no state
// merging is needed — only reordering).
func collectGroups(tables []*aggTable, nA int) []finalGroup {
	total := 0
	for _, t := range tables {
		if t != nil {
			total += len(t.firstRow)
		}
	}
	groups := make([]finalGroup, 0, total)
	for _, t := range tables {
		if t == nil {
			continue
		}
		for g := range t.firstRow {
			groups = append(groups, finalGroup{first: t.firstRow[g], states: t.states[g*nA : (g+1)*nA]})
		}
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].first < groups[j].first })
	return groups
}
