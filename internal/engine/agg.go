package engine

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/predcache/predcache/internal/expr"
	"github.com/predcache/predcache/internal/storage"
)

// aggState accumulates one aggregate for one group.
type aggState struct {
	count    int64
	sum      float64
	min, max float64
	minI     int64
	maxI     int64
	distinct map[int64]struct{}
	seen     bool
}

// Execute performs hash aggregation.
func (a *Agg) Execute(ec *ExecCtx) (rel *Relation, err error) {
	sp := beginNodeSpan(ec, a)
	defer func() { endNodeSpan(sp, rel, err) }()
	if err = ec.Cancelled(); err != nil {
		return nil, err
	}
	in, err := a.Input.Execute(ec)
	if err != nil {
		return nil, err
	}
	setRowsIn(sp, in)

	// Bind group-by columns.
	groupCols := make([]*RelCol, len(a.GroupBy))
	for i, g := range a.GroupBy {
		c := in.ColByName(g)
		if c == nil {
			return nil, fmt.Errorf("engine: group-by column %q not found", g)
		}
		groupCols[i] = c
	}

	// Bind and evaluate aggregate inputs over the whole relation.
	ctx := in.blockCtx()
	sel := make([]int, in.NumRows())
	for i := range sel {
		sel[i] = i
	}
	type boundAgg struct {
		spec   AggSpec
		vals   []float64 // evaluated input (nil for count(*))
		intArg bool      // min/max preserve integer typing
		ivals  []int64
		outTyp storage.ColumnType
		dict   *storage.Dict
	}
	baggs := make([]*boundAgg, len(a.Aggs))
	for i, spec := range a.Aggs {
		ba := &boundAgg{spec: spec, outTyp: storage.Float64}
		if spec.Func == AggCount && spec.Arg == nil {
			ba.outTyp = storage.Int64
		} else {
			bs, err := expr.BindScalar(spec.Arg, in)
			if err != nil {
				return nil, err
			}
			switch spec.Func {
			case AggCount, AggCountDistinct:
				ba.outTyp = storage.Int64
				ba.ivals = make([]int64, in.NumRows())
				if bs.Out().IsInt() {
					bs.EvalI(ctx, sel, ba.ivals)
				} else {
					fv := make([]float64, in.NumRows())
					bs.EvalF(ctx, sel, fv)
					for k, v := range fv {
						ba.ivals[k] = int64(math.Float64bits(v))
					}
				}
			case AggMin, AggMax:
				if bs.Out().IsInt() {
					ba.intArg = true
					ba.outTyp = bs.Out()
					if cr, ok := spec.Arg.(*expr.ColRef); ok {
						if c := in.ColByName(cr.Name); c != nil {
							ba.dict = c.Dict
						}
					}
					ba.ivals = make([]int64, in.NumRows())
					bs.EvalI(ctx, sel, ba.ivals)
				} else {
					ba.vals = make([]float64, in.NumRows())
					bs.EvalF(ctx, sel, ba.vals)
				}
			default: // sum, avg
				ba.vals = make([]float64, in.NumRows())
				bs.EvalF(ctx, sel, ba.vals)
			}
		}
		baggs[i] = ba
	}

	// Group rows.
	type group struct {
		firstRow int
		states   []aggState
	}
	newGroup := func(row int) *group {
		return &group{firstRow: row, states: make([]aggState, len(baggs))}
	}

	var groups []*group
	singleInt := len(groupCols) == 1 && groupCols[0].Type != storage.Float64
	intGroups := map[int64]*group{}
	byteGroups := map[string]*group{}
	var scratch []byte
	if len(groupCols) == 0 {
		groups = append(groups, newGroup(-1))
	}
	groupOf := func(row int) *group {
		if len(groupCols) == 0 {
			return groups[0]
		}
		if singleInt {
			k := groupCols[0].Ints[row]
			g, ok := intGroups[k]
			if !ok {
				g = newGroup(row)
				intGroups[k] = g
				groups = append(groups, g)
			}
			return g
		}
		scratch = scratch[:0]
		var buf [8]byte
		for _, c := range groupCols {
			switch c.Type {
			case storage.Float64:
				binary.LittleEndian.PutUint64(buf[:], math.Float64bits(c.Floats[row]))
				scratch = append(scratch, buf[:]...)
			case storage.String:
				s := c.Dict.Value(c.Ints[row])
				binary.LittleEndian.PutUint32(buf[:4], uint32(len(s)))
				scratch = append(scratch, buf[:4]...)
				scratch = append(scratch, s...)
			default:
				binary.LittleEndian.PutUint64(buf[:], uint64(c.Ints[row]))
				scratch = append(scratch, buf[:]...)
			}
		}
		g, ok := byteGroups[string(scratch)]
		if !ok {
			g = newGroup(row)
			byteGroups[string(scratch)] = g
			groups = append(groups, g)
		}
		return g
	}

	for row := 0; row < in.NumRows(); row++ {
		if row&(cancelCheckRows-1) == 0 {
			if err := ec.Cancelled(); err != nil {
				return nil, err
			}
		}
		g := groupOf(row)
		for i, ba := range baggs {
			st := &g.states[i]
			switch ba.spec.Func {
			case AggCount:
				st.count++
			case AggCountDistinct:
				if st.distinct == nil {
					st.distinct = make(map[int64]struct{})
				}
				st.distinct[ba.ivals[row]] = struct{}{}
			case AggSum, AggAvg:
				st.sum += ba.vals[row]
				st.count++
			case AggMin:
				if ba.intArg {
					if !st.seen || ba.ivals[row] < st.minI {
						st.minI = ba.ivals[row]
					}
				} else if !st.seen || ba.vals[row] < st.min {
					st.min = ba.vals[row]
				}
				st.seen = true
			case AggMax:
				if ba.intArg {
					if !st.seen || ba.ivals[row] > st.maxI {
						st.maxI = ba.ivals[row]
					}
				} else if !st.seen || ba.vals[row] > st.max {
					st.max = ba.vals[row]
				}
				st.seen = true
			}
		}
	}

	// Assemble output: group columns first, then aggregates.
	out := make([]RelCol, 0, len(groupCols)+len(baggs))
	for gi, c := range groupCols {
		dst := RelCol{Name: a.GroupBy[gi], Type: c.Type, Dict: c.Dict}
		if c.Type == storage.Float64 {
			dst.Floats = make([]float64, len(groups))
			for k, g := range groups {
				dst.Floats[k] = c.Floats[g.firstRow]
			}
		} else {
			dst.Ints = make([]int64, len(groups))
			for k, g := range groups {
				dst.Ints[k] = c.Ints[g.firstRow]
			}
		}
		out = append(out, dst)
	}
	for i, ba := range baggs {
		name := ba.spec.Name
		if name == "" {
			name = fmt.Sprintf("%s_%d", ba.spec.Func, i)
		}
		dst := RelCol{Name: name, Type: ba.outTyp, Dict: ba.dict}
		if ba.outTyp == storage.Float64 {
			dst.Floats = make([]float64, len(groups))
			for k, g := range groups {
				st := &g.states[i]
				switch ba.spec.Func {
				case AggSum:
					dst.Floats[k] = st.sum
				case AggAvg:
					if st.count > 0 {
						dst.Floats[k] = st.sum / float64(st.count)
					}
				case AggMin:
					dst.Floats[k] = st.min
				case AggMax:
					dst.Floats[k] = st.max
				}
			}
		} else {
			dst.Ints = make([]int64, len(groups))
			for k, g := range groups {
				st := &g.states[i]
				switch ba.spec.Func {
				case AggCount:
					dst.Ints[k] = st.count
				case AggCountDistinct:
					dst.Ints[k] = int64(len(st.distinct))
				case AggMin:
					dst.Ints[k] = st.minI
				case AggMax:
					dst.Ints[k] = st.maxI
				}
			}
		}
		out = append(out, dst)
	}
	return NewRelation(out)
}
