package fleet

import (
	"fmt"
	"hash/fnv"

	predcache "github.com/predcache/predcache"
)

// This file closes the loop between the simulator and the engine: instead of
// analyzing the simulated statement stream directly (fleet.go), it replays
// the stream through a real database and regenerates the §2-style figures —
// repetition rate, scan selectivity, predicate-cache hit evolution — purely
// from SQL over the pc.query_log system table. The simulator's string
// predicates map deterministically to range filters over a generated table,
// so repeated scan templates become repeated SQL texts and the predicate
// cache sees the repetition the paper measures.

// ReplayConfig sizes a replay run.
type ReplayConfig struct {
	// Rows is the initial size of the backing table (default 20000).
	Rows int
	// MaxStatements caps how much of the cluster's stream is replayed
	// (default: all of it).
	MaxStatements int
}

// HitPoint is one sample of the cumulative predicate-cache hit rate.
type HitPoint struct {
	Seq     int64   // query-log sequence number of the sample
	HitRate float64 // cumulative scan cache hits / (hits+misses) up to Seq
}

// ReplayResult holds the figures recomputed from pc.query_log after a replay.
type ReplayResult struct {
	Selects int // select statements replayed (and logged)
	Appends int // ingestion statements applied to the table

	// Repetition is the fraction of replayed queries whose SQL text occurs
	// at least twice in the log (the Figure 1/4 metric, recomputed with a
	// GROUP BY over pc.query_log).
	Repetition float64
	// Selectivities holds rows_qualified / rows_scanned per logged query
	// with a non-empty scan (the §2 selectivity distribution).
	Selectivities []float64
	// HitEvolution samples the cumulative cache-hit rate over the stream in
	// log order; the last point's rate is FinalHitRate.
	HitEvolution []HitPoint
	FinalHitRate float64
}

// predRange maps a simulated scan-predicate string to a deterministic range
// filter over the replay table: same string, same SQL — which is exactly the
// repetition structure the cache keys on.
func predRange(pred string, rows int) (lo, hi int) {
	h := fnv.New64a()
	h.Write([]byte(pred))
	v := h.Sum64()
	lo = int(v % uint64(rows))
	// Width between ~0.5% and ~5.5% of the table.
	width := rows/200 + int((v>>32)%uint64(rows/20+1))
	return lo, lo + width
}

// selectSQL renders one simulated select as SQL over the replay table.
func selectSQL(st *Statement, rows int) string {
	cond := ""
	for i, sc := range st.Scans {
		lo, hi := predRange(sc.Pred, rows)
		if i > 0 {
			cond += " or "
		}
		cond += fmt.Sprintf("v between %d and %d", lo, hi)
	}
	if cond == "" {
		cond = "v >= 0"
	}
	return "select count(*) from f where " + cond
}

// intAt reads an integer cell, tolerating aggregate columns widened to float.
func intAt(res *predcache.Result, row int, col string) int64 {
	c := res.ColByName(col)
	if len(c.Ints) > row {
		return c.Ints[row]
	}
	return int64(c.Floats[row])
}

// ReplayCluster replays one simulated cluster's statement stream through a
// real database and recomputes the workload figures from pc.query_log.
func ReplayCluster(cl *Cluster, cfg ReplayConfig) (*ReplayResult, error) {
	rows := cfg.Rows
	if rows <= 0 {
		rows = 20000
	}
	limit := cfg.MaxStatements
	if limit <= 0 || limit > len(cl.Statements) {
		limit = len(cl.Statements)
	}
	db := predcache.Open(
		predcache.WithSlices(2),
		// The log must retain the whole replay plus the analysis queries.
		predcache.WithQueryLogCapacity(limit+16),
	)
	schema := predcache.Schema{{Name: "v", Type: predcache.Int64}}
	if err := db.CreateTable("f", schema); err != nil {
		return nil, err
	}
	appendRows := func(start, n int) error {
		b := predcache.NewBatch(schema)
		for i := 0; i < n; i++ {
			b.Cols[0].Ints = append(b.Cols[0].Ints, int64((start+i)%rows))
		}
		b.N = n
		return db.Insert("f", b)
	}
	if err := appendRows(0, rows); err != nil {
		return nil, err
	}

	res := &ReplayResult{}
	next := rows
	for _, st := range cl.Statements[:limit] {
		switch st.Kind {
		case StSelect:
			if _, err := db.Query(selectSQL(&st, rows)); err != nil {
				return nil, fmt.Errorf("fleet: replay %q: %w", selectSQL(&st, rows), err)
			}
			res.Selects++
		case StInsert, StCopy:
			// Ingestion extends the table; cache entries stay valid below
			// their watermark and extend on the next scan (§4.3.1).
			if err := appendRows(next, 64); err != nil {
				return nil, err
			}
			next += 64
			res.Appends++
		default:
			// Deletes/updates/other are no-ops in the replay: the simulator
			// carries no row identity to apply them to.
		}
	}

	// Everything below is recomputed from the system table: the replayed
	// queries occupy seq < res.Selects, and the analysis queries themselves
	// land in the log after that bound.
	bound := fmt.Sprintf("seq < %d", res.Selects)

	rep, err := db.Query("select query_text, count(*) as n from pc.query_log where " + bound + " group by query_text")
	if err != nil {
		return nil, err
	}
	total, repeated := int64(0), int64(0)
	for i := 0; i < rep.NumRows(); i++ {
		n := intAt(rep, i, "n")
		total += n
		if n >= 2 {
			repeated += n
		}
	}
	if total > 0 {
		res.Repetition = float64(repeated) / float64(total)
	}

	sel, err := db.Query("select rows_scanned, rows_qualified from pc.query_log where " + bound + " and rows_scanned > 0")
	if err != nil {
		return nil, err
	}
	for i := 0; i < sel.NumRows(); i++ {
		res.Selectivities = append(res.Selectivities,
			float64(intAt(sel, i, "rows_qualified"))/float64(intAt(sel, i, "rows_scanned")))
	}

	evo, err := db.Query("select seq, cache_hits, cache_misses from pc.query_log where " + bound + " order by seq")
	if err != nil {
		return nil, err
	}
	hits, misses := int64(0), int64(0)
	stride := evo.NumRows()/20 + 1
	for i := 0; i < evo.NumRows(); i++ {
		hits += intAt(evo, i, "cache_hits")
		misses += intAt(evo, i, "cache_misses")
		if lookups := hits + misses; lookups > 0 && (i%stride == stride-1 || i == evo.NumRows()-1) {
			res.HitEvolution = append(res.HitEvolution, HitPoint{
				Seq:     intAt(evo, i, "seq"),
				HitRate: float64(hits) / float64(lookups),
			})
		}
	}
	if n := len(res.HitEvolution); n > 0 {
		res.FinalHitRate = res.HitEvolution[n-1].HitRate
	}
	return res, nil
}
