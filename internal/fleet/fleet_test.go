package fleet

import (
	"math"
	"testing"
)

func sim(t *testing.T) *Fleet {
	t.Helper()
	return Simulate(DefaultConfig())
}

func TestSimulateDeterministic(t *testing.T) {
	a := Simulate(Config{Clusters: 10, MinStatements: 100, MaxStatements: 200, Seed: 1})
	b := Simulate(Config{Clusters: 10, MinStatements: 100, MaxStatements: 200, Seed: 1})
	if len(a.Clusters) != len(b.Clusters) {
		t.Fatal("cluster count differs")
	}
	for i := range a.Clusters {
		if len(a.Clusters[i].Statements) != len(b.Clusters[i].Statements) {
			t.Fatal("statement streams differ")
		}
	}
}

func TestStatementMixMatchesTable2(t *testing.T) {
	f := sim(t)
	agg, selectShares := f.StatementMix()
	// Fleet aggregates should land near the paper's Table 2 within a few
	// points (the per-cluster mixes vary widely by design).
	want := map[string]float64{
		"select": 0.423, "insert": 0.178, "copy": 0.069,
		"delete": 0.063, "update": 0.036, "other": 0.233,
	}
	for k, w := range want {
		if math.Abs(agg[k]-w) > 0.06 {
			t.Errorf("%s share %.3f want ~%.3f", k, agg[k], w)
		}
	}
	if len(selectShares) != len(f.Clusters) {
		t.Fatal("per-cluster shares missing")
	}
	// Figure 2: only a minority of clusters are select-dominated (>50%).
	domFrac := FractionAbove(selectShares, 0.5)
	if domFrac < 0.05 || domFrac > 0.6 {
		t.Errorf("select-dominated fraction %.2f implausible", domFrac)
	}
}

func TestQueryRepetitionCalibration(t *testing.T) {
	f := sim(t)
	rates := f.QueryRepetitionRates(1.0)
	mean := Mean(rates)
	// Paper: queries repeat 71.2% of the time on average.
	if mean < 0.60 || mean > 0.85 {
		t.Fatalf("mean query repetition %.3f outside calibration band", mean)
	}
	// Paper Figure 1: for more than 50% of clusters at least 75% of the
	// queries repeat within a month.
	if frac := FractionAbove(rates, 0.75); frac < 0.4 {
		t.Fatalf("only %.2f of clusters have >=75%% repetition", frac)
	}
	// One week repeats less than one month.
	weekMean := Mean(f.QueryRepetitionRates(0.25))
	if weekMean >= mean {
		t.Fatalf("week repetition %.3f >= month %.3f", weekMean, mean)
	}
}

func TestScanRepetitionTracksQueries(t *testing.T) {
	f := sim(t)
	q := Mean(f.QueryRepetitionRates(1.0))
	s := Mean(f.ScanRepetitionRates())
	// Paper: 71.9% vs 71.2% — nearly identical.
	if math.Abs(q-s) > 0.12 {
		t.Fatalf("query %.3f vs scan %.3f repetition diverge too much", q, s)
	}
}

func TestReadWriteRatios(t *testing.T) {
	f := sim(t)
	ratios := f.ReadWriteRatios()
	// Paper Figure 3: ~60% of clusters run more reads than writes.
	readHeavy := 0
	for _, r := range ratios {
		if r < 1 {
			readHeavy++
		}
	}
	frac := float64(readHeavy) / float64(len(ratios))
	if frac < 0.3 || frac > 0.9 {
		t.Fatalf("read-heavy fraction %.2f implausible", frac)
	}
}

func TestRepetitionByTableSize(t *testing.T) {
	f := sim(t)
	qRates, sRates := f.RepetitionByTableSize()
	if len(qRates) != 4 || len(sRates) != 4 {
		t.Fatal("size classes missing")
	}
	// Paper Figure 5: scan repetition is roughly uniform across sizes.
	for s := SizeClass(0); s < numSizes; s++ {
		if sRates[s] < 0.4 || sRates[s] > 1 {
			t.Errorf("scan repetition for %s = %.3f", s, sRates[s])
		}
	}
}

func TestResultCacheHitRates(t *testing.T) {
	f := sim(t)
	rates := f.ResultCacheHitRates()
	mean := Mean(rates)
	// Paper: ~20% average hit rate across the fleet; only ~15% of clusters
	// answer >50% from the cache.
	if mean < 0.05 || mean > 0.45 {
		t.Fatalf("mean result-cache hit rate %.3f outside band", mean)
	}
	over50 := FractionAbove(rates, 0.5)
	if over50 > 0.45 {
		t.Fatalf("too many clusters over 50%% hit rate: %.2f", over50)
	}
	// Hit rate must always be below the repetition rate (a repeat is
	// necessary but not sufficient for a hit).
	reps := f.QueryRepetitionRates(1.0)
	for i := range rates {
		if rates[i] > reps[i]+1e-9 {
			t.Fatalf("cluster %d: hit rate %.3f exceeds repetition %.3f", i, rates[i], reps[i])
		}
	}
}

func TestHitRateVsUpdateRate(t *testing.T) {
	f := sim(t)
	upd, hit := f.HitRateVsUpdateRate()
	if len(upd) != len(hit) || len(upd) != len(f.Clusters) {
		t.Fatal("lengths")
	}
	// Figure 7: clusters with almost no updates should answer far more from
	// the result cache than heavily-updated clusters.
	var lowUpd, highUpd []float64
	for i := range upd {
		if upd[i] < 0.1 {
			lowUpd = append(lowUpd, hit[i])
		}
		if upd[i] > 0.5 {
			highUpd = append(highUpd, hit[i])
		}
	}
	if len(lowUpd) == 0 || len(highUpd) == 0 {
		t.Skip("not enough clusters in extreme buckets")
	}
	if Mean(lowUpd) <= Mean(highUpd) {
		t.Fatalf("low-update hit rate %.3f <= high-update %.3f", Mean(lowUpd), Mean(highUpd))
	}
}

func TestCDFHelpers(t *testing.T) {
	vals := []float64{0.1, 0.9, 0.5, 0.3, 0.7}
	cdf := CDF(vals, []int{0, 50, 100})
	if cdf[0] != 0.1 || cdf[2] != 0.9 {
		t.Fatalf("cdf %v", cdf)
	}
	if Mean(nil) != 0 || FractionAbove(nil, 0.5) != 0 {
		t.Fatal("empty metrics")
	}
	if FractionAbove(vals, 0.5) != 0.6 {
		t.Fatal("fraction above")
	}
}

func TestSizeClassify(t *testing.T) {
	cases := map[int64]SizeClass{
		1000: SizeSmall, 999999: SizeSmall, 1000000: SizeMedium,
		99999999: SizeMedium, 100000000: SizeLarge, 1000000000: SizeXL,
	}
	for rows, want := range cases {
		if got := classify(rows); got != want {
			t.Errorf("classify(%d)=%v want %v", rows, got, want)
		}
	}
	if SizeSmall.String() == "" || SizeXL.String() == "" {
		t.Fatal("names")
	}
}
