package fleet

import (
	"testing"
)

// replayCluster picks the first simulated cluster with a reasonable number
// of selects so the replay exercises repetition.
func replayCluster(t *testing.T) *Cluster {
	t.Helper()
	f := Simulate(Config{Clusters: 6, MinStatements: 300, MaxStatements: 400, Seed: 7})
	for _, cl := range f.Clusters {
		selects := 0
		for _, st := range cl.Statements {
			if st.Kind == StSelect {
				selects++
			}
		}
		if selects >= 100 && cl.repetitiveness >= 0.5 {
			return cl
		}
	}
	t.Fatal("no suitable cluster in simulation")
	return nil
}

func TestReplayClusterRegeneratesFigures(t *testing.T) {
	cl := replayCluster(t)
	res, err := ReplayCluster(cl, ReplayConfig{Rows: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Selects < 100 {
		t.Fatalf("replayed only %d selects", res.Selects)
	}

	// The repetition rate recomputed through SQL over pc.query_log must
	// equal the direct computation over the SQL texts the replay issued.
	var texts []string
	n := 0
	for _, st := range cl.Statements {
		if st.Kind == StSelect {
			texts = append(texts, selectSQL(&st, 10000))
			n++
			if n == res.Selects {
				break
			}
		}
	}
	if want := repetitionRate(texts); res.Repetition != want {
		t.Fatalf("SQL-derived repetition %.4f != direct %.4f", res.Repetition, want)
	}
	if res.Repetition <= 0 {
		t.Fatal("repetitive cluster showed zero repetition")
	}

	// Selectivities are observed per logged query and must be valid ratios.
	if len(res.Selectivities) == 0 {
		t.Fatal("no selectivities recorded")
	}
	for i, s := range res.Selectivities {
		if s < 0 || s > 1 {
			t.Fatalf("selectivity[%d] = %f out of range", i, s)
		}
	}

	// A repetitive stream must warm the predicate cache: the cumulative hit
	// rate is monotone in lookups served and ends above zero.
	if len(res.HitEvolution) == 0 || res.FinalHitRate <= 0 {
		t.Fatalf("cache never warmed: %+v", res.HitEvolution)
	}
	first, last := res.HitEvolution[0], res.HitEvolution[len(res.HitEvolution)-1]
	if last.HitRate < first.HitRate {
		t.Fatalf("hit rate fell from %.3f to %.3f over the stream", first.HitRate, last.HitRate)
	}
	if last.Seq <= first.Seq {
		t.Fatalf("evolution not in log order: %+v", res.HitEvolution)
	}
}

func TestReplayClusterCapsStatements(t *testing.T) {
	cl := replayCluster(t)
	res, err := ReplayCluster(cl, ReplayConfig{Rows: 5000, MaxStatements: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Selects+res.Appends > 50 {
		t.Fatalf("cap ignored: %d selects + %d appends", res.Selects, res.Appends)
	}
}
