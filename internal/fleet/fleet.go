// Package fleet simulates a fleet of warehouse clusters and reruns the
// paper's workload analysis (§2) on the simulated statement streams.
//
// Substitution note (DESIGN.md §1): the paper analyzes telemetry from a
// representative sample of Redshift clusters (us-east-1, January 2023),
// which is proprietary. This simulator draws per-cluster workload
// characteristics — statement mixes, query-template pools, instance
// repetition, table sizes, update rates — from distributions calibrated so
// that the fleet-level aggregates match the numbers the paper publishes
// (Table 2's statement mix, ~71-72% average query/scan repetition, the
// result-cache hit-rate profile of Figures 6-7). The *analysis* code is
// faithful: repetition rates, scan extraction, and the result-cache replay
// operate on the statement streams exactly as they would on real logs.
package fleet

import (
	"fmt"
	"math/rand"
	"sort"
)

// StatementKind classifies SQL statements the way Table 2 does.
type StatementKind uint8

const (
	StSelect StatementKind = iota
	StInsert
	StCopy
	StDelete
	StUpdate
	StOther
	numKinds
)

func (k StatementKind) String() string {
	switch k {
	case StSelect:
		return "select"
	case StInsert:
		return "insert"
	case StCopy:
		return "copy"
	case StDelete:
		return "delete"
	case StUpdate:
		return "update"
	default:
		return "other"
	}
}

// ScanRef is one base-table scan inside a query: the table plus the textual
// filter expression (the unit the predicate cache keys on).
type ScanRef struct {
	Table int
	Pred  string
}

// Statement is one executed statement.
type Statement struct {
	Kind  StatementKind
	Query string    // canonical text (selects only)
	Table int       // primary table touched (DML)
	Scans []ScanRef // selects only
}

// TableMeta describes one table of a cluster.
type TableMeta struct {
	Rows int64
}

// Cluster is one simulated warehouse.
type Cluster struct {
	Tables     []TableMeta
	Statements []Statement
	// repetitiveness is the reuse probability the cluster was drawn with
	// (exposed for calibration tests).
	repetitiveness float64
	updateShare    float64
}

// Fleet is the simulated sample.
type Fleet struct {
	Clusters []*Cluster
}

// Config controls the simulation.
type Config struct {
	Clusters      int
	MinStatements int
	MaxStatements int
	Seed          int64
}

// DefaultConfig simulates 200 clusters of 1,000-5,000 statements.
func DefaultConfig() Config {
	return Config{Clusters: 200, MinStatements: 1000, MaxStatements: 5000, Seed: 2023}
}

// Simulate draws the fleet.
func Simulate(cfg Config) *Fleet {
	r := rand.New(rand.NewSource(cfg.Seed))
	f := &Fleet{}
	for c := 0; c < cfg.Clusters; c++ {
		f.Clusters = append(f.Clusters, simulateCluster(r, cfg))
	}
	return f
}

// betaish draws from a crude Beta-like distribution with the given mean and
// spread via averaging uniforms and mixing toward extremes.
func betaish(r *rand.Rand, mean float64) float64 {
	v := (r.Float64() + r.Float64() + r.Float64()) / 3 // bell around 0.5
	v = v + (mean - 0.5)
	if r.Float64() < 0.25 { // heavy tails: some clusters are extreme
		v = mean + (r.Float64()-0.5)*1.4
	}
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	return v
}

func simulateCluster(r *rand.Rand, cfg Config) *Cluster {
	cl := &Cluster{}

	// Tables: log-uniform sizes across the paper's four groups.
	nTables := 3 + r.Intn(12)
	for i := 0; i < nTables; i++ {
		// Skewed log-uniform: small tables dominate, billion-row tables are
		// the rare tail (as in real fleets).
		u := r.Float64()
		exp := 3 + 6.5*u*u
		rows := int64(1)
		for e := 0.0; e < exp; e++ {
			rows *= 10
		}
		cl.Tables = append(cl.Tables, TableMeta{Rows: rows})
	}

	// Statement mix: drawn around the Table 2 aggregate shares
	// (42.3/17.8/6.9/6.3/3.6/23.3). Per-cluster shares vary widely —
	// Figure 2's point is the diversity of mixes.
	base := []float64{0.423, 0.178, 0.069, 0.063, 0.036, 0.233}
	mix := make([]float64, numKinds)
	sum := 0.0
	for i := range mix {
		mix[i] = base[i] * (0.2 + 1.8*r.Float64())
		sum += mix[i]
	}
	// A minority of clusters are read-mostly dashboards with almost no
	// ingestion — the population Figure 7's "almost no updates" bucket
	// (>80% result-cache hit rate) comes from. Dashboards are also the most
	// repetitive clusters, so the flag is remembered and boosts reuse below.
	readMostly := r.Float64() < 0.15
	if readMostly {
		for _, k := range []StatementKind{StInsert, StCopy, StDelete, StUpdate} {
			sum -= mix[k] * 0.995
			mix[k] *= 0.005
		}
	}
	for i := range mix {
		mix[i] /= sum
	}
	cl.updateShare = mix[StInsert] + mix[StCopy] + mix[StDelete] + mix[StUpdate]

	// Query-template pool: templates have 1-3 scans each; some scan
	// templates are shared across query templates (the same dashboard panel
	// feeding several reports) — this is why Figure 4's scan repetition can
	// exceed query repetition.
	nTemplates := 5 + r.Intn(40)
	type templ struct {
		scans     []int // scan-template ids
		instances []string
	}
	nScanTemplates := nTemplates/2 + 2
	templates := make([]templ, nTemplates)
	for i := range templates {
		n := 1 + r.Intn(3)
		seen := map[int]bool{}
		for s := 0; s < n; s++ {
			sc := r.Intn(nScanTemplates)
			if seen[sc] {
				continue // one scan per distinct expression within a query
			}
			seen[sc] = true
			templates[i].scans = append(templates[i].scans, sc)
		}
	}
	scanTable := make([]int, nScanTemplates)
	for i := range scanTable {
		scanTable[i] = r.Intn(nTables)
	}

	// Repetitiveness: mean ~0.72 with mass near 1 (Figure 1: for >50% of
	// clusters at least 75% of queries repeat).
	rep := betaish(r, 0.60)
	if readMostly && rep < 0.95 {
		rep = 0.95
	}
	cl.repetitiveness = rep

	nStatements := cfg.MinStatements + r.Intn(cfg.MaxStatements-cfg.MinStatements+1)
	instSeq := 0
	for s := 0; s < nStatements; s++ {
		// Draw the statement kind.
		k := StOther
		u := r.Float64()
		acc := 0.0
		for i := 0; i < int(numKinds); i++ {
			acc += mix[i]
			if u < acc {
				k = StatementKind(i)
				break
			}
		}
		if k != StSelect {
			cl.Statements = append(cl.Statements, Statement{Kind: k, Table: r.Intn(nTables)})
			continue
		}
		ti := r.Intn(nTemplates)
		tp := &templates[ti]
		// Queries over the very largest tables are often ad-hoc analytics:
		// the query *text* varies (different projections, limits, analysts)
		// while the underlying filter predicates — the scans — keep
		// repeating. This reproduces Figure 5: query repetition drops for
		// extra-large tables while scan repetition stays flat.
		isXL := false
		for _, sc := range tp.scans {
			if cl.Tables[scanTable[sc]].Rows >= 1_000_000_000 {
				isXL = true
				break
			}
		}
		tplRep := rep
		if isXL {
			tplRep = rep * 0.7
		}
		reusePrev := func() string {
			idx := len(tp.instances) - 1 - int(float64(len(tp.instances))*r.Float64()*r.Float64())
			if idx < 0 {
				idx = 0
			}
			return tp.instances[idx]
		}
		var inst, scanInst string
		if len(tp.instances) > 0 && r.Float64() < tplRep {
			// Reuse a previous instance, biased toward recent ones.
			inst = reusePrev()
			scanInst = inst
		} else {
			inst = fmt.Sprintf("t%d-i%d", ti, instSeq)
			instSeq++
			scanInst = inst
			if isXL && len(tp.instances) > 0 && r.Float64() < 0.35 {
				// Fresh ad-hoc text over a familiar filter.
				scanInst = reusePrev()
			} else {
				tp.instances = append(tp.instances, inst)
			}
		}
		st := Statement{Kind: StSelect, Query: fmt.Sprintf("select ... /*%s*/", inst)}
		for _, sc := range tp.scans {
			st.Scans = append(st.Scans, ScanRef{
				Table: scanTable[sc],
				Pred:  fmt.Sprintf("scan%d/%s", sc, scanInst),
			})
			st.Table = scanTable[sc]
		}
		cl.Statements = append(cl.Statements, st)
	}
	return cl
}

// --- analyses (Figures 1-7, Table 2) ---

// repetitionRate returns the fraction of items whose key occurs >= 2 times.
func repetitionRate(keys []string) float64 {
	if len(keys) == 0 {
		return 0
	}
	counts := make(map[string]int, len(keys))
	for _, k := range keys {
		counts[k]++
	}
	repeated := 0
	for _, k := range keys {
		if counts[k] >= 2 {
			repeated++
		}
	}
	return float64(repeated) / float64(len(keys))
}

// QueryRepetitionRates returns, per cluster, the fraction of select
// statements that repeat within the first `window` fraction of the stream
// (1.0 = the whole month, ~0.25 = one week). Figure 1.
func (f *Fleet) QueryRepetitionRates(window float64) []float64 {
	var out []float64
	for _, cl := range f.Clusters {
		n := int(float64(len(cl.Statements)) * window)
		var keys []string
		for _, st := range cl.Statements[:n] {
			if st.Kind == StSelect {
				keys = append(keys, st.Query)
			}
		}
		out = append(out, repetitionRate(keys))
	}
	return out
}

// ScanRepetitionRates returns per-cluster scan repetition (Figure 4's
// second series). Only scans with a filter are counted, as in the paper.
func (f *Fleet) ScanRepetitionRates() []float64 {
	var out []float64
	for _, cl := range f.Clusters {
		var keys []string
		for _, st := range cl.Statements {
			for _, sc := range st.Scans {
				keys = append(keys, fmt.Sprintf("%d|%s", sc.Table, sc.Pred))
			}
		}
		out = append(out, repetitionRate(keys))
	}
	return out
}

// StatementMix returns the fleet-aggregate share per statement kind
// (Table 2) and the per-cluster select shares (Figure 2's headline series).
func (f *Fleet) StatementMix() (aggregate map[string]float64, selectShares []float64) {
	counts := make([]int, numKinds)
	total := 0
	for _, cl := range f.Clusters {
		clSelect := 0
		for _, st := range cl.Statements {
			counts[st.Kind]++
			total++
			if st.Kind == StSelect {
				clSelect++
			}
		}
		selectShares = append(selectShares, float64(clSelect)/float64(len(cl.Statements)))
	}
	aggregate = make(map[string]float64, numKinds)
	for k := 0; k < int(numKinds); k++ {
		aggregate[StatementKind(k).String()] = float64(counts[k]) / float64(total)
	}
	return aggregate, selectShares
}

// ReadWriteRatios returns per-cluster write/read statement count ratios
// (Figure 3): values < 1 mean more reads than writes.
func (f *Fleet) ReadWriteRatios() []float64 {
	var out []float64
	for _, cl := range f.Clusters {
		reads, writes := 0, 0
		for _, st := range cl.Statements {
			switch st.Kind {
			case StSelect:
				reads++
			case StInsert, StCopy, StDelete, StUpdate:
				writes++
			}
		}
		if reads == 0 {
			reads = 1
		}
		out = append(out, float64(writes)/float64(reads))
	}
	return out
}

// SizeClass buckets tables by row count, following Figure 5's grouping.
type SizeClass int

const (
	SizeSmall  SizeClass = iota // < 1e6
	SizeMedium                  // 1e6 .. 1e8
	SizeLarge                   // 1e8 .. 1e9
	SizeXL                      // >= 1e9
	numSizes
)

func (s SizeClass) String() string {
	switch s {
	case SizeSmall:
		return "small(<1e6)"
	case SizeMedium:
		return "medium(1e6-1e8)"
	case SizeLarge:
		return "large(1e8-1e9)"
	default:
		return "xl(>=1e9)"
	}
}

func classify(rows int64) SizeClass {
	switch {
	case rows < 1_000_000:
		return SizeSmall
	case rows < 100_000_000:
		return SizeMedium
	case rows < 1_000_000_000:
		return SizeLarge
	default:
		return SizeXL
	}
}

// RepetitionByTableSize computes average query and scan repetition rates
// grouped by table size (Figure 5). Queries are categorized by the largest
// table they scan; scans individually.
func (f *Fleet) RepetitionByTableSize() (queryRates, scanRates map[SizeClass]float64) {
	qKeys := make(map[SizeClass][]string)
	sKeys := make(map[SizeClass][]string)
	for _, cl := range f.Clusters {
		for _, st := range cl.Statements {
			if st.Kind != StSelect || len(st.Scans) == 0 {
				continue
			}
			var maxRows int64
			for _, sc := range st.Scans {
				rows := cl.Tables[sc.Table].Rows
				if rows > maxRows {
					maxRows = rows
				}
				sKeys[classify(rows)] = append(sKeys[classify(rows)], fmt.Sprintf("%d|%s", sc.Table, sc.Pred))
			}
			qKeys[classify(maxRows)] = append(qKeys[classify(maxRows)], st.Query)
		}
	}
	queryRates = make(map[SizeClass]float64, numSizes)
	scanRates = make(map[SizeClass]float64, numSizes)
	for s := SizeClass(0); s < numSizes; s++ {
		queryRates[s] = repetitionRate(qKeys[s])
		scanRates[s] = repetitionRate(sKeys[s])
	}
	return queryRates, scanRates
}

// ResultCacheHitRates replays each cluster's statement stream through an
// idealized result cache (exact text match, invalidated by any DML on a
// scanned table) and returns per-cluster hit rates (Figure 6).
func (f *Fleet) ResultCacheHitRates() []float64 {
	var out []float64
	for _, cl := range f.Clusters {
		out = append(out, replayResultCache(cl))
	}
	return out
}

func replayResultCache(cl *Cluster) float64 {
	versions := make([]int, len(cl.Tables))
	type entry struct {
		versions []int
		tables   []int
	}
	cache := make(map[string]entry)
	hits, selects := 0, 0
	for _, st := range cl.Statements {
		switch st.Kind {
		case StInsert, StCopy, StDelete, StUpdate:
			versions[st.Table]++
		case StSelect:
			selects++
			if e, ok := cache[st.Query]; ok {
				fresh := true
				for i, t := range e.tables {
					if versions[t] != e.versions[i] {
						fresh = false
						break
					}
				}
				if fresh {
					hits++
					continue
				}
			}
			var tables []int
			var vs []int
			for _, sc := range st.Scans {
				tables = append(tables, sc.Table)
				vs = append(vs, versions[sc.Table])
			}
			cache[st.Query] = entry{versions: vs, tables: tables}
		}
	}
	if selects == 0 {
		return 0
	}
	return float64(hits) / float64(selects)
}

// HitRateVsUpdateRate returns (updateShare, resultCacheHitRate) pairs per
// cluster (Figure 7).
func (f *Fleet) HitRateVsUpdateRate() (updateShares, hitRates []float64) {
	for _, cl := range f.Clusters {
		writes, total := 0, 0
		for _, st := range cl.Statements {
			total++
			switch st.Kind {
			case StInsert, StCopy, StDelete, StUpdate:
				writes++
			}
		}
		updateShares = append(updateShares, float64(writes)/float64(total))
		hitRates = append(hitRates, replayResultCache(cl))
	}
	return updateShares, hitRates
}

// CDF returns the values of a per-cluster metric at the given percentiles
// (0-100), for rendering the paper's per-cluster CDF figures.
func CDF(values []float64, percentiles []int) []float64 {
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	out := make([]float64, len(percentiles))
	for i, p := range percentiles {
		idx := p * (len(s) - 1) / 100
		out[i] = s[idx]
	}
	return out
}

// Mean averages a metric.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// FractionAbove returns the share of values >= threshold.
func FractionAbove(values []float64, threshold float64) float64 {
	if len(values) == 0 {
		return 0
	}
	n := 0
	for _, v := range values {
		if v >= threshold {
			n++
		}
	}
	return float64(n) / float64(len(values))
}
