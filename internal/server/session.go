package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	predcache "github.com/predcache/predcache"
	"github.com/predcache/predcache/internal/systab"
)

// Wire protocol (newline-delimited text, one statement per line):
//
//	<sql>                 execute a SELECT / EXPLAIN statement
//	\prepare <name> <sql> remember sql under name for this session
//	\exec <name>          execute the statement prepared under name
//	\cancel               cancel the statement this session is executing
//	\ping                 liveness check
//	\quit                 close the session
//
// Responses:
//
//	ok <nrows> <ncols>    then a TSV header line, nrows TSV rows, and a
//	                      lone "." terminator line
//	ok                    statement without a result set (\prepare, \cancel)
//	pong                  for \ping
//	bye                   for \quit (then the connection closes)
//	err <message>         failure (single line; message newlines collapsed)
//
// \cancel is read and applied by the session's reader goroutine while the
// statement is still executing — that goroutine only pumps lines and never
// blocks on the engine, which is what makes mid-query cancellation (and
// detecting a vanished client) possible on a single TCP stream.

// session states reported by pc.sessions.
const (
	stateIdle    = "idle"
	stateActive  = "active"
	stateClosing = "closing"
)

// maxLineBytes bounds one wire line (statements and responses).
const maxLineBytes = 1 << 20

// session is one client connection's state.
type session struct {
	srv     *Server
	conn    net.Conn
	id      int64
	remote  string
	started time.Time

	// writeMu serializes response writes: the executor goroutine writes
	// results while the reader goroutine may write \cancel acknowledgements.
	writeMu sync.Mutex

	// cancel aborts the in-flight statement's context; nil when idle.
	cancelMu sync.Mutex
	cancel   context.CancelFunc

	state   atomic.Value // stateIdle | stateActive | stateClosing
	last    atomic.Int64 // unix micros of last statement start/finish
	queries atomic.Int64
	current atomic.Value // string; SQL of the executing statement, "" when idle

	prepMu   sync.Mutex
	prepared map[string]string // guarded by prepMu; pc.sessions reads its size cross-goroutine

	draining atomic.Bool
}

// run owns the session: a reader goroutine pumps lines (handling \cancel
// inline), this goroutine executes them in arrival order.
func (s *session) run() {
	defer s.conn.Close()

	lines := make(chan string)
	readErr := make(chan error, 1)
	// pclint:allow goroutinectx: joined via the readErr receive in this function's teardown
	go func() {
		defer close(lines)
		sc := bufio.NewScanner(s.conn)
		sc.Buffer(make([]byte, 64<<10), maxLineBytes)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			if line == `\cancel` {
				// Handled here, not queued: the executor goroutine is busy
				// inside the engine right now.
				s.cancelInflight()
				s.writeLine("ok")
				continue
			}
			lines <- line
		}
		// EOF or a broken connection: abort whatever is executing — the
		// client is gone and nobody will read the result.
		s.cancelInflight()
		readErr <- sc.Err()
	}()

	for line := range lines {
		if s.handleLine(line) || s.draining.Load() {
			break
		}
	}
	// Unblock the reader: close the connection, then swallow any lines it
	// already read before waiting for it — it could be parked on `lines <-`
	// (a client that pipelined statements past \quit) and would otherwise
	// never observe the close.
	s.conn.Close()
	go func() {
		for range lines { // pclint:allow noalloc: session teardown, not a query path
		}
	}()
	if err := <-readErr; err != nil && !errors.Is(err, net.ErrClosed) && !errors.Is(err, io.ErrClosedPipe) {
		s.srv.log.Error("session read failed", "session", s.id, "error", err.Error())
	}
}

// handleLine executes one protocol line; true means the session should end.
func (s *session) handleLine(line string) (quit bool) {
	switch {
	case line == `\quit`:
		s.writeLine("bye")
		return true
	case line == `\ping`:
		s.writeLine("pong")
		return false
	case strings.HasPrefix(line, `\prepare `):
		rest := strings.TrimSpace(strings.TrimPrefix(line, `\prepare `))
		name, sql, ok := strings.Cut(rest, " ")
		if !ok || strings.TrimSpace(sql) == "" {
			s.writeLine(`err \prepare wants a name and a statement`)
			return false
		}
		s.prepMu.Lock()
		s.prepared[name] = strings.TrimSpace(sql)
		s.prepMu.Unlock()
		s.writeLine("ok")
		return false
	case strings.HasPrefix(line, `\exec `):
		name := strings.TrimSpace(strings.TrimPrefix(line, `\exec `))
		s.prepMu.Lock()
		sql, ok := s.prepared[name]
		s.prepMu.Unlock()
		if !ok {
			s.writeLine(fmt.Sprintf("err no prepared statement %q", name))
			return false
		}
		s.execute(sql)
		return false
	case strings.HasPrefix(line, `\`):
		s.writeLine(fmt.Sprintf("err unknown command %q", line))
		return false
	default:
		s.execute(line)
		return false
	}
}

// execute runs one SQL statement through admission control and the engine,
// then writes the result (or error) as a wire response.
func (s *session) execute(sql string) {
	if s.draining.Load() {
		s.writeLine("err " + ErrDraining.Error())
		return
	}
	// The session label rides the context into per-query resource
	// attribution: every query this connection runs carries a session pprof
	// label, so a profile can be cut by connection as well as by shape.
	ctx, cancel := context.WithCancel(
		predcache.ContextWithSession(context.Background(), "s"+strconv.FormatInt(s.id, 10)))
	s.setCancel(cancel)
	defer func() {
		s.clearCancel()
		cancel()
	}()

	s.state.Store(stateActive)
	s.current.Store(sql)
	s.last.Store(time.Now().UnixMicro())
	defer func() {
		s.state.Store(stateIdle)
		s.current.Store("")
		s.last.Store(time.Now().UnixMicro())
	}()

	release, err := s.srv.admit(ctx)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			s.srv.cancelled.Add(1)
		}
		s.writeLine("err " + errLine(err))
		return
	}
	defer release()

	s.srv.statement.Add(1)
	s.queries.Add(1)
	res, err := s.srv.db.QueryCtx(ctx, sql)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			s.srv.cancelled.Add(1)
		}
		s.writeLine("err " + errLine(err))
		return
	}
	s.writeResult(res)
}

// writeResult streams a relation as one buffered wire response.
func (s *session) writeResult(res *predcache.Result) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	w := bufio.NewWriterSize(s.conn, 32<<10)
	fmt.Fprintf(w, "ok %d %d\n", res.NumRows(), res.NumCols())
	w.WriteString(strings.Join(res.ColumnNames(), "\t"))
	w.WriteByte('\n')
	for row := 0; row < res.NumRows(); row++ {
		for col := 0; col < res.NumCols(); col++ {
			if col > 0 {
				w.WriteByte('\t')
			}
			w.WriteString(sanitize(res.StringValue(row, col)))
		}
		w.WriteByte('\n')
	}
	w.WriteString(".\n")
	w.Flush()
}

// writeLine writes one response line under the write mutex.
func (s *session) writeLine(line string) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	io.WriteString(s.conn, line+"\n")
}

// errLine renders an error as a single wire line.
func errLine(err error) string {
	return strings.Join(strings.Fields(err.Error()), " ")
}

// sanitize keeps TSV framing intact for values containing tabs/newlines.
func sanitize(v string) string {
	if !strings.ContainsAny(v, "\t\n\r") {
		return v
	}
	r := strings.NewReplacer("\t", " ", "\n", " ", "\r", " ")
	return r.Replace(v)
}

func (s *session) setCancel(fn context.CancelFunc) {
	s.cancelMu.Lock()
	s.cancel = fn
	s.cancelMu.Unlock()
}

func (s *session) clearCancel() {
	s.cancelMu.Lock()
	s.cancel = nil
	s.cancelMu.Unlock()
}

// cancelInflight aborts the statement this session is executing, if any.
func (s *session) cancelInflight() {
	s.cancelMu.Lock()
	fn := s.cancel
	s.cancelMu.Unlock()
	if fn != nil {
		fn()
	}
}

// beginDrain marks the session closing: the current statement finishes, the
// next one is refused. Idle sessions are closed outright — their reader is
// blocked in Scan and would otherwise hold the drain until timeout.
func (s *session) beginDrain() {
	s.draining.Store(true)
	s.state.Store(stateClosing)
	if s.current.Load() == "" {
		s.conn.Close()
	}
}

// info snapshots the session for pc.sessions.
func (s *session) info() systab.SessionInfo {
	s.prepMu.Lock()
	nprep := len(s.prepared)
	s.prepMu.Unlock()
	state, _ := s.state.Load().(string)
	current, _ := s.current.Load().(string)
	return systab.SessionInfo{
		ID:          s.id,
		RemoteAddr:  s.remote,
		State:       state,
		StartMicros: s.started.UnixMicro(),
		LastMicros:  s.last.Load(),
		Queries:     s.queries.Load(),
		Prepared:    int64(nprep),
		CurrentSQL:  current,
	}
}
