package server

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	predcache "github.com/predcache/predcache"
)

func testDB(t *testing.T, rows int) *predcache.DB {
	t.Helper()
	db := predcache.Open(predcache.WithSlices(2))
	schema := predcache.Schema{
		{Name: "id", Type: predcache.Int64},
		{Name: "grp", Type: predcache.String},
		{Name: "val", Type: predcache.Float64},
	}
	if err := db.CreateTable("t", schema); err != nil {
		t.Fatal(err)
	}
	batch := predcache.NewBatch(schema)
	for i := 0; i < rows; i++ {
		batch.Cols[0].Ints = append(batch.Cols[0].Ints, int64(i))
		batch.Cols[1].Strings = append(batch.Cols[1].Strings, []string{"a", "b", "c"}[i%3])
		batch.Cols[2].Floats = append(batch.Cols[2].Floats, float64(i%100))
	}
	batch.N = rows
	if err := db.Insert("t", batch); err != nil {
		t.Fatal(err)
	}
	return db
}

func newTestServer(t *testing.T, db *predcache.DB, cfg Config) *Server {
	t.Helper()
	srv, err := New(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv
}

// client speaks the wire protocol over any net.Conn.
type client struct {
	conn net.Conn
	r    *bufio.Reader
}

func dialPipe(t *testing.T, srv *Server) *client {
	t.Helper()
	c1, c2 := net.Pipe()
	srv.ServeConn(c2, "pipe")
	t.Cleanup(func() { c1.Close() })
	return &client{conn: c1, r: bufio.NewReader(c1)}
}

func (c *client) send(t *testing.T, line string) {
	t.Helper()
	if _, err := fmt.Fprintf(c.conn, "%s\n", line); err != nil {
		t.Fatalf("send %q: %v", line, err)
	}
}

func (c *client) line(t *testing.T) string {
	t.Helper()
	c.conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	s, err := c.r.ReadString('\n')
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	return strings.TrimRight(s, "\n")
}

// query sends sql and parses a full response, returning the data rows (nil
// with ok==false when the server answered err).
func (c *client) query(t *testing.T, sql string) (rows [][]string, errLine string) {
	t.Helper()
	c.send(t, sql)
	head := c.line(t)
	if strings.HasPrefix(head, "err ") {
		return nil, strings.TrimPrefix(head, "err ")
	}
	var nrows, ncols int
	if _, err := fmt.Sscanf(head, "ok %d %d", &nrows, &ncols); err != nil {
		t.Fatalf("bad response header %q", head)
	}
	c.line(t) // header
	for i := 0; i < nrows; i++ {
		rows = append(rows, strings.Split(c.line(t), "\t"))
	}
	if term := c.line(t); term != "." {
		t.Fatalf("bad terminator %q", term)
	}
	return rows, ""
}

func (c *client) queryInt(t *testing.T, sql string) int64 {
	t.Helper()
	rows, errl := c.query(t, sql)
	if errl != "" {
		t.Fatalf("%s: %s", sql, errl)
	}
	if len(rows) != 1 || len(rows[0]) != 1 {
		t.Fatalf("%s: rows %v", sql, rows)
	}
	n, err := strconv.ParseInt(rows[0][0], 10, 64)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return n
}

func TestServerOverTCP(t *testing.T) {
	db := testDB(t, 3000)
	srv := newTestServer(t, db, Config{})
	go srv.Serve()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c := &client{conn: conn, r: bufio.NewReader(conn)}

	c.send(t, `\ping`)
	if got := c.line(t); got != "pong" {
		t.Fatalf("ping: %q", got)
	}
	if n := c.queryInt(t, "select count(*) as n from t where id < 500"); n != 500 {
		t.Fatalf("count = %d", n)
	}
	if _, errl := c.query(t, "select nope from t"); errl == "" {
		t.Fatal("bad query did not err")
	}
	// The session survives statement errors.
	if n := c.queryInt(t, "select count(*) as n from t"); n != 3000 {
		t.Fatalf("count = %d", n)
	}
	c.send(t, `\quit`)
	if got := c.line(t); got != "bye" {
		t.Fatalf("quit: %q", got)
	}
}

func TestServerPreparedStatements(t *testing.T) {
	db := testDB(t, 3000)
	srv := newTestServer(t, db, Config{})
	c := dialPipe(t, srv)

	c.send(t, `\prepare q1 select count(*) as n from t where id < 500`)
	if got := c.line(t); got != "ok" {
		t.Fatalf("prepare: %q", got)
	}
	c.send(t, `\exec q1`)
	head := c.line(t)
	if head != "ok 1 1" {
		t.Fatalf("exec: %q", head)
	}
	c.line(t) // header
	if got := c.line(t); got != "500" {
		t.Fatalf("exec value: %q", got)
	}
	c.line(t) // terminator
	c.send(t, `\exec nope`)
	if got := c.line(t); !strings.HasPrefix(got, "err ") {
		t.Fatalf("exec missing: %q", got)
	}
	// Prepared statements are visible in pc.sessions.
	if n := c.queryInt(t, "select count(*) as n from pc.sessions where prepared = 1"); n != 1 {
		t.Fatalf("pc.sessions prepared = %d", n)
	}
}

func TestServerSessionsTable(t *testing.T) {
	db := testDB(t, 100)
	srv := newTestServer(t, db, Config{})
	a := dialPipe(t, srv)
	dialPipe(t, srv) // second idle session

	// Both sessions are visible; poll briefly — the second session registers
	// asynchronously.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := a.queryInt(t, "select count(*) as n from pc.sessions"); n == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second session never appeared in pc.sessions")
		}
		time.Sleep(5 * time.Millisecond)
	}
	infos := srv.SessionInfos()
	if len(infos) != 2 || infos[0].Queries == 0 {
		t.Fatalf("infos = %+v", infos)
	}
}

func TestServerAdmissionControl(t *testing.T) {
	db := testDB(t, 100)
	srv := newTestServer(t, db, Config{MaxConcurrent: 1, MaxQueue: 1})

	// Occupy the only execution slot directly, so admission behavior is
	// deterministic without depending on query timing.
	srv.sem <- struct{}{}

	queued := dialPipe(t, srv)
	queued.send(t, "select count(*) as n from t")
	// Wait until that statement is parked in the admission queue.
	deadline := time.Now().Add(5 * time.Second)
	for srv.queued.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("statement never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// The queue is full: the next statement fails fast with overloaded.
	rejected := dialPipe(t, srv)
	rejected.send(t, "select count(*) as n from t")
	if got := rejected.line(t); !strings.Contains(got, "overloaded") {
		t.Fatalf("want overloaded, got %q", got)
	}
	if srv.StatsNow().Rejected != 1 {
		t.Fatalf("stats = %+v", srv.StatsNow())
	}

	// Freeing the slot lets the queued statement through.
	<-srv.sem
	head := queued.line(t)
	if !strings.HasPrefix(head, "ok ") {
		t.Fatalf("queued statement: %q", head)
	}
}

func TestServerCancelMidQuery(t *testing.T) {
	db := testDB(t, 200000)
	srv := newTestServer(t, db, Config{})
	c := dialPipe(t, srv)

	// A self-join slow enough to still be running when \cancel lands.
	c.send(t, "select count(*) as n from t a, t b where a.id = b.id")
	time.Sleep(2 * time.Millisecond)
	c.send(t, `\cancel`)

	// Two lines arrive: the cancel ack ("ok") and the statement response —
	// either "err ... canceled" (cancel won) or a full result (query won).
	sawAck, sawCancelled := false, false
	for i := 0; i < 2; i++ {
		switch got := c.line(t); {
		case got == "ok":
			sawAck = true
		case strings.HasPrefix(got, "err "):
			if !strings.Contains(got, "cancel") {
				t.Fatalf("unexpected error %q", got)
			}
			sawCancelled = true
		case strings.HasPrefix(got, "ok "):
			// Query finished first: drain its rows.
			var nrows, ncols int
			fmt.Sscanf(got, "ok %d %d", &nrows, &ncols)
			for j := 0; j < nrows+2; j++ {
				c.line(t)
			}
		default:
			t.Fatalf("unexpected line %q", got)
		}
	}
	if !sawAck {
		t.Fatal("no cancel ack")
	}
	if sawCancelled && srv.StatsNow().Cancelled == 0 {
		t.Fatalf("stats = %+v", srv.StatsNow())
	}
	// The session keeps working after a cancelled statement.
	if n := c.queryInt(t, "select count(*) as n from t where id < 10"); n != 10 {
		t.Fatalf("post-cancel count = %d", n)
	}
}

func TestServerDisconnectMidQueryCancels(t *testing.T) {
	db := testDB(t, 200000)
	srv := newTestServer(t, db, Config{})
	c := dialPipe(t, srv)
	c.send(t, "select count(*) as n from t a, t b where a.id = b.id")
	time.Sleep(2 * time.Millisecond)
	c.conn.Close()

	// The session must unwind (its context is cancelled by the reader
	// goroutine noticing the close) without waiting for the query to finish.
	deadline := time.Now().Add(10 * time.Second)
	for len(srv.SessionInfos()) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("session did not unwind after disconnect")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestServerDrain(t *testing.T) {
	db := testDB(t, 100)
	srv := newTestServer(t, db, Config{DrainTimeout: 5 * time.Second})
	c := dialPipe(t, srv)
	if n := c.queryInt(t, "select count(*) as n from t"); n != 100 {
		t.Fatalf("count = %d", n)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	start := time.Now()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 4*time.Second {
		t.Fatalf("drain of an idle server took %v", elapsed)
	}
	if got := len(srv.SessionInfos()); got != 0 {
		t.Fatalf("%d sessions after drain", got)
	}
}

// The headline stress test: 1000 concurrent sessions connecting, querying,
// cancelling and disconnecting mid-query against one DB. Run under -race by
// `make race`.
func TestServerThousandConcurrentSessions(t *testing.T) {
	db := testDB(t, 5000)
	srv := newTestServer(t, db, Config{MaxConcurrent: 16})

	const sessions = 1000
	var wg sync.WaitGroup
	var failures atomic.Int64
	errCh := make(chan string, 8)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c1, c2 := net.Pipe()
			srv.ServeConn(c2, fmt.Sprintf("stress-%d", i))
			defer c1.Close()
			// Bound every read AND write: an unbuffered pipe write blocks
			// until the peer reads, and a test bug must fail, not hang.
			c1.SetDeadline(time.Now().Add(120 * time.Second))
			r := bufio.NewReader(c1)
			send := func(line string) bool {
				_, err := fmt.Fprintf(c1, "%s\n", line)
				return err == nil
			}
			read := func() (string, bool) {
				c1.SetReadDeadline(time.Now().Add(60 * time.Second))
				s, err := r.ReadString('\n')
				return strings.TrimRight(s, "\n"), err == nil
			}
			want := 1 + i%4999
			q := fmt.Sprintf("select count(*) as n from t where id < %d", want)
			switch i % 5 {
			case 0: // disconnect mid-query
				send(q)
				return
			case 1: // cancel, then disconnect
				if !send(q) || !send(`\cancel`) {
					return
				}
				for j := 0; j < 2; j++ {
					if _, ok := read(); !ok {
						failures.Add(1)
						return
					}
				}
				// The statement response may be a full result block with
				// unread lines; writing \quit now could deadlock against the
				// server's pending writes on an unbuffered pipe — just
				// disconnect (the deferred Close) like a vanishing client.
			default: // plain query; result must be exact
				if !send(q) {
					failures.Add(1)
					return
				}
				head, ok := read()
				if !ok || !strings.HasPrefix(head, "ok ") {
					failures.Add(1)
					select {
					case errCh <- fmt.Sprintf("session %d: head %q ok=%v", i, head, ok):
					default:
					}
					return
				}
				var nrows, ncols int
				fmt.Sscanf(head, "ok %d %d", &nrows, &ncols)
				read() // column header
				val, _ := read()
				for j := 0; j < nrows; j++ { // remaining rows + terminator
					read()
				}
				if val != strconv.Itoa(want) {
					failures.Add(1)
					select {
					case errCh <- fmt.Sprintf("session %d: got %q want %d", i, val, want):
					default:
					}
					return
				}
				send(`\quit`)
			}
		}(i)
	}
	wg.Wait()
	if n := failures.Load(); n != 0 {
		close(errCh)
		for msg := range errCh {
			t.Error(msg)
		}
		t.Fatalf("%d/%d sessions failed", n, sessions)
	}
	st := srv.StatsNow()
	if st.Accepted != sessions {
		t.Fatalf("accepted %d sessions, want %d", st.Accepted, sessions)
	}
	if st.Rejected != 0 {
		t.Fatalf("%d rejections with the default queue", st.Rejected)
	}
}
