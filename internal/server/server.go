// Package server is predcache's network front-end: a TCP line-protocol
// listener multiplexing many client sessions onto one embedded DB, with
// per-session prepared statements, cooperative query cancellation,
// admission control, and an admin HTTP endpoint.
//
// The wire protocol is newline-delimited text (see session.go); it exists
// so the paper's fleet-style workloads — thousands of mostly-idle
// connections issuing near-verbatim repeated queries — can be replayed
// against the engine without linking it into the client.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	predcache "github.com/predcache/predcache"
	"github.com/predcache/predcache/internal/obs"
	"github.com/predcache/predcache/internal/systab"
)

// ErrOverloaded is returned to (and sent over the wire for) statements that
// arrive while MaxConcurrent statements are executing and MaxQueue more are
// already waiting. Clients should back off and retry.
var ErrOverloaded = errors.New("overloaded: admission queue full")

// ErrDraining rejects new statements once Shutdown has begun.
var ErrDraining = errors.New("server draining")

// Config shapes a Server. The zero value is usable: an ephemeral listen
// port, concurrency bounded by GOMAXPROCS, and a five-second drain.
type Config struct {
	// Addr is the TCP listen address; empty selects an ephemeral localhost
	// port (the chosen address is available from Server.Addr).
	Addr string
	// AdminAddr optionally serves the admin HTTP endpoint (metrics,
	// sessions, stats); empty disables it.
	AdminAddr string
	// MaxConcurrent bounds statements executing at once across all sessions
	// (<= 0 selects 2×GOMAXPROCS). Sessions beyond it queue.
	MaxConcurrent int
	// MaxQueue bounds statements waiting for an execution slot (<= 0
	// selects 64× MaxConcurrent); beyond it statements fail fast with
	// ErrOverloaded instead of building an unbounded convoy.
	MaxQueue int
	// DrainTimeout is how long Shutdown waits for in-flight statements and
	// open sessions before cancelling them (<= 0 selects 5s).
	DrainTimeout time.Duration
	// Logger receives structured connection/lifecycle lines; nil drops them.
	Logger *obs.Logger
	// Metrics, when set, is served by the admin endpoint at /metrics.
	Metrics *obs.Metrics
}

// Server accepts client connections and executes their statements against
// one shared DB.
type Server struct {
	db  *predcache.DB
	cfg Config
	log *obs.Logger

	ln        net.Listener
	admin     *http.Server
	adminAddr atomic.Value // string; set once the admin listener binds

	// sem holds one token per executing statement; queued counts statements
	// waiting for a token (bounded by cfg.MaxQueue).
	sem    chan struct{}
	queued atomic.Int64

	mu       sync.Mutex
	sessions map[int64]*session
	closed   bool
	nextID   atomic.Int64

	// wg tracks session goroutines; lnWg the accept + admin loops.
	wg   sync.WaitGroup
	lnWg sync.WaitGroup

	// Wire-level counters, served by /stats and pc.sessions consumers.
	accepted  atomic.Int64
	statement atomic.Int64
	rejected  atomic.Int64
	cancelled atomic.Int64
}

// New builds a Server over db, binds its listener(s), and registers the
// pc.sessions system table. Serve must be called to start accepting.
func New(db *predcache.DB, cfg Config) (*Server, error) {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 2 * runtime.GOMAXPROCS(0)
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 64 * cfg.MaxConcurrent
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	if cfg.AdminAddr != "" && cfg.Metrics == nil {
		// The admin endpoint always serves /metrics; wire a registry in when
		// the caller did not bring one.
		cfg.Metrics = obs.NewMetrics()
		db.EnableMetrics(cfg.Metrics)
	}
	s := &Server{
		db:       db,
		cfg:      cfg,
		log:      cfg.Logger,
		sem:      make(chan struct{}, cfg.MaxConcurrent),
		sessions: make(map[int64]*session),
	}
	if err := db.RegisterSystemTable(systab.SessionsTable(s.SessionInfos)); err != nil {
		return nil, fmt.Errorf("server: register pc.sessions: %w", err)
	}
	addr := cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen %s: %w", addr, err)
	}
	s.ln = ln
	if cfg.AdminAddr != "" {
		aln, err := net.Listen("tcp", cfg.AdminAddr)
		if err != nil {
			ln.Close()
			return nil, fmt.Errorf("server: admin listen %s: %w", cfg.AdminAddr, err)
		}
		s.admin = &http.Server{Handler: s.adminHandler(), ReadHeaderTimeout: 5 * time.Second}
		s.lnWg.Add(1)
		// pclint:allow goroutinectx: joined by lnWg.Wait in Shutdown
		go func() {
			defer s.lnWg.Done()
			if err := s.admin.Serve(aln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				s.log.Error("admin server failed", "error", err.Error())
			}
		}()
		s.adminAddr.Store(aln.Addr().String())
	}
	return s, nil
}

// Addr returns the SQL listener's bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// AdminAddr returns the admin endpoint's bound address ("" when disabled).
func (s *Server) AdminAddr() string {
	if v := s.adminAddr.Load(); v != nil {
		return v.(string)
	}
	return ""
}

// Serve accepts connections until Shutdown (or a fatal listener error). It
// always runs the accept loop on the calling goroutine; start it with `go
// srv.Serve()`.
func (s *Server) Serve() error {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("server: accept: %w", err)
		}
		s.startSession(conn, conn.RemoteAddr().String())
	}
}

// ServeConn runs the wire protocol over a pre-established connection (tests
// drive thousands of in-memory sessions through net.Pipe without TCP).
func (s *Server) ServeConn(conn net.Conn, remote string) {
	s.startSession(conn, remote)
}

func (s *Server) startSession(conn net.Conn, remote string) {
	sess := &session{
		srv:      s,
		conn:     conn,
		id:       s.nextID.Add(1),
		remote:   remote,
		started:  time.Now(),
		prepared: make(map[string]string),
	}
	sess.last.Store(sess.started.UnixMicro())
	sess.state.Store(stateIdle)
	sess.current.Store("")

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.sessions[sess.id] = sess
	s.mu.Unlock()

	s.accepted.Add(1)
	s.wg.Add(1)
	// pclint:allow goroutinectx: joined by wg.Wait in Shutdown
	go func() {
		defer s.wg.Done()
		sess.run()
		s.mu.Lock()
		delete(s.sessions, sess.id)
		s.mu.Unlock()
	}()
}

// admit blocks until an execution slot frees, ctx is done, or the wait
// queue is already full (ErrOverloaded, without blocking). release must be
// called exactly once when err is nil.
func (s *Server) admit(ctx context.Context) (release func(), err error) {
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, nil
	default:
	}
	if s.queued.Add(1) > int64(s.cfg.MaxQueue) {
		s.queued.Add(-1)
		s.rejected.Add(1)
		return nil, ErrOverloaded
	}
	defer s.queued.Add(-1)
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Shutdown drains the server: the listeners close (no new sessions), idle
// sessions are told to disconnect, and in-flight statements get up to
// DrainTimeout (bounded additionally by ctx) before their contexts are
// cancelled and the connections closed. Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	if !already {
		s.ln.Close()
		for _, sess := range sessions {
			sess.beginDrain()
		}
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	timer := time.NewTimer(s.cfg.DrainTimeout)
	defer timer.Stop()
	select {
	case <-done:
	case <-timer.C:
		s.forceClose(done)
	case <-ctx.Done():
		s.forceClose(done)
	}
	if s.admin != nil {
		s.admin.Close()
	}
	s.lnWg.Wait()
	return ctx.Err()
}

// forceClose cancels every in-flight statement and closes the remaining
// connections, then waits for their goroutines.
func (s *Server) forceClose(done chan struct{}) {
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	// Close outside mu: Close can block, and the session goroutines we are
	// unblocking need mu to deregister themselves.
	for _, sess := range sessions {
		sess.cancelInflight()
		sess.conn.Close()
	}
	<-done
}

// SessionInfos snapshots every live session for pc.sessions and /sessions.
func (s *Server) SessionInfos() []systab.SessionInfo {
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	out := make([]systab.SessionInfo, len(sessions))
	for i, sess := range sessions {
		out[i] = sess.info()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Stats is the server-level counter snapshot served at /stats.
type Stats struct {
	Sessions   int   `json:"sessions"`
	Accepted   int64 `json:"accepted_total"`
	Statements int64 `json:"statements_total"`
	Rejected   int64 `json:"rejected_total"`
	Cancelled  int64 `json:"cancelled_total"`
	Executing  int   `json:"executing"`
	Queued     int64 `json:"queued"`
}

// StatsNow snapshots the server counters.
func (s *Server) StatsNow() Stats {
	s.mu.Lock()
	n := len(s.sessions)
	s.mu.Unlock()
	return Stats{
		Sessions:   n,
		Accepted:   s.accepted.Load(),
		Statements: s.statement.Load(),
		Rejected:   s.rejected.Load(),
		Cancelled:  s.cancelled.Load(),
		Executing:  len(s.sem),
		Queued:     s.queued.Load(),
	}
}

// adminHandler serves the obs metrics endpoints plus /sessions, /stats and
// /plancache as JSON.
func (s *Server) adminHandler() http.Handler {
	mux := http.NewServeMux()
	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(v); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
	mux.HandleFunc("/sessions", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.SessionInfos())
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{
			"server":          s.StatsNow(),
			"plan_cache":      s.db.PlanCacheStats(),
			"predicate_cache": s.db.CacheStats(),
		})
	})
	mux.Handle("/", obs.Handler(s.cfg.Metrics))
	return mux
}
