package resultcache

import (
	"fmt"
	"testing"

	"github.com/predcache/predcache/internal/engine"
	"github.com/predcache/predcache/internal/storage"
)

func mkTable(t *testing.T, name string, rows int) *storage.Table {
	t.Helper()
	tbl, err := storage.NewTable(name, storage.Schema{{Name: "v", Type: storage.Int64}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	b := storage.NewBatch(tbl.Schema())
	for i := 0; i < rows; i++ {
		b.Cols[0].Ints = append(b.Cols[0].Ints, int64(i))
	}
	b.N = rows
	if err := tbl.Append(b, 1); err != nil {
		t.Fatal(err)
	}
	return tbl
}

func mkResult(t *testing.T, n int) *engine.Relation {
	t.Helper()
	vals := make([]int64, n)
	rel, err := engine.NewRelation([]engine.RelCol{{Name: "x", Type: storage.Int64, Ints: vals}})
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

func TestGetPut(t *testing.T) {
	c := New(0)
	tbl := mkTable(t, "t", 10)
	if _, ok := c.Get("q1"); ok {
		t.Fatal("phantom hit")
	}
	res := mkResult(t, 1)
	c.Put("q1", res, []*storage.Table{tbl})
	got, ok := c.Get("q1")
	if !ok || got != res {
		t.Fatal("miss after put")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Inserts != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.MemBytes <= 0 {
		t.Fatal("mem accounting")
	}
}

func TestInvalidationOnAnyDML(t *testing.T) {
	c := New(0)
	t1 := mkTable(t, "t1", 10)
	t2 := mkTable(t, "t2", 10)
	c.Put("join", mkResult(t, 5), []*storage.Table{t1, t2})
	// DML on the second table invalidates too.
	t2.DeleteRows(0, []int{0}, 2)
	if _, ok := c.Get("join"); ok {
		t.Fatal("stale result served")
	}
	if c.Stats().Invalidations != 1 {
		t.Fatal("invalidation not counted")
	}
	// An insert also invalidates (the result cache is data-dependent —
	// the key weakness predicate caching addresses).
	c.Put("q", mkResult(t, 1), []*storage.Table{t1})
	b := storage.NewBatch(t1.Schema())
	b.Cols[0].Ints = []int64{99}
	b.N = 1
	if err := t1.Append(b, 3); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("q"); ok {
		t.Fatal("result survived insert")
	}
}

func TestEvictionBudget(t *testing.T) {
	c := New(5000)
	tbl := mkTable(t, "t", 10)
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprintf("q%d", i), mkResult(t, 50), []*storage.Table{tbl})
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions")
	}
	if st.MemBytes > 5000 {
		t.Fatalf("over budget: %d", st.MemBytes)
	}
	if _, ok := c.Get("q99"); !ok {
		t.Fatal("most recent evicted")
	}
}

func TestReplaceAndClear(t *testing.T) {
	c := New(0)
	tbl := mkTable(t, "t", 10)
	c.Put("q", mkResult(t, 1), []*storage.Table{tbl})
	r2 := mkResult(t, 2)
	c.Put("q", r2, []*storage.Table{tbl})
	got, _ := c.Get("q")
	if got != r2 {
		t.Fatal("replace failed")
	}
	if c.Stats().Entries != 1 {
		t.Fatal("duplicate entry")
	}
	if c.EntryMemBytes("q") <= 0 || c.EntryMemBytes("nope") != 0 {
		t.Fatal("entry mem")
	}
	c.Clear()
	if c.Stats().Entries != 0 {
		t.Fatal("clear failed")
	}
}
