// Package resultcache implements the leader-node result cache the paper
// compares against (§3.1): results keyed by exact query text, invalidated by
// any DML on any scanned table. It is deliberately simple — "a lightweight
// technique that does not require changes to the database or the query
// execution engine".
package resultcache

import (
	"container/list"
	"sync"

	"github.com/predcache/predcache/internal/engine"
	"github.com/predcache/predcache/internal/storage"
)

// dep pins the version of one scanned table at caching time.
type dep struct {
	table   *storage.Table
	version uint64
}

type entry struct {
	query  string
	result *engine.Relation
	deps   []dep
	mem    int
	elem   *list.Element
}

// Stats reports cache activity.
type Stats struct {
	Hits          int64
	Misses        int64
	Inserts       int64
	Invalidations int64
	Evictions     int64
	Entries       int
	MemBytes      int
}

// Cache is a query-text-keyed result cache.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*entry // guarded by mu
	lru     *list.List        // guarded by mu; front = most recent
	mem     int               // guarded by mu
	budget  int               // immutable after New; bytes, 0 = unlimited
	stats   Stats             // guarded by mu
}

// New creates a result cache with the given memory budget in bytes
// (0 = unlimited).
func New(budget int) *Cache {
	return &Cache{entries: make(map[string]*entry), lru: list.New(), budget: budget}
}

// Get returns the cached result for the exact query text. Entries whose
// source tables changed are dropped — "a hit in the cache requires that
// both the query text and the dataset are identical".
func (c *Cache) Get(query string) (*engine.Relation, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[query]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	for _, d := range e.deps {
		if d.table.Version() != d.version {
			c.dropLocked(e)
			c.stats.Invalidations++
			c.stats.Misses++
			return nil, false
		}
	}
	c.lru.MoveToFront(e.elem)
	c.stats.Hits++
	return e.result, true
}

// Put stores a result computed against the given tables.
func (c *Cache) Put(query string, result *engine.Relation, tables []*storage.Table) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.entries[query]; ok {
		c.dropLocked(old)
	}
	e := &entry{query: query, result: result, mem: result.MemBytes() + len(query)}
	for _, t := range tables {
		e.deps = append(e.deps, dep{table: t, version: t.Version()})
	}
	e.elem = c.lru.PushFront(e)
	c.entries[query] = e
	c.mem += e.mem
	c.stats.Inserts++
	for c.budget > 0 && c.mem > c.budget && c.lru.Len() > 0 {
		c.dropLocked(c.lru.Back().Value.(*entry))
		c.stats.Evictions++
	}
}

func (c *Cache) dropLocked(e *entry) {
	delete(c.entries, e.query)
	c.lru.Remove(e.elem)
	c.mem -= e.mem
}

// EntryMemBytes returns the memory of one entry (0 when absent).
func (c *Cache) EntryMemBytes(query string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[query]; ok {
		return e.mem
	}
	return 0
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.entries)
	s.MemBytes = c.mem
	return s
}

// Clear drops everything.
func (c *Cache) Clear() {
	c.mu.Lock()
	c.entries = make(map[string]*entry)
	c.lru.Init()
	c.mem = 0
	c.mu.Unlock()
}
