// Package automv implements automated materialized views, the second
// baseline the paper compares against (§3.2): repeating single-table
// aggregate query templates are detected, a generalized view is created with
// *predicate elevation* (filter columns move into the view's grouping so
// later literals can be applied on the view, Figure 8), queries matching the
// template are rewritten to scan the view, and the view is refreshed —
// incrementally for append-only histories, by full rebuild otherwise.
package automv

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/predcache/predcache/internal/engine"
	"github.com/predcache/predcache/internal/expr"
	"github.com/predcache/predcache/internal/sql"
	"github.com/predcache/predcache/internal/storage"
)

// Stats reports AutoMV activity.
type Stats struct {
	Hits                 int64
	Misses               int64
	ViewsCreated         int64
	IncrementalRefreshes int64
	FullRebuilds         int64
	RefreshRowsScanned   int64
	MemBytes             int
}

// View is one automated materialized view.
type View struct {
	key       string
	tableName string
	table     *storage.Table
	groupCols []string // base-table column names (incl. elevated filter cols)
	aggs      []engine.AggSpec

	data        *engine.Relation
	baseVersion uint64
	layoutEpoch uint64
	deleteOps   uint64
	watermarks  []int
}

// MemBytes returns the view's stored size.
func (v *View) MemBytes() int { return v.data.MemBytes() }

// Key returns the template key the view answers.
func (v *View) Key() string { return v.key }

// Manager detects templates and maintains views.
type Manager struct {
	mu        sync.Mutex
	cat       *storage.Catalog // immutable after NewManager
	views     map[string]*View // guarded by mu
	observed  map[string]int   // guarded by mu
	building  map[string]bool  // guarded by mu; templates with a build in flight
	threshold int              // immutable after NewManager
	stats     Stats            // guarded by mu
}

// NewManager creates a manager that materializes a template after it has
// been observed `threshold` times (the paper's system creates views for
// "repeating query templates"; threshold 2 means the second occurrence
// triggers creation).
func NewManager(cat *storage.Catalog, threshold int) *Manager {
	if threshold < 1 {
		threshold = 1
	}
	return &Manager{
		cat:       cat,
		views:     make(map[string]*View),
		observed:  make(map[string]int),
		building:  make(map[string]bool),
		threshold: threshold,
	}
}

// template describes an eligible statement.
type template struct {
	key        string
	tableName  string
	groupCols  []string
	aggs       []engine.AggSpec
	filter     expr.Pred // original filter (applied over the view on answer)
	stmtGroup  []string  // the query's own group-by columns
	selectCols []sqlItem
}

type sqlItem struct {
	name   string
	scalar expr.Scalar // over the view's post-aggregation columns
}

// Eligible extracts the view template from a statement, or reports false.
// Requirements: one table, aggregates present, plain column group-by, filter
// columns elevatable, no HAVING/ORDER BY/LIMIT, no count(distinct).
func Eligible(stmt *sql.SelectStmt, cat *storage.Catalog) (ok bool, tpl template) {
	if len(stmt.From) != 1 || stmt.From[0].Alias != "" {
		return false, tpl
	}
	if len(stmt.Having) > 0 || len(stmt.OrderBy) > 0 || stmt.Limit >= 0 {
		return false, tpl
	}
	tbl, found := cat.Table(stmt.From[0].Table)
	if !found {
		return false, tpl
	}
	tpl.tableName = stmt.From[0].Table

	colSet := map[string]bool{}
	for _, g := range stmt.GroupBy {
		cr, isCol := g.(*expr.ColRef)
		if !isCol || tbl.ColumnIndex(cr.Name) < 0 {
			return false, tpl
		}
		colSet[cr.Name] = true
		tpl.stmtGroup = append(tpl.stmtGroup, cr.Name)
	}
	// Predicate elevation: every filter column joins the view's group set.
	if stmt.Where != nil {
		for _, c := range stmt.Where.Columns(nil) {
			if tbl.ColumnIndex(c) < 0 {
				return false, tpl
			}
			colSet[c] = true
		}
		tpl.filter = stmt.Where
	}

	hasAgg := false
	aggSeen := map[string]bool{}
	for _, it := range stmt.Items {
		if len(it.Aggs) == 0 {
			// Must be a plain group column reference.
			cr, isCol := it.Scalar.(*expr.ColRef)
			if !isCol {
				return false, tpl
			}
			inGroup := false
			for _, g := range tpl.stmtGroup {
				if g == cr.Name {
					inGroup = true
				}
			}
			if !inGroup {
				return false, tpl
			}
			name := it.Alias
			if name == "" {
				name = cr.Name
			}
			tpl.selectCols = append(tpl.selectCols, sqlItem{name: name, scalar: expr.Col(cr.Name)})
			continue
		}
		hasAgg = true
		for _, call := range it.Aggs {
			if call.Distinct {
				return false, tpl
			}
			if call.Arg != nil {
				for _, c := range call.Arg.ScalarColumns(nil) {
					if tbl.ColumnIndex(c) < 0 {
						return false, tpl
					}
				}
			}
			if !aggSeen[call.Name()] {
				aggSeen[call.Name()] = true
				tpl.aggs = append(tpl.aggs, viewAggSpecs(call)...)
			}
		}
		name := it.Alias
		if name == "" {
			if cr, isCol := it.Scalar.(*expr.ColRef); isCol {
				name = cr.Name
			} else {
				name = it.Scalar.Key()
			}
		}
		tpl.selectCols = append(tpl.selectCols, sqlItem{name: name, scalar: rewriteAggRefs(it.Scalar)})
	}
	if !hasAgg {
		return false, tpl
	}
	// Deduplicate view agg specs by name.
	dedup := map[string]bool{}
	var aggs []engine.AggSpec
	for _, a := range tpl.aggs {
		if !dedup[a.Name] {
			dedup[a.Name] = true
			aggs = append(aggs, a)
		}
	}
	tpl.aggs = aggs

	for c := range colSet {
		tpl.groupCols = append(tpl.groupCols, c)
	}
	sort.Strings(tpl.groupCols)

	var aggNames []string
	for _, a := range tpl.aggs {
		aggNames = append(aggNames, a.Name)
	}
	sort.Strings(aggNames)
	tpl.key = "mv:" + tpl.tableName + "|group=" + strings.Join(tpl.groupCols, ",") + "|aggs=" + strings.Join(aggNames, ",")
	return true, tpl
}

// viewAggSpecs maps a query aggregate to the base aggregates the view must
// store so results can be re-aggregated after filtering: avg becomes
// sum+count, count(*) and count(col) become counts, sum/min/max map
// directly.
func viewAggSpecs(call *sql.AggCall) []engine.AggSpec {
	switch call.Func {
	case engine.AggAvg:
		return []engine.AggSpec{
			{Func: engine.AggSum, Arg: call.Arg, Name: "sum(" + call.Arg.Key() + ")"},
			{Func: engine.AggCount, Name: "count(*)"},
		}
	case engine.AggCount:
		return []engine.AggSpec{{Func: engine.AggCount, Name: "count(*)"}}
	default:
		return []engine.AggSpec{{Func: call.Func, Arg: call.Arg, Name: call.Name()}}
	}
}

// rewriteAggRefs maps select scalars over query aggregates onto view
// columns: avg(x) -> sum(x)/count(*), count(x)/count(*) -> count(*).
func rewriteAggRefs(s expr.Scalar) expr.Scalar {
	switch t := s.(type) {
	case *expr.ColRef:
		name := t.Name
		if strings.HasPrefix(name, "avg(") {
			inner := strings.TrimSuffix(strings.TrimPrefix(name, "avg("), ")")
			return expr.Arith(expr.Col("sum("+inner+")"), expr.Div, expr.Col("count(*)"))
		}
		if strings.HasPrefix(name, "count(") {
			return expr.Col("count(*)")
		}
		return t
	case *expr.ArithScalar:
		return expr.Arith(rewriteAggRefs(t.L), t.Op, rewriteAggRefs(t.R))
	case *expr.CaseScalar:
		return expr.Case(t.Cond, rewriteAggRefs(t.Then), rewriteAggRefs(t.Else))
	default:
		return s
	}
}

// Observe records a statement; once its template repeats `threshold` times,
// the view is created. Returns the view when one exists afterwards.
//
// The materializing scan runs outside m.mu: building a view executes a full
// aggregation over the base table, and holding the manager lock across that
// scan would stall every concurrent Observe and TryAnswer. The building set
// guarantees a single builder per template; concurrent observers of a
// template mid-build simply report no view yet.
func (m *Manager) Observe(stmt *sql.SelectStmt) (*View, error) {
	ok, tpl := Eligible(stmt, m.cat)
	if !ok {
		return nil, nil
	}
	m.mu.Lock()
	if v, exists := m.views[tpl.key]; exists {
		m.mu.Unlock()
		return v, nil
	}
	m.observed[tpl.key]++
	if m.observed[tpl.key] < m.threshold || m.building[tpl.key] {
		m.mu.Unlock()
		return nil, nil
	}
	m.building[tpl.key] = true
	m.mu.Unlock()

	v, scanned, err := m.build(tpl)

	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.building, tpl.key)
	m.stats.RefreshRowsScanned += scanned
	if err != nil {
		return nil, err
	}
	m.views[tpl.key] = v
	m.stats.ViewsCreated++
	return v, nil
}

// build materializes the view. It takes no manager state beyond the
// immutable catalog, so callers may (and Observe does) run it unlocked;
// the scanned row count is returned for the caller to fold into stats
// under m.mu.
func (m *Manager) build(tpl template) (*View, int64, error) {
	tbl, ok := m.cat.Table(tpl.tableName)
	if !ok {
		return nil, 0, fmt.Errorf("automv: table %s disappeared", tpl.tableName)
	}
	plan := &engine.Agg{
		Input:   &engine.Scan{Table: tpl.tableName},
		GroupBy: tpl.groupCols,
		Aggs:    tpl.aggs,
	}
	stats := &storage.ScanStats{}
	ec := &engine.ExecCtx{Catalog: m.cat, Snapshot: m.cat.Snapshot(), Stats: stats}
	rel, err := plan.Execute(ec)
	if err != nil {
		return nil, 0, err
	}
	v := &View{
		key:         tpl.key,
		tableName:   tpl.tableName,
		table:       tbl,
		groupCols:   tpl.groupCols,
		aggs:        tpl.aggs,
		data:        rel,
		baseVersion: tbl.Version(),
		layoutEpoch: tbl.LayoutEpoch(),
		deleteOps:   tbl.DeleteOps(),
	}
	v.watermarks = sliceRows(tbl)
	return v, stats.RowsScanned.Load(), nil
}

func sliceRows(tbl *storage.Table) []int {
	unlock := tbl.RLockScan()
	defer unlock()
	out := make([]int, tbl.NumSlices())
	for i := range out {
		out[i] = tbl.Slice(i).NumRows()
	}
	return out
}

// TryAnswer answers the statement from a matching view, refreshing it first
// if the base table changed. ok is false when no view matches.
func (m *Manager) TryAnswer(stmt *sql.SelectStmt) (*engine.Relation, bool, error) {
	eligible, tpl := Eligible(stmt, m.cat)
	if !eligible {
		return nil, false, nil
	}
	m.mu.Lock()
	v, exists := m.views[tpl.key]
	if !exists {
		m.stats.Misses++
		m.mu.Unlock()
		return nil, false, nil
	}
	// Refresh must run under mu — it mutates the shared *View in place, and
	// readers obtain views only through m.views under the same lock. mu is a
	// leaf lock (storage and engine never acquire it), so blocking while it
	// is held cannot participate in a cycle.
	// pclint:allow lockorder: deliberate — refresh serializes view mutation; mu is a leaf lock.
	if err := m.refreshLocked(v); err != nil {
		m.mu.Unlock()
		return nil, false, err
	}
	m.stats.Hits++
	data := v.data
	m.mu.Unlock()

	// Rewrite: filter the view, re-aggregate to the query's grouping, then
	// project the select items.
	var node engine.Node = &engine.Materialized{Rel: data}
	if tpl.filter != nil {
		node = &engine.Filter{Input: node, Pred: tpl.filter}
	}
	reAgg := &engine.Agg{Input: node, GroupBy: tpl.stmtGroup}
	for _, a := range tpl.aggs {
		merged := a
		merged.Arg = expr.Col(a.Name)
		switch a.Func {
		case engine.AggCount:
			// Counts merge by summation.
			merged.Func = engine.AggSum
		case engine.AggSum, engine.AggMin, engine.AggMax:
			// sum-of-sums / min-of-mins / max-of-maxes.
		}
		reAgg.Aggs = append(reAgg.Aggs, merged)
	}
	ec := &engine.ExecCtx{Catalog: m.cat, Snapshot: m.cat.Snapshot()}
	aggRel, err := reAgg.Execute(ec)
	if err != nil {
		return nil, false, err
	}
	// Counts re-aggregated via SUM come back as floats; restore int typing
	// before the final projection so count columns keep SQL semantics.
	coerceCounts(aggRel, tpl.aggs)
	proj := &engine.Project{Input: &engine.Materialized{Rel: aggRel}}
	for _, it := range tpl.selectCols {
		proj.Exprs = append(proj.Exprs, engine.NamedScalar{Expr: it.scalar, Name: it.name})
	}
	rel, err := proj.Execute(ec)
	if err != nil {
		return nil, false, err
	}
	return rel, true, nil
}

// refreshLocked brings a view up to date: appended rows merge incrementally
// (the tail beyond each slice watermark is aggregated and folded in);
// deletes or layout changes force a full rebuild — the expensive path the
// paper charges MVs for.
func (m *Manager) refreshLocked(v *View) error {
	if v.table.Version() == v.baseVersion {
		return nil
	}
	if v.table.LayoutEpoch() != v.layoutEpoch || v.table.DeleteOps() != v.deleteOps {
		m.stats.FullRebuilds++
		nv, scanned, err := m.build(template{
			key: v.key, tableName: v.tableName, groupCols: v.groupCols, aggs: v.aggs,
		})
		m.stats.RefreshRowsScanned += scanned
		if err != nil {
			return err
		}
		*v = *nv
		return nil
	}
	// Incremental append refresh.
	tail, scanned, err := m.tailRelation(v)
	if err != nil {
		return err
	}
	m.stats.RefreshRowsScanned += int64(scanned)
	m.stats.IncrementalRefreshes++
	if tail.NumRows() > 0 {
		tailAgg := &engine.Agg{Input: &engine.Materialized{Rel: tail}, GroupBy: v.groupCols}
		tailAgg.Aggs = append(tailAgg.Aggs, v.aggs...)
		merged := &engine.Agg{
			Input:   &engine.Union{Inputs: []engine.Node{&engine.Materialized{Rel: v.data}, tailAgg}},
			GroupBy: v.groupCols,
		}
		for _, a := range v.aggs {
			spec := a
			spec.Arg = expr.Col(a.Name)
			if a.Func == engine.AggCount {
				spec.Func = engine.AggSum
			}
			merged.Aggs = append(merged.Aggs, spec)
		}
		ec := &engine.ExecCtx{Catalog: m.cat, Snapshot: m.cat.Snapshot()}
		rel, err := merged.Execute(ec)
		if err != nil {
			return err
		}
		// Counts merged via sum come back as floats; coerce back to ints.
		coerceCounts(rel, v.aggs)
		v.data = rel
	}
	v.baseVersion = v.table.Version()
	v.watermarks = sliceRows(v.table)
	return nil
}

// coerceCounts converts float sum-of-count columns back to integer counts.
func coerceCounts(rel *engine.Relation, aggs []engine.AggSpec) {
	for _, a := range aggs {
		if a.Func != engine.AggCount {
			continue
		}
		c := rel.ColByName(a.Name)
		if c == nil || c.Type != storage.Float64 {
			continue
		}
		ints := make([]int64, len(c.Floats))
		for i, f := range c.Floats {
			ints[i] = int64(f + 0.5)
		}
		c.Type = storage.Int64
		c.Ints = ints
		c.Floats = nil
	}
}

// tailRelation materializes the rows appended since the view's watermarks,
// restricted to the columns the view needs.
func (m *Manager) tailRelation(v *View) (*engine.Relation, int, error) {
	needed := map[string]bool{}
	for _, g := range v.groupCols {
		needed[g] = true
	}
	for _, a := range v.aggs {
		if a.Arg != nil {
			for _, c := range a.Arg.ScalarColumns(nil) {
				needed[c] = true
			}
		}
	}
	var cols []string
	for c := range needed {
		cols = append(cols, c)
	}
	sort.Strings(cols)

	tbl := v.table
	unlock := tbl.RLockScan()
	defer unlock()
	outCols := make([]engine.RelCol, len(cols))
	colIdx := make([]int, len(cols))
	for i, c := range cols {
		ci := tbl.ColumnIndex(c)
		if ci < 0 {
			return nil, 0, fmt.Errorf("automv: column %s missing", c)
		}
		colIdx[i] = ci
		outCols[i] = engine.RelCol{Name: c, Type: tbl.ColumnType(ci), Dict: tbl.Dict(ci)}
	}
	scanned := 0
	iScratch := make([]int64, storage.BlockSize)
	fScratch := make([]float64, storage.BlockSize)
	for si := 0; si < tbl.NumSlices(); si++ {
		s := tbl.Slice(si)
		start := 0
		if si < len(v.watermarks) {
			start = v.watermarks[si]
		}
		for row := start; row < s.NumRows(); row++ {
			scanned++
			for i, ci := range colIdx {
				col := s.Column(ci)
				if outCols[i].Type == storage.Float64 {
					outCols[i].Floats = append(outCols[i].Floats, col.FloatAt(row, fScratch))
				} else {
					outCols[i].Ints = append(outCols[i].Ints, col.IntAt(row, iScratch))
				}
			}
		}
	}
	rel, err := engine.NewRelation(outCols)
	return rel, scanned, err
}

// Stats returns a snapshot of the counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.stats
	for _, v := range m.views {
		s.MemBytes += v.MemBytes()
	}
	return s
}

// ViewFor returns the view matching the statement's template, if any.
func (m *Manager) ViewFor(stmt *sql.SelectStmt) (*View, bool) {
	ok, tpl := Eligible(stmt, m.cat)
	if !ok {
		return nil, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	v, exists := m.views[tpl.key]
	return v, exists
}
