package automv

import (
	"math"
	"math/rand"
	"testing"

	"github.com/predcache/predcache/internal/sql"
	"github.com/predcache/predcache/internal/storage"
)

type fix struct {
	cat   *storage.Catalog
	tbl   *storage.Table
	qty   []int64
	price []float64
	mode  []string
	day   []int64
}

func setup(t *testing.T, rows int, seed int64) *fix {
	t.Helper()
	f := &fix{cat: storage.NewCatalog()}
	schema := storage.Schema{
		{Name: "qty", Type: storage.Int64},
		{Name: "price", Type: storage.Float64},
		{Name: "mode", Type: storage.String},
		{Name: "day", Type: storage.Date},
	}
	tbl, err := f.cat.CreateTable("sales", schema, 2)
	if err != nil {
		t.Fatal(err)
	}
	f.tbl = tbl
	f.append(t, rows, seed)
	return f
}

func (f *fix) append(t *testing.T, rows int, seed int64) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	modes := []string{"AIR", "MAIL", "SHIP"}
	b := storage.NewBatch(f.tbl.Schema())
	for i := 0; i < rows; i++ {
		q := int64(r.Intn(50) + 1)
		p := float64(r.Intn(10000)) / 100
		m := modes[r.Intn(3)]
		d := int64(9000 + r.Intn(100))
		f.qty = append(f.qty, q)
		f.price = append(f.price, p)
		f.mode = append(f.mode, m)
		f.day = append(f.day, d)
		b.Cols[0].Ints = append(b.Cols[0].Ints, q)
		b.Cols[1].Floats = append(b.Cols[1].Floats, p)
		b.Cols[2].Strings = append(b.Cols[2].Strings, m)
		b.Cols[3].Ints = append(b.Cols[3].Ints, d)
	}
	b.N = rows
	if err := f.tbl.Append(b, f.cat.NextXID()); err != nil {
		t.Fatal(err)
	}
}

func mustParse(t *testing.T, q string) *sql.SelectStmt {
	t.Helper()
	stmt, err := sql.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	return stmt
}

func approx(a, b float64) bool {
	return math.Abs(a-b) < 1e-6*(1+math.Abs(a)+math.Abs(b))
}

const q6like = "select sum(price) as rev, count(*) as n from sales where mode = '%s' and qty >= %d group by day"

func TestEligibility(t *testing.T) {
	f := setup(t, 100, 1)
	good := []string{
		"select mode, sum(price) from sales group by mode",
		"select sum(price) from sales where qty > 5",
		"select day, avg(price) as ap from sales where mode = 'AIR' group by day",
		"select count(*) from sales",
	}
	for _, q := range good {
		if ok, _ := Eligible(mustParse(t, q), f.cat); !ok {
			t.Errorf("eligible query rejected: %s", q)
		}
	}
	bad := []string{
		"select qty from sales where qty > 5",                         // no aggregate
		"select mode, sum(price) from sales group by mode limit 5",    // limit
		"select mode, sum(price) from sales group by mode order by 1", // order
		"select count(distinct mode) from sales",                      // distinct
		"select sum(price) from sales having sum(price) > 5",          // having
	}
	for _, q := range bad {
		if ok, _ := Eligible(mustParse(t, q), f.cat); ok {
			t.Errorf("ineligible query accepted: %s", q)
		}
	}
}

func TestTemplateGeneralization(t *testing.T) {
	f := setup(t, 100, 2)
	// Same template, different literals -> same key (predicate elevation).
	_, t1 := Eligible(mustParse(t, "select sum(price) from sales where mode = 'AIR' and qty >= 10"), f.cat)
	_, t2 := Eligible(mustParse(t, "select sum(price) from sales where mode = 'SHIP' and qty >= 40"), f.cat)
	if t1.key != t2.key {
		t.Fatalf("templates differ:\n%s\n%s", t1.key, t2.key)
	}
	// Different aggregate -> different key.
	_, t3 := Eligible(mustParse(t, "select max(price) from sales where mode = 'AIR' and qty >= 10"), f.cat)
	if t1.key == t3.key {
		t.Fatal("different aggs share a template")
	}
}

func TestObserveCreatesAfterThreshold(t *testing.T) {
	f := setup(t, 2000, 3)
	m := NewManager(f.cat, 2)
	stmt := mustParse(t, "select sum(price) as rev from sales where mode = 'AIR'")
	v, err := m.Observe(stmt)
	if err != nil || v != nil {
		t.Fatalf("view created on first observation: %v %v", v, err)
	}
	v, err = m.Observe(stmt)
	if err != nil || v == nil {
		t.Fatalf("view not created on second observation: %v", err)
	}
	if m.Stats().ViewsCreated != 1 {
		t.Fatal("creation not counted")
	}
	if v.MemBytes() <= 0 {
		t.Fatal("view mem")
	}
	if got, ok := m.ViewFor(stmt); !ok || got != v {
		t.Fatal("ViewFor lookup failed")
	}
}

func TestAnswerMatchesDirectExecution(t *testing.T) {
	f := setup(t, 5000, 4)
	m := NewManager(f.cat, 1)
	stmt := mustParse(t, "select sum(price) as rev, count(*) as n from sales where mode = 'AIR' and qty >= 30")
	if _, err := m.Observe(stmt); err != nil {
		t.Fatal(err)
	}
	rel, ok, err := m.TryAnswer(stmt)
	if err != nil || !ok {
		t.Fatalf("no answer: %v", err)
	}
	var wantRev float64
	var wantN int64
	for i := range f.qty {
		if f.mode[i] == "AIR" && f.qty[i] >= 30 {
			wantRev += f.price[i]
			wantN++
		}
	}
	if got := rel.ColByName("rev").Floats[0]; !approx(got, wantRev) {
		t.Fatalf("rev %f want %f", got, wantRev)
	}
	if got := rel.ColByName("n").Ints[0]; got != wantN {
		t.Fatalf("n %d want %d", got, wantN)
	}

	// Same template with different literals answered by the same view.
	stmt2 := mustParse(t, "select sum(price) as rev, count(*) as n from sales where mode = 'SHIP' and qty >= 10")
	rel2, ok, err := m.TryAnswer(stmt2)
	if err != nil || !ok {
		t.Fatalf("generalized answer failed: %v", err)
	}
	wantRev, wantN = 0, 0
	for i := range f.qty {
		if f.mode[i] == "SHIP" && f.qty[i] >= 10 {
			wantRev += f.price[i]
			wantN++
		}
	}
	if got := rel2.ColByName("rev").Floats[0]; !approx(got, wantRev) {
		t.Fatalf("rev2 %f want %f", got, wantRev)
	}
	if got := rel2.ColByName("n").Ints[0]; got != wantN {
		t.Fatalf("n2 %d want %d", got, wantN)
	}
	if m.Stats().Hits != 2 {
		t.Fatalf("hits %d", m.Stats().Hits)
	}
}

func TestAnswerWithGroupByAndAvg(t *testing.T) {
	f := setup(t, 4000, 5)
	m := NewManager(f.cat, 1)
	stmt := mustParse(t, "select mode, avg(price) as ap, count(*) as n from sales where qty >= 25 group by mode")
	if _, err := m.Observe(stmt); err != nil {
		t.Fatal(err)
	}
	rel, ok, err := m.TryAnswer(stmt)
	if err != nil || !ok {
		t.Fatalf("no answer: %v", err)
	}
	type ag struct {
		sum float64
		n   int64
	}
	ref := map[string]*ag{}
	for i := range f.qty {
		if f.qty[i] >= 25 {
			a := ref[f.mode[i]]
			if a == nil {
				a = &ag{}
				ref[f.mode[i]] = a
			}
			a.sum += f.price[i]
			a.n++
		}
	}
	if rel.NumRows() != len(ref) {
		t.Fatalf("groups %d want %d", rel.NumRows(), len(ref))
	}
	modeCol := rel.ColByName("mode")
	apCol := rel.ColByName("ap")
	nCol := rel.ColByName("n")
	for row := 0; row < rel.NumRows(); row++ {
		mname := modeCol.Dict.Value(modeCol.Ints[row])
		a := ref[mname]
		if !approx(apCol.Floats[row], a.sum/float64(a.n)) || nCol.Ints[row] != a.n {
			t.Fatalf("group %s mismatch", mname)
		}
	}
}

func TestIncrementalRefreshOnAppend(t *testing.T) {
	f := setup(t, 3000, 6)
	m := NewManager(f.cat, 1)
	stmt := mustParse(t, "select sum(price) as rev from sales where mode = 'MAIL'")
	if _, err := m.Observe(stmt); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := m.TryAnswer(stmt); !ok {
		t.Fatal("initial answer failed")
	}
	f.append(t, 1000, 7)
	rel, ok, err := m.TryAnswer(stmt)
	if err != nil || !ok {
		t.Fatalf("post-append answer failed: %v", err)
	}
	var want float64
	for i := range f.qty {
		if f.mode[i] == "MAIL" {
			want += f.price[i]
		}
	}
	if got := rel.ColByName("rev").Floats[0]; !approx(got, want) {
		t.Fatalf("rev %f want %f", got, want)
	}
	st := m.Stats()
	if st.IncrementalRefreshes == 0 {
		t.Fatal("no incremental refresh")
	}
	if st.FullRebuilds != 0 {
		t.Fatal("append forced a full rebuild")
	}
	// Incremental refresh must have scanned only about the appended rows
	// (initial build scanned 3000; the refresh adds ~1000).
	if st.RefreshRowsScanned > 3000+1100 {
		t.Fatalf("refresh scanned too much: %d", st.RefreshRowsScanned)
	}
}

func TestFullRebuildOnDelete(t *testing.T) {
	f := setup(t, 3000, 8)
	m := NewManager(f.cat, 1)
	stmt := mustParse(t, "select count(*) as n from sales where mode = 'AIR'")
	if _, err := m.Observe(stmt); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := m.TryAnswer(stmt); !ok {
		t.Fatal("initial answer failed")
	}
	// Delete some physical rows of slice 0 and fix the reference.
	unlock := f.tbl.RLockScan()
	s := f.tbl.Slice(0)
	scratch := make([]int64, storage.BlockSize)
	modeCol := f.tbl.ColumnIndex("mode")
	s.Column(modeCol).ReadIntBlock(0, scratch)
	unlock()
	f.tbl.DeleteRows(0, []int{0, 1, 2, 3, 4}, f.cat.NextXID())
	deletedAir := int64(0)
	dict := f.tbl.Dict(modeCol)
	for i := 0; i < 5; i++ {
		if dict.Value(scratch[i]) == "AIR" {
			deletedAir++
		}
	}

	rel, ok, err := m.TryAnswer(stmt)
	if err != nil || !ok {
		t.Fatalf("post-delete answer failed: %v", err)
	}
	var want int64
	for i := range f.mode {
		if f.mode[i] == "AIR" {
			want++
		}
	}
	want -= deletedAir
	if got := rel.ColByName("n").Ints[0]; got != want {
		t.Fatalf("n %d want %d", got, want)
	}
	if m.Stats().FullRebuilds == 0 {
		t.Fatal("delete did not force a rebuild")
	}
}

func TestMissWithoutView(t *testing.T) {
	f := setup(t, 100, 9)
	m := NewManager(f.cat, 5)
	stmt := mustParse(t, "select sum(price) from sales")
	if _, ok, _ := m.TryAnswer(stmt); ok {
		t.Fatal("answered without a view")
	}
	if m.Stats().Misses != 1 {
		t.Fatal("miss not counted")
	}
	// Ineligible statements do not count as misses.
	if _, ok, _ := m.TryAnswer(mustParse(t, "select qty from sales where qty > 5")); ok {
		t.Fatal("ineligible answered")
	}
}
