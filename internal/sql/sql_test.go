package sql_test

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	predcache "github.com/predcache/predcache"
	"github.com/predcache/predcache/internal/sql"
	"github.com/predcache/predcache/internal/storage"
)

type fixture struct {
	db *predcache.DB
	// raw reference data
	oID, oCust, oDate []int64
	oTotal            []float64
	oStatus           []string
	lOrder, lQty      []int64
	lShip             []int64
	lPrice, lDisc     []float64
	lMode             []string
}

func newFixture(t testing.TB, orders, lines int, seed int64) *fixture {
	t.Helper()
	f := &fixture{db: predcache.Open(predcache.WithSlices(2))}
	if err := f.db.CreateTable("orders", predcache.Schema{
		{Name: "o_id", Type: predcache.Int64},
		{Name: "o_cust", Type: predcache.Int64},
		{Name: "o_date", Type: predcache.Date},
		{Name: "o_total", Type: predcache.Float64},
		{Name: "o_status", Type: predcache.String},
	}); err != nil {
		t.Fatal(err)
	}
	if err := f.db.CreateTable("lineitem", predcache.Schema{
		{Name: "l_order", Type: predcache.Int64},
		{Name: "l_qty", Type: predcache.Int64},
		{Name: "l_price", Type: predcache.Float64},
		{Name: "l_disc", Type: predcache.Float64},
		{Name: "l_mode", Type: predcache.String},
		{Name: "l_ship", Type: predcache.Date},
	}); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(seed))
	statuses := []string{"OPEN", "DONE", "FAIL"}
	modes := []string{"AIR", "MAIL", "SHIP"}
	ob := predcache.NewBatch(predcache.Schema{
		{Name: "o_id", Type: predcache.Int64}, {Name: "o_cust", Type: predcache.Int64},
		{Name: "o_date", Type: predcache.Date}, {Name: "o_total", Type: predcache.Float64},
		{Name: "o_status", Type: predcache.String},
	})
	base, _ := storage.ParseDate("1995-01-01")
	for i := 0; i < orders; i++ {
		f.oID = append(f.oID, int64(i))
		f.oCust = append(f.oCust, int64(r.Intn(100)))
		f.oDate = append(f.oDate, base+int64(r.Intn(365)))
		f.oTotal = append(f.oTotal, float64(r.Intn(100000))/100)
		f.oStatus = append(f.oStatus, statuses[r.Intn(3)])
	}
	ob.Cols[0].Ints = f.oID
	ob.Cols[1].Ints = f.oCust
	ob.Cols[2].Ints = f.oDate
	ob.Cols[3].Floats = f.oTotal
	ob.Cols[4].Strings = f.oStatus
	ob.N = orders
	if err := f.db.Insert("orders", ob); err != nil {
		t.Fatal(err)
	}
	lb := predcache.NewBatch(predcache.Schema{
		{Name: "l_order", Type: predcache.Int64}, {Name: "l_qty", Type: predcache.Int64},
		{Name: "l_price", Type: predcache.Float64}, {Name: "l_disc", Type: predcache.Float64},
		{Name: "l_mode", Type: predcache.String}, {Name: "l_ship", Type: predcache.Date},
	})
	for i := 0; i < lines; i++ {
		f.lOrder = append(f.lOrder, int64(r.Intn(orders)))
		f.lQty = append(f.lQty, int64(r.Intn(50)+1))
		f.lPrice = append(f.lPrice, float64(r.Intn(10000))/100)
		f.lDisc = append(f.lDisc, float64(r.Intn(10))/100)
		f.lMode = append(f.lMode, modes[r.Intn(3)])
		f.lShip = append(f.lShip, base+int64(r.Intn(365)))
	}
	lb.Cols[0].Ints = f.lOrder
	lb.Cols[1].Ints = f.lQty
	lb.Cols[2].Floats = f.lPrice
	lb.Cols[3].Floats = f.lDisc
	lb.Cols[4].Strings = f.lMode
	lb.Cols[5].Ints = f.lShip
	lb.N = lines
	if err := f.db.Insert("lineitem", lb); err != nil {
		t.Fatal(err)
	}
	return f
}

func approx(a, b float64) bool {
	return math.Abs(a-b) < 1e-6*(1+math.Abs(a)+math.Abs(b))
}

func TestSimpleSelect(t *testing.T) {
	f := newFixture(t, 500, 3000, 1)
	res, err := f.db.Query("select l_order, l_qty from lineitem where l_qty >= 45 and l_mode = 'AIR' order by l_order, l_qty desc limit 20")
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for i := range f.lQty {
		if f.lQty[i] >= 45 && f.lMode[i] == "AIR" {
			count++
		}
	}
	wantRows := count
	if wantRows > 20 {
		wantRows = 20
	}
	if res.NumRows() != wantRows {
		t.Fatalf("rows %d want %d", res.NumRows(), wantRows)
	}
	ord := res.ColByName("l_order")
	for i := 1; i < res.NumRows(); i++ {
		if ord.Ints[i] < ord.Ints[i-1] {
			t.Fatal("not sorted")
		}
	}
}

func TestCountStar(t *testing.T) {
	f := newFixture(t, 300, 2000, 2)
	res, err := f.db.Query("select count(*) from lineitem where l_disc = 0.05")
	if err != nil {
		t.Fatal(err)
	}
	want := int64(0)
	for i := range f.lDisc {
		if f.lDisc[i] == 0.05 {
			want++
		}
	}
	if got := res.Col(0).Ints[0]; got != want {
		t.Fatalf("count %d want %d", got, want)
	}
}

func TestGroupByHavingOrder(t *testing.T) {
	f := newFixture(t, 300, 5000, 3)
	res, err := f.db.Query(`
		select l_mode, sum(l_qty) as total_qty, count(*) as cnt, avg(l_price) as ap
		from lineitem
		where l_qty > 5
		group by l_mode
		having count(*) > 10
		order by total_qty desc`)
	if err != nil {
		t.Fatal(err)
	}
	type agg struct {
		qty float64
		cnt int64
		sum float64
	}
	ref := map[string]*agg{}
	for i := range f.lQty {
		if f.lQty[i] > 5 {
			a := ref[f.lMode[i]]
			if a == nil {
				a = &agg{}
				ref[f.lMode[i]] = a
			}
			a.qty += float64(f.lQty[i])
			a.cnt++
			a.sum += f.lPrice[i]
		}
	}
	kept := 0
	for _, a := range ref {
		if a.cnt > 10 {
			kept++
		}
	}
	if res.NumRows() != kept {
		t.Fatalf("groups %d want %d", res.NumRows(), kept)
	}
	mode := res.ColByName("l_mode")
	tq := res.ColByName("total_qty")
	cnt := res.ColByName("cnt")
	ap := res.ColByName("ap")
	prev := math.Inf(1)
	for row := 0; row < res.NumRows(); row++ {
		m := mode.Dict.Value(mode.Ints[row])
		a := ref[m]
		if !approx(tq.Floats[row], a.qty) || cnt.Ints[row] != a.cnt || !approx(ap.Floats[row], a.sum/float64(a.cnt)) {
			t.Fatalf("group %s mismatch", m)
		}
		if tq.Floats[row] > prev {
			t.Fatal("not sorted by total_qty desc")
		}
		prev = tq.Floats[row]
	}
}

func TestImplicitJoin(t *testing.T) {
	f := newFixture(t, 400, 4000, 4)
	res, err := f.db.Query(`
		select count(*) as n, sum(l_price * (1 - l_disc)) as revenue
		from lineitem, orders
		where o_id = l_order
		  and o_status = 'OPEN'
		  and l_qty >= 30`)
	if err != nil {
		t.Fatal(err)
	}
	open := map[int64]bool{}
	for i := range f.oID {
		if f.oStatus[i] == "OPEN" {
			open[f.oID[i]] = true
		}
	}
	var wantN int64
	var wantRev float64
	for i := range f.lQty {
		if f.lQty[i] >= 30 && open[f.lOrder[i]] {
			wantN++
			wantRev += f.lPrice[i] * (1 - f.lDisc[i])
		}
	}
	if got := res.ColByName("n").Ints[0]; got != wantN {
		t.Fatalf("count %d want %d", got, wantN)
	}
	if got := res.ColByName("revenue").Floats[0]; !approx(got, wantRev) {
		t.Fatalf("revenue %f want %f", got, wantRev)
	}
}

func TestAggExpressionRatio(t *testing.T) {
	f := newFixture(t, 200, 3000, 5)
	res, err := f.db.Query(`
		select 100 * sum(case when l_mode = 'AIR' then l_price else 0 end) / sum(l_price) as promo
		from lineitem`)
	if err != nil {
		t.Fatal(err)
	}
	var num, den float64
	for i := range f.lPrice {
		if f.lMode[i] == "AIR" {
			num += f.lPrice[i]
		}
		den += f.lPrice[i]
	}
	if got := res.Col(0).Floats[0]; !approx(got, 100*num/den) {
		t.Fatalf("promo %f want %f", got, 100*num/den)
	}
}

func TestDateLiteralsAndIntervals(t *testing.T) {
	f := newFixture(t, 200, 3000, 6)
	res, err := f.db.Query(`
		select count(*) from lineitem
		where l_ship >= date '1995-03-01'
		  and l_ship < date '1995-03-01' + interval '1' month`)
	if err != nil {
		t.Fatal(err)
	}
	lo, _ := storage.ParseDate("1995-03-01")
	hi, _ := storage.ParseDate("1995-04-01")
	var want int64
	for _, d := range f.lShip {
		if d >= lo && d < hi {
			want++
		}
	}
	if got := res.Col(0).Ints[0]; got != want {
		t.Fatalf("count %d want %d", got, want)
	}
}

func TestBetweenInLike(t *testing.T) {
	f := newFixture(t, 200, 3000, 7)
	res, err := f.db.Query(`
		select count(*) from lineitem
		where l_qty between 10 and 20
		  and l_mode in ('AIR', 'MAIL')
		  and l_mode like '%AI%'`)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for i := range f.lQty {
		q := f.lQty[i]
		m := f.lMode[i]
		if q >= 10 && q <= 20 && (m == "AIR" || m == "MAIL") && strings.Contains(m, "AI") {
			want++
		}
	}
	if got := res.Col(0).Ints[0]; got != want {
		t.Fatalf("count %d want %d", got, want)
	}
}

func TestExtractYearGrouping(t *testing.T) {
	f := newFixture(t, 200, 2000, 8)
	res, err := f.db.Query(`
		select extract(year from o_date) as yr, count(*) as n
		from orders group by o_date order by yr limit 5`)
	// group by o_date then extract year would give many groups; instead we
	// check grouping by the extracted year directly is rejected gracefully
	// and use a simpler validation below.
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() == 0 {
		t.Fatal("no rows")
	}
	yr := res.ColByName("yr")
	if yr.Ints[0] != 1995 {
		t.Fatalf("year %d", yr.Ints[0])
	}
}

func TestCountDistinct(t *testing.T) {
	f := newFixture(t, 300, 2500, 9)
	res, err := f.db.Query("select count(distinct l_order) from lineitem where l_qty > 25")
	if err != nil {
		t.Fatal(err)
	}
	set := map[int64]bool{}
	for i := range f.lQty {
		if f.lQty[i] > 25 {
			set[f.lOrder[i]] = true
		}
	}
	if got := res.Col(0).Ints[0]; got != int64(len(set)) {
		t.Fatalf("distinct %d want %d", got, len(set))
	}
}

func TestSelfJoinWithAliases(t *testing.T) {
	f := newFixture(t, 100, 500, 10)
	_ = f
	res, err := f.db.Query(`
		select count(*) from orders as a, orders as b
		where a.o_id = b.o_id and a.o_status = 'OPEN'`)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for i := range f.oID {
		if f.oStatus[i] == "OPEN" {
			want++
		}
	}
	if got := res.Col(0).Ints[0]; got != want {
		t.Fatalf("self join count %d want %d", got, want)
	}
}

func TestMinMaxOnDates(t *testing.T) {
	f := newFixture(t, 300, 100, 11)
	res, err := f.db.Query("select min(o_date) as lo, max(o_date) as hi from orders")
	if err != nil {
		t.Fatal(err)
	}
	var lo, hi int64 = 1 << 62, -1
	for _, d := range f.oDate {
		if d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	}
	if res.ColByName("lo").Ints[0] != lo || res.ColByName("hi").Ints[0] != hi {
		t.Fatal("min/max date wrong")
	}
	// Dates render as dates.
	if res.StringValue(0, 0) != storage.FormatDate(lo) {
		t.Fatalf("date formatting: %s", res.StringValue(0, 0))
	}
}

func TestOrderByPositionAndAggregate(t *testing.T) {
	f := newFixture(t, 100, 2000, 12)
	_ = f
	res, err := f.db.Query("select l_mode, count(*) from lineitem group by l_mode order by 2 desc")
	if err != nil {
		t.Fatal(err)
	}
	c := res.Col(1)
	for i := 1; i < res.NumRows(); i++ {
		if c.Ints[i] > c.Ints[i-1] {
			t.Fatal("not sorted by position 2")
		}
	}
	res2, err := f.db.Query("select l_mode, count(*) from lineitem group by l_mode order by count(*) desc")
	if err != nil {
		t.Fatal(err)
	}
	if res2.NumRows() != res.NumRows() {
		t.Fatal("agg order by mismatch")
	}
}

func TestLiteralFirstComparison(t *testing.T) {
	f := newFixture(t, 100, 1000, 13)
	res, err := f.db.Query("select count(*) from lineitem where 40 <= l_qty")
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for _, q := range f.lQty {
		if q >= 40 {
			want++
		}
	}
	if res.Col(0).Ints[0] != want {
		t.Fatal("flipped comparison wrong")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"select",
		"select from t",
		"select * from", // * unsupported anyway
		"select a from t where",
		"select a from t limit x",
		"select a from t order by",
		"select sum(sum(a)) from t",
		"select a from t where a like 5",
		"select a from t where a in ()",
		"select a from t; select b from t",
		"select a from t where a ~ 5",
		"select a from 'str'",
		"select count(* from t",
		"select a from t where date 'nope' < a",
	}
	for _, q := range bad {
		if _, err := sql.Parse(q); err == nil {
			t.Errorf("parse accepted %q", q)
		}
	}
}

func TestPlanErrors(t *testing.T) {
	f := newFixture(t, 10, 10, 14)
	bad := []string{
		"select x from lineitem",                            // unknown column
		"select l_qty from nope",                            // unknown table
		"select l_qty from lineitem, orders",                // cartesian
		"select o_id from orders, orders",                   // duplicate table
		"select l_qty from lineitem order by zzz",           // unknown order col
		"select count(*) from lineitem order by sum(l_qty)", // agg not in output
		"select l_qty from lineitem group by nope",          // unknown group col
	}
	for _, q := range bad {
		if _, err := f.db.Query(q); err == nil {
			t.Errorf("plan accepted %q", q)
		}
	}
}

func TestQueryRepetitionHitsCache(t *testing.T) {
	f := newFixture(t, 300, 10000, 15)
	q := "select count(*) from lineitem where l_qty >= 48 and l_mode = 'AIR'"
	r1, err := f.db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := f.db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Col(0).Ints[0] != r2.Col(0).Ints[0] {
		t.Fatal("repeat query differs")
	}
	st := f.db.CacheStats()
	if st.Hits == 0 {
		t.Fatalf("no cache hit across repeated SQL: %+v", st)
	}
}

func TestDeleteUpdateVacuumThroughFacade(t *testing.T) {
	f := newFixture(t, 100, 5000, 16)
	q := "select count(*) from lineitem where l_qty >= 40"
	r1, _ := f.db.Query(q)
	before := r1.Col(0).Ints[0]

	n, err := f.db.DeleteWhere("lineitem", mustPred(t, "l_qty = 50"))
	if err != nil {
		t.Fatal(err)
	}
	var del int64
	for _, qv := range f.lQty {
		if qv == 50 {
			del++
		}
	}
	if int64(n) != del {
		t.Fatalf("deleted %d want %d", n, del)
	}
	r2, _ := f.db.Query(q)
	if r2.Col(0).Ints[0] != before-del {
		t.Fatalf("post-delete count %d want %d", r2.Col(0).Ints[0], before-del)
	}

	// Update: bump qty 49 -> 10 (out-of-place; count>=40 shrinks again).
	var q49 int64
	for _, qv := range f.lQty {
		if qv == 49 {
			q49++
		}
	}
	un, err := f.db.UpdateWhere("lineitem", mustPred(t, "l_qty = 49"), func(b *predcache.Batch) {
		for i := range b.Cols[1].Ints {
			b.Cols[1].Ints[i] = 10
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if int64(un) != q49 {
		t.Fatalf("updated %d want %d", un, q49)
	}
	r3, _ := f.db.Query(q)
	if r3.Col(0).Ints[0] != before-del-q49 {
		t.Fatalf("post-update count %d want %d", r3.Col(0).Ints[0], before-del-q49)
	}

	// Vacuum and re-check.
	if err := f.db.Vacuum("lineitem"); err != nil {
		t.Fatal(err)
	}
	r4, _ := f.db.Query(q)
	if r4.Col(0).Ints[0] != before-del-q49 {
		t.Fatal("post-vacuum count wrong")
	}
}

// mustPred builds a predicate via a WHERE-only parse.
func mustPred(t *testing.T, where string) predcache.Pred {
	t.Helper()
	stmt, err := sql.Parse("select l_qty from lineitem where " + where)
	if err != nil {
		t.Fatal(err)
	}
	return stmt.Where
}

func TestGroupByComputedScalar(t *testing.T) {
	f := newFixture(t, 300, 4000, 17)
	res, err := f.db.Query(`
		select extract(year from l_ship) as yr, sum(l_price) as rev, count(*) as n
		from lineitem
		group by extract(year from l_ship)
		order by yr`)
	if err != nil {
		t.Fatal(err)
	}
	type ag struct {
		rev float64
		n   int64
	}
	ref := map[int64]*ag{}
	for i := range f.lShip {
		y, _, _ := storage.YMDFromDate(f.lShip[i])
		a := ref[int64(y)]
		if a == nil {
			a = &ag{}
			ref[int64(y)] = a
		}
		a.rev += f.lPrice[i]
		a.n++
	}
	if res.NumRows() != len(ref) {
		t.Fatalf("groups %d want %d", res.NumRows(), len(ref))
	}
	yr := res.ColByName("yr")
	rev := res.ColByName("rev")
	n := res.ColByName("n")
	for row := 0; row < res.NumRows(); row++ {
		a := ref[yr.Ints[row]]
		if a == nil || !approx(rev.Floats[row], a.rev) || n.Ints[row] != a.n {
			t.Fatalf("year %d mismatch", yr.Ints[row])
		}
	}
}

func TestSelectStar(t *testing.T) {
	f := newFixture(t, 50, 200, 18)
	res, err := f.db.Query("select * from lineitem where l_qty >= 45 order by l_order limit 5")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumCols() != 6 {
		t.Fatalf("cols %d", res.NumCols())
	}
	if res.NumRows() > 5 {
		t.Fatal("limit ignored")
	}
	// * with grouping or siblings is rejected.
	if _, err := f.db.Query("select *, l_qty from lineitem"); err == nil {
		t.Fatal("star with sibling accepted")
	}
	if _, err := f.db.Query("select * from lineitem group by l_mode"); err == nil {
		t.Fatal("grouped star accepted")
	}
}

func TestEmptyResults(t *testing.T) {
	f := newFixture(t, 50, 300, 19)
	// Impossible filter: empty scan through every downstream operator.
	for _, q := range []string{
		"select l_qty from lineitem where l_qty > 1000 order by l_qty limit 3",
		"select count(*) as n from lineitem where l_qty > 1000",
		"select l_mode, sum(l_price) from lineitem where l_qty > 1000 group by l_mode",
		"select count(*) from lineitem, orders where o_id = l_order and l_qty > 1000",
		"select * from lineitem where l_qty > 1000",
	} {
		res, err := f.db.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if strings.Contains(q, "count(*) as n") || strings.Contains(q, "select count(*)") {
			if res.NumRows() != 1 || res.Col(res.NumCols() - 1).Ints[0] != 0 {
				t.Fatalf("%s: want single zero-count row", q)
			}
		} else if res.NumRows() != 0 {
			t.Fatalf("%s: %d rows", q, res.NumRows())
		}
	}
	// Empty results are cached too: the repeat scans nothing.
	q := "select count(*) from lineitem where l_qty > 1000"
	if _, err := f.db.Query(q); err != nil {
		t.Fatal(err)
	}
	if _, err := f.db.Query(q); err != nil {
		t.Fatal(err)
	}
	st := f.db.LastQueryStats()
	if st.CacheHits != 1 {
		t.Fatal("empty result not cached")
	}
	if st.RowsScanned != 0 {
		t.Fatalf("empty cached scan still scanned %d rows", st.RowsScanned)
	}
}

// TestRandomSQLDifferential generates random single-table queries and
// checks the engine (twice: cold, then cache-assisted) against a row-by-row
// reference evaluation.
func TestRandomSQLDifferential(t *testing.T) {
	f := newFixture(t, 100, 6000, 20)
	r := rand.New(rand.NewSource(555))
	modes := []string{"AIR", "MAIL", "SHIP", "NONE"}

	type atom struct {
		sql string
		ref func(i int) bool
	}
	genAtom := func() atom {
		switch r.Intn(6) {
		case 0:
			v := int64(r.Intn(55))
			ops := []struct {
				s string
				f func(a, b int64) bool
			}{
				{"=", func(a, b int64) bool { return a == b }},
				{"<>", func(a, b int64) bool { return a != b }},
				{"<", func(a, b int64) bool { return a < b }},
				{"<=", func(a, b int64) bool { return a <= b }},
				{">", func(a, b int64) bool { return a > b }},
				{">=", func(a, b int64) bool { return a >= b }},
			}
			op := ops[r.Intn(len(ops))]
			return atom{
				sql: fmt.Sprintf("l_qty %s %d", op.s, v),
				ref: func(i int) bool { return op.f(f.lQty[i], v) },
			}
		case 1:
			lo := int64(r.Intn(40))
			hi := lo + int64(r.Intn(15))
			return atom{
				sql: fmt.Sprintf("l_qty between %d and %d", lo, hi),
				ref: func(i int) bool { return f.lQty[i] >= lo && f.lQty[i] <= hi },
			}
		case 2:
			v := float64(r.Intn(100))
			return atom{
				sql: fmt.Sprintf("l_price > %.2f", v),
				ref: func(i int) bool { return f.lPrice[i] > v },
			}
		case 3:
			m := modes[r.Intn(len(modes))]
			return atom{
				sql: fmt.Sprintf("l_mode = '%s'", m),
				ref: func(i int) bool { return f.lMode[i] == m },
			}
		case 4:
			m1, m2 := modes[r.Intn(len(modes))], modes[r.Intn(len(modes))]
			return atom{
				sql: fmt.Sprintf("l_mode in ('%s', '%s')", m1, m2),
				ref: func(i int) bool { return f.lMode[i] == m1 || f.lMode[i] == m2 },
			}
		default:
			lo := int64(9131 + r.Intn(300))
			return atom{
				sql: fmt.Sprintf("l_ship >= %d", lo),
				ref: func(i int) bool { return f.lShip[i] >= lo },
			}
		}
	}

	// genGroup builds a parenthesized conjunction of 1-3 atoms.
	genGroup := func() (string, func(int) bool) {
		n := 1 + r.Intn(3)
		var parts []string
		var refs []func(int) bool
		for a := 0; a < n; a++ {
			at := genAtom()
			parts = append(parts, at.sql)
			refs = append(refs, at.ref)
		}
		sql := "(" + strings.Join(parts, " and ") + ")"
		return sql, func(i int) bool {
			for _, g := range refs {
				if !g(i) {
					return false
				}
			}
			return true
		}
	}

	for iter := 0; iter < 80; iter++ {
		var where string
		match := func(int) bool { return true }
		switch r.Intn(3) {
		case 1: // one conjunction group
			g, ref := genGroup()
			where = " where " + g
			match = ref
		case 2: // disjunction of two groups
			g1, r1 := genGroup()
			g2, r2 := genGroup()
			where = " where " + g1 + " or " + g2
			match = func(i int) bool { return r1(i) || r2(i) }
		}

		grouped := r.Intn(2) == 0
		var q string
		if grouped {
			q = "select l_mode, count(*) as n, sum(l_qty) as sq, min(l_price) as mp from lineitem" + where + " group by l_mode"
		} else {
			q = "select count(*) as n, sum(l_qty) as sq from lineitem" + where
		}

		// Reference.
		type ag struct {
			n  int64
			sq float64
			mp float64
		}
		ref := map[string]*ag{}
		for i := 0; i < len(f.lQty); i++ {
			if !match(i) {
				continue
			}
			key := ""
			if grouped {
				key = f.lMode[i]
			}
			a := ref[key]
			if a == nil {
				a = &ag{mp: math.Inf(1)}
				ref[key] = a
			}
			a.n++
			a.sq += float64(f.lQty[i])
			if f.lPrice[i] < a.mp {
				a.mp = f.lPrice[i]
			}
		}

		for run := 0; run < 2; run++ { // second run exercises the cache
			res, err := f.db.Query(q)
			if err != nil {
				t.Fatalf("iter %d: %q: %v", iter, q, err)
			}
			if grouped {
				if res.NumRows() != len(ref) {
					t.Fatalf("iter %d run %d: %q: %d groups want %d", iter, run, q, res.NumRows(), len(ref))
				}
				mode := res.ColByName("l_mode")
				for row := 0; row < res.NumRows(); row++ {
					a := ref[mode.Dict.Value(mode.Ints[row])]
					if a == nil || res.ColByName("n").Ints[row] != a.n ||
						!approx(res.ColByName("sq").Floats[row], a.sq) ||
						!approx(res.ColByName("mp").Floats[row], a.mp) {
						t.Fatalf("iter %d run %d: %q: group mismatch", iter, run, q)
					}
				}
			} else {
				a := ref[""]
				if a == nil {
					a = &ag{}
				}
				if res.ColByName("n").Ints[0] != a.n || !approx(res.ColByName("sq").Floats[0], a.sq) {
					t.Fatalf("iter %d run %d: %q: got n=%d sq=%f want n=%d sq=%f",
						iter, run, q, res.ColByName("n").Ints[0], res.ColByName("sq").Floats[0], a.n, a.sq)
				}
			}
		}
	}
	if f.db.CacheStats().Hits == 0 {
		t.Fatal("differential run never hit the cache")
	}
}

// TestRandomJoinDifferential: random two-table join queries vs a nested-loop
// reference.
func TestRandomJoinDifferential(t *testing.T) {
	f := newFixture(t, 300, 4000, 21)
	r := rand.New(rand.NewSource(777))
	statuses := []string{"OPEN", "DONE", "FAIL"}
	for iter := 0; iter < 40; iter++ {
		qtyMin := int64(r.Intn(50))
		status := statuses[r.Intn(3)]
		useStatus := r.Intn(2) == 0
		where := fmt.Sprintf(" where o_id = l_order and l_qty >= %d", qtyMin)
		if useStatus {
			where += fmt.Sprintf(" and o_status = '%s'", status)
		}
		q := "select count(*) as n, sum(l_price) as sp from lineitem, orders" + where

		okOrder := map[int64]bool{}
		for i := range f.oID {
			if !useStatus || f.oStatus[i] == status {
				okOrder[f.oID[i]] = true
			}
		}
		var wantN int64
		var wantSP float64
		for i := range f.lQty {
			if f.lQty[i] >= qtyMin && okOrder[f.lOrder[i]] {
				wantN++
				wantSP += f.lPrice[i]
			}
		}
		for run := 0; run < 2; run++ {
			res, err := f.db.Query(q)
			if err != nil {
				t.Fatalf("iter %d: %v", iter, err)
			}
			if res.ColByName("n").Ints[0] != wantN || !approx(res.ColByName("sp").Floats[0], wantSP) {
				t.Fatalf("iter %d run %d: %q: got n=%d want %d", iter, run, q, res.ColByName("n").Ints[0], wantN)
			}
		}
	}
}

// TestDisjunctionFactoring: Q19-style multi-table ORs push per-table
// implied filters into the scans (correctness + scan reduction).
func TestDisjunctionFactoring(t *testing.T) {
	f := newFixture(t, 400, 20000, 22)
	q := `select count(*) as n, sum(l_price) as sp from lineitem, orders
	      where o_id = l_order
	        and ((l_qty between 1 and 5 and o_status = 'OPEN' and l_mode = 'AIR')
	          or (l_qty between 45 and 50 and o_status = 'DONE' and l_mode = 'MAIL'))`
	status := map[int64]string{}
	for i := range f.oID {
		status[f.oID[i]] = f.oStatus[i]
	}
	var wantN int64
	var wantSP float64
	for i := range f.lQty {
		st := status[f.lOrder[i]]
		q1 := f.lQty[i] >= 1 && f.lQty[i] <= 5 && st == "OPEN" && f.lMode[i] == "AIR"
		q2 := f.lQty[i] >= 45 && f.lQty[i] <= 50 && st == "DONE" && f.lMode[i] == "MAIL"
		if q1 || q2 {
			wantN++
			wantSP += f.lPrice[i]
		}
	}
	res, err := f.db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.ColByName("n").Ints[0] != wantN || !approx(res.ColByName("sp").Floats[0], wantSP) {
		t.Fatalf("got n=%d want %d", res.ColByName("n").Ints[0], wantN)
	}
	// The factored lineitem filter must reduce qualifying scan output: the
	// lineitem scan's qualified rows should be far below the full table.
	st := f.db.LastQueryStats()
	if st.RowsQualified >= int64(len(f.lQty)) {
		t.Fatalf("no pushdown: %d rows qualified", st.RowsQualified)
	}
	// And the explain shows a filter on the lineitem scan.
	plan, err := f.db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "Scan lineitem filter=(or") {
		t.Fatalf("lineitem scan missing factored filter:\n%s", plan)
	}
	if !strings.Contains(plan, "Scan orders filter=(or") {
		t.Fatalf("orders scan missing factored filter:\n%s", plan)
	}
}

func TestLiteralFirstAllOps(t *testing.T) {
	f := newFixture(t, 50, 500, 23)
	// Flipped comparisons: lit op col for every operator.
	cases := []struct {
		q   string
		ref func(q int64) bool
	}{
		{"10 < l_qty", func(v int64) bool { return v > 10 }},
		{"10 <= l_qty", func(v int64) bool { return v >= 10 }},
		{"40 > l_qty", func(v int64) bool { return v < 40 }},
		{"40 >= l_qty", func(v int64) bool { return v <= 40 }},
		{"25 = l_qty", func(v int64) bool { return v == 25 }},
		{"25 <> l_qty", func(v int64) bool { return v != 25 }},
	}
	for _, c := range cases {
		res, err := f.db.Query("select count(*) from lineitem where " + c.q)
		if err != nil {
			t.Fatalf("%s: %v", c.q, err)
		}
		var want int64
		for _, v := range f.lQty {
			if c.ref(v) {
				want++
			}
		}
		if res.Col(0).Ints[0] != want {
			t.Fatalf("%s: got %d want %d", c.q, res.Col(0).Ints[0], want)
		}
	}
}

func TestNegativeLiteralsAndDateInList(t *testing.T) {
	f := newFixture(t, 50, 500, 24)
	res, err := f.db.Query("select count(*) from lineitem where l_qty > -5 and l_price > -1.5")
	if err != nil {
		t.Fatal(err)
	}
	if res.Col(0).Ints[0] != 500 {
		t.Fatal("negative literals wrong")
	}
	// Date literal as the right side of between.
	res, err = f.db.Query("select count(*) from lineitem where l_ship between date '1995-01-01' and date '1995-12-31'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Col(0).Ints[0] != 500 {
		t.Fatalf("date between: %d", res.Col(0).Ints[0])
	}
}

func TestIntervalArithmetic(t *testing.T) {
	// Month-end clamping and year/day units.
	cases := []struct{ in, want string }{
		{"date '1995-01-31' + interval '1' month", "1995-02-28"},
		{"date '1996-01-31' + interval '1' month", "1996-02-29"}, // leap year
		{"date '1995-03-15' - interval '1' month", "1995-02-15"},
		{"date '1995-03-15' + interval '2' year", "1997-03-15"},
		{"date '1995-03-15' - interval '14' days", "1995-03-01"},
		{"date '1995-12-31' + interval '1' day", "1996-01-01"},
	}
	for i, c := range cases {
		db := predcache.Open()
		name := fmt.Sprintf("dt%d", i)
		if err := db.CreateTable(name, predcache.Schema{{Name: "d", Type: predcache.Date}}); err != nil {
			t.Fatal(err)
		}
		want, err := storage.ParseDate(c.want)
		if err != nil {
			t.Fatal(err)
		}
		b := predcache.NewBatch(predcache.Schema{{Name: "d", Type: predcache.Date}})
		b.Cols[0].Ints = []int64{want}
		b.N = 1
		if err := db.Insert(name, b); err != nil {
			t.Fatal(err)
		}
		// The folded interval literal must equal the stored expected day.
		res, err := db.Query(fmt.Sprintf("select count(*) from %s where d = %s", name, c.in))
		if err != nil {
			t.Fatalf("%s: %v", c.in, err)
		}
		if res.Col(0).Ints[0] != 1 {
			t.Fatalf("%s != %s", c.in, c.want)
		}
	}
}

func TestAliasedWhereForms(t *testing.T) {
	f := newFixture(t, 100, 800, 25)
	// Aliased IN / LIKE / NOT / BETWEEN rewrite paths.
	res, err := f.db.Query(`
		select count(*) from lineitem l1, orders o1
		where o1.o_id = l1.l_order
		  and l1.l_mode in ('AIR', 'MAIL')
		  and l1.l_mode like 'A%'
		  and not l1.l_qty between 10 and 40
		  and o1.o_status <> 'FAIL'`)
	if err != nil {
		t.Fatal(err)
	}
	status := map[int64]string{}
	for i := range f.oID {
		status[f.oID[i]] = f.oStatus[i]
	}
	var want int64
	for i := range f.lQty {
		m := f.lMode[i]
		inList := m == "AIR" || m == "MAIL"
		like := strings.HasPrefix(m, "A")
		betw := f.lQty[i] >= 10 && f.lQty[i] <= 40
		if inList && like && !betw && status[f.lOrder[i]] != "FAIL" {
			want++
		}
	}
	if res.Col(0).Ints[0] != want {
		t.Fatalf("got %d want %d", res.Col(0).Ints[0], want)
	}
}
